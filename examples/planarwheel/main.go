// Planar wheel example (§1.1 of the paper): on wheel graphs m = Θ(n),
// T = Θ(n) and κ = 3, so the degeneracy-based estimator's space stays flat as
// the graph grows, while worst-case bounds like m/√T and m^{3/2}/T grow
// polynomially. This example measures that directly through the public API.
//
//	go run ./examples/planarwheel
package main

import (
	"fmt"
	"log"
	"math"

	"degentri/triangle"
)

func main() {
	fmt.Println("wheel graphs: streaming estimate space vs. worst-case bounds")
	fmt.Printf("%10s %10s %10s %12s %12s %12s %10s\n",
		"n", "m", "T", "space(words)", "m^1.5/T", "m/sqrt(T)", "rel.err")

	for _, n := range []int{1_000, 4_000, 16_000, 64_000, 256_000} {
		edges := triangle.Wheel(n)
		exact := float64(n - 1) // known in closed form for the wheel

		res, err := triangle.Estimate(edges, triangle.Options{
			Epsilon:       0.1,
			Degeneracy:    3,              // wheels are planar
			TriangleGuess: int64(n-1) / 2, // any constant-factor lower bound works
			Seed:          uint64(n),
		})
		if err != nil {
			log.Fatal(err)
		}

		m := float64(len(edges))
		fmt.Printf("%10d %10d %10d %12d %12.0f %12.0f %9.1f%%\n",
			n, len(edges), n-1, res.SpaceWords,
			math.Pow(m, 1.5)/exact, m/math.Sqrt(exact),
			100*(res.Estimate-exact)/exact)
	}
	fmt.Println("\nThe space column stays (nearly) flat while both worst-case bounds grow with n.")
}
