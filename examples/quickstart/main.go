// Quickstart: estimate the triangle count of a preferential-attachment graph
// with the streaming estimator and compare it against the exact count.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"degentri/triangle"
)

func main() {
	// A synthetic "social network": preferential attachment with triad
	// formation (Holme–Kim), 4 edges per new vertex. Its degeneracy is
	// exactly 4 no matter how large it grows, and its triangle count grows
	// linearly with n — the "low sparsity, high triangle density" regime the
	// paper's O~(mκ/T) bound is designed for.
	edges := triangle.ClusteredPreferentialAttachment(20000, 4, 0.7, 42)

	exact := triangle.Exact(edges)
	stats := triangle.GraphStats(edges)
	fmt.Printf("graph: n=%d m=%d κ=%d ∆=%d\n", stats.Vertices, stats.Edges, stats.Degeneracy, stats.MaxDegree)
	fmt.Printf("exact triangle count: %d\n", exact)

	// Streaming estimate. We pass the degeneracy bound (4) that the generator
	// guarantees; the triangle count is discovered by geometric search.
	res, err := triangle.Estimate(edges, triangle.Options{
		Epsilon:    0.1,
		Degeneracy: 4,
		Seed:       1,
	})
	if err != nil {
		log.Fatal(err)
	}
	relErr := 0.0
	if exact > 0 {
		relErr = (res.Estimate - float64(exact)) / float64(exact)
	}
	fmt.Printf("streaming estimate:   %.0f (relative error %+.2f%%)\n", res.Estimate, 100*relErr)
	fmt.Printf("stream passes:        %d\n", res.Passes)
	fmt.Printf("space used:           %d words (graph itself has %d edges)\n", res.SpaceWords, res.Edges)
}
