// Social-network example: a heavy-tailed Chung–Lu graph (the model commonly
// fitted to social networks) has a few very high-degree hubs but a small
// degeneracy, and plenty of triangles. The example shows (a) how far apart ∆
// and κ are, (b) how the estimate tightens as the sample multiplier grows,
// and (c) the derived transitivity (global clustering coefficient).
//
//	go run ./examples/socialnetwork
package main

import (
	"fmt"
	"log"

	"degentri/triangle"
)

func main() {
	// ~40k-vertex power-law graph with average degree 8 and exponent 2.3.
	edges := triangle.PowerLaw(40_000, 8, 2.3, 7)
	stats := triangle.GraphStats(edges)

	fmt.Println("synthetic social network (Chung–Lu power law)")
	fmt.Printf("  vertices:      %d\n", stats.Vertices)
	fmt.Printf("  edges:         %d\n", stats.Edges)
	fmt.Printf("  max degree ∆:  %d\n", stats.MaxDegree)
	fmt.Printf("  degeneracy κ:  %d   (κ ≪ ∆ is what the paper exploits)\n", stats.Degeneracy)
	fmt.Printf("  triangles:     %d\n", stats.Triangles)
	fmt.Printf("  transitivity:  %.4f\n\n", stats.Transitivity)

	fmt.Printf("%12s %14s %14s %10s\n", "multiplier", "estimate", "space(words)", "rel.err")
	for _, mult := range []float64{0.5, 1, 2, 4} {
		res, err := triangle.Estimate(edges, triangle.Options{
			Epsilon:          0.1,
			Degeneracy:       stats.Degeneracy,
			TriangleGuess:    stats.Triangles / 2,
			Seed:             uint64(10 * mult),
			SampleMultiplier: mult,
		})
		if err != nil {
			log.Fatal(err)
		}
		rel := (res.Estimate - float64(stats.Triangles)) / float64(stats.Triangles)
		fmt.Printf("%12.1f %14.0f %14d %9.1f%%\n", mult, res.Estimate, res.SpaceWords, 100*rel)
	}
	fmt.Println("\nDoubling the multiplier roughly doubles the space and shrinks the error ~1/√2.")
}
