// Lower-bound example (Theorem 6.3): build the set-disjointness reduction's
// hard instances, verify their structure (triangle-free vs. T = p²q,
// degeneracy Θ(p)), and run the streaming estimator as a triangle-detection
// protocol, reporting the communication cost of the induced disjointness
// protocol. This is an advanced example and uses the internal lowerbound
// package directly.
//
//	go run ./examples/lowerbound
package main

import (
	"fmt"
	"log"

	"degentri/internal/core"
	"degentri/internal/lowerbound"
)

func main() {
	const (
		p      = 8  // κ of the construction
		q      = 8  // block size (T = p²q in the NO case)
		blocks = 24 // N of the disjointness instance
		ones   = 8  // ones per side
	)

	fmt.Println("Theorem 6.3 hard instances (set-disjointness reduction)")
	for _, intersecting := range []bool{false, true} {
		d, err := lowerbound.NewDisjointness(blocks, ones, intersecting, 3)
		if err != nil {
			log.Fatal(err)
		}
		inst, err := lowerbound.BuildInstance(d, p, q)
		if err != nil {
			log.Fatal(err)
		}
		g := inst.Graph
		label := "YES (disjoint)"
		if intersecting {
			label = "NO (intersecting)"
		}
		fmt.Printf("\n%s instance:\n", label)
		fmt.Printf("  n=%d m=%d\n", g.NumVertices(), g.NumEdges())
		fmt.Printf("  triangles: %d (construction predicts %d)\n", g.TriangleCount(), inst.ExpectedTriangles())
		fmt.Printf("  degeneracy: %d (proof bound %d)\n", g.Degeneracy(), inst.DegeneracyUpperBound())

		cfg := core.DefaultConfig(0.3, 2*p, int64(p*p*q))
		cfg.CR, cfg.CL, cfg.CS = 16, 16, 4
		cfg.Seed = 11
		det, err := lowerbound.DetectTriangles(inst, cfg, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  detector says triangles present: %v (estimate %.0f)\n", det.Detected, det.Estimate)
		fmt.Printf("  streaming space: %d words over %d passes\n", det.SpaceWords, det.Passes)
		fmt.Printf("  induced disjointness protocol communication: %d bits\n", det.CommunicationBits)
	}

	fmt.Println("\nAcross the family T = κ·r, Theorem 6.3 shows any constant-pass algorithm needs Ω(mκ/T) space;")
	fmt.Println("run `go test -bench BenchmarkE7LowerBound` or `experiments -only E7` for the measured scaling.")
}
