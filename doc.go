// Package degentri is the root of a reproduction of Bera & Seshadhri,
// "How the Degeneracy Helps for Triangle Counting in Graph Streams"
// (PODS 2020).
//
// The public API lives in the triangle subpackage; the algorithms, graph
// substrate, generators, baselines, lower-bound construction, and experiment
// harness live under internal/. See README.md for the layout, DESIGN.md for
// the system inventory and experiment index, and EXPERIMENTS.md for the
// recorded results.
//
// The root package only hosts the repository-level benchmark harness
// (bench_test.go), which exposes one testing.B benchmark per reproduced
// experiment.
package degentri
