package clique

import (
	"testing"

	"degentri/internal/gen"
	"degentri/internal/graph"
	"degentri/internal/sampling"
	"degentri/internal/stream"
)

func TestConfigValidation(t *testing.T) {
	good := DefaultConfig(4, 0.2, 3, 100)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{K: 2, Epsilon: 0.2, Kappa: 3, CliqueGuess: 10, CR: 1, CL: 1},
		{K: 9, Epsilon: 0.2, Kappa: 3, CliqueGuess: 10, CR: 1, CL: 1},
		{K: 4, Epsilon: 0, Kappa: 3, CliqueGuess: 10, CR: 1, CL: 1},
		{K: 4, Epsilon: 0.2, Kappa: 0, CliqueGuess: 10, CR: 1, CL: 1},
		{K: 4, Epsilon: 0.2, Kappa: 3, CliqueGuess: 0, CR: 1, CL: 1},
		{K: 4, Epsilon: 0.2, Kappa: 3, CliqueGuess: 10, CR: 0, CL: 1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d should be invalid", i)
		}
	}
}

func TestSampleSizeFormulas(t *testing.T) {
	cfg := DefaultConfig(4, 0.2, 2, 1000)
	cfg.CR, cfg.CL = 1, 1
	m := 10000
	// r = m·κ² / guess = 10000·4/1000 = 40.
	if got := cfg.sampleSizeR(m); got != 40 {
		t.Errorf("r = %d, want 40", got)
	}
	// ℓ = m·dR·κ/(r·guess) = 10000·200·2/(40·1000) = 100.
	if got := cfg.sampleSizeL(m, 40, 200); got != 100 {
		t.Errorf("ℓ = %d, want 100", got)
	}
	cfg.ROverride, cfg.LOverride = 7, 9
	if cfg.sampleSizeR(m) != 7 || cfg.sampleSizeL(m, 7, 10) != 9 {
		t.Error("overrides ignored")
	}
	if cfg.sampleSizeL(m, 7, 0) != 9 {
		t.Error("override should win even with dR=0")
	}
}

func TestEstimateInvalidAndEmpty(t *testing.T) {
	bad := DefaultConfig(2, 0.2, 1, 1)
	if _, err := Estimate(stream.FromEdges(nil), bad); err == nil {
		t.Fatal("expected validation error")
	}
	good := DefaultConfig(4, 0.2, 1, 1)
	res, err := Estimate(stream.FromEdges(nil), good)
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimate != 0 {
		t.Fatal("empty stream should estimate 0")
	}
}

func TestEstimateCliqueFreeGraph(t *testing.T) {
	// The wheel has triangles but no 4-cliques (for n > 4).
	g := gen.Wheel(500)
	cfg := DefaultConfig(4, 0.2, 3, 10)
	cfg.Seed = 3
	res, err := Estimate(stream.FromGraphShuffled(g, 1), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimate != 0 || res.CliquesFound != 0 {
		t.Fatalf("wheel 4-clique estimate %v (found %d)", res.Estimate, res.CliquesFound)
	}
	if res.Passes != 4 {
		t.Fatalf("passes = %d, want 4", res.Passes)
	}
}

func relErrOverTrials(t *testing.T, g *graph.Graph, cfg Config, trials int, truth float64) float64 {
	t.Helper()
	var sum float64
	for i := 0; i < trials; i++ {
		cfg.Seed = uint64(101 + 997*i)
		res, err := Estimate(stream.FromGraphShuffled(g, uint64(i+1)), cfg)
		if err != nil {
			t.Fatal(err)
		}
		sum += res.Estimate
	}
	return sampling.RelativeError(sum/float64(trials), truth)
}

func TestEstimateTrianglesMatchesK3(t *testing.T) {
	// With K=3 the estimator is the plain (no-assignment) triangle counter.
	g := gen.Wheel(1000)
	truth := float64(g.TriangleCount())
	cfg := DefaultConfig(3, 0.2, 3, g.TriangleCount())
	cfg.CR, cfg.CL = 8, 8
	rel := relErrOverTrials(t, g, cfg, 10, truth)
	if rel > 0.25 {
		t.Fatalf("K=3 relative error %.3f", rel)
	}
}

func TestEstimateFourCliquesCompleteGraph(t *testing.T) {
	g := gen.Complete(40)
	truth := float64(g.CliqueCount(4))
	cfg := DefaultConfig(4, 0.2, 39, g.CliqueCount(4))
	cfg.CR, cfg.CL = 4, 8
	rel := relErrOverTrials(t, g, cfg, 10, truth)
	if rel > 0.3 {
		t.Fatalf("K4 on K40 relative error %.3f", rel)
	}
}

func TestEstimateFourCliquesApollonian(t *testing.T) {
	g := gen.Apollonian(1500)
	truth := float64(g.CliqueCount(4))
	if truth == 0 {
		t.Fatal("Apollonian graphs should contain 4-cliques")
	}
	cfg := DefaultConfig(4, 0.2, 3, g.CliqueCount(4))
	cfg.CR, cfg.CL = 8, 12
	rel := relErrOverTrials(t, g, cfg, 12, truth)
	if rel > 0.35 {
		t.Fatalf("K4 on Apollonian relative error %.3f", rel)
	}
}

func TestEstimateFourCliquesHolmeKim(t *testing.T) {
	g := gen.HolmeKim(4000, 6, 0.8, 5)
	truth := float64(g.CliqueCount(4))
	if truth == 0 {
		t.Skip("no 4-cliques generated")
	}
	cfg := DefaultConfig(4, 0.2, 6, g.CliqueCount(4))
	cfg.CR, cfg.CL = 8, 12
	rel := relErrOverTrials(t, g, cfg, 12, truth)
	if rel > 0.4 {
		t.Fatalf("K4 on Holme–Kim relative error %.3f", rel)
	}
}

func TestEstimateFiveCliques(t *testing.T) {
	g := gen.Complete(25)
	truth := float64(g.CliqueCount(5))
	cfg := DefaultConfig(5, 0.2, 24, g.CliqueCount(5))
	cfg.CR, cfg.CL = 4, 12
	rel := relErrOverTrials(t, g, cfg, 8, truth)
	if rel > 0.35 {
		t.Fatalf("K5 on K25 relative error %.3f", rel)
	}
}

func TestEstimateDeterministicSeed(t *testing.T) {
	g := gen.Apollonian(300)
	cfg := DefaultConfig(4, 0.2, 3, g.CliqueCount(4))
	cfg.Seed = 7
	a, err := Estimate(stream.FromGraphShuffled(g, 2), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Estimate(stream.FromGraphShuffled(g, 2), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Estimate != b.Estimate {
		t.Fatal("same seed produced different estimates")
	}
}

func TestEstimateUnknownLengthStream(t *testing.T) {
	g := gen.Complete(20)
	src := &hiddenLen{inner: stream.FromGraphShuffled(g, 1)}
	cfg := DefaultConfig(4, 0.2, 19, g.CliqueCount(4))
	res, err := Estimate(src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Passes != 5 {
		t.Fatalf("passes = %d, want 5 (counting pass + 4)", res.Passes)
	}
}

type hiddenLen struct{ inner stream.Stream }

func (h *hiddenLen) Reset() error              { return h.inner.Reset() }
func (h *hiddenLen) Next() (graph.Edge, error) { return h.inner.Next() }
func (h *hiddenLen) NextBatch(buf []graph.Edge) ([]graph.Edge, error) {
	return h.inner.NextBatch(buf)
}
func (h *hiddenLen) Len() (int, bool) { return 0, false }

// TestEstimateWorkerCountInvariance checks the sharded-pass determinism
// contract: the Workers knob may change wall-clock but not a single bit of
// the Result.
func TestEstimateWorkerCountInvariance(t *testing.T) {
	g := gen.HolmeKim(2500, 5, 0.6, 21)
	cfg := DefaultConfig(4, 0.2, g.Degeneracy(), maxInt64(g.CliqueCount(4), 1))
	for _, seed := range []uint64{1, 99} {
		cfg.Seed = seed
		var base Result
		for i, workers := range []int{1, 2, 4, 8} {
			cfg.Workers = workers
			res, err := Estimate(stream.FromGraphShuffled(g, seed), cfg)
			if err != nil {
				t.Fatalf("seed=%d workers=%d: %v", seed, workers, err)
			}
			if i == 0 {
				base = res
			} else if res != base {
				t.Errorf("seed=%d: workers=%d diverges from workers=1:\n  %+v\n  %+v",
					seed, workers, res, base)
			}
		}
	}
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
