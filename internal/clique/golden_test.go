package clique

// Determinism goldens for the k-clique estimator, mirroring the core
// estimator's golden suite: for a fixed workload, stream order, and seed, the
// full Result is pinned to exact values. The values were captured before the
// pass plumbing moved to the shared internal/passes framework, so this test
// doubles as the refactor-equivalence pin: every Result must be bit-identical
// to the pre-framework code at every worker count (1/2/4/8) and over every
// stream backend (in-memory, text file, binary .bex).

import (
	"os"
	"path/filepath"
	"testing"

	"degentri/internal/gen"
	"degentri/internal/graph"
	"degentri/internal/stream"
)

type cliqueGolden struct {
	workload   string
	k          int
	kappa      int
	guess      int64
	seed       uint64
	streamSeed uint64
	estimate   float64
	edges      int
	sampled    int
	instances  int
	found      int
	spaceWords int64
}

// cliqueGoldenGraphs builds the pinned workloads once.
func cliqueGoldenGraphs() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"apollonian-1500":  gen.Apollonian(1500),
		"complete-40":      gen.Complete(40),
		"holmekim-4000-k6": gen.HolmeKim(4000, 6, 0.8, 5),
		"complete-25":      gen.Complete(25),
	}
}

var cliqueGoldens = []cliqueGolden{
	{"apollonian-1500", 4, 3, 1500, 1, 11, 2077.3068397446955, 4503, 217, 374, 61, 6258},
	{"apollonian-1500", 4, 3, 1500, 42, 11, 1325.6592904964784, 4503, 217, 477, 51, 7923},
	{"complete-40", 4, 39, 91390, 7, 13, 90309.375, 780, 104, 104, 95, 2033},
	{"holmekim-4000-k6", 4, 6, 2449, 1, 14, 3222.8068608767812, 23979, 2820, 5521, 35, 99066},
	{"complete-25", 5, 24, 53130, 9, 15, 50540.544000000002, 300, 300, 625, 457, 9047},
}

func (gc cliqueGolden) config() Config {
	cfg := DefaultConfig(gc.k, 0.2, gc.kappa, gc.guess)
	cfg.CR, cfg.CL = 8, 8
	cfg.Seed = gc.seed
	return cfg
}

// check compares a Result against the golden, with the pass count adjusted
// for backends that need a counting pass (extraPasses).
func (gc cliqueGolden) check(t *testing.T, label string, res Result, extraPasses int) {
	t.Helper()
	if res.Estimate != gc.estimate {
		t.Errorf("%s: estimate = %.17g, golden %.17g", label, res.Estimate, gc.estimate)
	}
	if res.EdgesInStream != gc.edges || res.SampledEdges != gc.sampled ||
		res.Instances != gc.instances || res.CliquesFound != gc.found {
		t.Errorf("%s: edges/sampled/instances/found = %d/%d/%d/%d, golden %d/%d/%d/%d",
			label, res.EdgesInStream, res.SampledEdges, res.Instances, res.CliquesFound,
			gc.edges, gc.sampled, gc.instances, gc.found)
	}
	if res.SpaceWords != gc.spaceWords {
		t.Errorf("%s: space = %d words, golden %d", label, res.SpaceWords, gc.spaceWords)
	}
	if want := 4 + extraPasses; res.Passes != want {
		t.Errorf("%s: passes = %d, want %d", label, res.Passes, want)
	}
}

func TestEstimateGolden(t *testing.T) {
	graphs := cliqueGoldenGraphs()
	for _, gc := range cliqueGoldens {
		g := graphs[gc.workload]
		for _, workers := range []int{1, 2, 4, 8} {
			cfg := gc.config()
			cfg.Workers = workers
			res, err := Estimate(stream.FromGraphShuffled(g, gc.streamSeed), cfg)
			if err != nil {
				t.Fatalf("%s/seed=%d/workers=%d: %v", gc.workload, gc.seed, workers, err)
			}
			gc.check(t, gc.workload, res, 0)
		}
	}
}

// TestEstimateGoldenFileBackends re-runs the golden pins over the disk-backed
// stream sources, with the files written in the exact shuffled order the
// in-memory goldens use: the text stream spends one extra counting pass
// (length unknown up front), the binary streams (flat .bex v1, block-indexed
// .bex v2 buffered and mmap, sharded .bexd) none, and everything else must
// match the goldens bit for bit.
func TestEstimateGoldenFileBackends(t *testing.T) {
	graphs := cliqueGoldenGraphs()
	dir := t.TempDir()

	type fileBackend struct {
		name  string
		path  string
		mmap  bool
		extra int
	}
	written := map[string]bool{}
	writeBackends := func(gc cliqueGolden) []fileBackend {
		base := filepath.Join(dir, gc.workload)
		txt, bex1 := base+".txt", base+".v1"+stream.BexExt
		bex2, bexd := base+stream.BexExt, base+stream.BexdExt
		fbs := []fileBackend{
			{"text", txt, false, 1},
			{"bex1", bex1, false, 0},
			{"bex2", bex2, false, 0},
			{"bex2-mmap", bex2, true, 0},
			{"bexd", bexd, false, 0},
		}
		if written[gc.workload] {
			return fbs
		}
		g := graphs[gc.workload]
		f, err := os.Create(txt)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := stream.WriteEdgeList(f, stream.FromGraphShuffled(g, gc.streamSeed)); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		if _, err := stream.WriteBexFile(bex1, stream.FromGraphShuffled(g, gc.streamSeed)); err != nil {
			t.Fatal(err)
		}
		// Tiny blocks/parts so the goldens exercise multi-block and
		// multi-part reads, not just a single-block fast path.
		if _, err := stream.WriteBex2File(bex2, stream.FromGraphShuffled(g, gc.streamSeed), 16); err != nil {
			t.Fatal(err)
		}
		if _, err := stream.WriteBexd(bexd, stream.FromGraphShuffled(g, gc.streamSeed), 16, 64); err != nil {
			t.Fatal(err)
		}
		written[gc.workload] = true
		return fbs
	}

	for _, gc := range cliqueGoldens {
		// All golden cases of one workload share a streamSeed, so the files
		// written for the first case serve the rest.
		for _, workers := range []int{1, 2, 4, 8} {
			for _, backend := range writeBackends(gc) {
				src, err := stream.OpenAutoPrefer(backend.path, backend.mmap)
				if err != nil {
					t.Fatal(err)
				}
				cfg := gc.config()
				cfg.Workers = workers
				res, err := Estimate(src, cfg)
				src.Close()
				if err != nil {
					t.Fatalf("%s/seed=%d/workers=%d: %v", backend.name, gc.seed, workers, err)
				}
				gc.check(t, gc.workload+"/"+backend.name, res, backend.extra)
			}
		}
	}
}
