package clique_test

// Fusion equivalence for the k-clique estimator: EstimateOn through a scan
// scheduler client must reproduce the standalone Estimate bit for bit at
// 1/2/4/8 workers over the memory, text, and .bex backends (the standalone
// results are themselves pinned against pre-refactor goldens by
// golden_test.go), and two fused runs must share their scans.

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"degentri/internal/clique"
	"degentri/internal/gen"
	"degentri/internal/sched"
	"degentri/internal/stream"
)

func TestFusedCliqueMatchesDirect(t *testing.T) {
	g := gen.HolmeKim(4000, 5, 0.7, 77)
	streamSeed := uint64(19)
	dir := t.TempDir()
	txt := filepath.Join(dir, "g.txt")
	bex := filepath.Join(dir, "g"+stream.BexExt)
	f, err := os.Create(txt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := stream.WriteEdgeList(f, stream.FromGraphShuffled(g, streamSeed)); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := stream.WriteBexFile(bex, stream.FromGraphShuffled(g, streamSeed)); err != nil {
		t.Fatal(err)
	}

	open := map[string]func() (stream.Stream, func(), error){
		"memory": func() (stream.Stream, func(), error) {
			return stream.FromGraphShuffled(g, streamSeed), func() {}, nil
		},
		"text": func() (stream.Stream, func(), error) {
			src, err := stream.OpenAuto(txt)
			if err != nil {
				return nil, nil, err
			}
			return src, func() { src.Close() }, nil
		},
		"bex": func() (stream.Stream, func(), error) {
			src, err := stream.OpenAuto(bex)
			if err != nil {
				return nil, nil, err
			}
			return src, func() { src.Close() }, nil
		},
	}

	cfg := clique.DefaultConfig(4, 0.2, g.Degeneracy(), g.CliqueCount(4))
	cfg.Seed = 23

	for name, openSrc := range open {
		for _, workers := range []int{1, 2, 4, 8} {
			runCfg := cfg
			runCfg.Workers = workers

			src, closeSrc, err := openSrc()
			if err != nil {
				t.Fatal(err)
			}
			want, err := clique.Estimate(src, runCfg)
			closeSrc()
			if err != nil {
				t.Fatalf("%s/workers=%d: unfused: %v", name, workers, err)
			}

			src, closeSrc, err = openSrc()
			if err != nil {
				t.Fatal(err)
			}
			m, known := src.Len()
			prelude := 0
			if !known {
				m, err = stream.CountEdges(src)
				if err != nil {
					t.Fatal(err)
				}
				prelude = 1
			}
			sch := sched.New(src, m, workers)
			c := sch.NewClient()
			got, err := clique.EstimateOn(c, runCfg)
			c.Done()
			closeSrc()
			if err != nil {
				t.Fatalf("%s/workers=%d: fused: %v", name, workers, err)
			}
			got.Passes += prelude
			got.Scans = want.Scans
			if got != want {
				t.Errorf("%s/workers=%d: fused clique result diverges:\n  fused   %+v\n  unfused %+v",
					name, workers, got, want)
			}
		}
	}
}

func TestFusedCliqueRunsShareScans(t *testing.T) {
	g := gen.HolmeKim(4000, 5, 0.7, 77)
	src := stream.FromGraphShuffled(g, 19)
	m, _ := src.Len()
	cfg := clique.DefaultConfig(4, 0.2, g.Degeneracy(), g.CliqueCount(4))

	solo := make([]clique.Result, 2)
	for i := range solo {
		runCfg := cfg
		runCfg.Seed = uint64(100 + i)
		res, err := clique.Estimate(stream.FromGraphShuffled(g, 19), runCfg)
		if err != nil {
			t.Fatal(err)
		}
		solo[i] = res
	}

	sch := sched.New(src, m, 4)
	clients := []*sched.Client{sch.NewClient(), sch.NewClient()}
	fused := make([]clique.Result, 2)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for i := range clients {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer clients[i].Done()
			runCfg := cfg
			runCfg.Seed = uint64(100 + i)
			runCfg.Workers = 4
			fused[i], errs[i] = clique.EstimateOn(clients[i], runCfg, sch.Meter())
		}(i)
	}
	wg.Wait()
	maxPasses := 0
	for i := range fused {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		got := fused[i]
		got.Scans = solo[i].Scans
		if got != solo[i] {
			t.Errorf("seed=%d: fused diverges from solo:\n  %+v\n  %+v", 100+i, got, solo[i])
		}
		if fused[i].Passes > maxPasses {
			maxPasses = fused[i].Passes
		}
	}
	if sch.Scans() != maxPasses {
		t.Errorf("two fused clique runs cost %d scans, want %d", sch.Scans(), maxPasses)
	}
	// The teed meters make both runs' retained words visible to the group:
	// the concurrent peak must exceed either run's own peak.
	if peak := sch.Meter().Peak(); peak <= solo[0].SpaceWords || peak <= solo[1].SpaceWords {
		t.Errorf("group peak %d does not exceed solo peaks %d/%d",
			peak, solo[0].SpaceWords, solo[1].SpaceWords)
	}
}
