// Package clique implements the paper's future-work direction (Conjecture
// 7.1): a constant-pass streaming estimator for the number of k-cliques in a
// low-degeneracy graph, generalizing the triangle estimator of Section 5.
//
// The estimator follows the same blueprint as Algorithm 2: sample a uniform
// edge multiset R, compute edge degrees, draw degree-proportional instances
// from R, and for each instance draw k−2 independent uniform vertices from
// the neighborhood of the light endpoint; the instance succeeds when the
// sampled vertices are distinct and, together with the edge's endpoints, form
// a k-clique. Each success contributes d_e^{k-3}, and the estimate is scaled
// so that every clique is counted once through each of its C(k,2) edges.
// For k = 3 this degenerates exactly to the triangle estimator without the
// assignment rule; the per-edge clique counts are bounded by O(κ^{k-2})
// (Chiba–Nishizeki), which is what the conjectured O~(mκ^{k-2}/T_k) space
// bound reflects.
//
// Like the core estimator, every pass runs on the shared pass framework
// (internal/passes) over the sharded pass engine: instances live in one flat
// array, the k−2 neighbor reservoirs of each instance are a sampling.ResK
// bank whose randomness is keyed by (Seed, instance, shard) under this
// package's pass keys, and per-shard state merges in shard order — so the
// estimate is deterministic at any worker count.
//
// This is an extension beyond the paper's proven results: the estimator is
// unbiased (a calculation identical to Section 4's), but the repository makes
// no claim that its variance matches the conjecture on all graphs — the E11
// experiment measures it empirically on the low-degeneracy families.
package clique

import (
	"context"
	"fmt"
	"math"
	"runtime"

	"degentri/internal/graph"
	"degentri/internal/passes"
	"degentri/internal/sampling"
	"degentri/internal/stream"
)

// RNG stream keys of the sharded passes (the (seed, passKey, mergeKey)
// contract of internal/passes).
const (
	rngKeyNeighbors      = 30 // per-(instance, shard) neighbor banks
	rngKeyNeighborsMerge = 31 // per-instance shard-merge draws
)

// Config parameterizes the k-clique estimator.
type Config struct {
	// K is the clique size (K >= 3).
	K int
	// Epsilon is the target relative error (documentation only; the sample
	// sizes are controlled by the overrides or the guess-based formulas).
	Epsilon float64
	// Kappa is an upper bound on the degeneracy.
	Kappa int
	// CliqueGuess is a lower-bound guess for the k-clique count, used to size
	// the samples.
	CliqueGuess int64
	// CR and CL scale the edge-sample size r and the instance count ℓ.
	CR, CL float64
	// ROverride and LOverride bypass the formulas when positive.
	ROverride, LOverride int
	// Seed drives all randomness.
	Seed uint64
	// Workers bounds the concurrent shard workers inside each pass; 0 selects
	// GOMAXPROCS. The estimate is identical at any worker count.
	Workers int
}

// DefaultConfig returns a practical configuration.
func DefaultConfig(k int, epsilon float64, kappa int, guess int64) Config {
	return Config{K: k, Epsilon: epsilon, Kappa: kappa, CliqueGuess: guess, CR: 8, CL: 8, Seed: 1}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.K < 3 {
		return fmt.Errorf("clique: K must be >= 3, got %d", c.K)
	}
	if c.K > 8 {
		return fmt.Errorf("clique: K = %d unreasonably large for this estimator", c.K)
	}
	if c.Epsilon <= 0 || c.Epsilon >= 1 {
		return fmt.Errorf("clique: epsilon must be in (0,1), got %v", c.Epsilon)
	}
	if c.Kappa < 1 {
		return fmt.Errorf("clique: kappa must be >= 1, got %d", c.Kappa)
	}
	if c.CliqueGuess < 1 {
		return fmt.Errorf("clique: CliqueGuess must be >= 1, got %d", c.CliqueGuess)
	}
	if c.CR <= 0 || c.CL <= 0 {
		return fmt.Errorf("clique: CR and CL must be positive")
	}
	if c.Workers < 0 {
		return fmt.Errorf("clique: Workers must be non-negative, got %d", c.Workers)
	}
	return nil
}

// Result reports the estimate and resource usage. Passes is the logical
// pass count (the paper's metric); Scans is the physical scan count, equal
// to Passes for standalone runs and filled by the scheduler's owner for
// fused runs (EstimateOn leaves it zero).
type Result struct {
	Estimate      float64
	Passes        int
	Scans         int
	SpaceWords    int64
	EdgesInStream int
	SampledEdges  int
	Instances     int
	CliquesFound  int
}

// sampleSizeR returns r = CR · m·κ^{k-2} / guess, clamped to [1, m].
func (c Config) sampleSizeR(m int) int {
	if c.ROverride > 0 {
		if c.ROverride > m {
			return m
		}
		return c.ROverride
	}
	r := c.CR * float64(m) * math.Pow(float64(c.Kappa), float64(c.K-2)) / float64(c.CliqueGuess)
	return clampInt(int(math.Ceil(r)), 1, maxInt(m, 1))
}

// sampleSizeL returns ℓ = CL · m·d_R·κ^{k-3} / (r·guess), clamped to >= 1.
func (c Config) sampleSizeL(m, r int, dR int64) int {
	if c.LOverride > 0 {
		return c.LOverride
	}
	if dR <= 0 {
		return 1
	}
	l := c.CL * float64(m) * float64(dR) * math.Pow(float64(c.Kappa), float64(c.K-3)) /
		(float64(r) * float64(c.CliqueGuess))
	return clampInt(int(math.Ceil(l)), 1, 1<<26)
}

// instance is one degree-proportional estimator instance, stored flat (no
// per-instance pointers) so the hot loops walk one contiguous array.
type instance struct {
	edge    graph.Edge
	edgeDeg int
	light   int
	other   int
	// The k-2 sampled neighbors (aliases the merger's bank after pass 3).
	sampled []int
	// Adjacency requirements discovered in the closure pass.
	required int
	matched  int
	distinct bool
}

// Estimate runs the k-clique estimator over the stream. It uses four passes
// (plus a counting pass when the stream length is unknown), each its own
// physical scan: Result.Scans == Result.Passes.
func Estimate(src stream.Stream, cfg Config) (Result, error) {
	return EstimateCtx(context.Background(), src, cfg, stream.RetryPolicy{})
}

// EstimateCtx is Estimate under a cancellation context and a transient-I/O
// retry policy: a cancelled run aborts within one batch boundary, returning
// the context error wrapped with the scan position; transient read failures
// are healed under retry with bit-identical results.
func EstimateCtx(ctx context.Context, src stream.Stream, cfg Config, retry stream.RetryPolicy) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	counter := stream.NewPassCounter(src)
	m, known := counter.Len()
	prelude := 0
	if !known {
		var err error
		m, _, err = stream.CountEdgesCtx(ctx, counter, retry)
		if err != nil {
			return Result{}, err
		}
		prelude = 1
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	res, err := EstimateOn(passes.NewDirectCtx(ctx, counter, m, workers, retry), cfg)
	res.Passes += prelude
	res.Scans = res.Passes
	return res, err
}

// EstimateOn runs the k-clique estimator's passes through the given executor
// (the stream length and worker bound are the executor's). When the executor
// is a scan-scheduler client the passes fuse with other pending clients;
// results are bit-identical either way. Fused callers pass the scheduler's
// group meter (and any sub-group meters) as tees so the run's retained words
// count toward the concurrent peak.
func EstimateOn(x passes.Executor, cfg Config, tees ...*stream.SharedMeter) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	rng := sampling.NewRNG(cfg.Seed)
	meter := stream.NewSpaceMeter()
	for _, g := range tees {
		meter.Tee(g)
	}
	res := Result{}
	m := x.M()
	startPasses := x.Passes()
	finishPasses := func() { res.Passes = x.Passes() - startPasses }

	res.EdgesInStream = m
	if m == 0 {
		return res, nil
	}

	// Pass 1: uniform edge sample (with replacement), sharded over disjoint
	// position ranges. The passes poll the executor's context every batch;
	// this check stops a cancelled run before it starts scanning at all.
	if cerr := x.Context().Err(); cerr != nil {
		finishPasses()
		return res, fmt.Errorf("clique: run cancelled: %w", context.Cause(x.Context()))
	}
	r := cfg.sampleSizeR(m)
	res.SampledEdges = r
	R, err := passes.SampleUniformEdges(x, rng, r)
	if err != nil {
		finishPasses()
		return res, err
	}
	meter.Charge(int64(len(R)) * stream.WordsPerEdge)

	// Pass 2: degrees of endpoints of R, per-shard forks of a dense sorted
	// counter merged in shard order.
	endpoints := make([]int, 0, 2*len(R))
	for _, e := range R {
		endpoints = append(endpoints, e.U, e.V)
	}
	vertexDeg := graph.NewSortedCounter(endpoints)
	meter.Charge(int64(vertexDeg.Len()) * stream.WordsPerCounter)
	if err := passes.CountDegrees(x, vertexDeg); err != nil {
		finishPasses()
		return res, err
	}
	edgeDegs := make([]int64, len(R))
	var dR int64
	for i, e := range R {
		du, _ := vertexDeg.Get(e.U)
		dv, _ := vertexDeg.Get(e.V)
		de := du
		if dv < de {
			de = dv
		}
		edgeDegs[i] = int64(de)
		dR += int64(de)
	}
	if dR == 0 {
		finishPasses()
		res.SpaceWords = meter.Peak()
		return res, nil
	}

	// Instances proportional to d_e.
	l := cfg.sampleSizeL(m, r, dR)
	res.Instances = l
	cum, err := sampling.NewCumulativeSampler(edgeDegs)
	if err != nil {
		finishPasses()
		return res, err
	}
	extra := cfg.K - 2
	instances := make([]instance, l)
	lights := make([]int, l)
	for i := 0; i < l; i++ {
		idx := cum.Sample(rng)
		e := R[idx]
		inst := &instances[i]
		inst.edge = e
		inst.edgeDeg = int(edgeDegs[idx])
		du, _ := vertexDeg.Get(e.U)
		dv, _ := vertexDeg.Get(e.V)
		if du <= dv {
			inst.light, inst.other = e.U, e.V
		} else {
			inst.light, inst.other = e.V, e.U
		}
		lights[i] = inst.light
	}
	lightGroups := graph.NewVertexGroups(lights)
	meter.Charge(int64(l) * int64(6+2*extra) * stream.WordsPerScalar)

	// Pass 3: k-2 independent uniform neighbors of the light endpoint, via
	// per-(instance, shard) sample banks merged in shard order.
	banks, err := passes.SampleNeighborBanks(
		x, lightGroups, l, extra,
		cfg.Seed, rngKeyNeighbors, rngKeyNeighborsMerge)
	if err != nil {
		finishPasses()
		return res, err
	}
	for i := range instances {
		if banks[i].Has() {
			instances[i].sampled = banks[i].W
		}
	}

	// Pass 4: verify all remaining adjacencies of each candidate clique.
	// Every distinct candidate needs (k-2)(k-1)/2 checks; pre-size for the
	// worst case of all instances being candidates.
	checks := extra * (extra + 1) / 2
	needKeys := make([]graph.Edge, 0, l*checks)
	needInst := make([]int32, 0, l*checks)
	for i := range instances {
		instances[i].prepare(i, &needKeys, &needInst)
	}
	needed := graph.NewEdgeIndex(needKeys)
	meter.Charge(int64(needed.Keys()) * (stream.WordsPerEdge + stream.WordsPerScalar))
	if needed.Keys() > 0 {
		matched, err := passes.ClosureBits(x, needed, len(needInst), nil)
		if err != nil {
			finishPasses()
			return res, err
		}
		for it, instIdx := range needInst {
			if matched.Test(it) {
				instances[instIdx].matched++
			}
		}
	}

	// Final estimate.
	var sum float64
	for i := range instances {
		inst := &instances[i]
		if !inst.distinct || inst.matched < inst.required {
			continue
		}
		res.CliquesFound++
		sum += math.Pow(float64(inst.edgeDeg), float64(cfg.K-3))
	}
	meanV := sum / float64(l)
	pairs := float64(cfg.K*(cfg.K-1)) / 2
	factorial := 1.0
	for i := 2; i <= extra; i++ {
		factorial *= float64(i)
	}
	res.Estimate = float64(m) / float64(r) * float64(dR) * meanV / (factorial * pairs)
	finishPasses()
	res.SpaceWords = meter.Peak()
	return res, nil
}

// prepare validates distinctness and registers the adjacency checks the
// closure pass must confirm: every sampled vertex must be adjacent to the
// heavy endpoint, and all sampled vertices must be pairwise adjacent.
// (Adjacency to the light endpoint holds by construction.) Requirements are
// appended as (edge key, instance index) pairs for a graph.EdgeIndex.
func (inst *instance) prepare(idx int, needKeys *[]graph.Edge, needInst *[]int32) {
	if inst.sampled == nil {
		return
	}
	inst.distinct = true
	for i, w := range inst.sampled {
		if w < 0 || w == inst.other || w == inst.light {
			inst.distinct = false
			return
		}
		for j := 0; j < i; j++ {
			if inst.sampled[j] == w {
				inst.distinct = false
				return
			}
		}
	}
	for i, w := range inst.sampled {
		*needKeys = append(*needKeys, graph.NewEdge(inst.other, w))
		*needInst = append(*needInst, int32(idx))
		inst.required++
		for j := i + 1; j < len(inst.sampled); j++ {
			*needKeys = append(*needKeys, graph.NewEdge(w, inst.sampled[j]))
			*needInst = append(*needInst, int32(idx))
			inst.required++
		}
	}
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
