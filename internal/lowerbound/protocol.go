package lowerbound

import (
	"fmt"

	"degentri/internal/core"
)

// DetectionResult is the outcome of running a streaming triangle-detection
// protocol on a lower-bound instance.
type DetectionResult struct {
	// Detected reports whether the protocol declared "at least T triangles".
	Detected bool
	// Estimate is the underlying triangle estimate.
	Estimate float64
	// SpaceWords is the peak space of the streaming algorithm, which is what
	// the reduction converts into communication (space × passes × word size).
	SpaceWords int64
	// Passes is the number of stream passes.
	Passes int
	// CommunicationBits is the communication cost of the induced
	// set-disjointness protocol: each pass forwards the algorithm's memory
	// across the Alice/Bob cut once in each direction, so the cost is
	// 2 · passes · space · 64 bits.
	CommunicationBits int64
}

// DetectTriangles runs the paper's estimator on the instance and thresholds
// its estimate at half the instance's planted triangle count, the standard
// gap-detection use of an approximate counter. threshold <= 0 uses
// ExpectedTriangles()/2 computed for a single shared index (the promise gap).
func DetectTriangles(inst *Instance, cfg core.Config, threshold float64) (DetectionResult, error) {
	if threshold <= 0 {
		threshold = float64(inst.P) * float64(inst.P) * float64(inst.Q) / 2
	}
	src := inst.ShuffledStream(cfg.Seed + 7)
	res, err := core.EstimateTriangles(src, cfg)
	if err != nil {
		return DetectionResult{}, err
	}
	return DetectionResult{
		Detected:          res.Estimate >= threshold,
		Estimate:          res.Estimate,
		SpaceWords:        res.SpaceWords,
		Passes:            res.Passes,
		CommunicationBits: 2 * int64(res.Passes) * res.SpaceWords * 64,
	}, nil
}

// SolveDisjointness demonstrates the reduction end to end: given a
// disjointness instance and the construction parameters, it builds the graph,
// runs triangle detection, and answers "intersecting?" accordingly. The
// communication cost of the induced protocol is reported alongside.
func SolveDisjointness(d *Disjointness, p, q int, cfg core.Config) (bool, DetectionResult, error) {
	inst, err := BuildInstance(d, p, q)
	if err != nil {
		return false, DetectionResult{}, err
	}
	det, err := DetectTriangles(inst, cfg, 0)
	if err != nil {
		return false, DetectionResult{}, err
	}
	return det.Detected, det, nil
}

// MinimalDetectionSpace performs a doubling search over the estimator's
// explicit sample budget to find (approximately) the smallest space at which
// the estimator reliably separates a NO instance (with one shared index) from
// a YES instance, using `trials` trials per budget and requiring all of them
// to classify both instances correctly. It returns the space in words of the
// successful budget. This is the measurement behind the E7 experiment: the
// returned space should scale like mκ/T across the instance family.
func MinimalDetectionSpace(p, q, n, onesPerSide int, baseCfg core.Config, trials int, seed uint64) (int64, error) {
	if trials < 1 {
		return 0, fmt.Errorf("lowerbound: trials must be positive")
	}
	yesD, err := NewDisjointness(n, onesPerSide, false, seed)
	if err != nil {
		return 0, err
	}
	noD, err := NewDisjointness(n, onesPerSide, true, seed+1)
	if err != nil {
		return 0, err
	}
	yes, err := BuildInstance(yesD, p, q)
	if err != nil {
		return 0, err
	}
	no, err := BuildInstance(noD, p, q)
	if err != nil {
		return 0, err
	}
	threshold := float64(p) * float64(p) * float64(q) / 2

	for budget := 4; budget <= 1<<22; budget *= 2 {
		ok := true
		var lastSpace int64
		for trial := 0; trial < trials && ok; trial++ {
			cfg := baseCfg
			cfg.ROverride, cfg.LOverride, cfg.SOverride = budget, budget, maxIntLB(budget/4, 1)
			cfg.Seed = seed + uint64(trial)*131 + uint64(budget)

			noRes, err := DetectTriangles(no, cfg, threshold)
			if err != nil {
				return 0, err
			}
			yesRes, err := DetectTriangles(yes, cfg, threshold)
			if err != nil {
				return 0, err
			}
			if !noRes.Detected || yesRes.Detected {
				ok = false
			}
			if noRes.SpaceWords > lastSpace {
				lastSpace = noRes.SpaceWords
			}
		}
		if ok {
			return lastSpace, nil
		}
	}
	return 0, fmt.Errorf("lowerbound: no budget up to 2^22 separated the instances")
}

func maxIntLB(a, b int) int {
	if a > b {
		return a
	}
	return b
}
