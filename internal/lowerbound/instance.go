// Package lowerbound builds the hard-instance family behind Theorem 6.3 and
// provides a harness for the reduction from set-disjointness to
// triangle detection.
//
// The information-theoretic lower bound itself cannot be "run"; what the
// package reproduces is (a) the construction and its structural guarantees
// (degeneracy Θ(κ), triangle count T = p²q·|x∧y|, triangle-freeness for
// disjoint inputs), and (b) the empirical consequence: the space any of the
// implemented streaming algorithms needs to distinguish YES from NO instances
// scales as mκ/T, matching the lower bound's shape.
package lowerbound

import (
	"fmt"

	"degentri/internal/graph"
	"degentri/internal/sampling"
	"degentri/internal/stream"
)

// Disjointness is an instance of the promise set-disjointness problem
// disj^N_R: two N-bit strings with exactly R ones each that either share no
// index (YES / disjoint) or share at least one (NO / intersecting).
type Disjointness struct {
	N int
	X []bool
	Y []bool
}

// NewDisjointness builds a disjointness instance with exactly onesPerSide
// ones per string. If intersecting is true the two strings share exactly one
// index; otherwise they are disjoint (which requires 2·onesPerSide ≤ N).
func NewDisjointness(n, onesPerSide int, intersecting bool, seed uint64) (*Disjointness, error) {
	if onesPerSide < 1 || n < 1 {
		return nil, fmt.Errorf("lowerbound: need positive sizes, got n=%d ones=%d", n, onesPerSide)
	}
	if !intersecting && 2*onesPerSide > n {
		return nil, fmt.Errorf("lowerbound: disjoint instance needs 2·%d <= %d", onesPerSide, n)
	}
	if intersecting && onesPerSide > n {
		return nil, fmt.Errorf("lowerbound: %d ones do not fit in %d bits", onesPerSide, n)
	}
	rng := sampling.NewRNG(seed)
	perm := rng.Perm(n)
	d := &Disjointness{N: n, X: make([]bool, n), Y: make([]bool, n)}
	if intersecting {
		// Share the first permuted index; fill the rest disjointly as far as
		// possible (wrap-around overlap beyond the first shared index is
		// harmless for the promise, which only requires at least one shared
		// index in the NO case).
		shared := perm[0]
		d.X[shared] = true
		d.Y[shared] = true
		idx := 1
		for placed := 1; placed < onesPerSide && idx < n; placed, idx = placed+1, idx+1 {
			d.X[perm[idx]] = true
		}
		for placed := 1; placed < onesPerSide && idx < n; placed, idx = placed+1, idx+1 {
			d.Y[perm[idx]] = true
		}
	} else {
		for i := 0; i < onesPerSide; i++ {
			d.X[perm[i]] = true
		}
		for i := 0; i < onesPerSide; i++ {
			d.Y[perm[onesPerSide+i]] = true
		}
	}
	return d, nil
}

// Intersects reports whether the two strings share an index.
func (d *Disjointness) Intersects() bool {
	for i := range d.X {
		if d.X[i] && d.Y[i] {
			return true
		}
	}
	return false
}

// Intersections returns the number of shared indices.
func (d *Disjointness) Intersections() int {
	c := 0
	for i := range d.X {
		if d.X[i] && d.Y[i] {
			c++
		}
	}
	return c
}

// Instance is the graph instance of the triangle-detection problem produced
// by the Theorem 6.3 reduction.
type Instance struct {
	// P is the size of each side of the fixed complete bipartite core (p = κ).
	P int
	// Q is the size of each block V_i (q = κ^{r-2} in the theorem's notation).
	Q int
	// Disj is the underlying disjointness instance.
	Disj *Disjointness
	// Graph is the constructed graph.
	Graph *graph.Graph
	// AliceEdges and BobEdges are the edge sets contributed by the two
	// players; FixedEdges is the public complete bipartite core. The stream
	// order is Fixed, then Alice, then Bob — the order used by the one-way
	// reduction.
	FixedEdges, AliceEdges, BobEdges []graph.Edge
}

// BuildInstance constructs the Theorem 6.3 graph for the given disjointness
// instance: a complete bipartite core A×B with |A| = |B| = p, plus N blocks
// V_1..V_N of q vertices each; every vertex of V_i is joined to all of A when
// x_i = 1 (Alice) and to all of B when y_i = 1 (Bob).
func BuildInstance(d *Disjointness, p, q int) (*Instance, error) {
	if p < 1 || q < 1 {
		return nil, fmt.Errorf("lowerbound: p and q must be positive, got p=%d q=%d", p, q)
	}
	inst := &Instance{P: p, Q: q, Disj: d}
	// Vertex layout: A = [0, p), B = [p, 2p), block V_i = [2p + i·q, 2p + (i+1)·q).
	blockStart := func(i int) int { return 2*p + i*q }

	for a := 0; a < p; a++ {
		for b := 0; b < p; b++ {
			inst.FixedEdges = append(inst.FixedEdges, graph.NewEdge(a, p+b))
		}
	}
	for i := 0; i < d.N; i++ {
		if d.X[i] {
			for j := 0; j < q; j++ {
				v := blockStart(i) + j
				for a := 0; a < p; a++ {
					inst.AliceEdges = append(inst.AliceEdges, graph.NewEdge(v, a))
				}
			}
		}
		if d.Y[i] {
			for j := 0; j < q; j++ {
				v := blockStart(i) + j
				for b := 0; b < p; b++ {
					inst.BobEdges = append(inst.BobEdges, graph.NewEdge(v, p+b))
				}
			}
		}
	}

	b := graph.NewBuilder(2*p + d.N*q)
	b.AddEdges(inst.FixedEdges)
	b.AddEdges(inst.AliceEdges)
	b.AddEdges(inst.BobEdges)
	inst.Graph = b.Build()
	return inst, nil
}

// Stream returns the instance as an edge stream in the reduction's order:
// fixed core first, then Alice's edges, then Bob's edges.
func (inst *Instance) Stream() stream.Stream {
	edges := make([]graph.Edge, 0, len(inst.FixedEdges)+len(inst.AliceEdges)+len(inst.BobEdges))
	edges = append(edges, inst.FixedEdges...)
	edges = append(edges, inst.AliceEdges...)
	edges = append(edges, inst.BobEdges...)
	return stream.FromEdges(edges)
}

// ShuffledStream returns the instance's edges in a seeded arbitrary order,
// which is what the constant-pass arbitrary-order model allows.
func (inst *Instance) ShuffledStream(seed uint64) stream.Stream {
	return stream.FromGraphShuffled(inst.Graph, seed)
}

// ExpectedTriangles returns the triangle count implied by the construction:
// p²·q per shared index (each shared index i contributes a triangle for every
// (a, b, v) with a ∈ A, b ∈ B, v ∈ V_i).
func (inst *Instance) ExpectedTriangles() int64 {
	return int64(inst.P) * int64(inst.P) * int64(inst.Q) * int64(inst.Disj.Intersections())
}

// DegeneracyUpperBound returns the bound argued in the proof of Theorem 6.3:
// p for YES instances and 2p for NO instances, via the ordering that places
// all blocks before A before B.
func (inst *Instance) DegeneracyUpperBound() int {
	if inst.Disj.Intersects() {
		return 2 * inst.P
	}
	return inst.P
}

// ExpectedEdges returns m = p² + (#ones in x + #ones in y)·p·q.
func (inst *Instance) ExpectedEdges() int {
	ones := 0
	for i := range inst.Disj.X {
		if inst.Disj.X[i] {
			ones++
		}
		if inst.Disj.Y[i] {
			ones++
		}
	}
	return inst.P*inst.P + ones*inst.P*inst.Q
}
