package lowerbound

import (
	"testing"

	"degentri/internal/core"
)

func TestNewDisjointnessValidation(t *testing.T) {
	if _, err := NewDisjointness(0, 1, false, 1); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := NewDisjointness(10, 0, false, 1); err == nil {
		t.Error("ones=0 should fail")
	}
	if _, err := NewDisjointness(10, 6, false, 1); err == nil {
		t.Error("disjoint with 2*6 > 10 should fail")
	}
	if _, err := NewDisjointness(5, 6, true, 1); err == nil {
		t.Error("more ones than bits should fail")
	}
}

func TestNewDisjointnessYes(t *testing.T) {
	d, err := NewDisjointness(30, 10, false, 3)
	if err != nil {
		t.Fatal(err)
	}
	if d.Intersects() || d.Intersections() != 0 {
		t.Fatal("YES instance intersects")
	}
	if countOnes(d.X) != 10 || countOnes(d.Y) != 10 {
		t.Fatalf("ones: %d, %d", countOnes(d.X), countOnes(d.Y))
	}
}

func TestNewDisjointnessNo(t *testing.T) {
	d, err := NewDisjointness(30, 10, true, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Intersects() {
		t.Fatal("NO instance does not intersect")
	}
	if d.Intersections() != 1 {
		t.Fatalf("intersections = %d, want exactly 1", d.Intersections())
	}
	if countOnes(d.X) != 10 || countOnes(d.Y) != 10 {
		t.Fatalf("ones: %d, %d", countOnes(d.X), countOnes(d.Y))
	}
}

func countOnes(bits []bool) int {
	c := 0
	for _, b := range bits {
		if b {
			c++
		}
	}
	return c
}

func TestBuildInstanceValidation(t *testing.T) {
	d, _ := NewDisjointness(10, 3, false, 1)
	if _, err := BuildInstance(d, 0, 2); err == nil {
		t.Error("p=0 should fail")
	}
	if _, err := BuildInstance(d, 2, 0); err == nil {
		t.Error("q=0 should fail")
	}
}

func TestInstanceStructureYes(t *testing.T) {
	// YES instance: triangle free, degeneracy exactly p.
	for _, p := range []int{2, 4, 8} {
		d, err := NewDisjointness(12, 4, false, uint64(p))
		if err != nil {
			t.Fatal(err)
		}
		inst, err := BuildInstance(d, p, 3)
		if err != nil {
			t.Fatal(err)
		}
		g := inst.Graph
		if g.TriangleCount() != 0 {
			t.Errorf("p=%d: YES instance has %d triangles", p, g.TriangleCount())
		}
		if inst.ExpectedTriangles() != 0 {
			t.Errorf("p=%d: expected triangles should be 0", p)
		}
		if got := g.Degeneracy(); got != p {
			t.Errorf("p=%d: degeneracy = %d, want %d", p, got, p)
		}
		if got := inst.DegeneracyUpperBound(); got != p {
			t.Errorf("p=%d: claimed bound %d", p, got)
		}
		if g.NumEdges() != inst.ExpectedEdges() {
			t.Errorf("p=%d: m=%d want %d", p, g.NumEdges(), inst.ExpectedEdges())
		}
		if g.NumVertices() != 2*p+12*3 {
			t.Errorf("p=%d: n=%d", p, g.NumVertices())
		}
	}
}

func TestInstanceStructureNo(t *testing.T) {
	// NO instance: T = p²·q·(#intersections), degeneracy in [p, 2p].
	for _, pq := range [][2]int{{2, 2}, {4, 3}, {6, 5}} {
		p, q := pq[0], pq[1]
		d, err := NewDisjointness(12, 4, true, uint64(7*p+q))
		if err != nil {
			t.Fatal(err)
		}
		inst, err := BuildInstance(d, p, q)
		if err != nil {
			t.Fatal(err)
		}
		g := inst.Graph
		if g.TriangleCount() != inst.ExpectedTriangles() {
			t.Errorf("p=%d q=%d: T=%d, want %d", p, q, g.TriangleCount(), inst.ExpectedTriangles())
		}
		if inst.ExpectedTriangles() != int64(p*p*q) {
			t.Errorf("expected triangles %d, want %d", inst.ExpectedTriangles(), p*p*q)
		}
		k := g.Degeneracy()
		if k < p || k > 2*p {
			t.Errorf("p=%d q=%d: degeneracy %d outside [p, 2p]", p, q, k)
		}
		if k > inst.DegeneracyUpperBound() {
			t.Errorf("degeneracy %d exceeds claimed bound %d", k, inst.DegeneracyUpperBound())
		}
		if g.NumEdges() != inst.ExpectedEdges() {
			t.Errorf("m=%d want %d", g.NumEdges(), inst.ExpectedEdges())
		}
	}
}

func TestInstanceStreams(t *testing.T) {
	d, _ := NewDisjointness(8, 3, true, 5)
	inst, err := BuildInstance(d, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	s := inst.Stream()
	if m, ok := s.Len(); !ok || m != len(inst.FixedEdges)+len(inst.AliceEdges)+len(inst.BobEdges) {
		t.Fatalf("stream length %d, ok=%v", m, ok)
	}
	sh := inst.ShuffledStream(1)
	if m, ok := sh.Len(); !ok || m != inst.Graph.NumEdges() {
		t.Fatalf("shuffled stream length %d", m)
	}
}

func TestDetectTrianglesSeparatesInstances(t *testing.T) {
	p, q := 6, 4
	yesD, _ := NewDisjointness(20, 8, false, 2)
	noD, _ := NewDisjointness(20, 8, true, 3)
	yes, err := BuildInstance(yesD, p, q)
	if err != nil {
		t.Fatal(err)
	}
	no, err := BuildInstance(noD, p, q)
	if err != nil {
		t.Fatal(err)
	}

	cfg := core.DefaultConfig(0.3, 2*p, int64(p*p*q))
	cfg.CR, cfg.CL, cfg.CS = 16, 16, 4
	cfg.Seed = 11

	noRes, err := DetectTriangles(no, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !noRes.Detected {
		t.Fatalf("NO instance not detected (estimate %.1f, want >= %d)", noRes.Estimate, p*p*q/2)
	}
	yesRes, err := DetectTriangles(yes, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if yesRes.Detected {
		t.Fatalf("YES instance falsely detected (estimate %.1f)", yesRes.Estimate)
	}
	if noRes.CommunicationBits <= 0 {
		t.Error("communication accounting missing")
	}
}

func TestSolveDisjointness(t *testing.T) {
	cfg := core.DefaultConfig(0.3, 12, 144)
	cfg.CR, cfg.CL, cfg.CS = 16, 16, 4
	d, _ := NewDisjointness(16, 6, true, 9)
	ans, det, err := SolveDisjointness(d, 6, 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !ans {
		t.Fatalf("intersecting instance answered NO (estimate %.1f)", det.Estimate)
	}
	d2, _ := NewDisjointness(16, 6, false, 10)
	ans2, _, err := SolveDisjointness(d2, 6, 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ans2 {
		t.Fatal("disjoint instance answered YES")
	}
}

func TestMinimalDetectionSpace(t *testing.T) {
	cfg := core.DefaultConfig(0.3, 8, 64)
	space, err := MinimalDetectionSpace(4, 4, 12, 4, cfg, 2, 21)
	if err != nil {
		t.Fatal(err)
	}
	if space <= 0 {
		t.Fatalf("space = %d", space)
	}
	if _, err := MinimalDetectionSpace(4, 4, 12, 4, cfg, 0, 21); err == nil {
		t.Error("trials=0 should fail")
	}
}
