package gen

import (
	"fmt"

	"degentri/internal/graph"
	"degentri/internal/sampling"
)

// HolmeKim returns a preferential-attachment graph with triad formation
// (Holme & Kim, "Growing scale-free networks with tunable clustering").
// Starting from a clique on k+1 vertices, every new vertex makes k links:
// the first by preferential attachment, and each subsequent one either by
// triad formation (connect to a uniformly random neighbor of the previous
// target, closing a triangle) with probability triadProb, or by preferential
// attachment otherwise.
//
// The family keeps the two properties the paper highlights for real-world
// graphs: bounded degeneracy (κ = k exactly, since every vertex after the
// seed clique has back-degree k) and high triangle density (T grows linearly
// in n, roughly (k-1)·triadProb·n, versus the polylogarithmic count of pure
// Barabási–Albert). It is the default "social network" workload of the
// experiments.
func HolmeKim(n, k int, triadProb float64, seed uint64) *graph.Graph {
	if k < 1 || n < k+1 {
		panic(fmt.Sprintf("gen: Holme–Kim needs n >= k+1 >= 2, got n=%d k=%d", n, k))
	}
	if triadProb < 0 || triadProb > 1 {
		panic(fmt.Sprintf("gen: Holme–Kim triad probability %v outside [0,1]", triadProb))
	}
	rng := sampling.NewRNG(seed)
	b := graph.NewBuilder(n)
	// endpoints holds one entry per edge endpoint, so uniform draws are
	// degree-proportional. adj holds the growing adjacency used for triad
	// formation.
	var endpoints []int
	adj := make([][]int, n)
	addEdge := func(u, v int) bool {
		if u == v {
			return false
		}
		for _, w := range adj[u] {
			if w == v {
				return false
			}
		}
		b.AddEdge(u, v)
		adj[u] = append(adj[u], v)
		adj[v] = append(adj[v], u)
		endpoints = append(endpoints, u, v)
		return true
	}
	for u := 0; u <= k; u++ {
		for v := u + 1; v <= k; v++ {
			addEdge(u, v)
		}
	}
	for v := k + 1; v < n; v++ {
		prev := -1
		links := 0
		for links < k {
			target := -1
			if prev >= 0 && rng.Bernoulli(triadProb) && len(adj[prev]) > 0 {
				// Triad formation: a random neighbor of the previous target.
				target = adj[prev][rng.Intn(len(adj[prev]))]
			}
			if target < 0 || target == v {
				target = endpoints[rng.Intn(len(endpoints))]
			}
			if addEdge(v, target) {
				prev = target
				links++
			} else if len(adj[v]) >= v {
				// Degenerate corner: v is already adjacent to every existing
				// vertex (only possible for tiny n); stop early.
				break
			}
		}
	}
	return b.Build()
}
