// Package gen generates the graph families used throughout the reproduction.
//
// The paper's motivation rests on graph classes with small degeneracy —
// planar graphs, minor-closed families, preferential attachment graphs — and
// its proofs use specific gadgets (the wheel graph of §1.1, the "book" graph
// of §1.2 whose triangles all share one edge, and the complete-bipartite-plus-
// blocks construction behind the lower bound). This package builds all of
// them deterministically from explicit seeds so experiments are reproducible
// and ground truth (m, T, κ) is either known in closed form or cheaply
// computable.
package gen

import (
	"fmt"

	"degentri/internal/graph"
)

// Path returns the path graph on n vertices (n-1 edges, no triangles, κ=1
// for n >= 2).
func Path(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for v := 0; v+1 < n; v++ {
		b.AddEdge(v, v+1)
	}
	return b.Build()
}

// Cycle returns the cycle graph on n vertices (n >= 3). κ = 2, T = 0 for
// n > 3 and T = 1 for n = 3.
func Cycle(n int) *graph.Graph {
	if n < 3 {
		panic(fmt.Sprintf("gen: cycle needs n >= 3, got %d", n))
	}
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		b.AddEdge(v, (v+1)%n)
	}
	return b.Build()
}

// Star returns the star graph: vertex 0 joined to vertices 1..n-1. κ = 1,
// ∆ = n-1, T = 0. Stars stress the gap between maximum degree and
// degeneracy that the paper's bound exploits.
func Star(n int) *graph.Graph {
	if n < 2 {
		panic(fmt.Sprintf("gen: star needs n >= 2, got %d", n))
	}
	b := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		b.AddEdge(0, v)
	}
	return b.Build()
}

// Complete returns the complete graph K_n. κ = n-1, T = C(n,3).
func Complete(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			b.AddEdge(u, v)
		}
	}
	return b.Build()
}

// CompleteBipartite returns K_{p,q} with parts {0..p-1} and {p..p+q-1}.
// It is triangle-free with degeneracy min(p,q).
func CompleteBipartite(p, q int) *graph.Graph {
	if p < 0 || q < 0 {
		panic("gen: negative part size")
	}
	b := graph.NewBuilder(p + q)
	for a := 0; a < p; a++ {
		for c := 0; c < q; c++ {
			b.AddEdge(a, p+c)
		}
	}
	return b.Build()
}

// Wheel returns the wheel graph of §1.1: a hub (vertex 0) joined to every
// vertex of a cycle on vertices 1..n-1. For n >= 5 it is planar with κ = 3,
// m = 2(n-1) edges and exactly T = n-1 triangles, the paper's example of a
// graph where the degeneracy bound gives polylogarithmic space while the
// worst-case bounds are Ω(√n).
func Wheel(n int) *graph.Graph {
	if n < 4 {
		panic(fmt.Sprintf("gen: wheel needs n >= 4, got %d", n))
	}
	b := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		b.AddEdge(0, v)
		next := v + 1
		if next == n {
			next = 1
		}
		b.AddEdge(v, next)
	}
	return b.Build()
}

// WheelTriangles returns the exact triangle count of Wheel(n).
func WheelTriangles(n int) int64 {
	if n == 4 {
		return 4 // K4
	}
	return int64(n - 1)
}

// Book returns the "book" (triangle fan) graph of §1.2: pages triangles all
// sharing the common spine edge {0,1}; vertex 2+i is the apex of page i.
// n = pages+2, m = 2·pages+1, T = pages, κ = 2, and the spine edge lies on
// every triangle — the worst case for per-edge triangle variance that
// motivates the assignment rule.
func Book(pages int) *graph.Graph {
	if pages < 1 {
		panic(fmt.Sprintf("gen: book needs at least one page, got %d", pages))
	}
	b := graph.NewBuilder(pages + 2)
	b.AddEdge(0, 1)
	for i := 0; i < pages; i++ {
		apex := 2 + i
		b.AddEdge(0, apex)
		b.AddEdge(1, apex)
	}
	return b.Build()
}

// Grid returns the rows×cols grid graph (planar, triangle-free, κ = 2 for
// grids with both dimensions >= 2).
func Grid(rows, cols int) *graph.Graph {
	if rows < 1 || cols < 1 {
		panic("gen: grid dimensions must be positive")
	}
	idx := func(r, c int) int { return r*cols + c }
	b := graph.NewBuilder(rows * cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.AddEdge(idx(r, c), idx(r, c+1))
			}
			if r+1 < rows {
				b.AddEdge(idx(r, c), idx(r+1, c))
			}
		}
	}
	return b.Build()
}

// TriangularGrid returns a planar triangulated grid: the rows×cols grid with
// one diagonal added per cell. Every cell contributes two triangles, κ <= 5
// (planar), and the triangle count is 2·(rows-1)·(cols-1).
func TriangularGrid(rows, cols int) *graph.Graph {
	if rows < 2 || cols < 2 {
		panic("gen: triangular grid needs both dimensions >= 2")
	}
	idx := func(r, c int) int { return r*cols + c }
	b := graph.NewBuilder(rows * cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.AddEdge(idx(r, c), idx(r, c+1))
			}
			if r+1 < rows {
				b.AddEdge(idx(r, c), idx(r+1, c))
			}
			if r+1 < rows && c+1 < cols {
				b.AddEdge(idx(r, c), idx(r+1, c+1))
			}
		}
	}
	return b.Build()
}

// Friendship returns the friendship (windmill) graph F_k: k triangles all
// sharing a single hub vertex 0. n = 2k+1, m = 3k, T = k, κ = 2. Unlike the
// book graph the triangles share a vertex but not an edge.
func Friendship(k int) *graph.Graph {
	if k < 1 {
		panic("gen: friendship graph needs k >= 1")
	}
	b := graph.NewBuilder(2*k + 1)
	for i := 0; i < k; i++ {
		u, v := 1+2*i, 2+2*i
		b.AddEdge(0, u)
		b.AddEdge(0, v)
		b.AddEdge(u, v)
	}
	return b.Build()
}

// Apollonian returns an Apollonian network (stacked planar triangulation)
// produced by repeatedly inserting a vertex inside a face and joining it to
// the face's three corners, `insertions` times, starting from a single
// triangle. The result is a maximal planar chordal graph with κ = 3 and
// T = 3·insertions + 1 triangles... every insertion adds a vertex of degree
// 3 whose three new edges create exactly 3 new triangles.
// Faces are chosen round-robin to keep the construction deterministic and
// balanced.
func Apollonian(insertions int) *graph.Graph {
	if insertions < 0 {
		panic("gen: negative insertions")
	}
	b := graph.NewBuilder(3 + insertions)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 2)
	faces := [][3]int{{0, 1, 2}}
	next := 3
	for i := 0; i < insertions; i++ {
		f := faces[i%len(faces)]
		v := next
		next++
		b.AddEdge(v, f[0])
		b.AddEdge(v, f[1])
		b.AddEdge(v, f[2])
		faces = append(faces, [3]int{v, f[0], f[1]}, [3]int{v, f[1], f[2]}, [3]int{v, f[0], f[2]})
	}
	return b.Build()
}
