package gen

import (
	"fmt"
	"math"
	"slices"

	"degentri/internal/graph"
	"degentri/internal/sampling"
)

// ErdosRenyiGNP returns a G(n, p) random graph: every unordered pair is an
// edge independently with probability p. The construction uses geometric
// skipping so the running time is O(n + m) rather than O(n²).
func ErdosRenyiGNP(n int, p float64, seed uint64) *graph.Graph {
	if n < 0 || p < 0 || p > 1 {
		panic(fmt.Sprintf("gen: bad G(n,p) parameters n=%d p=%v", n, p))
	}
	b := graph.NewBuilder(n)
	if p == 0 || n < 2 {
		return b.Build()
	}
	rng := sampling.NewRNG(seed)
	if p == 1 {
		return Complete(n)
	}
	// Iterate over pair indices 0..C(n,2)-1 with geometric jumps.
	total := int64(n) * int64(n-1) / 2
	idx := int64(-1)
	for {
		idx += rng.Geometric(p)
		if idx >= total {
			break
		}
		u, v := pairFromIndex(idx, n)
		b.AddEdge(u, v)
	}
	return b.Build()
}

// pairFromIndex maps a linear index in [0, C(n,2)) to the corresponding
// unordered pair (u, v) with u < v, enumerating pairs row by row.
func pairFromIndex(idx int64, n int) (int, int) {
	u := 0
	remainingInRow := int64(n - 1)
	for idx >= remainingInRow {
		idx -= remainingInRow
		u++
		remainingInRow = int64(n - 1 - u)
	}
	v := u + 1 + int(idx)
	return u, v
}

// ErdosRenyiGNM returns a G(n, m) random graph with exactly m distinct edges
// chosen uniformly among all pairs. It panics if m exceeds C(n,2).
func ErdosRenyiGNM(n, m int, seed uint64) *graph.Graph {
	maxEdges := int64(n) * int64(n-1) / 2
	if int64(m) > maxEdges {
		panic(fmt.Sprintf("gen: G(n,m) with m=%d > C(%d,2)=%d", m, n, maxEdges))
	}
	rng := sampling.NewRNG(seed)
	b := graph.NewBuilder(n)
	// Track distinctness here instead of polling b.NumEdges() per draw: the
	// builder dedups lazily (sort+compact), so NumEdges in a tight loop
	// would re-sort the accumulated edges every iteration.
	seen := make(map[int64]struct{}, m)
	for len(seen) < m {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if u != v {
			e := graph.NewEdge(u, v)
			key := int64(e.U)<<32 | int64(e.V)
			if _, ok := seen[key]; !ok {
				seen[key] = struct{}{}
				b.AddEdge(u, v)
			}
		}
	}
	return b.Build()
}

// BarabasiAlbert returns a preferential-attachment graph: starting from a
// clique on k+1 vertices, each new vertex attaches to k distinct existing
// vertices chosen with probability proportional to their current degree.
// The degeneracy is exactly k (every vertex added after the seed clique has
// back-degree k, and the seed clique K_{k+1} has degeneracy k), making the
// family the paper's canonical "constant degeneracy, many triangles" class.
func BarabasiAlbert(n, k int, seed uint64) *graph.Graph {
	if k < 1 || n < k+1 {
		panic(fmt.Sprintf("gen: Barabási–Albert needs n >= k+1 >= 2, got n=%d k=%d", n, k))
	}
	rng := sampling.NewRNG(seed)
	b := graph.NewBuilder(n)
	// Repeated-endpoint list: vertex v appears once per incident edge, so a
	// uniform draw from the list is a degree-proportional draw.
	var endpoints []int
	for u := 0; u <= k; u++ {
		for v := u + 1; v <= k; v++ {
			b.AddEdge(u, v)
			endpoints = append(endpoints, u, v)
		}
	}
	// Targets are collected in draw order (k is small, so the dedup is a
	// linear scan): iterating a set here would feed map iteration order back
	// into the endpoint list and make the generated graph nondeterministic
	// for a fixed seed.
	targets := make([]int, 0, k)
	for v := k + 1; v < n; v++ {
		targets = targets[:0]
		for len(targets) < k {
			t := endpoints[rng.Intn(len(endpoints))]
			if !slices.Contains(targets, t) {
				targets = append(targets, t)
			}
		}
		for _, t := range targets {
			b.AddEdge(v, t)
			endpoints = append(endpoints, v, t)
		}
	}
	return b.Build()
}

// ChungLu returns a random graph with a power-law expected degree sequence
// (exponent beta > 2, target average degree avgDeg), using the efficient
// Miller–Hagberg construction with geometric skipping. Real-world social and
// web graphs motivating the paper are commonly modeled this way: heavy-tailed
// degrees, small degeneracy, and many triangles.
func ChungLu(n int, avgDeg, beta float64, seed uint64) *graph.Graph {
	if n < 2 || avgDeg <= 0 || beta <= 2 {
		panic(fmt.Sprintf("gen: bad Chung–Lu parameters n=%d avgDeg=%v beta=%v", n, avgDeg, beta))
	}
	rng := sampling.NewRNG(seed)
	// Power-law weights, largest first: w_i = c·(i+1)^{-1/(beta-1)}, scaled so
	// that the average weight is avgDeg.
	w := make([]float64, n)
	exp := -1.0 / (beta - 1)
	var sum float64
	for i := 0; i < n; i++ {
		w[i] = math.Pow(float64(i+1), exp)
		sum += w[i]
	}
	scale := avgDeg * float64(n) / sum
	var total float64
	for i := range w {
		w[i] *= scale
		total += w[i]
	}
	// Cap weights at sqrt(total) so pair probabilities stay <= 1.
	cap_ := math.Sqrt(total)
	for i := range w {
		if w[i] > cap_ {
			w[i] = cap_
		}
	}

	b := graph.NewBuilder(n)
	for i := 0; i < n-1; i++ {
		j := i + 1
		p := math.Min(1, w[i]*w[j]/total)
		for j < n && p > 0 {
			if p < 1 {
				skip := int64(math.Floor(math.Log(rng.Float64Open()) / math.Log(1-p)))
				if skip > int64(n) {
					skip = int64(n)
				}
				j += int(skip)
			}
			if j < n {
				q := math.Min(1, w[i]*w[j]/total)
				if rng.Float64() < q/p {
					b.AddEdge(i, j)
				}
				p = q
				j++
			}
		}
	}
	return b.Build()
}

// PlantedBook returns a sparse base graph (G(n, m) with the given seed) with
// an additional book of `pages` triangles planted on the edge {0,1}. It is
// used by variance-stress experiments: most triangles concentrate on one
// edge while the rest of the graph supplies "noise" edges.
func PlantedBook(n, m, pages int, seed uint64) *graph.Graph {
	base := ErdosRenyiGNM(n, m, seed)
	b := graph.NewBuilder(n)
	for _, e := range base.Edges() {
		b.AddEdge(e.U, e.V)
	}
	if n < pages+2 {
		panic("gen: PlantedBook needs n >= pages+2")
	}
	b.AddEdge(0, 1)
	for i := 0; i < pages; i++ {
		apex := 2 + i
		b.AddEdge(0, apex)
		b.AddEdge(1, apex)
	}
	return b.Build()
}

// StarPlusTriangles returns a graph with a large star (hub 0, `leaves`
// leaves) plus `tris` disjoint triangles on separate vertices. It has
// maximum degree `leaves`, degeneracy 2, and exactly `tris` triangles —
// a family where ∆-parameterized one-pass algorithms (space m∆/T) are far
// worse than the degeneracy bound mκ/T.
func StarPlusTriangles(leaves, tris int) *graph.Graph {
	if leaves < 1 || tris < 1 {
		panic("gen: StarPlusTriangles needs positive parameters")
	}
	n := 1 + leaves + 3*tris
	b := graph.NewBuilder(n)
	for v := 1; v <= leaves; v++ {
		b.AddEdge(0, v)
	}
	base := 1 + leaves
	for t := 0; t < tris; t++ {
		a, bb, c := base+3*t, base+3*t+1, base+3*t+2
		b.AddEdge(a, bb)
		b.AddEdge(bb, c)
		b.AddEdge(a, c)
	}
	return b.Build()
}
