package gen

import "testing"

func TestHolmeKimValidation(t *testing.T) {
	assertPanics(t, func() { HolmeKim(3, 5, 0.5, 1) })
	assertPanics(t, func() { HolmeKim(100, 0, 0.5, 1) })
	assertPanics(t, func() { HolmeKim(100, 3, -0.1, 1) })
	assertPanics(t, func() { HolmeKim(100, 3, 1.1, 1) })
}

func TestHolmeKimStructure(t *testing.T) {
	n, k := 5000, 4
	g := HolmeKim(n, k, 0.6, 7)
	if g.NumVertices() != n {
		t.Fatalf("n = %d", g.NumVertices())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Every vertex after the seed clique adds at most k edges.
	maxEdges := k*(k+1)/2 + (n-k-1)*k
	if g.NumEdges() > maxEdges {
		t.Fatalf("m = %d exceeds %d", g.NumEdges(), maxEdges)
	}
	if got := g.Degeneracy(); got != k {
		t.Fatalf("degeneracy = %d, want %d", got, k)
	}
	// Triad formation should produce Θ(n) triangles — far more than pure
	// preferential attachment at this size.
	if g.TriangleCount() < int64(n) {
		t.Fatalf("T = %d, expected at least n = %d with triad formation", g.TriangleCount(), n)
	}
	ba := BarabasiAlbert(n, k, 7)
	if g.TriangleCount() <= 2*ba.TriangleCount() {
		t.Fatalf("Holme–Kim T=%d should far exceed BA T=%d", g.TriangleCount(), ba.TriangleCount())
	}
}

func TestHolmeKimDeterministic(t *testing.T) {
	a := HolmeKim(800, 3, 0.5, 11)
	b := HolmeKim(800, 3, 0.5, 11)
	if a.NumEdges() != b.NumEdges() || a.TriangleCount() != b.TriangleCount() {
		t.Fatal("same seed produced different graphs")
	}
	c := HolmeKim(800, 3, 0.5, 12)
	if a.TriangleCount() == c.TriangleCount() && a.NumEdges() == c.NumEdges() {
		t.Log("different seeds produced identical summary statistics (possible but unlikely)")
	}
}

func TestHolmeKimZeroTriadIsPlainPA(t *testing.T) {
	g := HolmeKim(2000, 3, 0, 5)
	if g.Degeneracy() != 3 {
		t.Fatalf("degeneracy = %d", g.Degeneracy())
	}
	// With no triad formation the triangle count should be modest, like BA.
	if g.TriangleCount() > int64(g.NumVertices()) {
		t.Fatalf("unexpectedly many triangles without triad formation: %d", g.TriangleCount())
	}
}

func TestHolmeKimTriadProbabilityMonotone(t *testing.T) {
	low := HolmeKim(3000, 4, 0.2, 9)
	high := HolmeKim(3000, 4, 0.9, 9)
	if high.TriangleCount() <= low.TriangleCount() {
		t.Fatalf("triangles should increase with triad probability: %d vs %d",
			low.TriangleCount(), high.TriangleCount())
	}
}
