package gen

import (
	"testing"
	"testing/quick"

	"degentri/internal/graph"
)

func TestPath(t *testing.T) {
	g := Path(5)
	if g.NumVertices() != 5 || g.NumEdges() != 4 {
		t.Fatalf("path: %v", g)
	}
	if g.TriangleCount() != 0 || g.Degeneracy() != 1 {
		t.Fatal("path should be triangle free with degeneracy 1")
	}
	if Path(1).NumEdges() != 0 {
		t.Error("single-vertex path has no edges")
	}
}

func TestCycle(t *testing.T) {
	g := Cycle(3)
	if g.TriangleCount() != 1 {
		t.Error("C3 is a triangle")
	}
	g = Cycle(12)
	if g.NumEdges() != 12 || g.TriangleCount() != 0 || g.Degeneracy() != 2 {
		t.Fatalf("C12: m=%d T=%d κ=%d", g.NumEdges(), g.TriangleCount(), g.Degeneracy())
	}
	assertPanics(t, func() { Cycle(2) })
}

func TestStar(t *testing.T) {
	g := Star(100)
	if g.NumEdges() != 99 || g.MaxDegree() != 99 || g.Degeneracy() != 1 || g.TriangleCount() != 0 {
		t.Fatalf("star: %v κ=%d", g, g.Degeneracy())
	}
	assertPanics(t, func() { Star(1) })
}

func TestComplete(t *testing.T) {
	g := Complete(7)
	if g.NumEdges() != 21 || g.TriangleCount() != 35 || g.Degeneracy() != 6 {
		t.Fatalf("K7: m=%d T=%d κ=%d", g.NumEdges(), g.TriangleCount(), g.Degeneracy())
	}
}

func TestCompleteBipartite(t *testing.T) {
	g := CompleteBipartite(3, 5)
	if g.NumEdges() != 15 || g.TriangleCount() != 0 || g.Degeneracy() != 3 {
		t.Fatalf("K3,5: m=%d T=%d κ=%d", g.NumEdges(), g.TriangleCount(), g.Degeneracy())
	}
	assertPanics(t, func() { CompleteBipartite(-1, 2) })
}

func TestWheelProperties(t *testing.T) {
	for _, n := range []int{5, 10, 101, 1000} {
		g := Wheel(n)
		if g.NumEdges() != 2*(n-1) {
			t.Errorf("wheel(%d): m=%d, want %d", n, g.NumEdges(), 2*(n-1))
		}
		if got := g.TriangleCount(); got != WheelTriangles(n) {
			t.Errorf("wheel(%d): T=%d, want %d", n, got, WheelTriangles(n))
		}
		if k := g.Degeneracy(); k != 3 {
			t.Errorf("wheel(%d): κ=%d, want 3", n, k)
		}
	}
	// n=4 is K4.
	if Wheel(4).TriangleCount() != 4 || WheelTriangles(4) != 4 {
		t.Error("wheel(4) should be K4 with 4 triangles")
	}
	assertPanics(t, func() { Wheel(3) })
}

func TestBookProperties(t *testing.T) {
	for _, pages := range []int{1, 2, 17, 500} {
		g := Book(pages)
		if g.NumVertices() != pages+2 || g.NumEdges() != 2*pages+1 {
			t.Fatalf("book(%d): %v", pages, g)
		}
		if g.TriangleCount() != int64(pages) {
			t.Errorf("book(%d): T=%d", pages, g.TriangleCount())
		}
		if g.Degeneracy() != 2 {
			t.Errorf("book(%d): κ=%d, want 2", pages, g.Degeneracy())
		}
		// The spine edge participates in every triangle.
		if g.TrianglesOfEdge(graph.NewEdge(0, 1)) != int64(pages) {
			t.Errorf("book(%d): spine edge triangle count %d", pages, g.TrianglesOfEdge(graph.NewEdge(0, 1)))
		}
	}
	assertPanics(t, func() { Book(0) })
}

func TestGrid(t *testing.T) {
	g := Grid(4, 6)
	wantM := 4*5 + 6*3 // horizontal + vertical
	if g.NumEdges() != wantM {
		t.Fatalf("grid edges = %d, want %d", g.NumEdges(), wantM)
	}
	if g.TriangleCount() != 0 || g.Degeneracy() != 2 {
		t.Error("grid should be triangle-free with degeneracy 2")
	}
	if Grid(1, 5).NumEdges() != 4 {
		t.Error("1xN grid is a path")
	}
	assertPanics(t, func() { Grid(0, 3) })
}

func TestTriangularGrid(t *testing.T) {
	rows, cols := 5, 7
	g := TriangularGrid(rows, cols)
	wantT := int64(2 * (rows - 1) * (cols - 1))
	if g.TriangleCount() != wantT {
		t.Fatalf("triangular grid T=%d, want %d", g.TriangleCount(), wantT)
	}
	if k := g.Degeneracy(); k > 5 {
		t.Errorf("triangular grid degeneracy %d exceeds planar bound 5", k)
	}
	assertPanics(t, func() { TriangularGrid(1, 5) })
}

func TestFriendship(t *testing.T) {
	g := Friendship(25)
	if g.NumVertices() != 51 || g.NumEdges() != 75 || g.TriangleCount() != 25 {
		t.Fatalf("friendship: %v T=%d", g, g.TriangleCount())
	}
	if g.Degeneracy() != 2 {
		t.Errorf("friendship degeneracy %d, want 2", g.Degeneracy())
	}
	assertPanics(t, func() { Friendship(0) })
}

func TestApollonian(t *testing.T) {
	for _, ins := range []int{0, 1, 5, 50, 200} {
		g := Apollonian(ins)
		if g.NumVertices() != 3+ins {
			t.Fatalf("apollonian(%d): n=%d", ins, g.NumVertices())
		}
		wantT := int64(1 + 3*ins)
		if g.TriangleCount() != wantT {
			t.Errorf("apollonian(%d): T=%d, want %d", ins, g.TriangleCount(), wantT)
		}
		wantK := 3
		if ins == 0 {
			wantK = 2
		}
		if g.Degeneracy() != wantK {
			t.Errorf("apollonian(%d): κ=%d, want %d", ins, g.Degeneracy(), wantK)
		}
	}
	assertPanics(t, func() { Apollonian(-1) })
}

func TestErdosRenyiGNP(t *testing.T) {
	g := ErdosRenyiGNP(200, 0.05, 7)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Expected edges = 0.05 * C(200,2) = 995; allow wide tolerance.
	m := g.NumEdges()
	if m < 800 || m > 1200 {
		t.Errorf("G(200,0.05) produced %d edges, expected ~995", m)
	}
	// Determinism.
	g2 := ErdosRenyiGNP(200, 0.05, 7)
	if g2.NumEdges() != m {
		t.Error("same seed produced different graphs")
	}
	if ErdosRenyiGNP(100, 0, 1).NumEdges() != 0 {
		t.Error("p=0 should give empty graph")
	}
	if ErdosRenyiGNP(10, 1, 1).NumEdges() != 45 {
		t.Error("p=1 should give complete graph")
	}
	assertPanics(t, func() { ErdosRenyiGNP(10, 1.5, 1) })
}

func TestPairFromIndex(t *testing.T) {
	n := 6
	seen := make(map[[2]int]bool)
	total := n * (n - 1) / 2
	for idx := 0; idx < total; idx++ {
		u, v := pairFromIndex(int64(idx), n)
		if u < 0 || v <= u || v >= n {
			t.Fatalf("bad pair (%d,%d) for index %d", u, v, idx)
		}
		key := [2]int{u, v}
		if seen[key] {
			t.Fatalf("pair (%d,%d) repeated", u, v)
		}
		seen[key] = true
	}
	if len(seen) != total {
		t.Fatalf("enumerated %d pairs, want %d", len(seen), total)
	}
}

func TestErdosRenyiGNM(t *testing.T) {
	g := ErdosRenyiGNM(500, 2000, 3)
	if g.NumEdges() != 2000 {
		t.Fatalf("G(n,m) has %d edges, want 2000", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	assertPanics(t, func() { ErdosRenyiGNM(4, 100, 1) })
}

func TestBarabasiAlbert(t *testing.T) {
	n, k := 2000, 4
	g := BarabasiAlbert(n, k, 11)
	if g.NumVertices() != n {
		t.Fatalf("BA n=%d", g.NumVertices())
	}
	wantM := k*(k+1)/2 + (n-k-1)*k
	if g.NumEdges() != wantM {
		t.Fatalf("BA m=%d, want %d", g.NumEdges(), wantM)
	}
	if got := g.Degeneracy(); got != k {
		t.Fatalf("BA degeneracy %d, want %d", got, k)
	}
	if g.TriangleCount() == 0 {
		t.Error("preferential attachment should create triangles")
	}
	// Determinism.
	if BarabasiAlbert(n, k, 11).NumEdges() != g.NumEdges() {
		t.Error("same seed gave different graphs")
	}
	assertPanics(t, func() { BarabasiAlbert(3, 5, 1) })
}

func TestChungLu(t *testing.T) {
	n := 3000
	g := ChungLu(n, 8, 2.5, 5)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	avg := 2 * float64(g.NumEdges()) / float64(n)
	if avg < 3 || avg > 16 {
		t.Errorf("Chung–Lu average degree %.2f far from target 8", avg)
	}
	// Power-law graphs should have far smaller degeneracy than max degree.
	if g.Degeneracy() >= g.MaxDegree() && g.MaxDegree() > 10 {
		t.Errorf("degeneracy %d not below max degree %d", g.Degeneracy(), g.MaxDegree())
	}
	if g.TriangleCount() == 0 {
		t.Error("expected some triangles in a dense-core power-law graph")
	}
	assertPanics(t, func() { ChungLu(10, 2, 1.5, 1) })
}

func TestPlantedBook(t *testing.T) {
	g := PlantedBook(500, 1000, 100, 9)
	if g.TrianglesOfEdge(graph.NewEdge(0, 1)) < 100 {
		t.Errorf("planted spine has only %d triangles", g.TrianglesOfEdge(graph.NewEdge(0, 1)))
	}
	if g.TriangleCount() < 100 {
		t.Error("planted triangles missing")
	}
	assertPanics(t, func() { PlantedBook(10, 5, 20, 1) })
}

func TestStarPlusTriangles(t *testing.T) {
	g := StarPlusTriangles(1000, 50)
	if g.MaxDegree() != 1000 {
		t.Errorf("max degree %d", g.MaxDegree())
	}
	if g.Degeneracy() != 2 {
		t.Errorf("degeneracy %d, want 2", g.Degeneracy())
	}
	if g.TriangleCount() != 50 {
		t.Errorf("T=%d, want 50", g.TriangleCount())
	}
	assertPanics(t, func() { StarPlusTriangles(0, 1) })
}

// Property: all generators respect the Chiba–Nishizeki bounds d_E <= 2mκ and
// T <= 2mκ (Lemma 3.1, Corollary 3.2).
func TestGeneratorsChibaNishizekiProperty(t *testing.T) {
	f := func(seed uint64, raw uint8) bool {
		n := 20 + int(raw%80)
		graphs := []*graph.Graph{
			Wheel(n),
			Book(n),
			BarabasiAlbert(n+10, 3, seed),
			ErdosRenyiGNM(n, 2*n, seed),
			ChungLu(n+50, 5, 2.6, seed),
		}
		for _, g := range graphs {
			m := int64(g.NumEdges())
			k := int64(g.Degeneracy())
			if g.EdgeDegreeSum() > 2*m*k {
				return false
			}
			if g.TriangleCount() > 2*m*k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func assertPanics(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	fn()
}
