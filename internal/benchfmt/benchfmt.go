// Package benchfmt defines the versioned BENCH_N.json benchmark-trajectory
// schema and the tolerance-band comparison that turns the trajectory into a
// machine-checked regression gate (cmd/benchdiff).
//
// A schema-v2 file records one benchmark run: the environment it ran on, and
// per workload (a corpus graph) its structural facts (n, m, exact T, κ, the
// streaming κ̂) plus a set of named metrics. Every metric carries its own
// comparison contract — direction, class, and tolerance — so the checked-in
// baseline file defines what counts as a regression, not the diff tool:
//
//   - class "deterministic" metrics (estimates, relative error, passes,
//     scans, space words) hard-fail a diff when they regress beyond the
//     baseline's tolerance band;
//   - class "timing" metrics (edges/s, wall-clock) only warn, because CI
//     hardware varies run to run.
//
// BENCH_0–3.json predate the schema (hand-curated prose around raw numbers);
// ReadAny loads them as legacy entries so the trajectory table can span every
// PR, but they carry no comparable metrics.
package benchfmt

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sort"
)

// SchemaVersion is the current BENCH_N.json schema. Version 1 is reserved
// for the pre-schema hand-curated files (BENCH_0–3.json), which carry no
// schema_version field at all.
const SchemaVersion = 2

// ErrSchemaVersion is returned (wrapped) when a file declares a schema
// version this package does not understand.
var ErrSchemaVersion = errors.New("benchfmt: unsupported schema version")

// Metric classes. Deterministic metrics gate merges; timing metrics only
// warn (CI hardware varies).
const (
	ClassDeterministic = "deterministic"
	ClassTiming        = "timing"
)

// Metric directions: which way "worse" points.
const (
	BetterLower  = "lower"  // regressions are increases
	BetterHigher = "higher" // regressions are decreases
	BetterExact  = "exact"  // any drift beyond AbsTol is a regression
)

// Metric is one measured value plus its comparison contract. The contract
// lives in the baseline file: when cmd/benchdiff compares a candidate against
// a committed baseline, the baseline metric's Better/Class/RelTol/AbsTol
// decide whether the candidate's value is a regression.
type Metric struct {
	Value float64 `json:"value"`
	Unit  string  `json:"unit,omitempty"`
	// Better is BetterLower, BetterHigher, or BetterExact.
	Better string `json:"better"`
	// Class is ClassDeterministic (regressions hard-fail) or ClassTiming
	// (regressions warn).
	Class string `json:"class"`
	// RelTol is the allowed relative regression (e.g. 0.10 = 10% worse than
	// baseline is still acceptable). Ignored for BetterExact.
	RelTol float64 `json:"rel_tol,omitempty"`
	// AbsTol is the allowed absolute regression; it is the only slack when
	// the baseline value is exactly zero (a relative band around zero is
	// empty) and the equality slack for BetterExact metrics.
	AbsTol float64 `json:"abs_tol,omitempty"`
}

// Workload is one benchmark graph with its structural facts and metrics.
// The structural facts (N, M, ExactT, Kappa, KappaApprox) are compared
// exactly by Diff: they are pinned properties of the corpus, and drift means
// the corpus itself changed out from under the trajectory.
type Workload struct {
	// Graph is the corpus name (e.g. "ca-GrQc"), the join key for diffs.
	Graph string `json:"graph"`
	// Source is "real", "offline-standin", or "generator".
	Source string `json:"source"`
	// Category is the corpus category (collaboration, social, web, road).
	Category string `json:"category,omitempty"`
	N        int    `json:"n"`
	M        int    `json:"m"`
	// ExactT is the exact triangle count (ground truth for error metrics).
	ExactT int64 `json:"exact_t"`
	// Kappa is the exact degeneracy κ.
	Kappa int `json:"kappa"`
	// KappaApprox is the streaming peel's certified bound κ̂
	// (κ ≤ κ̂ ≤ 2(1+ε)κ); deterministic, so compared exactly.
	KappaApprox int `json:"kappa_approx"`
	// Metrics maps metric name (e.g. "err.median.eps0.10") to its value and
	// comparison contract. encoding/json renders map keys sorted, so files
	// are diff-stable.
	Metrics map[string]Metric `json:"metrics"`
}

// Environment records where the run happened. Informational only — Diff
// never compares environments (that is the whole reason timing metrics are
// warn-only).
type Environment struct {
	GOOS   string `json:"goos"`
	GOARCH string `json:"goarch"`
	CPUs   int    `json:"cpus"`
	Go     string `json:"go"`
}

// HostEnvironment captures the current process's environment.
func HostEnvironment() Environment {
	return Environment{
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
		CPUs:   runtime.NumCPU(),
		Go:     runtime.Version(),
	}
}

// File is one BENCH_N.json trajectory entry.
type File struct {
	SchemaVersion int `json:"schema_version"`
	// Entry is N in BENCH_N.json: the position in the trajectory.
	Entry int `json:"benchmark_trajectory_entry"`
	// PR is the pull request the entry records.
	PR          int         `json:"pr"`
	Date        string      `json:"date"`
	Environment Environment `json:"environment"`
	Commands    []string    `json:"commands,omitempty"`
	Workloads   []Workload  `json:"workloads"`
	Notes       []string    `json:"notes,omitempty"`

	// Legacy marks a pre-schema file loaded by ReadAny (BENCH_0–3.json).
	// Legacy files appear in the -history trajectory but have no workloads
	// to diff. Never serialized.
	Legacy bool `json:"-"`
}

// Workload returns the workload with the given graph name.
func (f *File) Workload(graph string) (Workload, bool) {
	for _, w := range f.Workloads {
		if w.Graph == graph {
			return w, true
		}
	}
	return Workload{}, false
}

// SortWorkloads orders workloads by graph name so emitted files are stable.
func (f *File) SortWorkloads() {
	sort.Slice(f.Workloads, func(i, j int) bool { return f.Workloads[i].Graph < f.Workloads[j].Graph })
}

// Write marshals the file (indented, stable key order) to path.
func Write(path string, f *File) error {
	f.SchemaVersion = SchemaVersion
	f.SortWorkloads()
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return fmt.Errorf("benchfmt: marshal: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("benchfmt: %w", err)
	}
	return nil
}

// Read loads a schema-v2 file. Files that declare a different schema version
// (including pre-schema files with none) are rejected with an error wrapping
// ErrSchemaVersion; use ReadAny when legacy entries are acceptable.
func Read(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("benchfmt: %w", err)
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("benchfmt: parse %s: %w", path, err)
	}
	if f.SchemaVersion != SchemaVersion {
		return nil, fmt.Errorf("%w: %s declares version %d, want %d",
			ErrSchemaVersion, path, f.SchemaVersion, SchemaVersion)
	}
	return &f, nil
}

// legacyFile matches the hand-curated shape of BENCH_0–3.json closely enough
// to recover the trajectory metadata (entry, PR, date, environment, notes).
type legacyFile struct {
	Entry       int      `json:"benchmark_trajectory_entry"`
	PR          int      `json:"pr"`
	Date        string   `json:"date"`
	Environment struct { // legacy files also carry cpu model and goos/goarch
		GOOS   string `json:"goos"`
		GOARCH string `json:"goarch"`
		CPUs   int    `json:"cpus"`
		Go     string `json:"go"`
	} `json:"environment"`
	Notes []string `json:"notes"`
}

// ReadAny loads path as a schema-v2 file, falling back to the legacy
// pre-schema reader for files without a schema_version field (whose shape —
// e.g. an object-valued "commands" — the v2 parser would reject outright).
// Legacy files come back with Legacy set, no workloads, and SchemaVersion 1.
func ReadAny(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("benchfmt: %w", err)
	}
	// A file that *declares* an unknown version is an error, not legacy:
	// legacy files predate the field entirely.
	var probe struct {
		SchemaVersion *int `json:"schema_version"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, fmt.Errorf("benchfmt: parse %s: %w", path, err)
	}
	if probe.SchemaVersion != nil {
		if *probe.SchemaVersion != SchemaVersion {
			return nil, fmt.Errorf("%w: %s declares version %d, want %d",
				ErrSchemaVersion, path, *probe.SchemaVersion, SchemaVersion)
		}
		return Read(path)
	}
	var lf legacyFile
	if jsonErr := json.Unmarshal(data, &lf); jsonErr != nil {
		return nil, fmt.Errorf("benchfmt: parse legacy %s: %w", path, jsonErr)
	}
	return &File{
		SchemaVersion: 1,
		Entry:         lf.Entry,
		PR:            lf.PR,
		Date:          lf.Date,
		Environment: Environment{
			GOOS: lf.Environment.GOOS, GOARCH: lf.Environment.GOARCH,
			CPUs: lf.Environment.CPUs, Go: lf.Environment.Go,
		},
		Notes:  lf.Notes,
		Legacy: true,
	}, nil
}
