package benchfmt

import (
	"strings"
	"testing"
)

// mkFile builds a one-workload file with the given metrics on top of fixed
// structural facts.
func mkFile(metrics map[string]Metric) *File {
	return &File{
		Entry: 4, PR: 8,
		Workloads: []Workload{{
			Graph: "g", Source: "offline-standin",
			N: 100, M: 400, ExactT: 50, Kappa: 3, KappaApprox: 5,
			Metrics: metrics,
		}},
	}
}

func findDelta(t *testing.T, r *DiffResult, metric string) Delta {
	t.Helper()
	for _, d := range r.Deltas {
		if d.Metric == metric {
			return d
		}
	}
	t.Fatalf("no delta for metric %q in %+v", metric, r.Deltas)
	return Delta{}
}

func TestDiffWithinToleranceOK(t *testing.T) {
	base := mkFile(map[string]Metric{
		"err": {Value: 0.10, Better: BetterLower, Class: ClassDeterministic, RelTol: 0.25},
	})
	cand := mkFile(map[string]Metric{
		"err": {Value: 0.12, Better: BetterLower, Class: ClassDeterministic},
	})
	r := Diff(base, cand)
	if r.Failed() {
		t.Fatalf("within-tolerance diff failed: %+v", r.Deltas)
	}
	if d := findDelta(t, r, "err"); d.Severity != SevOK {
		t.Errorf("err severity = %s, want ok", d.Severity)
	}
}

func TestDiffDeterministicRegressionFails(t *testing.T) {
	base := mkFile(map[string]Metric{
		"scans": {Value: 10, Better: BetterLower, Class: ClassDeterministic},
	})
	cand := mkFile(map[string]Metric{
		"scans": {Value: 20, Better: BetterLower, Class: ClassDeterministic},
	})
	r := Diff(base, cand)
	if !r.Failed() {
		t.Fatal("doubled scan count did not fail the diff")
	}
	if d := findDelta(t, r, "scans"); d.Severity != SevFail {
		t.Errorf("scans severity = %s, want fail", d.Severity)
	}
	// Fewer scans is an improvement, never a failure.
	better := mkFile(map[string]Metric{"scans": {Value: 5, Better: BetterLower, Class: ClassDeterministic}})
	r2 := Diff(base, better)
	if r2.Failed() {
		t.Fatalf("improvement failed the diff: %+v", r2.Deltas)
	}
	if d := findDelta(t, r2, "scans"); d.Severity != SevImproved {
		t.Errorf("improved scans severity = %s, want improved", d.Severity)
	}
}

func TestDiffTimingRegressionWarnsOnly(t *testing.T) {
	base := mkFile(map[string]Metric{
		"edges_per_s": {Value: 1e8, Better: BetterHigher, Class: ClassTiming, RelTol: 0.2},
	})
	cand := mkFile(map[string]Metric{
		"edges_per_s": {Value: 1e7, Better: BetterHigher, Class: ClassTiming},
	})
	r := Diff(base, cand)
	if r.Failed() {
		t.Fatalf("timing regression hard-failed: %+v", r.Deltas)
	}
	if r.Warns == 0 {
		t.Fatal("10x timing regression produced no warning")
	}
	if d := findDelta(t, r, "edges_per_s"); d.Severity != SevWarn {
		t.Errorf("edges_per_s severity = %s, want warn", d.Severity)
	}
}

func TestDiffMissingMetric(t *testing.T) {
	base := mkFile(map[string]Metric{
		"scans": {Value: 10, Better: BetterLower, Class: ClassDeterministic},
		"wall":  {Value: 100, Better: BetterLower, Class: ClassTiming},
	})
	cand := mkFile(map[string]Metric{})
	r := Diff(base, cand)
	if !r.Failed() {
		t.Fatal("missing deterministic metric did not fail")
	}
	if d := findDelta(t, r, "scans"); d.Severity != SevMissing {
		t.Errorf("missing scans severity = %s, want missing", d.Severity)
	}
	// A missing *timing* metric only warns.
	if d := findDelta(t, r, "wall"); d.Severity != SevWarn {
		t.Errorf("missing wall severity = %s, want warn", d.Severity)
	}
}

func TestDiffNewMetricAndWorkloadInformational(t *testing.T) {
	base := mkFile(map[string]Metric{
		"scans": {Value: 10, Better: BetterLower, Class: ClassDeterministic},
	})
	cand := mkFile(map[string]Metric{
		"scans": {Value: 10, Better: BetterLower, Class: ClassDeterministic},
		"shiny": {Value: 1, Better: BetterLower, Class: ClassDeterministic},
	})
	cand.Workloads = append(cand.Workloads, Workload{Graph: "extra"})
	r := Diff(base, cand)
	if r.Failed() || r.Warns != 0 {
		t.Fatalf("new metric/workload caused fails=%d warns=%d", r.Fails, r.Warns)
	}
	if d := findDelta(t, r, "shiny"); d.Severity != SevNew {
		t.Errorf("new metric severity = %s, want new", d.Severity)
	}
}

func TestDiffExactZeroBaseline(t *testing.T) {
	// Relative tolerance around zero is an empty band: only AbsTol allows
	// any drift at all.
	base := mkFile(map[string]Metric{
		"err.zero":  {Value: 0, Better: BetterLower, Class: ClassDeterministic, RelTol: 0.5},
		"err.slack": {Value: 0, Better: BetterLower, Class: ClassDeterministic, RelTol: 0.5, AbsTol: 0.01},
	})
	cand := mkFile(map[string]Metric{
		"err.zero":  {Value: 0.005},
		"err.slack": {Value: 0.005},
	})
	r := Diff(base, cand)
	if d := findDelta(t, r, "err.zero"); d.Severity != SevFail {
		t.Errorf("zero baseline with no AbsTol: severity = %s, want fail", d.Severity)
	}
	if d := findDelta(t, r, "err.slack"); d.Severity != SevOK {
		t.Errorf("zero baseline within AbsTol: severity = %s, want ok", d.Severity)
	}
}

func TestDiffExactMetric(t *testing.T) {
	base := mkFile(map[string]Metric{
		"estimate": {Value: 123.456, Better: BetterExact, Class: ClassDeterministic},
	})
	same := mkFile(map[string]Metric{"estimate": {Value: 123.456}})
	if r := Diff(base, same); r.Failed() {
		t.Fatalf("bit-identical estimate failed: %+v", r.Deltas)
	}
	drift := mkFile(map[string]Metric{"estimate": {Value: 123.4561}})
	if r := Diff(base, drift); !r.Failed() {
		t.Fatal("estimate drift did not fail an exact metric")
	}
	// Exact metrics fail in *both* directions.
	lower := mkFile(map[string]Metric{"estimate": {Value: 100}})
	if r := Diff(base, lower); !r.Failed() {
		t.Fatal("downward estimate drift did not fail an exact metric")
	}
}

func TestDiffStructuralDrift(t *testing.T) {
	base := mkFile(nil)
	cand := mkFile(nil)
	cand.Workloads[0].ExactT = 51
	r := Diff(base, cand)
	if !r.Failed() {
		t.Fatal("exact_t drift did not fail")
	}
	if d := findDelta(t, r, "exact_t"); d.Severity != SevFail {
		t.Errorf("exact_t severity = %s, want fail", d.Severity)
	}

	cand2 := mkFile(nil)
	cand2.Workloads[0].KappaApprox = 6
	if r := Diff(base, cand2); !r.Failed() {
		t.Fatal("kappa_approx drift did not fail")
	}
}

func TestDiffMissingWorkload(t *testing.T) {
	base := mkFile(nil)
	cand := &File{Workloads: nil}
	r := Diff(base, cand)
	if !r.Failed() {
		t.Fatal("missing workload did not fail")
	}
}

func TestMarkdownRendersRegressionsFirst(t *testing.T) {
	base := mkFile(map[string]Metric{
		"a.ok":   {Value: 1, Better: BetterLower, Class: ClassDeterministic, RelTol: 1},
		"b.bad":  {Value: 10, Better: BetterLower, Class: ClassDeterministic},
		"c.warn": {Value: 100, Better: BetterLower, Class: ClassTiming},
	})
	cand := mkFile(map[string]Metric{
		"a.ok":   {Value: 1},
		"b.bad":  {Value: 99},
		"c.warn": {Value: 500},
	})
	r := Diff(base, cand)
	md := r.Markdown("BENCH_4.json", "candidate.json")
	iBad := strings.Index(md, "b.bad")
	iWarn := strings.Index(md, "c.warn")
	iOK := strings.Index(md, "a.ok")
	if iBad < 0 || iWarn < 0 || iOK < 0 {
		t.Fatalf("markdown missing rows:\n%s", md)
	}
	if !(iBad < iWarn && iWarn < iOK) {
		t.Errorf("markdown rows not ordered fail < warn < ok:\n%s", md)
	}
	if !strings.Contains(md, "1 hard failure(s)") {
		t.Errorf("markdown summary line wrong:\n%s", md)
	}
}
