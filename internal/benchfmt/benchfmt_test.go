package benchfmt

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func sampleFile() *File {
	return &File{
		SchemaVersion: SchemaVersion,
		Entry:         4,
		PR:            8,
		Date:          "2026-08-08",
		Environment: Environment{
			GOOS: "linux", GOARCH: "amd64", CPUs: 1, Go: "go1.24.0",
		},
		Workloads: []Workload{
			{
				Graph: "ca-GrQc", Source: "offline-standin", Category: "collaboration",
				N: 5242, M: 26170, ExactT: 48260, Kappa: 5, KappaApprox: 9,
				Metrics: map[string]Metric{
					"err.median.eps0.10": {Value: 0.031, Better: BetterLower, Class: ClassDeterministic, RelTol: 0.25, AbsTol: 0.02},
					"scans.fused":        {Value: 9, Better: BetterLower, Class: ClassDeterministic},
					"space.peak_words":   {Value: 120000, Better: BetterLower, Class: ClassDeterministic, RelTol: 0.10},
					"edges_per_s.bex":    {Value: 4.5e8, Better: BetterHigher, Class: ClassTiming, RelTol: 0.5},
				},
			},
		},
		Notes: []string{"test fixture"},
	}
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_t.json")
	want := sampleFile()
	if err := Write(path, want); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(path)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got.SchemaVersion != SchemaVersion {
		t.Errorf("SchemaVersion = %d, want %d", got.SchemaVersion, SchemaVersion)
	}
	if got.Entry != 4 || got.PR != 8 || got.Date != "2026-08-08" {
		t.Errorf("identity fields did not round-trip: %+v", got)
	}
	w, ok := got.Workload("ca-GrQc")
	if !ok {
		t.Fatal("workload ca-GrQc missing after round trip")
	}
	if w.ExactT != 48260 || w.Kappa != 5 || w.KappaApprox != 9 {
		t.Errorf("structural facts did not round-trip: %+v", w)
	}
	m := w.Metrics["err.median.eps0.10"]
	if m.Value != 0.031 || m.Better != BetterLower || m.Class != ClassDeterministic || m.RelTol != 0.25 {
		t.Errorf("metric contract did not round-trip: %+v", m)
	}
	// Writing twice must produce byte-identical files (stable key order).
	path2 := filepath.Join(t.TempDir(), "BENCH_t2.json")
	if err := Write(path2, sampleFile()); err != nil {
		t.Fatalf("Write again: %v", err)
	}
	a, _ := os.ReadFile(path)
	b, _ := os.ReadFile(path2)
	if string(a) != string(b) {
		t.Error("two writes of the same file differ byte-for-byte")
	}
}

func TestReadRejectsWrongSchemaVersion(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]string{
		"future.json":  `{"schema_version": 99, "pr": 1}`,
		"zero.json":    `{"schema_version": 0, "pr": 1}`,
		"missing.json": `{"pr": 1, "benchmark_trajectory_entry": 0}`,
	}
	for name, body := range cases {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := Read(path)
		if !errors.Is(err, ErrSchemaVersion) {
			t.Errorf("Read(%s) error = %v, want ErrSchemaVersion", name, err)
		}
	}
}

func TestReadAnyLegacy(t *testing.T) {
	dir := t.TempDir()
	legacy := `{
		"benchmark_trajectory_entry": 2,
		"pr": 5,
		"date": "2026-07-28",
		"environment": {"goos": "linux", "goarch": "amd64", "cpus": 1, "go": "go1.24.0"},
		"commands": {"experiments": "go test ..."},
		"notes": ["fusion: 54 to 7 scans"]
	}`
	path := filepath.Join(dir, "BENCH_2.json")
	if err := os.WriteFile(path, []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := ReadAny(path)
	if err != nil {
		t.Fatalf("ReadAny legacy: %v", err)
	}
	if !f.Legacy {
		t.Error("legacy file not flagged Legacy")
	}
	if f.Entry != 2 || f.PR != 5 || f.Environment.Go != "go1.24.0" {
		t.Errorf("legacy metadata not recovered: %+v", f)
	}
	if len(f.Notes) != 1 || !strings.Contains(f.Notes[0], "54 to 7") {
		t.Errorf("legacy notes not recovered: %v", f.Notes)
	}

	// A file that explicitly declares an unknown version is an error, not a
	// legacy fallback.
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schema_version": 7}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadAny(bad); !errors.Is(err, ErrSchemaVersion) {
		t.Errorf("ReadAny(declared v7) error = %v, want ErrSchemaVersion", err)
	}

	// And a current-schema file loads identically through ReadAny.
	cur := filepath.Join(dir, "BENCH_4.json")
	if err := Write(cur, sampleFile()); err != nil {
		t.Fatal(err)
	}
	f2, err := ReadAny(cur)
	if err != nil {
		t.Fatalf("ReadAny v2: %v", err)
	}
	if f2.Legacy || len(f2.Workloads) != 1 {
		t.Errorf("v2 file mangled by ReadAny: legacy=%v workloads=%d", f2.Legacy, len(f2.Workloads))
	}
}

func TestHistoryTable(t *testing.T) {
	legacy := &File{SchemaVersion: 1, Entry: 0, PR: 1, Date: "2026-07-28", Legacy: true,
		Notes: []string{"seed baseline"}}
	cur := sampleFile()
	out := HistoryTable([]*File{cur, legacy}) // deliberately out of order
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("history table has %d lines, want 4:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[2], "| 0 | 1 |") || !strings.Contains(lines[2], "legacy") {
		t.Errorf("legacy row wrong or out of order: %s", lines[2])
	}
	if !strings.Contains(lines[3], "| 4 | 8 |") || !strings.Contains(lines[3], "v2") {
		t.Errorf("v2 row wrong: %s", lines[3])
	}
}
