package benchfmt

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Severity of one compared metric, from best to worst.
const (
	SevImproved = "improved"
	SevOK       = "ok"
	SevNew      = "new"     // candidate-only metric or workload: informational
	SevWarn     = "warn"    // timing regression, or timing metric missing
	SevFail     = "fail"    // deterministic regression beyond tolerance
	SevMissing  = "missing" // baseline deterministic metric absent from candidate
)

// Delta is one compared (workload, metric) pair.
type Delta struct {
	Workload string
	Metric   string
	Base     float64
	Cand     float64
	Severity string
	Note     string
}

// DiffResult is the full comparison of a candidate run against a baseline.
type DiffResult struct {
	Deltas []Delta
	Fails  int
	Warns  int
}

// Failed reports whether the diff found any hard regression.
func (r *DiffResult) Failed() bool { return r.Fails > 0 }

func (r *DiffResult) add(d Delta) {
	switch d.Severity {
	case SevFail, SevMissing:
		r.Fails++
	case SevWarn:
		r.Warns++
	}
	r.Deltas = append(r.Deltas, d)
}

// Diff compares a candidate file against the committed baseline. The
// baseline's metric contracts (Better/Class/RelTol/AbsTol) define the
// tolerance bands; candidate-side contracts are ignored. Structural workload
// facts (n, m, exact T, κ, κ̂) are compared exactly — they are pinned corpus
// properties, and drift fails the diff like any deterministic regression.
func Diff(base, cand *File) *DiffResult {
	res := &DiffResult{}
	for _, bw := range base.Workloads {
		cw, ok := cand.Workload(bw.Graph)
		if !ok {
			res.add(Delta{Workload: bw.Graph, Metric: "(workload)", Severity: SevMissing,
				Note: "workload missing from candidate"})
			continue
		}
		diffStructural(res, bw, cw)
		names := make([]string, 0, len(bw.Metrics))
		for name := range bw.Metrics {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			bm := bw.Metrics[name]
			cm, ok := cw.Metrics[name]
			if !ok {
				sev := SevMissing
				if bm.Class == ClassTiming {
					sev = SevWarn
				}
				res.add(Delta{Workload: bw.Graph, Metric: name, Base: bm.Value,
					Severity: sev, Note: "metric missing from candidate"})
				continue
			}
			res.add(compareMetric(bw.Graph, name, bm, cm.Value))
		}
		// Candidate-only metrics are surfaced but never gate: a new metric
		// has no baseline contract to regress against.
		cnames := make([]string, 0, len(cw.Metrics))
		for name := range cw.Metrics {
			if _, ok := bw.Metrics[name]; !ok {
				cnames = append(cnames, name)
			}
		}
		sort.Strings(cnames)
		for _, name := range cnames {
			res.add(Delta{Workload: bw.Graph, Metric: name, Cand: cw.Metrics[name].Value,
				Severity: SevNew, Note: "new metric (not in baseline)"})
		}
	}
	for _, cw := range cand.Workloads {
		if _, ok := base.Workload(cw.Graph); !ok {
			res.add(Delta{Workload: cw.Graph, Metric: "(workload)", Severity: SevNew,
				Note: "new workload (not in baseline)"})
		}
	}
	return res
}

// diffStructural compares the pinned corpus facts of one workload.
func diffStructural(res *DiffResult, bw, cw Workload) {
	facts := []struct {
		name       string
		base, cand float64
	}{
		{"n", float64(bw.N), float64(cw.N)},
		{"m", float64(bw.M), float64(cw.M)},
		{"exact_t", float64(bw.ExactT), float64(cw.ExactT)},
		{"kappa", float64(bw.Kappa), float64(cw.Kappa)},
		{"kappa_approx", float64(bw.KappaApprox), float64(cw.KappaApprox)},
	}
	for _, f := range facts {
		if f.base != f.cand {
			res.add(Delta{Workload: bw.Graph, Metric: f.name, Base: f.base, Cand: f.cand,
				Severity: SevFail, Note: "pinned corpus fact drifted"})
		}
	}
}

// compareMetric applies the baseline contract to one (base, cand) value pair.
func compareMetric(workload, name string, bm Metric, cand float64) Delta {
	d := Delta{Workload: workload, Metric: name, Base: bm.Value, Cand: cand}

	var regression float64 // how far past "no worse", in the metric's units
	var improved bool
	switch bm.Better {
	case BetterHigher:
		regression = bm.Value - cand
		improved = cand > bm.Value
	case BetterExact:
		regression = math.Abs(cand - bm.Value)
	default: // BetterLower, and the safe default for unlabeled metrics
		regression = cand - bm.Value
		improved = cand < bm.Value
	}

	// The tolerance band: a relative band around the baseline plus an
	// absolute slack. When the baseline is exactly zero the relative band is
	// empty and AbsTol is the only allowance — an exact-zero baseline with
	// no AbsTol tolerates no regression at all.
	allow := bm.AbsTol
	if bm.Better != BetterExact {
		allow += bm.RelTol * math.Abs(bm.Value)
	}

	switch {
	case regression > allow:
		if bm.Class == ClassTiming {
			d.Severity = SevWarn
			d.Note = fmt.Sprintf("timing regression %s (warn-only: CI hardware varies)", deltaNote(bm, regression))
		} else {
			d.Severity = SevFail
			d.Note = fmt.Sprintf("regressed %s beyond tolerance %s", deltaNote(bm, regression), tolNote(bm))
		}
	case improved && regression < -allow:
		d.Severity = SevImproved
		d.Note = fmt.Sprintf("improved %s", deltaNote(bm, -regression))
	default:
		d.Severity = SevOK
	}
	return d
}

func deltaNote(bm Metric, amount float64) string {
	if bm.Value != 0 && bm.Better != BetterExact {
		return fmt.Sprintf("%+.1f%%", 100*amount/math.Abs(bm.Value))
	}
	return fmt.Sprintf("by %.4g", amount)
}

func tolNote(bm Metric) string {
	switch {
	case bm.RelTol > 0 && bm.AbsTol > 0:
		return fmt.Sprintf("(rel %.0f%% + abs %.4g)", 100*bm.RelTol, bm.AbsTol)
	case bm.RelTol > 0:
		return fmt.Sprintf("(rel %.0f%%)", 100*bm.RelTol)
	case bm.AbsTol > 0:
		return fmt.Sprintf("(abs %.4g)", bm.AbsTol)
	default:
		return "(exact)"
	}
}

// Markdown renders the diff as a GitHub-flavoured markdown delta table,
// regressions first.
func (r *DiffResult) Markdown(baseName, candName string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "### benchdiff: %s vs %s\n\n", candName, baseName)
	if len(r.Deltas) == 0 {
		b.WriteString("baseline has no comparable workloads (legacy entry?)\n")
		return b.String()
	}
	order := map[string]int{SevFail: 0, SevMissing: 1, SevWarn: 2, SevImproved: 3, SevNew: 4, SevOK: 5}
	deltas := make([]Delta, len(r.Deltas))
	copy(deltas, r.Deltas)
	sort.SliceStable(deltas, func(i, j int) bool { return order[deltas[i].Severity] < order[deltas[j].Severity] })

	b.WriteString("| status | workload | metric | baseline | candidate | note |\n")
	b.WriteString("| --- | --- | --- | --- | --- | --- |\n")
	mark := map[string]string{
		SevFail: "❌ fail", SevMissing: "❌ missing", SevWarn: "⚠️ warn",
		SevImproved: "✅ improved", SevNew: "ℹ️ new", SevOK: "ok",
	}
	for _, d := range deltas {
		fmt.Fprintf(&b, "| %s | %s | %s | %s | %s | %s |\n",
			mark[d.Severity], d.Workload, d.Metric, fmtVal(d.Base), fmtVal(d.Cand), d.Note)
	}
	fmt.Fprintf(&b, "\n%d hard failure(s), %d warning(s), %d metric(s) compared.\n",
		r.Fails, r.Warns, len(deltas))
	return b.String()
}

func fmtVal(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.6g", v)
}

// HistoryTable renders the PR-over-PR trajectory across a set of files
// (legacy and v2) as a markdown table, ordered by trajectory entry.
func HistoryTable(files []*File) string {
	sorted := make([]*File, len(files))
	copy(sorted, files)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Entry < sorted[j].Entry })

	var b strings.Builder
	b.WriteString("| entry | PR | date | schema | workloads | metrics | headline |\n")
	b.WriteString("| --- | --- | --- | --- | --- | --- | --- |\n")
	for _, f := range sorted {
		schema := fmt.Sprintf("v%d", f.SchemaVersion)
		if f.Legacy {
			schema = "legacy"
		}
		metrics := 0
		for _, w := range f.Workloads {
			metrics += len(w.Metrics)
		}
		headline := ""
		if len(f.Notes) > 0 {
			headline = f.Notes[0]
		}
		if len(headline) > 100 {
			headline = headline[:97] + "..."
		}
		fmt.Fprintf(&b, "| %d | %d | %s | %s | %d | %d | %s |\n",
			f.Entry, f.PR, f.Date, schema, len(f.Workloads), metrics, headline)
	}
	return b.String()
}
