package faultio

import (
	"errors"
	"testing"
	"time"

	"degentri/internal/graph"
	"degentri/internal/stream"
)

func edgesN(n int) []graph.Edge {
	edges := make([]graph.Edge, n)
	for i := range edges {
		edges[i] = graph.Edge{U: i % 53, V: 53 + i%47}
	}
	return edges
}

// scanOnce runs one pass over f, returning the edges delivered before the
// first error (nil error means the pass ended cleanly).
func scanOnce(f *Faulty) (got []graph.Edge, resetErr, readErr error) {
	if err := f.Reset(); err != nil {
		return nil, err, nil
	}
	for {
		batch, err := f.NextBatch(nil)
		if errors.Is(err, stream.ErrEndOfPass) {
			return got, nil, nil
		}
		if err != nil {
			return got, nil, err
		}
		got = append(got, batch...)
	}
}

// TestDisabledPlanIsTransparent pins that a zero plan delivers the inner
// stream untouched.
func TestDisabledPlanIsTransparent(t *testing.T) {
	edges := edgesN(10000)
	f := New(stream.FromEdges(edges), Plan{})
	got, rerr, err := scanOnce(f)
	if rerr != nil || err != nil {
		t.Fatalf("disabled plan errored: %v / %v", rerr, err)
	}
	if len(got) != len(edges) {
		t.Fatalf("disabled plan delivered %d edges, want %d", len(got), len(edges))
	}
	if f.Faults() != 0 {
		t.Fatalf("disabled plan injected %d faults", f.Faults())
	}
}

// TestEIOFiresAtDrawnPositionDeterministically pins the schedule's
// determinism: the same (seed, reset ordinal) draws the same fault at the
// same edge position, the error is branded transient, and the edges
// delivered before it are a clean prefix.
func TestEIOFiresAtDrawnPositionDeterministically(t *testing.T) {
	edges := edgesN(8000)
	plan := Plan{Seed: 7, Every: 1, Kinds: []Kind{KindEIO}}

	run := func() (int, error) {
		f := New(stream.FromEdges(edges), plan)
		got, rerr, err := scanOnce(f)
		if rerr != nil {
			t.Fatalf("unexpected Reset error: %v", rerr)
		}
		for i, e := range got {
			if e != edges[i] {
				t.Fatalf("prefix edge %d = %v, want %v", i, e, edges[i])
			}
		}
		return len(got), err
	}
	n1, err1 := run()
	n2, err2 := run()
	if err1 == nil || err2 == nil {
		t.Fatal("EIO plan with Every=1 did not fault")
	}
	if !stream.IsTransient(err1) {
		t.Fatalf("injected EIO not transient: %v", err1)
	}
	if n1 != n2 {
		t.Fatalf("same (seed, ordinal) faulted at positions %d and %d", n1, n2)
	}
}

// TestMaxFaultsBoundsInjection pins the healing bound: after MaxFaults
// injections the stream behaves, so a bounded-retry caller always finishes.
func TestMaxFaultsBoundsInjection(t *testing.T) {
	edges := edgesN(5000)
	f := New(stream.FromEdges(edges), Plan{Seed: 3, Every: 1, MaxFaults: 2, Kinds: []Kind{KindEIO}})
	failures := 0
	for attempt := 0; attempt < 10; attempt++ {
		got, rerr, err := scanOnce(f)
		if rerr != nil {
			t.Fatalf("unexpected Reset error: %v", rerr)
		}
		if err != nil {
			failures++
			continue
		}
		if len(got) != len(edges) {
			t.Fatalf("clean pass delivered %d edges, want %d", len(got), len(edges))
		}
		if failures != 2 {
			t.Fatalf("healed after %d failures, want 2 (MaxFaults)", failures)
		}
		if f.Faults() != 2 {
			t.Fatalf("Faults() = %d, want 2", f.Faults())
		}
		return
	}
	t.Fatal("stream never healed within 10 attempts")
}

// TestTruncateEndsPassSilently pins the nastiest kind: the pass ends with a
// clean ErrEndOfPass short of the full stream, and only the caller's own
// count can notice.
func TestTruncateEndsPassSilently(t *testing.T) {
	edges := edgesN(6000)
	f := New(stream.FromEdges(edges), Plan{Seed: 11, Every: 1, Kinds: []Kind{KindTruncate}})
	got, rerr, err := scanOnce(f)
	if rerr != nil || err != nil {
		t.Fatalf("truncation must look clean, got errors %v / %v", rerr, err)
	}
	if len(got) >= len(edges) {
		t.Fatalf("truncated pass delivered all %d edges", len(got))
	}
}

// TestFailResetIsTransient pins the Reset fault kind.
func TestFailResetIsTransient(t *testing.T) {
	f := New(stream.FromEdges(edgesN(100)), Plan{Seed: 5, Every: 1, MaxFaults: 1, Kinds: []Kind{KindFailReset}})
	if err := f.Reset(); !stream.IsTransient(err) {
		t.Fatalf("injected Reset error = %v, want transient", err)
	}
	if err := f.Reset(); err != nil {
		t.Fatalf("Reset after the budget was spent: %v", err)
	}
}

// TestRangeSubStreamsShareSchedule pins that range sub-streams draw from the
// same ordinal sequence and fault budget as the parent.
func TestRangeSubStreamsShareSchedule(t *testing.T) {
	edges := edgesN(4000)
	f := New(stream.FromEdges(edges), Plan{Seed: 9, Every: 1, MaxFaults: 3, Kinds: []Kind{KindEIO}})
	sub, ok := f.RangeStream(100, 2100)
	if !ok {
		t.Fatal("memory stream lost range access through the wrapper")
	}
	fsub, isFaulty := sub.(*Faulty)
	if !isFaulty {
		t.Fatalf("sub-stream is %T, want *Faulty", sub)
	}
	for i := 0; i < 5; i++ {
		fsub.Reset()
	}
	if got := f.Resets(); got != 5 {
		t.Fatalf("parent saw %d resets after 5 sub-stream resets, want 5", got)
	}
	if f.Faults() != fsub.Faults() {
		t.Fatal("parent and sub-stream disagree on the fault count")
	}
}

// TestParsePlan pins the -inject spec grammar.
func TestParsePlan(t *testing.T) {
	p, err := ParsePlan("seed=7,every=3,max=10,kinds=eio+reset,stall=5ms,horizon=1000")
	if err != nil {
		t.Fatal(err)
	}
	want := Plan{Seed: 7, Every: 3, MaxFaults: 10, Kinds: []Kind{KindEIO, KindFailReset}, Stall: 5 * time.Millisecond, Horizon: 1000}
	if p.Seed != want.Seed || p.Every != want.Every || p.MaxFaults != want.MaxFaults ||
		p.Stall != want.Stall || p.Horizon != want.Horizon || len(p.Kinds) != 2 ||
		p.Kinds[0] != KindEIO || p.Kinds[1] != KindFailReset {
		t.Fatalf("ParsePlan = %+v, want %+v", p, want)
	}
	if !p.Enabled() {
		t.Fatal("parsed plan should be enabled")
	}
	if p, err := ParsePlan(""); err != nil || p.Enabled() {
		t.Fatalf("empty spec: %+v, %v", p, err)
	}
	for _, bad := range []string{"bogus=1", "kinds=nope", "every", "every=x"} {
		if _, err := ParsePlan(bad); err == nil {
			t.Errorf("ParsePlan(%q) accepted a bad spec", bad)
		}
	}
}
