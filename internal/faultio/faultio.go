// Package faultio injects deterministic, seed-keyed I/O faults into edge
// streams, for testing and chaos-smoking the engine's fault-tolerance layer
// (cancellation, bounded retry, truncation detection) without real flaky
// hardware.
//
// A Plan describes a fault schedule as a pure function of (Seed, reset
// ordinal): every Reset of a wrapped stream — the top-level stream or any
// range sub-stream — claims the next ordinal a and draws that pass's fault
// (kind and edge position) from the RNG stream MixSeed(Seed, faultioKey, a).
// Two runs over the same plan therefore draw the same fault sequence; under
// concurrent shard workers the *assignment* of ordinals to shards depends on
// goroutine scheduling, but that can never show in results — the repository's
// retry/resume contract makes healed scans bit-identical, which is exactly
// the property the injector exists to exercise.
//
// Fault kinds:
//
//   - KindEIO: the read at the drawn position fails with an error marked
//     transient (stream.IsTransient) — the engine's retry layer resumes it.
//   - KindStall: the read at the drawn position sleeps Plan.Stall, then
//     proceeds; wall-clock only, no error (deadline tests).
//   - KindTruncate: the pass silently ends at the drawn position — a clean
//     early EOF, the nastiest failure: the engine must detect the short count
//     itself (stream.ErrTruncated).
//   - KindFailReset: the Reset itself fails transiently (nothing delivered,
//     state-free to retry).
//   - KindFailClose: the next Close returns a transient error after actually
//     closing (callers must tolerate close errors).
//
// Plan.MaxFaults caps the total injections so a bounded-retry run eventually
// heals; without a cap a plan with Every=1 can out-fault any retry budget,
// which is itself a useful test (clean wrapped error, no hang).
package faultio

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"degentri/internal/graph"
	"degentri/internal/sampling"
	"degentri/internal/stream"
)

// faultioKey keys the injector's RNG streams under sampling.MixSeed; it is
// not a pass key (the injector sits below the estimators) but is kept
// distinct from every key in internal/core and internal/clique anyway.
const faultioKey = 0xFA17

// Kind is one injectable fault type.
type Kind int

const (
	kindNone Kind = iota
	// KindEIO fails one read with a transient error.
	KindEIO
	// KindStall delays one read by Plan.Stall.
	KindStall
	// KindTruncate silently ends the pass early (clean EOF).
	KindTruncate
	// KindFailReset fails one Reset with a transient error.
	KindFailReset
	// KindFailClose fails one Close with a transient error (after closing).
	KindFailClose
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case kindNone:
		return "none"
	case KindEIO:
		return "eio"
	case KindStall:
		return "stall"
	case KindTruncate:
		return "trunc"
	case KindFailReset:
		return "reset"
	case KindFailClose:
		return "close"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Plan is a deterministic fault schedule. The zero value injects nothing.
type Plan struct {
	// Seed keys every draw of the schedule.
	Seed uint64
	// Every injects a fault on every Every-th Reset (1 = every pass).
	// <= 0 disables injection.
	Every int
	// MaxFaults caps the total faults injected across the stream and all its
	// range sub-streams; 0 = unlimited.
	MaxFaults int64
	// Kinds is the set of kinds the schedule draws from; empty selects
	// {KindEIO} (the transient kind every retry test wants).
	Kinds []Kind
	// Stall is the KindStall delay; <= 0 selects 1ms.
	Stall time.Duration
	// Horizon bounds the drawn fault position when the wrapped stream does
	// not know its length; <= 0 selects 4096.
	Horizon int
}

// Enabled reports whether the plan can inject anything.
func (p Plan) Enabled() bool { return p.Every > 0 }

// state is shared by a wrapped stream and all its range sub-streams: the
// reset ordinal allocator and the global fault budget.
type state struct {
	plan   Plan
	resets atomic.Int64
	faults atomic.Int64
}

// take claims one slot of the fault budget; false means the cap is spent.
func (st *state) take() bool {
	if st.plan.MaxFaults <= 0 {
		st.faults.Add(1)
		return true
	}
	for {
		cur := st.faults.Load()
		if cur >= st.plan.MaxFaults {
			return false
		}
		if st.faults.CompareAndSwap(cur, cur+1) {
			return true
		}
	}
}

// Faulty wraps a stream with the plan's fault schedule. It implements
// stream.Stream always, stream.RangeStreamer whenever the inner stream does
// (range sub-streams are wrapped with the same shared schedule), and
// stream.FileBacked (Close delegates to the inner stream's Close if any).
type Faulty struct {
	inner stream.Stream
	st    *state

	// Per-pass schedule, drawn at Reset.
	scan      int64
	kind      Kind
	pos       int // fault fires after pos edges of this pass
	delivered int
	consumed  bool
	truncated bool
	failClose bool
}

// New wraps inner under the plan. Wrapping with a disabled plan is legal and
// delivers the inner stream's edges untouched.
func New(inner stream.Stream, plan Plan) *Faulty {
	if len(plan.Kinds) == 0 {
		plan.Kinds = []Kind{KindEIO}
	}
	if plan.Stall <= 0 {
		plan.Stall = time.Millisecond
	}
	if plan.Horizon <= 0 {
		plan.Horizon = 4096
	}
	return &Faulty{inner: inner, st: &state{plan: plan}}
}

// Faults reports how many faults have been injected so far (stream plus all
// of its range sub-streams).
func (f *Faulty) Faults() int64 { return f.st.faults.Load() }

// Resets reports how many Reset calls the schedule has seen.
func (f *Faulty) Resets() int64 { return f.st.resets.Load() }

// schedule draws this pass's fault from the next reset ordinal.
func (f *Faulty) schedule() {
	f.scan = f.st.resets.Add(1)
	f.kind = kindNone
	f.delivered = 0
	f.consumed = false
	f.truncated = false
	p := f.st.plan
	if p.Every <= 0 || f.scan%int64(p.Every) != 0 {
		return
	}
	if p.MaxFaults > 0 && f.st.faults.Load() >= p.MaxFaults {
		return
	}
	rng := sampling.NewRNG(sampling.MixSeed(p.Seed, faultioKey, uint64(f.scan)))
	f.kind = p.Kinds[rng.Intn(len(p.Kinds))]
	limit := p.Horizon
	if n, ok := f.inner.Len(); ok && n > 0 {
		limit = n
	}
	f.pos = rng.Intn(limit)
}

// injected builds the error of one fired fault, branded transient.
func (f *Faulty) injected(what string) error {
	return stream.MarkTransient(fmt.Errorf("faultio: injected %s at edge %d (scan %d, seed %d)",
		what, f.delivered, f.scan, f.st.plan.Seed))
}

// Reset implements stream.Stream.
func (f *Faulty) Reset() error {
	f.schedule()
	switch f.kind {
	case KindFailReset:
		f.consumed = true
		if f.st.take() {
			return stream.MarkTransient(fmt.Errorf("faultio: injected Reset failure (scan %d, seed %d)",
				f.scan, f.st.plan.Seed))
		}
	case KindFailClose:
		f.failClose = true
		f.consumed = true
	}
	return f.inner.Reset()
}

// NextBatch implements stream.Stream, firing this pass's fault at the drawn
// position: batches are trimmed so the fault lands between batches, exactly
// at the edge it was drawn for.
func (f *Faulty) NextBatch(buf []graph.Edge) ([]graph.Edge, error) {
	if f.truncated {
		return nil, stream.ErrEndOfPass
	}
	armed := f.kind != kindNone && f.kind != KindFailReset && f.kind != KindFailClose && !f.consumed
	if armed {
		remain := f.pos - f.delivered
		if remain <= 0 {
			f.consumed = true
			switch f.kind {
			case KindEIO:
				if f.st.take() {
					return nil, f.injected("read error")
				}
			case KindStall:
				if f.st.take() {
					time.Sleep(f.st.plan.Stall)
				}
			case KindTruncate:
				if f.st.take() {
					f.truncated = true
					return nil, stream.ErrEndOfPass
				}
			}
		} else {
			// Cap the batch so the fault position is a batch boundary.
			if len(buf) == 0 {
				if remain > stream.DefaultBatchSize {
					remain = stream.DefaultBatchSize
				}
				buf = make([]graph.Edge, remain)
			} else if len(buf) > remain {
				buf = buf[:remain]
			}
		}
	}
	batch, err := f.inner.NextBatch(buf)
	f.delivered += len(batch)
	return batch, err
}

// Next implements stream.Stream.
func (f *Faulty) Next() (graph.Edge, error) {
	var one [1]graph.Edge
	batch, err := f.NextBatch(one[:])
	if err != nil {
		return graph.Edge{}, err
	}
	return batch[0], nil
}

// Len implements stream.Stream.
func (f *Faulty) Len() (int, bool) { return f.inner.Len() }

// RangeStream implements stream.RangeStreamer when the inner stream does:
// sub-streams share the schedule (reset ordinals and the fault budget), so
// faults land inside shards of parallel passes too.
func (f *Faulty) RangeStream(lo, hi int) (stream.Stream, bool) {
	rs, ok := f.inner.(stream.RangeStreamer)
	if !ok {
		return nil, false
	}
	sub, ok := rs.RangeStream(lo, hi)
	if !ok {
		return nil, false
	}
	return &Faulty{inner: sub, st: f.st}, true
}

// Close implements stream.FileBacked, delegating to the inner stream's Close
// when it has one. A pending KindFailClose fires here (after the real close,
// so no handle leaks).
func (f *Faulty) Close() error {
	var err error
	if c, ok := f.inner.(io.Closer); ok {
		err = c.Close()
	}
	if f.failClose {
		f.failClose = false
		if f.st.take() {
			return stream.MarkTransient(fmt.Errorf("faultio: injected Close failure (scan %d, seed %d)",
				f.scan, f.st.plan.Seed))
		}
	}
	return err
}
