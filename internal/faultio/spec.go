package faultio

import (
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"degentri/internal/stream"
)

// ParsePlan parses the compact fault-schedule spec the hidden
// `trianglecount -inject` flag takes: comma-separated key=value pairs,
//
//	seed=7,every=3,max=10,kinds=eio+reset,stall=5ms,horizon=1000
//
// Keys: seed (uint64), every (int, required to inject anything), max (int64
// fault cap), kinds (+-separated subset of eio|stall|trunc|reset|close),
// stall (duration), horizon (int). Unknown keys are errors. An empty spec
// yields a disabled plan.
func ParsePlan(spec string) (Plan, error) {
	var p Plan
	if strings.TrimSpace(spec) == "" {
		return p, nil
	}
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return p, fmt.Errorf("faultio: spec field %q is not key=value", field)
		}
		var err error
		switch key {
		case "seed":
			p.Seed, err = strconv.ParseUint(val, 10, 64)
		case "every":
			p.Every, err = strconv.Atoi(val)
		case "max":
			p.MaxFaults, err = strconv.ParseInt(val, 10, 64)
		case "horizon":
			p.Horizon, err = strconv.Atoi(val)
		case "stall":
			p.Stall, err = time.ParseDuration(val)
		case "kinds":
			for _, name := range strings.Split(val, "+") {
				var k Kind
				k, err = parseKind(name)
				if err != nil {
					break
				}
				p.Kinds = append(p.Kinds, k)
			}
		default:
			return p, fmt.Errorf("faultio: unknown spec key %q", key)
		}
		if err != nil {
			return p, fmt.Errorf("faultio: spec field %q: %w", field, err)
		}
	}
	return p, nil
}

func parseKind(name string) (Kind, error) {
	switch strings.TrimSpace(name) {
	case "eio":
		return KindEIO, nil
	case "stall":
		return KindStall, nil
	case "trunc":
		return KindTruncate, nil
	case "reset":
		return KindFailReset, nil
	case "close":
		return KindFailClose, nil
	default:
		return kindNone, fmt.Errorf("unknown fault kind %q", name)
	}
}

// ShortReadOpener returns a stream.Opener whose file handles report a clean
// io.EOF once the absolute offset reaches limit — a silent short read below
// the text parser, indistinguishable from end-of-file. This is the vector the
// FileStream position-index poisoning guard exists for: the parser sees a
// well-formed early EOF, and only the consumed-bytes-vs-size check can tell
// the pass was incomplete.
// A nil open means os.Open.
func ShortReadOpener(open stream.Opener, limit int64) stream.Opener {
	if open == nil {
		open = func(path string) (io.ReadSeekCloser, error) { return os.Open(path) }
	}
	return func(path string) (io.ReadSeekCloser, error) {
		f, err := open(path)
		if err != nil {
			return nil, err
		}
		return &cappedFile{f: f, limit: limit}, nil
	}
}

type cappedFile struct {
	f     io.ReadSeekCloser
	limit int64
}

func (c *cappedFile) Read(p []byte) (int, error) {
	off, err := c.f.Seek(0, io.SeekCurrent)
	if err != nil {
		return 0, err
	}
	if off >= c.limit {
		return 0, io.EOF
	}
	if int64(len(p)) > c.limit-off {
		p = p[:c.limit-off]
	}
	return c.f.Read(p)
}

func (c *cappedFile) Seek(offset int64, whence int) (int64, error) {
	return c.f.Seek(offset, whence)
}

func (c *cappedFile) Close() error { return c.f.Close() }
