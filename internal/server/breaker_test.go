package server

import (
	"context"
	"errors"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for breaker timing tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestBreakerStateMachine(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := newBreaker(3, 100*time.Millisecond, 400*time.Millisecond, clk.now)

	if !b.allow() {
		t.Fatal("fresh breaker must allow")
	}
	// Two failures stay closed; a success resets the streak.
	b.onIOFailure()
	b.onIOFailure()
	b.onSuccess()
	b.onIOFailure()
	b.onIOFailure()
	if st, _, _ := b.snapshot(); st != "closed" {
		t.Fatalf("state after interrupted streak = %s, want closed", st)
	}
	// Third consecutive failure trips.
	if !b.onIOFailure() {
		t.Fatal("threshold-th consecutive failure did not trip")
	}
	if b.allow() {
		t.Fatal("open breaker allowed before backoff elapsed")
	}
	// Backoff elapses: exactly one probe gets through.
	clk.advance(101 * time.Millisecond)
	if !b.allow() {
		t.Fatal("probe not admitted after backoff")
	}
	if b.allow() {
		t.Fatal("second probe admitted while half-open")
	}
	// Failed probe reopens with doubled backoff.
	if !b.onIOFailure() {
		t.Fatal("failed probe did not report a trip")
	}
	clk.advance(101 * time.Millisecond)
	if b.allow() {
		t.Fatal("probe admitted before the doubled backoff elapsed")
	}
	clk.advance(100 * time.Millisecond)
	if !b.allow() {
		t.Fatal("probe not admitted after doubled backoff")
	}
	// A neutral probe outcome (deadline) hands the slot back: the next
	// request probes immediately, no backoff doubling.
	b.onNeutral()
	if !b.allow() {
		t.Fatal("probe not re-admitted after a neutral probe outcome")
	}
	// Successful probe closes and resets the backoff ladder.
	b.onSuccess()
	if st, _, _ := b.snapshot(); st != "closed" {
		t.Fatalf("state after successful probe = %s, want closed", st)
	}
	b.onIOFailure()
	b.onIOFailure()
	b.onIOFailure()
	_, retryIn, trips := b.snapshot()
	if retryIn <= 0 || retryIn > 100*time.Millisecond {
		t.Fatalf("retryIn after reset ladder = %v, want (0, 100ms]", retryIn)
	}
	if trips != 3 {
		t.Fatalf("cumulative trips = %d, want 3", trips)
	}
	// Backoff cap: repeated failed probes saturate at backoffMax.
	for i := 0; i < 5; i++ {
		clk.advance(time.Second)
		if !b.allow() {
			t.Fatalf("probe %d not admitted", i)
		}
		b.onIOFailure()
	}
	_, retryIn, _ = b.snapshot()
	if retryIn > 400*time.Millisecond {
		t.Fatalf("backoff %v exceeded cap 400ms", retryIn)
	}
}

func TestAdmissionSlotsAndShedding(t *testing.T) {
	a := newAdmission(2, 1, 1<<20)
	rel1, err := a.enter(context.Background(), 10)
	if err != nil {
		t.Fatal(err)
	}
	rel2, err := a.enter(context.Background(), 10)
	if err != nil {
		t.Fatal(err)
	}
	// Slots full: one waiter fits in the queue, the next is shed.
	waited := make(chan error, 1)
	entered := make(chan func(), 1)
	go func() {
		rel, err := a.enter(context.Background(), 10)
		entered <- rel
		waited <- err
	}()
	// Wait until the goroutine is parked in the queue.
	for i := 0; ; i++ {
		if _, q, _ := a.gauges(); q == 1 {
			break
		}
		if i > 1000 {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := a.enter(context.Background(), 10); !errors.Is(err, errShed) {
		t.Fatalf("overflow request got %v, want errShed", err)
	}
	// Releasing a slot admits the queued waiter.
	rel1()
	rel1() // idempotent
	if err := <-waited; err != nil {
		t.Fatalf("queued waiter: %v", err)
	}
	(<-entered)()
	rel2()
	if busy, queued, admitted := a.gauges(); busy != 0 || queued != 0 || admitted != 0 {
		t.Fatalf("gauges after full release = (%d, %d, %d), want zeros", busy, queued, admitted)
	}
}

func TestAdmissionQueueHonorsContext(t *testing.T) {
	a := newAdmission(1, 4, 1<<20)
	rel, err := a.enter(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := a.enter(ctx, 1); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued request past its deadline got %v, want DeadlineExceeded", err)
	}
	if _, queued, _ := a.gauges(); queued != 0 {
		t.Fatalf("queued gauge = %d after ctx abandon, want 0", queued)
	}
}

func TestAdmissionBudgetLedger(t *testing.T) {
	a := newAdmission(8, 8, 100)
	rel1, err := a.enter(context.Background(), 60)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.enter(context.Background(), 60); !errors.Is(err, errBudget) {
		t.Fatalf("over-ceiling request got %v, want errBudget", err)
	}
	// The rejected request must not leak its slot.
	if busy, _, admitted := a.gauges(); busy != 1 || admitted != 60 {
		t.Fatalf("gauges after budget rejection = (%d busy, %d words), want (1, 60)", busy, admitted)
	}
	rel2, err := a.enter(context.Background(), 40)
	if err != nil {
		t.Fatalf("exact-fit request rejected: %v", err)
	}
	rel1()
	rel2()
	if _, _, admitted := a.gauges(); admitted != 0 {
		t.Fatalf("admitted = %d after release, want 0", admitted)
	}
}
