package server

import (
	"fmt"
	"net/http"
	"runtime"
	"sync/atomic"

	"degentri/internal/stream"
)

// metrics is the daemon's counter set, exposed as Prometheus-style text at
// /metrics (hand-rolled: the exposition format is lines, not a dependency).
type metrics struct {
	requests atomic.Int64 // every request that reached a handler

	// Outcome counters; a request lands in exactly one.
	ok             atomic.Int64 // 200, complete result
	partial        atomic.Int64 // 200 with partial=true (deadline degradation)
	aborted        atomic.Int64 // 200 with aborted=true (budget cutoff)
	shed           atomic.Int64 // 429, queue full
	budgetRejected atomic.Int64 // 503, ledger refused the declared budget
	quarantined    atomic.Int64 // 503, breaker open
	draining       atomic.Int64 // 503, arrived after SIGTERM
	deadline       atomic.Int64 // 504, deadline with nothing usable
	canceled       atomic.Int64 // 499-class, client went away
	ioErrors       atomic.Int64 // 502, I/O-classified failure (responses)
	badRequest     atomic.Int64 // 400
	notFound       atomic.Int64 // 404
	internal       atomic.Int64 // 500

	injected     atomic.Int64 // requests that ran with fault injection
	groupBuilds  atomic.Int64 // ScanGroup (re)builds
	breakerTrips atomic.Int64 // quarantine transitions
	ioFailures   atomic.Int64 // I/O-classified outcomes fed to breakers
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	m := &s.met
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter("triangled_requests_total", "Requests that reached a handler.", m.requests.Load())
	counter("triangled_responses_ok_total", "Complete 200 responses.", m.ok.Load())
	counter("triangled_responses_partial_total", "200 responses flagged partial (deadline degradation).", m.partial.Load())
	counter("triangled_responses_aborted_total", "200 responses flagged aborted (space budget cutoff).", m.aborted.Load())
	counter("triangled_shed_total", "Requests shed at the door (429).", m.shed.Load())
	counter("triangled_budget_rejected_total", "Requests refused by the space-budget ledger (503).", m.budgetRejected.Load())
	counter("triangled_quarantined_total", "Requests refused by an open breaker (503).", m.quarantined.Load())
	counter("triangled_draining_total", "Requests refused during drain (503).", m.draining.Load())
	counter("triangled_deadline_total", "Requests that timed out with nothing usable (504).", m.deadline.Load())
	counter("triangled_canceled_total", "Requests whose client went away.", m.canceled.Load())
	counter("triangled_io_errors_total", "I/O-classified failures returned to clients (502).", m.ioErrors.Load())
	counter("triangled_bad_request_total", "Malformed requests (400).", m.badRequest.Load())
	counter("triangled_not_found_total", "Requests for unregistered graphs (404).", m.notFound.Load())
	counter("triangled_internal_total", "Internal errors (500).", m.internal.Load())
	counter("triangled_injected_total", "Requests executed with fault injection.", m.injected.Load())
	counter("triangled_group_builds_total", "ScanGroup builds and rebuilds.", m.groupBuilds.Load())
	counter("triangled_breaker_trips_total", "Breaker trips into quarantine.", m.breakerTrips.Load())
	counter("triangled_breaker_io_failures_total", "I/O outcomes fed to graph breakers.", m.ioFailures.Load())

	dc := stream.ReadDecodeCacheStats()
	counter("triangled_decode_cache_hits_total", "Decoded-block cache hits (blocks served without decode).", dc.Hits)
	counter("triangled_decode_cache_misses_total", "Decoded-block cache misses.", dc.Misses)
	counter("triangled_decode_cache_evictions_total", "Decoded blocks evicted under the byte budget.", dc.Evictions)
	gauge("triangled_decode_cache_bytes", "Bytes of decoded blocks resident in the cache.", dc.Bytes)
	gauge("triangled_decode_cache_entries", "Decoded blocks resident in the cache.", dc.Entries)

	busy, queued, admitted := s.adm.gauges()
	gauge("triangled_slots_busy", "Execution slots in use.", int64(busy))
	gauge("triangled_queue_depth", "Requests waiting for a slot.", int64(queued))
	gauge("triangled_admitted_space_words", "Sum of declared budgets of admitted requests.", admitted)
	gauge("triangled_inflight_requests", "Requests currently executing.", s.inflightN.Load())
	gauge("triangled_goroutines", "Goroutines in the process.", int64(runtime.NumGoroutine()))
	if s.draining.Load() {
		gauge("triangled_draining", "1 while the daemon is draining.", 1)
	} else {
		gauge("triangled_draining", "1 while the daemon is draining.", 0)
	}

	for _, name := range s.names {
		st := s.entries[name].snapshot()
		if st.Backend != "" {
			fmt.Fprintf(w, "triangled_graph_backend{graph=%q,backend=%q} 1\n", name, st.Backend)
		}
		fmt.Fprintf(w, "triangled_graph_scans_total{graph=%q} %d\n", name, st.Scans)
		fmt.Fprintf(w, "triangled_graph_carried_total{graph=%q} %d\n", name, st.Carried)
		fmt.Fprintf(w, "triangled_graph_live_clients{graph=%q} %d\n", name, st.Live)
		fmt.Fprintf(w, "triangled_graph_peak_space_words{graph=%q} %d\n", name, st.PeakSpaceWords)
	}
}
