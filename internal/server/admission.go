package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

var (
	// errShed brands a request rejected because the waiting room is full.
	// Shedding at the door keeps queueing delay bounded: beyond QueueDepth
	// waiters, another queued request only adds latency, never throughput.
	errShed = errors.New("server: overloaded, request shed")

	// errBudget brands a request whose declared space budget does not fit
	// under the process ceiling alongside the budgets already admitted.
	errBudget = errors.New("server: space budget exceeds available capacity")

	// errDraining brands requests arriving after SIGTERM started the drain.
	errDraining = errors.New("server: draining, not accepting requests")
)

// admission is the daemon's front door: a fixed pool of execution slots, a
// bounded waiting room in front of it, and a ledger of declared space
// budgets. A request holds one slot for its whole execution; requests beyond
// the pool wait in the queue, and requests beyond the queue are shed
// immediately with errShed (HTTP 429) rather than piling up latency.
//
// The ledger enforces the paper's resource model at the process level: every
// request declares MaxSpaceWords (its own abort threshold), and the daemon
// refuses to co-schedule a set of requests whose *declared* budgets sum past
// SpaceCeilingWords. This is admission control on promises, not live usage —
// deliberately, so the decision is instant and a rejected request (errBudget,
// HTTP 503) can retry against a sibling or later, instead of being admitted
// and then aborted mid-scan when the aggregate peak materializes.
type admission struct {
	slots    chan struct{}
	queueCap int64
	queued   atomic.Int64

	mu       sync.Mutex
	admitted int64 // sum of declared budgets currently holding slots
	ceiling  int64
}

func newAdmission(maxConcurrent, queueDepth int, ceiling int64) *admission {
	return &admission{
		slots:    make(chan struct{}, maxConcurrent),
		queueCap: int64(queueDepth),
		ceiling:  ceiling,
	}
}

// enter admits one request with the given declared budget, blocking in the
// bounded queue if all slots are busy. On success it returns a release
// function (idempotent); on failure the request was not admitted and holds
// nothing. The caller's ctx bounds the queue wait, so a request never spends
// its whole deadline waiting for a slot it can no longer use.
func (a *admission) enter(ctx context.Context, budget int64) (func(), error) {
	select {
	case a.slots <- struct{}{}:
	default:
		if a.queued.Add(1) > a.queueCap {
			a.queued.Add(-1)
			return nil, errShed
		}
		select {
		case a.slots <- struct{}{}:
			a.queued.Add(-1)
		case <-ctx.Done():
			a.queued.Add(-1)
			return nil, fmt.Errorf("server: queued request gave up: %w", context.Cause(ctx))
		}
	}

	a.mu.Lock()
	if a.admitted+budget > a.ceiling {
		avail := a.ceiling - a.admitted
		a.mu.Unlock()
		<-a.slots
		return nil, fmt.Errorf("%w: declared %d words, %d available under ceiling %d", errBudget, budget, avail, a.ceiling)
	}
	a.admitted += budget
	a.mu.Unlock()

	var once sync.Once
	return func() {
		once.Do(func() {
			a.mu.Lock()
			a.admitted -= budget
			a.mu.Unlock()
			<-a.slots
		})
	}, nil
}

// gauges returns the live admission state for /metrics: busy execution
// slots, queued waiters, and the sum of admitted declared budgets.
func (a *admission) gauges() (busy, queued int, admittedWords int64) {
	a.mu.Lock()
	admittedWords = a.admitted
	a.mu.Unlock()
	return len(a.slots), int(a.queued.Load()), admittedWords
}
