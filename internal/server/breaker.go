package server

import (
	"sync"
	"time"
)

// breakerState is the classic three-state circuit: closed (healthy), open
// (quarantined until a backoff deadline), half-open (one probe in flight).
type breakerState int

const (
	bkClosed breakerState = iota
	bkOpen
	bkHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case bkOpen:
		return "open"
	case bkHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breaker quarantines one graph file after repeated non-transient I/O
// failures. The scan layer already heals *transient* faults with bounded
// retry; what reaches the breaker are failures that survived retry —
// truncated or corrupt files, vanished paths, permission changes. Tripping
// costs the graph its warm ScanGroup; while open, requests are rejected
// instantly instead of each rediscovering the same broken file with a full
// (failing) counting scan. After a backoff the next request is let through
// as a probe (half-open, one at a time): success closes the breaker,
// another I/O failure reopens it with doubled backoff up to a cap.
//
// Only I/O outcomes move the state. Deadlines, cancellations, and shed
// requests say nothing about the file and are recorded as neutral: in
// half-open they return the breaker to open with the deadline unchanged, so
// the next request probes again immediately.
type breaker struct {
	threshold  int           // consecutive I/O failures that trip
	backoff0   time.Duration // first quarantine period
	backoffMax time.Duration
	now        func() time.Time

	mu      sync.Mutex
	state   breakerState
	fails   int // consecutive I/O failures while closed
	until   time.Time
	backoff time.Duration // next quarantine period
	trips   int64
}

func newBreaker(threshold int, backoff0, backoffMax time.Duration, now func() time.Time) *breaker {
	if now == nil {
		now = time.Now
	}
	return &breaker{threshold: threshold, backoff0: backoff0, backoffMax: backoffMax, now: now, backoff: backoff0}
}

// allow reports whether a cold acquire of the graph may proceed. When the
// breaker is open and the backoff has elapsed, the caller becomes the probe
// (half-open admits exactly one).
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case bkClosed:
		return true
	case bkOpen:
		if !b.now().Before(b.until) {
			b.state = bkHalfOpen
			return true
		}
		return false
	default: // half-open: a probe is already in flight
		return false
	}
}

// onSuccess records a healthy interaction with the file: it closes the
// breaker and resets the failure streak and backoff.
func (b *breaker) onSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = bkClosed
	b.fails = 0
	b.backoff = b.backoff0
}

// onIOFailure records a non-transient I/O failure and reports whether the
// breaker tripped open on this call (the caller then quarantines the warm
// group, if any).
func (b *breaker) onIOFailure() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == bkHalfOpen {
		// The probe failed: reopen, doubling the quarantine.
		b.open()
		return true
	}
	b.fails++
	if b.state == bkClosed && b.fails >= b.threshold {
		b.open()
		return true
	}
	return false
}

// onNeutral records an outcome that says nothing about the file (deadline,
// cancellation, internal error). A half-open probe slot is handed back with
// the deadline already elapsed, so the next request re-probes immediately.
func (b *breaker) onNeutral() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == bkHalfOpen {
		b.state = bkOpen
	}
}

// open transitions to quarantine; callers hold b.mu.
func (b *breaker) open() {
	b.state = bkOpen
	b.fails = 0
	b.until = b.now().Add(b.backoff)
	b.backoff *= 2
	if b.backoff > b.backoffMax {
		b.backoff = b.backoffMax
	}
	b.trips++
}

// snapshot returns the state name, how long until the next probe is
// admitted (zero when not open), and the cumulative trip count.
func (b *breaker) snapshot() (state string, retryIn time.Duration, trips int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == bkOpen {
		if d := b.until.Sub(b.now()); d > 0 {
			retryIn = d
		}
	}
	return b.state.String(), retryIn, b.trips
}
