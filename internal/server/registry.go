package server

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"sync"

	"degentri/internal/core"
	"degentri/internal/stream"
	"degentri/triangle"
)

// errQuarantined brands requests against a graph whose breaker is open.
var errQuarantined = errors.New("server: graph quarantined after repeated I/O failures")

// groupRef is one generation of a graph's warm ScanGroup. Generations are
// refcounted: a breaker trip retires the current generation immediately (new
// requests rebuild or get rejected), but the underlying stream is only
// closed once the last in-flight request releases it.
type groupRef struct {
	g       *triangle.ScanGroup
	cancel  context.CancelFunc // the group's scheduler lifetime
	refs    int
	retired bool
	closed  bool
}

// graphEntry is the registry's per-graph record: the path, the current warm
// generation (nil when cold), a single-flight latch so concurrent cold
// requests build one group instead of racing N counting scans, and the
// breaker guarding rebuilds.
type graphEntry struct {
	name string
	path string
	srv  *Server

	mu       sync.Mutex
	cur      *groupRef
	building chan struct{} // non-nil while one request opens the group
	br       *breaker
}

// acquire returns the graph's warm ScanGroup, building it if the graph is
// cold (single-flight; peers wait on the build instead of duplicating it).
// The returned release must be called when the request no longer touches the
// group. A warm group is handed out without consulting the breaker — the
// breaker gates rebuilds; a warm group is evicted by quarantine(), not by
// refusing readers.
func (e *graphEntry) acquire(ctx context.Context) (*triangle.ScanGroup, func(), error) {
	for {
		e.mu.Lock()
		if e.cur != nil && !e.cur.retired {
			r := e.cur
			r.refs++
			e.mu.Unlock()
			return r.g, func() { e.release(r) }, nil
		}
		if e.building != nil {
			wait := e.building
			e.mu.Unlock()
			select {
			case <-wait:
				continue // re-check: the build succeeded or this caller rebuilds
			case <-ctx.Done():
				return nil, nil, fmt.Errorf("server: waiting for graph open: %w", context.Cause(ctx))
			}
		}
		// Cold and nobody building: the breaker decides whether this request
		// may touch the file. In half-open state exactly one request gets
		// through as the probe; its build outcome moves the breaker.
		if !e.br.allow() {
			e.mu.Unlock()
			_, retryIn, _ := e.br.snapshot()
			return nil, nil, fmt.Errorf("%w (retry in %v)", errQuarantined, retryIn)
		}
		done := make(chan struct{})
		e.building = done
		e.mu.Unlock()

		gctx, cancel := context.WithCancel(e.srv.baseCtx)
		g, err := triangle.OpenScanGroup(gctx, e.path, triangle.GroupOptions{
			Workers:       e.srv.cfg.Workers,
			RetryAttempts: e.srv.cfg.RetryAttempts,
			PreferMmap:    e.srv.cfg.PreferMmap,
			DecodeCache:   e.srv.cfg.decodeCacheEnabled(),
		})

		e.mu.Lock()
		e.building = nil
		if err != nil {
			e.mu.Unlock()
			cancel()
			close(done)
			e.recordOutcome(err)
			return nil, nil, err
		}
		r := &groupRef{g: g, cancel: cancel, refs: 1}
		e.cur = r
		e.mu.Unlock()
		close(done)
		e.br.onSuccess()
		e.srv.met.groupBuilds.Add(1)
		return r.g, func() { e.release(r) }, nil
	}
}

func (e *graphEntry) release(r *groupRef) {
	e.mu.Lock()
	r.refs--
	doClose := r.retired && r.refs == 0 && !r.closed
	if doClose {
		r.closed = true
	}
	e.mu.Unlock()
	if doClose {
		r.cancel()
		r.g.Close()
	}
}

// quarantine retires the current generation (if any): new requests stop
// seeing it immediately; the stream closes when in-flight riders drain.
func (e *graphEntry) quarantine() {
	e.mu.Lock()
	r := e.cur
	e.cur = nil
	var doClose bool
	if r != nil {
		r.retired = true
		doClose = r.refs == 0 && !r.closed
		if doClose {
			r.closed = true
		}
	}
	e.mu.Unlock()
	if doClose {
		r.cancel()
		r.g.Close()
	}
}

// recordOutcome feeds one shared-group request outcome to the breaker.
// Injected-fault requests never reach here: a synthetic fault says nothing
// about the file, so they run on a private stream and skip the breaker.
func (e *graphEntry) recordOutcome(err error) {
	switch {
	case err == nil:
		e.br.onSuccess()
	case isIOError(err):
		e.srv.met.ioFailures.Add(1)
		if e.br.onIOFailure() {
			e.quarantine()
			e.srv.met.breakerTrips.Add(1)
		}
	default:
		e.br.onNeutral()
	}
}

// snapshot returns the entry's state for /graphs and /metrics without
// touching the file.
func (e *graphEntry) snapshot() graphStatus {
	e.mu.Lock()
	r := e.cur
	building := e.building != nil
	e.mu.Unlock()
	st := graphStatus{Name: e.name, Path: e.path}
	st.Breaker, st.RetryIn, st.BreakerTrips = func() (string, string, int64) {
		s, d, n := e.br.snapshot()
		if d > 0 {
			return s, d.String(), n
		}
		return s, "", n
	}()
	switch {
	case r != nil:
		st.State = "ready"
		// Status and /metrics show the decorated backend ("bex2/ssse3+cache")
		// so operators can see the active decode engine at a glance.
		st.Backend = stream.DescribeBackend(r.g.Backend(), e.srv.cfg.decodeCacheEnabled())
		st.Edges = r.g.M()
		st.Scans = r.g.Scans()
		st.Carried = r.g.Carried()
		st.Live = r.g.Live()
		st.Retries = r.g.Retries()
		st.PeakSpaceWords = r.g.PeakSpaceWords()
	case building:
		st.State = "opening"
	case st.Breaker != "closed":
		st.State = "quarantined"
	default:
		st.State = "cold"
	}
	return st
}

// graphStatus is the JSON shape of one /graphs entry.
type graphStatus struct {
	Name           string `json:"name"`
	Path           string `json:"path"`
	State          string `json:"state"`
	Backend        string `json:"backend,omitempty"`
	Breaker        string `json:"breaker"`
	RetryIn        string `json:"retryIn,omitempty"`
	BreakerTrips   int64  `json:"breakerTrips,omitempty"`
	Edges          int    `json:"edges,omitempty"`
	Scans          int    `json:"scans,omitempty"`
	Carried        int    `json:"carried,omitempty"`
	Live           int    `json:"live,omitempty"`
	Retries        int    `json:"retries,omitempty"`
	PeakSpaceWords int64  `json:"peakSpaceWords,omitempty"`
}

// isIOError classifies failures that indict the file itself — the same
// class cmd/trianglecount maps to exit code 3. Deadlines, aborts, and
// cancellations are explicitly not I/O: they indict the request, not the
// graph.
func isIOError(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, core.ErrDeadline) || errors.Is(err, core.ErrAborted) ||
		errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		return false
	}
	var pathErr *fs.PathError
	return errors.Is(err, stream.ErrTruncated) ||
		errors.Is(err, stream.ErrCorruptHeader) ||
		errors.Is(err, stream.ErrCorruptBlock) ||
		errors.Is(err, stream.ErrTransient) || // transient only until the retry budget ran out
		errors.Is(err, triangle.ErrNoEdges) ||
		errors.Is(err, fs.ErrNotExist) ||
		errors.Is(err, fs.ErrPermission) ||
		errors.As(err, &pathErr)
}
