// Package server implements triangled, the overload-safe estimation daemon:
// an HTTP/JSON front end over the triangle library that serves estimate,
// clique, and degeneracy queries against a registry of graph files.
//
// The service layer adds exactly the properties a shared daemon needs and
// the library deliberately leaves to its caller:
//
//   - Coalescing: concurrent requests against the same graph ride one
//     triangle.ScanGroup, so their passes fuse onto shared physical scans
//     (DESIGN.md §4) while results stay bit-identical to standalone runs.
//   - Admission control: a fixed slot pool with a bounded queue sheds excess
//     load at the door (429), and a ledger of declared MaxSpaceWords budgets
//     refuses requests that would push the aggregate past a ceiling (503).
//   - Graceful degradation: a request deadline that fires mid-search returns
//     the best completed probe as a 200 with partial=true, never a 500.
//   - Quarantine: repeated non-transient I/O failures trip a per-graph
//     breaker; the graph rejects fast while a backoff re-probe decides when
//     the file is trustworthy again.
//   - Drain: SIGTERM stops admissions, lets in-flight work finish under a
//     grace period, then hard-cancels the scan schedulers and exits cleanly.
package server

import (
	"context"
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"sync/atomic"
	"time"

	"degentri/internal/stream"
)

// Config configures a Server. The zero value of every limit means "use the
// default" noted on the field.
type Config struct {
	// Graphs maps the public graph name to its edge-file path.
	Graphs map[string]string

	// Workers bounds shard workers per physical scan (0 = GOMAXPROCS).
	Workers int
	// RetryAttempts is the transient-I/O retry budget of shared scans
	// (0 = library default, negative = disabled).
	RetryAttempts int
	// PreferMmap serves .bex v2 graphs (and .bexd parts) through the
	// mmap-backed reader; estimates are identical either way.
	PreferMmap bool
	// DecodeCacheBytes is the budget of the process-wide decoded-block
	// cache serving repeat .bex v2 block reads (0 = the stream default of
	// 64 MiB, negative = disabled). Estimates are identical either way.
	DecodeCacheBytes int64
	// DisableSIMD turns the vectorized .bex v2 block decoder off for the
	// process (the -no-simd escape hatch); decoded edges are identical
	// either way.
	DisableSIMD bool

	// MaxConcurrent is the execution slot count. Default 2×GOMAXPROCS,
	// floored at 4.
	MaxConcurrent int
	// QueueDepth bounds requests waiting for a slot; beyond it requests are
	// shed with 429. Default 64.
	QueueDepth int
	// SpaceCeilingWords caps the sum of declared per-request budgets
	// admitted at once. Default 1<<26 (512 MiB of 8-byte words).
	SpaceCeilingWords int64
	// DefaultBudgetWords is the budget assumed for requests that do not
	// declare one. Default 1<<22.
	DefaultBudgetWords int64

	// DefaultTimeout bounds requests that do not declare a deadline.
	// Default 30s.
	DefaultTimeout time.Duration
	// MaxTimeout clamps declared deadlines. Default 120s.
	MaxTimeout time.Duration

	// BreakerThreshold is the consecutive I/O failure count that quarantines
	// a graph. Default 3.
	BreakerThreshold int
	// BreakerBackoff is the first quarantine period; it doubles per re-trip
	// up to BreakerBackoffMax. Defaults 500ms and 30s.
	BreakerBackoff    time.Duration
	BreakerBackoffMax time.Duration

	// AllowInject enables the inject= parameter (fault injection on a
	// private stream). Off in production; the chaos harness turns it on.
	AllowInject bool

	// now overrides the clock in tests (breaker backoff timing).
	now func() time.Time
}

func (c *Config) fillDefaults() {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 2 * runtime.GOMAXPROCS(0)
		if c.MaxConcurrent < 4 {
			c.MaxConcurrent = 4
		}
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.SpaceCeilingWords <= 0 {
		c.SpaceCeilingWords = 1 << 26
	}
	if c.DefaultBudgetWords <= 0 {
		c.DefaultBudgetWords = 1 << 22
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 120 * time.Second
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerBackoff <= 0 {
		c.BreakerBackoff = 500 * time.Millisecond
	}
	if c.BreakerBackoffMax <= 0 {
		c.BreakerBackoffMax = 30 * time.Second
	}
	if c.DecodeCacheBytes == 0 {
		c.DecodeCacheBytes = stream.DefaultDecodeCacheBytes
	}
}

// decodeCacheEnabled reports whether graphs are served with the
// decoded-block cache (after fillDefaults, negative means disabled).
func (c *Config) decodeCacheEnabled() bool { return c.DecodeCacheBytes > 0 }

// Server is the daemon. Create with New, mount Handler on an http.Server,
// and call Drain on SIGTERM.
type Server struct {
	cfg        Config
	baseCtx    context.Context // lifetime of every ScanGroup scheduler
	baseCancel context.CancelFunc
	adm        *admission
	entries    map[string]*graphEntry
	names      []string // sorted, for stable /graphs and /metrics output
	draining   atomic.Bool
	inflightN  atomic.Int64
	met        metrics
	mux        *http.ServeMux
	started    time.Time
}

// New builds a Server over the configured graph registry. Graphs are opened
// lazily on first request, so a registered path that is broken costs nothing
// until queried (and then feeds that graph's breaker, not the daemon).
func New(cfg Config) (*Server, error) {
	cfg.fillDefaults()
	if len(cfg.Graphs) == 0 {
		return nil, fmt.Errorf("server: no graphs registered")
	}
	// Process-wide decode engine knobs: the daemon owns its process, so its
	// config is the authority on them.
	stream.SetSIMDDecode(!cfg.DisableSIMD)
	stream.SetDecodeCacheBudget(cfg.DecodeCacheBytes)
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		baseCtx:    ctx,
		baseCancel: cancel,
		adm:        newAdmission(cfg.MaxConcurrent, cfg.QueueDepth, cfg.SpaceCeilingWords),
		entries:    make(map[string]*graphEntry, len(cfg.Graphs)),
		started:    time.Now(),
	}
	for name, path := range cfg.Graphs {
		s.entries[name] = &graphEntry{
			name: name,
			path: path,
			srv:  s,
			br:   newBreaker(cfg.BreakerThreshold, cfg.BreakerBackoff, cfg.BreakerBackoffMax, cfg.now),
		}
		s.names = append(s.names, name)
	}
	sort.Strings(s.names)

	mux := http.NewServeMux()
	mux.HandleFunc("/estimate", s.handleEstimate)
	mux.HandleFunc("/cliques", s.handleCliques)
	mux.HandleFunc("/degeneracy", s.handleDegeneracy)
	mux.HandleFunc("/graphs", s.handleGraphs)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux = mux
	return s, nil
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Drain performs the shutdown protocol: stop admitting (readyz flips to 503,
// new requests get 503 draining), wait up to grace for in-flight requests to
// finish their waves, then hard-cancel every group's scheduler so stragglers
// abort, and close the groups. It reports whether the drain was clean (all
// requests finished inside the grace period).
func (s *Server) Drain(grace time.Duration) bool {
	s.draining.Store(true)
	deadline := time.Now().Add(grace)
	for s.inflightN.Load() > 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	clean := s.inflightN.Load() == 0
	// Hard phase: cancel the scheduler lifetime so any wave still running
	// aborts at its next batch boundary, then wait briefly for handlers to
	// observe the abort and return.
	s.baseCancel()
	hard := time.Now().Add(2 * time.Second)
	for s.inflightN.Load() > 0 && time.Now().Before(hard) {
		time.Sleep(5 * time.Millisecond)
	}
	s.closeGroups()
	return clean
}

// Close releases everything without the grace protocol (tests, error paths).
func (s *Server) Close() {
	s.draining.Store(true)
	s.baseCancel()
	s.closeGroups()
}

func (s *Server) closeGroups() {
	for _, name := range s.names {
		s.entries[name].quarantine()
	}
}
