package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"degentri/internal/gen"
	"degentri/internal/stream"
	"degentri/triangle"
)

// writeGraph generates a Holme–Kim graph file for serving.
func writeGraph(t *testing.T, path string, n, deg int, seed uint64) {
	t.Helper()
	gr := gen.HolmeKim(n, deg, 0.5, seed)
	if err := stream.WriteGraphFile(path, gr, "server test"); err != nil {
		t.Fatal(err)
	}
}

// get issues one request and decodes the JSON body into out (which may be
// nil to ignore the body). It returns the HTTP status.
func get(t *testing.T, client *http.Client, url string, out any) int {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", url, err)
	}
	if out != nil {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("GET %s: bad JSON %q: %v", url, body, err)
		}
	}
	return resp.StatusCode
}

// waitCensus asserts the goroutine count returns to the baseline (small
// tolerance for runtime background goroutines) within a deadline.
func waitCensus(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutine census %d never returned to baseline %d; stacks:\n%s", n, baseline, buf)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestPartialEndToEnd pins the satellite requirement: a request deadline
// firing mid-search comes back over HTTP as a 200 with partial=true and the
// best completed probe's estimate — never a zero estimate, never a 500. The
// ladder injects a per-pass stall so the full search takes much longer than
// the early probes, then walks timeouts across that window; at least one
// rung must land in the middle.
func TestPartialEndToEnd(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.txt")
	writeGraph(t, path, 2000, 5, 7)

	s, err := New(Config{
		Graphs:      map[string]string{"g": path},
		AllowInject: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()

	// A 1ns deadline is dead on arrival: 504 with the deadline kind, no
	// estimate payload.
	var eresp errorResponse
	if code := get(t, client, ts.URL+"/estimate?graph=g&seed=1&timeout=1ns", &eresp); code != http.StatusGatewayTimeout {
		t.Fatalf("dead-on-arrival request: status %d (%+v), want 504", code, eresp)
	}
	if eresp.Kind != "deadline" {
		t.Fatalf("dead-on-arrival kind = %q, want deadline", eresp.Kind)
	}

	// Stall ladder: every pass sleeps 25ms, so a full search costs hundreds
	// of ms while the first probes complete quickly.
	const inject = "seed=5,every=1,kinds=stall,stall=25ms"
	ladder := []string{"120ms", "250ms", "450ms", "800ms", "1500ms", "3s", "10s"}
	partials, completes := 0, 0
	for _, timeout := range ladder {
		var resp estimateResponse
		url := fmt.Sprintf("%s/estimate?graph=g&seed=9&inject=%s&timeout=%s", ts.URL, inject, timeout)
		code := get(t, client, url, &resp)
		switch code {
		case http.StatusOK:
			if resp.Estimate <= 0 {
				t.Errorf("timeout=%s: 200 with estimate %v (partial=%v) — a served result must carry a usable estimate", timeout, resp.Estimate, resp.Partial)
			}
			if resp.Partial {
				partials++
			} else {
				completes++
			}
		case http.StatusGatewayTimeout:
			// Deadline before the first usable probe: legitimate for the
			// shortest rungs.
		default:
			t.Errorf("timeout=%s: unexpected status %d", timeout, code)
		}
	}
	if partials == 0 {
		t.Errorf("no rung of the timeout ladder returned a partial result (completes=%d); the mid-search degradation path never fired", completes)
	}
	if completes == 0 {
		t.Errorf("no rung completed; the generous rungs should finish the search")
	}
}

// TestBreakerQuarantineAndRecovery exercises the full quarantine lifecycle
// over HTTP: a graph that starts healthy, is corrupted underneath its warm
// group (truncated in place), fails requests with I/O errors until the
// breaker trips, rejects instantly while quarantined, and recovers through
// a half-open probe after the file is restored and the backoff elapses.
func TestBreakerQuarantineAndRecovery(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.txt")
	writeGraph(t, path, 800, 4, 3)
	content, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	clk := &fakeClock{t: time.Unix(5000, 0)}
	s, err := New(Config{
		Graphs:           map[string]string{"g": path},
		BreakerThreshold: 2,
		BreakerBackoff:   time.Minute,
		now:              clk.now,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()

	var healthy estimateResponse
	if code := get(t, client, ts.URL+"/estimate?graph=g&seed=1", &healthy); code != http.StatusOK {
		t.Fatalf("healthy request: status %d, want 200", code)
	}

	// Corrupt the file under the warm group: scans now come up short.
	if err := os.Truncate(path, int64(len(content)/2)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		var eresp errorResponse
		code := get(t, client, ts.URL+"/estimate?graph=g&seed=2", &eresp)
		if code != http.StatusBadGateway || eresp.Kind != "io" {
			t.Fatalf("request %d against truncated file: status %d kind %q, want 502 io (%s)", i, code, eresp.Kind, eresp.Error)
		}
	}
	// Threshold reached: the graph is quarantined and rejects without I/O.
	var eresp errorResponse
	if code := get(t, client, ts.URL+"/estimate?graph=g&seed=3", &eresp); code != http.StatusServiceUnavailable || eresp.Kind != "quarantined" {
		t.Fatalf("quarantined request: status %d kind %q, want 503 quarantined", code, eresp.Kind)
	}
	var graphs []graphStatus
	get(t, client, ts.URL+"/graphs", &graphs)
	if len(graphs) != 1 || graphs[0].State != "quarantined" || graphs[0].Breaker != "open" {
		t.Fatalf("/graphs during quarantine = %+v", graphs)
	}

	// Restore the file; before the backoff elapses the breaker still rejects.
	if err := os.WriteFile(path, content, 0o644); err != nil {
		t.Fatal(err)
	}
	if code := get(t, client, ts.URL+"/estimate?graph=g&seed=4", &eresp); code != http.StatusServiceUnavailable {
		t.Fatalf("pre-backoff request: status %d, want 503", code)
	}
	// After the backoff the next request is the probe: it rebuilds the group
	// and must reproduce the original estimate bit-for-bit.
	clk.advance(61 * time.Second)
	var recovered estimateResponse
	if code := get(t, client, ts.URL+"/estimate?graph=g&seed=1", &recovered); code != http.StatusOK {
		t.Fatalf("probe request after restore: status %d, want 200", code)
	}
	if recovered.Estimate != healthy.Estimate {
		t.Errorf("recovered estimate %v != pre-quarantine %v", recovered.Estimate, healthy.Estimate)
	}
	get(t, client, ts.URL+"/graphs", &graphs)
	if graphs[0].Breaker != "closed" || graphs[0].State != "ready" {
		t.Fatalf("/graphs after recovery = %+v", graphs)
	}
}

// TestBudgetRejectionOverHTTP pins the admission ledger's HTTP face: a
// declared budget that cannot fit under the ceiling is refused with 503 and
// a Retry-After, while a modest budget on the same server is served.
func TestBudgetRejectionOverHTTP(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.txt")
	writeGraph(t, path, 600, 4, 5)
	s, err := New(Config{
		Graphs:            map[string]string{"g": path},
		SpaceCeilingWords: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var eresp errorResponse
	code := get(t, ts.Client(), ts.URL+"/estimate?graph=g&seed=1&budget=2097152", &eresp)
	if code != http.StatusServiceUnavailable || eresp.Kind != "budget" {
		t.Fatalf("over-ceiling budget: status %d kind %q, want 503 budget", code, eresp.Kind)
	}
	var resp estimateResponse
	if code := get(t, ts.Client(), ts.URL+"/estimate?graph=g&seed=1&budget=524288", &resp); code != http.StatusOK || resp.Estimate <= 0 {
		t.Fatalf("fitting budget: status %d estimate %v, want 200 with a positive estimate", code, resp.Estimate)
	}
	// A tiny budget is admitted (the ledger is about aggregate capacity) and
	// comes back as a 200 flagged aborted — the library's budget cutoff.
	if code := get(t, ts.Client(), ts.URL+"/estimate?graph=g&seed=1&budget=8", &resp); code != http.StatusOK || !resp.Aborted {
		t.Fatalf("tiny budget: status %d aborted=%v, want 200 aborted", code, resp.Aborted)
	}
}

// TestDrain pins the shutdown protocol: once draining, readiness flips and
// new requests are refused with the draining kind, in-flight requests finish
// inside the grace period, and the drain reports clean.
func TestDrain(t *testing.T) {
	baseline := runtime.NumGoroutine()
	dir := t.TempDir()
	path := filepath.Join(dir, "g.txt")
	writeGraph(t, path, 1500, 5, 9)
	s, err := New(Config{
		Graphs:      map[string]string{"g": path},
		AllowInject: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()

	if code := get(t, client, ts.URL+"/readyz", nil); code != http.StatusOK {
		t.Fatalf("readyz before drain: %d", code)
	}

	// Park a slow request in flight (per-pass stalls), then drain under it.
	inflight := make(chan int, 1)
	var inflightResp estimateResponse
	go func() {
		url := ts.URL + "/estimate?graph=g&seed=2&inject=seed=3,every=1,kinds=stall,stall=20ms&timeout=30s"
		inflight <- get(t, client, url, &inflightResp)
	}()
	for i := 0; s.inflightN.Load() == 0; i++ {
		if i > 2000 {
			t.Fatal("background request never started")
		}
		time.Sleep(time.Millisecond)
	}

	drained := make(chan bool, 1)
	go func() { drained <- s.Drain(20 * time.Second) }()
	for i := 0; !s.draining.Load(); i++ {
		time.Sleep(time.Millisecond)
	}

	if code := get(t, client, ts.URL+"/readyz", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz during drain: %d, want 503", code)
	}
	if code := get(t, client, ts.URL+"/healthz", nil); code != http.StatusOK {
		t.Fatalf("healthz during drain: %d, want 200 (liveness is not readiness)", code)
	}
	var eresp errorResponse
	if code := get(t, client, ts.URL+"/estimate?graph=g&seed=1", &eresp); code != http.StatusServiceUnavailable || eresp.Kind != "draining" {
		t.Fatalf("new request during drain: status %d kind %q, want 503 draining", code, eresp.Kind)
	}

	if code := <-inflight; code != http.StatusOK || inflightResp.Estimate <= 0 {
		t.Fatalf("in-flight request during drain: status %d estimate %v, want 200 with estimate", code, inflightResp.Estimate)
	}
	if clean := <-drained; !clean {
		t.Error("drain reported dirty despite the in-flight request finishing in grace")
	}
	if n := s.inflightN.Load(); n != 0 {
		t.Fatalf("inflight = %d after drain", n)
	}
	ts.Close()
	client.CloseIdleConnections()
	waitCensus(t, baseline)
}

// TestDrainHardDeadline pins the other half of the protocol: an in-flight
// request that cannot finish inside the grace period is hard-cancelled (the
// scheduler lifetime dies) instead of blocking shutdown forever.
func TestDrainHardDeadline(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.txt")
	writeGraph(t, path, 1500, 5, 11)
	s, err := New(Config{
		Graphs:      map[string]string{"g": path},
		AllowInject: true,
		MaxTimeout:  5 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	done := make(chan int, 1)
	go func() {
		// Heavy stalls: this cannot finish in the 50ms grace below.
		url := ts.URL + "/estimate?graph=g&seed=2&inject=seed=3,every=1,kinds=stall,stall=300ms&timeout=4m"
		done <- get(t, ts.Client(), url, nil)
	}()
	for i := 0; s.inflightN.Load() == 0; i++ {
		if i > 2000 {
			t.Fatal("background request never started")
		}
		time.Sleep(time.Millisecond)
	}

	start := time.Now()
	clean := s.Drain(50 * time.Millisecond)
	if clean {
		t.Error("drain reported clean despite hard-cancelling a straggler")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("drain took %v; the hard deadline did not bound it", elapsed)
	}
	select {
	case <-done:
		// The straggler observed the cancellation and returned some status;
		// which one depends on where the abort landed (504, partial 200).
	case <-time.After(10 * time.Second):
		t.Fatal("straggling request never returned after hard cancel")
	}
}

// TestConcurrentRequestsShareScans is the HTTP-level fusion pin: N
// concurrent same-graph requests leave the group with far fewer physical
// scans than N standalone runs would have paid, with every response
// bit-identical to the library.
func TestConcurrentRequestsShareScans(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.txt")
	writeGraph(t, path, 3000, 5, 13)

	seeds := []uint64{1, 7, 42, 99, 1001, 31337}
	want := make(map[uint64]triangle.Result, len(seeds))
	soloScans := 0
	for _, seed := range seeds {
		res, err := triangle.EstimateFile(path, triangle.Options{Seed: seed, MaxSpaceWords: 1 << 22})
		if err != nil {
			t.Fatal(err)
		}
		want[seed] = res
		soloScans += res.Scans
	}

	s, err := New(Config{Graphs: map[string]string{"g": path}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	responses := make([]estimateResponse, len(seeds))
	codes := make([]int, len(seeds))
	for i, seed := range seeds {
		wg.Add(1)
		go func(i int, seed uint64) {
			defer wg.Done()
			url := fmt.Sprintf("%s/estimate?graph=g&seed=%d", ts.URL, seed)
			codes[i] = get(t, ts.Client(), url, &responses[i])
		}(i, seed)
	}
	wg.Wait()
	for i, seed := range seeds {
		if codes[i] != http.StatusOK {
			t.Fatalf("seed %d: status %d", seed, codes[i])
		}
		if responses[i].Estimate != want[seed].Estimate {
			t.Errorf("seed %d: served estimate %v != library %v", seed, responses[i].Estimate, want[seed].Estimate)
		}
		if !responses[i].Fused {
			t.Errorf("seed %d: response not flagged fused", seed)
		}
	}
	var graphs []graphStatus
	get(t, ts.Client(), ts.URL+"/graphs", &graphs)
	if graphs[0].Scans >= soloScans {
		t.Errorf("group scans %d not below the %d scans of %d standalone runs", graphs[0].Scans, soloScans, len(seeds))
	}
	if graphs[0].Live != 0 {
		t.Errorf("live clients = %d after all requests returned", graphs[0].Live)
	}
}

// TestDecodeEngineSurface pins the operator-visible decode engine: a v2
// graph served with the decoded-block cache reports the decorated backend
// ("bex2/<kernel>+cache") in /graphs, /metrics exposes the cache counters,
// and repeat queries against the warm group actually hit the cache. A daemon
// configured with the cache disabled drops the "+cache" suffix.
func TestDecodeEngineSurface(t *testing.T) {
	dir := t.TempDir()
	txt := filepath.Join(dir, "g.txt")
	writeGraph(t, txt, 1500, 5, 11)
	src := stream.OpenFile(txt)
	path := filepath.Join(dir, "g.bex")
	if _, err := stream.WriteBex2File(path, src, 0); err != nil {
		t.Fatal(err)
	}
	src.Close()

	s, err := New(Config{Graphs: map[string]string{"g": path}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var first, second estimateResponse
	if code := get(t, ts.Client(), ts.URL+"/estimate?graph=g&seed=3", &first); code != http.StatusOK {
		t.Fatalf("estimate: status %d", code)
	}
	before := stream.ReadDecodeCacheStats()
	if code := get(t, ts.Client(), ts.URL+"/estimate?graph=g&seed=3", &second); code != http.StatusOK {
		t.Fatalf("repeat estimate: status %d", code)
	}
	if first.Estimate != second.Estimate {
		t.Fatalf("repeat estimate %v != first %v (cache changed the result)", second.Estimate, first.Estimate)
	}
	after := stream.ReadDecodeCacheStats()
	if after.Hits == before.Hits {
		t.Errorf("repeat query against the warm group recorded no cache hits")
	}

	var graphs []graphStatus
	get(t, ts.Client(), ts.URL+"/graphs", &graphs)
	want := stream.DescribeBackend(stream.BackendBex2, true)
	if graphs[0].Backend != want {
		t.Errorf("backend = %q, want %q", graphs[0].Backend, want)
	}

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, metric := range []string{
		"triangled_decode_cache_hits_total",
		"triangled_decode_cache_misses_total",
		"triangled_decode_cache_evictions_total",
		"triangled_decode_cache_bytes",
		"triangled_decode_cache_entries",
	} {
		if !strings.Contains(string(body), metric) {
			t.Errorf("/metrics missing %s", metric)
		}
	}

	// Cache off: the decoration drops the suffix and the config round-trips
	// through the negative-means-disabled convention.
	s2, err := New(Config{Graphs: map[string]string{"g": path}, DecodeCacheBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		s2.Close()
		stream.SetDecodeCacheBudget(stream.DefaultDecodeCacheBytes)
	}()
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	if code := get(t, ts2.Client(), ts2.URL+"/estimate?graph=g&seed=3", &first); code != http.StatusOK {
		t.Fatalf("uncached estimate: status %d", code)
	}
	get(t, ts2.Client(), ts2.URL+"/graphs", &graphs)
	if want := stream.DescribeBackend(stream.BackendBex2, false); graphs[0].Backend != want {
		t.Errorf("uncached backend = %q, want %q", graphs[0].Backend, want)
	}
}
