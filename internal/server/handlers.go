package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"degentri/internal/core"
	"degentri/internal/faultio"
	"degentri/internal/stream"
	"degentri/triangle"
)

// reqSpec is the decoded query surface shared by the data endpoints.
type reqSpec struct {
	graph   string
	seed    uint64
	epsilon float64
	kappa   int
	guess   int64
	mult    float64
	budget  int64 // declared MaxSpaceWords; always concrete after parsing
	timeout time.Duration
	inject  string // faultio plan spec, empty when absent
	k       int    // clique size, /cliques only
}

func (s *Server) parseSpec(r *http.Request) (reqSpec, error) {
	q := r.URL.Query()
	spec := reqSpec{
		graph:   q.Get("graph"),
		budget:  s.cfg.DefaultBudgetWords,
		timeout: s.cfg.DefaultTimeout,
		inject:  q.Get("inject"),
	}
	if spec.graph == "" {
		return spec, errors.New("missing required parameter: graph")
	}
	var err error
	if v := q.Get("seed"); v != "" {
		if spec.seed, err = strconv.ParseUint(v, 10, 64); err != nil {
			return spec, fmt.Errorf("bad seed %q: %v", v, err)
		}
	}
	if v := q.Get("epsilon"); v != "" {
		if spec.epsilon, err = strconv.ParseFloat(v, 64); err != nil || spec.epsilon <= 0 || spec.epsilon >= 1 {
			return spec, fmt.Errorf("bad epsilon %q: want a float in (0,1)", v)
		}
	}
	if v := q.Get("kappa"); v != "" {
		if spec.kappa, err = strconv.Atoi(v); err != nil || spec.kappa < 0 {
			return spec, fmt.Errorf("bad kappa %q: want a non-negative integer", v)
		}
	}
	if v := q.Get("guess"); v != "" {
		if spec.guess, err = strconv.ParseInt(v, 10, 64); err != nil || spec.guess < 0 {
			return spec, fmt.Errorf("bad guess %q: want a non-negative integer", v)
		}
	}
	if v := q.Get("multiplier"); v != "" {
		if spec.mult, err = strconv.ParseFloat(v, 64); err != nil || spec.mult < 0 {
			return spec, fmt.Errorf("bad multiplier %q: want a non-negative float", v)
		}
	}
	if v := q.Get("budget"); v != "" {
		b, err := strconv.ParseInt(v, 10, 64)
		if err != nil || b < 0 {
			return spec, fmt.Errorf("bad budget %q: want non-negative words", v)
		}
		if b > 0 {
			spec.budget = b
		}
	}
	if v := q.Get("timeout"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			return spec, fmt.Errorf("bad timeout %q: want a positive duration like 500ms", v)
		}
		spec.timeout = min(d, s.cfg.MaxTimeout)
	}
	if v := q.Get("k"); v != "" {
		if spec.k, err = strconv.Atoi(v); err != nil {
			return spec, fmt.Errorf("bad k %q: %v", v, err)
		}
	}
	if spec.inject != "" {
		if !s.cfg.AllowInject {
			return spec, errors.New("fault injection is disabled on this server")
		}
		if _, err := faultio.ParsePlan(spec.inject); err != nil {
			return spec, fmt.Errorf("bad inject spec: %v", err)
		}
	}
	return spec, nil
}

// estimateResponse is the JSON shape of /estimate and /cliques results.
// Estimate is encoded by encoding/json with the shortest round-trip float
// representation, so clients can compare it bit-for-bit against library runs.
type estimateResponse struct {
	Graph            string  `json:"graph"`
	Kind             string  `json:"kind"`
	Seed             uint64  `json:"seed"`
	Estimate         float64 `json:"estimate"`
	Edges            int     `json:"edges"`
	DegeneracyBound  int     `json:"degeneracyBound"`
	DegeneracyApprox bool    `json:"degeneracyApprox"`
	Backend          string  `json:"backend,omitempty"`
	Passes           int     `json:"passes"`
	SpaceWords       int64   `json:"spaceWords"`
	Partial          bool    `json:"partial"`
	Aborted          bool    `json:"aborted"`
	Fused            bool    `json:"fused"`
	Injected         bool    `json:"injected,omitempty"`
	Retries          int     `json:"retries,omitempty"`
	ElapsedMS        float64 `json:"elapsedMs"`
}

type errorResponse struct {
	Error string `json:"error"`
	Kind  string `json:"kind"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// writeErr maps a failure to its HTTP status and outcome counter. The
// taxonomy mirrors cmd/trianglecount's exit codes: overload and quarantine
// are the server's own (429/503), request-scoped aborts are 504, failures
// that indict the file are 502, and only genuinely unexplained errors 500.
func (s *Server) writeErr(w http.ResponseWriter, err error) {
	var status int
	var kind string
	switch {
	case errors.Is(err, errDraining):
		status, kind = http.StatusServiceUnavailable, "draining"
		s.met.draining.Add(1)
	case errors.Is(err, errShed):
		status, kind = http.StatusTooManyRequests, "shed"
		w.Header().Set("Retry-After", "1")
		s.met.shed.Add(1)
	case errors.Is(err, errBudget):
		status, kind = http.StatusServiceUnavailable, "budget"
		w.Header().Set("Retry-After", "1")
		s.met.budgetRejected.Add(1)
	case errors.Is(err, errQuarantined):
		status, kind = http.StatusServiceUnavailable, "quarantined"
		w.Header().Set("Retry-After", "1")
		s.met.quarantined.Add(1)
	case errors.Is(err, core.ErrDeadline), errors.Is(err, context.DeadlineExceeded):
		status, kind = http.StatusGatewayTimeout, "deadline"
		s.met.deadline.Add(1)
	case errors.Is(err, context.Canceled):
		status, kind = 499, "canceled" // nginx convention: client closed request
		s.met.canceled.Add(1)
	case isIOError(err):
		status, kind = http.StatusBadGateway, "io"
		s.met.ioErrors.Add(1)
	default:
		status, kind = http.StatusInternalServerError, "internal"
		s.met.internal.Add(1)
	}
	writeJSON(w, status, errorResponse{Error: err.Error(), Kind: kind})
}

func (s *Server) badRequest(w http.ResponseWriter, err error) {
	s.met.badRequest.Add(1)
	writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error(), Kind: "bad-request"})
}

// admit runs the common front of every data request: the draining gate,
// graph lookup, inflight accounting, deadline scoping, and admission. On
// success it returns the entry plus a finish func the handler must defer.
func (s *Server) admit(w http.ResponseWriter, r *http.Request, spec reqSpec) (e *graphEntry, ctx context.Context, finish func(), ok bool) {
	s.met.requests.Add(1)
	if s.draining.Load() {
		s.writeErr(w, errDraining)
		return nil, nil, nil, false
	}
	e, found := s.entries[spec.graph]
	if !found {
		s.met.notFound.Add(1)
		writeJSON(w, http.StatusNotFound, errorResponse{
			Error: fmt.Sprintf("unknown graph %q", spec.graph), Kind: "not-found"})
		return nil, nil, nil, false
	}
	s.inflightN.Add(1)
	ctx, cancel := context.WithTimeout(r.Context(), spec.timeout)
	// The drain's hard phase cancels baseCtx; tying every request scope to
	// it aborts stragglers on the private (injected) path too, which never
	// touch a group scheduler.
	stop := context.AfterFunc(s.baseCtx, cancel)
	release, err := s.adm.enter(ctx, spec.budget)
	if err != nil {
		stop()
		cancel()
		s.inflightN.Add(-1)
		s.writeErr(w, err)
		return nil, nil, nil, false
	}
	finish = func() {
		release()
		stop()
		cancel()
		s.inflightN.Add(-1)
	}
	return e, ctx, finish, true
}

func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	spec, err := s.parseSpec(r)
	if err != nil {
		s.badRequest(w, err)
		return
	}
	e, ctx, finish, ok := s.admit(w, r, spec)
	if !ok {
		return
	}
	defer finish()
	start := time.Now()

	opts := triangle.Options{
		Epsilon:          spec.epsilon,
		Degeneracy:       spec.kappa,
		TriangleGuess:    spec.guess,
		Seed:             spec.seed,
		MaxSpaceWords:    spec.budget,
		SampleMultiplier: spec.mult,
	}

	var res triangle.Result
	if spec.inject != "" {
		// Injected faults run on a private stream: a synthetic fault must
		// not perturb the shared scans other requests ride, and its outcome
		// must not count against the graph's breaker (it says nothing about
		// the file). This path pays its own scans — that is the point: it
		// exercises the unfused retry machinery end to end.
		s.met.injected.Add(1)
		plan, _ := faultio.ParsePlan(spec.inject) // validated in parseSpec
		opts.Workers = s.cfg.Workers
		opts.RetryAttempts = s.cfg.RetryAttempts
		opts.WrapStream = func(st stream.Stream) stream.Stream { return faultio.New(st, plan) }
		res, err = triangle.EstimateFileCtx(ctx, e.path, opts)
	} else {
		var g *triangle.ScanGroup
		var release func()
		g, release, err = e.acquire(ctx)
		if err == nil {
			res, err = g.Estimate(ctx, opts)
			e.recordOutcome(err)
			release()
		}
	}
	if err != nil {
		s.writeErr(w, err)
		return
	}
	switch {
	case res.Partial:
		s.met.partial.Add(1)
	case res.Aborted:
		s.met.aborted.Add(1)
	default:
		s.met.ok.Add(1)
	}
	writeJSON(w, http.StatusOK, estimateResponse{
		Graph:            spec.graph,
		Kind:             "estimate",
		Seed:             spec.seed,
		Estimate:         res.Estimate,
		Edges:            res.Edges,
		DegeneracyBound:  res.DegeneracyBound,
		DegeneracyApprox: res.DegeneracyApprox,
		Backend:          res.Backend,
		Passes:           res.Passes,
		SpaceWords:       res.SpaceWords,
		Partial:          res.Partial,
		Aborted:          res.Aborted,
		Fused:            spec.inject == "",
		Injected:         spec.inject != "",
		Retries:          res.Retries,
		ElapsedMS:        float64(time.Since(start).Microseconds()) / 1e3,
	})
}

func (s *Server) handleCliques(w http.ResponseWriter, r *http.Request) {
	spec, err := s.parseSpec(r)
	if err != nil {
		s.badRequest(w, err)
		return
	}
	if spec.k < 3 || spec.k > 8 {
		s.badRequest(w, errors.New("k must be in [3,8]"))
		return
	}
	if spec.guess < 1 {
		s.badRequest(w, errors.New("cliques requires guess ≥ 1 (a lower bound on the k-clique count)"))
		return
	}
	if spec.inject != "" {
		s.badRequest(w, errors.New("inject is only supported on /estimate"))
		return
	}
	e, ctx, finish, ok := s.admit(w, r, spec)
	if !ok {
		return
	}
	defer finish()
	start := time.Now()

	g, release, err := e.acquire(ctx)
	var res triangle.Result
	if err == nil {
		res, err = g.EstimateCliques(ctx, triangle.CliqueOptions{
			K:                spec.k,
			Epsilon:          spec.epsilon,
			Degeneracy:       spec.kappa,
			CliqueGuess:      spec.guess,
			SampleMultiplier: spec.mult,
			Seed:             spec.seed,
		})
		e.recordOutcome(err)
		release()
	}
	if err != nil {
		s.writeErr(w, err)
		return
	}
	s.met.ok.Add(1)
	writeJSON(w, http.StatusOK, estimateResponse{
		Graph:            spec.graph,
		Kind:             "cliques",
		Seed:             spec.seed,
		Estimate:         res.Estimate,
		Edges:            res.Edges,
		DegeneracyBound:  res.DegeneracyBound,
		DegeneracyApprox: res.DegeneracyApprox,
		Backend:          res.Backend,
		Passes:           res.Passes,
		SpaceWords:       res.SpaceWords,
		Fused:            true,
		ElapsedMS:        float64(time.Since(start).Microseconds()) / 1e3,
	})
}

type degeneracyResponse struct {
	Graph      string  `json:"graph"`
	Kind       string  `json:"kind"`
	Kappa      int     `json:"kappa"`
	LowerBound int     `json:"lowerBound"`
	Passes     int     `json:"passes"`
	SpaceWords int64   `json:"spaceWords"`
	ElapsedMS  float64 `json:"elapsedMs"`
}

func (s *Server) handleDegeneracy(w http.ResponseWriter, r *http.Request) {
	spec, err := s.parseSpec(r)
	if err != nil {
		s.badRequest(w, err)
		return
	}
	if spec.inject != "" {
		s.badRequest(w, errors.New("inject is only supported on /estimate"))
		return
	}
	e, ctx, finish, ok := s.admit(w, r, spec)
	if !ok {
		return
	}
	defer finish()
	start := time.Now()

	g, release, err := e.acquire(ctx)
	var k triangle.GroupKappa
	if err == nil {
		k, err = g.Degeneracy(ctx)
		e.recordOutcome(err)
		release()
	}
	if err != nil {
		s.writeErr(w, err)
		return
	}
	s.met.ok.Add(1)
	writeJSON(w, http.StatusOK, degeneracyResponse{
		Graph:      spec.graph,
		Kind:       "degeneracy",
		Kappa:      k.Kappa,
		LowerBound: k.LowerBound,
		Passes:     k.Passes,
		SpaceWords: k.SpaceWords,
		ElapsedMS:  float64(time.Since(start).Microseconds()) / 1e3,
	})
}

func (s *Server) handleGraphs(w http.ResponseWriter, r *http.Request) {
	out := make([]graphStatus, 0, len(s.names))
	for _, name := range s.names {
		out = append(out, s.entries[name].snapshot())
	}
	writeJSON(w, http.StatusOK, out)
}

// handleHealthz is liveness: 200 as long as the process serves HTTP, even
// while draining (the process is alive; it is readiness that flips).
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "ok uptime=%s\n", time.Since(s.started).Round(time.Second))
}

// handleReadyz is readiness: 503 once draining so load balancers stop
// routing here, 200 otherwise.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ready")
}
