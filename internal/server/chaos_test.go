package server

import (
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	neturl "net/url"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"degentri/internal/clique"
	"degentri/internal/passes"
	"degentri/internal/stream"
	"degentri/triangle"
)

// TestChaosLoad is the daemon's acceptance gate: ≥1000 concurrent mixed
// queries — clean estimates, injected faults, dead-on-arrival deadlines,
// tiny and over-ceiling budgets, degeneracy and clique calls — against two
// graphs, while liveness is polled throughout. Afterwards:
//
//   - every clean complete response is bit-identical to the library run
//     with the same (seed, budget), including fault-injected requests whose
//     faults healed under retry (healed scans are bit-identical);
//   - every degeneracy response agrees (the peel is deterministic);
//   - the hot graph's physical scans stay well below one scan per request
//     (pass fusion is actually happening under load);
//   - the goroutine census returns to the baseline (nothing leaked);
//   - the daemon was live (200 /healthz) at every poll.
func TestChaosLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos load test skipped in -short mode")
	}
	baseline := runtime.NumGoroutine()
	dir := t.TempDir()
	hotPath := filepath.Join(dir, "hot.txt")
	coldPath := filepath.Join(dir, "cold.txt")
	writeGraph(t, hotPath, 1200, 4, 21)
	writeGraph(t, coldPath, 900, 4, 22)

	const (
		totalQueries  = 1100
		defaultBudget = int64(1 << 22)
		ceiling       = int64(1 << 26)
	)
	seeds := []uint64{1, 7, 42, 99, 1001, 31337}

	// Library ground truth for the clean-comparison seeds, same options the
	// server applies for requests that declare nothing but a seed.
	wantHot := make(map[uint64]float64, len(seeds))
	wantCold := make(map[uint64]float64, len(seeds))
	for _, seed := range seeds {
		res, err := triangle.EstimateFile(hotPath, triangle.Options{Seed: seed, MaxSpaceWords: defaultBudget})
		if err != nil {
			t.Fatal(err)
		}
		wantHot[seed] = res.Estimate
		res, err = triangle.EstimateFile(coldPath, triangle.Options{Seed: seed, MaxSpaceWords: defaultBudget})
		if err != nil {
			t.Fatal(err)
		}
		wantCold[seed] = res.Estimate
	}
	// Clique ground truth with a pinned κ (so the reference does not depend
	// on the group's shared κ̂): unfused execution of the identical config.
	const cliqueK, cliqueKappa, cliqueGuess, cliqueSeed = 4, 12, 50, 5
	ccfg := clique.DefaultConfig(cliqueK, 0.1, cliqueKappa, cliqueGuess)
	ccfg.Seed = cliqueSeed
	fs, err := stream.OpenAuto(hotPath)
	if err != nil {
		t.Fatal(err)
	}
	m, err := stream.CountEdges(fs)
	if err != nil {
		t.Fatal(err)
	}
	cref, err := clique.EstimateOn(passes.NewDirect(fs, m, 0), ccfg)
	if err != nil {
		t.Fatal(err)
	}
	fs.Close()

	s, err := New(Config{
		Graphs:            map[string]string{"hot": hotPath, "cold": coldPath},
		QueueDepth:        totalQueries + 100, // chaos measures fusion, not shedding
		SpaceCeilingWords: ceiling,
		AllowInject:       true,
		// All queries launch at once and funnel through the slot pool; under
		// the race detector a queued request can wait minutes. Deadlines
		// under test are the explicit per-request ones (the doa flavor), not
		// the server default.
		DefaultTimeout: 4 * time.Minute,
		MaxTimeout:     5 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 256}}
	defer client.CloseIdleConnections()

	// Liveness poller: /healthz must answer 200 for the whole run.
	stopHealth := make(chan struct{})
	var healthFailures atomic.Int64
	var healthWG sync.WaitGroup
	healthWG.Add(1)
	go func() {
		defer healthWG.Done()
		for {
			select {
			case <-stopHealth:
				return
			case <-time.After(25 * time.Millisecond):
				resp, err := client.Get(ts.URL + "/healthz")
				if err != nil || resp.StatusCode != http.StatusOK {
					healthFailures.Add(1)
				}
				if err == nil {
					resp.Body.Close()
				}
			}
		}
	}()

	type outcome struct {
		kind     string // query flavor
		status   int
		estimate float64
		partial  bool
		aborted  bool
		seed     uint64
		graph    string
		errKind  string
	}
	outcomes := make([]outcome, totalQueries)
	var wg sync.WaitGroup
	for i := 0; i < totalQueries; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(i)*2654435761 + 17))
			o := &outcomes[i]
			o.seed = seeds[rng.Intn(len(seeds))]
			o.graph = "hot"
			if rng.Intn(10) < 3 {
				o.graph = "cold"
			}
			var url string
			roll := rng.Intn(100)
			switch {
			case roll < 55: // clean estimate, compare bits
				o.kind = "clean"
				url = fmt.Sprintf("%s/estimate?graph=%s&seed=%d", ts.URL, o.graph, o.seed)
			case roll < 70: // injected transient faults, heal under retry
				o.kind = "injected"
				url = fmt.Sprintf("%s/estimate?graph=%s&seed=%d&inject=%s", ts.URL, o.graph, o.seed,
					neturl.QueryEscape(fmt.Sprintf("seed=%d,every=3,max=4,kinds=eio+reset", i)))
			case roll < 80: // dead-on-arrival deadline
				o.kind = "doa"
				url = fmt.Sprintf("%s/estimate?graph=%s&seed=%d&timeout=1ns", ts.URL, o.graph, o.seed)
			case roll < 85: // tiny budget: 200 aborted via the library cutoff
				o.kind = "tiny-budget"
				url = fmt.Sprintf("%s/estimate?graph=%s&seed=%d&budget=8", ts.URL, o.graph, o.seed)
			case roll < 90: // budget at the ceiling: admitted alone, else 503
				o.kind = "huge-budget"
				url = fmt.Sprintf("%s/estimate?graph=%s&seed=%d&budget=%d", ts.URL, o.graph, o.seed, ceiling)
			case roll < 97: // degeneracy: deterministic, all must agree
				o.kind = "degeneracy"
				url = fmt.Sprintf("%s/degeneracy?graph=%s", ts.URL, o.graph)
			default: // cliques with pinned κ: compare against unfused run
				o.kind = "cliques"
				o.graph = "hot"
				url = fmt.Sprintf("%s/cliques?graph=hot&k=%d&kappa=%d&guess=%d&seed=%d",
					ts.URL, cliqueK, cliqueKappa, cliqueGuess, cliqueSeed)
			}
			var body struct {
				Estimate float64 `json:"estimate"`
				Kappa    int     `json:"kappa"`
				Partial  bool    `json:"partial"`
				Aborted  bool    `json:"aborted"`
				Kind     string  `json:"kind"`
				Error    string  `json:"error"`
			}
			o.status = get(t, client, url, &body)
			o.estimate = body.Estimate
			if o.kind == "degeneracy" {
				o.estimate = float64(body.Kappa)
			}
			o.partial, o.aborted = body.Partial, body.Aborted
			if body.Error != "" {
				o.errKind = body.Kind
			}
		}(i)
	}
	wg.Wait()
	close(stopHealth)
	healthWG.Wait()

	if n := healthFailures.Load(); n > 0 {
		t.Errorf("healthz failed %d polls during the chaos run", n)
	}

	// Verify every outcome against its flavor's contract.
	counts := map[string]int{}
	kappaSeen := map[string]float64{}
	for i := range outcomes {
		o := &outcomes[i]
		counts[o.kind+":"+fmt.Sprint(o.status)]++
		switch o.kind {
		case "clean":
			if o.status != http.StatusOK {
				t.Errorf("query %d (clean %s seed %d): status %d (%s)", i, o.graph, o.seed, o.status, o.errKind)
				continue
			}
			want := wantHot[o.seed]
			if o.graph == "cold" {
				want = wantCold[o.seed]
			}
			if o.partial || o.aborted || o.estimate != want {
				t.Errorf("query %d (clean %s seed %d): estimate %v partial=%v aborted=%v, want exactly %v",
					i, o.graph, o.seed, o.estimate, o.partial, o.aborted, want)
			}
		case "injected":
			// Healed runs must be bit-identical; exhausted retry budgets may
			// surface as 502. Nothing else is acceptable.
			switch o.status {
			case http.StatusOK:
				want := wantHot[o.seed]
				if o.graph == "cold" {
					want = wantCold[o.seed]
				}
				if !o.partial && !o.aborted && o.estimate != want {
					t.Errorf("query %d (injected %s seed %d): healed estimate %v != library %v",
						i, o.graph, o.seed, o.estimate, want)
				}
			case http.StatusBadGateway:
				// retry budget out-faulted
			default:
				t.Errorf("query %d (injected): status %d (%s)", i, o.status, o.errKind)
			}
		case "doa":
			if o.status != http.StatusGatewayTimeout {
				t.Errorf("query %d (doa): status %d (%s), want 504", i, o.status, o.errKind)
			}
		case "tiny-budget":
			if o.status != http.StatusOK || !o.aborted {
				t.Errorf("query %d (tiny-budget): status %d aborted=%v, want 200 aborted", i, o.status, o.aborted)
			}
		case "huge-budget":
			if o.status != http.StatusOK && !(o.status == http.StatusServiceUnavailable && o.errKind == "budget") {
				t.Errorf("query %d (huge-budget): status %d (%s), want 200 or 503 budget", i, o.status, o.errKind)
			}
		case "degeneracy":
			if o.status != http.StatusOK {
				t.Errorf("query %d (degeneracy %s): status %d (%s)", i, o.graph, o.status, o.errKind)
				continue
			}
			if prev, ok := kappaSeen[o.graph]; ok && prev != o.estimate {
				t.Errorf("query %d: degeneracy of %s = %v, earlier response said %v", i, o.graph, o.estimate, prev)
			}
			kappaSeen[o.graph] = o.estimate
		case "cliques":
			if o.status != http.StatusOK || o.estimate != cref.Estimate {
				t.Errorf("query %d (cliques): status %d estimate %v, want 200 with %v", i, o.status, o.estimate, cref.Estimate)
			}
		}
	}
	t.Logf("outcome counts: %v", counts)

	// Fusion must have paid: the hot graph served hundreds of shared-path
	// requests; without fusion each costs several scans of its own.
	var graphs []graphStatus
	get(t, client, ts.URL+"/graphs", &graphs)
	sharedRequests := 0
	for i := range outcomes {
		o := &outcomes[i]
		if o.graph == "hot" && o.status == http.StatusOK && o.kind != "injected" {
			sharedRequests++
		}
	}
	for _, g := range graphs {
		if g.Name != "hot" {
			continue
		}
		t.Logf("hot graph: %d scans carried %d logical passes for %d shared requests (fused width %.1f)",
			g.Scans, g.Carried, sharedRequests, float64(g.Carried)/float64(g.Scans))
		// Unfused, every logical pass would be its own physical scan
		// (Carried ≈ N× solo scans). Require an average fused width above 2:
		// the scan count must be well below half the logical pass count.
		if g.Carried < 2*g.Scans {
			t.Errorf("hot graph: %d scans for %d logical passes (width %.2f ≤ 2) — fusion is not paying",
				g.Scans, g.Carried, float64(g.Carried)/float64(g.Scans))
		}
		if g.Live != 0 {
			t.Errorf("hot graph: %d live clients after the run", g.Live)
		}
	}

	// Clean shutdown and census: nothing may leak across 1100 requests.
	if !s.Drain(30 * time.Second) {
		t.Error("drain after chaos was not clean")
	}
	ts.Close()
	client.CloseIdleConnections()
	waitCensus(t, baseline)
}
