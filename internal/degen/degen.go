// Package degen approximates the graph degeneracy κ from an edge stream in
// O(n) words and O(log n) passes, replacing the Θ(m) materializing fallback
// the facade used when a caller supplied no degeneracy bound.
//
// # Algorithm: chunked peeling
//
// The exact degeneracy is the maximum observed degree over a minimum-degree
// peeling — inherently sequential and Θ(n + m) space. The streaming relaxation
// peels in chunks: each round makes one pass counting the degrees of the
// subgraph induced by the not-yet-removed ("alive") vertices and then removes
// every alive vertex whose induced degree is at most the round's cutoff
//
//	cut = 2·(1+ε)·(m'/n'),
//
// twice the (1+ε)-slackened density of the alive subgraph (m' induced edges,
// n' alive vertices). Two facts make this work:
//
//   - Upper bound: concatenating the rounds' removals gives a vertex ordering
//     in which every vertex has at most deg_removed(v) later neighbors, so
//     κ ≤ max over all removed v of its removal degree (Kappa below). Each
//     removal degree is ≤ its round's cut ≤ 2(1+ε)·max density ≤ 2(1+ε)·κ,
//     since the density m'/n' of any subgraph lower-bounds κ. Hence
//     κ ≤ Kappa ≤ 2(1+ε)·κ — a (2+ε')-approximation with ε' = 2ε.
//   - Progress: vertices surviving a round have degree > 2(1+ε)m'/n', and
//     degrees sum to 2m', so fewer than n'/(1+ε) survive. The alive set
//     shrinks geometrically and the loop ends in O(log n / log(1+ε)) rounds;
//     the cut value "threshold" each round rises with the density of the
//     ever-denser surviving core.
//
// The per-round degree pass is passes.CountDegreesMasked restricted by a
// graph.Bitset of alive vertices; the retained state is one dense int32
// degree array plus the bitset — O(n) words, versus the Θ(m) adjacency the
// exact computation needs. Every pass runs on the sharded pass engine and is
// deterministic at any worker count (pure counting, no randomness), so the
// estimate honors the repository's (seed, passKey, mergeKey) invariance
// contract trivially.
//
// The peel is expressed against passes.Executor (EstimateOn), so it can run
// as a scan-scheduler client: when another client of the same scheduler has
// a pass pending at the same time as a peel round — independent trials each
// resolving κ, or a trial's peel next to another trial's core passes — the
// two share one physical scan. Estimate is the standalone entry point that
// wraps a stream in a Direct executor (one scan per pass, as before).
package degen

import (
	"context"
	"fmt"

	"degentri/internal/graph"
	"degentri/internal/passes"
	"degentri/internal/stream"
)

// DefaultEpsilon is the peel slack ε used when Options.Epsilon is zero: the
// returned bound is at most 2(1+ε) = 3 times the true degeneracy, and the
// alive set shrinks by a factor ≥ 1+ε = 1.5 per round (≤ ~35 rounds at
// n = 10⁶).
const DefaultEpsilon = 0.5

// Options configures the peeling estimator.
type Options struct {
	// Epsilon is the peel slack ε > 0. The returned Kappa satisfies
	// κ ≤ Kappa ≤ 2(1+ε)·κ and the pass count is O(log n / log(1+ε)).
	// Zero selects DefaultEpsilon.
	Epsilon float64
	// Workers bounds the concurrent shard workers of each pass
	// (0 = GOMAXPROCS). The result is identical at any worker count. Only
	// Estimate consults it; EstimateOn inherits the executor's worker bound.
	Workers int
	// KnownVertices, when positive, is n = 1 + the largest vertex ID of the
	// stream, already discovered by the caller (typically fused into its
	// edge-counting scan via stream.CountEdgesAndMaxID); the peel then skips
	// its own discovery pass. Zero means unknown: one MaxVertexID pass is
	// spent discovering it.
	KnownVertices int
	// Meter, when non-nil, is charged with the peel's O(n) words for the
	// duration of the peel (charged at state allocation, released on
	// return). Fused callers tee this meter into the scheduler's group
	// meter, so concurrent peels of fused runs show up in the group peak
	// while they are actually live — not as a post-hoc lump.
	Meter *stream.SpaceMeter
}

// Result reports the approximation together with its resource usage.
type Result struct {
	// Kappa is the certified upper bound on the degeneracy: the maximum
	// induced degree any vertex had at the moment it was peeled. It satisfies
	// κ ≤ Kappa ≤ 2(1+ε)·κ (0 for edgeless streams).
	Kappa int
	// LowerBound is the certified density lower bound ⌈max over rounds of
	// m'/n'⌉ ≤ κ.
	LowerBound int
	// Rounds is the number of peeling rounds (degree passes).
	Rounds int
	// Passes is the total number of stream passes: one vertex-ID discovery
	// pass plus Rounds.
	Passes int
	// Vertices is n, one more than the largest vertex ID seen (the size of
	// the dense peeling state).
	Vertices int
	// SpaceWords is the accounted peak space: the dense degree array plus the
	// alive bitset, in machine words.
	SpaceWords int64
}

// Estimate approximates the degeneracy of a stream of m edges. Self-loops,
// negative IDs, and duplicate edges are tolerated: loops and negatives are
// ignored, duplicates inflate degrees and can only raise the bound (which
// keeps it a valid upper bound for the underlying simple graph). Each pass
// is its own physical scan; EstimateOn is the executor-based variant that a
// scan scheduler can fuse with other pending passes.
func Estimate(s stream.Stream, m int, opts Options) (Result, error) {
	if m == 0 {
		return Result{}, nil
	}
	return EstimateOn(passes.NewDirect(s, m, opts.Workers), opts)
}

// EstimateOn is Estimate running its passes through the given executor (the
// stream length and worker bound are the executor's). When the executor is a
// scan-scheduler client, every peel round fuses with whatever passes other
// clients have pending — this is how a peel shares scans with an unrelated
// client's work.
func EstimateOn(x passes.Executor, opts Options) (Result, error) {
	eps := opts.Epsilon
	if eps <= 0 {
		eps = DefaultEpsilon
	}
	res := Result{}
	m := x.M()
	if m == 0 {
		return res, nil
	}

	var maxID int
	if opts.KnownVertices > 0 {
		maxID = opts.KnownVertices - 1
	} else {
		var err error
		maxID, err = passes.MaxVertexID(x)
		res.Passes++
		if err != nil {
			return res, fmt.Errorf("degen: vertex-ID pass: %w", err)
		}
	}
	if maxID < 0 {
		// Every edge had negative endpoints; nothing peelable.
		return res, nil
	}
	n := maxID + 1
	res.Vertices = n

	alive := graph.NewBitset(n)
	alive.SetAll()
	deg := make([]int32, n)
	// One word per degree slot (int32 charged conservatively at a full word,
	// matching the repository's per-counter accounting) plus the bitset words.
	res.SpaceWords = int64(n) + int64((n+63)/64)
	if opts.Meter != nil {
		opts.Meter.Charge(res.SpaceWords)
		defer opts.Meter.Release(res.SpaceWords)
	}

	aliveCount := n
	for aliveCount > 0 {
		// The pass below polls the context every batch; this check stops a
		// cancelled peel from starting another round.
		if cerr := x.Context().Err(); cerr != nil {
			return res, fmt.Errorf("degen: peel cancelled before round %d: %w", res.Rounds+1, context.Cause(x.Context()))
		}
		clear(deg)
		induced, err := passes.CountDegreesMasked(x, alive, deg)
		res.Rounds++
		res.Passes++
		if err != nil {
			return res, fmt.Errorf("degen: peel round %d: %w", res.Rounds, err)
		}

		// Density lower bound κ ≥ ⌈m'/n'⌉ (m' ≤ κ·n' for any subgraph).
		if lb := int((induced + int64(aliveCount) - 1) / int64(aliveCount)); lb > res.LowerBound {
			res.LowerBound = lb
		}
		cut := 2 * (1 + eps) * float64(induced) / float64(aliveCount)

		removed, minDeg := 0, int32(-1)
		alive.ForEach(func(v int) {
			d := deg[v]
			if float64(d) <= cut {
				alive.Unset(v)
				removed++
				if int(d) > res.Kappa {
					res.Kappa = int(d)
				}
			} else if minDeg < 0 || d < minDeg {
				minDeg = d
			}
		})
		// The counting argument guarantees progress (survivors number fewer
		// than n'/(1+ε)), so this fallback is unreachable in exact arithmetic;
		// it pins termination against any float corner case by peeling the
		// minimum-degree layer directly.
		if removed == 0 {
			alive.ForEach(func(v int) {
				if deg[v] == minDeg {
					alive.Unset(v)
					removed++
				}
			})
			if int(minDeg) > res.Kappa {
				res.Kappa = int(minDeg)
			}
		}
		aliveCount -= removed
	}
	return res, nil
}
