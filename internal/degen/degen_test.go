package degen_test

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"degentri/internal/degen"
	"degentri/internal/gen"
	"degentri/internal/graph"
	"degentri/internal/stream"
)

// checkBounds asserts the estimator's two certificates against the exact
// degeneracy: κ ≤ Kappa ≤ 2(1+ε)·κ and LowerBound ≤ κ.
func checkBounds(t *testing.T, name string, g *graph.Graph, eps float64) degen.Result {
	t.Helper()
	exact := g.Degeneracy()
	m := g.NumEdges()
	res, err := degen.Estimate(stream.FromGraphShuffled(g, 7), m, degen.Options{Epsilon: eps})
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if eps <= 0 {
		eps = degen.DefaultEpsilon
	}
	if res.Kappa < exact {
		t.Errorf("%s: Kappa = %d below the true degeneracy %d", name, res.Kappa, exact)
	}
	if limit := 2 * (1 + eps) * float64(exact); float64(res.Kappa) > limit {
		t.Errorf("%s: Kappa = %d exceeds the certified factor: 2(1+%g)·%d = %.1f", name, res.Kappa, eps, exact, limit)
	}
	if res.LowerBound > exact {
		t.Errorf("%s: LowerBound = %d above the true degeneracy %d", name, res.LowerBound, exact)
	}
	if res.Passes != res.Rounds+1 {
		t.Errorf("%s: passes = %d, want rounds+1 = %d", name, res.Passes, res.Rounds+1)
	}
	// O(n) words: the dense degree array plus the alive bitset and nothing
	// proportional to m.
	n := int64(g.NumVertices())
	if res.SpaceWords > 2*n+64 {
		t.Errorf("%s: space = %d words for n = %d, want O(n)", name, res.SpaceWords, n)
	}
	return res
}

func TestApproximationRatioAcrossFamilies(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"erdos-renyi-gnp", gen.ErdosRenyiGNP(1200, 0.01, 5)},
		{"erdos-renyi-gnm", gen.ErdosRenyiGNM(1500, 9000, 6)},
		{"barabasi-albert", gen.BarabasiAlbert(2500, 5, 17)},
		{"holme-kim", gen.HolmeKim(2500, 6, 0.7, 23)},
		{"planar-wheel", gen.Wheel(800)},
		{"apollonian", gen.Apollonian(300)},
		{"complete-K31", gen.Complete(31)},
		{"path", gen.Path(400)},
		{"star", gen.Star(512)},
		{"book", gen.Book(200)},
	}
	for _, c := range cases {
		for _, eps := range []float64{0, 0.25, 1} {
			checkBounds(t, fmt.Sprintf("%s/eps=%g", c.name, eps), c.g, eps)
		}
	}
}

// TestGolden pins the exact approximation on fixed inputs: the peel is
// deterministic (no randomness at all), so these values are stable across
// worker counts, backends, and refactors. A change here is a behavior change
// of the estimator, not noise.
func TestGolden(t *testing.T) {
	goldens := []struct {
		name       string
		g          *graph.Graph
		wantKappa  int
		wantLower  int
		wantRounds int
	}{
		// Pinned from the first run of this suite (exact κ: 3, 4, 3); see
		// TestApproximationRatioAcrossFamilies for the mathematical envelope
		// these sit inside.
		{"wheel-500", gen.Wheel(500), 3, 2, 2},
		{"holme-kim-1200-4", gen.HolmeKim(1200, 4, 0.7, 9), 11, 4, 4},
		{"barabasi-albert-1500-3", gen.BarabasiAlbert(1500, 3, 11), 8, 3, 4},
	}
	for _, c := range goldens {
		res, err := degen.Estimate(stream.FromGraphShuffled(c.g, 3), c.g.NumEdges(), degen.Options{})
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if res.Kappa != c.wantKappa || res.LowerBound != c.wantLower || res.Rounds != c.wantRounds {
			t.Errorf("%s: (κ̂=%d, lower=%d, rounds=%d), pinned (%d, %d, %d)",
				c.name, res.Kappa, res.LowerBound, res.Rounds, c.wantKappa, c.wantLower, c.wantRounds)
		}
	}
}

// TestWorkerInvarianceAcrossBackends runs the same peel at 1/2/4/8 workers
// over the in-memory, text-file, and .bex backends: every Result must be
// bit-identical (the peel is deterministic and the shard grid is fixed).
func TestWorkerInvarianceAcrossBackends(t *testing.T) {
	g := gen.HolmeKim(6000, 5, 0.6, 41)
	m := g.NumEdges()
	if stream.ActiveShards(m) < 3 {
		t.Fatalf("graph too small to exercise the parallel path: %d shards", stream.ActiveShards(m))
	}
	dir := t.TempDir()

	textPath := filepath.Join(dir, "edges.txt")
	f, err := os.Create(textPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(f, "%d %d\n", e.U, e.V)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	bexPath := filepath.Join(dir, "edges.bex")
	if _, err := stream.WriteBexFile(bexPath, stream.FromGraph(g)); err != nil {
		t.Fatal(err)
	}

	backends := map[string]func() stream.Stream{
		"memory": func() stream.Stream { return stream.FromGraph(g) },
		"text":   func() stream.Stream { return stream.OpenFile(textPath) },
		"bex": func() stream.Stream {
			bs, err := stream.OpenBex(bexPath)
			if err != nil {
				t.Fatal(err)
			}
			return bs
		},
	}
	var baseline *degen.Result
	for name, open := range backends {
		for _, workers := range []int{1, 2, 4, 8} {
			s := open()
			res, err := degen.Estimate(s, m, degen.Options{Workers: workers})
			if c, ok := s.(interface{ Close() error }); ok {
				c.Close()
			}
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, workers, err)
			}
			if baseline == nil {
				b := res
				baseline = &b
				continue
			}
			if res != *baseline {
				t.Errorf("%s workers=%d: result %+v diverges from baseline %+v", name, workers, res, *baseline)
			}
		}
	}
}

func TestDegenerateInputs(t *testing.T) {
	// Empty stream.
	res, err := degen.Estimate(stream.FromEdges(nil), 0, degen.Options{})
	if err != nil || res.Kappa != 0 || res.Passes != 0 {
		t.Fatalf("empty stream: %+v, %v", res, err)
	}
	// Only negative IDs: one discovery pass, nothing peelable.
	neg := []graph.Edge{{U: -1, V: -2}}
	res, err = degen.Estimate(stream.FromEdges(neg), len(neg), degen.Options{})
	if err != nil || res.Kappa != 0 || res.Passes != 1 {
		t.Fatalf("negative-only stream: %+v, %v", res, err)
	}
	// Self loops are ignored; the remaining edge gives κ̂ = 1.
	loops := []graph.Edge{{U: 0, V: 0}, {U: 3, V: 3}, {U: 0, V: 1}}
	res, err = degen.Estimate(stream.FromEdges(loops), len(loops), degen.Options{})
	if err != nil || res.Kappa != 1 {
		t.Fatalf("loopy stream: %+v, %v", res, err)
	}
	// A single edge: κ = 1 exactly.
	one := []graph.Edge{{U: 0, V: 1}}
	res, err = degen.Estimate(stream.FromEdges(one), 1, degen.Options{})
	if err != nil || res.Kappa != 1 || res.LowerBound != 1 {
		t.Fatalf("single edge: %+v, %v", res, err)
	}
}

// TestDuplicateEdgesOnlyRaiseTheBound pins the multigraph semantics: a
// doubled stream still yields a valid upper bound for the simple graph.
func TestDuplicateEdgesOnlyRaiseTheBound(t *testing.T) {
	g := gen.Wheel(300)
	exact := g.Degeneracy()
	doubled := append(append([]graph.Edge{}, g.Edges()...), g.Edges()...)
	res, err := degen.Estimate(stream.FromEdges(doubled), len(doubled), degen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Kappa < exact {
		t.Fatalf("doubled stream κ̂ = %d below simple κ = %d", res.Kappa, exact)
	}
}

// TestStreamErrorPropagates checks that a failing backend surfaces as an
// error instead of a bogus bound.
func TestStreamErrorPropagates(t *testing.T) {
	if _, err := degen.Estimate(stream.OpenFile("/definitely/not/a/file"), 10, degen.Options{}); err == nil {
		t.Fatal("expected an error from a missing file")
	}
}
