package stream

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"degentri/internal/graph"
)

// bex2TestEdges builds m edges with the mixed small/large deltas a
// canonicalized graph produces, plus a few adversarial jumps that force
// multi-byte varints and negative deltas.
func bex2TestEdges(m int) []graph.Edge {
	edges := make([]graph.Edge, m)
	for i := range edges {
		switch i % 7 {
		case 0:
			edges[i] = graph.Edge{U: i % 1200, V: (i % 1200) + 1}
		case 3:
			edges[i] = graph.Edge{U: 1<<30 - i%97, V: i % 13}
		default:
			edges[i] = graph.Edge{U: i % 977, V: 977 + i%991}
		}
	}
	return edges
}

// collectAll runs one full pass and returns every edge.
func collectAll(t *testing.T, s Stream) []graph.Edge {
	t.Helper()
	got, err := Collect(s)
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	return got
}

func sameEdges(t *testing.T, got, want []graph.Edge, what string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d edges, want %d", what, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: edge %d = %v, want %v", what, i, got[i], want[i])
		}
	}
}

// TestBex2RoundTrip pins the v2 codec: every reader (buffered, mmap) returns
// the written edges exactly, across block sizes that exercise partial final
// blocks, single-edge blocks, and an empty stream, over repeated passes.
func TestBex2RoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name       string
		m          int
		blockEdges int
	}{
		{"empty", 0, 64},
		{"one-edge", 1, 64},
		{"one-block", 50, 64},
		{"exact-blocks", 256, 64},
		{"partial-tail", 1000, 64},
		{"tiny-blocks", 300, 1},
		{"default-blocks", 5000, 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			edges := bex2TestEdges(tc.m)
			path := filepath.Join(t.TempDir(), "g.bex")
			n, err := WriteBex2File(path, FromEdges(edges), tc.blockEdges)
			if err != nil || n != tc.m {
				t.Fatalf("WriteBex2File = %d, %v", n, err)
			}
			for _, open := range []struct {
				name string
				open func(string) (FileBacked, error)
			}{
				{"buffered", func(p string) (FileBacked, error) { return OpenBex2(p) }},
				{"mmap", func(p string) (FileBacked, error) { return OpenBexMap(p) }},
			} {
				s, err := open.open(path)
				if err != nil {
					t.Fatalf("%s open: %v", open.name, err)
				}
				if m, known := s.Len(); !known || m != tc.m {
					t.Fatalf("%s Len = %d, %v", open.name, m, known)
				}
				for pass := 0; pass < 2; pass++ {
					sameEdges(t, collectAll(t, s), edges, open.name)
				}
				// Close then Reset must work, matching the v1 contract.
				if err := s.Close(); err != nil {
					t.Fatalf("%s close: %v", open.name, err)
				}
				sameEdges(t, collectAll(t, s), edges, open.name+" after close")
				s.Close()
			}
		})
	}
}

// TestBex2NextMatchesNextBatch pins the two read paths against each other.
func TestBex2NextMatchesNextBatch(t *testing.T) {
	edges := bex2TestEdges(500)
	path := filepath.Join(t.TempDir(), "g.bex")
	if _, err := WriteBex2File(path, FromEdges(edges), 64); err != nil {
		t.Fatal(err)
	}
	s, err := OpenBex2(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Reset(); err != nil {
		t.Fatal(err)
	}
	for i, want := range edges {
		e, err := s.Next()
		if err != nil {
			t.Fatalf("Next at %d: %v", i, err)
		}
		if e != want {
			t.Fatalf("Next %d = %v, want %v", i, e, want)
		}
	}
	if _, err := s.Next(); err != ErrEndOfPass {
		t.Fatalf("after last edge: %v", err)
	}
}

// TestBex2SmallerThanV1 pins the compression claim the bench gate tracks:
// on realistic (small-delta) edge streams the v2 encoding is strictly
// smaller than v1's flat 8 bytes per edge.
func TestBex2SmallerThanV1(t *testing.T) {
	edges := benchEdges(1 << 14)
	dir := t.TempDir()
	v1, v2 := filepath.Join(dir, "g1.bex"), filepath.Join(dir, "g2.bex")
	if _, err := WriteBexFile(v1, FromEdges(edges)); err != nil {
		t.Fatal(err)
	}
	if _, err := WriteBex2File(v2, FromEdges(edges), 0); err != nil {
		t.Fatal(err)
	}
	s1, _ := os.Stat(v1)
	s2, _ := os.Stat(v2)
	if s2.Size() >= s1.Size() {
		t.Fatalf("v2 (%d bytes) not smaller than v1 (%d bytes)", s2.Size(), s1.Size())
	}
}

// TestBex2WritePatchesUnknownLength pins the header patch path: a seekable
// writer with an unknown stream length gets the count patched afterwards.
func TestBex2WritePatchesUnknownLength(t *testing.T) {
	edges := bex2TestEdges(200)
	path := filepath.Join(t.TempDir(), "g.bex")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	n, err := WriteBex2(f, hideLen{FromEdges(edges)}, 64)
	if err != nil || n != len(edges) {
		t.Fatalf("WriteBex2 = %d, %v", n, err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	s, err := OpenBex2(path)
	if err != nil {
		t.Fatalf("patched file rejected: %v", err)
	}
	defer s.Close()
	sameEdges(t, collectAll(t, s), edges, "patched")

	var sink writerOnly
	if _, err := WriteBex2(&sink, hideLen{FromEdges(edges)}, 64); err == nil {
		t.Fatal("unknown length + non-seekable writer must error")
	}
}

// TestBex2RangeStream pins range semantics: every [lo, hi) window — aligned,
// straddling block boundaries, within one block, empty — yields exactly the
// window's edges, for both readers.
func TestBex2RangeStream(t *testing.T) {
	edges := bex2TestEdges(700)
	path := filepath.Join(t.TempDir(), "g.bex")
	if _, err := WriteBex2File(path, FromEdges(edges), 64); err != nil {
		t.Fatal(err)
	}
	buffered, err := OpenBex2(path)
	if err != nil {
		t.Fatal(err)
	}
	defer buffered.Close()
	mapped, err := OpenBexMap(path)
	if err != nil {
		t.Fatal(err)
	}
	defer mapped.Close()
	for _, rs := range []struct {
		name string
		rs   RangeStreamer
	}{{"buffered", buffered}, {"mmap", mapped}} {
		for _, win := range [][2]int{
			{0, 0}, {0, 700}, {0, 64}, {64, 128}, {10, 20}, {60, 70},
			{63, 65}, {640, 700}, {699, 700}, {0, 1}, {130, 530},
		} {
			sub, ok := rs.rs.RangeStream(win[0], win[1])
			if !ok {
				t.Fatalf("%s: RangeStream(%d, %d) unavailable", rs.name, win[0], win[1])
			}
			sameEdges(t, collectAll(t, sub), edges[win[0]:win[1]], rs.name)
			if c, ok := sub.(interface{ Close() error }); ok {
				c.Close()
			}
		}
		if _, ok := rs.rs.RangeStream(0, 701); ok {
			t.Fatalf("%s: out-of-bounds range accepted", rs.name)
		}
	}
}

// TestBex2NoFirstScanIndexBuild is the acceptance pin for the tentpole: a
// fresh v2 file serves shard ranges from byte zero — RangeStream is
// available before any pass, and a sharded multi-worker pass costs exactly
// one logical Reset with every edge read exactly once. The text path, by
// contrast, needs a first full scan to build its position→offset index; v2
// has no such path by construction.
func TestBex2NoFirstScanIndexBuild(t *testing.T) {
	edges := bex2TestEdges(40_000)
	dir := t.TempDir()
	for _, tc := range []struct {
		name string
		open func() (FileBacked, error)
	}{
		{"bex2", func() (FileBacked, error) { return OpenBex2(filepath.Join(dir, "g.bex")) }},
		{"bex2-mmap", func() (FileBacked, error) { return OpenBexMap(filepath.Join(dir, "g.bex")) }},
		{"bexd", func() (FileBacked, error) { return OpenBexd(filepath.Join(dir, "g.bexd")) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if tc.name == "bexd" {
				if _, err := WriteBexd(filepath.Join(dir, "g.bexd"), FromEdges(edges), 512, 10_000); err != nil {
					t.Fatal(err)
				}
			} else if _, err := os.Stat(filepath.Join(dir, "g.bex")); err != nil {
				if _, err := WriteBex2File(filepath.Join(dir, "g.bex"), FromEdges(edges), 512); err != nil {
					t.Fatal(err)
				}
			}
			fb, err := tc.open()
			if err != nil {
				t.Fatal(err)
			}
			defer fb.Close()
			// Range access must work on a freshly opened stream, before any pass.
			rs, ok := fb.(RangeStreamer)
			if !ok {
				t.Fatal("stream is not a RangeStreamer")
			}
			if _, ok := rs.RangeStream(0, 0); !ok {
				t.Fatal("RangeStream unavailable before the first pass")
			}
			pc := NewPassCounter(fb)
			if _, err := ShardedForEachBatch(pc, len(edges), 4,
				func(int, []graph.Edge) error { return nil },
				func(int) error { return nil }); err != nil {
				t.Fatal(err)
			}
			if got := pc.Passes(); got != 1 {
				t.Fatalf("sharded pass cost %d logical passes, want 1 (no index-build scan)", got)
			}
			if got := pc.EdgesRead(); got != int64(len(edges)) {
				t.Fatalf("sharded pass read %d edges, want %d (no extra scan)", got, len(edges))
			}
		})
	}
}

// corrupt writes a mutated copy of raw and returns its path.
func corrupt(t *testing.T, dir, name string, raw []byte, mutate func([]byte) []byte) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, mutate(append([]byte(nil), raw...)), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestOpenBex2ValidatesContainer is the v2 counterpart of the PR 4 v1
// corruption suite: every way the container metadata can lie — truncation,
// resize, forged counts, footer damage — fails at OpenBex2 with the right
// sentinel, never as a wrong answer or a mid-pass surprise.
func TestOpenBex2ValidatesContainer(t *testing.T) {
	edges := bex2TestEdges(1000)
	dir := t.TempDir()
	good := filepath.Join(dir, "good.bex")
	if _, err := WriteBex2File(good, FromEdges(edges), 64); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name   string
		mutate func([]byte) []byte
		want   error
	}{
		{"bad-magic", func(b []byte) []byte { b[0] = 'X'; return b }, ErrCorruptHeader},
		{"too-short", func(b []byte) []byte { return b[:40] }, ErrCorruptHeader},
		{"truncated-tail", func(b []byte) []byte { return b[:len(b)-7] }, ErrTruncated},
		{"truncated-footer", func(b []byte) []byte {
			// Drop one footer record but keep the tail intact: geometry check.
			return append(append([]byte(nil), b[:len(b)-bex2TailSize-bex2FooterRec]...), b[len(b)-bex2TailSize:]...)
		}, ErrCorruptHeader},
		{"trailing-garbage", func(b []byte) []byte { return append(b, 0xAA) }, ErrTruncated},
		{"lying-edge-count", func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[8:], uint64(len(edges)+7))
			return b
		}, ErrCorruptHeader},
		{"implausible-block-size", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[4:], 0)
			return b
		}, ErrCorruptHeader},
		{"footer-bit-flip", func(b []byte) []byte {
			b[len(b)-bex2TailSize-bex2FooterRec+16] ^= 1 // a block count in the footer
			return b
		}, ErrCorruptHeader},
		{"tail-block-count", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[len(b)-bex2TailSize+8:], 3)
			return b
		}, ErrCorruptHeader},
	} {
		t.Run(tc.name, func(t *testing.T) {
			path := corrupt(t, dir, tc.name+".bex", raw, tc.mutate)
			_, err := OpenBex2(path)
			if err == nil {
				t.Fatal("corrupt container accepted at open")
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("error %v does not wrap %v", err, tc.want)
			}
			if _, err := OpenBexMap(path); err == nil {
				t.Fatal("mmap reader accepted a corrupt container")
			}
		})
	}
}

// TestBex2BlockCorruptionFailsDeterministically pins the block-payload
// contract: a bit flip inside a block passes open (the container geometry is
// intact) but fails with ErrCorruptBlock the first time that block is read —
// on the full pass and on a range that touches it — and never decodes to
// silently wrong edges.
func TestBex2BlockCorruptionFailsDeterministically(t *testing.T) {
	edges := bex2TestEdges(1000)
	dir := t.TempDir()
	good := filepath.Join(dir, "good.bex")
	if _, err := WriteBex2File(good, FromEdges(edges), 64); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the payload of the fourth block (positions 192-255).
	fs, err := OpenBex2(good)
	if err != nil {
		t.Fatal(err)
	}
	off := fs.cur.meta.blocks[3].off + 5
	fs.Close()
	path := corrupt(t, dir, "flipped.bex", raw, func(b []byte) []byte {
		b[off] ^= 0x40
		return b
	})
	for _, open := range []struct {
		name string
		open func(string) (FileBacked, error)
	}{
		{"buffered", func(p string) (FileBacked, error) { return OpenBex2(p) }},
		{"mmap", func(p string) (FileBacked, error) { return OpenBexMap(p) }},
	} {
		s, err := open.open(path)
		if err != nil {
			t.Fatalf("%s: block corruption must not fail at open (container is intact): %v", open.name, err)
		}
		if _, err := Collect(s); !errors.Is(err, ErrCorruptBlock) {
			t.Fatalf("%s: full pass error %v, want ErrCorruptBlock", open.name, err)
		}
		// A range inside the damaged block hits the same error; a range that
		// avoids it still succeeds.
		sub, _ := s.(RangeStreamer).RangeStream(200, 210)
		if _, err := Collect(sub); !errors.Is(err, ErrCorruptBlock) {
			t.Fatalf("%s: range over damaged block: %v, want ErrCorruptBlock", open.name, err)
		}
		clean, _ := s.(RangeStreamer).RangeStream(0, 192)
		got, err := Collect(clean)
		if err != nil {
			t.Fatalf("%s: range over clean blocks: %v", open.name, err)
		}
		sameEdges(t, got, edges[:192], open.name+" clean range")
		s.(FileBacked).Close()
	}
}

// TestBexdRoundTrip pins the sharded layout: a multi-part directory round
// trips exactly, with both buffered and mmap part readers, repeated passes,
// and ranges that span part boundaries.
func TestBexdRoundTrip(t *testing.T) {
	edges := bex2TestEdges(2500)
	dir := filepath.Join(t.TempDir(), "g.bexd")
	// 700-edge parts: four parts, the last partial; 64-edge blocks inside.
	n, err := WriteBexd(dir, FromEdges(edges), 64, 700)
	if err != nil || n != len(edges) {
		t.Fatalf("WriteBexd = %d, %v", n, err)
	}
	man, err := ReadBexdManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(man.Parts) != 4 || man.Edges != len(edges) {
		t.Fatalf("manifest: %d parts, %d edges", len(man.Parts), man.Edges)
	}
	if err := VerifyBexd(dir); err != nil {
		t.Fatalf("VerifyBexd on a fresh directory: %v", err)
	}
	for _, mmap := range []bool{false, true} {
		ms, err := OpenBexdPrefer(dir, mmap)
		if err != nil {
			t.Fatal(err)
		}
		if m, known := ms.Len(); !known || m != len(edges) {
			t.Fatalf("Len = %d, %v", m, known)
		}
		for pass := 0; pass < 2; pass++ {
			sameEdges(t, collectAll(t, ms), edges, "bexd full pass")
		}
		for _, win := range [][2]int{
			{0, 0}, {0, 2500}, {0, 700}, {700, 1400}, {650, 750},
			{699, 701}, {100, 2400}, {2100, 2500}, {1399, 1401},
		} {
			sub, ok := ms.RangeStream(win[0], win[1])
			if !ok {
				t.Fatalf("RangeStream(%d, %d) unavailable", win[0], win[1])
			}
			sameEdges(t, collectAll(t, sub), edges[win[0]:win[1]], "bexd range")
			if c, ok := sub.(interface{ Close() error }); ok {
				c.Close()
			}
		}
		if _, ok := ms.RangeStream(0, 2501); ok {
			t.Fatal("out-of-bounds range accepted")
		}
		if err := ms.Close(); err != nil {
			t.Fatal(err)
		}
		// Close then Reset works, matching every other file-backed stream.
		sameEdges(t, collectAll(t, ms), edges, "bexd after close")
		ms.Close()
	}
}

// TestBexdValidation pins the directory-level failure modes: structural
// damage fails at OpenBexd with ErrCorruptHeader/ErrTruncated, and content
// damage that open deliberately skips is caught by VerifyBexd.
func TestBexdValidation(t *testing.T) {
	edges := bex2TestEdges(900)
	base := t.TempDir()
	write := func(name string) string {
		dir := filepath.Join(base, name)
		if _, err := WriteBexd(dir, FromEdges(edges), 64, 400); err != nil {
			t.Fatal(err)
		}
		return dir
	}

	t.Run("missing-manifest", func(t *testing.T) {
		dir := write("no-manifest.bexd")
		os.Remove(filepath.Join(dir, "manifest.json"))
		if _, err := OpenBexd(dir); !errors.Is(err, ErrCorruptHeader) {
			t.Fatalf("err = %v, want ErrCorruptHeader", err)
		}
	})
	t.Run("wrong-schema", func(t *testing.T) {
		dir := write("schema.bexd")
		blob, _ := os.ReadFile(filepath.Join(dir, "manifest.json"))
		mutated := strings.Replace(string(blob), `"schema_version": 1`, `"schema_version": 99`, 1)
		if mutated == string(blob) {
			t.Fatal("schema_version not found in manifest")
		}
		os.WriteFile(filepath.Join(dir, "manifest.json"), []byte(mutated), 0o644)
		if _, err := OpenBexd(dir); !errors.Is(err, ErrCorruptHeader) {
			t.Fatalf("err = %v, want ErrCorruptHeader", err)
		}
	})
	t.Run("missing-part", func(t *testing.T) {
		dir := write("missing-part.bexd")
		os.Remove(filepath.Join(dir, "part-0001.bex"))
		if _, err := OpenBexd(dir); !errors.Is(err, ErrTruncated) {
			t.Fatalf("err = %v, want ErrTruncated", err)
		}
	})
	t.Run("swapped-part", func(t *testing.T) {
		// A part replaced by a valid .bex v2 file with the wrong edge count:
		// every per-file check passes; the manifest cross-check must catch it.
		dir := write("swapped.bexd")
		if _, err := WriteBex2File(filepath.Join(dir, "part-0001.bex"), FromEdges(edges[:37]), 64); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenBexd(dir); !errors.Is(err, ErrCorruptHeader) {
			t.Fatalf("err = %v, want ErrCorruptHeader", err)
		}
	})
	t.Run("verify-catches-content-swap", func(t *testing.T) {
		// Same edge count, different content, internally valid: OpenBexd
		// accepts it (by design — open is cheap), VerifyBexd does not.
		dir := write("content.bexd")
		other := make([]graph.Edge, 400)
		copy(other, edges[400:800])
		other[0] = graph.Edge{U: 9999, V: 9998}
		if _, err := WriteBex2File(filepath.Join(dir, "part-0000.bex"), FromEdges(other), 64); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenBexd(dir); err != nil {
			t.Fatalf("structurally valid directory rejected at open: %v", err)
		}
		if err := VerifyBexd(dir); !errors.Is(err, ErrCorruptBlock) {
			t.Fatalf("VerifyBexd = %v, want ErrCorruptBlock", err)
		}
	})
	t.Run("refuses-overwrite", func(t *testing.T) {
		dir := write("overwrite.bexd")
		if _, err := WriteBexd(dir, FromEdges(edges), 64, 400); err == nil {
			t.Fatal("WriteBexd over an existing manifest must refuse")
		}
	})
}

// TestOpenAutoDispatch pins content-first dispatch: every format opens as
// itself whatever the file is named, and the Backend strings are stable.
func TestOpenAutoDispatch(t *testing.T) {
	edges := bex2TestEdges(300)
	dir := t.TempDir()

	text := filepath.Join(dir, "g.txt")
	tf, err := os.Create(text)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := WriteEdgeList(tf, FromEdges(edges)); err != nil {
		t.Fatal(err)
	}
	if err := tf.Close(); err != nil {
		t.Fatal(err)
	}
	v1 := filepath.Join(dir, "g1.bex")
	if _, err := WriteBexFile(v1, FromEdges(edges)); err != nil {
		t.Fatal(err)
	}
	v2 := filepath.Join(dir, "g2.bex")
	if _, err := WriteBex2File(v2, FromEdges(edges), 64); err != nil {
		t.Fatal(err)
	}
	// A v2 file without the .bex extension: magic sniffing must still win.
	v2odd := filepath.Join(dir, "g2.dat")
	if _, err := WriteBex2File(v2odd, FromEdges(edges), 64); err != nil {
		t.Fatal(err)
	}
	bexd := filepath.Join(dir, "g.bexd")
	if _, err := WriteBexd(bexd, FromEdges(edges), 64, 100); err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		path    string
		mmap    bool
		backend string
	}{
		{text, false, BackendText},
		{v1, false, BackendBex1},
		{v1, true, BackendBex1}, // no mmap reader for v1: preference ignored
		{v2, false, BackendBex2},
		{v2, true, BackendBex2Mmap},
		{v2odd, false, BackendBex2},
		{bexd, false, BackendBexd},
		{bexd, true, BackendBexd},
	} {
		s, err := OpenAutoPrefer(tc.path, tc.mmap)
		if err != nil {
			t.Fatalf("OpenAutoPrefer(%s, %v): %v", tc.path, tc.mmap, err)
		}
		if got := BackendOf(s); got != tc.backend {
			t.Fatalf("BackendOf(%s, mmap=%v) = %q, want %q", tc.path, tc.mmap, got, tc.backend)
		}
		sameEdges(t, collectAll(t, s), edges, tc.backend)
		s.Close()
	}
	if got := BackendOf(FromEdges(edges)); got != BackendMemory {
		t.Fatalf("BackendOf(memory) = %q", got)
	}
}
