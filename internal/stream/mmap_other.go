//go:build !unix

package stream

import (
	"fmt"
	"os"
)

// mapFile on platforms without a usable mmap falls back to reading the whole
// file into memory. BexMapStream keeps working everywhere; only the
// zero-copy property is lost.
func mapFile(path string, size int64) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("stream: read %s: %w", path, err)
	}
	if int64(len(data)) != size {
		return nil, fmt.Errorf("stream: %s changed size under read (%d bytes, validated at %d): %w",
			path, len(data), size, ErrTruncated)
	}
	return data, nil
}

// unmapFile releases a mapping produced by mapFile (a no-op for the
// heap-backed fallback).
func unmapFile(data []byte) error {
	return nil
}
