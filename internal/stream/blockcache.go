package stream

import (
	"container/list"
	"sync"
	"sync/atomic"

	"degentri/internal/graph"
)

// The decoded-block cache: tier 2 of the .bex v2 hot-scan engine. The
// paper's algorithm re-reads the same stream O(log n) times per estimate
// (and fused trials multiply that), so after the first pass the dominant
// cost of a v2 scan is re-decoding bytes that were already decoded moments
// ago. The cache keeps fully decoded blocks — []graph.Edge, the exact slices
// the cursor serves — keyed by (file stat identity, block ordinal), so the
// 2nd..Nth logical pass hands out pre-decoded batches zero-copy.
//
// Coherence rules, in order of subtlety:
//
//   - Generation invalidation is structural: the key embeds the file's
//     (path, size, mtime) identity captured at open — the same identity the
//     text path's index cache uses — so a rewritten file's blocks simply
//     miss and the stale generation ages out of the LRU.
//   - Shard-boundary preservation: the cache stores whole decoded blocks and
//     the cursor slices them by stream position exactly as it slices its own
//     decode buffer, so batch and shard boundaries — and therefore results
//     at any worker count — are bit-identical with the cache on or off.
//   - Entries are immutable after insert and inserted only after a complete,
//     CRC-verified decode; a cancelled or faulted scan dies before its
//     insert, so a partially-decoded block is unrepresentable in the cache.
//   - Entries are refcounted while a cursor is serving chunks out of them.
//     Eviction skips pinned entries (the budget can transiently overshoot by
//     the pinned working set, bounded by cursors × block size), which keeps
//     zero-copy serving safe from cache pressure without copying on hit.
//
// The cache is process-wide and byte-budgeted; DefaultDecodeCacheBytes is
// the default budget and SetDecodeCacheBudget the knob (0 disables). It only
// serves cursors opened with OpenOptions.DecodeCache — plain opens decode
// every block, so single-shot tools pay no cache bookkeeping.

// DefaultDecodeCacheBytes is the default budget of the decoded-block cache:
// 64 MiB holds ~4M decoded edges, several corpus graphs' full working sets,
// while staying noise next to the page cache the raw bytes already occupy.
const DefaultDecodeCacheBytes = 64 << 20

// blockCacheKey identifies one decoded block: the file's stat identity at
// open plus the block ordinal within the file.
type blockCacheKey struct {
	file fileIndexKey
	blk  int
}

// blockCacheEntry is one immutable decoded block. refs counts the cursors
// currently serving chunks out of edges; el is the entry's LRU position.
type blockCacheEntry struct {
	key   blockCacheKey
	edges []graph.Edge
	refs  int
	el    *list.Element
}

// bytes is the entry's budget charge.
func (e *blockCacheEntry) bytes() int64 { return int64(len(e.edges)) * 16 }

// DecodeCacheStats is a snapshot of the decoded-block cache's counters.
type DecodeCacheStats struct {
	Hits, Misses, Evictions int64 // lifetime counters
	Bytes, Entries          int64 // current residency
}

// blockCache is a mutex-guarded byte-budgeted LRU of decoded blocks.
type blockCache struct {
	hits, misses, evictions atomic.Int64

	mu      sync.Mutex
	budget  int64
	used    int64
	entries map[blockCacheKey]*blockCacheEntry
	order   list.List // front = most recently used; holds *blockCacheEntry
}

func newBlockCache(budget int64) *blockCache {
	c := &blockCache{budget: budget, entries: make(map[blockCacheKey]*blockCacheEntry)}
	c.order.Init()
	return c
}

// get returns the cached entry for key, pinned (the caller owes a release),
// and counts a hit or miss. A disabled cache (budget <= 0) always misses.
func (c *blockCache) get(key blockCacheKey) (*blockCacheEntry, bool) {
	c.mu.Lock()
	e, ok := c.entries[key]
	if ok {
		e.refs++
		c.order.MoveToFront(e.el)
	}
	c.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	return e, true
}

// put inserts a freshly decoded block and returns it pinned. If the key is
// already present (two cursors raced on the decode), the existing entry wins
// — entries for one key are identical by construction — and the new slice is
// dropped. A disabled cache stores nothing and returns nil.
func (c *blockCache) put(key blockCacheKey, edges []graph.Edge) *blockCacheEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.budget <= 0 {
		return nil
	}
	if e, ok := c.entries[key]; ok {
		e.refs++
		c.order.MoveToFront(e.el)
		return e
	}
	e := &blockCacheEntry{key: key, edges: edges, refs: 1}
	e.el = c.order.PushFront(e)
	c.entries[key] = e
	c.used += e.bytes()
	c.evictLocked()
	return e
}

// release drops one pin on e (nil is allowed for the disabled-cache path).
func (c *blockCache) release(e *blockCacheEntry) {
	if e == nil {
		return
	}
	c.mu.Lock()
	e.refs--
	c.mu.Unlock()
}

// evictLocked walks the LRU tail dropping unpinned entries until the budget
// holds. Pinned entries are skipped in place: they are by definition in
// active use, and their charge keeps the pressure on the rest of the list.
func (c *blockCache) evictLocked() {
	el := c.order.Back()
	for c.used > c.budget && el != nil {
		prev := el.Prev()
		e := el.Value.(*blockCacheEntry)
		if e.refs == 0 {
			c.order.Remove(el)
			delete(c.entries, e.key)
			c.used -= e.bytes()
			c.evictions.Add(1)
		}
		el = prev
	}
}

// setBudget replaces the byte budget, evicting down if it shrank.
func (c *blockCache) setBudget(budget int64) {
	c.mu.Lock()
	c.budget = budget
	c.evictLocked()
	if budget <= 0 {
		// Fully disabled: drop everything droppable now rather than waiting
		// for the next insert that will never come.
		for el := c.order.Back(); el != nil; {
			prev := el.Prev()
			e := el.Value.(*blockCacheEntry)
			if e.refs == 0 {
				c.order.Remove(el)
				delete(c.entries, e.key)
				c.used -= e.bytes()
				c.evictions.Add(1)
			}
			el = prev
		}
	}
	c.mu.Unlock()
}

func (c *blockCache) stats() DecodeCacheStats {
	c.mu.Lock()
	bytes, entries := c.used, int64(len(c.entries))
	c.mu.Unlock()
	return DecodeCacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Bytes:     bytes,
		Entries:   entries,
	}
}

// decodeCache is the process-wide decoded-block cache.
var decodeCache = newBlockCache(DefaultDecodeCacheBytes)

// SetDecodeCacheBudget sets the decoded-block cache's byte budget for the
// process (0 or negative disables caching and drops resident entries).
// Streams opt in per open via OpenOptions.DecodeCache.
func SetDecodeCacheBudget(bytes int64) { decodeCache.setBudget(bytes) }

// ReadDecodeCacheStats snapshots the decoded-block cache counters (exported
// by triangled's /metrics).
func ReadDecodeCacheStats() DecodeCacheStats { return decodeCache.stats() }
