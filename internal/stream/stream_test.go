package stream

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"degentri/internal/graph"
)

func triangleGraph() *graph.Graph {
	return graph.FromEdges(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}})
}

func TestMemoryStreamBasic(t *testing.T) {
	s := FromGraph(triangleGraph())
	if m, ok := s.Len(); !ok || m != 3 {
		t.Fatalf("Len = %d,%v", m, ok)
	}
	if _, err := s.Next(); err != ErrNoPass {
		t.Fatalf("Next before Reset: %v", err)
	}
	edges, err := Collect(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) != 3 {
		t.Fatalf("collected %d edges", len(edges))
	}
	// A second pass sees the identical order.
	edges2, err := Collect(s)
	if err != nil {
		t.Fatal(err)
	}
	for i := range edges {
		if edges[i] != edges2[i] {
			t.Fatalf("pass order changed at %d: %v vs %v", i, edges[i], edges2[i])
		}
	}
}

func TestMemoryStreamEndOfPass(t *testing.T) {
	s := FromEdges([]graph.Edge{{U: 0, V: 1}})
	if err := s.Reset(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Next(); err != ErrEndOfPass {
		t.Fatalf("expected end of pass, got %v", err)
	}
	// Repeated Next at end keeps returning ErrEndOfPass.
	if _, err := s.Next(); err != ErrEndOfPass {
		t.Fatalf("expected end of pass, got %v", err)
	}
}

func TestFromGraphShuffledIsPermutationAndDeterministic(t *testing.T) {
	g := graph.FromEdges(0, []graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4}, {U: 4, V: 0}, {U: 0, V: 2},
	})
	s1 := FromGraphShuffled(g, 99)
	s2 := FromGraphShuffled(g, 99)
	s3 := FromGraphShuffled(g, 100)
	e1, _ := Collect(s1)
	e2, _ := Collect(s2)
	e3, _ := Collect(s3)
	if len(e1) != g.NumEdges() {
		t.Fatalf("length %d", len(e1))
	}
	// Same seed: same order.
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatal("same seed produced different orders")
		}
	}
	// Different seed: should be a different order for this many edges
	// (probability of coincidence is 1/720).
	same := true
	for i := range e1 {
		if e1[i] != e3[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical order")
	}
	// It is still a permutation of the edge set.
	set := make(map[graph.Edge]int)
	for _, e := range g.Edges() {
		set[e]++
	}
	for _, e := range e1 {
		set[e.Normalize()]--
	}
	for e, c := range set {
		if c != 0 {
			t.Fatalf("edge %v count mismatch %d", e, c)
		}
	}
}

func TestForEachAndCountEdges(t *testing.T) {
	s := FromGraph(triangleGraph())
	n, err := CountEdges(s)
	if err != nil || n != 3 {
		t.Fatalf("CountEdges = %d, %v", n, err)
	}
	sum := 0
	if _, err := ForEach(s, func(e graph.Edge) error { sum += e.U + e.V; return nil }); err != nil {
		t.Fatal(err)
	}
	if sum != 6 {
		t.Fatalf("sum = %d", sum)
	}
}

func TestMaterializeRoundTrip(t *testing.T) {
	g := triangleGraph()
	s := FromGraphShuffled(g, 1)
	g2, err := Materialize(s)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() || g2.TriangleCount() != g.TriangleCount() {
		t.Fatalf("round trip mismatch: %v vs %v", g2, g)
	}
}

func TestPassCounter(t *testing.T) {
	s := NewPassCounter(FromGraph(triangleGraph()))
	if m, ok := s.Len(); !ok || m != 3 {
		t.Fatalf("Len = %d,%v", m, ok)
	}
	for i := 0; i < 4; i++ {
		if _, err := CountEdges(s); err != nil {
			t.Fatal(err)
		}
	}
	if s.Passes() != 4 {
		t.Fatalf("Passes = %d, want 4", s.Passes())
	}
	if s.EdgesRead() != 12 {
		t.Fatalf("EdgesRead = %d, want 12", s.EdgesRead())
	}
}

func TestFileStream(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "edges.txt")
	content := "# comment\n% another comment\n0 1\n\n1 2\n0 2 extra-ignored\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	fs := OpenFile(path)
	defer fs.Close()
	if _, ok := fs.Len(); ok {
		t.Error("length should be unknown before a pass")
	}
	if _, err := fs.Next(); err != ErrNoPass {
		t.Fatalf("Next before Reset: %v", err)
	}
	edges, err := Collect(fs)
	if err != nil {
		t.Fatal(err)
	}
	want := []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}}
	if len(edges) != len(want) {
		t.Fatalf("edges = %v", edges)
	}
	for i := range want {
		if edges[i] != want[i] {
			t.Fatalf("edge %d = %v, want %v", i, edges[i], want[i])
		}
	}
	fs.SetLen(len(edges))
	if m, ok := fs.Len(); !ok || m != 3 {
		t.Fatalf("Len after SetLen = %d,%v", m, ok)
	}
	// Second pass after Close: stream must still be usable.
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	n, err := CountEdges(fs)
	if err != nil || n != 3 {
		t.Fatalf("second pass: %d, %v", n, err)
	}
}

func TestFileStreamErrors(t *testing.T) {
	fs := OpenFile("/nonexistent/definitely/missing.txt")
	if err := fs.Reset(); err == nil {
		t.Fatal("expected error opening missing file")
	}

	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.txt")
	if err := os.WriteFile(bad, []byte("0 x\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	fs = OpenFile(bad)
	if err := fs.Reset(); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Next(); err == nil {
		t.Fatal("expected parse error")
	}

	short := filepath.Join(dir, "short.txt")
	if err := os.WriteFile(short, []byte("42\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	fs = OpenFile(short)
	fs.Reset()
	if _, err := fs.Next(); err == nil {
		t.Fatal("expected malformed-line error")
	}

	neg := filepath.Join(dir, "neg.txt")
	if err := os.WriteFile(neg, []byte("-1 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	fs = OpenFile(neg)
	fs.Reset()
	if _, err := fs.Next(); err == nil {
		t.Fatal("expected negative-vertex error")
	}
}

func TestWriteEdgeListAndGraphFile(t *testing.T) {
	g := triangleGraph()
	var buf bytes.Buffer
	n, err := WriteEdgeList(&buf, FromGraph(g))
	if err != nil || n != 3 {
		t.Fatalf("WriteEdgeList: %d, %v", n, err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty output")
	}

	dir := t.TempDir()
	path := filepath.Join(dir, "graph.txt")
	if err := WriteGraphFile(path, g, "triangle"); err != nil {
		t.Fatal(err)
	}
	fs := OpenFile(path)
	defer fs.Close()
	g2, err := Materialize(fs)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != 3 || g2.TriangleCount() != 1 {
		t.Fatalf("round-tripped graph %v", g2)
	}
}

func TestSpaceMeter(t *testing.T) {
	m := NewSpaceMeter()
	m.Charge(10)
	m.Charge(5)
	if m.Current() != 15 || m.Peak() != 15 {
		t.Fatalf("meter %v", m)
	}
	m.Release(12)
	if m.Current() != 3 || m.Peak() != 15 {
		t.Fatalf("meter %v", m)
	}
	m.Release(100)
	if m.Current() != 0 {
		t.Fatalf("clamp failed: %v", m)
	}
	if m.String() == "" {
		t.Error("String empty")
	}
	m.Reset()
	if m.Current() != 0 || m.Peak() != 0 {
		t.Fatal("reset failed")
	}
}

func TestSpaceMeterPanics(t *testing.T) {
	m := NewSpaceMeter()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Charge(-1) should panic")
			}
		}()
		m.Charge(-1)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Release(-1) should panic")
			}
		}()
		m.Release(-1)
	}()
}

// TestFileStreamLineTooLong: a newline-free blob must fail with a clean
// error instead of growing the read buffer without bound.
func TestFileStreamLineTooLong(t *testing.T) {
	path := filepath.Join(t.TempDir(), "blob.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	chunk := bytes.Repeat([]byte{'7'}, 1<<20)
	for written := 0; written <= 17<<20; written += len(chunk) {
		if _, err := f.Write(chunk); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	fs := OpenFile(path)
	defer fs.Close()
	if _, err := CountEdges(fs); err == nil || !strings.Contains(err.Error(), "longer than") {
		t.Fatalf("expected a line-too-long error, got %v", err)
	}
}
