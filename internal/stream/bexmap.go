package stream

import (
	"fmt"
	"os"
	"sync"

	"degentri/internal/graph"
)

// bexMapping is a refcounted read-only mapping of one .bex v2 file, shared
// by a BexMapStream and every range sub-stream it hands out. The mapping is
// established lazily on the first acquire and released when the last holder
// lets go, so a Close + Reset cycle works (matching the file-backed streams)
// and a range sub-stream can never observe a munmapped page: the bytes it
// slices are pinned by its own reference.
type bexMapping struct {
	path string
	size int64

	mu   sync.Mutex
	data []byte
	refs int
}

func (m *bexMapping) acquire() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.data == nil {
		data, err := mapFile(m.path, m.size)
		if err != nil {
			return err
		}
		m.data = data
	}
	m.refs++
	return nil
}

func (m *bexMapping) release() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.refs == 0 {
		return nil
	}
	m.refs--
	if m.refs > 0 || m.data == nil {
		return nil
	}
	data := m.data
	m.data = nil
	return unmapFile(data)
}

// adviseSequential hints the kernel the whole mapping will be read in
// order (MADV_SEQUENTIAL: readahead doubled, read-behind dropped). The
// caller must hold a reference.
func (m *bexMapping) adviseSequential() {
	m.mu.Lock()
	data := m.data
	m.mu.Unlock()
	if len(data) > 0 {
		madviseSequential(data)
	}
}

// adviseWillNeed hints the kernel the mapped range [off, off+n) is about to
// be read (MADV_WILLNEED: start faulting those pages in now). The range is
// widened down to a page boundary as madvise requires. The caller must hold
// a reference.
func (m *bexMapping) adviseWillNeed(off int64, n int) {
	m.mu.Lock()
	data := m.data
	m.mu.Unlock()
	if len(data) == 0 || off < 0 || n <= 0 || off+int64(n) > int64(len(data)) {
		return
	}
	page := int64(os.Getpagesize())
	lo := off &^ (page - 1)
	madviseWillNeed(data[lo : off+int64(n)])
}

// bytes returns the mapped range [off, off+n). The caller must hold a
// reference (acquire without a matching release).
func (m *bexMapping) bytes(off int64, n int) ([]byte, error) {
	m.mu.Lock()
	data := m.data
	m.mu.Unlock()
	if data == nil {
		return nil, fmt.Errorf("stream: %s: read from released mapping: %w", m.path, ErrNoPass)
	}
	return data[off : off+int64(n)], nil
}

// bex2MapSource serves block payloads as slices of a shared mapping: no read
// syscalls, no copy of the raw bytes (decode still materializes edges).
type bex2MapSource struct {
	meta *bex2Meta
	mp   *bexMapping
	held bool
}

func (s *bex2MapSource) open() error {
	if s.held {
		return nil
	}
	if err := s.mp.acquire(); err != nil {
		return err
	}
	s.held = true
	return nil
}

func (s *bex2MapSource) block(k int) ([]byte, error) {
	b := s.meta.blocks[k]
	return s.mp.bytes(b.off, b.length)
}

// advise implements rangeAdviser: a full-file window is hinted as a
// sequential scan; a sub-range (a shard worker's window, a sliding-window
// seek) is hinted as about-to-be-needed so the kernel can fault its pages in
// ahead of the decode. Both are advisory and free on miss.
func (s *bex2MapSource) advise(lo, hi int) {
	if !s.held || hi <= lo {
		return
	}
	if lo == 0 && hi == s.meta.m {
		s.mp.adviseSequential()
		return
	}
	first := s.meta.blocks[s.meta.findBlock(lo)]
	last := s.meta.blocks[s.meta.findBlock(hi-1)]
	off := first.off
	s.mp.adviseWillNeed(off, int(last.off+int64(last.length)-off))
}

func (s *bex2MapSource) close() error {
	if !s.held {
		return nil
	}
	s.held = false
	return s.mp.release()
}

// BexMapStream streams edges from a .bex v2 file through a read-only memory
// mapping instead of buffered positioned reads: block payloads are decoded
// straight out of the page cache. On platforms without mmap a heap-backed
// fallback keeps the same semantics. Contrast with Bex2Stream, which issues
// one positioned read per block — the mmap reader wins when the file is hot
// in cache or scanned by many concurrent shard ranges; the buffered reader
// keeps resident memory bounded on cold files bigger than RAM.
type BexMapStream struct {
	cur bex2Cursor
	mp  *bexMapping
}

// OpenBexMap opens a .bex v2 file for mmap-backed reads, with the same eager
// container validation as OpenBex2. The mapping itself is established on the
// first Reset.
func OpenBexMap(path string) (*BexMapStream, error) {
	return openBexMapCache(path, false)
}

func openBexMapCache(path string, cache bool) (*BexMapStream, error) {
	file, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("stream: open %s: %w", path, err)
	}
	meta, err := readBex2Meta(file, path)
	if err != nil {
		file.Close()
		return nil, err
	}
	info, err := file.Stat()
	file.Close()
	if err != nil {
		return nil, fmt.Errorf("stream: stat %s: %w", path, err)
	}
	mp := &bexMapping{path: path, size: info.Size()}
	return &BexMapStream{
		cur: bex2Cursor{
			meta: meta,
			src:  &bex2MapSource{meta: meta, mp: mp},
			lo:   0, hi: meta.m,
			cache: cache,
		},
		mp: mp,
	}, nil
}

// Reset implements Stream.
func (b *BexMapStream) Reset() error { return b.cur.reset() }

// Next implements Stream.
func (b *BexMapStream) Next() (graph.Edge, error) { return b.cur.next() }

// NextBatch implements Stream.
func (b *BexMapStream) NextBatch(buf []graph.Edge) ([]graph.Edge, error) {
	return b.cur.nextBatch(buf)
}

// Len implements Stream; a .bex stream always knows its length.
func (b *BexMapStream) Len() (int, bool) { return b.cur.meta.m, true }

// RangeStream implements RangeStreamer. Sub-streams share the parent's
// mapping (each holding its own reference), so concurrent shard workers read
// one mapping instead of opening one file handle each.
func (b *BexMapStream) RangeStream(lo, hi int) (Stream, bool) {
	if lo < 0 || hi < lo || hi > b.cur.meta.m {
		return nil, false
	}
	return &bex2Range{cur: bex2Cursor{
		meta: b.cur.meta,
		src:  &bex2MapSource{meta: b.cur.meta, mp: b.mp},
		lo:   lo, hi: hi,
		cache: b.cur.cache,
	}}, true
}

// Close releases this stream's reference on the mapping; the stream can be
// Reset afterwards, and live range sub-streams keep their own references.
func (b *BexMapStream) Close() error { return b.cur.closeCursor() }

// Backend implements Backender.
func (b *BexMapStream) Backend() string { return BackendBex2Mmap }
