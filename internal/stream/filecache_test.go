package stream

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"degentri/internal/graph"
)

func writeEdgeFileAt(t *testing.T, path string, edges []graph.Edge) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range edges {
		fmt.Fprintf(f, "%d %d\n", e.U, e.V)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestFileIndexCacheAcrossOpens pins the per-process index cache: once any
// FileStream completes a pass over a file, a *fresh* FileStream over the
// same path supports range access from the start — without re-probing — and
// its ranges deliver exactly the same edges as a sequential pass.
func TestFileIndexCacheAcrossOpens(t *testing.T) {
	edges := make([]graph.Edge, 3*fileIndexGranularity+17)
	for i := range edges {
		edges[i] = graph.Edge{U: i, V: i + 1}
	}
	path := filepath.Join(t.TempDir(), "cached.txt")
	writeEdgeFileAt(t, path, edges)

	// First open: no range access until a pass completes.
	first := OpenFile(path)
	if err := first.Reset(); err != nil {
		t.Fatal(err)
	}
	if _, ok := first.RangeStream(0, 0); ok {
		t.Fatal("range access available before any pass completed")
	}
	if n, err := CountEdges(first); err != nil || n != len(edges) {
		t.Fatalf("counting pass: %d, %v", n, err)
	}
	if err := first.Close(); err != nil {
		t.Fatal(err)
	}

	// Second open: the cache makes range access available immediately…
	second := OpenFile(path)
	if _, ok := second.RangeStream(0, 0); !ok {
		t.Fatal("fresh stream did not adopt the cached index")
	}
	// …but logical knowledge is NOT cached: a fresh run still discovers the
	// length with its own pass, so pass accounting is unchanged.
	if _, known := second.Len(); known {
		t.Fatal("stream length must stay unknown until this stream completes a pass")
	}
	// Ranges read through the cached index match the file exactly.
	for _, bounds := range [][2]int{{0, 5}, {fileIndexGranularity - 1, fileIndexGranularity + 3}, {len(edges) - 4, len(edges)}} {
		sub, ok := second.RangeStream(bounds[0], bounds[1])
		if !ok {
			t.Fatalf("range [%d,%d) unavailable", bounds[0], bounds[1])
		}
		got, err := Collect(sub)
		if c, isCloser := sub.(interface{ Close() error }); isCloser {
			c.Close()
		}
		if err != nil {
			t.Fatalf("range [%d,%d): %v", bounds[0], bounds[1], err)
		}
		if len(got) != bounds[1]-bounds[0] {
			t.Fatalf("range [%d,%d): %d edges", bounds[0], bounds[1], len(got))
		}
		for i, e := range got {
			if want := edges[bounds[0]+i]; e != want {
				t.Fatalf("range [%d,%d) edge %d = %v, want %v", bounds[0], bounds[1], i, e, want)
			}
		}
	}
	if err := second.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestFileIndexCacheInvalidatedByRewrite checks that replacing the file's
// content invalidates the cached index (stat identity key) instead of
// serving stale offsets.
func TestFileIndexCacheInvalidatedByRewrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rewritten.txt")
	edges := make([]graph.Edge, 2*fileIndexGranularity)
	for i := range edges {
		edges[i] = graph.Edge{U: i, V: i + 2}
	}
	writeEdgeFileAt(t, path, edges)
	first := OpenFile(path)
	if n, err := CountEdges(first); err != nil || n != len(edges) {
		t.Fatalf("counting pass: %d, %v", n, err)
	}
	first.Close()

	// Rewrite with different content (different size → different stat key).
	replacement := edges[:fileIndexGranularity+7]
	writeEdgeFileAt(t, path, replacement)
	second := OpenFile(path)
	if _, ok := second.RangeStream(0, 0); ok {
		t.Fatal("rewritten file must not adopt the stale index")
	}
	if n, err := CountEdges(second); err != nil || n != len(replacement) {
		t.Fatalf("counting pass after rewrite: %d, %v", n, err)
	}
	second.Close()
}
