package stream

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"degentri/internal/graph"
)

func writeEdgeFileAt(t *testing.T, path string, edges []graph.Edge) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range edges {
		fmt.Fprintf(f, "%d %d\n", e.U, e.V)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestFileIndexCacheAcrossOpens pins the per-process index cache: once any
// FileStream completes a pass over a file, a *fresh* FileStream over the
// same path supports range access from the start — without re-probing — and
// its ranges deliver exactly the same edges as a sequential pass.
func TestFileIndexCacheAcrossOpens(t *testing.T) {
	edges := make([]graph.Edge, 3*fileIndexGranularity+17)
	for i := range edges {
		edges[i] = graph.Edge{U: i, V: i + 1}
	}
	path := filepath.Join(t.TempDir(), "cached.txt")
	writeEdgeFileAt(t, path, edges)

	// First open: no range access until a pass completes.
	first := OpenFile(path)
	if err := first.Reset(); err != nil {
		t.Fatal(err)
	}
	if _, ok := first.RangeStream(0, 0); ok {
		t.Fatal("range access available before any pass completed")
	}
	if n, err := CountEdges(first); err != nil || n != len(edges) {
		t.Fatalf("counting pass: %d, %v", n, err)
	}
	if err := first.Close(); err != nil {
		t.Fatal(err)
	}

	// Second open: the cache makes range access available immediately…
	second := OpenFile(path)
	if _, ok := second.RangeStream(0, 0); !ok {
		t.Fatal("fresh stream did not adopt the cached index")
	}
	// …but logical knowledge is NOT cached: a fresh run still discovers the
	// length with its own pass, so pass accounting is unchanged.
	if _, known := second.Len(); known {
		t.Fatal("stream length must stay unknown until this stream completes a pass")
	}
	// Ranges read through the cached index match the file exactly.
	for _, bounds := range [][2]int{{0, 5}, {fileIndexGranularity - 1, fileIndexGranularity + 3}, {len(edges) - 4, len(edges)}} {
		sub, ok := second.RangeStream(bounds[0], bounds[1])
		if !ok {
			t.Fatalf("range [%d,%d) unavailable", bounds[0], bounds[1])
		}
		got, err := Collect(sub)
		if c, isCloser := sub.(interface{ Close() error }); isCloser {
			c.Close()
		}
		if err != nil {
			t.Fatalf("range [%d,%d): %v", bounds[0], bounds[1], err)
		}
		if len(got) != bounds[1]-bounds[0] {
			t.Fatalf("range [%d,%d): %d edges", bounds[0], bounds[1], len(got))
		}
		for i, e := range got {
			if want := edges[bounds[0]+i]; e != want {
				t.Fatalf("range [%d,%d) edge %d = %v, want %v", bounds[0], bounds[1], i, e, want)
			}
		}
	}
	if err := second.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestIndexCacheLRU pins the cache's replacement policy on a private
// instance: capacity is enforced, the least recently *touched* entry (loads
// count) is the one evicted, and re-storing an existing key refreshes it in
// place.
func TestIndexCacheLRU(t *testing.T) {
	key := func(i int) fileIndexKey { return fileIndexKey{path: fmt.Sprintf("f%d", i), size: int64(i)} }
	entry := func(m int) *fileIndexEntry { return &fileIndexEntry{m: m} }

	c := newIndexCache(3)
	for i := 0; i < 3; i++ {
		c.Store(key(i), entry(i))
	}
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want 3", c.Len())
	}
	// Touch key 0: key 1 becomes the LRU entry.
	if _, ok := c.Load(key(0)); !ok {
		t.Fatal("key 0 missing before eviction")
	}
	c.Store(key(3), entry(3))
	if c.Len() != 3 {
		t.Fatalf("Len = %d after eviction, want 3", c.Len())
	}
	if _, ok := c.Load(key(1)); ok {
		t.Fatal("key 1 survived although it was least recently used")
	}
	for _, i := range []int{0, 2, 3} {
		if _, ok := c.Load(key(i)); !ok {
			t.Fatalf("key %d evicted although more recently used", i)
		}
	}
	// Re-storing an existing key replaces the entry without growing the cache.
	c.Store(key(2), entry(99))
	if c.Len() != 3 {
		t.Fatalf("Len = %d after overwrite, want 3", c.Len())
	}
	if e, ok := c.Load(key(2)); !ok || e.m != 99 {
		t.Fatalf("overwritten entry = %+v, %v", e, ok)
	}
}

// TestFileIndexCacheEviction pins the leak fix end to end: the process-wide
// cache holds at most defaultIndexCacheCap files, so completing passes over
// cap+1 distinct files evicts the oldest — a fresh stream over it rebuilds
// its index instead of adopting a cached one — while the most recent files
// still hit. (Inserting cap+1 fresh entries in order makes the outcome
// deterministic regardless of what earlier tests left in the shared cache.)
func TestFileIndexCacheEviction(t *testing.T) {
	dir := t.TempDir()
	edges := []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}}
	n := defaultIndexCacheCap + 1
	paths := make([]string, n)
	for i := range paths {
		paths[i] = filepath.Join(dir, fmt.Sprintf("g%d.txt", i))
		writeEdgeFileAt(t, paths[i], edges)
		fs := OpenFile(paths[i])
		if m, err := CountEdges(fs); err != nil || m != len(edges) {
			t.Fatalf("counting pass over %s: %d, %v", paths[i], m, err)
		}
		fs.Close()
	}
	if got := fileIndexCache.Len(); got > defaultIndexCacheCap {
		t.Fatalf("cache holds %d entries, cap is %d", got, defaultIndexCacheCap)
	}
	// The first file's index was evicted by the cap+1-th insertion.
	oldest := OpenFile(paths[0])
	if _, ok := oldest.RangeStream(0, 0); ok {
		t.Fatal("oldest file still served from the cache past the capacity bound")
	}
	oldest.Close()
	// The most recent file still hits.
	newest := OpenFile(paths[n-1])
	if _, ok := newest.RangeStream(0, 0); !ok {
		t.Fatal("most recent file missed the cache")
	}
	newest.Close()
}

// TestFileIndexCacheInvalidatedByRewrite checks that replacing the file's
// content invalidates the cached index (stat identity key) instead of
// serving stale offsets.
func TestFileIndexCacheInvalidatedByRewrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rewritten.txt")
	edges := make([]graph.Edge, 2*fileIndexGranularity)
	for i := range edges {
		edges[i] = graph.Edge{U: i, V: i + 2}
	}
	writeEdgeFileAt(t, path, edges)
	first := OpenFile(path)
	if n, err := CountEdges(first); err != nil || n != len(edges) {
		t.Fatalf("counting pass: %d, %v", n, err)
	}
	first.Close()

	// Rewrite with different content (different size → different stat key).
	replacement := edges[:fileIndexGranularity+7]
	writeEdgeFileAt(t, path, replacement)
	second := OpenFile(path)
	if _, ok := second.RangeStream(0, 0); ok {
		t.Fatal("rewritten file must not adopt the stale index")
	}
	if n, err := CountEdges(second); err != nil || n != len(replacement) {
		t.Fatalf("counting pass after rewrite: %d, %v", n, err)
	}
	second.Close()
}
