package stream

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"time"
)

// Sentinel errors of the stream layer. Every error a stream source or the
// sharded pass engine produces wraps one of these (or ErrEndOfPass/ErrNoPass)
// with %w, so callers classify failures with errors.Is instead of string
// matching:
//
//   - ErrTruncated: the byte stream ended before the edges it promised — a
//     .bex file shorter than its header's count, an indexed text file that
//     ran out before a range's positions, a fault-injected short read.
//   - ErrCorruptHeader: the container metadata itself is wrong (bad .bex
//     magic, implausible count, header/size disagreement). Unlike truncation
//     this is detected at open time and retrying cannot help.
//   - ErrCorruptBlock: a .bex v2 block's payload failed its checksum or did
//     not decode to the edge count its footer record declared. The container
//     geometry was fine at open; the damage is confined to (and reported
//     with) one block, detected deterministically the first time that block
//     is read. Retrying cannot help.
//   - ErrTransient: the failure is worth retrying — the read may succeed on
//     the next attempt (EIO from a flaky device, an injected fault from
//     internal/faultio). The engine's retry layer resumes or re-runs only
//     errors that wrap ErrTransient; everything else (parse errors,
//     corruption, cancellation) propagates immediately.
var (
	ErrTruncated     = errors.New("stream: truncated input")
	ErrCorruptHeader = errors.New("stream: corrupt header")
	ErrCorruptBlock  = errors.New("stream: corrupt block")
	ErrTransient     = errors.New("stream: transient I/O error")
)

// MarkTransient wraps err so IsTransient reports true, preserving the
// original chain for errors.Is/errors.As. A nil err stays nil.
func MarkTransient(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, ErrTransient) {
		return err
	}
	return &transientError{err: err}
}

// transientError brands an error transient without flattening it to a string:
// both ErrTransient and the original chain remain visible to errors.Is.
type transientError struct {
	err error
}

func (t *transientError) Error() string { return ErrTransient.Error() + ": " + t.err.Error() }

func (t *transientError) Unwrap() []error { return []error{ErrTransient, t.err} }

// IsTransient reports whether err is worth retrying: it wraps ErrTransient.
// Cancellation is never transient — a cancelled scan must not be retried —
// and the check enforces that even if a fault layer mislabels one.
func IsTransient(err error) bool {
	if err == nil || !errors.Is(err, ErrTransient) {
		return false
	}
	return !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded)
}

// RetryPolicy bounds how the physical-scan layer reacts to transient I/O
// errors: up to MaxAttempts extra attempts per failing operation, separated
// by exponential backoff (BaseDelay doubling per attempt, capped at
// MaxDelay, with up to 50% random jitter to avoid lockstep retries). The
// zero value disables retry entirely — robustness is opt-in at the library
// level; the CLIs enable DefaultRetryPolicy unless told otherwise.
//
// Retry never changes results: failed reads are resumed at the exact stream
// position they broke at (position-addressable sources), or the failing
// operation is re-run from a state-free point (Reset). Passes are replayable
// by construction — all in-pass randomness is keyed by (seed, passKey,
// instance, shard), never by attempt — so a retried scan is bit-identical to
// an undisturbed one.
type RetryPolicy struct {
	// MaxAttempts is the number of retries after the first failure; <= 0
	// disables retry.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; it doubles for each
	// subsequent retry. Zero means no sleep (tests).
	BaseDelay time.Duration
	// MaxDelay caps the backoff. Zero means uncapped.
	MaxDelay time.Duration
}

// DefaultRetryPolicy is the policy the CLIs (and callers that want the
// robust default) use: three attempts at 5ms/10ms/20ms.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 3, BaseDelay: 5 * time.Millisecond, MaxDelay: 250 * time.Millisecond}
}

// Enabled reports whether the policy allows any retry.
func (p RetryPolicy) Enabled() bool { return p.MaxAttempts > 0 }

// backoff returns the delay before retry attempt (0-based).
func (p RetryPolicy) backoff(attempt int) time.Duration {
	d := p.BaseDelay
	for i := 0; i < attempt && d < p.MaxDelay; i++ {
		d *= 2
	}
	if p.MaxDelay > 0 && d > p.MaxDelay {
		d = p.MaxDelay
	}
	if d > 0 {
		// Jitter desynchronizes concurrent retriers; it affects wall-clock
		// only, never results, so math/rand is fine here (no seeding contract).
		d += time.Duration(rand.Int64N(int64(d)/2 + 1))
	}
	return d
}

// sleep waits the policy's backoff for the given attempt, returning early
// with the context's error if it is cancelled meanwhile.
func (p RetryPolicy) sleep(ctx context.Context, attempt int) error {
	d := p.backoff(attempt)
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// posErr wraps a context error with the scan position it interrupted, so a
// cancelled run reports how far it got: "cancelled at edge 8192/1000000".
// m < 0 means the stream length was not yet known (a counting pass).
func posErr(ctx context.Context, pos, m int) error {
	if m < 0 {
		return fmt.Errorf("stream: scan aborted at edge %d: %w", pos, context.Cause(ctx))
	}
	return fmt.Errorf("stream: scan aborted at edge %d/%d: %w", pos, m, context.Cause(ctx))
}
