//go:build unix

package stream

import (
	"fmt"
	"os"
	"syscall"
)

// mapFile maps path read-only into memory. The caller passes the size the
// container was validated at; a file that changed size since open is refused
// rather than mapped, because block offsets would no longer be trustworthy.
func mapFile(path string, size int64) ([]byte, error) {
	file, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("stream: open %s: %w", path, err)
	}
	defer file.Close()
	info, err := file.Stat()
	if err != nil {
		return nil, fmt.Errorf("stream: stat %s: %w", path, err)
	}
	if info.Size() != size {
		return nil, fmt.Errorf("stream: %s changed size under mmap (%d bytes, validated at %d): %w",
			path, info.Size(), size, ErrTruncated)
	}
	data, err := syscall.Mmap(int(file.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("stream: mmap %s: %w", path, err)
	}
	return data, nil
}

// unmapFile releases a mapping produced by mapFile.
func unmapFile(data []byte) error {
	return syscall.Munmap(data)
}
