package stream

import (
	"testing"

	"degentri/internal/graph"
)

// benchEdges builds a synthetic edge list of the given size.
func benchEdges(m int) []graph.Edge {
	edges := make([]graph.Edge, m)
	for i := range edges {
		edges[i] = graph.Edge{U: i % 1000, V: 1000 + i%997}
	}
	return edges
}

// benchStream returns the stream as the interface type, so the benchmark
// measures the dispatched call the estimators actually pay for.
func benchStream(edges []graph.Edge) Stream {
	return NewPassCounter(FromEdges(edges))
}

// BenchmarkStreamNextPass measures a full pass using one Next call per edge
// through the Stream interface (the pre-batching hot path).
func BenchmarkStreamNextPass(b *testing.B) {
	edges := benchEdges(1 << 17)
	s := benchStream(edges)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Reset(); err != nil {
			b.Fatal(err)
		}
		for {
			_, err := s.Next()
			if err == ErrEndOfPass {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(len(edges))*float64(b.N)/b.Elapsed().Seconds(), "edges/s")
}

// BenchmarkStreamNextBatchPass measures a full pass using NextBatch, the
// batched path every estimator now uses.
func BenchmarkStreamNextBatchPass(b *testing.B) {
	edges := benchEdges(1 << 17)
	s := benchStream(edges)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Reset(); err != nil {
			b.Fatal(err)
		}
		var sink int
		for {
			batch, err := s.NextBatch(nil)
			if err == ErrEndOfPass {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
			sink += len(batch)
		}
		if sink != len(edges) {
			b.Fatal("short pass")
		}
	}
	b.ReportMetric(float64(len(edges))*float64(b.N)/b.Elapsed().Seconds(), "edges/s")
}

// BenchmarkForEach measures the per-edge callback pass helper.
func BenchmarkForEach(b *testing.B) {
	edges := benchEdges(1 << 17)
	s := benchStream(edges)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sum int
		if _, err := ForEach(s, func(e graph.Edge) error {
			sum += e.U
			return nil
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(edges))*float64(b.N)/b.Elapsed().Seconds(), "edges/s")
}

// BenchmarkForEachBatch measures the batched pass helper.
func BenchmarkForEachBatch(b *testing.B) {
	edges := benchEdges(1 << 17)
	s := benchStream(edges)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sum int
		if _, err := ForEachBatch(s, func(batch []graph.Edge) error {
			for _, e := range batch {
				sum += e.U
			}
			return nil
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(edges))*float64(b.N)/b.Elapsed().Seconds(), "edges/s")
}

// BenchmarkFileStreamPass measures a full batched pass over a text edge list,
// parser included.
func BenchmarkFileStreamPass(b *testing.B) {
	edges := benchEdges(1 << 15)
	path := b.TempDir() + "/bench-edges.txt"
	g := graph.FromEdges(0, edges)
	if err := WriteGraphFile(path, g, "bench"); err != nil {
		b.Fatal(err)
	}
	fs := OpenFile(path)
	defer fs.Close()
	m := g.NumEdges()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n, err := CountEdges(fs)
		if err != nil {
			b.Fatal(err)
		}
		if n != m {
			b.Fatalf("pass saw %d edges, want %d", n, m)
		}
	}
	b.ReportMetric(float64(m)*float64(b.N)/b.Elapsed().Seconds(), "edges/s")
}

// BenchmarkBexStreamPass measures a full batched pass over the binary .bex
// format — the fixed-width counterpart of BenchmarkFileStreamPass.
func BenchmarkBexStreamPass(b *testing.B) {
	edges := benchEdges(1 << 15)
	path := b.TempDir() + "/bench-edges.bex"
	if _, err := WriteBexFile(path, FromEdges(edges)); err != nil {
		b.Fatal(err)
	}
	bs, err := OpenBex(path)
	if err != nil {
		b.Fatal(err)
	}
	defer bs.Close()
	m := len(edges)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n, err := CountEdges(bs)
		if err != nil {
			b.Fatal(err)
		}
		if n != m {
			b.Fatalf("pass saw %d edges, want %d", n, m)
		}
	}
	b.ReportMetric(float64(m)*float64(b.N)/b.Elapsed().Seconds(), "edges/s")
}

// benchmarkBex2Pass measures a full batched pass over the block-indexed v2
// format through the given reader — the delta-varint counterpart of
// BenchmarkBexStreamPass, for the head-to-head BENCH_5.json records.
func benchmarkBex2Pass(b *testing.B, open func(string) (FileBacked, error)) {
	b.Helper()
	edges := benchEdges(1 << 15)
	path := b.TempDir() + "/bench-edges.bex"
	if _, err := WriteBex2File(path, FromEdges(edges), 0); err != nil {
		b.Fatal(err)
	}
	bs, err := open(path)
	if err != nil {
		b.Fatal(err)
	}
	defer bs.Close()
	m := len(edges)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n, err := CountEdges(bs)
		if err != nil {
			b.Fatal(err)
		}
		if n != m {
			b.Fatalf("pass saw %d edges, want %d", n, m)
		}
	}
	b.ReportMetric(float64(m)*float64(b.N)/b.Elapsed().Seconds(), "edges/s")
}

// BenchmarkBex2StreamPass measures the buffered v2 reader.
func BenchmarkBex2StreamPass(b *testing.B) {
	benchmarkBex2Pass(b, func(p string) (FileBacked, error) { return OpenBex2(p) })
}

// BenchmarkBexMapStreamPass measures the mmap-backed v2 reader.
func BenchmarkBexMapStreamPass(b *testing.B) {
	benchmarkBex2Pass(b, func(p string) (FileBacked, error) { return OpenBexMap(p) })
}

// BenchmarkBexdStreamPass measures the sharded multi-file reader (4 parts).
func BenchmarkBexdStreamPass(b *testing.B) {
	edges := benchEdges(1 << 15)
	dir := b.TempDir() + "/bench.bexd"
	if _, err := WriteBexd(dir, FromEdges(edges), 0, len(edges)/4); err != nil {
		b.Fatal(err)
	}
	ms, err := OpenBexd(dir)
	if err != nil {
		b.Fatal(err)
	}
	defer ms.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n, err := CountEdges(ms)
		if err != nil {
			b.Fatal(err)
		}
		if n != len(edges) {
			b.Fatalf("pass saw %d edges, want %d", n, len(edges))
		}
	}
	b.ReportMetric(float64(len(edges))*float64(b.N)/b.Elapsed().Seconds(), "edges/s")
}

// benchmarkShardedPass measures the sharded engine over an in-memory stream
// at the given worker count (process cost: one add per edge).
func benchmarkShardedPass(b *testing.B, workers int) {
	b.Helper()
	edges := benchEdges(1 << 17)
	s := NewPassCounter(FromEdges(edges))
	var sums [NumShards]int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := ShardedForEachBatch(s, len(edges), workers,
			func(shard int, batch []graph.Edge) error {
				acc := 0
				for _, e := range batch {
					acc += e.U
				}
				sums[shard] += acc
				return nil
			},
			func(int) error { return nil })
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(edges))*float64(b.N)/b.Elapsed().Seconds(), "edges/s")
}

// BenchmarkShardedPassWorkers1 measures the engine's sequential fallback.
func BenchmarkShardedPassWorkers1(b *testing.B) { benchmarkShardedPass(b, 1) }

// BenchmarkShardedPassWorkers4 measures the engine's parallel path.
func BenchmarkShardedPassWorkers4(b *testing.B) { benchmarkShardedPass(b, 4) }

// benchmarkBex2Decode measures a full pass over a v2 file written with
// 8K-edge blocks (the tentpole's reference block size) under one decode
// mode: scalar kernel, vectorized kernel, or cache hits (vectorized decode
// once, then every pass served from the decoded-block cache).
func benchmarkBex2Decode(b *testing.B, simd, cache bool) {
	b.Helper()
	edges := benchEdges(1 << 17) // 16 blocks of 8192 edges
	path := b.TempDir() + "/decode-bench.bex"
	if _, err := WriteBex2File(path, FromEdges(edges), 8192); err != nil {
		b.Fatal(err)
	}
	defer SetSIMDDecode(true)
	defer SetDecodeCacheBudget(DefaultDecodeCacheBytes)
	SetSIMDDecode(simd)
	SetDecodeCacheBudget(DefaultDecodeCacheBytes)
	bs, err := OpenAutoOpts(path, OpenOptions{DecodeCache: cache})
	if err != nil {
		b.Fatal(err)
	}
	defer bs.Close()
	m := len(edges)
	if cache { // warm pass: every later pass is all hits
		if n, err := CountEdges(bs); err != nil || n != m {
			b.Fatalf("warm pass: %d, %v", n, err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n, err := CountEdges(bs)
		if err != nil {
			b.Fatal(err)
		}
		if n != m {
			b.Fatalf("pass saw %d edges, want %d", n, m)
		}
	}
	b.ReportMetric(float64(m)*float64(b.N)/b.Elapsed().Seconds(), "edges/s")
}

// BenchmarkBex2DecodeScalar8K is the scalar baseline at 8K-edge blocks.
func BenchmarkBex2DecodeScalar8K(b *testing.B) { benchmarkBex2Decode(b, false, false) }

// BenchmarkBex2DecodeSIMD8K is the vectorized kernel at 8K-edge blocks; the
// PR 10 acceptance bar is >= 2x the scalar baseline on amd64.
func BenchmarkBex2DecodeSIMD8K(b *testing.B) { benchmarkBex2Decode(b, SIMDDecodeEnabled(), false) }

// BenchmarkBex2DecodeCacheHit8K serves every block from the decoded-block
// cache — the 2nd..Nth logical pass of a hot estimator scan.
func BenchmarkBex2DecodeCacheHit8K(b *testing.B) { benchmarkBex2Decode(b, SIMDDecodeEnabled(), true) }
