package stream

import (
	"io"
	"sync/atomic"

	"degentri/internal/graph"
	"degentri/internal/sampling"
)

// MemoryStream is an in-memory edge stream. The edge order is fixed at
// construction time; FromGraphShuffled applies a seeded uniform permutation
// to model the adversarial/arbitrary arrival order of the streaming model
// while remaining reproducible.
type MemoryStream struct {
	edges []graph.Edge
	pos   int
	begun bool
}

// FromEdges builds a stream that replays the given edges in the given order.
// The slice is not copied; callers must not mutate it afterwards.
func FromEdges(edges []graph.Edge) *MemoryStream {
	return &MemoryStream{edges: edges}
}

// FromGraph builds a stream over the graph's edges in canonical
// (lexicographic) order.
func FromGraph(g *graph.Graph) *MemoryStream {
	edges := make([]graph.Edge, g.NumEdges())
	copy(edges, g.Edges())
	return FromEdges(edges)
}

// FromGraphShuffled builds a stream over the graph's edges in a uniformly
// random order determined by the seed. Different seeds give different
// arbitrary orders; the same seed always gives the same order.
func FromGraphShuffled(g *graph.Graph, seed uint64) *MemoryStream {
	edges := make([]graph.Edge, g.NumEdges())
	copy(edges, g.Edges())
	rng := sampling.NewRNG(seed)
	rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	return FromEdges(edges)
}

// Reset implements Stream.
func (s *MemoryStream) Reset() error {
	s.pos = 0
	s.begun = true
	return nil
}

// Next implements Stream.
func (s *MemoryStream) Next() (graph.Edge, error) {
	if !s.begun {
		return graph.Edge{}, ErrNoPass
	}
	if s.pos >= len(s.edges) {
		return graph.Edge{}, ErrEndOfPass
	}
	e := s.edges[s.pos]
	s.pos++
	return e, nil
}

// NextBatch implements Stream. The returned batch aliases the stream's
// backing slice — no edges are copied — so it must not be modified. With an
// empty buf the entire remainder of the pass is returned in one batch;
// otherwise the batch is capped at len(buf) edges (buf itself is not used).
func (s *MemoryStream) NextBatch(buf []graph.Edge) ([]graph.Edge, error) {
	if !s.begun {
		return nil, ErrNoPass
	}
	if s.pos >= len(s.edges) {
		return nil, ErrEndOfPass
	}
	end := len(s.edges)
	if len(buf) > 0 && s.pos+len(buf) < end {
		end = s.pos + len(buf)
	}
	batch := s.edges[s.pos:end:end]
	s.pos = end
	return batch, nil
}

// Len implements Stream; the length of an in-memory stream is always known.
func (s *MemoryStream) Len() (int, bool) { return len(s.edges), true }

// RangeStream implements RangeStreamer: the sub-stream aliases the backing
// slice (zero copies) and is always available.
func (s *MemoryStream) RangeStream(lo, hi int) (Stream, bool) {
	if lo < 0 || hi < lo || hi > len(s.edges) {
		return nil, false
	}
	return FromEdges(s.edges[lo:hi:hi]), true
}

// Edges exposes the underlying order (for tests).
func (s *MemoryStream) Edges() []graph.Edge { return s.edges }

// PassCounter wraps a Stream and counts completed Reset calls, letting
// experiments report exactly how many passes an algorithm used. The read
// counter is atomic so that the concurrent range sub-streams of a sharded
// pass can charge their reads to the same meter.
type PassCounter struct {
	inner  Stream
	passes int
	reads  atomic.Int64
}

// NewPassCounter wraps the given stream.
func NewPassCounter(inner Stream) *PassCounter {
	return &PassCounter{inner: inner}
}

// Reset implements Stream and increments the pass count.
func (p *PassCounter) Reset() error {
	if err := p.inner.Reset(); err != nil {
		return err
	}
	p.passes++
	return nil
}

// Next implements Stream.
func (p *PassCounter) Next() (graph.Edge, error) {
	e, err := p.inner.Next()
	if err == nil {
		p.reads.Add(1)
	}
	return e, err
}

// NextBatch implements Stream, charging the whole batch to the read counter.
func (p *PassCounter) NextBatch(buf []graph.Edge) ([]graph.Edge, error) {
	batch, err := p.inner.NextBatch(buf)
	p.reads.Add(int64(len(batch)))
	return batch, err
}

// Len implements Stream.
func (p *PassCounter) Len() (int, bool) { return p.inner.Len() }

// RangeStream implements RangeStreamer when the wrapped stream does,
// returning a sub-stream whose reads are charged to this counter (the pass
// itself is charged by the engine's single Reset).
func (p *PassCounter) RangeStream(lo, hi int) (Stream, bool) {
	rs, ok := p.inner.(RangeStreamer)
	if !ok {
		return nil, false
	}
	sub, ok := rs.RangeStream(lo, hi)
	if !ok {
		return nil, false
	}
	return &countedRange{inner: sub, reads: &p.reads}, true
}

// countedRange forwards a range sub-stream while charging reads to the parent
// PassCounter. It forwards Close when the wrapped stream needs one.
type countedRange struct {
	inner Stream
	reads *atomic.Int64
}

func (c *countedRange) Reset() error { return c.inner.Reset() }

func (c *countedRange) Next() (graph.Edge, error) {
	e, err := c.inner.Next()
	if err == nil {
		c.reads.Add(1)
	}
	return e, err
}

func (c *countedRange) NextBatch(buf []graph.Edge) ([]graph.Edge, error) {
	batch, err := c.inner.NextBatch(buf)
	c.reads.Add(int64(len(batch)))
	return batch, err
}

func (c *countedRange) Len() (int, bool) { return c.inner.Len() }

func (c *countedRange) Close() error {
	if closer, ok := c.inner.(io.Closer); ok {
		return closer.Close()
	}
	return nil
}

// Passes returns how many passes have been started.
func (p *PassCounter) Passes() int { return p.passes }

// EdgesRead returns the total number of edges delivered across all passes.
func (p *PassCounter) EdgesRead() int64 { return p.reads.Load() }
