package stream

import (
	"degentri/internal/graph"
	"degentri/internal/sampling"
)

// MemoryStream is an in-memory edge stream. The edge order is fixed at
// construction time; FromGraphShuffled applies a seeded uniform permutation
// to model the adversarial/arbitrary arrival order of the streaming model
// while remaining reproducible.
type MemoryStream struct {
	edges []graph.Edge
	pos   int
	begun bool
}

// FromEdges builds a stream that replays the given edges in the given order.
// The slice is not copied; callers must not mutate it afterwards.
func FromEdges(edges []graph.Edge) *MemoryStream {
	return &MemoryStream{edges: edges}
}

// FromGraph builds a stream over the graph's edges in canonical
// (lexicographic) order.
func FromGraph(g *graph.Graph) *MemoryStream {
	edges := make([]graph.Edge, g.NumEdges())
	copy(edges, g.Edges())
	return FromEdges(edges)
}

// FromGraphShuffled builds a stream over the graph's edges in a uniformly
// random order determined by the seed. Different seeds give different
// arbitrary orders; the same seed always gives the same order.
func FromGraphShuffled(g *graph.Graph, seed uint64) *MemoryStream {
	edges := make([]graph.Edge, g.NumEdges())
	copy(edges, g.Edges())
	rng := sampling.NewRNG(seed)
	rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	return FromEdges(edges)
}

// Reset implements Stream.
func (s *MemoryStream) Reset() error {
	s.pos = 0
	s.begun = true
	return nil
}

// Next implements Stream.
func (s *MemoryStream) Next() (graph.Edge, error) {
	if !s.begun {
		return graph.Edge{}, ErrNoPass
	}
	if s.pos >= len(s.edges) {
		return graph.Edge{}, ErrEndOfPass
	}
	e := s.edges[s.pos]
	s.pos++
	return e, nil
}

// NextBatch implements Stream. The returned batch aliases the stream's
// backing slice — no edges are copied — so it must not be modified. With an
// empty buf the entire remainder of the pass is returned in one batch;
// otherwise the batch is capped at len(buf) edges (buf itself is not used).
func (s *MemoryStream) NextBatch(buf []graph.Edge) ([]graph.Edge, error) {
	if !s.begun {
		return nil, ErrNoPass
	}
	if s.pos >= len(s.edges) {
		return nil, ErrEndOfPass
	}
	end := len(s.edges)
	if len(buf) > 0 && s.pos+len(buf) < end {
		end = s.pos + len(buf)
	}
	batch := s.edges[s.pos:end:end]
	s.pos = end
	return batch, nil
}

// Len implements Stream; the length of an in-memory stream is always known.
func (s *MemoryStream) Len() (int, bool) { return len(s.edges), true }

// Edges exposes the underlying order (for tests).
func (s *MemoryStream) Edges() []graph.Edge { return s.edges }

// PassCounter wraps a Stream and counts completed Reset calls, letting
// experiments report exactly how many passes an algorithm used.
type PassCounter struct {
	inner  Stream
	passes int
	reads  int64
}

// NewPassCounter wraps the given stream.
func NewPassCounter(inner Stream) *PassCounter {
	return &PassCounter{inner: inner}
}

// Reset implements Stream and increments the pass count.
func (p *PassCounter) Reset() error {
	if err := p.inner.Reset(); err != nil {
		return err
	}
	p.passes++
	return nil
}

// Next implements Stream.
func (p *PassCounter) Next() (graph.Edge, error) {
	e, err := p.inner.Next()
	if err == nil {
		p.reads++
	}
	return e, err
}

// NextBatch implements Stream, charging the whole batch to the read counter.
func (p *PassCounter) NextBatch(buf []graph.Edge) ([]graph.Edge, error) {
	batch, err := p.inner.NextBatch(buf)
	p.reads += int64(len(batch))
	return batch, err
}

// Len implements Stream.
func (p *PassCounter) Len() (int, bool) { return p.inner.Len() }

// Passes returns how many passes have been started.
func (p *PassCounter) Passes() int { return p.passes }

// EdgesRead returns the total number of edges delivered across all passes.
func (p *PassCounter) EdgesRead() int64 { return p.reads }
