package stream

import (
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"degentri/internal/graph"
)

// fuzzSeedBlock encodes edges into one real v2 block and returns its edge
// count and raw bytes (control area + payload), for seeding the fuzzer with
// well-formed inputs it can then mutate into near-valid corruption.
func fuzzSeedBlock(f *testing.F, edges []graph.Edge) (uint16, []byte) {
	f.Helper()
	path := filepath.Join(f.TempDir(), "seed.bex")
	if _, err := WriteBex2File(path, FromEdges(edges), len(edges)); err != nil {
		f.Fatal(err)
	}
	s, err := OpenBex2(path)
	if err != nil {
		f.Fatal(err)
	}
	defer s.Close()
	b := s.cur.meta.blocks[0]
	raw := make([]byte, b.length)
	file, err := os.Open(path)
	if err != nil {
		f.Fatal(err)
	}
	defer file.Close()
	if _, err := file.ReadAt(raw, b.off); err != nil {
		f.Fatal(err)
	}
	return uint16(b.count), raw
}

// FuzzBex2Decode is the block-level decode fuzz harness: on an arbitrary
// claimed edge count and arbitrary block bytes, the vectorized and scalar
// decode paths must agree exactly — identical edges on success, the
// identical ErrCorruptBlock diagnosis on failure — and neither may read out
// of bounds (an overrun panics the fuzz run). The CRC is computed over the
// fuzzed bytes so corruption reaches the decoder instead of being rejected
// at the checksum; CRC rejection itself happens before kernel dispatch and
// cannot diverge.
func FuzzBex2Decode(f *testing.F) {
	// Well-formed blocks of each shape: mixed deltas, negative jumps,
	// single-edge, odd count (scalar tail), dense small values (SIMD fast
	// path), plus raw corruption shapes.
	count, raw := fuzzSeedBlock(f, bex2TestEdges(100))
	f.Add(count, raw)
	f.Add(count, raw[:len(raw)/2])     // truncated mid-payload
	f.Add(count, append(raw, 0, 0, 0)) // trailing bytes
	f.Add(uint16(int(count)+7), raw)   // count overstates the data
	count3, raw3 := fuzzSeedBlock(f, []graph.Edge{{U: 1, V: 2}, {U: 1 << 30, V: 3}, {U: 5, V: 1 << 29}})
	f.Add(count3, raw3)
	f.Add(uint16(1), []byte{0x00, 0x06, 0x08, 0x04, 0x03})
	f.Add(uint16(8), []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add(uint16(1), []byte{})

	f.Fuzz(func(t *testing.T, claimed uint16, raw []byte) {
		count := int(claimed)%4096 + 1
		b := bex2Block{count: count, length: len(raw), crc: crc32.Checksum(raw, crcTable)}
		prev := SIMDDecodeEnabled()
		defer SetSIMDDecode(prev)

		scalar := make([]graph.Edge, count)
		SetSIMDDecode(false)
		errScalar := decodeBex2Block("fuzz", 0, b, raw, scalar, true)

		simd := make([]graph.Edge, count)
		SetSIMDDecode(true)
		errSIMD := decodeBex2Block("fuzz", 0, b, raw, simd, true)

		if (errScalar == nil) != (errSIMD == nil) {
			t.Fatalf("kernels disagree on validity: scalar=%v simd=%v", errScalar, errSIMD)
		}
		if errScalar != nil {
			if !errors.Is(errScalar, ErrCorruptBlock) {
				t.Fatalf("scalar error does not wrap ErrCorruptBlock: %v", errScalar)
			}
			// The scalar path is authoritative for the diagnosis (a flagged
			// kernel discards its work and re-decodes), so even the message
			// — which pins the offending edge — must match.
			if errScalar.Error() != errSIMD.Error() {
				t.Fatalf("diagnoses diverge:\nscalar: %v\nsimd:   %v", errScalar, errSIMD)
			}
			return
		}
		for i := range scalar {
			if scalar[i] != simd[i] {
				t.Fatalf("edge %d: scalar %v, simd %v", i, scalar[i], simd[i])
			}
		}
	})
}
