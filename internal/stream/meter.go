package stream

import (
	"fmt"
	"sync"
)

// SpaceMeter accounts for the words of working memory an estimator retains.
// The paper's space bounds count machine words (edges, counters, samples), so
// every estimator in this repository charges its retained state to a meter:
// a sampled edge costs 2 words, a vertex counter 2 words (key + count), a
// memo-table entry a handful of words, and so on. The meter tracks both the
// current and the peak charge; experiment tables report the peak.
//
// SpaceMeter is not safe for concurrent use; estimators are single-threaded
// by construction (a stream pass is inherently sequential).
type SpaceMeter struct {
	current int64
	peak    int64
	parents []*SharedMeter
}

// NewSpaceMeter returns a zeroed meter.
func NewSpaceMeter() *SpaceMeter { return &SpaceMeter{} }

// Tee mirrors every subsequent Charge/Release of this meter into the given
// shared group meter (in addition to any group it already tees into; nil is
// ignored). Fused estimator runs tee their private meters into the scan
// scheduler's group meter — and, when they belong to a sub-group like one
// geometric search among fused trials, into that sub-group's meter too — so
// that the *concurrent* peak, the words retained simultaneously across all
// logically-parallel runs, is accounted rather than each run's own
// sequential peak.
func (s *SpaceMeter) Tee(parent *SharedMeter) {
	if parent != nil {
		s.parents = append(s.parents, parent)
	}
}

// Charge adds n words to the current usage. Negative charges panic; use
// Release to return memory.
func (s *SpaceMeter) Charge(n int64) {
	if n < 0 {
		panic("stream: negative charge; use Release")
	}
	s.current += n
	if s.current > s.peak {
		s.peak = s.current
	}
	for _, p := range s.parents {
		p.add(n)
	}
}

// Release subtracts n words from the current usage. Releasing more than the
// current usage clamps to zero (and is a sign of sloppy accounting, but not
// worth crashing an experiment over).
func (s *SpaceMeter) Release(n int64) {
	if n < 0 {
		panic("stream: negative release; use Charge")
	}
	released := n
	if released > s.current {
		released = s.current
	}
	s.current -= released
	for _, p := range s.parents {
		p.add(-released)
	}
}

// Current returns the words currently charged.
func (s *SpaceMeter) Current() int64 { return s.current }

// Peak returns the maximum words ever charged simultaneously.
func (s *SpaceMeter) Peak() int64 { return s.peak }

// Reset zeroes the meter.
func (s *SpaceMeter) Reset() {
	s.current = 0
	s.peak = 0
}

// String implements fmt.Stringer.
func (s *SpaceMeter) String() string {
	return fmt.Sprintf("SpaceMeter(current=%d, peak=%d words)", s.current, s.peak)
}

// SharedMeter is the concurrency-safe group meter behind SpaceMeter.Tee:
// several estimator runs fused onto one physical scan each keep their own
// SpaceMeter, and all of them mirror into one SharedMeter, whose peak is the
// largest number of words the whole fused group retained at any instant.
// This is the honest space figure for fusion — concurrently-live shard
// states add up, they do not take a sequential max.
type SharedMeter struct {
	mu      sync.Mutex
	current int64
	peak    int64
}

// NewSharedMeter returns a zeroed group meter.
func NewSharedMeter() *SharedMeter { return &SharedMeter{} }

// add applies a (possibly negative) delta from a teed meter.
func (g *SharedMeter) add(n int64) {
	g.mu.Lock()
	g.current += n
	if g.current > g.peak {
		g.peak = g.current
	}
	g.mu.Unlock()
}

// Peak returns the maximum words the group ever retained simultaneously.
func (g *SharedMeter) Peak() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.peak
}

// Current returns the words currently charged across the group.
func (g *SharedMeter) Current() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.current
}

// Cost constants used consistently by estimators when charging the meter.
const (
	// WordsPerEdge is the cost of storing one edge (two vertex IDs).
	WordsPerEdge = 2
	// WordsPerCounter is the cost of one keyed counter (key + value).
	WordsPerCounter = 2
	// WordsPerScalar is the cost of a standalone scalar accumulator.
	WordsPerScalar = 1
)
