package stream

import "fmt"

// SpaceMeter accounts for the words of working memory an estimator retains.
// The paper's space bounds count machine words (edges, counters, samples), so
// every estimator in this repository charges its retained state to a meter:
// a sampled edge costs 2 words, a vertex counter 2 words (key + count), a
// memo-table entry a handful of words, and so on. The meter tracks both the
// current and the peak charge; experiment tables report the peak.
//
// SpaceMeter is not safe for concurrent use; estimators are single-threaded
// by construction (a stream pass is inherently sequential).
type SpaceMeter struct {
	current int64
	peak    int64
}

// NewSpaceMeter returns a zeroed meter.
func NewSpaceMeter() *SpaceMeter { return &SpaceMeter{} }

// Charge adds n words to the current usage. Negative charges panic; use
// Release to return memory.
func (s *SpaceMeter) Charge(n int64) {
	if n < 0 {
		panic("stream: negative charge; use Release")
	}
	s.current += n
	if s.current > s.peak {
		s.peak = s.current
	}
}

// Release subtracts n words from the current usage. Releasing more than the
// current usage clamps to zero (and is a sign of sloppy accounting, but not
// worth crashing an experiment over).
func (s *SpaceMeter) Release(n int64) {
	if n < 0 {
		panic("stream: negative release; use Charge")
	}
	s.current -= n
	if s.current < 0 {
		s.current = 0
	}
}

// Current returns the words currently charged.
func (s *SpaceMeter) Current() int64 { return s.current }

// Peak returns the maximum words ever charged simultaneously.
func (s *SpaceMeter) Peak() int64 { return s.peak }

// Reset zeroes the meter.
func (s *SpaceMeter) Reset() {
	s.current = 0
	s.peak = 0
}

// String implements fmt.Stringer.
func (s *SpaceMeter) String() string {
	return fmt.Sprintf("SpaceMeter(current=%d, peak=%d words)", s.current, s.peak)
}

// Cost constants used consistently by estimators when charging the meter.
const (
	// WordsPerEdge is the cost of storing one edge (two vertex IDs).
	WordsPerEdge = 2
	// WordsPerCounter is the cost of one keyed counter (key + value).
	WordsPerCounter = 2
	// WordsPerScalar is the cost of a standalone scalar accumulator.
	WordsPerScalar = 1
)
