package stream

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"degentri/internal/graph"
)

// resetDecodeEngine pins the process-wide decode knobs for one test and
// restores the defaults afterwards. The cache counters are lifetime-global,
// so tests measure deltas via statsDelta rather than absolutes.
func resetDecodeEngine(t *testing.T, budget int64) {
	t.Helper()
	SetDecodeCacheBudget(budget)
	t.Cleanup(func() {
		SetSIMDDecode(true)
		SetDecodeCacheBudget(DefaultDecodeCacheBytes)
	})
}

// statsDelta runs fn and returns the change in the cache counters.
func statsDelta(fn func()) DecodeCacheStats {
	before := ReadDecodeCacheStats()
	fn()
	after := ReadDecodeCacheStats()
	return DecodeCacheStats{
		Hits:      after.Hits - before.Hits,
		Misses:    after.Misses - before.Misses,
		Evictions: after.Evictions - before.Evictions,
		Bytes:     after.Bytes,
		Entries:   after.Entries,
	}
}

// cacheOpeners enumerates the v2-family backends through the public
// cache-aware entry point.
var cacheOpeners = []struct {
	name  string
	write func(t *testing.T, dir string, edges []graph.Edge) string
	mmap  bool
}{
	{"bex2", writeV2File, false},
	{"bex2-mmap", writeV2File, true},
	{"bexd", writeBexdDir, false},
}

func writeV2File(t *testing.T, dir string, edges []graph.Edge) string {
	t.Helper()
	path := filepath.Join(dir, "g.bex")
	if _, err := WriteBex2File(path, FromEdges(edges), 64); err != nil {
		t.Fatal(err)
	}
	return path
}

func writeBexdDir(t *testing.T, dir string, edges []graph.Edge) string {
	t.Helper()
	path := filepath.Join(dir, "g.bexd")
	if _, err := WriteBexd(path, FromEdges(edges), 64, 300); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestDecodeCacheServesRepeatScans pins the cache's reason to exist: the
// second pass over a cache-enabled stream is served from decoded blocks
// (hits, no new misses) and returns bit-identical edges. A stream opened
// without DecodeCache never touches the cache at all.
func TestDecodeCacheServesRepeatScans(t *testing.T) {
	edges := bex2TestEdges(1000)
	for _, tc := range cacheOpeners {
		t.Run(tc.name, func(t *testing.T) {
			resetDecodeEngine(t, DefaultDecodeCacheBytes)
			path := tc.write(t, t.TempDir(), edges)

			s, err := OpenAutoOpts(path, OpenOptions{PreferMmap: tc.mmap, DecodeCache: true})
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()

			cold := statsDelta(func() { sameEdges(t, collectAll(t, s), edges, "cold pass") })
			if cold.Misses == 0 {
				t.Fatalf("cold pass recorded no misses: %+v", cold)
			}
			warm := statsDelta(func() { sameEdges(t, collectAll(t, s), edges, "warm pass") })
			if warm.Hits == 0 || warm.Misses != 0 {
				t.Fatalf("warm pass not served from cache: %+v", warm)
			}
			if warm.Entries == 0 || warm.Bytes == 0 {
				t.Fatalf("no residency after warm pass: %+v", warm)
			}

			// A second reader of the same file shares the decoded blocks.
			s2, err := OpenAutoOpts(path, OpenOptions{PreferMmap: tc.mmap, DecodeCache: true})
			if err != nil {
				t.Fatal(err)
			}
			defer s2.Close()
			shared := statsDelta(func() { sameEdges(t, collectAll(t, s2), edges, "shared pass") })
			if shared.Hits == 0 || shared.Misses != 0 {
				t.Fatalf("second reader not served from cache: %+v", shared)
			}

			// Plain opens bypass the cache entirely: no hits, no misses.
			plain, err := OpenAutoOpts(path, OpenOptions{PreferMmap: tc.mmap})
			if err != nil {
				t.Fatal(err)
			}
			defer plain.Close()
			off := statsDelta(func() { sameEdges(t, collectAll(t, plain), edges, "uncached pass") })
			if off.Hits != 0 || off.Misses != 0 {
				t.Fatalf("uncached stream touched the cache: %+v", off)
			}
		})
	}
}

// TestDecodeCacheBudgetEviction pins the byte budget: a cache smaller than
// the file's decoded size evicts down to the budget once pins drop, and the
// stream still returns exact edges while thrashing.
func TestDecodeCacheBudgetEviction(t *testing.T) {
	edges := bex2TestEdges(2000) // 32000 decoded bytes across 64-edge blocks
	resetDecodeEngine(t, 4096)   // room for four 64-edge blocks
	path := writeV2File(t, t.TempDir(), edges)

	s, err := OpenAutoOpts(path, OpenOptions{DecodeCache: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for pass := 0; pass < 2; pass++ {
		sameEdges(t, collectAll(t, s), edges, "thrashing pass")
	}
	st := ReadDecodeCacheStats()
	if st.Evictions == 0 {
		t.Fatalf("no evictions under a %d-byte budget: %+v", 4096, st)
	}
	if st.Bytes > 4096 {
		t.Fatalf("residency %d bytes exceeds budget with no pins held: %+v", st.Bytes, st)
	}
}

// TestDecodeCacheDisabled pins the off switch: with a zero budget nothing is
// ever resident and edges are still exact.
func TestDecodeCacheDisabled(t *testing.T) {
	edges := bex2TestEdges(500)
	resetDecodeEngine(t, 0)
	path := writeV2File(t, t.TempDir(), edges)

	s, err := OpenAutoOpts(path, OpenOptions{DecodeCache: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for pass := 0; pass < 2; pass++ {
		sameEdges(t, collectAll(t, s), edges, "disabled-cache pass")
	}
	if st := ReadDecodeCacheStats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("disabled cache holds residency: %+v", st)
	}
}

// TestDecodeCacheInvalidatedByRewrite pins generation invalidation: the key
// embeds (path, size, mtime), so a rewritten file misses the old generation
// and a reopened stream serves the new edges, never the stale decode.
func TestDecodeCacheInvalidatedByRewrite(t *testing.T) {
	resetDecodeEngine(t, DefaultDecodeCacheBytes)
	dir := t.TempDir()
	old := bex2TestEdges(600)
	path := writeV2File(t, dir, old)

	s, err := OpenAutoOpts(path, OpenOptions{DecodeCache: true})
	if err != nil {
		t.Fatal(err)
	}
	sameEdges(t, collectAll(t, s), old, "first generation")
	s.Close()

	// Rewrite in place with different content (different size too).
	next := bex2TestEdges(900)
	writeV2File(t, dir, next)

	s2, err := OpenAutoOpts(path, OpenOptions{DecodeCache: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	d := statsDelta(func() { sameEdges(t, collectAll(t, s2), next, "second generation") })
	if d.Misses == 0 {
		t.Fatalf("rewritten file served from the stale generation: %+v", d)
	}
}

// TestDecodeCachePreservesShardBoundaries pins the subtlest coherence rule:
// a cached block is sliced by stream position exactly like a fresh decode,
// so range streams — the shard mechanism — see identical edges whether their
// blocks come from the cache or the decoder, at any split.
func TestDecodeCachePreservesShardBoundaries(t *testing.T) {
	edges := bex2TestEdges(1000)
	resetDecodeEngine(t, DefaultDecodeCacheBytes)
	path := writeV2File(t, t.TempDir(), edges)

	s, err := OpenAutoOpts(path, OpenOptions{DecodeCache: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sameEdges(t, collectAll(t, s), edges, "warmup") // populate the cache

	rs := s.(RangeStreamer)
	for _, lo := range []int{0, 1, 63, 64, 65, 500, 999} {
		for _, hi := range []int{lo, lo + 1, lo + 64, 1000} {
			if hi > 1000 || hi < lo {
				continue
			}
			sub, ok := rs.RangeStream(lo, hi)
			if !ok {
				t.Fatalf("RangeStream(%d,%d) refused", lo, hi)
			}
			got, err := Collect(sub)
			if err != nil {
				t.Fatalf("range [%d,%d): %v", lo, hi, err)
			}
			sameEdges(t, got, edges[lo:hi], "cached range")
		}
	}
}

// TestBex2SIMDScalarStreamEquivalence pins the kernels against each other at
// the stream level: every v2-family backend returns bit-identical edges with
// the vectorized decoder on and off, cache on and off.
func TestBex2SIMDScalarStreamEquivalence(t *testing.T) {
	if !SIMDDecodeEnabled() {
		t.Skip("no vectorized kernel on this architecture")
	}
	edges := bex2TestEdges(3000)
	for _, tc := range cacheOpeners {
		t.Run(tc.name, func(t *testing.T) {
			resetDecodeEngine(t, DefaultDecodeCacheBytes)
			path := tc.write(t, t.TempDir(), edges)
			for _, cache := range []bool{false, true} {
				for _, simd := range []bool{true, false} {
					SetSIMDDecode(simd)
					s, err := OpenAutoOpts(path, OpenOptions{PreferMmap: tc.mmap, DecodeCache: cache})
					if err != nil {
						t.Fatal(err)
					}
					sameEdges(t, collectAll(t, s), edges, DecodeKernelName())
					s.Close()
				}
			}
		})
	}
}

// TestBexMapCachedReadsStillVerifyCRCs pins the mmap + madvise + cache path
// against silent corruption: CRCs are verified lazily per block on first
// touch, so a bit flip inside a block payload surfaces as ErrCorruptBlock on
// the read — through the mmap reader, with the cache enabled — and the
// damaged block is never inserted into the cache.
func TestBexMapCachedReadsStillVerifyCRCs(t *testing.T) {
	edges := bex2TestEdges(1000)
	resetDecodeEngine(t, DefaultDecodeCacheBytes)
	dir := t.TempDir()
	good := writeV2File(t, dir, edges)
	raw, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := OpenBex2(good)
	if err != nil {
		t.Fatal(err)
	}
	off := fs.cur.meta.blocks[3].off + 5
	fs.Close()
	path := corrupt(t, dir, "flipped.bex", raw, func(b []byte) []byte {
		b[off] ^= 0x40
		return b
	})

	s, err := OpenAutoOpts(path, OpenOptions{PreferMmap: true, DecodeCache: true})
	if err != nil {
		t.Fatalf("block corruption must not fail at open: %v", err)
	}
	defer s.Close()
	if _, ok := s.(*BexMapStream); !ok {
		t.Fatalf("open returned %T, want the mmap reader", s)
	}
	if _, err := Collect(s); !errors.Is(err, ErrCorruptBlock) {
		t.Fatalf("cached mmap pass error %v, want ErrCorruptBlock", err)
	}
	// The failed pass cached the verified blocks before the damage but must
	// not have inserted the damaged block: a re-read still fails.
	if _, err := Collect(s); !errors.Is(err, ErrCorruptBlock) {
		t.Fatalf("re-read after caching: %v, want ErrCorruptBlock", err)
	}
	// Ranges that avoid the damage are served (now partly from cache) exactly.
	clean, _ := s.(RangeStreamer).RangeStream(0, 192)
	got, err := Collect(clean)
	if err != nil {
		t.Fatalf("range over clean blocks: %v", err)
	}
	sameEdges(t, got, edges[:192], "clean range through cached mmap")
}

// TestDecodeCachePinnedEntriesSurviveEviction pins the refcount contract: an
// entry a cursor is actively serving from survives a budget collapse, and
// the budget recovers once the cursor releases it.
func TestDecodeCachePinnedEntriesSurviveEviction(t *testing.T) {
	edges := bex2TestEdges(500)
	resetDecodeEngine(t, DefaultDecodeCacheBytes)
	path := writeV2File(t, t.TempDir(), edges)

	s, err := OpenBex2(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.cur.cache = true
	if err := s.Reset(); err != nil {
		t.Fatal(err)
	}
	// Pull one batch so the cursor holds a pin on the first block's entry.
	if _, err := s.NextBatch(nil); err != nil {
		t.Fatal(err)
	}
	SetDecodeCacheBudget(1) // collapse: everything unpinned must go
	st := ReadDecodeCacheStats()
	if st.Entries != 1 {
		t.Fatalf("pinned entry count = %d after collapse, want 1", st.Entries)
	}
	// A fresh pass (Collect resets, which releases the pin) still reads
	// exactly while the cache thrashes at a 1-byte budget.
	sameEdges(t, collectAll(t, s), edges, "pass under collapsed budget")
	if st := ReadDecodeCacheStats(); st.Entries > 1 {
		t.Fatalf("collapsed cache retains %d entries", st.Entries)
	}
}
