// Package stream implements the arbitrary-order, multi-pass graph streaming
// model of the paper: the input graph is a list of unrepeated edges, an
// algorithm may make a constant number of sequential passes over the list,
// and its space is measured in retained machine words rather than in bytes
// of process memory.
//
// The package provides in-memory and file-backed edge streams, a pass
// counter, and a SpaceMeter that estimators use to account for every word
// they retain (sampled edges, per-vertex counters, memo-table entries).
package stream

import (
	"context"
	"errors"
	"io"

	"degentri/internal/graph"
)

// ErrEndOfPass is returned by Next when the current pass is exhausted. It is
// an alias for io.EOF so stream sources can simply propagate the sentinel.
var ErrEndOfPass = io.EOF

// ErrNoPass is returned by Next when Reset has never been called.
var ErrNoPass = errors.New("stream: Next called before Reset")

// DefaultBatchSize is the batch granularity used when a caller passes an
// empty scratch buffer to NextBatch and the implementation has to pick one
// (file-backed streams). In-memory streams hand out their whole remaining
// edge slice in that case.
const DefaultBatchSize = 4096

// Stream is a multi-pass edge stream. A pass begins with Reset and ends when
// Next (or NextBatch) returns ErrEndOfPass. The edge order within a pass is
// fixed for the lifetime of the stream (the "arbitrary order" model):
// repeated passes see the same sequence.
//
// Next and NextBatch advance the same cursor and may be mixed freely within
// a pass; NextBatch exists so that a full pass costs a handful of interface
// calls instead of one per edge.
type Stream interface {
	// Reset begins a new pass from the first edge.
	Reset() error
	// Next returns the next edge of the current pass, or ErrEndOfPass when
	// the pass is complete.
	Next() (graph.Edge, error)
	// NextBatch returns the next edges of the current pass. When buf is
	// non-empty the batch holds at most len(buf) edges and implementations
	// may use buf as scratch space; in-memory implementations instead return
	// a slice aliasing their internal storage (zero copies). When buf is
	// empty the implementation picks its own batch size (in-memory streams
	// return the entire remainder of the pass in one batch).
	//
	// The returned batch is only valid until the next call on the stream and
	// must not be modified. A non-empty batch is returned with a nil error;
	// the end of the pass is reported as (nil, ErrEndOfPass) on the next
	// call.
	NextBatch(buf []graph.Edge) ([]graph.Edge, error)
	// Len returns the number of edges m if known, or ok=false when the
	// stream length is only discovered by completing a pass.
	Len() (m int, ok bool)
}

// ForEach runs one full pass over the stream, invoking fn for every edge.
// It returns the number of edges seen. If fn returns a non-nil error the
// pass stops and the error is returned. Iteration is batched under the hood;
// per-edge hot paths that can work on whole slices should prefer
// ForEachBatch.
func ForEach(s Stream, fn func(graph.Edge) error) (int, error) {
	if err := s.Reset(); err != nil {
		return 0, err
	}
	count := 0
	for {
		batch, err := s.NextBatch(nil)
		if err == ErrEndOfPass {
			return count, nil
		}
		if err != nil {
			return count, err
		}
		for _, e := range batch {
			count++
			if err := fn(e); err != nil {
				return count, err
			}
		}
	}
}

// ForEachBatch runs one full pass over the stream, invoking fn for every
// batch of edges. It returns the number of edges seen. The slice passed to fn
// is only valid during the call and must not be modified or retained.
func ForEachBatch(s Stream, fn func([]graph.Edge) error) (int, error) {
	if err := s.Reset(); err != nil {
		return 0, err
	}
	count := 0
	for {
		batch, err := s.NextBatch(nil)
		if err == ErrEndOfPass {
			return count, nil
		}
		if err != nil {
			return count, err
		}
		count += len(batch)
		if err := fn(batch); err != nil {
			return count, err
		}
	}
}

// CountEdges makes one pass over the stream and returns the number of edges.
// It is how algorithms learn m when the source does not know its own length.
func CountEdges(s Stream) (int, error) {
	return ForEachBatch(s, func([]graph.Edge) error { return nil })
}

// CountEdgesAndMaxID makes one pass over the stream and returns both the
// number of edges and the largest vertex ID seen (-1 when no edge has a
// non-negative endpoint). Callers that need m *and* will immediately run a
// degeneracy peel use this to fuse the peel's vertex-ID discovery pass into
// the edge-counting scan they had to make anyway (degen.Options.KnownVertices).
func CountEdgesAndMaxID(s Stream) (m, maxID int, err error) {
	maxID = -1
	m, err = ForEachBatch(s, func(batch []graph.Edge) error {
		for _, e := range batch {
			if e.U > maxID {
				maxID = e.U
			}
			if e.V > maxID {
				maxID = e.V
			}
		}
		return nil
	})
	return m, maxID, err
}

// ForEachBatchCtx is ForEachBatch with cancellation and whole-pass retry:
// the context is checked at every batch boundary (a cancelled pass stops
// within one batch, returning the context error wrapped with the position
// reached), and when retry is enabled a transient read failure re-runs the
// entire pass from Reset. Whole-pass retry is only sound for state-free
// callers — fn must tolerate seeing edges again from the start — which is
// exactly the shape of the counting preludes this serves; stateful passes go
// through ShardedScan, whose recovery resumes instead of re-running. retries
// reports the recoveries performed.
func ForEachBatchCtx(ctx context.Context, s Stream, retry RetryPolicy, fn func([]graph.Edge) error) (count, retries int, err error) {
	for attempt := 0; ; attempt++ {
		count, err = func() (int, error) {
			if err := s.Reset(); err != nil {
				return 0, err
			}
			n := 0
			for {
				if cerr := ctx.Err(); cerr != nil {
					return n, posErr(ctx, n, -1)
				}
				batch, err := s.NextBatch(nil)
				if err == ErrEndOfPass {
					return n, nil
				}
				if err != nil {
					return n, err
				}
				n += len(batch)
				if err := fn(batch); err != nil {
					return n, err
				}
			}
		}()
		if err == nil || !retry.Enabled() || attempt >= retry.MaxAttempts || !IsTransient(err) {
			return count, retries, err
		}
		if serr := retry.sleep(ctx, attempt); serr != nil {
			return count, retries, posErr(ctx, count, -1)
		}
		retries++
	}
}

// CountEdgesCtx is CountEdges with cancellation and whole-pass retry (the
// count is state-free, so re-running a failed pass is always sound).
func CountEdgesCtx(ctx context.Context, s Stream, retry RetryPolicy) (m, retries int, err error) {
	return ForEachBatchCtx(ctx, s, retry, func([]graph.Edge) error { return nil })
}

// CountEdgesAndMaxIDCtx is CountEdgesAndMaxID with cancellation and
// whole-pass retry (max is idempotent under replay, so re-running is sound).
func CountEdgesAndMaxIDCtx(ctx context.Context, s Stream, retry RetryPolicy) (m, maxID, retries int, err error) {
	maxID = -1
	m, retries, err = ForEachBatchCtx(ctx, s, retry, func(batch []graph.Edge) error {
		for _, e := range batch {
			if e.U > maxID {
				maxID = e.U
			}
			if e.V > maxID {
				maxID = e.V
			}
		}
		return nil
	})
	return m, maxID, retries, err
}

// Materialize makes one pass over the stream and builds the full graph. This
// is not a streaming operation (it uses Θ(m) space) and exists for ground
// truth computation, oracles, and tests.
func Materialize(s Stream) (*graph.Graph, error) {
	b := graph.NewBuilder(0)
	_, err := ForEach(s, func(e graph.Edge) error {
		b.AddEdge(e.U, e.V)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return b.Build(), nil
}

// Collect makes one pass and returns all edges in stream order. Like
// Materialize it is Θ(m) space and intended for tests and drivers.
func Collect(s Stream) ([]graph.Edge, error) {
	var edges []graph.Edge
	_, err := ForEachBatch(s, func(batch []graph.Edge) error {
		edges = append(edges, batch...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return edges, nil
}
