// Package stream implements the arbitrary-order, multi-pass graph streaming
// model of the paper: the input graph is a list of unrepeated edges, an
// algorithm may make a constant number of sequential passes over the list,
// and its space is measured in retained machine words rather than in bytes
// of process memory.
//
// The package provides in-memory and file-backed edge streams, a pass
// counter, and a SpaceMeter that estimators use to account for every word
// they retain (sampled edges, per-vertex counters, memo-table entries).
package stream

import (
	"errors"
	"io"

	"degentri/internal/graph"
)

// ErrEndOfPass is returned by Next when the current pass is exhausted. It is
// an alias for io.EOF so stream sources can simply propagate the sentinel.
var ErrEndOfPass = io.EOF

// ErrNoPass is returned by Next when Reset has never been called.
var ErrNoPass = errors.New("stream: Next called before Reset")

// Stream is a multi-pass edge stream. A pass begins with Reset and ends when
// Next returns ErrEndOfPass. The edge order within a pass is fixed for the
// lifetime of the stream (the "arbitrary order" model): repeated passes see
// the same sequence.
type Stream interface {
	// Reset begins a new pass from the first edge.
	Reset() error
	// Next returns the next edge of the current pass, or ErrEndOfPass when
	// the pass is complete.
	Next() (graph.Edge, error)
	// Len returns the number of edges m if known, or ok=false when the
	// stream length is only discovered by completing a pass.
	Len() (m int, ok bool)
}

// ForEach runs one full pass over the stream, invoking fn for every edge.
// It returns the number of edges seen. If fn returns a non-nil error the
// pass stops and the error is returned.
func ForEach(s Stream, fn func(graph.Edge) error) (int, error) {
	if err := s.Reset(); err != nil {
		return 0, err
	}
	count := 0
	for {
		e, err := s.Next()
		if err == ErrEndOfPass {
			return count, nil
		}
		if err != nil {
			return count, err
		}
		count++
		if err := fn(e); err != nil {
			return count, err
		}
	}
}

// CountEdges makes one pass over the stream and returns the number of edges.
// It is how algorithms learn m when the source does not know its own length.
func CountEdges(s Stream) (int, error) {
	return ForEach(s, func(graph.Edge) error { return nil })
}

// Materialize makes one pass over the stream and builds the full graph. This
// is not a streaming operation (it uses Θ(m) space) and exists for ground
// truth computation, oracles, and tests.
func Materialize(s Stream) (*graph.Graph, error) {
	b := graph.NewBuilder(0)
	_, err := ForEach(s, func(e graph.Edge) error {
		b.AddEdge(e.U, e.V)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return b.Build(), nil
}

// Collect makes one pass and returns all edges in stream order. Like
// Materialize it is Θ(m) space and intended for tests and drivers.
func Collect(s Stream) ([]graph.Edge, error) {
	var edges []graph.Edge
	_, err := ForEach(s, func(e graph.Edge) error {
		edges = append(edges, e)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return edges, nil
}
