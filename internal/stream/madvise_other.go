//go:build !linux

package stream

// No-op access-pattern hints for platforms without a (portable) madvise; see
// madvise_linux.go. Readers behave identically either way — the hints only
// shape readahead.

func madviseSequential([]byte) {}

func madviseWillNeed([]byte) {}
