package stream

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"degentri/internal/graph"
)

// FileStream streams edges from a whitespace-separated edge-list text file:
// one edge per line, "u v", with '#' or '%' prefixed lines treated as
// comments. The file is re-opened (rewound) on every Reset, so a FileStream
// uses O(1) memory regardless of graph size.
type FileStream struct {
	path    string
	file    *os.File
	scanner *bufio.Scanner
	line    int
	m       int
	mKnown  bool
}

// OpenFile returns a FileStream over the given edge-list file. The file is
// not opened until the first Reset.
func OpenFile(path string) *FileStream {
	return &FileStream{path: path}
}

// Reset implements Stream by (re)opening the file.
func (f *FileStream) Reset() error {
	if f.file != nil {
		if _, err := f.file.Seek(0, io.SeekStart); err != nil {
			f.file.Close()
			f.file = nil
		}
	}
	if f.file == nil {
		file, err := os.Open(f.path)
		if err != nil {
			return fmt.Errorf("stream: open %s: %w", f.path, err)
		}
		f.file = file
	}
	f.scanner = bufio.NewScanner(f.file)
	f.scanner.Buffer(make([]byte, 64*1024), 1<<20)
	f.line = 0
	return nil
}

// Next implements Stream.
func (f *FileStream) Next() (graph.Edge, error) {
	if f.scanner == nil {
		return graph.Edge{}, ErrNoPass
	}
	for f.scanner.Scan() {
		f.line++
		text := strings.TrimSpace(f.scanner.Text())
		if text == "" || strings.HasPrefix(text, "#") || strings.HasPrefix(text, "%") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return graph.Edge{}, fmt.Errorf("stream: %s:%d: malformed edge line %q", f.path, f.line, text)
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil {
			return graph.Edge{}, fmt.Errorf("stream: %s:%d: bad vertex %q: %w", f.path, f.line, fields[0], err)
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			return graph.Edge{}, fmt.Errorf("stream: %s:%d: bad vertex %q: %w", f.path, f.line, fields[1], err)
		}
		if u < 0 || v < 0 {
			return graph.Edge{}, fmt.Errorf("stream: %s:%d: negative vertex id", f.path, f.line)
		}
		return graph.Edge{U: u, V: v}, nil
	}
	if err := f.scanner.Err(); err != nil {
		return graph.Edge{}, fmt.Errorf("stream: reading %s: %w", f.path, err)
	}
	return graph.Edge{}, ErrEndOfPass
}

// Len implements Stream. The length is unknown until a full pass (or
// CountEdges) has been completed and recorded via SetLen.
func (f *FileStream) Len() (int, bool) { return f.m, f.mKnown }

// SetLen records the number of edges after a counting pass so later callers
// see a known length.
func (f *FileStream) SetLen(m int) {
	f.m = m
	f.mKnown = true
}

// Close releases the underlying file handle. The stream can be Reset again
// afterwards (it will re-open the file).
func (f *FileStream) Close() error {
	if f.file == nil {
		return nil
	}
	err := f.file.Close()
	f.file = nil
	f.scanner = nil
	return err
}

// WriteEdgeList writes the edges of a stream to w as a text edge list, one
// "u v" pair per line, returning the number of edges written.
func WriteEdgeList(w io.Writer, s Stream) (int, error) {
	bw := bufio.NewWriter(w)
	n, err := ForEach(s, func(e graph.Edge) error {
		_, werr := fmt.Fprintf(bw, "%d %d\n", e.U, e.V)
		return werr
	})
	if err != nil {
		return n, err
	}
	return n, bw.Flush()
}

// WriteGraphFile writes a graph's edges to the given file path as an edge
// list with a small header comment.
func WriteGraphFile(path string, g *graph.Graph, comment string) error {
	file, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("stream: create %s: %w", path, err)
	}
	defer file.Close()
	bw := bufio.NewWriter(file)
	if comment != "" {
		if _, err := fmt.Fprintf(bw, "# %s\n", comment); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(bw, "# n=%d m=%d\n", g.NumVertices(), g.NumEdges()); err != nil {
		return err
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "%d %d\n", e.U, e.V); err != nil {
			return err
		}
	}
	return bw.Flush()
}
