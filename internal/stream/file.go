package stream

import (
	"bufio"
	"fmt"
	"io"
	"os"

	"degentri/internal/graph"
)

// FileStream streams edges from a whitespace-separated edge-list text file:
// one edge per line, "u v", with '#' or '%' prefixed lines treated as
// comments. The file is re-opened (rewound) on every Reset, so a FileStream
// uses O(1) memory regardless of graph size. Lines are parsed byte-by-byte
// without per-line allocations.
type FileStream struct {
	path    string
	file    *os.File
	scanner *bufio.Scanner
	line    int
	m       int
	mKnown  bool
	batch   []graph.Edge // scratch for NextBatch(nil)
	pending error        // parse/read error to surface after a partial batch
}

// OpenFile returns a FileStream over the given edge-list file. The file is
// not opened until the first Reset.
func OpenFile(path string) *FileStream {
	return &FileStream{path: path}
}

// Reset implements Stream by (re)opening the file.
func (f *FileStream) Reset() error {
	if f.file != nil {
		if _, err := f.file.Seek(0, io.SeekStart); err != nil {
			f.file.Close()
			f.file = nil
		}
	}
	if f.file == nil {
		file, err := os.Open(f.path)
		if err != nil {
			return fmt.Errorf("stream: open %s: %w", f.path, err)
		}
		f.file = file
	}
	f.scanner = bufio.NewScanner(f.file)
	f.scanner.Buffer(make([]byte, 64*1024), 1<<20)
	f.line = 0
	f.pending = nil
	return nil
}

// Next implements Stream.
func (f *FileStream) Next() (graph.Edge, error) {
	if f.scanner == nil {
		return graph.Edge{}, ErrNoPass
	}
	if err := f.pending; err != nil {
		f.pending = nil
		return graph.Edge{}, err
	}
	for f.scanner.Scan() {
		f.line++
		e, ok, err := f.parseLine(f.scanner.Bytes())
		if err != nil {
			return graph.Edge{}, err
		}
		if ok {
			return e, nil
		}
	}
	if err := f.scanner.Err(); err != nil {
		return graph.Edge{}, fmt.Errorf("stream: reading %s: %w", f.path, err)
	}
	return graph.Edge{}, ErrEndOfPass
}

// NextBatch implements Stream, filling buf (or an internal scratch buffer of
// DefaultBatchSize edges when buf is empty). A parse or read error that
// occurs after at least one edge was decoded is delivered on the next call,
// so no edges are lost.
func (f *FileStream) NextBatch(buf []graph.Edge) ([]graph.Edge, error) {
	if f.scanner == nil {
		return nil, ErrNoPass
	}
	if err := f.pending; err != nil {
		f.pending = nil
		return nil, err
	}
	if len(buf) == 0 {
		if f.batch == nil {
			f.batch = make([]graph.Edge, DefaultBatchSize)
		}
		buf = f.batch
	}
	n := 0
	for n < len(buf) && f.scanner.Scan() {
		f.line++
		e, ok, err := f.parseLine(f.scanner.Bytes())
		if err != nil {
			if n == 0 {
				return nil, err
			}
			f.pending = err
			return buf[:n], nil
		}
		if ok {
			buf[n] = e
			n++
		}
	}
	if n == len(buf) && n > 0 {
		return buf[:n], nil
	}
	if err := f.scanner.Err(); err != nil {
		err = fmt.Errorf("stream: reading %s: %w", f.path, err)
		if n == 0 {
			return nil, err
		}
		f.pending = err
		return buf[:n], nil
	}
	if n == 0 {
		return nil, ErrEndOfPass
	}
	return buf[:n], nil
}

// parseLine decodes one edge-list line. It returns ok=false for blank and
// comment lines. The parse allocates nothing.
func (f *FileStream) parseLine(line []byte) (graph.Edge, bool, error) {
	i := skipSpace(line, 0)
	if i == len(line) || line[i] == '#' || line[i] == '%' {
		return graph.Edge{}, false, nil
	}
	u, i, err := f.parseVertex(line, i)
	if err != nil {
		return graph.Edge{}, false, err
	}
	i = skipSpace(line, i)
	if i == len(line) {
		return graph.Edge{}, false, fmt.Errorf("stream: %s:%d: malformed edge line %q", f.path, f.line, line)
	}
	v, _, err := f.parseVertex(line, i)
	if err != nil {
		return graph.Edge{}, false, err
	}
	if u < 0 || v < 0 {
		return graph.Edge{}, false, fmt.Errorf("stream: %s:%d: negative vertex id", f.path, f.line)
	}
	return graph.Edge{U: u, V: v}, true, nil
}

// parseVertex decodes a decimal integer field starting at i, returning the
// value and the index one past the field.
func (f *FileStream) parseVertex(line []byte, i int) (int, int, error) {
	start := i
	neg := false
	if i < len(line) && (line[i] == '-' || line[i] == '+') {
		neg = line[i] == '-'
		i++
	}
	val := 0
	digits := 0
	for i < len(line) && line[i] >= '0' && line[i] <= '9' {
		val = val*10 + int(line[i]-'0')
		digits++
		i++
	}
	if digits == 0 || digits > 18 || (i < len(line) && !isSpace(line[i])) {
		end := i
		for end < len(line) && !isSpace(line[end]) {
			end++
		}
		return 0, i, fmt.Errorf("stream: %s:%d: bad vertex %q: invalid syntax", f.path, f.line, line[start:end])
	}
	if neg {
		val = -val
	}
	return val, i, nil
}

func skipSpace(line []byte, i int) int {
	for i < len(line) && isSpace(line[i]) {
		i++
	}
	return i
}

func isSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f'
}

// Len implements Stream. The length is unknown until a full pass (or
// CountEdges) has been completed and recorded via SetLen.
func (f *FileStream) Len() (int, bool) { return f.m, f.mKnown }

// SetLen records the number of edges after a counting pass so later callers
// see a known length.
func (f *FileStream) SetLen(m int) {
	f.m = m
	f.mKnown = true
}

// Close releases the underlying file handle. The stream can be Reset again
// afterwards (it will re-open the file).
func (f *FileStream) Close() error {
	if f.file == nil {
		return nil
	}
	err := f.file.Close()
	f.file = nil
	f.scanner = nil
	return err
}

// WriteEdgeList writes the edges of a stream to w as a text edge list, one
// "u v" pair per line, returning the number of edges written.
func WriteEdgeList(w io.Writer, s Stream) (int, error) {
	bw := bufio.NewWriter(w)
	n, err := ForEach(s, func(e graph.Edge) error {
		_, werr := fmt.Fprintf(bw, "%d %d\n", e.U, e.V)
		return werr
	})
	if err != nil {
		return n, err
	}
	return n, bw.Flush()
}

// WriteGraphFile writes a graph's edges to the given file path as an edge
// list with a small header comment.
func WriteGraphFile(path string, g *graph.Graph, comment string) error {
	file, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("stream: create %s: %w", path, err)
	}
	defer file.Close()
	bw := bufio.NewWriter(file)
	if comment != "" {
		if _, err := fmt.Fprintf(bw, "# %s\n", comment); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(bw, "# n=%d m=%d\n", g.NumVertices(), g.NumEdges()); err != nil {
		return err
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "%d %d\n", e.U, e.V); err != nil {
			return err
		}
	}
	return bw.Flush()
}
