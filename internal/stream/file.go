package stream

import (
	"bufio"
	"bytes"
	"container/list"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"

	"degentri/internal/graph"
)

const (
	// fileBufSize is the read buffer of the text parser. A wide buffer keeps
	// the parse loop in large sequential reads; the old 64 KiB scanner buffer
	// left FileStream an order of magnitude behind the in-memory path.
	fileBufSize = 1 << 20
	// fileIndexGranularity is the spacing of the shard index: during a full
	// pass the stream records the byte offset (and line number) of every
	// 1024th edge, which lets RangeStream seek near any position and skip at
	// most 1023 edges while keeping diagnostics in real file coordinates. The
	// index costs 12 bytes per 1024 edges (≈1.2 MB per 10⁸ edges).
	fileIndexGranularity = 1024
	// maxLineBytes bounds a single input line. A newline-free multi-gigabyte
	// file (binary data, one-line JSON) fails with a clean error instead of
	// doubling the read buffer until the process dies.
	maxLineBytes = 16 << 20
)

// errLineTooLong is wrapped with the file path by the stream that hits it.
var errLineTooLong = errors.New("line longer than 16 MiB (not an edge list?)")

// fileIndexKey identifies one on-disk edge list by path plus stat identity,
// so a rewritten file misses the cache instead of serving a stale index.
type fileIndexKey struct {
	path  string
	size  int64
	mtime int64
}

// fileIndexEntry is a completed position→offset shard index. Entries are
// immutable once stored: a FileStream whose index is done never mutates its
// slices, so adopters share them without copying.
type fileIndexEntry struct {
	index      []int64
	indexLines []int32
	m          int
}

// defaultIndexCacheCap bounds how many distinct files the process-wide index
// cache retains. An entry costs ~12 bytes per 1024 edges of its file, so the
// bound is about working-set hygiene in long-lived processes (a daemon
// serving an open-ended registry of graph files), not about any single
// entry's size: without it the cache grows monotonically with every file the
// process ever touched — a slow leak.
const defaultIndexCacheCap = 64

// fileIndexCache caches completed shard indexes per file across FileStream
// instances of one process: repeated opens of the same edge list (trial
// sweeps, geometric-search harnesses re-opening their input, daemon requests
// against a registered graph) get range access — and with it parallel
// sharded passes — from their very first pass instead of re-probing the
// index on a sequential scan each time. The cache is LRU-bounded (see
// defaultIndexCacheCap): the least recently touched file's index is evicted
// first, and an evicted file merely rebuilds its index on its next full
// pass.
//
// The cache restores the *physical* capability only. Logical knowledge is
// deliberately not cached: Len() still reports unknown until the stream
// completes a pass of its own, so a fresh run's pass accounting (the paper's
// metric charges a counting pass for a length-unknown source) is identical
// with or without the cache.
var fileIndexCache = newIndexCache(defaultIndexCacheCap)

// indexCache is a mutex-guarded LRU map from file identity to completed
// shard index. Load and Store both count as a touch.
type indexCache struct {
	mu      sync.Mutex
	cap     int
	entries map[fileIndexKey]*list.Element // value: *indexCacheNode
	order   list.List                      // front = most recently used
}

type indexCacheNode struct {
	key   fileIndexKey
	entry *fileIndexEntry
}

func newIndexCache(cap int) *indexCache {
	c := &indexCache{cap: cap, entries: make(map[fileIndexKey]*list.Element)}
	c.order.Init()
	return c
}

func (c *indexCache) Load(key fileIndexKey) (*fileIndexEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*indexCacheNode).entry, true
}

func (c *indexCache) Store(key fileIndexKey, entry *fileIndexEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*indexCacheNode).entry = entry
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&indexCacheNode{key: key, entry: entry})
	for len(c.entries) > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*indexCacheNode).key)
	}
}

// Len reports how many files currently have a cached index.
func (c *indexCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// statFileKey builds the cache key from the path's current stat.
func statFileKey(path string) (fileIndexKey, bool) {
	info, err := os.Stat(path)
	if err != nil || !info.Mode().IsRegular() {
		return fileIndexKey{}, false
	}
	return fileIndexKey{path: path, size: info.Size(), mtime: info.ModTime().UnixNano()}, true
}

// Opener opens the underlying byte source of a file-backed pass. The default
// is os.Open; tests and internal/faultio substitute one that wraps the handle
// to inject read faults *below* the stream parser (short reads, transient
// errors), which is how the index-cache poisoning guard is exercised.
type Opener func(path string) (io.ReadSeekCloser, error)

func defaultOpener(path string) (io.ReadSeekCloser, error) { return os.Open(path) }

// lineReader yields newline-delimited lines straight out of a wide buffer,
// tracking the absolute file offset of each line start (the raw material of
// the shard index). Unlike bufio.Scanner it exposes those offsets and grows
// its buffer in place for over-long lines.
type lineReader struct {
	file io.Reader
	buf  []byte
	r, w int
	abs  int64 // file offset of buf[r]
	eof  bool
}

func (lr *lineReader) init(file io.Reader, off int64, buf []byte) {
	if buf == nil {
		buf = make([]byte, fileBufSize)
	}
	*lr = lineReader{file: file, buf: buf, abs: off}
}

// next returns the next line (without its newline), the file offset of its
// first byte, and ok=false at end of input.
func (lr *lineReader) next() (line []byte, start int64, ok bool, err error) {
	for {
		if i := bytes.IndexByte(lr.buf[lr.r:lr.w], '\n'); i >= 0 {
			line = lr.buf[lr.r : lr.r+i]
			start = lr.abs
			lr.r += i + 1
			lr.abs += int64(i) + 1
			return line, start, true, nil
		}
		if lr.eof {
			if lr.r == lr.w {
				return nil, 0, false, nil
			}
			line = lr.buf[lr.r:lr.w] // final line without trailing newline
			start = lr.abs
			lr.abs += int64(lr.w - lr.r)
			lr.r = lr.w
			return line, start, true, nil
		}
		if lr.r > 0 {
			copy(lr.buf, lr.buf[lr.r:lr.w])
			lr.w -= lr.r
			lr.r = 0
		}
		if lr.w == len(lr.buf) {
			if len(lr.buf) >= maxLineBytes {
				return nil, 0, false, errLineTooLong
			}
			grown := make([]byte, 2*len(lr.buf))
			copy(grown, lr.buf[:lr.w])
			lr.buf = grown
		}
		n, rerr := lr.file.Read(lr.buf[lr.w:])
		lr.w += n
		if rerr == io.EOF {
			lr.eof = true
		} else if rerr != nil {
			return nil, 0, false, rerr
		}
	}
}

// FileStream streams edges from a whitespace-separated edge-list text file:
// one edge per line, "u v", with '#' or '%' prefixed lines treated as
// comments. The file is rewound on every Reset, so a FileStream uses O(1)
// memory (plus the shard index) regardless of graph size. Lines are parsed
// byte-by-byte out of a wide read buffer without per-line allocations.
//
// The first pass that runs to completion additionally records a sparse
// position→byte-offset index, after which the stream supports RangeStream
// and sharded passes can read it with concurrent workers (each range opens
// its own file handle).
type FileStream struct {
	path    string
	open    Opener
	file    io.ReadSeekCloser
	lr      lineReader
	active  bool
	line    int
	pos     int // edges delivered in the current pass
	m       int
	mKnown  bool
	batch   []graph.Edge // scratch for NextBatch(nil)
	pending error        // parse/read error to surface after a partial batch

	index      []int64 // byte offset of the line of every fileIndexGranularity-th edge
	indexLines []int32 // 1-based line number of each index entry
	indexDone  bool
	indexing   bool // current pass is recording the index
	broken     bool // current pass hit a parse/read error; don't trust pos at EOF

	cacheKey   fileIndexKey // stat identity captured at open, keys the index cache
	cacheKeyOK bool
}

// OpenFile returns a FileStream over the given edge-list file. The file is
// not opened until the first Reset.
func OpenFile(path string) *FileStream {
	return &FileStream{path: path, open: defaultOpener}
}

// OpenFileWith is OpenFile with a custom Opener for the underlying byte
// source (every handle the stream and its range sub-streams open goes through
// it). It exists for fault injection below the parser; production callers use
// OpenFile.
func OpenFileWith(path string, open Opener) *FileStream {
	if open == nil {
		open = defaultOpener
	}
	return &FileStream{path: path, open: open}
}

// Backend implements Backender.
func (f *FileStream) Backend() string { return BackendText }

// adoptCachedIndex makes a previously recorded shard index of this file (any
// FileStream of the process that completed a pass) available to this stream,
// if the file's stat identity still matches.
func (f *FileStream) adoptCachedIndex() {
	if f.indexDone {
		return
	}
	key, ok := statFileKey(f.path)
	if !ok {
		return
	}
	if e, hit := fileIndexCache.Load(key); hit {
		f.index, f.indexLines = e.index, e.indexLines
		f.indexDone = true
		// m is adopted for RangeStream bounds checking only; mKnown stays
		// false so logical pass accounting is unchanged (see fileIndexCache).
		if !f.mKnown {
			f.m = e.m
		}
	}
}

// Reset implements Stream by rewinding (or opening) the file.
func (f *FileStream) Reset() error {
	if f.file == nil {
		file, err := f.open(f.path)
		if err != nil {
			return fmt.Errorf("stream: open %s: %w", f.path, err)
		}
		f.file = file
		f.cacheKey, f.cacheKeyOK = statFileKey(f.path)
		f.adoptCachedIndex()
	} else if _, err := f.file.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("stream: rewind %s: %w", f.path, err)
	}
	f.lr.init(f.file, 0, f.lr.buf)
	f.active = true
	f.line = 0
	f.pos = 0
	f.pending = nil
	f.broken = false
	f.indexing = !f.indexDone
	if f.indexing {
		f.index = f.index[:0]
		f.indexLines = f.indexLines[:0]
	}
	return nil
}

// abortPass marks the current pass unusable for length discovery and
// indexing (a parse or read error occurred).
func (f *FileStream) abortPass() {
	f.indexing = false
	f.broken = true
}

// deliver records index/position bookkeeping for one decoded edge.
func (f *FileStream) deliver(start int64) {
	if f.indexing && f.pos%fileIndexGranularity == 0 {
		f.index = append(f.index, start)
		f.indexLines = append(f.indexLines, int32(f.line))
	}
	f.pos++
}

// endOfPass finalizes a cleanly completed pass: the stream length is now
// known and the shard index is complete. A pass that saw EOF before
// consuming the bytes the open-time stat promised is NOT clean — a short
// read below the parser (an injected fault, a file shrunk after open) looks
// like a normal EOF up here. Trusting it would record a wrong m and, worse,
// publish a partial position→offset index under the real file's cache key,
// poisoning every later open of the file. Such a pass returns an error
// (transient: a re-run through a healed reader sees the whole file) and
// discards its index instead.
func (f *FileStream) endOfPass() error {
	if f.broken {
		return nil
	}
	if f.cacheKeyOK && f.lr.abs != f.cacheKey.size {
		f.abortPass()
		if f.indexing {
			// Discard the partial index of this aborted build. A previously
			// *completed* index (indexDone) is kept: it describes the file the
			// open-time stat promised, and clearing it while indexDone stays
			// true would hand RangeStream an empty index to seek through.
			f.index = f.index[:0]
			f.indexLines = f.indexLines[:0]
		}
		return MarkTransient(fmt.Errorf("stream: %s: pass consumed %d of %d bytes: %w",
			f.path, f.lr.abs, f.cacheKey.size, ErrTruncated))
	}
	f.m = f.pos
	f.mKnown = true
	if f.indexing {
		f.indexing = false
		f.indexDone = true
		// Publish the completed index for other FileStreams over this file.
		// From here on this stream never mutates the slices (Reset only
		// truncates while !indexDone), so sharing them is safe.
		if f.cacheKeyOK {
			fileIndexCache.Store(f.cacheKey, &fileIndexEntry{
				index: f.index, indexLines: f.indexLines, m: f.m,
			})
		}
	}
	return nil
}

// Next implements Stream.
func (f *FileStream) Next() (graph.Edge, error) {
	if !f.active {
		return graph.Edge{}, ErrNoPass
	}
	if err := f.pending; err != nil {
		f.pending = nil
		return graph.Edge{}, err
	}
	for {
		line, start, ok, err := f.lr.next()
		if err != nil {
			f.abortPass()
			return graph.Edge{}, fmt.Errorf("stream: reading %s: %w", f.path, err)
		}
		if !ok {
			if eerr := f.endOfPass(); eerr != nil {
				return graph.Edge{}, eerr
			}
			return graph.Edge{}, ErrEndOfPass
		}
		f.line++
		e, isEdge, perr := parseEdgeLine(f.path, f.line, line)
		if perr != nil {
			f.abortPass()
			return graph.Edge{}, perr
		}
		if isEdge {
			f.deliver(start)
			return e, nil
		}
	}
}

// NextBatch implements Stream, filling buf (or an internal scratch buffer of
// DefaultBatchSize edges when buf is empty). A parse or read error that
// occurs after at least one edge was decoded is delivered on the next call,
// so no edges are lost.
func (f *FileStream) NextBatch(buf []graph.Edge) ([]graph.Edge, error) {
	if !f.active {
		return nil, ErrNoPass
	}
	if err := f.pending; err != nil {
		f.pending = nil
		return nil, err
	}
	if len(buf) == 0 {
		if f.batch == nil {
			f.batch = make([]graph.Edge, DefaultBatchSize)
		}
		buf = f.batch
	}
	n := 0
	for n < len(buf) {
		line, start, ok, err := f.lr.next()
		if err != nil {
			f.abortPass()
			err = fmt.Errorf("stream: reading %s: %w", f.path, err)
			if n == 0 {
				return nil, err
			}
			f.pending = err
			return buf[:n], nil
		}
		if !ok {
			if eerr := f.endOfPass(); eerr != nil {
				if n == 0 {
					return nil, eerr
				}
				f.pending = eerr
				return buf[:n], nil
			}
			if n == 0 {
				return nil, ErrEndOfPass
			}
			return buf[:n], nil
		}
		f.line++
		e, isEdge, perr := parseEdgeLine(f.path, f.line, line)
		if perr != nil {
			f.abortPass()
			if n == 0 {
				return nil, perr
			}
			f.pending = perr
			return buf[:n], nil
		}
		if isEdge {
			f.deliver(start)
			buf[n] = e
			n++
		}
	}
	return buf[:n], nil
}

// parseEdgeLine decodes one edge-list line. It returns isEdge=false for blank
// and comment lines. The parse allocates nothing.
func parseEdgeLine(path string, lineNo int, line []byte) (graph.Edge, bool, error) {
	i := skipSpace(line, 0)
	if i == len(line) || line[i] == '#' || line[i] == '%' {
		return graph.Edge{}, false, nil
	}
	u, i, err := parseVertex(path, lineNo, line, i)
	if err != nil {
		return graph.Edge{}, false, err
	}
	i = skipSpace(line, i)
	if i == len(line) {
		return graph.Edge{}, false, fmt.Errorf("stream: %s:%d: malformed edge line %q", path, lineNo, line)
	}
	v, _, err := parseVertex(path, lineNo, line, i)
	if err != nil {
		return graph.Edge{}, false, err
	}
	if u < 0 || v < 0 {
		return graph.Edge{}, false, fmt.Errorf("stream: %s:%d: negative vertex id", path, lineNo)
	}
	return graph.Edge{U: u, V: v}, true, nil
}

// parseVertex decodes a decimal integer field starting at i, returning the
// value and the index one past the field.
func parseVertex(path string, lineNo int, line []byte, i int) (int, int, error) {
	start := i
	neg := false
	if i < len(line) && (line[i] == '-' || line[i] == '+') {
		neg = line[i] == '-'
		i++
	}
	val := 0
	digits := 0
	for i < len(line) && line[i] >= '0' && line[i] <= '9' {
		val = val*10 + int(line[i]-'0')
		digits++
		i++
	}
	if digits == 0 || digits > 18 || (i < len(line) && !isSpace(line[i])) {
		end := i
		for end < len(line) && !isSpace(line[end]) {
			end++
		}
		return 0, i, fmt.Errorf("stream: %s:%d: bad vertex %q: invalid syntax", path, lineNo, line[start:end])
	}
	if neg {
		val = -val
	}
	return val, i, nil
}

func skipSpace(line []byte, i int) int {
	for i < len(line) && isSpace(line[i]) {
		i++
	}
	return i
}

func isSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f'
}

// Len implements Stream. The length is unknown until a full pass (or
// CountEdges) has been completed or SetLen called.
func (f *FileStream) Len() (int, bool) { return f.m, f.mKnown }

// SetLen records the number of edges after a counting pass so later callers
// see a known length.
func (f *FileStream) SetLen(m int) {
	f.m = m
	f.mKnown = true
}

// RangeStream implements RangeStreamer once an indexing pass has completed —
// by this stream, or by any earlier FileStream of the process over the same
// file (the process-wide index cache): the sub-stream opens its own file
// handle, seeks to the indexed line nearest lo, skips forward, and delivers
// exactly hi-lo edges. Before any complete pass it reports ok=false and
// sharded passes fall back to one sequential scan (which itself builds and
// publishes the index).
func (f *FileStream) RangeStream(lo, hi int) (Stream, bool) {
	if !f.indexDone {
		f.adoptCachedIndex()
	}
	if !f.indexDone || lo < 0 || hi < lo || hi > f.m {
		return nil, false
	}
	if lo/fileIndexGranularity >= len(f.index) {
		// The index does not cover the requested start (defensive: an index
		// invalidated or raced away). Sequential fallback, never a bad seek.
		return nil, false
	}
	return &fileRange{path: f.path, open: f.open, lo: lo, hi: hi, index: f.index, indexLines: f.indexLines}, true
}

// Close releases the underlying file handle. The stream can be Reset again
// afterwards (it will re-open the file); the shard index survives.
func (f *FileStream) Close() error {
	if f.file == nil {
		return nil
	}
	err := f.file.Close()
	f.file = nil
	f.active = false
	return err
}

// fileRange is an independent stream over edge positions [lo, hi) of an
// indexed edge-list file, with its own file handle and parse state.
type fileRange struct {
	path       string
	open       Opener
	lo, hi     int
	index      []int64
	indexLines []int32
	file       io.ReadSeekCloser
	lr         lineReader
	active     bool
	line       int
	remaining  int
	batch      []graph.Edge
	pending    error
}

// Reset implements Stream: seek to the indexed line at or before lo and
// discard edges until position lo.
func (r *fileRange) Reset() error {
	r.remaining = r.hi - r.lo
	r.active = true
	r.pending = nil
	r.line = 0
	if r.remaining == 0 {
		return nil
	}
	if r.file == nil {
		open := r.open
		if open == nil {
			open = defaultOpener
		}
		file, err := open(r.path)
		if err != nil {
			return fmt.Errorf("stream: open %s: %w", r.path, err)
		}
		r.file = file
	}
	slot := r.lo / fileIndexGranularity
	off := r.index[slot]
	if _, err := r.file.Seek(off, io.SeekStart); err != nil {
		return fmt.Errorf("stream: seek %s: %w", r.path, err)
	}
	r.lr.init(r.file, off, r.lr.buf)
	// Resume line numbering from the indexed entry so parse errors report the
	// same file:line a sequential pass would.
	r.line = int(r.indexLines[slot]) - 1
	for skip := r.lo - slot*fileIndexGranularity; skip > 0; skip-- {
		if _, err := r.next(); err != nil {
			if err == ErrEndOfPass {
				return fmt.Errorf("stream: %s ended before position %d: %w", r.path, r.lo, ErrTruncated)
			}
			return err
		}
	}
	return nil
}

// next decodes the next edge of the underlying file regardless of the range
// budget (used both for skipping and for delivery).
func (r *fileRange) next() (graph.Edge, error) {
	for {
		line, _, ok, err := r.lr.next()
		if err != nil {
			return graph.Edge{}, fmt.Errorf("stream: reading %s: %w", r.path, err)
		}
		if !ok {
			return graph.Edge{}, ErrEndOfPass
		}
		r.line++
		e, isEdge, perr := parseEdgeLine(r.path, r.line, line)
		if perr != nil {
			return graph.Edge{}, perr
		}
		if isEdge {
			return e, nil
		}
	}
}

// Next implements Stream.
func (r *fileRange) Next() (graph.Edge, error) {
	if !r.active {
		return graph.Edge{}, ErrNoPass
	}
	if err := r.pending; err != nil {
		r.pending = nil
		return graph.Edge{}, err
	}
	if r.remaining <= 0 {
		return graph.Edge{}, ErrEndOfPass
	}
	e, err := r.next()
	if err == ErrEndOfPass {
		return graph.Edge{}, fmt.Errorf("stream: %s ended %d edges into range [%d,%d): %w",
			r.path, r.hi-r.lo-r.remaining, r.lo, r.hi, ErrTruncated)
	}
	if err != nil {
		return graph.Edge{}, err
	}
	r.remaining--
	return e, nil
}

// NextBatch implements Stream.
func (r *fileRange) NextBatch(buf []graph.Edge) ([]graph.Edge, error) {
	if !r.active {
		return nil, ErrNoPass
	}
	if err := r.pending; err != nil {
		r.pending = nil
		return nil, err
	}
	if r.remaining <= 0 {
		return nil, ErrEndOfPass
	}
	if len(buf) == 0 {
		if r.batch == nil {
			r.batch = make([]graph.Edge, DefaultBatchSize)
		}
		buf = r.batch
	}
	// Inline decode loop (mirrors FileStream.NextBatch): this is the per-edge
	// hot path of every shard of a parallel text-file pass, so it should not
	// pay a call plus re-checked state per edge.
	n := 0
	for n < len(buf) && r.remaining > 0 {
		e, err := r.next()
		if err != nil {
			if err == ErrEndOfPass {
				err = fmt.Errorf("stream: %s ended %d edges into range [%d,%d): %w",
					r.path, r.hi-r.lo-r.remaining, r.lo, r.hi, ErrTruncated)
			}
			if n == 0 {
				return nil, err
			}
			r.pending = err
			return buf[:n], nil
		}
		r.remaining--
		buf[n] = e
		n++
	}
	return buf[:n], nil
}

// Len implements Stream.
func (r *fileRange) Len() (int, bool) { return r.hi - r.lo, true }

// Close releases the range's file handle.
func (r *fileRange) Close() error {
	if r.file == nil {
		return nil
	}
	err := r.file.Close()
	r.file = nil
	r.active = false
	return err
}

// WriteEdgeList writes the edges of a stream to w as a text edge list, one
// "u v" pair per line, returning the number of edges written.
func WriteEdgeList(w io.Writer, s Stream) (int, error) {
	bw := bufio.NewWriter(w)
	n, err := ForEach(s, func(e graph.Edge) error {
		_, werr := fmt.Fprintf(bw, "%d %d\n", e.U, e.V)
		return werr
	})
	if err != nil {
		return n, err
	}
	return n, bw.Flush()
}

// WriteGraphFile writes a graph's edges to the given file path as an edge
// list with a small header comment.
func WriteGraphFile(path string, g *graph.Graph, comment string) error {
	file, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("stream: create %s: %w", path, err)
	}
	defer file.Close()
	bw := bufio.NewWriter(file)
	if comment != "" {
		if _, err := fmt.Fprintf(bw, "# %s\n", comment); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(bw, "# n=%d m=%d\n", g.NumVertices(), g.NumEdges()); err != nil {
		return err
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "%d %d\n", e.U, e.V); err != nil {
			return err
		}
	}
	return bw.Flush()
}
