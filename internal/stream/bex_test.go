package stream

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"degentri/internal/graph"
)

// hideLen masks a stream's length so WriteBex must take the patch-afterwards
// path that relies on the writer being seekable.
type hideLen struct{ Stream }

func (hideLen) Len() (int, bool) { return 0, false }

// TestWriteBexAtNonzeroOffset pins the length-prefix patch to the header's
// own base offset: a seekable writer positioned mid-file (a .bex section
// appended after other content) must not have its first bytes overwritten.
func TestWriteBexAtNonzeroOffset(t *testing.T) {
	edges := []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}}
	path := filepath.Join(t.TempDir(), "offset.bin")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	prefix := []byte("CONTAINER-HEADER")
	if _, err := f.Write(prefix); err != nil {
		t.Fatal(err)
	}
	n, err := WriteBex(f, hideLen{FromEdges(edges)})
	if err != nil || n != len(edges) {
		t.Fatalf("WriteBex = %d, %v", n, err)
	}
	// The writer must be left at the end of the .bex section.
	if pos, err := f.Seek(0, 1); err != nil || pos != int64(len(prefix)+bexHeaderSize+n*bexRecordSize) {
		t.Fatalf("writer position = %d, %v", pos, err)
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(raw[:len(prefix)]) != string(prefix) {
		t.Fatalf("prefix corrupted by the length patch: %q", raw[:len(prefix)])
	}
	section := raw[len(prefix):]
	if string(section[:4]) != bexMagic {
		t.Fatalf("no magic at the base offset: %q", section[:4])
	}
	if got := binary.LittleEndian.Uint64(section[8:]); got != uint64(len(edges)) {
		t.Fatalf("patched edge count = %d, want %d", got, len(edges))
	}
	for i, e := range edges {
		rec := section[bexHeaderSize+i*bexRecordSize:]
		if got := decodeBexRecord(rec); got != e {
			t.Fatalf("record %d = %v, want %v", i, got, e)
		}
	}
}

// TestOpenBexValidatesFileSize pins the open-time size check: a truncated
// file or a header that lies about its edge count fails at OpenBex, not with
// a mid-pass truncation error on edge k.
func TestOpenBexValidatesFileSize(t *testing.T) {
	edges := []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4}}
	dir := t.TempDir()
	good := filepath.Join(dir, "good.bex")
	if _, err := WriteBexFile(good, FromEdges(edges)); err != nil {
		t.Fatal(err)
	}
	if bs, err := OpenBex(good); err != nil {
		t.Fatalf("valid file rejected: %v", err)
	} else {
		bs.Close()
	}
	raw, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}

	truncated := filepath.Join(dir, "truncated.bex")
	if err := os.WriteFile(truncated, raw[:len(raw)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenBex(truncated); err == nil || !strings.Contains(err.Error(), "bytes") {
		t.Fatalf("truncated file should fail at open time, got %v", err)
	}

	lying := filepath.Join(dir, "lying.bex")
	forged := append([]byte(nil), raw...)
	binary.LittleEndian.PutUint64(forged[8:], uint64(len(edges)+7))
	if err := os.WriteFile(lying, forged, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenBex(lying); err == nil {
		t.Fatal("over-declared edge count should fail at open time")
	}

	trailing := filepath.Join(dir, "trailing.bex")
	if err := os.WriteFile(trailing, append(append([]byte(nil), raw...), 0xAA), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenBex(trailing); err == nil {
		t.Fatal("trailing garbage should fail at open time")
	}
}

// TestWriteBexNonSeekableStillNeedsLength documents the unchanged contract
// for non-seekable writers.
func TestWriteBexNonSeekableStillNeedsLength(t *testing.T) {
	var sink writerOnly
	if _, err := WriteBex(&sink, hideLen{FromEdges([]graph.Edge{{U: 0, V: 1}})}); err == nil {
		t.Fatal("unknown length + non-seekable writer must error")
	}
	if n, err := WriteBex(&sink, FromEdges([]graph.Edge{{U: 0, V: 1}})); err != nil || n != 1 {
		t.Fatalf("known length + non-seekable writer: %d, %v", n, err)
	}
}

type writerOnly struct{ n int }

func (w *writerOnly) Write(p []byte) (int, error) { w.n += len(p); return len(p), nil }
