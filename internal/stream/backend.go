package stream

// Backend names for the storage formats a stream can be served from. These
// strings are stable: they appear in trianglecount output, triangled
// /metrics and status JSON, and the bench sweep's metric keys.
const (
	BackendMemory   = "memory"
	BackendText     = "text"
	BackendBex1     = "bex1"
	BackendBex2     = "bex2"
	BackendBex2Mmap = "bex2-mmap"
	BackendBexd     = "bexd"
)

// Backender is implemented by streams that know which storage backend they
// read from.
type Backender interface {
	Backend() string
}

// BackendOf reports the storage backend of s, unwrapping decorators (fault
// injectors, counters) that forward the Backender interface. Streams that do
// not identify themselves report "memory" — the in-process backend every
// non-file stream amounts to.
func BackendOf(s Stream) string {
	if b, ok := s.(Backender); ok {
		return b.Backend()
	}
	return BackendMemory
}

// DescribeBackend decorates a backend name with the active decode engine for
// display ("bex2/ssse3+cache", "bexd/scalar", ...). Only the v2 family has a
// decode engine to report; other backends pass through unchanged. This is a
// presentation helper for status lines — stored results keep the plain
// backend name, which stays identical across kernels and cache modes because
// the decoded edges do.
func DescribeBackend(backend string, cache bool) string {
	switch backend {
	case BackendBex2, BackendBex2Mmap, BackendBexd:
		d := backend + "/" + DecodeKernelName()
		if cache {
			d += "+cache"
		}
		return d
	}
	return backend
}
