package stream

import (
	"os"
	"path/filepath"
	"testing"

	"degentri/internal/graph"
)

func testEdges(n int) []graph.Edge {
	edges := make([]graph.Edge, n)
	for i := range edges {
		edges[i] = graph.Edge{U: i, V: i + 1}
	}
	return edges
}

func writeEdgeFile(t *testing.T, edges []graph.Edge) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "edges.txt")
	file, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer file.Close()
	if _, err := file.WriteString("# comment header\n\n"); err != nil {
		t.Fatal(err)
	}
	if _, err := WriteEdgeList(file, FromEdges(edges)); err != nil {
		t.Fatal(err)
	}
	return path
}

// collectViaNext drains one pass with Next.
func collectViaNext(t *testing.T, s Stream) []graph.Edge {
	t.Helper()
	if err := s.Reset(); err != nil {
		t.Fatal(err)
	}
	var out []graph.Edge
	for {
		e, err := s.Next()
		if err == ErrEndOfPass {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, e)
	}
}

// collectViaBatch drains one pass with NextBatch and the given scratch
// buffer size (0 means nil buf).
func collectViaBatch(t *testing.T, s Stream, bufSize int) []graph.Edge {
	t.Helper()
	if err := s.Reset(); err != nil {
		t.Fatal(err)
	}
	var buf []graph.Edge
	if bufSize > 0 {
		buf = make([]graph.Edge, bufSize)
	}
	var out []graph.Edge
	for {
		batch, err := s.NextBatch(buf)
		if err == ErrEndOfPass {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		if len(batch) == 0 {
			t.Fatal("NextBatch returned an empty batch with nil error")
		}
		if bufSize > 0 && len(batch) > bufSize {
			t.Fatalf("batch of %d edges exceeds buffer size %d", len(batch), bufSize)
		}
		out = append(out, batch...)
	}
}

// TestNextBatchEquivalence checks that batched iteration yields exactly the
// Next() sequence for every Stream implementation, across batch sizes that
// exercise partial final batches.
func TestNextBatchEquivalence(t *testing.T) {
	edges := testEdges(97) // prime count: every buffer size ends with a partial batch
	path := writeEdgeFile(t, edges)

	streams := map[string]func() Stream{
		"memory":             func() Stream { return FromEdges(edges) },
		"file":               func() Stream { return OpenFile(path) },
		"passcounter-memory": func() Stream { return NewPassCounter(FromEdges(edges)) },
		"passcounter-file":   func() Stream { return NewPassCounter(OpenFile(path)) },
	}
	for name, mk := range streams {
		want := collectViaNext(t, mk())
		if len(want) != len(edges) {
			t.Fatalf("%s: Next pass saw %d edges, want %d", name, len(want), len(edges))
		}
		for _, bufSize := range []int{0, 1, 3, 7, 96, 97, 200} {
			s := mk()
			got := collectViaBatch(t, s, bufSize)
			if len(got) != len(want) {
				t.Fatalf("%s/buf=%d: %d edges, want %d", name, bufSize, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s/buf=%d: edge %d = %v, want %v", name, bufSize, i, got[i], want[i])
				}
			}
		}
	}
}

// TestNextBatchMixedWithNext checks that Next and NextBatch advance the same
// cursor within a pass.
func TestNextBatchMixedWithNext(t *testing.T) {
	edges := testEdges(10)
	s := FromEdges(edges)
	if err := s.Reset(); err != nil {
		t.Fatal(err)
	}
	if e, err := s.Next(); err != nil || e != edges[0] {
		t.Fatalf("Next = %v, %v", e, err)
	}
	batch, err := s.NextBatch(make([]graph.Edge, 4))
	if err != nil || len(batch) != 4 || batch[0] != edges[1] {
		t.Fatalf("NextBatch = %v, %v", batch, err)
	}
	if e, err := s.Next(); err != nil || e != edges[5] {
		t.Fatalf("Next after batch = %v, %v", e, err)
	}
}

// TestNextBatchBeforeReset checks the ErrNoPass contract.
func TestNextBatchBeforeReset(t *testing.T) {
	if _, err := FromEdges(testEdges(3)).NextBatch(nil); err != ErrNoPass {
		t.Errorf("memory: err = %v, want ErrNoPass", err)
	}
	if _, err := OpenFile("nonexistent").NextBatch(nil); err != ErrNoPass {
		t.Errorf("file: err = %v, want ErrNoPass", err)
	}
}

// TestMemoryStreamBatchZeroCopy checks that MemoryStream batches alias the
// stream's backing slice instead of copying.
func TestMemoryStreamBatchZeroCopy(t *testing.T) {
	edges := testEdges(32)
	s := FromEdges(edges)
	if err := s.Reset(); err != nil {
		t.Fatal(err)
	}
	batch, err := s.NextBatch(make([]graph.Edge, 8))
	if err != nil {
		t.Fatal(err)
	}
	if &batch[0] != &s.Edges()[0] {
		t.Error("bounded batch does not alias the backing slice")
	}
	rest, err := s.NextBatch(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != len(edges)-8 || &rest[0] != &s.Edges()[8] {
		t.Error("unbounded batch does not alias the remainder of the backing slice")
	}
}

// TestPassCounterBatchInvariance checks that pass and read accounting are
// identical whether a pass uses Next or NextBatch.
func TestPassCounterBatchInvariance(t *testing.T) {
	edges := testEdges(57)
	viaNext := NewPassCounter(FromEdges(edges))
	collectViaNext(t, viaNext)
	collectViaNext(t, viaNext)

	viaBatch := NewPassCounter(FromEdges(edges))
	collectViaBatch(t, viaBatch, 0)
	collectViaBatch(t, viaBatch, 10)

	if viaNext.Passes() != viaBatch.Passes() {
		t.Errorf("passes: %d via Next, %d via NextBatch", viaNext.Passes(), viaBatch.Passes())
	}
	if viaNext.EdgesRead() != viaBatch.EdgesRead() {
		t.Errorf("edges read: %d via Next, %d via NextBatch", viaNext.EdgesRead(), viaBatch.EdgesRead())
	}
	if viaBatch.EdgesRead() != int64(2*len(edges)) {
		t.Errorf("edges read = %d, want %d", viaBatch.EdgesRead(), 2*len(edges))
	}
}

// TestFileStreamBatchSurfacesErrors checks that a malformed line mid-file
// first yields the preceding edges, then the error on the next call.
func TestFileStreamBatchSurfacesErrors(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.txt")
	if err := os.WriteFile(path, []byte("0 1\n1 2\nnot-an-edge\n3 4\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	fs := OpenFile(path)
	if err := fs.Reset(); err != nil {
		t.Fatal(err)
	}
	batch, err := fs.NextBatch(nil)
	if err != nil {
		t.Fatalf("first batch should deliver the good edges, got error %v", err)
	}
	if len(batch) != 2 {
		t.Fatalf("first batch has %d edges, want 2", len(batch))
	}
	if _, err := fs.NextBatch(nil); err == nil {
		t.Fatal("expected the parse error on the second call")
	}
}

// TestForEachBatch checks the batched pass helper, including early stop on a
// callback error.
func TestForEachBatch(t *testing.T) {
	edges := testEdges(20)
	n, err := ForEachBatch(FromEdges(edges), func(batch []graph.Edge) error {
		return nil
	})
	if err != nil || n != len(edges) {
		t.Fatalf("ForEachBatch = %d, %v", n, err)
	}
}
