package stream

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"degentri/internal/graph"
)

// The .bexd sharded multi-file layout: a directory holding consecutive
// .bex v2 part files plus a manifest —
//
//	graph.bexd/
//	  manifest.json
//	  part-0000.bex
//	  part-0001.bex
//	  ...
//
// The manifest records the global edge count, the encoder block size, and
// for every part its file name, first global edge position, edge count, and
// SHA-256. One logical stream spans the parts (MultiBexStream), so a graph
// is no longer confined to a single file — the on-disk half of any future
// distributed scan, and the natural unit for graphs bigger than one disk.
// Because each part is itself a complete .bex v2 container, every part
// carries its own footer index and checksums, and global RangeStream is the
// concatenation of per-part ranges: still no first-scan index build.
const (
	// BexdExt is the directory extension OpenAuto dispatches on.
	BexdExt = ".bexd"
	// bexdManifest is the manifest file name inside a .bexd directory.
	bexdManifest = "manifest.json"
	// bexdSchemaVersion is bumped whenever the manifest shape changes
	// incompatibly; OpenBexd refuses versions it does not know.
	bexdSchemaVersion = 1
	// DefaultPartEdges is the default part size for WriteBexd: one part per
	// 2^20 edges (8 MiB of v1-equivalent data; typically ~2-4 MiB of v2).
	DefaultPartEdges = 1 << 20
)

// BexdManifest is the decoded manifest.json of a .bexd directory.
type BexdManifest struct {
	SchemaVersion int        `json:"schema_version"`
	Edges         int        `json:"edges"`
	BlockEdges    int        `json:"block_edges"`
	Parts         []BexdPart `json:"parts"`
}

// BexdPart describes one part file of a .bexd directory.
type BexdPart struct {
	File   string `json:"file"`
	First  int    `json:"first"`
	Edges  int    `json:"edges"`
	SHA256 string `json:"sha256"`
}

// WriteBexd writes the stream to a .bexd directory at dir, splitting it into
// .bex v2 parts of up to partEdges edges (<= 0 selects DefaultPartEdges)
// encoded with the given block size (<= 0 selects DefaultBlockEdges), and
// returns the number of edges written. The directory is created if missing;
// an existing manifest.json means dir already holds a graph and is refused
// rather than half-overwritten. An empty stream yields a valid zero-part
// directory.
func WriteBexd(dir string, s Stream, blockEdges, partEdges int) (int, error) {
	if partEdges <= 0 {
		partEdges = DefaultPartEdges
	}
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return 0, fmt.Errorf("stream: create %s: %w", dir, err)
	}
	if _, err := os.Stat(filepath.Join(dir, bexdManifest)); err == nil {
		return 0, fmt.Errorf("stream: %s already holds a .bexd manifest; refusing to overwrite", dir)
	}
	man := BexdManifest{SchemaVersion: bexdSchemaVersion, BlockEdges: blockEdges}
	if man.BlockEdges <= 0 {
		man.BlockEdges = DefaultBlockEdges
	}
	pend := make([]graph.Edge, 0, partEdges)
	flush := func() error {
		if len(pend) == 0 {
			return nil
		}
		name := fmt.Sprintf("part-%04d.bex", len(man.Parts))
		sum, err := writeBexdPart(filepath.Join(dir, name), pend, man.BlockEdges)
		if err != nil {
			return err
		}
		man.Parts = append(man.Parts, BexdPart{
			File:   name,
			First:  man.Edges,
			Edges:  len(pend),
			SHA256: sum,
		})
		man.Edges += len(pend)
		pend = pend[:0]
		return nil
	}
	n, err := ForEachBatch(s, func(batch []graph.Edge) error {
		for len(batch) > 0 {
			take := partEdges - len(pend)
			if take > len(batch) {
				take = len(batch)
			}
			pend = append(pend, batch[:take]...)
			batch = batch[take:]
			if len(pend) == partEdges {
				if err := flush(); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		return n, err
	}
	if err := flush(); err != nil {
		return n, err
	}
	blob, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return n, err
	}
	// Manifest last, atomically: a crashed writer leaves a directory without
	// a manifest (refused by OpenBexd), never a manifest describing missing
	// or partial parts.
	tmp := filepath.Join(dir, bexdManifest+".tmp")
	if err := os.WriteFile(tmp, append(blob, '\n'), 0o666); err != nil {
		return n, fmt.Errorf("stream: write %s manifest: %w", dir, err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, bexdManifest)); err != nil {
		return n, fmt.Errorf("stream: commit %s manifest: %w", dir, err)
	}
	return n, nil
}

// writeBexdPart writes one part file and returns its hex SHA-256, computed
// on the fly while writing.
func writeBexdPart(path string, edges []graph.Edge, blockEdges int) (string, error) {
	file, err := os.Create(path)
	if err != nil {
		return "", fmt.Errorf("stream: create %s: %w", path, err)
	}
	h := sha256.New()
	// The slice stream knows its length, so WriteBex2 never needs to seek
	// and the tee to the hasher sees exactly the bytes on disk.
	_, werr := WriteBex2(io.MultiWriter(file, h), FromEdges(edges), blockEdges)
	cerr := file.Close()
	if werr != nil {
		return "", werr
	}
	if cerr != nil {
		return "", cerr
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// ReadBexdManifest reads and structurally validates the manifest of a .bexd
// directory: known schema version, parts contiguous from position zero,
// edge counts consistent with the total. Part contents are not opened here.
func ReadBexdManifest(dir string) (*BexdManifest, error) {
	blob, err := os.ReadFile(filepath.Join(dir, bexdManifest))
	if err != nil {
		return nil, fmt.Errorf("stream: %s: reading .bexd manifest: %w (%w)", dir, err, ErrCorruptHeader)
	}
	var man BexdManifest
	if err := json.Unmarshal(blob, &man); err != nil {
		return nil, fmt.Errorf("stream: %s: parsing .bexd manifest: %w (%w)", dir, err, ErrCorruptHeader)
	}
	if man.SchemaVersion != bexdSchemaVersion {
		return nil, fmt.Errorf("stream: %s: .bexd manifest schema %d (this build reads %d): %w",
			dir, man.SchemaVersion, bexdSchemaVersion, ErrCorruptHeader)
	}
	if man.Edges < 0 || man.BlockEdges <= 0 || man.BlockEdges > maxBex2BlockEdges {
		return nil, fmt.Errorf("stream: %s: implausible .bexd manifest (edges %d, block size %d): %w",
			dir, man.Edges, man.BlockEdges, ErrCorruptHeader)
	}
	pos := 0
	for i, p := range man.Parts {
		if p.File != filepath.Base(p.File) || p.File == "" {
			return nil, fmt.Errorf("stream: %s: .bexd part %d names a path (%q), not a file: %w",
				dir, i, p.File, ErrCorruptHeader)
		}
		if p.First != pos || p.Edges <= 0 {
			return nil, fmt.Errorf("stream: %s: .bexd part %d is not contiguous (first %d, want %d, edges %d): %w",
				dir, i, p.First, pos, p.Edges, ErrCorruptHeader)
		}
		pos += p.Edges
	}
	if pos != man.Edges {
		return nil, fmt.Errorf("stream: %s: .bexd parts hold %d edges but the manifest declares %d: %w",
			dir, pos, man.Edges, ErrCorruptHeader)
	}
	return &man, nil
}

// MultiBexStream streams one logical edge sequence spanning the .bex v2
// parts of a .bexd directory. It implements Stream, RangeStreamer, and
// FileBacked, so the sharded pass engine, the fusion scheduler, ScanGroup,
// and the daemon all treat a directory of parts exactly like one file.
type MultiBexStream struct {
	dir   string
	man   *BexdManifest
	metas []*bex2Meta
	maps  []*bexMapping // non-nil per part when the mmap reader is preferred
	cache bool          // part cursors use the decoded-block cache

	subs   []Stream // one cursor-backed stream per part, reset lazily
	idx    int
	active bool
}

// OpenBexd opens a .bexd directory with buffered part readers. Every part's
// container geometry is validated eagerly (the same checks as OpenBex2 on
// each file, plus agreement with the manifest's per-part edge counts), so a
// deleted, truncated, or swapped part fails at open, not mid-pass. Part
// SHA-256s are not re-hashed here — that is VerifyBexd, the integrity deep
// check — but every block read still verifies its own CRC.
func OpenBexd(dir string) (*MultiBexStream, error) {
	return OpenBexdPrefer(dir, false)
}

// OpenBexdPrefer is OpenBexd with a reader preference: when mmap is true,
// parts are served by the mmap-backed reader.
func OpenBexdPrefer(dir string, mmap bool) (*MultiBexStream, error) {
	return openBexdOpts(dir, mmap, false)
}

func openBexdOpts(dir string, mmap, cache bool) (*MultiBexStream, error) {
	man, err := ReadBexdManifest(dir)
	if err != nil {
		return nil, err
	}
	ms := &MultiBexStream{dir: dir, man: man, metas: make([]*bex2Meta, len(man.Parts)), cache: cache}
	if mmap {
		ms.maps = make([]*bexMapping, len(man.Parts))
	}
	for i, p := range man.Parts {
		path := filepath.Join(dir, p.File)
		file, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("stream: %s: .bexd part %d: %w (%w)", dir, i, err, ErrTruncated)
		}
		meta, merr := readBex2Meta(file, path)
		var size int64
		if merr == nil {
			if info, serr := file.Stat(); serr == nil {
				size = info.Size()
			}
		}
		file.Close()
		if merr != nil {
			return nil, merr
		}
		if meta.m != p.Edges {
			return nil, fmt.Errorf("stream: %s: .bexd part %d holds %d edges but the manifest declares %d: %w",
				dir, i, meta.m, p.Edges, ErrCorruptHeader)
		}
		ms.metas[i] = meta
		if mmap {
			ms.maps[i] = &bexMapping{path: path, size: size}
		}
	}
	ms.subs = make([]Stream, len(ms.metas))
	for i := range ms.metas {
		ms.subs[i] = ms.partStream(i, 0, ms.metas[i].m)
	}
	return ms, nil
}

// partStream builds a cursor over positions [lo, hi) of part i, through the
// directory's preferred block source.
func (ms *MultiBexStream) partStream(i, lo, hi int) Stream {
	meta := ms.metas[i]
	var src bex2Source
	if ms.maps != nil {
		src = &bex2MapSource{meta: meta, mp: ms.maps[i]}
	} else {
		src = &bex2FileSource{meta: meta}
	}
	return &bex2Range{cur: bex2Cursor{meta: meta, src: src, lo: lo, hi: hi, cache: ms.cache}}
}

// Reset implements Stream.
func (ms *MultiBexStream) Reset() error {
	ms.idx = 0
	ms.active = true
	if len(ms.subs) == 0 {
		return nil
	}
	return ms.subs[0].Reset()
}

// advance moves to the next part, resetting it for this pass.
func (ms *MultiBexStream) advance() error {
	ms.idx++
	if ms.idx >= len(ms.subs) {
		return ErrEndOfPass
	}
	return ms.subs[ms.idx].Reset()
}

// Next implements Stream.
func (ms *MultiBexStream) Next() (graph.Edge, error) {
	if !ms.active {
		return graph.Edge{}, ErrNoPass
	}
	for ms.idx < len(ms.subs) {
		e, err := ms.subs[ms.idx].Next()
		if err == ErrEndOfPass {
			if aerr := ms.advance(); aerr != nil {
				return graph.Edge{}, aerr
			}
			continue
		}
		return e, err
	}
	return graph.Edge{}, ErrEndOfPass
}

// NextBatch implements Stream. Batches never span a part boundary; callers
// already handle short batches.
func (ms *MultiBexStream) NextBatch(buf []graph.Edge) ([]graph.Edge, error) {
	if !ms.active {
		return nil, ErrNoPass
	}
	for ms.idx < len(ms.subs) {
		batch, err := ms.subs[ms.idx].NextBatch(buf)
		if err == ErrEndOfPass {
			if aerr := ms.advance(); aerr != nil {
				return nil, aerr
			}
			continue
		}
		return batch, err
	}
	return nil, ErrEndOfPass
}

// Len implements Stream; the manifest always knows the total.
func (ms *MultiBexStream) Len() (int, bool) { return ms.man.Edges, true }

// RangeStream implements RangeStreamer: a global position range maps to the
// covering run of parts (binary search on the manifest's first positions)
// and becomes a chain of per-part range cursors. Available from open — the
// parts' footer indexes already exist — so, like the single-file v2 reader,
// a .bexd directory needs no first-scan index build.
func (ms *MultiBexStream) RangeStream(lo, hi int) (Stream, bool) {
	if lo < 0 || hi < lo || hi > ms.man.Edges {
		return nil, false
	}
	if lo == hi {
		return FromEdges(nil), true
	}
	first := sort.Search(len(ms.man.Parts), func(i int) bool {
		p := ms.man.Parts[i]
		return p.First+p.Edges > lo
	})
	var subs []Stream
	for i := first; i < len(ms.man.Parts) && ms.man.Parts[i].First < hi; i++ {
		p := ms.man.Parts[i]
		slo, shi := lo-p.First, hi-p.First
		if slo < 0 {
			slo = 0
		}
		if shi > p.Edges {
			shi = p.Edges
		}
		subs = append(subs, ms.partStream(i, slo, shi))
	}
	if len(subs) == 1 {
		return subs[0], true
	}
	return &chainStream{subs: subs, m: hi - lo}, true
}

// Close releases every part's resources; the stream can be Reset afterwards.
func (ms *MultiBexStream) Close() error {
	ms.active = false
	var first error
	for _, s := range ms.subs {
		if c, ok := s.(interface{ Close() error }); ok {
			if err := c.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// Backend implements Backender.
func (ms *MultiBexStream) Backend() string { return BackendBexd }

// chainStream concatenates sub-streams into one logical pass. Sub-streams
// are reset lazily as the pass reaches them and closed with the chain.
type chainStream struct {
	subs   []Stream
	m      int
	idx    int
	active bool
}

func (c *chainStream) Reset() error {
	c.idx = 0
	c.active = true
	if len(c.subs) == 0 {
		return nil
	}
	return c.subs[0].Reset()
}

func (c *chainStream) advance() error {
	c.idx++
	if c.idx >= len(c.subs) {
		return ErrEndOfPass
	}
	return c.subs[c.idx].Reset()
}

func (c *chainStream) Next() (graph.Edge, error) {
	if !c.active {
		return graph.Edge{}, ErrNoPass
	}
	for c.idx < len(c.subs) {
		e, err := c.subs[c.idx].Next()
		if err == ErrEndOfPass {
			if aerr := c.advance(); aerr != nil {
				return graph.Edge{}, aerr
			}
			continue
		}
		return e, err
	}
	return graph.Edge{}, ErrEndOfPass
}

func (c *chainStream) NextBatch(buf []graph.Edge) ([]graph.Edge, error) {
	if !c.active {
		return nil, ErrNoPass
	}
	for c.idx < len(c.subs) {
		batch, err := c.subs[c.idx].NextBatch(buf)
		if err == ErrEndOfPass {
			if aerr := c.advance(); aerr != nil {
				return nil, aerr
			}
			continue
		}
		return batch, err
	}
	return nil, ErrEndOfPass
}

func (c *chainStream) Len() (int, bool) { return c.m, true }

func (c *chainStream) Close() error {
	c.active = false
	var first error
	for _, s := range c.subs {
		if cl, ok := s.(interface{ Close() error }); ok {
			if err := cl.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// VerifyBexd re-hashes every part of a .bexd directory against the
// manifest's SHA-256s — the deep integrity check OpenBexd deliberately
// skips. Corpus verification and tests call this; the streaming path relies
// on per-block CRCs instead.
func VerifyBexd(dir string) error {
	man, err := ReadBexdManifest(dir)
	if err != nil {
		return err
	}
	for i, p := range man.Parts {
		path := filepath.Join(dir, p.File)
		file, err := os.Open(path)
		if err != nil {
			return fmt.Errorf("stream: %s: .bexd part %d: %w (%w)", dir, i, err, ErrTruncated)
		}
		h := sha256.New()
		_, cerr := io.Copy(h, file)
		file.Close()
		if cerr != nil {
			return fmt.Errorf("stream: %s: hashing .bexd part %d: %w", dir, i, cerr)
		}
		if got := hex.EncodeToString(h.Sum(nil)); got != p.SHA256 {
			return fmt.Errorf("stream: %s: .bexd part %d checksum mismatch (got %s, want %s): %w",
				dir, i, got, p.SHA256, ErrCorruptBlock)
		}
	}
	return nil
}
