package gvdecode

import (
	"math/rand"
	"testing"
)

// zigzag is the writer-side encoding of a signed delta.
func zigzag(d int32) uint32 { return uint32((d << 1) ^ (d >> 31)) }

// encodeGroups packs values (4 per control byte) into group-varint control
// and data streams, mirroring the .bex v2 writer's layout. len(vals) must be
// a multiple of 4.
func encodeGroups(t *testing.T, vals []uint32) (ctrl, data []byte) {
	t.Helper()
	if len(vals)%4 != 0 {
		t.Fatalf("encodeGroups: %d values, want multiple of 4", len(vals))
	}
	for i := 0; i < len(vals); i += 4 {
		var c byte
		for j := 0; j < 4; j++ {
			z := vals[i+j]
			l := 1
			for z >= 1<<(8*l) && l < 4 {
				l++
			}
			c |= byte(l-1) << (2 * j)
			for b := 0; b < l; b++ {
				data = append(data, byte(z>>(8*b)))
			}
		}
		ctrl = append(ctrl, c)
	}
	return ctrl, data
}

// encodeEdges turns an edge list (pairs of int32 vertices) into interleaved
// zigzag deltas and encodes them. len(edges) must be even (2 edges/group).
func encodeEdges(t *testing.T, edges [][2]int32) (ctrl, data []byte) {
	t.Helper()
	var u, v int32
	vals := make([]uint32, 0, 2*len(edges))
	for _, e := range edges {
		vals = append(vals, zigzag(e[0]-u), zigzag(e[1]-v))
		u, v = e[0], e[1]
	}
	return encodeGroups(t, vals)
}

func TestTables(t *testing.T) {
	for c := 0; c < 256; c++ {
		want := c&3 + c>>2&3 + c>>4&3 + c>>6&3 + 4
		if int(LenTable[c]) != want {
			t.Fatalf("LenTable[%#x] = %d, want %d", c, LenTable[c], want)
		}
		// Each mask must only reference bytes inside the group's payload.
		for _, m := range ShufTable[c] {
			if m != 0x80 && int(m) >= want {
				t.Fatalf("ShufTable[%#x] references byte %d beyond length %d", c, m, want)
			}
		}
	}
}

func TestRefDecodesKnownEdges(t *testing.T) {
	edges := [][2]int32{
		{0, 1}, {0, 2}, {0, 70000}, {3, 1}, {3, 5}, {1000000, 999999},
		{1000000, 1000001}, {2147483646, 2147483645},
	}
	ctrl, data := encodeEdges(t, edges)
	// Pad so every group decodes from a full 16-byte window.
	data = append(data, make([]byte, 16)...)
	dst := make([][2]int64, len(edges))
	var st State
	Ref(ctrl, len(ctrl), data, dst, &st)
	if int(st.Done) != len(ctrl) {
		t.Fatalf("Done = %d, want %d", st.Done, len(ctrl))
	}
	if st.Flags != 0 {
		t.Fatalf("Flags = %#x on valid input", st.Flags)
	}
	for i, e := range edges {
		if dst[i][0] != int64(e[0]) || dst[i][1] != int64(e[1]) {
			t.Fatalf("edge %d = (%d,%d), want (%d,%d)", i, dst[i][0], dst[i][1], e[0], e[1])
		}
	}
}

// checkDiff runs kernel and reference on identical inputs and asserts
// bit-identical outputs: every decoded edge, both carries, Done, Flags,
// Consumed.
func checkDiff(t *testing.T, ctrl []byte, groups int, data []byte, st State) {
	t.Helper()
	refDst := make([][2]int64, 2*groups)
	refSt := st
	Ref(ctrl, groups, data, refDst, &refSt)

	gotDst := make([][2]int64, 2*groups)
	gotSt := st
	Decode(ctrl, groups, data, gotDst, &gotSt)

	if gotSt != refSt {
		t.Fatalf("state mismatch: kernel %+v, ref %+v", gotSt, refSt)
	}
	for i := 0; i < 2*int(refSt.Done); i++ {
		if gotDst[i] != refDst[i] {
			t.Fatalf("edge %d: kernel %v, ref %v", i, gotDst[i], refDst[i])
		}
	}
}

func TestDecodeMatchesRefRandom(t *testing.T) {
	if !Available() {
		t.Skip("no SIMD kernel on this CPU; Decode would just call Ref")
	}
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 2000; iter++ {
		groups := rng.Intn(64)
		vals := make([]uint32, 4*groups)
		for i := range vals {
			// Random widths 1..4 bytes; raw values, not necessarily
			// valid prefixes — overflow/flag behavior must match too.
			w := 1 + rng.Intn(4)
			vals[i] = rng.Uint32() >> (8 * (4 - w))
		}
		ctrl, data := encodeGroups(t, vals)
		switch iter % 3 {
		case 0:
			data = append(data, make([]byte, 16)...) // full decode
		case 1: // exact length: tail groups stop at the window boundary
		case 2:
			if len(data) > 0 {
				data = data[:rng.Intn(len(data))] // truncated
			}
		}
		st := State{U: rng.Int31() - 1<<30, V: rng.Int31() - 1<<30}
		checkDiff(t, ctrl, groups, data, st)
	}
}

func TestDecodeMatchesRefAdversarial(t *testing.T) {
	if !Available() {
		t.Skip("no SIMD kernel on this CPU")
	}
	// All-0xFF payloads with every control byte: maximal values, guaranteed
	// lane overflow — Flags must be set identically.
	data := make([]byte, 64)
	for i := range data {
		data[i] = 0xFF
	}
	for c := 0; c < 256; c++ {
		ctrl := []byte{byte(c), byte(255 - c), byte(c)}
		checkDiff(t, ctrl, len(ctrl), data, State{})
	}
	// Empty and sub-window data.
	checkDiff(t, []byte{0x00}, 1, nil, State{})
	checkDiff(t, []byte{0xFF}, 1, make([]byte, 15), State{})
	checkDiff(t, nil, 0, data, State{})
}

// buildBench encodes an 8K-edge block (the .bex v2 default) in the shape the
// hot path sees: sorted edges, small deltas.
func buildBench(b *testing.B) (ctrl, data []byte, edges int) {
	b.Helper()
	const n = 8192
	rng := rand.New(rand.NewSource(7))
	var u, v int32
	vals := make([]uint32, 0, 2*n)
	for i := 0; i < n; i++ {
		nu := u + rng.Int31n(3)
		nv := rng.Int31n(1 << 17)
		vals = append(vals, zigzag(nu-u), zigzag(nv-v))
		u, v = nu, nv
	}
	var c []byte
	var d []byte
	for i := 0; i < len(vals); i += 4 {
		var cb byte
		for j := 0; j < 4; j++ {
			z := vals[i+j]
			l := 1
			for z >= 1<<(8*l) && l < 4 {
				l++
			}
			cb |= byte(l-1) << (2 * j)
			for k := 0; k < l; k++ {
				d = append(d, byte(z>>(8*k)))
			}
		}
		c = append(c, cb)
	}
	d = append(d, make([]byte, 16)...)
	return c, d, n
}

func BenchmarkRef8K(b *testing.B) {
	ctrl, data, n := buildBench(b)
	dst := make([][2]int64, n)
	b.SetBytes(int64(n) * 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var st State
		Ref(ctrl, len(ctrl), data, dst, &st)
	}
}

func BenchmarkDecode8K(b *testing.B) {
	if !Available() {
		b.Skip("no SIMD kernel on this CPU")
	}
	ctrl, data, n := buildBench(b)
	dst := make([][2]int64, n)
	b.SetBytes(int64(n) * 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var st State
		Decode(ctrl, len(ctrl), data, dst, &st)
	}
}
