//go:build !amd64

package gvdecode

// Available reports whether the assembly kernel can run on this CPU.
// Only amd64 has one; everything else keeps the scalar decoder.
func Available() bool { return false }

// Decode falls back to the portable model on non-amd64 builds so callers and
// tests can use one entry point unconditionally.
func Decode(ctrl []byte, groups int, data []byte, dst [][2]int64, st *State) {
	if groups < 0 || groups > len(ctrl) || 2*groups > len(dst) {
		panic("gvdecode: Decode arguments out of range")
	}
	Ref(ctrl, groups, data, dst, st)
}
