#include "textflag.h"

// func hasSSSE3() bool
TEXT ·hasSSSE3(SB), NOSPLIT, $0-1
	MOVL $1, AX
	XORL CX, CX
	CPUID
	SHRL $9, CX
	ANDL $1, CX
	MOVB CX, ret+0(FP)
	RET

// func decodeSSSE3(ctrl *byte, groups int64, data *byte, dataLen int64, dst *[2]int64, st *State)
//
// Register plan:
//   SI  ctrl base          R9   group index (also ctrl offset)
//   DX  data cursor        R8   last data position with a full 16-byte window
//   DI  dst cursor         R14  data base (for Consumed)
//   R10 ShufTable base     R11  LenTable base
//   R15 st                 AX   control byte; R12/R13 scratch
//   X0  carry [u,v,u,v]    X7   OR-accumulator of all produced values
TEXT ·decodeSSSE3(SB), NOSPLIT, $0-48
	MOVQ ctrl+0(FP), SI
	MOVQ groups+8(FP), BX
	MOVQ data+16(FP), DX
	MOVQ dataLen+24(FP), R8
	MOVQ dst+32(FP), DI
	MOVQ st+40(FP), R15
	MOVQ DX, R14
	LEAQ -16(DX)(R8*1), R8
	LEAQ ·ShufTable(SB), R10
	LEAQ ·LenTable(SB), R11

	// Carry in: st.{U,V} are adjacent int32s; load as one qword and
	// duplicate into both halves so one PADDD applies (u,v) to both edges.
	MOVQ   0(R15), X0
	PSHUFL $0x44, X0, X0
	PXOR   X7, X7
	XORQ   R9, R9

loop:
	CMPQ R9, BX
	JGE  done
	CMPQ DX, R8
	JA   done

	// Expand the group's packed bytes to four uint32 lanes via the
	// control byte's shuffle mask (absent high bytes become zero).
	MOVBLZX (SI)(R9*1), AX
	MOVQ    AX, R12
	SHLQ    $4, R12
	MOVOU   (R10)(R12*1), X4
	MOVOU   (DX), X1
	PSHUFB  X4, X1

	// Zigzag decode all lanes: d = (z >> 1) ^ -(z & 1).
	MOVO  X1, X2
	PSLLL $31, X2
	PSRAL $31, X2
	PSRLL $1, X1
	PXOR  X2, X1

	// Lanes are (du0, dv0, du1, dv1): a two-lane shift-add prefix-sums
	// each channel, then the duplicated carry lands both edges at once.
	MOVQ   X1, X2
	PSHUFL $0x4E, X2, X2
	PADDD  X2, X1
	PADDD  X0, X1
	POR    X1, X7
	PSHUFL $0xEE, X1, X0

	// Sign-extend the four int32 lanes to two [2]int64 edges and store.
	MOVO      X1, X2
	PSRAL     $31, X2
	MOVO      X1, X3
	PUNPCKLLQ X2, X3
	MOVOU     X3, (DI)
	PUNPCKHLQ X2, X1
	MOVOU     X1, 16(DI)
	ADDQ      $32, DI

	MOVBLZX (R11)(AX*1), R13
	ADDQ    R13, DX
	INCQ    R9
	JMP     loop

done:
	MOVQ X0, AX
	MOVL AX, 0(R15)  // State.U
	SHRQ $32, AX
	MOVL AX, 4(R15)  // State.V
	MOVL R9, 8(R15)  // State.Done

	// Normalize "any produced value had its sign bit set" to the same
	// 0 / 0x80000000 encoding the portable model produces.
	MOVMSKPS X7, AX
	MOVL     $0, CX
	MOVL     $0x80000000, R12
	TESTL    AX, AX
	CMOVLNE  R12, CX
	MOVL     CX, 12(R15) // State.Flags

	SUBQ R14, DX
	MOVQ DX, 16(R15) // State.Consumed
	RET
