package gvdecode

import "testing"

// FuzzDecodeMatchesRef is the kernel-level half of the decode fuzz harness:
// on arbitrary control bytes, payload bytes, and carry state, the dispatched
// kernel (assembly where it exists) must match the portable model bit for
// bit — same edges, same resume state, same overflow flags — without ever
// reading out of bounds (the kernel's window arithmetic is exercised by
// truncated payloads; an out-of-bounds read faults the process under fuzz).
// The block-level half lives in package stream as FuzzBex2Decode.
func FuzzDecodeMatchesRef(f *testing.F) {
	// Seeds: every control byte against a saturated payload, the empty and
	// sub-window payloads the dispatcher must refuse, and a mixed realistic
	// group run with a nonzero carry.
	f.Add([]byte{0x00}, []byte{6, 8, 4, 3, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}, int32(0), int32(0))
	f.Add([]byte{0xFF}, []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}, int32(1<<30), int32(-5))
	f.Add([]byte{0x1B, 0xE4, 0x00}, []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21, 22, 23}, int32(977), int32(991))
	f.Add([]byte{0x00}, []byte(nil), int32(0), int32(0))
	f.Add([]byte{0xFF}, make([]byte, 15), int32(0), int32(0))

	f.Fuzz(func(t *testing.T, ctrl, data []byte, u0, v0 int32) {
		if len(ctrl) > 4096 {
			ctrl = ctrl[:4096]
		}
		checkDiff(t, ctrl, len(ctrl), data, State{U: u0, V: v0})
	})
}
