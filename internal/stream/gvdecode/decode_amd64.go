package gvdecode

// hasSSSE3 reports CPUID.1:ECX bit 9 — the feature level PSHUFB needs.
func hasSSSE3() bool

// decodeSSSE3 is the assembly kernel. It decodes up to `groups` control
// bytes from ctrl, reading packed value bytes from data (stopping while a
// full 16-byte load window remains), writing two [2]int64 edges per group to
// dst, and updating st in place. Bit-exact with Ref.
//
//go:noescape
func decodeSSSE3(ctrl *byte, groups int64, data *byte, dataLen int64, dst *[2]int64, st *State)

var useSIMD = hasSSSE3()

// Available reports whether the assembly kernel can run on this CPU.
func Available() bool { return useSIMD }

// Decode runs the vectorized kernel when the CPU supports it and the
// bit-exact portable model otherwise. dst must hold at least 2*groups edges;
// ctrl at least groups bytes.
func Decode(ctrl []byte, groups int, data []byte, dst [][2]int64, st *State) {
	if groups < 0 || groups > len(ctrl) || 2*groups > len(dst) {
		panic("gvdecode: Decode arguments out of range")
	}
	if !useSIMD {
		Ref(ctrl, groups, data, dst, st)
		return
	}
	if groups == 0 || len(data) < 16 {
		st.Done, st.Flags, st.Consumed = 0, 0, 0
		return
	}
	decodeSSSE3(&ctrl[0], int64(groups), &data[0], int64(len(data)), &dst[0], st)
}
