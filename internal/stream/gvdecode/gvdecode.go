// Package gvdecode is the vectorized group-varint delta decode kernel behind
// the .bex v2 hot scan path (Stream VByte-style shuffle-table decoding;
// Lemire et al.).
//
// The .bex v2 block format stores four zigzagged deltas per control byte —
// two bits of byte-length each — followed by the values' packed little-endian
// bytes. That layout was chosen in PR 9 precisely because it vectorizes: the
// control byte is a direct index into a 256-entry table of 16-byte PSHUFB
// masks that expand one unaligned 16-byte load into four right-sized uint32
// lanes in a single instruction, and a parallel 256-entry length table
// advances the data cursor without touching the value bytes. Per control byte
// (four values = two edges) the SSSE3 kernel then zigzag-decodes, prefix-sums
// the (u, v)-interleaved deltas with one shift-add, adds the running (u, v)
// carry, sign-extends to the caller's int64 edge layout, and stores two edges
// — no per-value branches and no loop-carried chain through the value widths,
// where the scalar decoder pays shifts, masks, and a table add per value.
//
// The kernel accumulates vertex IDs in int32 lanes. Well-formed blocks (the
// writer refuses vertices outside int32) decode bit-identically to the
// scalar int64 decoder: every intermediate prefix value lies in [0, 2³¹), so
// 32-bit adds are exact. A corrupt block can push a lane out of that range;
// the kernel detects this as a set sign bit (any true value outside
// [0, 2³¹) maps to a negative int32 when the preceding state was exact),
// reports it via the ok result, and the caller re-decodes the block with the
// authoritative scalar path to pin the exact offending edge — the two paths
// therefore agree byte-for-byte on valid input and error-for-error on
// corrupt input, which is what the fuzz harness in internal/stream proves.
//
// The package has no dependencies beyond the standard library and selects
// the kernel at runtime by CPUID: amd64 with SSSE3 gets the assembly kernel,
// everything else (and amd64 with SIMD disabled) keeps the portable scalar
// decoder in internal/stream. Ref is the pure-Go model of the kernel used by
// the differential tests.
package gvdecode

// ShufTable maps a group-varint control byte to the PSHUFB mask that expands
// the packed value bytes of its four values into four little-endian uint32
// lanes (absent high bytes become zero: PSHUFB writes 0 for mask bytes with
// the high bit set). Generated at init from the control byte's four 2-bit
// length fields; kept exported for the kernel's tests.
var ShufTable [256][16]byte

// LenTable maps a control byte to the total data-byte length of its four
// values (4..16).
var LenTable [256]uint8

func init() {
	for c := 0; c < 256; c++ {
		total := 0
		for v := 0; v < 4; v++ {
			l := int(c>>(2*v)&3) + 1
			for b := 0; b < 4; b++ {
				if b < l {
					ShufTable[c][4*v+b] = byte(total + b)
				} else {
					ShufTable[c][4*v+b] = 0x80
				}
			}
			total += l
		}
		LenTable[c] = uint8(total)
	}
}

// State carries the kernel's in/out registers across the assembly boundary:
// the running (u, v) prefix values in int32 (exact for well-formed blocks,
// see the package comment) plus the kernel's outputs.
type State struct {
	U, V     int32
	Done     int32  // groups (control bytes) decoded
	Flags    uint32 // nonzero: some decoded value fell outside [0, 2³¹)
	Consumed int64  // data bytes consumed
}

// Ref is the portable model of the assembly kernel, bit-exact with it by
// construction: int32 lane arithmetic, the same flag rule, the same stop
// conditions (groups exhausted or fewer than 16 data bytes left). It backs
// the differential tests and documents precisely what the assembly computes.
// dst must hold at least 2*groups edges of two int64s each.
func Ref(ctrl []byte, groups int, data []byte, dst [][2]int64, st *State) {
	u, v := st.U, st.V
	var flags uint32
	p := 0
	g := 0
	for g < groups && p+16 <= len(data) {
		c := ctrl[g]
		var z [4]uint32
		q := p
		for i := 0; i < 4; i++ {
			l := int(c>>(2*i)&3) + 1
			var x uint32
			for b := 0; b < l; b++ {
				x |= uint32(data[q+b]) << (8 * b)
			}
			z[i] = x
			q += l
		}
		for i := 0; i < 4; i += 2 {
			du := int32(z[i]>>1) ^ -int32(z[i]&1)
			dv := int32(z[i+1]>>1) ^ -int32(z[i+1]&1)
			u += du
			v += dv
			flags |= uint32(u) | uint32(v)
			dst[2*g+i/2] = [2]int64{int64(u), int64(v)}
		}
		p += int(LenTable[c])
		g++
	}
	st.U, st.V = u, v
	st.Done = int32(g)
	st.Flags = flags & 0x8000_0000
	st.Consumed = int64(p)
}
