package stream

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"degentri/internal/graph"
)

// shardTestEdges builds a recognizable edge list: edge i is (i, i+1).
func shardTestEdges(m int) []graph.Edge {
	edges := make([]graph.Edge, m)
	for i := range edges {
		edges[i] = graph.Edge{U: i, V: i + 1}
	}
	return edges
}

// collectSharded runs a sharded pass and returns the edges seen per shard
// plus the merge order.
func collectSharded(t *testing.T, s Stream, m, workers int) (perShard [NumShards][]graph.Edge, mergeOrder []int) {
	t.Helper()
	var mu sync.Mutex
	n, err := ShardedForEachBatch(s, m, workers,
		func(shard int, batch []graph.Edge) error {
			mu.Lock()
			perShard[shard] = append(perShard[shard], batch...)
			mu.Unlock()
			return nil
		},
		func(shard int) error {
			mergeOrder = append(mergeOrder, shard)
			return nil
		})
	if err != nil {
		t.Fatalf("sharded pass (workers=%d): %v", workers, err)
	}
	if n != m {
		t.Fatalf("sharded pass saw %d edges, want %d", n, m)
	}
	return perShard, mergeOrder
}

func checkShardedResult(t *testing.T, edges []graph.Edge, perShard [NumShards][]graph.Edge, mergeOrder []int, workers int) {
	t.Helper()
	m := len(edges)
	if len(mergeOrder) != NumShards {
		t.Fatalf("workers=%d: %d merges, want %d", workers, len(mergeOrder), NumShards)
	}
	for k, got := range mergeOrder {
		if got != k {
			t.Fatalf("workers=%d: merge order %v not ascending", workers, mergeOrder)
		}
	}
	for k := 0; k < NumShards; k++ {
		lo, hi := ShardRange(m, k)
		want := edges[lo:hi]
		got := perShard[k]
		if len(got) != len(want) {
			t.Fatalf("workers=%d: shard %d saw %d edges, want %d", workers, k, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: shard %d edge %d = %v, want %v", workers, k, i, got[i], want[i])
			}
		}
	}
}

func TestShardedForEachBatchMemory(t *testing.T) {
	for _, m := range []int{0, 1, 63, 1000, 8192, 8192 + 17, 3*8192 + 11, 70000} {
		edges := shardTestEdges(m)
		for _, workers := range []int{1, 2, 4, 8} {
			s := NewPassCounter(FromEdges(edges))
			perShard, order := collectSharded(t, s, m, workers)
			checkShardedResult(t, edges, perShard, order, workers)
			if s.Passes() != 1 {
				t.Errorf("m=%d workers=%d: %d passes counted, want 1", m, workers, s.Passes())
			}
			if s.EdgesRead() != int64(m) {
				t.Errorf("m=%d workers=%d: %d reads counted, want %d", m, workers, s.EdgesRead(), m)
			}
		}
	}
}

func TestShardedForEachBatchWrongLength(t *testing.T) {
	edges := shardTestEdges(200)
	for _, workers := range []int{1, 4} {
		for _, m := range []int{199, 201} {
			_, err := ShardedForEachBatch(FromEdges(edges), m, workers,
				func(int, []graph.Edge) error { return nil },
				func(int) error { return nil })
			if err == nil {
				t.Errorf("workers=%d declared m=%d over 200 edges: no error", workers, m)
			}
		}
	}
}

func TestShardedForEachBatchFileStream(t *testing.T) {
	edges := shardTestEdges(30000)
	path := filepath.Join(t.TempDir(), "edges.txt")
	g := graph.FromEdges(0, edges)
	if err := WriteGraphFile(path, g, "shard test"); err != nil {
		t.Fatal(err)
	}
	fs := OpenFile(path)
	defer fs.Close()

	// Before any complete pass the stream has no index: the sharded pass must
	// fall back to the sequential scan (and build the index as it goes).
	if _, ok := fs.RangeStream(0, 0); ok {
		t.Fatal("unindexed FileStream offered range access")
	}
	s := NewPassCounter(fs)
	perShard, order := collectSharded(t, s, len(edges), 4)
	checkShardedResult(t, edges, perShard, order, 4)

	// Now indexed: the same pass must take the parallel path and agree.
	if _, ok := fs.RangeStream(0, 0); !ok {
		t.Fatal("FileStream still unindexed after a complete pass")
	}
	perShard, order = collectSharded(t, s, len(edges), 4)
	checkShardedResult(t, edges, perShard, order, 4)
	if s.Passes() != 2 {
		t.Errorf("%d passes counted, want 2", s.Passes())
	}
	if s.EdgesRead() != int64(2*len(edges)) {
		t.Errorf("%d reads counted, want %d", s.EdgesRead(), 2*len(edges))
	}
}

func TestFileRangeStream(t *testing.T) {
	edges := shardTestEdges(25000)
	path := filepath.Join(t.TempDir(), "edges.txt")
	if err := WriteGraphFile(path, graph.FromEdges(0, edges), "range test"); err != nil {
		t.Fatal(err)
	}
	fs := OpenFile(path)
	defer fs.Close()
	if _, err := CountEdges(fs); err != nil {
		t.Fatal(err)
	}
	// Ranges that straddle index granularity boundaries and file start/end.
	for _, r := range [][2]int{{0, 10}, {1020, 1030}, {1024, 2048}, {24990, 25000}, {0, 25000}, {700, 700}} {
		sub, ok := fs.RangeStream(r[0], r[1])
		if !ok {
			t.Fatalf("RangeStream(%d,%d) unavailable", r[0], r[1])
		}
		got, err := Collect(sub)
		if err != nil {
			t.Fatalf("range [%d,%d): %v", r[0], r[1], err)
		}
		if c, isCloser := sub.(interface{ Close() error }); isCloser {
			c.Close()
		}
		if len(got) != r[1]-r[0] {
			t.Fatalf("range [%d,%d) yielded %d edges", r[0], r[1], len(got))
		}
		for i, e := range got {
			if e != edges[r[0]+i] {
				t.Fatalf("range [%d,%d) edge %d = %v, want %v", r[0], r[1], i, e, edges[r[0]+i])
			}
		}
	}
}

func TestBexRoundTrip(t *testing.T) {
	edges := shardTestEdges(20000)
	dir := t.TempDir()
	path := filepath.Join(dir, "edges.bex")
	if n, err := WriteBexFile(path, FromEdges(edges)); err != nil || n != len(edges) {
		t.Fatalf("WriteBexFile = %d, %v", n, err)
	}
	bs, err := OpenBex(path)
	if err != nil {
		t.Fatal(err)
	}
	defer bs.Close()
	if m, ok := bs.Len(); !ok || m != len(edges) {
		t.Fatalf("Len = %d,%v, want %d,true", m, ok, len(edges))
	}
	got, err := Collect(bs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range edges {
		if got[i] != edges[i] {
			t.Fatalf("edge %d = %v, want %v", i, got[i], edges[i])
		}
	}
	// Sharded pass over the binary stream, all worker counts.
	for _, workers := range []int{1, 4} {
		s := NewPassCounter(bs)
		perShard, order := collectSharded(t, s, len(edges), workers)
		checkShardedResult(t, edges, perShard, order, workers)
	}
	// Range access straight from offsets.
	sub, ok := bs.RangeStream(1234, 1300)
	if !ok {
		t.Fatal("BexStream range unavailable")
	}
	rangeEdges, err := Collect(sub)
	if err != nil {
		t.Fatal(err)
	}
	if len(rangeEdges) != 66 || rangeEdges[0] != edges[1234] {
		t.Fatalf("bex range wrong: %d edges, first %v", len(rangeEdges), rangeEdges[0])
	}
}

func TestOpenAuto(t *testing.T) {
	edges := shardTestEdges(100)
	dir := t.TempDir()
	txt := filepath.Join(dir, "g.txt")
	bex := filepath.Join(dir, "g.bex")
	if err := WriteGraphFile(txt, graph.FromEdges(0, edges), ""); err != nil {
		t.Fatal(err)
	}
	if _, err := WriteBexFile(bex, FromEdges(edges)); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{txt, bex} {
		s, err := OpenAuto(path)
		if err != nil {
			t.Fatalf("OpenAuto(%s): %v", path, err)
		}
		n, err := CountEdges(s)
		s.Close()
		if err != nil || n != len(edges) {
			t.Fatalf("OpenAuto(%s): %d edges, %v", path, n, err)
		}
	}
	// A text file masquerading as .bex must fail cleanly at open.
	fake := filepath.Join(dir, "fake.bex")
	if err := os.WriteFile(fake, []byte("1 2\n3 4\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenAuto(fake); err == nil {
		t.Fatal("OpenAuto accepted a text file with a .bex extension")
	}
}

// TestShardedParallelEmptyShardBurst is the regression test for a token
// deadlock: with a stream short enough that most of the 64-shard grid is
// empty, fast workers used to claim-and-complete the empty tail while an
// earlier real shard's claimer waited for a token the merger could never
// release. Tokens are now acquired before claiming, so the burst cannot
// starve an earlier shard.
func TestShardedParallelEmptyShardBurst(t *testing.T) {
	edges := shardTestEdges(2*8192 + 5) // 3 active shards, 61 empty
	for round := 0; round < 50; round++ {
		s := FromEdges(edges)
		n, err := ShardedForEachBatch(s, len(edges), 8,
			func(int, []graph.Edge) error { return nil },
			func(int) error { return nil })
		if err != nil || n != len(edges) {
			t.Fatalf("round %d: n=%d err=%v", round, n, err)
		}
	}
}
