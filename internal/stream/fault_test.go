package stream

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"

	"degentri/internal/graph"
)

// cappedOpener opens files through handles that report a clean io.EOF once
// the absolute offset reaches limit — a silent short read below the text
// parser, indistinguishable from a well-formed end of file.
func cappedOpener(limit int64) Opener {
	return func(path string) (io.ReadSeekCloser, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		return &cappedHandle{f: f, limit: limit}, nil
	}
}

type cappedHandle struct {
	f     *os.File
	limit int64
}

func (c *cappedHandle) Read(p []byte) (int, error) {
	off, err := c.f.Seek(0, io.SeekCurrent)
	if err != nil {
		return 0, err
	}
	if off >= c.limit {
		return 0, io.EOF
	}
	if int64(len(p)) > c.limit-off {
		p = p[:c.limit-off]
	}
	return c.f.Read(p)
}

func (c *cappedHandle) Seek(offset int64, whence int) (int64, error) {
	return c.f.Seek(offset, whence)
}

func (c *cappedHandle) Close() error { return c.f.Close() }

// TestShortReadDoesNotPoisonIndexCache pins the cache-publication guard: a
// pass whose reader silently drops the file's tail (clean EOF at a line
// boundary — the parser cannot tell) must fail with a transient truncation
// error and must NOT publish its partial position→offset index under the
// file's cache key, or every later open of the healthy file would shard it
// through wrong offsets.
func TestShortReadDoesNotPoisonIndexCache(t *testing.T) {
	edges := make([]graph.Edge, 2*fileIndexGranularity+5)
	for i := range edges {
		edges[i] = graph.Edge{U: i, V: i + 1}
	}
	path := filepath.Join(t.TempDir(), "short.txt")
	writeEdgeFileAt(t, path, edges)

	// Cut at the line boundary after granularity+3 edges, so the capped pass
	// spans at least one full index stride (it has offsets it would love to
	// publish) and ends looking exactly like a complete file.
	cut := fileIndexGranularity + 3
	var limit int64
	for _, e := range edges[:cut] {
		limit += int64(len(fmt.Sprintf("%d %d\n", e.U, e.V)))
	}

	short := OpenFileWith(path, cappedOpener(limit))
	n, err := CountEdges(short)
	if err == nil {
		t.Fatalf("capped pass returned no error (%d edges)", n)
	}
	if !IsTransient(err) || !errors.Is(err, ErrTruncated) {
		t.Fatalf("capped pass error = %v, want transient ErrTruncated", err)
	}
	if _, ok := short.RangeStream(0, 0); ok {
		t.Fatal("capped stream kept range access from an incomplete pass")
	}
	if err := short.Close(); err != nil {
		t.Fatal(err)
	}

	// A fresh open of the (healthy) file must not find a cached index…
	second := OpenFile(path)
	if _, ok := second.RangeStream(0, 0); ok {
		t.Fatal("incomplete pass published an index under the file's cache key")
	}
	// …and a clean pass over it sees every edge.
	if n, err := CountEdges(second); err != nil || n != len(edges) {
		t.Fatalf("clean pass after capped pass: %d, %v (want %d, nil)", n, err, len(edges))
	}
	sub, ok := second.RangeStream(cut-2, cut+2)
	if !ok {
		t.Fatal("range access unavailable after a clean pass")
	}
	got, err := Collect(sub)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range got {
		if want := edges[cut-2+i]; e != want {
			t.Fatalf("range edge %d = %v, want %v", i, e, want)
		}
	}
	if err := second.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestTransientReadRetryHealsCountingPass pins whole-pass retry at the read
// layer: a counting pass whose first attempts die on injected transient
// errors succeeds once the opener heals, and reports the retries it spent.
func TestTransientReadRetryHealsCountingPass(t *testing.T) {
	edges := make([]graph.Edge, 2000)
	for i := range edges {
		edges[i] = graph.Edge{U: i % 101, V: 101 + i%97}
	}
	path := filepath.Join(t.TempDir(), "flaky.txt")
	writeEdgeFileAt(t, path, edges)

	// The handle fails transiently 512 bytes into each of the first two
	// attempts, then behaves; whole-pass retry re-reads from the start.
	flaky := func(path string) (io.ReadSeekCloser, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		return &failingHandle{f: f, after: 512, failures: 2}, nil
	}
	fs := OpenFileWith(path, flaky)
	defer fs.Close()
	n, retries, err := CountEdgesCtx(context.Background(), fs, DefaultRetryPolicy())
	if err != nil {
		t.Fatalf("counting pass did not heal: %v", err)
	}
	if n != len(edges) {
		t.Fatalf("healed pass counted %d edges, want %d", n, len(edges))
	}
	if retries != 2 {
		t.Fatalf("healed pass reported %d retries, want 2", retries)
	}
}

// failingHandle fails transiently once `after` bytes have been read, a
// bounded number of times; rewinding to the start begins a fresh attempt.
type failingHandle struct {
	f        *os.File
	after    int64
	read     int64
	failures int
}

func (h *failingHandle) Read(p []byte) (int, error) {
	if h.failures > 0 {
		if h.read >= h.after {
			h.failures--
			return 0, MarkTransient(errors.New("injected handle failure"))
		}
		if int64(len(p)) > h.after-h.read {
			p = p[:h.after-h.read]
		}
	}
	n, err := h.f.Read(p)
	h.read += int64(n)
	return n, err
}

func (h *failingHandle) Seek(offset int64, whence int) (int64, error) {
	n, err := h.f.Seek(offset, whence)
	if err == nil && whence == io.SeekStart {
		h.read = offset
	}
	return n, err
}

func (h *failingHandle) Close() error { return h.f.Close() }
