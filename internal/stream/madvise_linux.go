//go:build linux

package stream

import "syscall"

// madvise lives in its own linux-gated file rather than mmap_unix.go because
// syscall.Madvise is not portable across every `unix` build target; on those
// platforms (and everywhere without mmap) the hints are no-ops and the
// readers behave identically, just without the readahead.

// madviseSequential marks the mapping for sequential readahead. data must
// start at the mapping base (page-aligned by construction).
func madviseSequential(data []byte) {
	_ = syscall.Madvise(data, syscall.MADV_SEQUENTIAL)
}

// madviseWillNeed asks the kernel to start paging the range in. The caller
// passes a slice whose start is page-aligned within the mapping.
func madviseWillNeed(data []byte) {
	_ = syscall.Madvise(data, syscall.MADV_WILLNEED)
}
