package stream

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"strings"

	"degentri/internal/graph"
)

// The .bex binary edge format: a 16-byte header ("BEX1" magic, a reserved
// uint32, then the edge count as a length prefix) followed by count records
// of two little-endian int32 vertex IDs. Fixed-width records make the format
// both fast to parse (8 bytes per edge, no text scanning) and trivially
// random-accessible: edge i lives at byte 16+8i, so BexStream supports
// RangeStream natively and sharded passes read a .bex file with concurrent
// workers and zero skip cost. cmd/graphgen converts between text edge lists
// and .bex.
const (
	bexMagic      = "BEX1"
	bexHeaderSize = 16
	bexRecordSize = 8
	// BexExt is the file extension OpenAuto dispatches on.
	BexExt = ".bex"
	// bexBatchBytes is the read granularity of a BexStream pass: 32K edges
	// (256 KiB) per read keeps the decode loop hot without large buffers.
	bexBatchEdges = 32 * 1024
)

// WriteBex writes the stream to w in .bex format and returns the number of
// edges written. The stream length need not be known up front when w is
// seekable (the length prefix is patched afterwards); for non-seekable
// writers the stream must know its length.
func WriteBex(w io.Writer, s Stream) (int, error) {
	m, known := s.Len()
	seeker, seekable := w.(io.WriteSeeker)
	if !known && !seekable {
		return 0, fmt.Errorf("stream: .bex needs a known length or a seekable writer")
	}
	// Record where the header lands so the length prefix can be patched even
	// when the writer is not positioned at the start of its file (appending
	// a .bex section to a container file, for example). Patching at absolute
	// offset 0 would corrupt whatever the caller wrote before us.
	var base int64
	if seekable {
		off, err := seeker.Seek(0, io.SeekCurrent)
		if err != nil {
			if !known {
				return 0, fmt.Errorf("stream: .bex base offset: %w", err)
			}
			seekable = false
		} else {
			base = off
		}
	}
	header := make([]byte, bexHeaderSize)
	copy(header, bexMagic)
	binary.LittleEndian.PutUint64(header[8:], uint64(m))
	if _, err := w.Write(header); err != nil {
		return 0, err
	}
	buf := make([]byte, 0, bexRecordSize*4096)
	n, err := ForEachBatch(s, func(batch []graph.Edge) error {
		buf = buf[:0]
		for _, e := range batch {
			if e.U < 0 || e.V < 0 || e.U > 1<<31-1 || e.V > 1<<31-1 {
				return fmt.Errorf("stream: edge %v does not fit int32 .bex records", e)
			}
			buf = binary.LittleEndian.AppendUint32(buf, uint32(e.U))
			buf = binary.LittleEndian.AppendUint32(buf, uint32(e.V))
		}
		_, werr := w.Write(buf)
		return werr
	})
	if err != nil {
		return n, err
	}
	if n != m {
		if !seekable {
			return n, fmt.Errorf("stream: .bex length prefix %d but stream held %d edges", m, n)
		}
		if _, err := seeker.Seek(base, io.SeekStart); err != nil {
			return n, err
		}
		binary.LittleEndian.PutUint64(header[8:], uint64(n))
		if _, err := w.Write(header); err != nil {
			return n, err
		}
		// Reposition to the end of the records just written (not SeekEnd:
		// the caller's file may extend past our section).
		if _, err := seeker.Seek(base+bexHeaderSize+int64(n)*bexRecordSize, io.SeekStart); err != nil {
			return n, err
		}
	}
	return n, nil
}

// WriteBexFile writes the stream to a .bex file at path.
func WriteBexFile(path string, s Stream) (int, error) {
	file, err := os.Create(path)
	if err != nil {
		return 0, fmt.Errorf("stream: create %s: %w", path, err)
	}
	n, werr := WriteBex(file, s)
	cerr := file.Close()
	if werr != nil {
		return n, werr
	}
	return n, cerr
}

// BexStream streams edges from a .bex file. The edge count is known from the
// header without a pass, and contiguous position ranges are directly
// addressable, so BexStream is the preferred on-disk format for sharded
// passes.
type BexStream struct {
	path   string
	file   *os.File
	m      int
	pos    int
	active bool
	raw    []byte
	batch  []graph.Edge
}

// OpenBex opens a .bex file, validating the header eagerly (unlike OpenFile,
// a malformed file fails at open time): bad magic, an implausible count, or a
// file size that disagrees with the count (a truncated download, a lying
// header) are all reported here rather than as a mid-pass truncation error on
// edge k.
func OpenBex(path string) (*BexStream, error) {
	file, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("stream: open %s: %w", path, err)
	}
	m, err := readBexHeader(file, path)
	if err != nil {
		file.Close()
		return nil, err
	}
	if info, serr := file.Stat(); serr == nil && info.Mode().IsRegular() {
		want := int64(bexHeaderSize) + int64(m)*bexRecordSize
		if info.Size() != want {
			file.Close()
			return nil, fmt.Errorf("stream: %s: header declares %d edges (%d bytes) but the file holds %d bytes: %w",
				path, m, want, info.Size(), ErrCorruptHeader)
		}
	}
	return &BexStream{path: path, file: file, m: m}, nil
}

func readBexHeader(file *os.File, path string) (int, error) {
	header := make([]byte, bexHeaderSize)
	if _, err := io.ReadFull(file, header); err != nil {
		return 0, fmt.Errorf("stream: %s: reading .bex header: %w (%w)", path, err, ErrCorruptHeader)
	}
	if string(header[:4]) != bexMagic {
		return 0, fmt.Errorf("stream: %s: not a .bex file (bad magic %q): %w", path, header[:4], ErrCorruptHeader)
	}
	count := binary.LittleEndian.Uint64(header[8:])
	if count > 1<<56 {
		return 0, fmt.Errorf("stream: %s: implausible .bex edge count %d: %w", path, count, ErrCorruptHeader)
	}
	return int(count), nil
}

// Reset implements Stream.
func (b *BexStream) Reset() error {
	if b.file == nil {
		file, err := os.Open(b.path)
		if err != nil {
			return fmt.Errorf("stream: open %s: %w", b.path, err)
		}
		b.file = file
	}
	if _, err := b.file.Seek(bexHeaderSize, io.SeekStart); err != nil {
		return fmt.Errorf("stream: rewind %s: %w", b.path, err)
	}
	b.pos = 0
	b.active = true
	return nil
}

// Next implements Stream.
func (b *BexStream) Next() (graph.Edge, error) {
	if !b.active {
		return graph.Edge{}, ErrNoPass
	}
	if b.pos >= b.m {
		return graph.Edge{}, ErrEndOfPass
	}
	var rec [bexRecordSize]byte
	if _, err := io.ReadFull(b.file, rec[:]); err != nil {
		return graph.Edge{}, fmt.Errorf("stream: %s truncated at edge %d: %w (%w)", b.path, b.pos, err, ErrTruncated)
	}
	b.pos++
	return decodeBexRecord(rec[:]), nil
}

// NextBatch implements Stream.
func (b *BexStream) NextBatch(buf []graph.Edge) ([]graph.Edge, error) {
	if !b.active {
		return nil, ErrNoPass
	}
	if b.pos >= b.m {
		return nil, ErrEndOfPass
	}
	want := b.m - b.pos
	if len(buf) == 0 {
		if b.batch == nil {
			b.batch = make([]graph.Edge, bexBatchEdges)
		}
		buf = b.batch
	}
	if want > len(buf) {
		want = len(buf)
	}
	if cap(b.raw) < want*bexRecordSize {
		b.raw = make([]byte, want*bexRecordSize)
	}
	raw := b.raw[:want*bexRecordSize]
	if _, err := io.ReadFull(b.file, raw); err != nil {
		return nil, fmt.Errorf("stream: %s truncated at edge %d: %w (%w)", b.path, b.pos, err, ErrTruncated)
	}
	for i := 0; i < want; i++ {
		buf[i] = decodeBexRecord(raw[i*bexRecordSize:])
	}
	b.pos += want
	return buf[:want], nil
}

func decodeBexRecord(rec []byte) graph.Edge {
	return graph.Edge{
		U: int(int32(binary.LittleEndian.Uint32(rec))),
		V: int(int32(binary.LittleEndian.Uint32(rec[4:]))),
	}
}

// Len implements Stream; a .bex stream always knows its length.
func (b *BexStream) Len() (int, bool) { return b.m, true }

// RangeStream implements RangeStreamer with pure offset arithmetic.
func (b *BexStream) RangeStream(lo, hi int) (Stream, bool) {
	if lo < 0 || hi < lo || hi > b.m {
		return nil, false
	}
	return &bexRange{path: b.path, lo: lo, hi: hi}, true
}

// Close releases the file handle; the stream can be Reset afterwards.
func (b *BexStream) Close() error {
	if b.file == nil {
		return nil
	}
	err := b.file.Close()
	b.file = nil
	b.active = false
	return err
}

// bexRange is an independent stream over edge positions [lo, hi) of a .bex
// file with its own file handle.
type bexRange struct {
	path   string
	lo, hi int
	file   *os.File
	pos    int
	active bool
	raw    []byte
	batch  []graph.Edge
}

// Reset implements Stream.
func (r *bexRange) Reset() error {
	r.pos = r.lo
	r.active = true
	if r.lo == r.hi {
		return nil
	}
	if r.file == nil {
		file, err := os.Open(r.path)
		if err != nil {
			return fmt.Errorf("stream: open %s: %w", r.path, err)
		}
		r.file = file
	}
	if _, err := r.file.Seek(bexHeaderSize+int64(r.lo)*bexRecordSize, io.SeekStart); err != nil {
		return fmt.Errorf("stream: seek %s: %w", r.path, err)
	}
	return nil
}

// Next implements Stream.
func (r *bexRange) Next() (graph.Edge, error) {
	if !r.active {
		return graph.Edge{}, ErrNoPass
	}
	if r.pos >= r.hi {
		return graph.Edge{}, ErrEndOfPass
	}
	var rec [bexRecordSize]byte
	if _, err := io.ReadFull(r.file, rec[:]); err != nil {
		return graph.Edge{}, fmt.Errorf("stream: %s truncated at edge %d: %w (%w)", r.path, r.pos, err, ErrTruncated)
	}
	r.pos++
	return decodeBexRecord(rec[:]), nil
}

// NextBatch implements Stream.
func (r *bexRange) NextBatch(buf []graph.Edge) ([]graph.Edge, error) {
	if !r.active {
		return nil, ErrNoPass
	}
	if r.pos >= r.hi {
		return nil, ErrEndOfPass
	}
	want := r.hi - r.pos
	if len(buf) == 0 {
		if r.batch == nil {
			r.batch = make([]graph.Edge, bexBatchEdges)
		}
		buf = r.batch
	}
	if want > len(buf) {
		want = len(buf)
	}
	if cap(r.raw) < want*bexRecordSize {
		r.raw = make([]byte, want*bexRecordSize)
	}
	raw := r.raw[:want*bexRecordSize]
	if _, err := io.ReadFull(r.file, raw); err != nil {
		return nil, fmt.Errorf("stream: %s truncated at edge %d: %w (%w)", r.path, r.pos, err, ErrTruncated)
	}
	for i := 0; i < want; i++ {
		buf[i] = decodeBexRecord(raw[i*bexRecordSize:])
	}
	r.pos += want
	return buf[:want], nil
}

// Len implements Stream.
func (r *bexRange) Len() (int, bool) { return r.hi - r.lo, true }

// Close releases the range's file handle.
func (r *bexRange) Close() error {
	if r.file == nil {
		return nil
	}
	err := r.file.Close()
	r.file = nil
	r.active = false
	return err
}

// Backend implements Backender.
func (b *BexStream) Backend() string { return BackendBex1 }

// FileBacked is a file-backed edge stream that must eventually be closed.
type FileBacked interface {
	Stream
	Close() error
}

// OpenAuto opens an edge file as whatever format it actually is: a
// directory (or the .bexd extension) gets the sharded multi-file reader,
// files are sniffed by magic — "BEX1" gets the flat v1 reader, "BEX2" the
// block-indexed v2 reader — and anything else the text parser. Dispatch is
// by content first and extension second, so a v2 file named plain .bex and
// a v1 file written by an old tool both open correctly. The text path
// defers errors to the first Reset, matching OpenFile.
func OpenAuto(path string) (FileBacked, error) {
	return OpenAutoPrefer(path, false)
}

// OpenAutoPrefer is OpenAuto with a reader preference: when mmap is true,
// .bex v2 files (including the parts behind a .bexd directory) are served
// by the mmap-backed reader instead of buffered positioned reads. Formats
// with no mmap reader (text, v1) ignore the preference.
func OpenAutoPrefer(path string, mmap bool) (FileBacked, error) {
	return OpenAutoOpts(path, OpenOptions{PreferMmap: mmap})
}

// OpenOptions configure how OpenAutoOpts serves a file. The zero value is
// OpenAuto's behavior: buffered reads, no decoded-block cache.
type OpenOptions struct {
	// PreferMmap serves .bex v2 containers (and .bexd parts) through the
	// mmap-backed reader instead of buffered positioned reads.
	PreferMmap bool
	// DecodeCache lets the v2-family readers serve repeat block reads from
	// the process-wide decoded-block cache (see SetDecodeCacheBudget):
	// multi-pass scans of the same file skip decode entirely after the
	// first pass. Results are bit-identical with the cache on or off.
	DecodeCache bool
}

// OpenAutoOpts is OpenAuto with explicit reader options.
func OpenAutoOpts(path string, o OpenOptions) (FileBacked, error) {
	if info, err := os.Stat(path); err == nil && info.IsDir() {
		return openBexdOpts(path, o.PreferMmap, o.DecodeCache)
	}
	if strings.HasSuffix(strings.ToLower(path), BexdExt) {
		return openBexdOpts(path, o.PreferMmap, o.DecodeCache)
	}
	switch sniffMagic(path) {
	case bexMagic:
		return OpenBex(path)
	case bex2Magic:
		if o.PreferMmap {
			return openBexMapCache(path, o.DecodeCache)
		}
		return openBex2Cache(path, o.DecodeCache)
	}
	if strings.HasSuffix(strings.ToLower(path), BexExt) {
		// The .bex extension with an unrecognized magic: let OpenBex report
		// the corrupt-header diagnosis instead of parsing binary as text.
		return OpenBex(path)
	}
	return OpenFile(path), nil
}

// sniffMagic reads the first four bytes of path; it returns "" when the file
// cannot be read or is shorter than a magic (both are the text parser's
// problem to diagnose).
func sniffMagic(path string) string {
	file, err := os.Open(path)
	if err != nil {
		return ""
	}
	defer file.Close()
	var magic [4]byte
	if _, err := io.ReadFull(file, magic[:]); err != nil {
		return ""
	}
	return string(magic[:])
}
