package stream

import (
	"context"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"degentri/internal/graph"
)

// This file is the sharded pass engine: one logical pass over a stream is
// partitioned into a fixed grid of NumShards contiguous position ranges that
// can be processed by a bounded worker pool, with per-shard results merged in
// ascending shard order. The grid is fixed — independent of the worker count
// and of GOMAXPROCS — so that any state whose randomness is keyed by shard
// index (see sampling.MixSeed) produces bit-identical results at any worker
// count, including the workers == 1 sequential fallback. The engine is what
// lets a *single* estimator run scale with cores while keeping the golden
// determinism contract.

// NumShards bounds the logical shard grid of a sharded pass. The grid for a
// concrete pass is ActiveShards(m) contiguous ranges — a pure function of the
// stream length, independent of the worker count and of GOMAXPROCS, which is
// what keys the per-shard RNG streams and so keeps estimates bit-identical at
// any parallelism. 64 shards keep every core busy on any realistic machine
// while bounding the merge chain at a constant.
const NumShards = 64

// shardTargetEdges is the minimum shard size worth its bookkeeping: per-shard
// reservoir state, merges, and pool traffic amortize over at least this many
// edges. Streams shorter than 2× this run as one shard (purely sequential).
const shardTargetEdges = 8192

// ActiveShards returns the number of non-empty shards in the grid for a pass
// of m edges: ⌈m/shardTargetEdges⌉ capped at NumShards. Shards with index >=
// ActiveShards(m) are empty.
func ActiveShards(m int) int {
	a := (m + shardTargetEdges - 1) / shardTargetEdges
	if a < 1 {
		a = 1
	}
	if a > NumShards {
		a = NumShards
	}
	return a
}

// ShardRange returns the position range [lo, hi) of the given shard for a
// pass of m edges. Shards beyond ActiveShards(m) are empty.
func ShardRange(m, shard int) (lo, hi int) {
	a := ActiveShards(m)
	if shard >= a {
		return m, m
	}
	return shard * m / a, (shard + 1) * m / a
}

// RangeStreamer is implemented by streams that can open independent
// sub-streams over contiguous position ranges of a pass. The sub-streams may
// be read concurrently with each other (each from its own goroutine).
type RangeStreamer interface {
	Stream
	// RangeStream returns a fresh stream over positions [lo, hi) of the pass,
	// or ok == false when range access is currently unavailable (for example
	// a file stream that has not yet completed the indexing pass). A returned
	// stream must be Reset before use; if it implements io.Closer the caller
	// is responsible for closing it.
	RangeStream(lo, hi int) (Stream, bool)
}

// ShardedForEachBatch runs one logical pass over a stream of exactly m edges,
// partitioned into the NumShards grid. For every batch of edges it invokes
// process(shard, batch) with batches that never straddle a shard boundary;
// after all batches of shard k have been processed, merge(k) is invoked.
// merge is called exactly once per shard, in ascending shard order (including
// for empty shards), from a single goroutine.
//
// When workers > 1 and the stream supports range access, shards are processed
// concurrently on a pool of `workers` goroutines: all process calls of one
// shard happen sequentially on one worker, process calls of different shards
// may be concurrent, and every process call of shard k happens before
// merge(k). The number of shards whose state is live at once (processed or
// processing but not yet merged) is bounded by workers+2, so per-shard
// scratch can be pooled. With workers <= 1, without range support, or when
// m < NumShards, the pass degrades to a single sequential scan that makes the
// exact same process/merge calls in the same per-shard order — the results
// are identical by construction, only the interleaving changes.
//
// The pass counts as one pass on a PassCounter (one Reset), like ForEachBatch.
// It returns the number of edges seen and errors if that differs from m.
func ShardedForEachBatch(
	s Stream,
	m, workers int,
	process func(shard int, batch []graph.Edge) error,
	merge func(shard int) error,
) (int, error) {
	n, _, err := ShardedScan(context.Background(), s, m, workers, RetryPolicy{}, process, merge)
	return n, err
}

// ShardedScan is ShardedForEachBatch with a cancellation context and a
// transient-I/O retry policy. The context is checked at every batch boundary:
// a cancelled or deadline-expired scan stops within one batch and returns the
// context's error wrapped with the stream position it reached. When retry is
// enabled, a read that fails with a transient error (IsTransient) is resumed
// at the exact position it broke — the failing reader is replaced by a fresh
// RangeStream over the undelivered remainder — after the policy's backoff;
// process and merge never observe a duplicated or missing edge, so a healed
// scan is bit-identical to an undisturbed one. Transient Reset failures are
// likewise retried (nothing has been delivered yet). retries reports how many
// such recoveries the scan performed.
//
// Mid-scan resume needs position addressability: on a stream without range
// access (a text file's very first pass) a transient read error propagates to
// the caller, wrapped transient so a state-free caller may re-run the whole
// pass itself.
func ShardedScan(
	ctx context.Context,
	s Stream,
	m, workers int,
	retry RetryPolicy,
	process func(shard int, batch []graph.Edge) error,
	merge func(shard int) error,
) (count, retries int, err error) {
	if m < 0 {
		return 0, 0, fmt.Errorf("stream: sharded pass with negative m = %d", m)
	}
	if known, ok := s.Len(); ok && known != m {
		return 0, 0, fmt.Errorf("stream: sharded pass declared %d edges but the stream holds %d", m, known)
	}
	if workers > 1 && ActiveShards(m) > 1 {
		if rs, ok := s.(RangeStreamer); ok {
			if _, avail := rs.RangeStream(0, 0); avail {
				return shardedParallel(ctx, rs, m, workers, retry, process, merge)
			}
		}
	}
	return shardedSequential(ctx, s, m, retry, process, merge)
}

// resetWithRetry begins a pass, retrying transient Reset failures under the
// policy (a failed Reset has delivered nothing, so re-running it is free).
func resetWithRetry(ctx context.Context, s Stream, retry RetryPolicy) (retries int, err error) {
	for attempt := 0; ; attempt++ {
		if cerr := ctx.Err(); cerr != nil {
			return retries, posErr(ctx, 0, 0)
		}
		err = s.Reset()
		if err == nil || !retry.Enabled() || attempt >= retry.MaxAttempts || !IsTransient(err) {
			return retries, err
		}
		if serr := retry.sleep(ctx, attempt); serr != nil {
			return retries, posErr(ctx, 0, 0)
		}
		retries++
	}
}

// resumeAt replaces a reader whose read failed transiently with a fresh
// sub-stream over the undelivered remainder [pos, m) of src. It returns
// ok=false when src cannot address positions (no range access).
func resumeAt(src Stream, pos, m int) (Stream, bool) {
	rs, ok := src.(RangeStreamer)
	if !ok {
		return nil, false
	}
	sub, ok := rs.RangeStream(pos, m)
	if !ok {
		return nil, false
	}
	return sub, true
}

// shardedSequential is the single-scan path: one Reset, batches split at
// shard boundaries, merge(k) as soon as shard k's range has been consumed.
// Transient read failures resume on a range sub-stream over the remainder
// when the source supports it.
func shardedSequential(
	ctx context.Context,
	s Stream,
	m int,
	retry RetryPolicy,
	process func(shard int, batch []graph.Edge) error,
	merge func(shard int) error,
) (int, int, error) {
	retries, err := resetWithRetry(ctx, s, retry)
	if err != nil {
		return 0, retries, err
	}
	count := 0
	shard := 0
	_, hi := ShardRange(m, 0)
	cur := s // the reader currently delivering edges: s, or a resume range
	var curCloser io.Closer
	closeCur := func() {
		if curCloser != nil {
			curCloser.Close()
			curCloser = nil
		}
	}
	defer closeCur()
	failStreak := 0 // consecutive transient failures without progress
	for {
		if cerr := ctx.Err(); cerr != nil {
			return count, retries, posErr(ctx, count, m)
		}
		batch, err := cur.NextBatch(nil)
		if err == ErrEndOfPass {
			break
		}
		if err != nil {
			if retry.Enabled() && failStreak < retry.MaxAttempts && IsTransient(err) {
				if serr := retry.sleep(ctx, failStreak); serr != nil {
					return count, retries, posErr(ctx, count, m)
				}
				if sub, ok := resumeAt(s, count, m); ok {
					failStreak++
					rr, rerr := resetWithRetry(ctx, sub, retry)
					retries += rr + 1
					if rerr == nil {
						closeCur()
						cur = sub
						if c, isCloser := sub.(io.Closer); isCloser {
							curCloser = c
						}
						continue
					}
					err = rerr
				}
			}
			return count, retries, err
		}
		failStreak = 0
		for len(batch) > 0 {
			for count >= hi && shard < NumShards-1 {
				if err := merge(shard); err != nil {
					return count, retries, err
				}
				shard++
				_, hi = ShardRange(m, shard)
			}
			take := len(batch)
			if room := hi - count; take > room {
				take = room
			}
			if take == 0 {
				// Only possible in the last shard: the stream is longer than m.
				return count, retries, fmt.Errorf("stream: sharded pass saw more than the declared %d edges", m)
			}
			if err := process(shard, batch[:take]); err != nil {
				return count, retries, err
			}
			count += take
			batch = batch[take:]
		}
	}
	if count != m {
		return count, retries, fmt.Errorf("stream: sharded pass saw %d edges, expected %d: %w", count, m, ErrTruncated)
	}
	for ; shard < NumShards; shard++ {
		if err := merge(shard); err != nil {
			return count, retries, err
		}
	}
	return count, retries, nil
}

// shardedParallel fans the shard grid out over a bounded worker pool and
// merges completed shards in order on the calling goroutine.
func shardedParallel(
	ctx context.Context,
	rs RangeStreamer,
	m, workers int,
	retry RetryPolicy,
	process func(shard int, batch []graph.Edge) error,
	merge func(shard int) error,
) (int, int, error) {
	// One Reset so a PassCounter charges one logical pass; the actual reads
	// go through the per-shard range streams.
	resetRetries, err := resetWithRetry(ctx, rs, retry)
	if err != nil {
		return 0, resetRetries, err
	}
	var retryCount atomic.Int64
	retryCount.Store(int64(resetRetries))
	if a := ActiveShards(m); workers > a {
		workers = a
	}

	type shardDone struct {
		n   int
		err error
	}
	done := make([]chan shardDone, NumShards)
	for k := range done {
		done[k] = make(chan shardDone, 1)
	}
	// inFlight bounds the shards that hold live state at once: a worker must
	// acquire a token before touching a shard and the merger releases it only
	// after merging, so at most workers+2 per-shard scratch states exist.
	inFlight := make(chan struct{}, workers+2)
	var next atomic.Int64
	var cancelled atomic.Bool

	runShard := func(k int) (int, error) {
		lo, hi := ShardRange(m, k)
		if lo == hi {
			return 0, nil
		}
		// open positions the shard's reader at absolute position lo+n; a
		// transient failure mid-shard re-opens at the exact resume point.
		var sub Stream
		var subCloser io.Closer
		closeSub := func() {
			if subCloser != nil {
				subCloser.Close()
				subCloser = nil
			}
		}
		defer closeSub()
		open := func(from int) error {
			closeSub()
			s, ok := rs.RangeStream(from, hi)
			if !ok {
				return fmt.Errorf("stream: range access for shard %d withdrawn mid-pass", k)
			}
			sub = s
			if c, isCloser := s.(io.Closer); isCloser {
				subCloser = c
			}
			rr, err := resetWithRetry(ctx, s, retry)
			retryCount.Add(int64(rr))
			return err
		}
		if err := open(lo); err != nil {
			return 0, err
		}
		n := 0
		failStreak := 0
		for {
			if cerr := ctx.Err(); cerr != nil {
				return n, posErr(ctx, lo+n, m)
			}
			batch, err := sub.NextBatch(nil)
			if err == ErrEndOfPass {
				return n, nil
			}
			if err != nil {
				if retry.Enabled() && failStreak < retry.MaxAttempts && IsTransient(err) {
					if serr := retry.sleep(ctx, failStreak); serr != nil {
						return n, posErr(ctx, lo+n, m)
					}
					failStreak++
					retryCount.Add(1)
					if rerr := open(lo + n); rerr == nil {
						continue
					}
				}
				return n, err
			}
			failStreak = 0
			if err := process(k, batch); err != nil {
				return n, err
			}
			n += len(batch)
			if cancelled.Load() {
				return n, nil
			}
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				// Acquire the token BEFORE claiming a shard index. This
				// ordering is what makes the protocol deadlock-free: every
				// claimed-but-unmerged shard holds a token, and claims are
				// issued in ascending order, so the shard the merger is
				// waiting on is always claimed (and hence completed) before
				// later shards can exhaust the tokens. Claiming first would
				// let a burst of instantly-completed later shards starve an
				// earlier claimer of tokens while the merger waits on it.
				inFlight <- struct{}{}
				k := int(next.Add(1)) - 1
				if k >= NumShards {
					<-inFlight // return the unused token
					return
				}
				if cancelled.Load() {
					done[k] <- shardDone{}
					continue
				}
				n, err := runShard(k)
				if err != nil {
					cancelled.Store(true)
				}
				done[k] <- shardDone{n: n, err: err}
			}
		}()
	}

	// Merge in shard order on this goroutine. On error, keep draining the
	// remaining shards (and releasing tokens) so no worker blocks forever.
	count := 0
	var firstErr error
	for k := 0; k < NumShards; k++ {
		d := <-done[k]
		if firstErr == nil {
			count += d.n
			switch {
			case d.err != nil:
				firstErr = d.err
			default:
				if err := merge(k); err != nil {
					firstErr = err
					cancelled.Store(true)
				}
			}
		}
		<-inFlight
	}
	wg.Wait()
	if firstErr != nil {
		return count, int(retryCount.Load()), firstErr
	}
	if count != m {
		return count, int(retryCount.Load()), fmt.Errorf("stream: sharded pass saw %d edges, expected %d: %w", count, m, ErrTruncated)
	}
	return count, int(retryCount.Load()), nil
}

// ShardPool is a tiny free list for the per-shard scratch state of a sharded
// pass. The engine bounds live shards at workers+2, so the pool never grows
// past that; pooling matters because a pass allocates one state per shard and
// 64 fresh instance-sized arrays per pass is measurable garbage.
type ShardPool[T any] struct {
	mu    sync.Mutex
	free  []T
	alloc func() T
	reset func(T)
}

// NewShardPool builds a pool; alloc creates a state, reset readies a used one
// for reuse (reset may be nil when no cleanup is needed).
func NewShardPool[T any](alloc func() T, reset func(T)) *ShardPool[T] {
	return &ShardPool[T]{alloc: alloc, reset: reset}
}

// Get returns a fresh or recycled state.
func (p *ShardPool[T]) Get() T {
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		v := p.free[n-1]
		p.free = p.free[:n-1]
		p.mu.Unlock()
		return v
	}
	p.mu.Unlock()
	return p.alloc()
}

// Put recycles a state after resetting it.
func (p *ShardPool[T]) Put(v T) {
	if p.reset != nil {
		p.reset(v)
	}
	p.mu.Lock()
	p.free = append(p.free, v)
	p.mu.Unlock()
}
