package stream

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"degentri/internal/graph"
)

// This file is the sharded pass engine: one logical pass over a stream is
// partitioned into a fixed grid of NumShards contiguous position ranges that
// can be processed by a bounded worker pool, with per-shard results merged in
// ascending shard order. The grid is fixed — independent of the worker count
// and of GOMAXPROCS — so that any state whose randomness is keyed by shard
// index (see sampling.MixSeed) produces bit-identical results at any worker
// count, including the workers == 1 sequential fallback. The engine is what
// lets a *single* estimator run scale with cores while keeping the golden
// determinism contract.

// NumShards bounds the logical shard grid of a sharded pass. The grid for a
// concrete pass is ActiveShards(m) contiguous ranges — a pure function of the
// stream length, independent of the worker count and of GOMAXPROCS, which is
// what keys the per-shard RNG streams and so keeps estimates bit-identical at
// any parallelism. 64 shards keep every core busy on any realistic machine
// while bounding the merge chain at a constant.
const NumShards = 64

// shardTargetEdges is the minimum shard size worth its bookkeeping: per-shard
// reservoir state, merges, and pool traffic amortize over at least this many
// edges. Streams shorter than 2× this run as one shard (purely sequential).
const shardTargetEdges = 8192

// ActiveShards returns the number of non-empty shards in the grid for a pass
// of m edges: ⌈m/shardTargetEdges⌉ capped at NumShards. Shards with index >=
// ActiveShards(m) are empty.
func ActiveShards(m int) int {
	a := (m + shardTargetEdges - 1) / shardTargetEdges
	if a < 1 {
		a = 1
	}
	if a > NumShards {
		a = NumShards
	}
	return a
}

// ShardRange returns the position range [lo, hi) of the given shard for a
// pass of m edges. Shards beyond ActiveShards(m) are empty.
func ShardRange(m, shard int) (lo, hi int) {
	a := ActiveShards(m)
	if shard >= a {
		return m, m
	}
	return shard * m / a, (shard + 1) * m / a
}

// RangeStreamer is implemented by streams that can open independent
// sub-streams over contiguous position ranges of a pass. The sub-streams may
// be read concurrently with each other (each from its own goroutine).
type RangeStreamer interface {
	Stream
	// RangeStream returns a fresh stream over positions [lo, hi) of the pass,
	// or ok == false when range access is currently unavailable (for example
	// a file stream that has not yet completed the indexing pass). A returned
	// stream must be Reset before use; if it implements io.Closer the caller
	// is responsible for closing it.
	RangeStream(lo, hi int) (Stream, bool)
}

// ShardedForEachBatch runs one logical pass over a stream of exactly m edges,
// partitioned into the NumShards grid. For every batch of edges it invokes
// process(shard, batch) with batches that never straddle a shard boundary;
// after all batches of shard k have been processed, merge(k) is invoked.
// merge is called exactly once per shard, in ascending shard order (including
// for empty shards), from a single goroutine.
//
// When workers > 1 and the stream supports range access, shards are processed
// concurrently on a pool of `workers` goroutines: all process calls of one
// shard happen sequentially on one worker, process calls of different shards
// may be concurrent, and every process call of shard k happens before
// merge(k). The number of shards whose state is live at once (processed or
// processing but not yet merged) is bounded by workers+2, so per-shard
// scratch can be pooled. With workers <= 1, without range support, or when
// m < NumShards, the pass degrades to a single sequential scan that makes the
// exact same process/merge calls in the same per-shard order — the results
// are identical by construction, only the interleaving changes.
//
// The pass counts as one pass on a PassCounter (one Reset), like ForEachBatch.
// It returns the number of edges seen and errors if that differs from m.
func ShardedForEachBatch(
	s Stream,
	m, workers int,
	process func(shard int, batch []graph.Edge) error,
	merge func(shard int) error,
) (int, error) {
	if m < 0 {
		return 0, fmt.Errorf("stream: sharded pass with negative m = %d", m)
	}
	if known, ok := s.Len(); ok && known != m {
		return 0, fmt.Errorf("stream: sharded pass declared %d edges but the stream holds %d", m, known)
	}
	if workers > 1 && ActiveShards(m) > 1 {
		if rs, ok := s.(RangeStreamer); ok {
			if _, avail := rs.RangeStream(0, 0); avail {
				return shardedParallel(rs, m, workers, process, merge)
			}
		}
	}
	return shardedSequential(s, m, process, merge)
}

// shardedSequential is the single-scan path: one Reset, batches split at
// shard boundaries, merge(k) as soon as shard k's range has been consumed.
func shardedSequential(
	s Stream,
	m int,
	process func(shard int, batch []graph.Edge) error,
	merge func(shard int) error,
) (int, error) {
	if err := s.Reset(); err != nil {
		return 0, err
	}
	count := 0
	shard := 0
	_, hi := ShardRange(m, 0)
	for {
		batch, err := s.NextBatch(nil)
		if err == ErrEndOfPass {
			break
		}
		if err != nil {
			return count, err
		}
		for len(batch) > 0 {
			for count >= hi && shard < NumShards-1 {
				if err := merge(shard); err != nil {
					return count, err
				}
				shard++
				_, hi = ShardRange(m, shard)
			}
			take := len(batch)
			if room := hi - count; take > room {
				take = room
			}
			if take == 0 {
				// Only possible in the last shard: the stream is longer than m.
				return count, fmt.Errorf("stream: sharded pass saw more than the declared %d edges", m)
			}
			if err := process(shard, batch[:take]); err != nil {
				return count, err
			}
			count += take
			batch = batch[take:]
		}
	}
	if count != m {
		return count, fmt.Errorf("stream: sharded pass saw %d edges, expected %d", count, m)
	}
	for ; shard < NumShards; shard++ {
		if err := merge(shard); err != nil {
			return count, err
		}
	}
	return count, nil
}

// shardedParallel fans the shard grid out over a bounded worker pool and
// merges completed shards in order on the calling goroutine.
func shardedParallel(
	rs RangeStreamer,
	m, workers int,
	process func(shard int, batch []graph.Edge) error,
	merge func(shard int) error,
) (int, error) {
	// One Reset so a PassCounter charges one logical pass; the actual reads
	// go through the per-shard range streams.
	if err := rs.Reset(); err != nil {
		return 0, err
	}
	if a := ActiveShards(m); workers > a {
		workers = a
	}

	type shardDone struct {
		n   int
		err error
	}
	done := make([]chan shardDone, NumShards)
	for k := range done {
		done[k] = make(chan shardDone, 1)
	}
	// inFlight bounds the shards that hold live state at once: a worker must
	// acquire a token before touching a shard and the merger releases it only
	// after merging, so at most workers+2 per-shard scratch states exist.
	inFlight := make(chan struct{}, workers+2)
	var next atomic.Int64
	var cancelled atomic.Bool

	runShard := func(k int) (int, error) {
		lo, hi := ShardRange(m, k)
		if lo == hi {
			return 0, nil
		}
		sub, ok := rs.RangeStream(lo, hi)
		if !ok {
			return 0, fmt.Errorf("stream: range access for shard %d withdrawn mid-pass", k)
		}
		if c, isCloser := sub.(io.Closer); isCloser {
			defer c.Close()
		}
		if err := sub.Reset(); err != nil {
			return 0, err
		}
		n := 0
		for {
			batch, err := sub.NextBatch(nil)
			if err == ErrEndOfPass {
				return n, nil
			}
			if err != nil {
				return n, err
			}
			if err := process(k, batch); err != nil {
				return n, err
			}
			n += len(batch)
			if cancelled.Load() {
				return n, nil
			}
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				// Acquire the token BEFORE claiming a shard index. This
				// ordering is what makes the protocol deadlock-free: every
				// claimed-but-unmerged shard holds a token, and claims are
				// issued in ascending order, so the shard the merger is
				// waiting on is always claimed (and hence completed) before
				// later shards can exhaust the tokens. Claiming first would
				// let a burst of instantly-completed later shards starve an
				// earlier claimer of tokens while the merger waits on it.
				inFlight <- struct{}{}
				k := int(next.Add(1)) - 1
				if k >= NumShards {
					<-inFlight // return the unused token
					return
				}
				if cancelled.Load() {
					done[k] <- shardDone{}
					continue
				}
				n, err := runShard(k)
				if err != nil {
					cancelled.Store(true)
				}
				done[k] <- shardDone{n: n, err: err}
			}
		}()
	}

	// Merge in shard order on this goroutine. On error, keep draining the
	// remaining shards (and releasing tokens) so no worker blocks forever.
	count := 0
	var firstErr error
	for k := 0; k < NumShards; k++ {
		d := <-done[k]
		if firstErr == nil {
			count += d.n
			switch {
			case d.err != nil:
				firstErr = d.err
			default:
				if err := merge(k); err != nil {
					firstErr = err
					cancelled.Store(true)
				}
			}
		}
		<-inFlight
	}
	wg.Wait()
	if firstErr != nil {
		return count, firstErr
	}
	if count != m {
		return count, fmt.Errorf("stream: sharded pass saw %d edges, expected %d", count, m)
	}
	return count, nil
}

// ShardPool is a tiny free list for the per-shard scratch state of a sharded
// pass. The engine bounds live shards at workers+2, so the pool never grows
// past that; pooling matters because a pass allocates one state per shard and
// 64 fresh instance-sized arrays per pass is measurable garbage.
type ShardPool[T any] struct {
	mu    sync.Mutex
	free  []T
	alloc func() T
	reset func(T)
}

// NewShardPool builds a pool; alloc creates a state, reset readies a used one
// for reuse (reset may be nil when no cleanup is needed).
func NewShardPool[T any](alloc func() T, reset func(T)) *ShardPool[T] {
	return &ShardPool[T]{alloc: alloc, reset: reset}
}

// Get returns a fresh or recycled state.
func (p *ShardPool[T]) Get() T {
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		v := p.free[n-1]
		p.free = p.free[:n-1]
		p.mu.Unlock()
		return v
	}
	p.mu.Unlock()
	return p.alloc()
}

// Put recycles a state after resetting it.
func (p *ShardPool[T]) Put(v T) {
	if p.reset != nil {
		p.reset(v)
	}
	p.mu.Lock()
	p.free = append(p.free, v)
	p.mu.Unlock()
}
