package stream

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
	"sync/atomic"
	"unsafe"

	"degentri/internal/graph"
	"degentri/internal/stream/gvdecode"
)

// The .bex v2 binary edge format: block-indexed, delta-compressed in
// group-varint form, seekable from byte zero.
//
// Layout:
//
//	header (24 bytes)
//	  [0:4]   magic "BEX2"
//	  [4:8]   uint32 target edges per block (the encoder's knob)
//	  [8:16]  uint64 edge count m
//	  [16:24] reserved (zero)
//	blocks
//	  each block encodes up to the target count of edges in group-varint
//	  form: a control region of 2 bits per value (four values per control
//	  byte; the stored pair of bits is the value's byte length minus one)
//	  followed by a data region holding every value's little-endian bytes
//	  back to back. The values are, in stream order, zigzag(u − prevU)
//	  and zigzag(v − prevV) per edge, with prevU = prevV = 0 at the block
//	  start, so each block decodes independently of every other (the
//	  property that makes block seeks free). Widths live apart from data
//	  so the decoder's position advance stays off its critical path: the
//	  control bytes are consumed at sequential indexes the CPU fetches
//	  far ahead, where LEB128-style varints chain every value's offset
//	  through the previous value's continuation bits.
//	footer index (32 bytes per block, directly after the last block)
//	  [0:8]   uint64 position of the block's first edge
//	  [8:16]  uint64 absolute byte offset of the block
//	  [16:20] uint32 edge count of the block
//	  [20:24] int32  minimum vertex ID in the block
//	  [24:28] int32  maximum vertex ID in the block
//	  [28:32] uint32 CRC-32C of the block's bytes
//	tail (last 32 bytes of the file)
//	  [0:8]   uint64 absolute byte offset of the footer index
//	  [8:12]  uint32 block count
//	  [12:16] uint32 CRC-32C of the footer index bytes
//	  [16:28] reserved (zero)
//	  [28:32] magic "2XEB"
//
// Unlike v1's flat fixed-width records, edge i is not at a computable byte
// offset — but the footer index maps any position range to its covering
// blocks with a binary search, so RangeStream still seeks directly (to a
// block boundary, decoding at most one block of prefix), with no index to
// build and no first-scan special case. The lazy position→offset index of
// the text path (FileStream) has no v2 counterpart by construction.
//
// Integrity: the tail magic, footer geometry (offset/count vs file size),
// and footer CRC are all validated at open — a truncated or resized file
// fails in OpenBex2, not on edge k of a pass. Block payloads carry their own
// CRC-32C, checked when the block is first read; a flipped bit inside a
// block surfaces as ErrCorruptBlock on the exact block, never as silently
// wrong edges.
const (
	bex2Magic      = "BEX2"
	bex2TailMagic  = "2XEB"
	bex2HeaderSize = 24
	bex2FooterRec  = 32
	bex2TailSize   = 32

	// DefaultBlockEdges is the default encoder block size: big enough that
	// per-block overhead (footer record, CRC, reset deltas) is noise, small
	// enough that a range seek decodes little prefix and a sliding-window
	// scan maps tightly onto blocks.
	DefaultBlockEdges = 8192

	// maxBex2BlockEdges bounds the block size a reader will allocate a
	// decode buffer for (a lying footer cannot make us allocate gigabytes).
	maxBex2BlockEdges = 1 << 24
)

// crcTable is CRC-32C (Castagnoli): hardware-accelerated on amd64/arm64, so
// block verification costs a fraction of the decode itself.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// zigzag encodes a signed delta as an unsigned payload value.
func zigzag(d int64) uint64 { return uint64((d << 1) ^ (d >> 63)) }

// bex2GVLen[c] is the total data-byte length of control byte c's four values.
var bex2GVLen = func() (t [256]uint8) {
	for c := range t {
		t[c] = uint8(c&3 + c>>2&3 + c>>4&3 + c>>6&3 + 4)
	}
	return
}()

// bex2GVMask[w] keeps the low w+1 bytes of an unaligned 32-bit load.
var bex2GVMask = [4]uint64{0xff, 0xffff, 0xffffff, 0xffffffff}

// bex2CtrlLen is the control-region byte length of a count-edge block.
func bex2CtrlLen(count int) int { return (2*count + 3) / 4 }

// simdDecode gates the vectorized block-decode kernel (internal/stream/
// gvdecode). On by default wherever the kernel exists; SetSIMDDecode(false)
// is the -no-simd escape hatch. Atomic because daemons flip it at startup
// while tests flip it per-case.
var simdDecode atomic.Bool

func init() { simdDecode.Store(gvdecode.Available()) }

// SetSIMDDecode enables or disables the vectorized .bex v2 block decoder.
// Enabling is a no-op on CPUs without the kernel; the scalar decoder is
// always the fallback and the two produce bit-identical edges and errors.
func SetSIMDDecode(enable bool) { simdDecode.Store(enable && gvdecode.Available()) }

// SIMDDecodeEnabled reports whether the vectorized block decoder is active.
func SIMDDecodeEnabled() bool { return simdDecode.Load() }

// DecodeKernelName names the active .bex v2 block-decode kernel ("ssse3" or
// "scalar") for status lines and diagnostics.
func DecodeKernelName() string {
	if simdDecode.Load() {
		return "ssse3"
	}
	return "scalar"
}

// bex2Block is one decoded footer record.
type bex2Block struct {
	firstPos int   // stream position of the block's first edge
	off      int64 // absolute byte offset of the block
	length   int   // byte length of the block (derived from neighbors)
	count    int   // edges in the block
	minV     int32
	maxV     int32
	crc      uint32
}

// bex2Meta is everything a reader needs besides the bytes: the validated
// footer index plus the header facts. Metas are immutable after open
// (verified is monotonic) and shared by every range sub-stream of a file.
type bex2Meta struct {
	path       string
	m          int
	blockEdges int
	blocks     []bex2Block
	// ident is the file's stat identity at open (path, size, mtime) — the
	// same key shape the text path's index cache uses — and keys this file's
	// blocks in the decoded-block cache. A rewritten file gets a new
	// identity, so its old decoded blocks become unreachable rather than
	// stale. identOK guards the degenerate case of an unstattable source.
	ident   fileIndexKey
	identOK bool
	// verified[k] records that block k's payload CRC has been checked since
	// open. A block is verified the first time any cursor reads it and never
	// re-hashed on later passes — multi-pass algorithms (the whole point of
	// the system) pay for integrity once per open, not once per pass. A
	// racing double-verify is harmless; a missed flag just re-verifies.
	verified []atomic.Bool
}

// findBlock returns the index of the block containing position pos.
func (mt *bex2Meta) findBlock(pos int) int {
	return sort.Search(len(mt.blocks), func(i int) bool {
		b := mt.blocks[i]
		return b.firstPos+b.count > pos
	})
}

// WriteBex2 writes the stream to w in .bex v2 format with the given target
// block size (<= 0 selects DefaultBlockEdges) and returns the number of
// edges written. Like WriteBex, the stream length must be known up front
// unless w is seekable (the header's count is patched afterwards).
func WriteBex2(w io.Writer, s Stream, blockEdges int) (int, error) {
	if blockEdges <= 0 {
		blockEdges = DefaultBlockEdges
	}
	if blockEdges > maxBex2BlockEdges {
		blockEdges = maxBex2BlockEdges
	}
	m, known := s.Len()
	seeker, seekable := w.(io.WriteSeeker)
	if !known && !seekable {
		return 0, fmt.Errorf("stream: .bex needs a known length or a seekable writer")
	}
	var base int64
	if seekable {
		off, err := seeker.Seek(0, io.SeekCurrent)
		if err != nil {
			if !known {
				return 0, fmt.Errorf("stream: .bex base offset: %w", err)
			}
			seekable = false
		} else {
			base = off
		}
	}
	header := make([]byte, bex2HeaderSize)
	copy(header, bex2Magic)
	binary.LittleEndian.PutUint32(header[4:], uint32(blockEdges))
	binary.LittleEndian.PutUint64(header[8:], uint64(m))
	if _, err := w.Write(header); err != nil {
		return 0, err
	}

	enc := bex2Encoder{
		w:          w,
		off:        base + bex2HeaderSize,
		blockEdges: blockEdges,
		pend:       make([]graph.Edge, 0, blockEdges),
	}
	n, err := ForEachBatch(s, enc.add)
	if err != nil {
		return n, err
	}
	if err := enc.finish(); err != nil {
		return n, err
	}
	if n != m {
		if !seekable {
			return n, fmt.Errorf("stream: .bex length prefix %d but stream held %d edges", m, n)
		}
		if _, err := seeker.Seek(base, io.SeekStart); err != nil {
			return n, err
		}
		binary.LittleEndian.PutUint64(header[8:], uint64(n))
		if _, err := w.Write(header); err != nil {
			return n, err
		}
		if _, err := seeker.Seek(enc.off+int64(len(enc.footer))+bex2TailSize, io.SeekStart); err != nil {
			return n, err
		}
	}
	return n, nil
}

// bex2Encoder buffers edges into blocks and writes each full block followed,
// at finish, by the footer index and tail.
type bex2Encoder struct {
	w          io.Writer
	off        int64 // absolute byte offset of the next block
	blockEdges int
	pend       []graph.Edge
	pos        int // stream position of pend[0]
	buf        []byte
	footer     []byte
}

func (e *bex2Encoder) add(batch []graph.Edge) error {
	for len(batch) > 0 {
		take := e.blockEdges - len(e.pend)
		if take > len(batch) {
			take = len(batch)
		}
		e.pend = append(e.pend, batch[:take]...)
		batch = batch[take:]
		if len(e.pend) == e.blockEdges {
			if err := e.flush(); err != nil {
				return err
			}
		}
	}
	return nil
}

// flush encodes and writes the pending block and appends its footer record.
func (e *bex2Encoder) flush() error {
	if len(e.pend) == 0 {
		return nil
	}
	nctrl := bex2CtrlLen(len(e.pend))
	if cap(e.buf) < nctrl {
		e.buf = make([]byte, nctrl, nctrl+8*len(e.pend))
	}
	e.buf = e.buf[:nctrl]
	for i := range e.buf {
		e.buf[i] = 0
	}
	var prevU, prevV int64
	minV, maxV := int32(1<<31-1), int32(-1<<31)
	j := 0
	for _, ed := range e.pend {
		if ed.U < 0 || ed.V < 0 || ed.U > 1<<31-1 || ed.V > 1<<31-1 {
			return fmt.Errorf("stream: edge %v does not fit int32 .bex records", ed)
		}
		u, v := int64(ed.U), int64(ed.V)
		for _, z := range [2]uint64{zigzag(u - prevU), zigzag(v - prevV)} {
			l := 1
			switch {
			case z > 0xffffff:
				l = 4
			case z > 0xffff:
				l = 3
			case z > 0xff:
				l = 2
			}
			e.buf[j>>2] |= byte(l-1) << ((j & 3) * 2)
			var le [4]byte
			binary.LittleEndian.PutUint32(le[:], uint32(z))
			e.buf = append(e.buf, le[:l]...)
			j++
		}
		prevU, prevV = u, v
		lo, hi := int32(ed.U), int32(ed.V)
		if hi < lo {
			lo, hi = hi, lo
		}
		if lo < minV {
			minV = lo
		}
		if hi > maxV {
			maxV = hi
		}
	}
	if _, err := e.w.Write(e.buf); err != nil {
		return err
	}
	var rec [bex2FooterRec]byte
	binary.LittleEndian.PutUint64(rec[0:], uint64(e.pos))
	binary.LittleEndian.PutUint64(rec[8:], uint64(e.off))
	binary.LittleEndian.PutUint32(rec[16:], uint32(len(e.pend)))
	binary.LittleEndian.PutUint32(rec[20:], uint32(minV))
	binary.LittleEndian.PutUint32(rec[24:], uint32(maxV))
	binary.LittleEndian.PutUint32(rec[28:], crc32.Checksum(e.buf, crcTable))
	e.footer = append(e.footer, rec[:]...)
	e.pos += len(e.pend)
	e.off += int64(len(e.buf))
	e.pend = e.pend[:0]
	return nil
}

// finish flushes the final partial block and writes the footer index + tail.
func (e *bex2Encoder) finish() error {
	if err := e.flush(); err != nil {
		return err
	}
	if _, err := e.w.Write(e.footer); err != nil {
		return err
	}
	var tail [bex2TailSize]byte
	binary.LittleEndian.PutUint64(tail[0:], uint64(e.off))
	binary.LittleEndian.PutUint32(tail[8:], uint32(len(e.footer)/bex2FooterRec))
	binary.LittleEndian.PutUint32(tail[12:], crc32.Checksum(e.footer, crcTable))
	copy(tail[28:], bex2TailMagic)
	_, err := e.w.Write(tail[:])
	return err
}

// WriteBex2File writes the stream to a .bex v2 file at path.
func WriteBex2File(path string, s Stream, blockEdges int) (int, error) {
	file, err := os.Create(path)
	if err != nil {
		return 0, fmt.Errorf("stream: create %s: %w", path, err)
	}
	n, werr := WriteBex2(file, s, blockEdges)
	cerr := file.Close()
	if werr != nil {
		return n, werr
	}
	return n, cerr
}

// readBex2Meta opens and fully validates the container geometry: header and
// tail magic, footer offset/count against the file size, the footer index's
// own CRC, and the block chain (positions and offsets strictly increasing,
// contiguous, counts summing to the header's m). Everything that can be
// checked without reading edge data fails here, at open; per-block payload
// CRCs are verified when each block is read.
func readBex2Meta(file *os.File, path string) (*bex2Meta, error) {
	info, err := file.Stat()
	if err != nil {
		return nil, fmt.Errorf("stream: stat %s: %w", path, err)
	}
	if !info.Mode().IsRegular() {
		return nil, fmt.Errorf("stream: %s: .bex v2 requires a regular file: %w", path, ErrCorruptHeader)
	}
	size := info.Size()
	if size < bex2HeaderSize+bex2TailSize {
		return nil, fmt.Errorf("stream: %s: file too short for a .bex v2 container (%d bytes): %w",
			path, size, ErrCorruptHeader)
	}
	header := make([]byte, bex2HeaderSize)
	if _, err := file.ReadAt(header, 0); err != nil {
		return nil, fmt.Errorf("stream: %s: reading .bex header: %w (%w)", path, err, ErrCorruptHeader)
	}
	if string(header[:4]) != bex2Magic {
		return nil, fmt.Errorf("stream: %s: not a .bex v2 file (bad magic %q): %w", path, header[:4], ErrCorruptHeader)
	}
	blockEdges := int(binary.LittleEndian.Uint32(header[4:]))
	m64 := binary.LittleEndian.Uint64(header[8:])
	if m64 > 1<<56 {
		return nil, fmt.Errorf("stream: %s: implausible .bex edge count %d: %w", path, m64, ErrCorruptHeader)
	}
	m := int(m64)
	if blockEdges <= 0 || blockEdges > maxBex2BlockEdges {
		return nil, fmt.Errorf("stream: %s: implausible .bex v2 block size %d: %w", path, blockEdges, ErrCorruptHeader)
	}

	tail := make([]byte, bex2TailSize)
	if _, err := file.ReadAt(tail, size-bex2TailSize); err != nil {
		return nil, fmt.Errorf("stream: %s: reading .bex v2 tail: %w (%w)", path, err, ErrCorruptHeader)
	}
	if string(tail[28:32]) != bex2TailMagic {
		return nil, fmt.Errorf("stream: %s: truncated .bex v2 file (missing tail magic): %w", path, ErrTruncated)
	}
	footerOff := int64(binary.LittleEndian.Uint64(tail[0:]))
	blockCount := int(binary.LittleEndian.Uint32(tail[8:]))
	footerCRC := binary.LittleEndian.Uint32(tail[12:])
	footerLen := int64(blockCount) * bex2FooterRec
	if footerOff < bex2HeaderSize || footerOff+footerLen+bex2TailSize != size {
		return nil, fmt.Errorf("stream: %s: .bex v2 tail declares %d blocks at offset %d but the file holds %d bytes: %w",
			path, blockCount, footerOff, size, ErrCorruptHeader)
	}
	footer := make([]byte, footerLen)
	if _, err := file.ReadAt(footer, footerOff); err != nil {
		return nil, fmt.Errorf("stream: %s: reading .bex v2 footer index: %w (%w)", path, err, ErrTruncated)
	}
	if got := crc32.Checksum(footer, crcTable); got != footerCRC {
		return nil, fmt.Errorf("stream: %s: .bex v2 footer index checksum mismatch (got %08x, want %08x): %w",
			path, got, footerCRC, ErrCorruptHeader)
	}

	blocks := make([]bex2Block, blockCount)
	pos := 0
	off := int64(bex2HeaderSize)
	for i := range blocks {
		rec := footer[i*bex2FooterRec:]
		b := bex2Block{
			firstPos: int(binary.LittleEndian.Uint64(rec[0:])),
			off:      int64(binary.LittleEndian.Uint64(rec[8:])),
			count:    int(binary.LittleEndian.Uint32(rec[16:])),
			minV:     int32(binary.LittleEndian.Uint32(rec[20:])),
			maxV:     int32(binary.LittleEndian.Uint32(rec[24:])),
			crc:      binary.LittleEndian.Uint32(rec[28:]),
		}
		if b.firstPos != pos || b.off != off || b.count <= 0 || b.count > blockEdges {
			return nil, fmt.Errorf("stream: %s: .bex v2 footer record %d is inconsistent (pos %d@%d count %d): %w",
				path, i, b.firstPos, b.off, b.count, ErrCorruptHeader)
		}
		end := footerOff
		if i+1 < blockCount {
			end = int64(binary.LittleEndian.Uint64(footer[(i+1)*bex2FooterRec+8:]))
		}
		b.length = int(end - b.off)
		// A block is its control region plus one to four data bytes per
		// value; a length outside that envelope cannot decode to the
		// declared count.
		if nc := bex2CtrlLen(b.count); b.length < nc+2*b.count || b.length > nc+8*b.count {
			return nil, fmt.Errorf("stream: %s: .bex v2 block %d length %d disagrees with its %d edges: %w",
				path, i, b.length, b.count, ErrCorruptHeader)
		}
		pos += b.count
		off = b.off + int64(b.length)
		blocks[i] = b
	}
	if pos != m {
		return nil, fmt.Errorf("stream: %s: .bex v2 footer holds %d edges but the header declares %d: %w",
			path, pos, m, ErrCorruptHeader)
	}
	if off != footerOff {
		return nil, fmt.Errorf("stream: %s: .bex v2 blocks end at %d but the footer starts at %d: %w",
			path, off, footerOff, ErrCorruptHeader)
	}
	return &bex2Meta{
		path: path, m: m, blockEdges: blockEdges, blocks: blocks,
		ident:    fileIndexKey{path: path, size: size, mtime: info.ModTime().UnixNano()},
		identOK:  true,
		verified: make([]atomic.Bool, blockCount),
	}, nil
}

// decodeBex2Block decodes one block's raw bytes into dst (which must hold
// count edges), verifying the footer CRC first when checkCRC is set. The
// group-varint loop is the format's hot path: four values (two edges) per
// control byte, each value one unaligned 32-bit load cut to its width by a
// mask — no continuation-bit scanning, and the data cursor's advance is a
// one-byte table lookup at a sequential index, so the loop-carried
// dependency is a single add rather than a chain through every value's
// width bits.
func decodeBex2Block(path string, idx int, b bex2Block, raw []byte, dst []graph.Edge, checkCRC bool) error {
	if checkCRC {
		if got := crc32.Checksum(raw, crcTable); got != b.crc {
			return fmt.Errorf("stream: %s: block %d checksum mismatch (got %08x, want %08x): %w",
				path, idx, got, b.crc, ErrCorruptBlock)
		}
	}
	nctrl := bex2CtrlLen(b.count)
	n := len(raw)
	// The control area must fit before any decode path reads it: a corrupt
	// footer can claim more edges than the block's bytes can control, and
	// both the tail's control reads and the kernel's ctrl slice index into
	// raw[:nctrl] unchecked past this point.
	if nctrl > n {
		return fmt.Errorf("stream: %s: block %d holds %d bytes, too few to control %d edges: %w",
			path, idx, n, b.count, ErrCorruptBlock)
	}
	var u, v int64
	var acc uint64
	j, p, k := 0, nctrl, 0
	if groups := b.count / 2; simdDecode.Load() && groups > 0 && n-nctrl >= 16 {
		// The vectorized kernel covers exactly the scalar main loop's range
		// (edge pairs while a full 16-byte load window remains) and decodes
		// straight into dst: graph.Edge is two native ints, which on the
		// only architectures with a kernel is the [2]int64 layout the kernel
		// stores. Its int32 lane arithmetic is exact for any block whose
		// values all lie in [0, 2³¹) — precisely the blocks the scalar acc
		// check below accepts — and any out-of-range value surfaces as a
		// sign-bit flag before wraparound can alias it back into range (each
		// delta's magnitude is under 2³¹, so a prefix cannot skip over the
		// flagged zone). No flag therefore means the decode, the (u, v)
		// carry, and the acc verdict so far are all bit-identical to the
		// scalar path's, and the scalar tail resumes from the kernel's
		// state; a flag discards the kernel's work entirely and re-decodes
		// from scratch below, making the scalar path authoritative for the
		// exact corrupt-block diagnosis.
		var st gvdecode.State
		pairs := unsafe.Slice((*[2]int64)(unsafe.Pointer(&dst[0])), b.count)
		gvdecode.Decode(raw[:nctrl], groups, raw[nctrl:], pairs, &st)
		if st.Flags == 0 {
			j = int(st.Done)
			k = 2 * j
			p = nctrl + int(st.Consumed)
			u, v = int64(st.U), int64(st.V)
		}
	}
	for k+2 <= b.count && p+16 <= n {
		c := raw[j]
		j++
		l0 := int(c & 3)
		l1 := int(c >> 2 & 3)
		l2 := int(c >> 4 & 3)
		// One re-slice stands in for the four loads' bounds checks: the
		// prover sees a 16-byte window and widths capped at 3 by the masks.
		win := raw[p : p+16 : p+16]
		d0 := uint64(binary.LittleEndian.Uint32(win)) & bex2GVMask[c&3]
		d1 := uint64(binary.LittleEndian.Uint32(win[l0+1:])) & bex2GVMask[c>>2&3]
		d2 := uint64(binary.LittleEndian.Uint32(win[l0+l1+2:])) & bex2GVMask[c>>4&3]
		d3 := uint64(binary.LittleEndian.Uint32(win[l0+l1+l2+3:])) & bex2GVMask[c>>6&3]
		p += int(bex2GVLen[c])
		u += int64(d0>>1) ^ -int64(d0&1)
		v += int64(d1>>1) ^ -int64(d1&1)
		acc |= uint64(u) | uint64(v)
		dst[k] = graph.Edge{U: int(u), V: int(v)}
		u += int64(d2>>1) ^ -int64(d2&1)
		v += int64(d3>>1) ^ -int64(d3&1)
		acc |= uint64(u) | uint64(v)
		dst[k+1] = graph.Edge{U: int(u), V: int(v)}
		k += 2
	}
	// Tail: one value at a time for the last edges, whose data bytes sit too
	// close to the block's end for whole-word loads (and an odd final edge).
	for k < b.count {
		var z [2]uint64
		for s := range z {
			q := 2*k + s
			l := int(raw[q>>2]>>((q&3)*2)&3) + 1
			if p+l > n {
				return fmt.Errorf("stream: %s: block %d decode overrun at edge %d: %w", path, idx, k, ErrCorruptBlock)
			}
			var x uint64
			for t := 0; t < l; t++ {
				x |= uint64(raw[p+t]) << (8 * t)
			}
			p += l
			z[s] = x
		}
		u += int64(z[0]>>1) ^ -int64(z[0]&1)
		v += int64(z[1]>>1) ^ -int64(z[1]&1)
		acc |= uint64(u) | uint64(v)
		dst[k] = graph.Edge{U: int(u), V: int(v)}
		k++
	}
	if p != n {
		return fmt.Errorf("stream: %s: block %d holds %d trailing bytes: %w", path, idx, n-p, ErrCorruptBlock)
	}
	// Range violations are impossible in well-formed files (the writer
	// refuses vertices outside int32), so the per-edge check is hoisted to
	// one accumulated test; the cold rescan pins the offending edge.
	if acc > 1<<31-1 {
		for k, e := range dst[:b.count] {
			if uint64(e.U) > 1<<31-1 || uint64(e.V) > 1<<31-1 {
				return fmt.Errorf("stream: %s: block %d decodes out-of-range vertex at edge %d: %w", path, idx, k, ErrCorruptBlock)
			}
		}
	}
	return nil
}

// bex2Source yields the raw bytes of block k. The buffered implementation
// reads them from the file; the mmap implementation slices the mapping.
type bex2Source interface {
	// open readies the source for reads (called by Reset; idempotent).
	open() error
	// block returns block k's raw bytes, valid until the next block call.
	block(k int) ([]byte, error)
	// close releases the source's resources; open may be called again after.
	close() error
}

// rangeAdviser is optionally implemented by block sources that can hint the
// OS about a cursor's upcoming access pattern (the mmap source issues
// madvise). advise is called by reset, after open, with the cursor's
// position window.
type rangeAdviser interface {
	advise(lo, hi int)
}

// bex2ReadAhead is how far the buffered source reads past a requested block
// in one positioned read (capped by the cursor's window): compressed blocks
// are small, so one syscall typically serves many consecutive blocks.
const bex2ReadAhead = 1 << 20

// bex2FileSource reads block payloads through a file handle with positioned
// reads (no shared cursor, so concurrent range sub-streams never interfere).
// Sequential scans are served from a readahead buffer — one syscall per
// bex2ReadAhead bytes, never reading past limitOff, so a small shard range
// costs a read of its own bytes, not a megabyte of its neighbors'.
type bex2FileSource struct {
	meta     *bex2Meta
	file     *os.File
	limitOff int64 // end of the cursor's window in file bytes (0 = unset)
	buf      []byte
	bufOff   int64 // file offset of buf[0]
}

func (s *bex2FileSource) open() error {
	if s.file != nil {
		return nil
	}
	file, err := os.Open(s.meta.path)
	if err != nil {
		return fmt.Errorf("stream: open %s: %w", s.meta.path, err)
	}
	s.file = file
	return nil
}

func (s *bex2FileSource) block(k int) ([]byte, error) {
	b := s.meta.blocks[k]
	end := b.off + int64(b.length)
	if b.off >= s.bufOff && end <= s.bufOff+int64(len(s.buf)) {
		return s.buf[b.off-s.bufOff : end-s.bufOff], nil
	}
	want := int64(bex2ReadAhead)
	if lim := s.limitOff; lim > 0 && b.off+want > lim {
		want = lim - b.off
	}
	if want < int64(b.length) {
		want = int64(b.length)
	}
	if cap(s.buf) < int(want) {
		s.buf = make([]byte, want)
	}
	raw := s.buf[:want]
	if _, err := s.file.ReadAt(raw, b.off); err != nil {
		return nil, fmt.Errorf("stream: %s truncated at block %d (edge %d): %w (%w)",
			s.meta.path, k, b.firstPos, err, ErrTruncated)
	}
	s.buf, s.bufOff = raw, b.off
	return raw[:b.length], nil
}

func (s *bex2FileSource) close() error {
	s.buf, s.bufOff = nil, 0
	if s.file == nil {
		return nil
	}
	err := s.file.Close()
	s.file = nil
	return err
}

// bex2Cursor is the shared pass machinery of every v2 reader: a window
// [lo, hi) of stream positions served block by block from a bex2Source.
// The full-file stream is the window [0, m); range sub-streams are smaller
// windows with their own source.
type bex2Cursor struct {
	meta    *bex2Meta
	src     bex2Source
	lo, hi  int
	pos     int // next position to deliver
	blk     int // block that decoded holds, -1 when none
	decoded []graph.Edge
	served  int // decoded[:served] already delivered
	active  bool
	// cache opts this cursor into the process-wide decoded-block cache:
	// loads first look the block up by (file identity, ordinal) and serve
	// hits zero-copy; misses decode into a fresh slice and insert it. Off,
	// every load decodes into the cursor-owned scratch buffer.
	cache   bool
	cached  *blockCacheEntry // pinned entry decoded aliases, nil when none
	scratch []graph.Edge     // owned decode buffer for uncached loads
}

// unpin releases the cursor's pinned cache entry, if any. Called whenever
// decoded stops aliasing it (block advance, reset, close).
func (c *bex2Cursor) unpin() {
	if c.cached != nil {
		decodeCache.release(c.cached)
		c.cached = nil
	}
}

func (c *bex2Cursor) reset() error {
	c.pos = c.lo
	c.blk = -1
	c.unpin()
	c.decoded = nil
	c.served = 0
	c.active = true
	if c.lo == c.hi {
		return nil
	}
	if fs, ok := c.src.(*bex2FileSource); ok && fs.limitOff == 0 {
		last := c.meta.blocks[c.meta.findBlock(c.hi-1)]
		fs.limitOff = last.off + int64(last.length)
	}
	if err := c.src.open(); err != nil {
		return err
	}
	if ad, ok := c.src.(rangeAdviser); ok {
		ad.advise(c.lo, c.hi)
	}
	return nil
}

// load decodes (or cache-fetches) the block containing c.pos and positions
// served at it. The cursor slices the decoded block by stream position the
// same way regardless of where the edges came from, so batch and shard
// boundaries — and downstream results at any worker count — are identical
// with the cache on or off.
func (c *bex2Cursor) load() error {
	k := c.meta.findBlock(c.pos)
	b := c.meta.blocks[k]
	useCache := c.cache && c.meta.identOK
	var key blockCacheKey
	if useCache {
		key = blockCacheKey{file: c.meta.ident, blk: k}
		if ent, ok := decodeCache.get(key); ok {
			c.unpin()
			c.cached = ent
			c.decoded = ent.edges
			c.blk = k
			c.served = c.pos - b.firstPos
			return nil
		}
	}
	raw, err := c.src.block(k)
	if err != nil {
		return err
	}
	// Cached blocks are decoded into a fresh slice (entries are immutable
	// and shared); uncached loads reuse the cursor's scratch buffer.
	var dst []graph.Edge
	if useCache {
		dst = make([]graph.Edge, b.count)
	} else {
		if cap(c.scratch) < b.count {
			c.scratch = make([]graph.Edge, b.count)
		}
		dst = c.scratch[:b.count]
	}
	checkCRC := !c.meta.verified[k].Load()
	if err := decodeBex2Block(c.meta.path, k, b, raw, dst, checkCRC); err != nil {
		return err
	}
	if checkCRC {
		c.meta.verified[k].Store(true)
	}
	c.unpin()
	if useCache {
		// Insert only after the complete, verified decode above: an error,
		// cancellation, or injected fault returns before this line, so a
		// partially-decoded block is never visible to other cursors. A
		// racing insert yields the first cursor's identical entry.
		if ent := decodeCache.put(key, dst); ent != nil {
			c.cached = ent
			dst = ent.edges
		}
	}
	c.decoded = dst
	c.blk = k
	c.served = c.pos - b.firstPos
	return nil
}

// nextChunk returns the next run of decoded edges within the window without
// copying (the caller copies if it must).
func (c *bex2Cursor) nextChunk() ([]graph.Edge, error) {
	if !c.active {
		return nil, ErrNoPass
	}
	if c.pos >= c.hi {
		// The pass is exhausted: drop the pin on the final block now rather
		// than at reset/close, so short-lived range sub-streams (shards are
		// drained and discarded, never closed) do not pin cache entries for
		// the life of the parent. Any chunk the caller still aliases stays
		// valid — eviction only drops residency, the GC owns the memory.
		c.unpin()
		return nil, ErrEndOfPass
	}
	if c.blk < 0 || c.served >= len(c.decoded) {
		if err := c.load(); err != nil {
			return nil, err
		}
	}
	chunk := c.decoded[c.served:]
	if room := c.hi - c.pos; len(chunk) > room {
		chunk = chunk[:room]
	}
	return chunk, nil
}

func (c *bex2Cursor) nextBatch(buf []graph.Edge) ([]graph.Edge, error) {
	chunk, err := c.nextChunk()
	if err != nil {
		return nil, err
	}
	if len(buf) > 0 && len(chunk) > len(buf) {
		chunk = chunk[:len(buf)]
	}
	if len(buf) > 0 {
		copy(buf, chunk)
		buf = buf[:len(chunk)]
	} else {
		buf = chunk
	}
	c.pos += len(chunk)
	c.served += len(chunk)
	return buf, nil
}

func (c *bex2Cursor) next() (graph.Edge, error) {
	chunk, err := c.nextChunk()
	if err != nil {
		return graph.Edge{}, err
	}
	c.pos++
	c.served++
	return chunk[0], nil
}

func (c *bex2Cursor) closeCursor() error {
	c.active = false
	c.blk = -1
	c.unpin()
	c.decoded = nil
	c.served = 0
	return c.src.close()
}

// Bex2Stream streams edges from a .bex v2 file through buffered positioned
// reads. The edge count and the full block index are known from open, so
// RangeStream works from byte zero — there is no first-scan index build.
type Bex2Stream struct {
	cur bex2Cursor
}

// OpenBex2 opens a .bex v2 file, validating the container eagerly (see
// readBex2Meta): bad or missing magic, a truncated footer index, a block
// count that disagrees with the file size, or a footer checksum mismatch
// all fail here rather than mid-pass.
func OpenBex2(path string) (*Bex2Stream, error) {
	return openBex2Cache(path, false)
}

func openBex2Cache(path string, cache bool) (*Bex2Stream, error) {
	file, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("stream: open %s: %w", path, err)
	}
	meta, err := readBex2Meta(file, path)
	if err != nil {
		file.Close()
		return nil, err
	}
	return newBex2Stream(meta, file, cache), nil
}

func newBex2Stream(meta *bex2Meta, file *os.File, cache bool) *Bex2Stream {
	return &Bex2Stream{cur: bex2Cursor{
		meta: meta,
		src:  &bex2FileSource{meta: meta, file: file},
		lo:   0, hi: meta.m,
		cache: cache,
	}}
}

// Reset implements Stream.
func (b *Bex2Stream) Reset() error { return b.cur.reset() }

// Next implements Stream.
func (b *Bex2Stream) Next() (graph.Edge, error) { return b.cur.next() }

// NextBatch implements Stream. With an empty buf the batch aliases the
// decoded block buffer (valid until the next call), so a full pass costs one
// positioned read + decode per block and no extra copies.
func (b *Bex2Stream) NextBatch(buf []graph.Edge) ([]graph.Edge, error) {
	return b.cur.nextBatch(buf)
}

// Len implements Stream; a .bex stream always knows its length.
func (b *Bex2Stream) Len() (int, bool) { return b.cur.meta.m, true }

// RangeStream implements RangeStreamer via the footer index: available from
// the moment the file is opened, before any pass.
func (b *Bex2Stream) RangeStream(lo, hi int) (Stream, bool) {
	if lo < 0 || hi < lo || hi > b.cur.meta.m {
		return nil, false
	}
	meta := b.cur.meta
	return &bex2Range{cur: bex2Cursor{
		meta: meta,
		src:  &bex2FileSource{meta: meta},
		lo:   lo, hi: hi,
		cache: b.cur.cache,
	}}, true
}

// Close releases the file handle; the stream can be Reset afterwards.
func (b *Bex2Stream) Close() error { return b.cur.closeCursor() }

// Backend implements Backender.
func (b *Bex2Stream) Backend() string { return BackendBex2 }

// bex2Range is an independent stream over positions [lo, hi) of a .bex v2
// file with its own file handle.
type bex2Range struct {
	cur bex2Cursor
}

func (r *bex2Range) Reset() error                                     { return r.cur.reset() }
func (r *bex2Range) Next() (graph.Edge, error)                        { return r.cur.next() }
func (r *bex2Range) NextBatch(buf []graph.Edge) ([]graph.Edge, error) { return r.cur.nextBatch(buf) }
func (r *bex2Range) Len() (int, bool)                                 { return r.cur.hi - r.cur.lo, true }
func (r *bex2Range) Close() error                                     { return r.cur.closeCursor() }
