package corpus

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"degentri/internal/graph"
	"degentri/internal/stream"
)

// Canonicalize reads a SNAP-style text edge list and returns the canonical
// edge sequence:
//
//   - comment lines (#, %) and blank lines are skipped;
//   - self-loops are dropped;
//   - vertex IDs are remapped to dense int IDs in first-appearance order
//     (SNAP IDs are sparse and sometimes huge);
//   - duplicate edges are dropped — SNAP lists undirected graphs as both
//     (u,v) and (v,u), and EstimateFile streams verbatim, so duplicates
//     would silently double m;
//   - when maxEdges > 0 only the first maxEdges kept edges are retained (a
//     deterministic prefix sample, used to keep the road/web graphs
//     CI-sized).
//
// The returned order (first appearance) is the canonical stream order: the
// .bex and .txt cache files are written in exactly this order, which is what
// makes their estimates bit-identical for a given seed.
func Canonicalize(r io.Reader, maxEdges int) ([]graph.Edge, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)

	remap := make(map[int64]int)
	seen := make(map[graph.Edge]struct{})
	var edges []graph.Edge
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		i := 0
		for i < len(line) && (line[i] == ' ' || line[i] == '\t' || line[i] == '\r') {
			i++
		}
		if i == len(line) || line[i] == '#' || line[i] == '%' {
			continue
		}
		u, i, err := parseInt64(line, i, lineNo)
		if err != nil {
			return nil, err
		}
		v, i, err := parseInt64(line, i, lineNo)
		if err != nil {
			return nil, err
		}
		for i < len(line) && (line[i] == ' ' || line[i] == '\t' || line[i] == '\r') {
			i++
		}
		// Trailing columns (weights, timestamps) are tolerated and ignored.
		_ = i
		if u == v {
			continue
		}
		du, ok := remap[u]
		if !ok {
			du = len(remap)
			remap[u] = du
		}
		dv, ok := remap[v]
		if !ok {
			dv = len(remap)
			remap[v] = dv
		}
		e := graph.NewEdge(du, dv)
		if _, dup := seen[e]; dup {
			continue
		}
		seen[e] = struct{}{}
		edges = append(edges, graph.Edge{U: du, V: dv})
		if maxEdges > 0 && len(edges) >= maxEdges {
			break
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("corpus: canonicalize line %d: %w", lineNo, err)
	}
	return edges, nil
}

// parseInt64 parses one whitespace-delimited non-negative integer field.
func parseInt64(line []byte, i, lineNo int) (int64, int, error) {
	for i < len(line) && (line[i] == ' ' || line[i] == '\t' || line[i] == '\r') {
		i++
	}
	start := i
	var v int64
	for i < len(line) && line[i] >= '0' && line[i] <= '9' {
		v = v*10 + int64(line[i]-'0')
		if v < 0 {
			return 0, i, fmt.Errorf("corpus: line %d: vertex ID overflows", lineNo)
		}
		i++
	}
	if i == start {
		return 0, i, fmt.Errorf("corpus: line %d: expected a vertex ID, got %q", lineNo, string(line))
	}
	return v, i, nil
}

// writeCanonical writes the canonical edge sequence as <name>.bex and
// <name>.txt under dir, atomically (temp file + rename, so an interrupted
// write never leaves a plausible-looking partial cache file). The .bex is
// written in the v2 block-indexed format (the cache's canonical binary form
// since manifest schema 2). It returns the SHA-256 of the .bex.
func writeCanonical(dir, name string, edges []graph.Edge) (bexSHA string, err error) {
	if len(edges) == 0 {
		return "", fmt.Errorf("corpus: %s canonicalized to zero edges", name)
	}
	bexPath := filepath.Join(dir, name+stream.BexExt)
	txtPath := filepath.Join(dir, name+".txt")

	bexTmp := bexPath + ".tmp"
	if _, err := stream.WriteBex2File(bexTmp, stream.FromEdges(edges), 0); err != nil {
		os.Remove(bexTmp)
		return "", fmt.Errorf("corpus: write %s: %w", bexPath, err)
	}
	txtTmp := txtPath + ".tmp"
	tf, err := os.Create(txtTmp)
	if err != nil {
		os.Remove(bexTmp)
		return "", fmt.Errorf("corpus: %w", err)
	}
	_, werr := stream.WriteEdgeList(tf, stream.FromEdges(edges))
	if cerr := tf.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(bexTmp)
		os.Remove(txtTmp)
		return "", fmt.Errorf("corpus: write %s: %w", txtPath, werr)
	}
	if err := os.Rename(bexTmp, bexPath); err != nil {
		os.Remove(bexTmp)
		os.Remove(txtTmp)
		return "", fmt.Errorf("corpus: %w", err)
	}
	if err := os.Rename(txtTmp, txtPath); err != nil {
		os.Remove(txtTmp)
		return "", fmt.Errorf("corpus: %w", err)
	}
	return FileSHA256(bexPath)
}

// edgeFacts returns n (1 + max vertex ID) and m of an edge sequence.
func edgeFacts(edges []graph.Edge) (n, m int) {
	maxID := -1
	for _, e := range edges {
		if e.U > maxID {
			maxID = e.U
		}
		if e.V > maxID {
			maxID = e.V
		}
	}
	return maxID + 1, len(edges)
}
