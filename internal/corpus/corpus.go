// Package corpus manages the real-graph benchmark corpus: a small set of
// public graphs (SNAP-style edge lists: collaboration, social, web, road)
// that the benchmark trajectory runs on, so the repo demonstrates the
// paper's central empirical claim — real-world graphs have small degeneracy
// κ, which is what makes the O(m·κ/T) space bound practical.
//
// Each corpus entry names an upstream download plus a deterministic offline
// stand-in synthesized from internal/gen with pinned seeds. Offline mode
// (the CI default — CI never touches the network) writes the stand-in under
// the *same file names* the real fetch would produce, so everything
// downstream (the bench sweep, BENCH_N.json, benchdiff) is oblivious to
// which corpus it ran on; the JSON records the source honestly either way.
//
// Each graph is cached as a `.txt`/`.bex` pair in a pinned canonical edge
// order; the canonical `.bex` is the block-indexed v2 format since manifest
// schema 2 (older caches read as empty and regenerate on the next fetch).
//
// Every cached artifact is SHA-256 checksummed. Offline stand-ins verify
// against checksums checked into this file (they are bit-deterministic);
// real downloads verify against their pinned upstream checksum, or are
// pinned on first fetch with Options.Record (we do not check in sums we
// could not verify ourselves — see EXPERIMENTS.md).
package corpus

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"degentri/internal/gen"
	"degentri/internal/graph"
)

// Sources of a cached corpus graph.
const (
	SourceReal    = "real"
	SourceStandin = "offline-standin"
)

// Entry is one corpus graph: where the real file lives, how to verify it,
// and how to synthesize its deterministic offline stand-in.
type Entry struct {
	// Name is the corpus key and the cache file stem (<Name>.bex, <Name>.txt).
	Name string
	// Category is the graph's domain: collaboration, social, web, road.
	Category string
	// URL is the upstream download (SNAP .txt.gz edge lists).
	URL string
	// License describes the upstream terms (all SNAP datasets are free for
	// research use with citation).
	License string
	// RawSHA256 is the pinned checksum of the raw downloaded payload
	// (before gunzip). Empty means not yet pinned: fetching then requires
	// Options.Record, which prints the sum to pin here.
	RawSHA256 string
	// MaxEdges caps canonicalized edges to a deterministic prefix sample of
	// the real file (0 = keep all); the road and web graphs are sampled so
	// the sweep stays CI-sized.
	MaxEdges int
	// Standin synthesizes the offline stand-in graph (pinned seeds, fully
	// deterministic).
	Standin func() *graph.Graph
	// StandinSHA256 is the checked-in checksum of the canonical .bex the
	// stand-in produces; verified on every offline fetch and on cache hits.
	StandinSHA256 string
}

// Entries returns the corpus manifest. Stand-in families are chosen to
// mimic each real graph's degeneracy profile: Holme–Kim preferential
// attachment for collaboration/web (small κ ≈ attachment k, heavy
// clustering), Chung–Lu power-law for the e-mail graph, and a planar
// triangular grid for the road network (κ = 3 class, locally clustered,
// globally sparse — the paper's favorite regime).
func Entries() []Entry {
	return []Entry{
		{
			Name:          "ca-GrQc",
			Category:      "collaboration",
			URL:           "https://snap.stanford.edu/data/ca-GrQc.txt.gz",
			License:       "SNAP (free for research; cite Leskovec et al.)",
			Standin:       func() *graph.Graph { return gen.HolmeKim(5242, 5, 0.7, 0xCA64) },
			StandinSHA256: "6f18d24389350efaf06a2ddf12531aa862a750ef7ea6ab0ccfae5aea8954d9cf",
		},
		{
			Name:          "email-Enron",
			Category:      "social",
			URL:           "https://snap.stanford.edu/data/email-Enron.txt.gz",
			License:       "SNAP (free for research; cite Leskovec et al.)",
			Standin:       func() *graph.Graph { return gen.ChungLu(36692, 10, 2.2, 0xE2909) },
			StandinSHA256: "662b22047081c6dceb09e76ac3147ea28038e16d486be245e6c4d2483f31edc9",
		},
		{
			Name:          "roadNet-PA-sample",
			Category:      "road",
			URL:           "https://snap.stanford.edu/data/roadNet-PA.txt.gz",
			License:       "SNAP (free for research; cite Leskovec et al.)",
			MaxEdges:      400_000,
			Standin:       func() *graph.Graph { return gen.TriangularGrid(160, 160) },
			StandinSHA256: "a7652cab41f6a2b9b3bf3454d74b6ace6ae840921347138905b428f43a65cc6a",
		},
		{
			Name:          "web-Stanford-sample",
			Category:      "web",
			URL:           "https://snap.stanford.edu/data/web-Stanford.txt.gz",
			License:       "SNAP (free for research; cite Leskovec et al.)",
			MaxEdges:      400_000,
			Standin:       func() *graph.Graph { return gen.HolmeKim(15000, 8, 0.6, 0x3EB51) },
			StandinSHA256: "ebc35d1cf3d3def0438eb2def71b8f8812877db917320e51f9d0a3aff69585d0",
		},
	}
}

// Find returns the entry with the given name.
func Find(name string) (Entry, bool) {
	for _, e := range Entries() {
		if e.Name == name {
			return e, true
		}
	}
	return Entry{}, false
}

// ManifestName is the per-cache-directory manifest file.
const ManifestName = "manifest.json"

// CachedGraph is one fetched graph as recorded in the cache manifest: what
// downstream consumers (the bench sweep, exp.CorpusSpecs) read instead of
// re-deriving facts from the corpus table.
type CachedGraph struct {
	Name     string `json:"name"`
	Category string `json:"category"`
	// Source is SourceReal or SourceStandin.
	Source string `json:"source"`
	N      int    `json:"n"`
	M      int    `json:"m"`
	// Bex and Text are cache-relative file names.
	Bex  string `json:"bex"`
	Text string `json:"text"`
	// Format is the binary format of Bex ("bex2" since schema 2).
	Format string `json:"format"`
	// BexSHA256 is the checksum of the canonical .bex as written.
	BexSHA256 string `json:"sha256_bex"`
	// RawSHA256 is the checksum of the raw download (real source only).
	RawSHA256 string `json:"sha256_raw,omitempty"`
	URL       string `json:"url,omitempty"`
	License   string `json:"license,omitempty"`
}

// Manifest is the cache directory's index of fetched graphs.
type Manifest struct {
	SchemaVersion int           `json:"schema_version"`
	Graphs        []CachedGraph `json:"graphs"`
}

// ManifestSchemaVersion versions the cache manifest independently of the
// BENCH schema. Schema 2 switched the canonical .bex files from the flat v1
// format to the block-indexed v2 format (and added Format to each record).
const ManifestSchemaVersion = 2

// ReadManifest loads the manifest of a cache directory. A missing manifest
// returns an empty one (fresh cache), not an error. An older-schema manifest
// also reads as empty: its cache files are in a superseded format, so Fetch
// regenerates them and downstream readers see the graphs as not yet fetched.
func ReadManifest(dir string) (*Manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if os.IsNotExist(err) {
		return &Manifest{SchemaVersion: ManifestSchemaVersion}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("corpus: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("corpus: parse %s: %w", ManifestName, err)
	}
	if m.SchemaVersion < ManifestSchemaVersion {
		return &Manifest{SchemaVersion: ManifestSchemaVersion}, nil
	}
	if m.SchemaVersion != ManifestSchemaVersion {
		return nil, fmt.Errorf("corpus: %s schema version %d, want %d",
			ManifestName, m.SchemaVersion, ManifestSchemaVersion)
	}
	return &m, nil
}

// WriteManifest writes the manifest (sorted by name, stable bytes).
func WriteManifest(dir string, m *Manifest) error {
	m.SchemaVersion = ManifestSchemaVersion
	sort.Slice(m.Graphs, func(i, j int) bool { return m.Graphs[i].Name < m.Graphs[j].Name })
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("corpus: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(filepath.Join(dir, ManifestName), data, 0o644); err != nil {
		return fmt.Errorf("corpus: %w", err)
	}
	return nil
}

// Graph returns the cached graph with the given name.
func (m *Manifest) Graph(name string) (CachedGraph, bool) {
	for _, g := range m.Graphs {
		if g.Name == name {
			return g, true
		}
	}
	return CachedGraph{}, false
}

// upsert replaces or appends the cached-graph record.
func (m *Manifest) upsert(g CachedGraph) {
	for i := range m.Graphs {
		if m.Graphs[i].Name == g.Name {
			m.Graphs[i] = g
			return
		}
	}
	m.Graphs = append(m.Graphs, g)
}

// FileSHA256 returns the hex SHA-256 of a file's contents.
func FileSHA256(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}
