package corpus

import (
	"bytes"
	"compress/gzip"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"degentri/internal/graph"
	"degentri/internal/stream"
)

// Options configures a fetch run.
type Options struct {
	// CacheDir is where canonical .bex/.txt files and the manifest live.
	CacheDir string
	// Offline synthesizes the deterministic stand-in corpus instead of
	// downloading — same file names, pinned seeds, checked-in checksums.
	// CI and airgapped runs always use this.
	Offline bool
	// Only restricts the run to the named entries (nil = all).
	Only []string
	// Force refetches/regenerates even when the cache already verifies.
	Force bool
	// Record pins the raw checksum of a real download whose manifest entry
	// has none (trust-on-first-use); without it, an unpinned entry refuses
	// to fetch online.
	Record bool
	// Client is the HTTP client for real downloads (nil = a default with a
	// 5-minute timeout). Tests point this at an httptest server via
	// BaseURL.
	Client *http.Client
	// BaseURL, when non-empty, replaces the scheme+host of every entry URL
	// (tests), keeping the path.
	BaseURL string
	// Log receives one-line progress messages (nil = discard).
	Log func(format string, args ...any)
}

func (o *Options) logf(format string, args ...any) {
	if o.Log != nil {
		o.Log(format, args...)
	}
}

// Status of one entry after a fetch run.
type Status struct {
	Entry  Entry
	Cached CachedGraph
	// FromCache is true when the existing cache verified and was reused.
	FromCache bool
}

// Fetch ensures every requested corpus entry is present and checksum-valid
// in the cache directory, downloading (online) or synthesizing (offline) as
// needed, and updates the cache manifest. It returns one Status per entry
// processed, in manifest order.
func Fetch(opts Options) ([]Status, error) {
	if opts.CacheDir == "" {
		return nil, fmt.Errorf("corpus: cache directory required")
	}
	if err := os.MkdirAll(opts.CacheDir, 0o755); err != nil {
		return nil, fmt.Errorf("corpus: %w", err)
	}
	manifest, err := ReadManifest(opts.CacheDir)
	if err != nil {
		return nil, err
	}

	only := map[string]bool{}
	for _, name := range opts.Only {
		if _, ok := Find(name); !ok {
			return nil, fmt.Errorf("corpus: unknown entry %q", name)
		}
		only[name] = true
	}

	var statuses []Status
	for _, e := range Entries() {
		if len(only) > 0 && !only[e.Name] {
			continue
		}
		st, err := fetchOne(e, manifest, &opts)
		if err != nil {
			return statuses, err
		}
		manifest.upsert(st.Cached)
		statuses = append(statuses, st)
	}
	if err := WriteManifest(opts.CacheDir, manifest); err != nil {
		return statuses, err
	}
	return statuses, nil
}

// fetchOne brings a single entry up to date in the cache.
func fetchOne(e Entry, manifest *Manifest, opts *Options) (Status, error) {
	wantSource := SourceReal
	if opts.Offline {
		wantSource = SourceStandin
	}

	// Cache hit: files present, manifest agrees on source, .bex checksum
	// verifies (against the checked-in stand-in sum offline, the recorded
	// sum online).
	if !opts.Force {
		if cached, ok := manifest.Graph(e.Name); ok && cached.Source == wantSource &&
			cached.Format == stream.BackendBex2 {
			bexPath := filepath.Join(opts.CacheDir, cached.Bex)
			txtPath := filepath.Join(opts.CacheDir, cached.Text)
			if fileExists(bexPath) && fileExists(txtPath) {
				sum, err := FileSHA256(bexPath)
				if err == nil && sum == cached.BexSHA256 && verifyExpected(e, opts, sum) == nil {
					opts.logf("%-22s cached (%s, %s)", e.Name, cached.Source, cached.Bex)
					return Status{Entry: e, Cached: cached, FromCache: true}, nil
				}
				opts.logf("%-22s cache invalid, refetching", e.Name)
			}
		}
	}

	if opts.Offline {
		return synthesizeStandin(e, opts)
	}
	return download(e, opts)
}

// verifyExpected checks a cached .bex checksum against the checked-in
// expectation, when one exists (offline stand-ins always have one).
func verifyExpected(e Entry, opts *Options, sum string) error {
	if opts.Offline && e.StandinSHA256 != "" && sum != e.StandinSHA256 {
		return fmt.Errorf("corpus: %s: stand-in checksum mismatch: got %s, want %s",
			e.Name, sum, e.StandinSHA256)
	}
	return nil
}

// download fetches, verifies, and canonicalizes one real graph.
func download(e Entry, opts *Options) (Status, error) {
	client := opts.Client
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Minute}
	}
	url := e.URL
	if opts.BaseURL != "" {
		if i := strings.Index(url, "//"); i >= 0 {
			if j := strings.IndexByte(url[i+2:], '/'); j >= 0 {
				url = strings.TrimRight(opts.BaseURL, "/") + url[i+2+j:]
			}
		}
	}
	if e.RawSHA256 == "" && !opts.Record {
		return Status{}, fmt.Errorf("corpus: %s has no pinned upstream checksum; "+
			"rerun with -record to pin it on first fetch (trust-on-first-use)", e.Name)
	}

	opts.logf("%-22s downloading %s", e.Name, url)
	resp, err := client.Get(url)
	if err != nil {
		return Status{}, fmt.Errorf("corpus: fetch %s: %w", e.Name, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return Status{}, fmt.Errorf("corpus: fetch %s: HTTP %s", e.Name, resp.Status)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		// Partial download: Content-Length mismatch or mid-body error.
		return Status{}, fmt.Errorf("corpus: fetch %s: %w", e.Name, err)
	}
	if resp.ContentLength >= 0 && int64(len(raw)) != resp.ContentLength {
		return Status{}, fmt.Errorf("corpus: fetch %s: truncated download: got %d bytes, want %d",
			e.Name, len(raw), resp.ContentLength)
	}

	sum := sha256.Sum256(raw)
	rawSHA := hex.EncodeToString(sum[:])
	if e.RawSHA256 != "" && rawSHA != e.RawSHA256 {
		return Status{}, fmt.Errorf("corpus: %s: checksum mismatch: got %s, want %s",
			e.Name, rawSHA, e.RawSHA256)
	}
	if e.RawSHA256 == "" {
		opts.logf("%-22s pinned raw sha256 %s (add to corpus.Entries to check in)", e.Name, rawSHA)
	}

	var body io.Reader = bytes.NewReader(raw)
	if strings.HasSuffix(url, ".gz") || (len(raw) >= 2 && raw[0] == 0x1f && raw[1] == 0x8b) {
		gz, err := gzip.NewReader(bytes.NewReader(raw))
		if err != nil {
			return Status{}, fmt.Errorf("corpus: %s: gunzip: %w", e.Name, err)
		}
		defer gz.Close()
		body = gz
	}
	edges, err := Canonicalize(body, e.MaxEdges)
	if err != nil {
		return Status{}, fmt.Errorf("corpus: %s: %w", e.Name, err)
	}
	return finishEntry(e, opts, edges, SourceReal, rawSHA)
}

// synthesizeStandin generates the deterministic offline stand-in.
func synthesizeStandin(e Entry, opts *Options) (Status, error) {
	opts.logf("%-22s synthesizing offline stand-in", e.Name)
	g := e.Standin()
	edges, err := stream.Collect(stream.FromGraph(g))
	if err != nil {
		return Status{}, fmt.Errorf("corpus: %s: %w", e.Name, err)
	}
	st, err := finishEntry(e, opts, edges, SourceStandin, "")
	if err != nil {
		return Status{}, err
	}
	if e.StandinSHA256 != "" && st.Cached.BexSHA256 != e.StandinSHA256 {
		return Status{}, fmt.Errorf("corpus: %s: stand-in checksum mismatch: got %s, want %s "+
			"(the generator or the .bex codec changed; re-pin deliberately)",
			e.Name, st.Cached.BexSHA256, e.StandinSHA256)
	}
	return st, nil
}

// finishEntry writes the canonical cache files and builds the manifest record.
func finishEntry(e Entry, opts *Options, edges []graph.Edge, source, rawSHA string) (Status, error) {
	bexSHA, err := writeCanonical(opts.CacheDir, e.Name, edges)
	if err != nil {
		return Status{}, err
	}
	n, m := edgeFacts(edges)
	cached := CachedGraph{
		Name: e.Name, Category: e.Category, Source: source,
		N: n, M: m,
		Bex: e.Name + stream.BexExt, Text: e.Name + ".txt",
		Format:    stream.BackendBex2,
		BexSHA256: bexSHA, RawSHA256: rawSHA,
		URL: e.URL, License: e.License,
	}
	opts.logf("%-22s wrote %s (n=%d, m=%d, sha256=%s…)", e.Name, cached.Bex, n, m, bexSHA[:12])
	return Status{Entry: e, Cached: cached}, nil
}

func fileExists(path string) bool {
	info, err := os.Stat(path)
	return err == nil && !info.IsDir()
}
