package corpus

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"degentri/internal/graph"
	"degentri/internal/stream"
)

func TestCanonicalize(t *testing.T) {
	in := strings.Join([]string{
		"# Directed graph: test",
		"% another comment style",
		"",
		"10\t20",
		"20\t10",      // reverse duplicate: dropped
		"10\t10",      // self-loop: dropped
		"  30 10 ",    // leading/trailing space, space-separated
		"20\t30\t999", // trailing column ignored
		"40 50",
	}, "\n") + "\n"
	edges, err := Canonicalize(strings.NewReader(in), 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []graph.Edge{{U: 0, V: 1}, {U: 2, V: 0}, {U: 1, V: 2}, {U: 3, V: 4}}
	if len(edges) != len(want) {
		t.Fatalf("got %d edges %v, want %d %v", len(edges), edges, len(want), want)
	}
	for i := range want {
		if edges[i] != want[i] {
			t.Errorf("edge %d = %v, want %v", i, edges[i], want[i])
		}
	}
}

func TestCanonicalizeMaxEdges(t *testing.T) {
	var b strings.Builder
	for i := 0; i < 100; i++ {
		fmt.Fprintf(&b, "%d %d\n", i, i+1)
	}
	edges, err := Canonicalize(strings.NewReader(b.String()), 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) != 10 {
		t.Fatalf("prefix cap kept %d edges, want 10", len(edges))
	}
}

func TestCanonicalizeMalformed(t *testing.T) {
	for _, in := range []string{"1 x\n", "justone\n", "1\n"} {
		if _, err := Canonicalize(strings.NewReader(in), 0); err == nil {
			t.Errorf("Canonicalize(%q) accepted malformed input", in)
		}
	}
}

// testEntry is a tiny corpus entry pointed at an httptest server.
func testEntry(name, rawSHA string) Entry {
	return Entry{
		Name:      name,
		Category:  "test",
		URL:       "http://upstream.invalid/data/" + name + ".txt.gz",
		RawSHA256: rawSHA,
		Standin:   func() *graph.Graph { panic("offline not used here") },
	}
}

// gzBytes gzips a text edge list.
func gzBytes(t *testing.T, text string) []byte {
	t.Helper()
	var buf bytes.Buffer
	gz := gzip.NewWriter(&buf)
	if _, err := gz.Write([]byte(text)); err != nil {
		t.Fatal(err)
	}
	if err := gz.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func sha256Hex(b []byte) string {
	sum, _ := FileSHA256(writeTemp(b))
	return sum
}

var tempSeq int

func writeTemp(b []byte) string {
	tempSeq++
	path := filepath.Join(os.TempDir(), fmt.Sprintf("corpus-test-%d-%d", os.Getpid(), tempSeq))
	_ = os.WriteFile(path, b, 0o644)
	return path
}

func TestDownloadVerifiesChecksum(t *testing.T) {
	payload := gzBytes(t, "1 2\n2 3\n3 1\n")
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(payload)
	}))
	defer srv.Close()

	dir := t.TempDir()
	good := testEntry("good", sha256Hex(payload))
	st, err := download(good, &Options{CacheDir: dir, Client: srv.Client(), BaseURL: srv.URL})
	if err != nil {
		t.Fatalf("download with matching checksum: %v", err)
	}
	if st.Cached.M != 3 || st.Cached.Source != SourceReal {
		t.Errorf("cached record wrong: %+v", st.Cached)
	}
	if !fileExists(filepath.Join(dir, "good.bex")) || !fileExists(filepath.Join(dir, "good.txt")) {
		t.Error("cache files not written")
	}

	// Checksum mismatch must fail and leave no cache files behind.
	bad := testEntry("bad", strings.Repeat("0", 64))
	_, err = download(bad, &Options{CacheDir: dir, Client: srv.Client(), BaseURL: srv.URL})
	if err == nil || !strings.Contains(err.Error(), "checksum mismatch") {
		t.Fatalf("mismatched checksum error = %v, want checksum mismatch", err)
	}
	if fileExists(filepath.Join(dir, "bad.bex")) || fileExists(filepath.Join(dir, "bad.txt")) {
		t.Error("checksum-mismatch download left cache files behind")
	}
}

func TestDownloadUnpinnedRequiresRecord(t *testing.T) {
	payload := gzBytes(t, "1 2\n")
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(payload)
	}))
	defer srv.Close()

	e := testEntry("unpinned", "")
	_, err := download(e, &Options{CacheDir: t.TempDir(), Client: srv.Client(), BaseURL: srv.URL})
	if err == nil || !strings.Contains(err.Error(), "-record") {
		t.Fatalf("unpinned fetch without -record: err = %v, want refusal", err)
	}
	// With Record it proceeds (trust-on-first-use).
	if _, err := download(e, &Options{CacheDir: t.TempDir(), Client: srv.Client(), BaseURL: srv.URL, Record: true}); err != nil {
		t.Fatalf("unpinned fetch with Record: %v", err)
	}
}

func TestDownloadPartialBody(t *testing.T) {
	payload := gzBytes(t, strings.Repeat("1 2\n3 4\n", 4096))
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Declare the full length but send half and die: a truncated
		// transfer, as a flaky mirror would produce.
		w.Header().Set("Content-Length", fmt.Sprint(len(payload)))
		w.Write(payload[:len(payload)/2])
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		conn, _, _ := w.(http.Hijacker).Hijack()
		conn.Close()
	}))
	defer srv.Close()

	dir := t.TempDir()
	e := testEntry("partial", sha256Hex(payload))
	_, err := download(e, &Options{CacheDir: dir, Client: srv.Client(), BaseURL: srv.URL})
	if err == nil {
		t.Fatal("partial download did not error")
	}
	if fileExists(filepath.Join(dir, "partial.bex")) {
		t.Error("partial download left a cache file behind")
	}
}

func TestDownloadTruncatedGzip(t *testing.T) {
	payload := gzBytes(t, strings.Repeat("5 6\n7 8\n", 1024))
	truncated := payload[:len(payload)/2] // valid header, cut mid-stream
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(truncated)
	}))
	defer srv.Close()

	e := testEntry("gztrunc", sha256Hex(truncated))
	_, err := download(e, &Options{CacheDir: t.TempDir(), Client: srv.Client(), BaseURL: srv.URL})
	if err == nil {
		t.Fatal("truncated gzip stream did not error")
	}
}

func TestOfflineFetchDeterministicAndCached(t *testing.T) {
	dir := t.TempDir()
	var log bytes.Buffer
	logf := func(format string, args ...any) { fmt.Fprintf(&log, format+"\n", args...) }

	sts, err := Fetch(Options{CacheDir: dir, Offline: true, Only: []string{"ca-GrQc"}, Log: logf})
	if err != nil {
		t.Fatalf("offline fetch: %v", err)
	}
	if len(sts) != 1 || sts[0].FromCache {
		t.Fatalf("first fetch: %+v", sts)
	}
	e, _ := Find("ca-GrQc")
	if sts[0].Cached.BexSHA256 != e.StandinSHA256 {
		t.Errorf("stand-in sha = %s, want pinned %s", sts[0].Cached.BexSHA256, e.StandinSHA256)
	}

	// Second run must be a verified cache hit.
	sts2, err := Fetch(Options{CacheDir: dir, Offline: true, Only: []string{"ca-GrQc"}, Log: logf})
	if err != nil {
		t.Fatalf("second offline fetch: %v", err)
	}
	if !sts2[0].FromCache {
		t.Error("second fetch did not hit the cache")
	}

	// Corrupt the cached .bex: the next fetch must detect and regenerate.
	bexPath := filepath.Join(dir, "ca-GrQc.bex")
	data, _ := os.ReadFile(bexPath)
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(bexPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	sts3, err := Fetch(Options{CacheDir: dir, Offline: true, Only: []string{"ca-GrQc"}, Log: logf})
	if err != nil {
		t.Fatalf("fetch over corrupted cache: %v", err)
	}
	if sts3[0].FromCache {
		t.Error("corrupted cache was served as a hit")
	}
	sum, _ := FileSHA256(bexPath)
	if sum != e.StandinSHA256 {
		t.Error("regenerated cache file does not match the pinned checksum")
	}

	// The manifest must record the graph with its facts.
	man, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	g, ok := man.Graph("ca-GrQc")
	if !ok || g.Source != SourceStandin || g.N == 0 || g.M == 0 {
		t.Errorf("manifest record wrong: %+v", g)
	}
	if g.Format != stream.BackendBex2 {
		t.Errorf("manifest format = %q, want %q", g.Format, stream.BackendBex2)
	}
	if b := stream.BackendOf(mustOpen(t, bexPath)); b != stream.BackendBex2 {
		t.Errorf("cached .bex opens as backend %q, want %q", b, stream.BackendBex2)
	}

	// Text and .bex cache files must contain the identical edge sequence
	// (that is what makes their estimates bit-identical).
	bexEdges, err := stream.Collect(mustOpen(t, bexPath))
	if err != nil {
		t.Fatal(err)
	}
	txtEdges, err := stream.Collect(mustOpen(t, filepath.Join(dir, "ca-GrQc.txt")))
	if err != nil {
		t.Fatal(err)
	}
	if len(bexEdges) != len(txtEdges) {
		t.Fatalf("bex has %d edges, txt %d", len(bexEdges), len(txtEdges))
	}
	for i := range bexEdges {
		if bexEdges[i] != txtEdges[i] {
			t.Fatalf("edge %d differs between .bex (%v) and .txt (%v)", i, bexEdges[i], txtEdges[i])
		}
	}
}

func mustOpen(t *testing.T, path string) stream.Stream {
	t.Helper()
	s, err := stream.OpenAuto(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestOldSchemaManifestRegenerates(t *testing.T) {
	dir := t.TempDir()
	old := `{"schema_version": 1, "graphs": [{"name": "ca-GrQc", "source": "offline-standin", "bex": "ca-GrQc.bex", "text": "ca-GrQc.txt"}]}`
	if err := os.WriteFile(filepath.Join(dir, ManifestName), []byte(old), 0o644); err != nil {
		t.Fatal(err)
	}
	// Old-schema manifests read as empty: their cache files are in the
	// superseded v1 format, so the graphs appear unfetched.
	man, err := ReadManifest(dir)
	if err != nil {
		t.Fatalf("old-schema manifest should read as fresh, got %v", err)
	}
	if len(man.Graphs) != 0 || man.SchemaVersion != ManifestSchemaVersion {
		t.Fatalf("old-schema manifest read as %+v, want empty at schema %d", man, ManifestSchemaVersion)
	}
	// A fetch over the old cache regenerates (no stale hit) and upgrades the
	// on-disk manifest to the current schema.
	sts, err := Fetch(Options{CacheDir: dir, Offline: true, Only: []string{"ca-GrQc"}})
	if err != nil {
		t.Fatalf("fetch over old-schema cache: %v", err)
	}
	if sts[0].FromCache {
		t.Error("old-schema cache was served as a hit")
	}
	man2, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if g, ok := man2.Graph("ca-GrQc"); !ok || g.Format != stream.BackendBex2 {
		t.Errorf("upgraded manifest record = %+v", g)
	}

	// A future schema stays a hard error (we cannot know its semantics).
	if err := os.WriteFile(filepath.Join(dir, ManifestName),
		[]byte(`{"schema_version": 99, "graphs": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadManifest(dir); err == nil {
		t.Error("future-schema manifest did not error")
	}
}

func TestFetchUnknownEntry(t *testing.T) {
	_, err := Fetch(Options{CacheDir: t.TempDir(), Offline: true, Only: []string{"nope"}})
	if err == nil || !strings.Contains(err.Error(), "unknown entry") {
		t.Fatalf("unknown entry error = %v", err)
	}
}

func TestEntriesWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range Entries() {
		if e.Name == "" || e.Category == "" || e.URL == "" || e.License == "" {
			t.Errorf("entry %q incomplete: %+v", e.Name, e)
		}
		if seen[e.Name] {
			t.Errorf("duplicate entry name %q", e.Name)
		}
		seen[e.Name] = true
		if e.Standin == nil || len(e.StandinSHA256) != 64 {
			t.Errorf("entry %q has no offline stand-in contract", e.Name)
		}
	}
	if len(seen) < 3 {
		t.Errorf("corpus has %d entries; the error-vs-ε acceptance needs at least 3", len(seen))
	}
}
