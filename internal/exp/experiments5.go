package exp

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"degentri/internal/core"
	"degentri/internal/gen"
	"degentri/internal/sched"
	"degentri/internal/stream"
)

// E13ScanFusion measures the pass-fusion scan scheduler on a file-backed
// stream, where wall-clock is dominated by physical scans: (a) R repeated
// trials run unfused (every logical pass its own scan) versus fused onto the
// scheduler (every scan serves all trials), and (b) the geometric search of
// AutoEstimate run sequentially (SpecWidth 1) versus speculatively fused.
// Estimates must be bit-identical between the fused and unfused executions —
// any divergence fails the experiment hard, like E5 and E12 do: fusion is an
// execution strategy, never an approximation.
func E13ScanFusion(scale Scale) ([]*Table, error) {
	n := scale.pick(3000, 40000, 170000)
	k := scale.pick(4, 6, 6)
	trials := scale.pick(4, 8, 8)
	g := gen.HolmeKim(n, k, 0.7, 131)
	m := g.NumEdges()

	dir, err := os.MkdirTemp("", "e13")
	if err != nil {
		return nil, fmt.Errorf("E13: %w", err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "e13.bex")
	if _, err := stream.WriteBexFile(path, stream.FromGraph(g)); err != nil {
		return nil, fmt.Errorf("E13: %w", err)
	}

	cfg := DefaultCoreConfig(NewWorkload("e13", g, 7), 0.2)
	cfg.Workers = 1 // isolate the scan economy from shard parallelism

	// --- Table 1: R fused trials vs R unfused trials. ---
	t1 := NewTable("E13a",
		fmt.Sprintf("Fused trials on a .bex file (m=%s, %d trials, fixed guess)", FormatCount(int64(m)), trials),
		"mode", "logical passes", "physical scans", "scan ratio", "wall", "mean T̂")

	unfusedResults := make([]core.Result, trials)
	unfusedStart := time.Now()
	unfusedScans := 0
	for i := 0; i < trials; i++ {
		src, err := stream.OpenBex(path)
		if err != nil {
			return nil, fmt.Errorf("E13 unfused trial %d: %w", i, err)
		}
		runCfg := cfg
		runCfg.Seed = cfg.Seed + uint64(i)*7919
		res, rerr := core.EstimateTriangles(src, runCfg)
		src.Close()
		if rerr != nil {
			return nil, fmt.Errorf("E13 unfused trial %d: %w", i, rerr)
		}
		unfusedResults[i] = res
		unfusedScans += res.Scans
	}
	unfusedWall := time.Since(unfusedStart)

	src, err := stream.OpenBex(path)
	if err != nil {
		return nil, fmt.Errorf("E13: %w", err)
	}
	defer src.Close()
	fusedStart := time.Now()
	ft, err := RunTrialsFused(src, m, trials, 1, func(c *sched.Client, trial int) (core.Result, error) {
		runCfg := cfg
		runCfg.Seed = cfg.Seed + uint64(trial)*7919
		est := core.NewEstimator(runCfg)
		est.TeeSpace(c.Scheduler().Meter())
		return est.RunOn(c)
	})
	if err != nil {
		return nil, fmt.Errorf("E13 fused trials: %w", err)
	}
	fusedWall := time.Since(fusedStart)

	totalPasses := 0
	var meanUnfused, meanFused float64
	for i := range unfusedResults {
		if ft.Results[i].Estimate != unfusedResults[i].Estimate {
			return nil, fmt.Errorf("E13: trial %d fused estimate %v != unfused %v (fusion must be bit-identical)",
				i, ft.Results[i].Estimate, unfusedResults[i].Estimate)
		}
		totalPasses += unfusedResults[i].Passes
		meanUnfused += unfusedResults[i].Estimate
		meanFused += ft.Results[i].Estimate
	}
	maxTrialPasses := 0
	for _, r := range ft.Results {
		if r.Passes > maxTrialPasses {
			maxTrialPasses = r.Passes
		}
	}
	if ft.Scans > maxTrialPasses {
		return nil, fmt.Errorf("E13: %d fused trials cost %d scans, above one trial's %d passes",
			trials, ft.Scans, maxTrialPasses)
	}
	t1.AddRow("unfused", fmt.Sprintf("%d", totalPasses), fmt.Sprintf("%d", unfusedScans),
		"1.00", unfusedWall.Round(time.Millisecond).String(), FormatFloat(meanUnfused/float64(trials)))
	t1.AddRow("fused", fmt.Sprintf("%d", totalPasses), fmt.Sprintf("%d", ft.Scans),
		FormatFloat(float64(ft.Scans)/float64(unfusedScans)),
		fusedWall.Round(time.Millisecond).String(), FormatFloat(meanFused/float64(trials)))
	t1.AddNote("R trials fused onto the scan scheduler cost at most the physical scans of one trial (enforced, hard failure); estimates are bit-identical per trial.")

	// --- Table 2: geometric search, sequential vs speculative. ---
	t2 := NewTable("E13b",
		"Geometric search on the same file: speculative probe batches share scans",
		"SpecWidth", "logical passes", "physical scans", "scan ratio", "wall", "T̂")
	autoCfg := core.DefaultConfig(0.2, g.Degeneracy(), 1)
	autoCfg.CR, autoCfg.CL, autoCfg.CS = 8, 8, 8
	autoCfg.Seed = 5
	autoCfg.Workers = 1
	var baseEstimate float64
	var baseScans int
	for i, width := range []int{1, 2, 4} {
		asrc, err := stream.OpenBex(path)
		if err != nil {
			return nil, fmt.Errorf("E13: %w", err)
		}
		runCfg := autoCfg
		runCfg.SpecWidth = width
		start := time.Now()
		res, rerr := core.AutoEstimate(asrc, runCfg)
		wall := time.Since(start)
		asrc.Close()
		if rerr != nil {
			return nil, fmt.Errorf("E13 auto width=%d: %w", width, rerr)
		}
		if i == 0 {
			baseEstimate, baseScans = res.Estimate, res.Scans
		} else if res.Estimate != baseEstimate {
			return nil, fmt.Errorf("E13: width=%d estimate %v != sequential %v (speculation must be bit-identical)",
				width, res.Estimate, baseEstimate)
		}
		t2.AddRow(fmt.Sprintf("%d", width), fmt.Sprintf("%d", res.Passes), fmt.Sprintf("%d", res.Scans),
			FormatFloat(float64(res.Scans)/float64(baseScans)), wall.Round(time.Millisecond).String(),
			FormatFloat(res.Estimate))
	}
	t2.AddNote("width w fuses pass k of w speculative probes onto one scan; the accepted estimate is pinned equal to the sequential search's.")
	return []*Table{t1, t2}, nil
}
