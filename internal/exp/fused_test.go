package exp_test

// Acceptance pins for the fused trial runner (ISSUE 5): R fused trials on a
// file stream perform at most the physical scans of one trial, and every
// per-trial Result is bit-identical to running that trial unfused.

import (
	"path/filepath"
	"testing"

	"degentri/internal/core"
	"degentri/internal/exp"
	"degentri/internal/gen"
	"degentri/internal/sched"
	"degentri/internal/stream"
)

// trialCfg is the per-trial config used by both the fused and unfused runs:
// fixed guess, keyed seed per trial (the CoreRunner convention).
func trialCfg(base core.Config, trial int) core.Config {
	cfg := base
	cfg.Seed = base.Seed + uint64(trial)*7919
	return cfg
}

// TestFusedTrialsScanBudgetOnFile is the acceptance criterion: R = 8 trials
// over one .bex file, fused, must cost at most the physical scans of one
// trial (its logical passes plus the shared counting scan is the generous
// upper bound; the pinned expectation is exactly max over trials).
func TestFusedTrialsScanBudgetOnFile(t *testing.T) {
	g := gen.HolmeKim(6000, 5, 0.6, 41)
	dir := t.TempDir()
	path := filepath.Join(dir, "trials.bex")
	if _, err := stream.WriteBexFile(path, stream.FromGraph(g)); err != nil {
		t.Fatal(err)
	}
	const trials = 8
	base := core.DefaultConfig(0.1, g.Degeneracy(), g.TriangleCount())
	base.CR, base.CL, base.CS = 16, 16, 8
	base.Seed = 3

	// Unfused references: each trial alone on its own stream.
	unfused := make([]core.Result, trials)
	for i := range unfused {
		src, err := stream.OpenBex(path)
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.EstimateTriangles(src, trialCfg(base, i))
		src.Close()
		if err != nil {
			t.Fatalf("unfused trial %d: %v", i, err)
		}
		unfused[i] = res
	}

	src, err := stream.OpenBex(path)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	m, known := src.Len()
	if !known {
		t.Fatal("bex length must be known")
	}
	ft, err := exp.RunTrialsFused(src, m, trials, 4, func(c *sched.Client, trial int) (core.Result, error) {
		est := core.NewEstimator(trialCfg(base, trial))
		est.TeeSpace(c.Scheduler().Meter())
		return est.RunOn(c)
	})
	if err != nil {
		t.Fatal(err)
	}

	maxPasses := 0
	for i, res := range ft.Results {
		want := unfused[i]
		got := res
		got.Scans = want.Scans // physical accounting is the fused run's, checked below
		if got != want {
			t.Errorf("trial %d: fused result diverges from unfused:\n  fused   %+v\n  unfused %+v", i, got, want)
		}
		if res.Passes > maxPasses {
			maxPasses = res.Passes
		}
	}
	// The pin: R fused trials ≤ the physical scans of one trial.
	if ft.Scans > maxPasses {
		t.Errorf("%d fused trials cost %d scans, want at most one trial's %d passes", trials, ft.Scans, maxPasses)
	}
	// And the concurrent space peak covers all live trials at once.
	var soloPeak int64
	for _, res := range unfused {
		if res.SpaceWords > soloPeak {
			soloPeak = res.SpaceWords
		}
	}
	if ft.PeakSpaceWords <= soloPeak {
		t.Errorf("group peak %d does not exceed the largest solo peak %d (concurrent states must add)",
			ft.PeakSpaceWords, soloPeak)
	}
}

// TestFusedTrialsWithUnknownKappaFuseThePeel runs fused trials whose configs
// leave κ unresolved: each trial's degeneracy peel runs as scheduler passes
// and fuses with its peers (and with their core passes when phases skew), so
// the whole run still fits in one trial's scan budget. This is the
// degen-fusion path of ISSUE 5 exercised end to end.
func TestFusedTrialsWithUnknownKappaFuseThePeel(t *testing.T) {
	g := gen.HolmeKim(5000, 4, 0.5, 13)
	dir := t.TempDir()
	path := filepath.Join(dir, "peel.txt")
	if err := stream.WriteGraphFile(path, g, "fused peel"); err != nil {
		t.Fatal(err)
	}
	const trials = 4
	base := core.DefaultConfig(0.15, 0, 1) // Kappa 0: every trial resolves it in-stream
	base.CR, base.CL, base.CS = 8, 8, 8
	base.TGuess = int64(g.TriangleCount())
	base.Seed = 11

	unfused := make([]core.Result, trials)
	for i := range unfused {
		fs := stream.OpenFile(path)
		res, err := core.EstimateTriangles(fs, trialCfg(base, i))
		fs.Close()
		if err != nil {
			t.Fatalf("unfused trial %d: %v", i, err)
		}
		unfused[i] = res
	}

	fs := stream.OpenFile(path)
	defer fs.Close()
	m, err := stream.CountEdges(fs)
	if err != nil {
		t.Fatal(err)
	}
	ft, err := exp.RunTrialsFused(fs, m, trials, 2, func(c *sched.Client, trial int) (core.Result, error) {
		est := core.NewEstimator(trialCfg(base, trial))
		est.TeeSpace(c.Scheduler().Meter())
		return est.RunOn(c)
	})
	if err != nil {
		t.Fatal(err)
	}
	maxPasses := 0
	for i, res := range ft.Results {
		want := unfused[i]
		// The unfused run pays its own counting pass; the fused run shares
		// the harness's single counting scan, so align that before the
		// bit-identity check.
		got := res
		got.Passes++
		got.Scans = want.Scans
		if got != want {
			t.Errorf("trial %d: fused (κ-peeling) result diverges:\n  fused   %+v\n  unfused %+v", i, got, want)
		}
		if res.Passes > maxPasses {
			maxPasses = res.Passes
		}
	}
	if ft.Scans > maxPasses {
		t.Errorf("%d fused κ-peeling trials cost %d scans, want at most %d", trials, ft.Scans, maxPasses)
	}
}
