package exp

import (
	"testing"

	"degentri/internal/gen"
)

// BenchmarkRunTrialsSequential measures the trial harness with one worker.
func BenchmarkRunTrialsSequential(b *testing.B) {
	benchmarkRunTrials(b, 1)
}

// BenchmarkRunTrialsParallel measures the trial harness with the default
// worker pool (one worker per CPU).
func BenchmarkRunTrialsParallel(b *testing.B) {
	benchmarkRunTrials(b, 0)
}

func benchmarkRunTrials(b *testing.B, workers int) {
	b.Helper()
	w := NewWorkload("pref-attach-k4", gen.HolmeKim(4000, 4, 0.7, 101), 14)
	run := CoreRunner(w, DefaultCoreConfig(w, 0.1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunTrialsWorkers(run, 8, float64(w.T), workers); err != nil {
			b.Fatal(err)
		}
	}
}
