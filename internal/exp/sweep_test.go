package exp

import (
	"path/filepath"
	"testing"

	"degentri/internal/corpus"
)

// fetchTestCorpus synthesizes a one-graph offline corpus cache.
func fetchTestCorpus(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	if _, err := corpus.Fetch(corpus.Options{CacheDir: dir, Offline: true, Only: []string{"ca-GrQc"}}); err != nil {
		t.Fatalf("offline corpus fetch: %v", err)
	}
	return dir
}

func TestCorpusSpecs(t *testing.T) {
	dir := fetchTestCorpus(t)
	specs, err := CorpusSpecs(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 1 || specs[0].Name != "ca-GrQc" {
		t.Fatalf("specs = %+v", specs)
	}
	s := specs[0]
	if s.Source != corpus.SourceStandin || s.Category != "collaboration" {
		t.Errorf("spec provenance wrong: %+v", s)
	}
	if s.Path != filepath.Join(dir, "ca-GrQc.bex") {
		t.Errorf("spec path = %s", s.Path)
	}

	w, err := s.Load(ScaleSmoke)
	if err != nil {
		t.Fatal(err)
	}
	if w.M == 0 || w.N == 0 || w.T == 0 || w.Kappa == 0 {
		t.Errorf("file-backed workload missing ground truth: %+v", w)
	}
	if w.Source != corpus.SourceStandin || w.Path != s.Path {
		t.Errorf("workload provenance not carried: %+v", w)
	}

	// An empty cache is a usage error, not a silent empty sweep.
	if _, err := CorpusSpecs(t.TempDir()); err == nil {
		t.Error("CorpusSpecs on an empty cache did not error")
	}
}

func TestGeneratorSpecsMatchWorkloads(t *testing.T) {
	// The spec table is the single definition: loading it must reproduce the
	// legacy workload constructors exactly.
	ws := StandardWorkloads(ScaleSmoke)
	specs := StandardSpecs()
	if len(ws) != len(specs) {
		t.Fatalf("%d workloads, %d specs", len(ws), len(specs))
	}
	for i, s := range specs {
		w, err := s.Load(ScaleSmoke)
		if err != nil {
			t.Fatal(err)
		}
		if w.Name != ws[i].Name || w.M != ws[i].M || w.T != ws[i].T || w.Kappa != ws[i].Kappa ||
			w.StreamSeed != ws[i].StreamSeed {
			t.Errorf("spec %q loads %+v, workloads gave %+v", s.Name, w, ws[i])
		}
		if w.Source != SourceGenerator {
			t.Errorf("generator spec %q has source %q", s.Name, w.Source)
		}
	}
}

func TestBenchSweep(t *testing.T) {
	dir := fetchTestCorpus(t)
	opts := BenchOptions{CorpusDir: dir, Entry: 4, PR: 8, Date: "2026-08-08", Trials: 2}

	file, table, err := BenchSweep(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(file.Workloads) != 1 {
		t.Fatalf("sweep produced %d workloads", len(file.Workloads))
	}
	w := file.Workloads[0]
	if w.Graph != "ca-GrQc" || w.ExactT == 0 || w.Kappa == 0 {
		t.Errorf("workload facts wrong: %+v", w)
	}
	if w.KappaApprox < w.Kappa {
		t.Errorf("κ̂ = %d below exact κ = %d (peel bound must be an upper bound)", w.KappaApprox, w.Kappa)
	}
	for _, key := range []string{
		"err.median.eps0.20", "err.median.eps0.10", "err.median.eps0.05",
		"estimate.trial0.eps0.10", "passes.eps0.10", "scans.eps0.10",
		"space.mean_words.eps0.10", "kappa_hat.passes",
		"invariant.workers.eps0.10", "edges_per_s.bex", "wall_ms.sweep",
	} {
		if _, ok := w.Metrics[key]; !ok {
			t.Errorf("metric %q missing", key)
		}
	}
	if len(table.Rows) != 1 {
		t.Errorf("summary table has %d rows", len(table.Rows))
	}

	// The sweep is deterministic: a second run reproduces every
	// deterministic metric bit for bit (timing metrics may differ).
	file2, _, err := BenchSweep(opts)
	if err != nil {
		t.Fatal(err)
	}
	w2 := file2.Workloads[0]
	for key, m := range w.Metrics {
		if m.Class != "deterministic" {
			continue
		}
		if m2 := w2.Metrics[key]; m2.Value != m.Value {
			t.Errorf("metric %q not deterministic: %v then %v", key, m.Value, m2.Value)
		}
	}

	// The unfused injection multiplies physical scans without changing any
	// estimate: exactly the regression the CI gate proves it can catch.
	opts.Unfused = true
	fileU, _, err := BenchSweep(opts)
	if err != nil {
		t.Fatal(err)
	}
	wu := fileU.Workloads[0]
	fusedScans := w.Metrics["scans.eps0.10"].Value
	unfusedScans := wu.Metrics["scans.eps0.10"].Value
	if unfusedScans <= fusedScans {
		t.Errorf("unfused scans %v not above fused %v", unfusedScans, fusedScans)
	}
	if wu.Metrics["estimate.trial0.eps0.10"].Value != w.Metrics["estimate.trial0.eps0.10"].Value {
		t.Error("unfused run changed the estimate; fusion must be purely an execution strategy")
	}
}
