package exp

import (
	"fmt"
	"path/filepath"

	"degentri/internal/corpus"
	"degentri/internal/gen"
	"degentri/internal/graph"
	"degentri/internal/stream"
)

// Scale selects how large the experiment workloads are. Smoke keeps every
// experiment in the low milliseconds for tests; Default is what the benches
// and cmd/experiments run; Full is the laptop-scale configuration recorded in
// EXPERIMENTS.md.
type Scale int

const (
	ScaleSmoke Scale = iota
	ScaleDefault
	ScaleFull
)

// String implements fmt.Stringer.
func (s Scale) String() string {
	switch s {
	case ScaleSmoke:
		return "smoke"
	case ScaleDefault:
		return "default"
	case ScaleFull:
		return "full"
	default:
		return fmt.Sprintf("Scale(%d)", int(s))
	}
}

// pick returns a size appropriate for the scale.
func (s Scale) pick(smoke, def, full int) int {
	switch s {
	case ScaleSmoke:
		return smoke
	case ScaleFull:
		return full
	default:
		return def
	}
}

// SourceGenerator marks workloads built by internal/gen; corpus-backed
// workloads carry corpus.SourceReal or corpus.SourceStandin instead.
const SourceGenerator = "generator"

// Spec declares one workload before it is loaded: either a generator recipe
// (Build) or a file-backed corpus graph (Path). The E-experiments and the
// bench sweep share these declarations — one table defines a workload, and
// Load turns it into a Workload with its ground truth computed, wherever the
// edges come from.
type Spec struct {
	// Name is the workload key (for corpus specs, the corpus entry name).
	Name string
	// Category is the graph's domain (corpus specs only; empty for
	// generators).
	Category string
	// Source is SourceGenerator, corpus.SourceReal, or corpus.SourceStandin.
	Source string
	// StreamSeed seeds the per-trial stream shuffles of Workload.Stream.
	StreamSeed uint64
	// Build synthesizes the graph at a given scale (generator specs).
	Build func(scale Scale) *graph.Graph
	// Path is the cached edge file (.bex or .txt) of a corpus spec; its
	// canonical order is also the workload's file stream order.
	Path string
}

// Load materializes the spec into a Workload with ground truth (m, n, exact
// T, κ, max degree) computed. File-backed specs read their cache file; the
// scale only affects generator specs.
func (s Spec) Load(scale Scale) (Workload, error) {
	var g *graph.Graph
	switch {
	case s.Path != "":
		src, err := stream.OpenAuto(s.Path)
		if err != nil {
			return Workload{}, fmt.Errorf("exp: load %s: %w", s.Name, err)
		}
		g, err = stream.Materialize(src)
		src.Close()
		if err != nil {
			return Workload{}, fmt.Errorf("exp: load %s: %w", s.Name, err)
		}
	case s.Build != nil:
		g = s.Build(scale)
	default:
		return Workload{}, fmt.Errorf("exp: spec %q has neither Build nor Path", s.Name)
	}
	w := NewWorkload(s.Name, g, s.StreamSeed)
	w.Category = s.Category
	w.Source = s.Source
	if w.Source == "" {
		w.Source = SourceGenerator
	}
	w.Path = s.Path
	return w, nil
}

// LoadAll loads every spec at the given scale.
func LoadAll(specs []Spec, scale Scale) ([]Workload, error) {
	ws := make([]Workload, 0, len(specs))
	for _, s := range specs {
		w, err := s.Load(scale)
		if err != nil {
			return nil, err
		}
		ws = append(ws, w)
	}
	return ws, nil
}

// mustLoadAll loads generator-backed specs, which cannot fail (no I/O).
func mustLoadAll(specs []Spec, scale Scale) []Workload {
	ws, err := LoadAll(specs, scale)
	if err != nil {
		panic(err)
	}
	return ws
}

// Workload is one benchmark graph with its ground truth precomputed.
type Workload struct {
	Name       string
	Graph      *graph.Graph
	M          int
	N          int
	T          int64
	Kappa      int
	MaxDegree  int
	StreamSeed uint64
	// Category, Source, and Path carry the provenance of corpus-backed
	// workloads (empty/SourceGenerator for generated ones). Path is the
	// cached .bex the bench sweep scans directly.
	Category string
	Source   string
	Path     string
}

// NewWorkload computes the ground truth of a generated graph.
func NewWorkload(name string, g *graph.Graph, streamSeed uint64) Workload {
	return Workload{
		Name:       name,
		Graph:      g,
		M:          g.NumEdges(),
		N:          g.NumVertices(),
		T:          g.TriangleCount(),
		Kappa:      g.Degeneracy(),
		MaxDegree:  g.MaxDegree(),
		StreamSeed: streamSeed,
		Source:     SourceGenerator,
	}
}

// Stream returns a fresh arbitrary-order stream over the workload. Trial
// indices vary the order so repeated trials see different stream orders, as
// the arbitrary-order model intends.
func (w Workload) Stream(trial int) stream.Stream {
	return stream.FromGraphShuffled(w.Graph, w.StreamSeed+uint64(trial)*0x9e3779b9)
}

// TheoreticalBound returns m·κ/T, the paper's space bound (up to polylog
// factors), as a float; +Inf for triangle-free workloads.
func (w Workload) TheoreticalBound() float64 {
	if w.T == 0 {
		return float64(w.M) * float64(w.Kappa)
	}
	return float64(w.M) * float64(w.Kappa) / float64(w.T)
}

// StandardSpecs is the mixed suite used by the comparison experiments:
// low-degeneracy/high-triangle graphs (the paper's target regime) across
// several families. One definition, consumed by both the E-experiments
// (StandardWorkloads) and anything that wants to mix generated and corpus
// workloads.
func StandardSpecs() []Spec {
	return []Spec{
		{Name: "wheel", StreamSeed: 11, Build: func(sc Scale) *graph.Graph {
			return gen.Wheel(sc.pick(800, 8000, 60000))
		}},
		{Name: "apollonian", StreamSeed: 12, Build: func(sc Scale) *graph.Graph {
			return gen.Apollonian(sc.pick(800, 8000, 60000))
		}},
		{Name: "triangular-grid", StreamSeed: 13, Build: func(sc Scale) *graph.Graph {
			side := isqrt(sc.pick(800, 8000, 60000))
			return gen.TriangularGrid(side, side)
		}},
		{Name: "pref-attach-k4", StreamSeed: 14, Build: func(sc Scale) *graph.Graph {
			return gen.HolmeKim(sc.pick(1000, 10000, 80000), 4, 0.7, 101)
		}},
		{Name: "pref-attach-k8", StreamSeed: 15, Build: func(sc Scale) *graph.Graph {
			return gen.HolmeKim(sc.pick(1000, 10000, 80000), 8, 0.7, 102)
		}},
		{Name: "chung-lu-2.5", StreamSeed: 16, Build: func(sc Scale) *graph.Graph {
			return gen.ChungLu(sc.pick(1500, 12000, 80000), 8, 2.5, 103)
		}},
	}
}

// StandardWorkloads loads StandardSpecs at the given scale.
func StandardWorkloads(scale Scale) []Workload {
	return mustLoadAll(StandardSpecs(), scale)
}

// WheelSpecs returns wheel graphs of increasing size (experiment E3). The
// list length is scale-dependent, so unlike StandardSpecs it takes the scale
// up front.
func WheelSpecs(scale Scale) []Spec {
	sizes := map[Scale][]int{
		ScaleSmoke:   {100, 400, 1600},
		ScaleDefault: {1000, 4000, 16000, 64000},
		ScaleFull:    {1000, 10000, 100000, 1000000},
	}[scale]
	var specs []Spec
	for i, n := range sizes {
		n := n
		specs = append(specs, Spec{
			Name:       fmt.Sprintf("wheel-%d", n),
			StreamSeed: uint64(21 + i),
			Build:      func(Scale) *graph.Graph { return gen.Wheel(n) },
		})
	}
	return specs
}

// WheelWorkloads loads WheelSpecs.
func WheelWorkloads(scale Scale) []Workload {
	return mustLoadAll(WheelSpecs(scale), scale)
}

// KappaSweepSpecs returns preferential-attachment graphs with fixed n and
// increasing attachment parameter k ≈ κ (experiment E9).
func KappaSweepSpecs(scale Scale) []Spec {
	ks := []int{2, 4, 8, 16, 32}
	if scale == ScaleSmoke {
		ks = []int{2, 4, 8}
	}
	var specs []Spec
	for i, k := range ks {
		k := k
		specs = append(specs, Spec{
			Name:       fmt.Sprintf("pa-k%d", k),
			StreamSeed: uint64(31 + i),
			Build: func(sc Scale) *graph.Graph {
				return gen.HolmeKim(sc.pick(1200, 8000, 40000), k, 0.7, uint64(300+k))
			},
		})
	}
	return specs
}

// KappaSweepWorkloads loads KappaSweepSpecs.
func KappaSweepWorkloads(scale Scale) []Workload {
	return mustLoadAll(KappaSweepSpecs(scale), scale)
}

// SkewedSpecs returns graphs with a large gap between maximum degree and
// degeneracy (experiment E10): stars plus planted triangles and book graphs.
func SkewedSpecs() []Spec {
	return []Spec{
		{Name: "star+triangles", StreamSeed: 41, Build: func(sc Scale) *graph.Graph {
			return gen.StarPlusTriangles(sc.pick(2000, 20000, 200000), sc.pick(100, 1000, 10000))
		}},
		{Name: "book", StreamSeed: 42, Build: func(sc Scale) *graph.Graph {
			return gen.Book(sc.pick(1000, 10000, 100000))
		}},
		{Name: "planted-book", StreamSeed: 43, Build: func(sc Scale) *graph.Graph {
			pages := sc.pick(1000, 10000, 100000)
			return gen.PlantedBook(pages+2, 2*pages, pages/2, 43)
		}},
	}
}

// SkewedWorkloads loads SkewedSpecs at the given scale.
func SkewedWorkloads(scale Scale) []Workload {
	return mustLoadAll(SkewedSpecs(), scale)
}

// CorpusSpecs returns one file-backed spec per graph in a corpus cache
// directory (as written by graphfetch), in manifest order (sorted by name).
// An empty cache is an error: the caller forgot to run graphfetch.
func CorpusSpecs(dir string) ([]Spec, error) {
	man, err := corpus.ReadManifest(dir)
	if err != nil {
		return nil, err
	}
	if len(man.Graphs) == 0 {
		return nil, fmt.Errorf("exp: corpus cache %s is empty; run graphfetch (or graphfetch -offline) first", dir)
	}
	specs := make([]Spec, 0, len(man.Graphs))
	for i, g := range man.Graphs {
		specs = append(specs, Spec{
			Name:       g.Name,
			Category:   g.Category,
			Source:     g.Source,
			StreamSeed: uint64(51 + i),
			Path:       filepath.Join(dir, g.Bex),
		})
	}
	return specs, nil
}

func isqrt(n int) int {
	i := 1
	for i*i < n {
		i++
	}
	return i
}
