package exp

import (
	"fmt"

	"degentri/internal/gen"
	"degentri/internal/graph"
	"degentri/internal/stream"
)

// Scale selects how large the experiment workloads are. Smoke keeps every
// experiment in the low milliseconds for tests; Default is what the benches
// and cmd/experiments run; Full is the laptop-scale configuration recorded in
// EXPERIMENTS.md.
type Scale int

const (
	ScaleSmoke Scale = iota
	ScaleDefault
	ScaleFull
)

// String implements fmt.Stringer.
func (s Scale) String() string {
	switch s {
	case ScaleSmoke:
		return "smoke"
	case ScaleDefault:
		return "default"
	case ScaleFull:
		return "full"
	default:
		return fmt.Sprintf("Scale(%d)", int(s))
	}
}

// pick returns a size appropriate for the scale.
func (s Scale) pick(smoke, def, full int) int {
	switch s {
	case ScaleSmoke:
		return smoke
	case ScaleFull:
		return full
	default:
		return def
	}
}

// Workload is one benchmark graph with its ground truth precomputed.
type Workload struct {
	Name       string
	Graph      *graph.Graph
	M          int
	N          int
	T          int64
	Kappa      int
	MaxDegree  int
	StreamSeed uint64
}

// NewWorkload computes the ground truth of a generated graph.
func NewWorkload(name string, g *graph.Graph, streamSeed uint64) Workload {
	return Workload{
		Name:       name,
		Graph:      g,
		M:          g.NumEdges(),
		N:          g.NumVertices(),
		T:          g.TriangleCount(),
		Kappa:      g.Degeneracy(),
		MaxDegree:  g.MaxDegree(),
		StreamSeed: streamSeed,
	}
}

// Stream returns a fresh arbitrary-order stream over the workload. Trial
// indices vary the order so repeated trials see different stream orders, as
// the arbitrary-order model intends.
func (w Workload) Stream(trial int) stream.Stream {
	return stream.FromGraphShuffled(w.Graph, w.StreamSeed+uint64(trial)*0x9e3779b9)
}

// TheoreticalBound returns m·κ/T, the paper's space bound (up to polylog
// factors), as a float; +Inf for triangle-free workloads.
func (w Workload) TheoreticalBound() float64 {
	if w.T == 0 {
		return float64(w.M) * float64(w.Kappa)
	}
	return float64(w.M) * float64(w.Kappa) / float64(w.T)
}

// StandardWorkloads returns the mixed suite used by the comparison
// experiments: low-degeneracy/high-triangle graphs (the paper's target
// regime) across several families.
func StandardWorkloads(scale Scale) []Workload {
	n := scale.pick(800, 8000, 60000)
	ba := scale.pick(1000, 10000, 80000)
	cl := scale.pick(1500, 12000, 80000)
	return []Workload{
		NewWorkload("wheel", gen.Wheel(n), 11),
		NewWorkload("apollonian", gen.Apollonian(n), 12),
		NewWorkload("triangular-grid", gen.TriangularGrid(isqrt(n), isqrt(n)), 13),
		NewWorkload("pref-attach-k4", gen.HolmeKim(ba, 4, 0.7, 101), 14),
		NewWorkload("pref-attach-k8", gen.HolmeKim(ba, 8, 0.7, 102), 15),
		NewWorkload("chung-lu-2.5", gen.ChungLu(cl, 8, 2.5, 103), 16),
	}
}

// WheelWorkloads returns wheel graphs of increasing size (experiment E3).
func WheelWorkloads(scale Scale) []Workload {
	sizes := map[Scale][]int{
		ScaleSmoke:   {100, 400, 1600},
		ScaleDefault: {1000, 4000, 16000, 64000},
		ScaleFull:    {1000, 10000, 100000, 1000000},
	}[scale]
	var ws []Workload
	for i, n := range sizes {
		ws = append(ws, NewWorkload(fmt.Sprintf("wheel-%d", n), gen.Wheel(n), uint64(21+i)))
	}
	return ws
}

// KappaSweepWorkloads returns preferential-attachment graphs with fixed n and
// increasing attachment parameter k ≈ κ (experiment E9).
func KappaSweepWorkloads(scale Scale) []Workload {
	n := scale.pick(1200, 8000, 40000)
	ks := []int{2, 4, 8, 16, 32}
	if scale == ScaleSmoke {
		ks = []int{2, 4, 8}
	}
	var ws []Workload
	for i, k := range ks {
		ws = append(ws, NewWorkload(fmt.Sprintf("pa-k%d", k), gen.HolmeKim(n, k, 0.7, uint64(300+k)), uint64(31+i)))
	}
	return ws
}

// SkewedWorkloads returns graphs with a large gap between maximum degree and
// degeneracy (experiment E10): stars plus planted triangles and book graphs.
func SkewedWorkloads(scale Scale) []Workload {
	leaves := scale.pick(2000, 20000, 200000)
	tris := scale.pick(100, 1000, 10000)
	pages := scale.pick(1000, 10000, 100000)
	return []Workload{
		NewWorkload("star+triangles", gen.StarPlusTriangles(leaves, tris), 41),
		NewWorkload("book", gen.Book(pages), 42),
		NewWorkload("planted-book", gen.PlantedBook(pages+2, 2*pages, pages/2, 43), 43),
	}
}

func isqrt(n int) int {
	i := 1
	for i*i < n {
		i++
	}
	return i
}
