package exp

import (
	"fmt"

	"degentri/internal/degen"
)

// E12DegeneracyApprox measures the streaming degeneracy approximation that
// the facade now uses whenever the caller supplies no κ bound: for every
// standard and skewed workload it reports the certified upper bound κ̂ and
// density lower bound next to the exact κ, the pass count of the peel, and
// the O(n)-word footprint next to the Θ(m) a materializing computation would
// retain. The contract under test: κ ≤ κ̂ ≤ 2(1+ε)·κ — rows violating either
// side fail the experiment hard, like E5 does for the Chiba–Nishizeki bounds.
func E12DegeneracyApprox(scale Scale) ([]*Table, error) {
	eps := degen.DefaultEpsilon
	table := NewTable("E12",
		fmt.Sprintf("Streaming degeneracy approximation (peel slack ε=%.2f, certified factor %.1f)", eps, 2*(1+eps)),
		"workload", "n", "m", "κ", "κ̂", "κ̂/κ", "lower", "rounds", "passes", "space(words)", "Θ(m) baseline")

	ws := append(StandardWorkloads(scale), SkewedWorkloads(scale)...)
	for _, w := range ws {
		res, err := degen.Estimate(w.Stream(0), w.M, degen.Options{})
		if err != nil {
			return nil, fmt.Errorf("E12 %s: %w", w.Name, err)
		}
		if res.Kappa < w.Kappa {
			return nil, fmt.Errorf("E12 %s: κ̂=%d below the exact κ=%d (upper-bound certificate violated)",
				w.Name, res.Kappa, w.Kappa)
		}
		if limit := 2 * (1 + eps) * float64(w.Kappa); float64(res.Kappa) > limit {
			return nil, fmt.Errorf("E12 %s: κ̂=%d above the certified factor %.1f·κ=%.1f",
				w.Name, res.Kappa, 2*(1+eps), limit)
		}
		if res.LowerBound > w.Kappa {
			return nil, fmt.Errorf("E12 %s: density lower bound %d above the exact κ=%d",
				w.Name, res.LowerBound, w.Kappa)
		}
		table.AddRow(w.Name,
			FormatCount(int64(w.N)), FormatCount(int64(w.M)), fmt.Sprintf("%d", w.Kappa),
			fmt.Sprintf("%d", res.Kappa), FormatFloat(float64(res.Kappa)/float64(max(w.Kappa, 1))),
			fmt.Sprintf("%d", res.LowerBound), fmt.Sprintf("%d", res.Rounds), fmt.Sprintf("%d", res.Passes),
			FormatCount(res.SpaceWords), FormatCount(int64(2*w.M)))
	}
	table.AddNote("κ̂ is what Estimate/EstimateFile size their samples with when no bound is supplied; both certificates (κ ≤ κ̂ ≤ %.1fκ, lower ≤ κ) fail the experiment hard if violated.", 2*(1+eps))
	table.AddNote("space is the peel's O(n) words (degree array + alive bitset); the Θ(m) column is the edge storage alone of the materializing fallback this replaced.")
	return []*Table{table}, nil
}
