package exp

import (
	"fmt"
	"math"

	"degentri/internal/baseline"
	"degentri/internal/core"
	"degentri/internal/lowerbound"
)

// E6AssignmentProperties measures, from exact per-edge triangle counts, the
// quantities the assignment analysis controls: the fraction of ε-heavy and
// ε-costly triangles (Lemma 5.12 bounds them by O(ε)·T) and the maximum
// number of triangles the idealized assignment rule places on one edge
// (Definition 5.2 requires τ_max ≤ κ/ε).
func E6AssignmentProperties(scale Scale) ([]*Table, error) {
	epsilons := []float64{0.1, 0.2}
	table := NewTable("E6", "Assignment-rule structural properties (exact computation)",
		"workload", "ε", "T", "heavy-tri frac (≤2ε?)", "costly-tri frac (≤2ε?)",
		"assigned frac", "τ_max", "κ/ε bound")

	ws := StandardWorkloads(scale)
	ws = append(ws, SkewedWorkloads(scale)[1]) // the book graph stresses heaviness
	for _, w := range ws {
		if w.T == 0 {
			continue
		}
		g := w.Graph
		te := g.EdgeTriangleCountMap()
		triangles := g.ListTriangles()
		for _, eps := range epsilons {
			heavyThresh := float64(w.Kappa) / eps
			costlyThresh := float64(w.M) * float64(w.Kappa) / (eps * float64(w.T))

			heavyTris, costlyTris, assigned := 0, 0, 0
			tauCount := make(map[int64]int64) // keyed by packed edge
			var tauMax int64
			for _, tri := range triangles {
				edges := tri.Edges()
				allHeavy := true
				anyCostly := false
				bestIdx := -1
				var bestTe int64
				for i, e := range edges {
					cnt := te[e]
					de := int64(g.EdgeDegree(e))
					if float64(cnt) <= heavyThresh {
						allHeavy = false
					}
					if cnt > 0 && float64(de)/float64(cnt) > costlyThresh {
						anyCostly = true
					}
					if float64(cnt) <= heavyThresh && (bestIdx < 0 || cnt < bestTe) {
						bestIdx, bestTe = i, cnt
					}
				}
				if allHeavy {
					heavyTris++
				}
				if anyCostly {
					costlyTris++
				}
				if bestIdx >= 0 {
					assigned++
					key := packEdge(edges[bestIdx].U, edges[bestIdx].V)
					tauCount[key]++
					if tauCount[key] > tauMax {
						tauMax = tauCount[key]
					}
				}
			}
			heavyFrac := float64(heavyTris) / float64(w.T)
			costlyFrac := float64(costlyTris) / float64(w.T)
			if heavyFrac > 2*eps {
				return nil, fmt.Errorf("E6: heavy-triangle bound violated on %s (ε=%.2f): %.3f > %.3f",
					w.Name, eps, heavyFrac, 2*eps)
			}
			if costlyFrac > 2*eps {
				return nil, fmt.Errorf("E6: costly-triangle bound violated on %s (ε=%.2f): %.3f > %.3f",
					w.Name, eps, costlyFrac, 2*eps)
			}
			if float64(tauMax) > float64(w.Kappa)/eps {
				return nil, fmt.Errorf("E6: τ_max bound violated on %s (ε=%.2f): %d > %.1f",
					w.Name, eps, tauMax, float64(w.Kappa)/eps)
			}
			table.AddRow(w.Name, fmt.Sprintf("%.2f", eps), FormatCount(w.T),
				FormatFloat(heavyFrac), FormatFloat(costlyFrac),
				FormatFloat(float64(assigned)/float64(w.T)),
				fmt.Sprintf("%d", tauMax), FormatFloat(float64(w.Kappa)/eps))
		}
	}
	table.AddNote("The experiment fails hard if any Lemma 5.12 / Definition 5.2 bound is violated.")
	return []*Table{table}, nil
}

func packEdge(u, v int) int64 { return int64(u)<<32 | int64(uint32(v)) }

// E7LowerBound builds the Theorem 6.3 hard instances across κ, verifies their
// structural guarantees, and measures the smallest sample budget at which the
// paper's estimator reliably separates the NO instance (T = p²q triangles)
// from the YES instance (triangle-free). The measured space should track
// mκ/T.
func E7LowerBound(scale Scale) ([]*Table, error) {
	table := NewTable("E7", "Lower-bound construction: structure and detection space",
		"blocks N", "κ=p", "q", "n", "m", "T(NO)", "κ(YES)", "κ(NO)", "mκ/T", "detection space (words)", "space / (mκ/T)")

	// The reduction encodes an N-bit disjointness instance; m grows linearly
	// with N while T = p²q stays fixed, so mκ/T — and, by Theorem 6.3, the
	// space needed to detect the planted triangles — grows linearly in N.
	p := 4
	q := 4
	blockSizes := []int{24, 72, 216}
	if scale == ScaleSmoke {
		blockSizes = []int{9, 18}
	}
	if scale == ScaleFull {
		blockSizes = []int{24, 72, 216, 648}
	}
	trials := 3
	if scale == ScaleSmoke {
		trials = 2
	}

	for _, blocks := range blockSizes {
		ones := blocks / 3
		yesD, err := lowerbound.NewDisjointness(blocks, ones, false, uint64(blocks))
		if err != nil {
			return nil, err
		}
		noD, err := lowerbound.NewDisjointness(blocks, ones, true, uint64(blocks+1))
		if err != nil {
			return nil, err
		}
		yes, err := lowerbound.BuildInstance(yesD, p, q)
		if err != nil {
			return nil, err
		}
		no, err := lowerbound.BuildInstance(noD, p, q)
		if err != nil {
			return nil, err
		}
		if yes.Graph.TriangleCount() != 0 {
			return nil, fmt.Errorf("E7: YES instance (N=%d) has triangles", blocks)
		}
		if no.Graph.TriangleCount() != no.ExpectedTriangles() {
			return nil, fmt.Errorf("E7: NO instance (N=%d) triangle count mismatch", blocks)
		}

		m := no.Graph.NumEdges()
		t := no.ExpectedTriangles()
		bound := float64(m) * float64(no.Graph.Degeneracy()) / float64(t)

		cfg := core.DefaultConfig(0.3, 2*p, t)
		space, err := lowerbound.MinimalDetectionSpace(p, q, blocks, ones, cfg, trials, uint64(1000+blocks))
		if err != nil {
			return nil, err
		}

		table.AddRow(fmt.Sprintf("%d", blocks), fmt.Sprintf("%d", p), fmt.Sprintf("%d", q),
			FormatCount(int64(no.Graph.NumVertices())), FormatCount(int64(m)), FormatCount(t),
			fmt.Sprintf("%d", yes.Graph.Degeneracy()), fmt.Sprintf("%d", no.Graph.Degeneracy()),
			FormatFloat(bound), FormatCount(space), FormatFloat(float64(space)/bound))
	}
	table.AddNote("Theorem 6.3 (via disjointness) predicts the detection space must grow like mκ/T ≈ Θ(N); the ratio column should stay within a modest constant band while N (and the space) grows.")
	return []*Table{table}, nil
}

// E8OracleVsStreaming compares the Section 4 warm-up (degree oracle, 3
// passes) against the full Section 5 algorithm (6 passes, no oracle) at equal
// instance budgets, reporting error, passes and oracle queries.
func E8OracleVsStreaming(scale Scale) ([]*Table, error) {
	trials := trialsFor(scale)
	table := NewTable("E8", "Degree-oracle warm-up vs. the streaming algorithm",
		"workload", "algorithm", "passes", "oracle queries", "space(words)", "median rel.err")

	for _, w := range StandardWorkloads(scale) {
		if w.T == 0 {
			continue
		}
		truth := float64(w.T)
		bound := w.TheoreticalBound()
		budget := clamp(int(math.Ceil(16*bound)), 16, 1<<20)

		oracleStats, err := RunTrials(func(trial int) (core.Result, error) {
			cfg := DefaultCoreConfig(w, 0.1)
			cfg.Seed = uint64(trial)*131 + 5
			oracle := core.NewGraphOracle(w.Graph)
			return core.IdealEstimator(w.Stream(trial), oracle, cfg, budget)
		}, trials, truth)
		if err != nil {
			return nil, err
		}

		cfg := DefaultCoreConfig(w, 0.1)
		cfg.ROverride, cfg.LOverride = budget, budget
		cfg.SOverride = clamp(budget/4, 1, 1<<20)
		streamStats, err := RunTrials(CoreRunner(w, cfg), trials, truth)
		if err != nil {
			return nil, err
		}

		table.AddRow(w.Name, "ideal (oracle, Alg.1)", fmt.Sprintf("%d", oracleStats.Passes),
			FormatCount(int64(2*w.M)), FormatCount(int64(oracleStats.MeanSpace)), FormatFloat(oracleStats.MedianRelErr))
		table.AddRow(w.Name, "streaming (Alg.2+3)", fmt.Sprintf("%d", streamStats.Passes),
			"0", FormatCount(int64(streamStats.MeanSpace)), FormatFloat(streamStats.MedianRelErr))
	}
	table.AddNote("Both run ≈8·mκ/T instances; the streaming version pays extra passes and space for simulating the oracle.")
	return []*Table{table}, nil
}

// E9KappaScaling fixes the vertex count and sweeps the degeneracy of
// preferential-attachment graphs, reporting the space the estimator needs at
// its theory budget. The space should scale (roughly) linearly in mκ/T, the
// bound of Theorem 1.2.
func E9KappaScaling(scale Scale) ([]*Table, error) {
	trials := trialsFor(scale)
	table := NewTable("E9", "Space scaling with degeneracy (preferential attachment, fixed n)",
		"workload", "κ", "m", "T", "mκ/T", "d_E/2mκ", "space(words)", "space/(mκ/T)", "median rel.err")
	for _, w := range KappaSweepWorkloads(scale) {
		truth := float64(w.T)
		stats, err := RunTrials(CoreRunner(w, DefaultCoreConfig(w, 0.1)), trials, truth)
		if err != nil {
			return nil, err
		}
		bound := w.TheoreticalBound()
		tightness := float64(w.Graph.EdgeDegreeSum()) / (2 * float64(w.M) * float64(w.Kappa))
		table.AddRow(w.Name, fmt.Sprintf("%d", w.Kappa), FormatCount(int64(w.M)), FormatCount(w.T),
			FormatFloat(bound), FormatFloat(tightness), FormatCount(int64(stats.MeanSpace)),
			FormatFloat(stats.MeanSpace/bound), FormatFloat(stats.MedianRelErr))
	}
	table.AddNote("The space/(mκ/T) column should stay within a constant band as κ varies; residual drift tracks the d_E/2mκ tightness of the Chiba–Nishizeki bound (the algorithm's space really scales with m·d̄_e/T ≤ mκ/T).")
	return []*Table{table}, nil
}

// E10OnePassComparison pits the degeneracy estimator against the one-pass
// baselines at (approximately) equal space on graphs whose maximum degree is
// far larger than their degeneracy — the regime where the m∆/T bound of
// neighbor sampling collapses while mκ/T stays small.
func E10OnePassComparison(scale Scale) ([]*Table, error) {
	trials := trialsFor(scale)
	table := NewTable("E10", "Equal-space comparison on ∆ ≫ κ graphs",
		"workload", "∆", "κ", "T", "target space", "algorithm", "space(words)", "median rel.err")

	for _, w := range SkewedWorkloads(scale) {
		if w.T == 0 || w.T*10 < int64(w.M) {
			// Triangle-sparse graphs (T < m/10) are outside the sublinear
			// regime every sketch in this comparison targets; skip them here
			// (they still appear in E5).
			continue
		}
		truth := float64(w.T)
		bound := w.TheoreticalBound()
		budget := clamp(int(math.Ceil(16*bound)), 32, w.M)

		cfg := DefaultCoreConfig(w, 0.1)
		cfg.ROverride, cfg.LOverride = budget, 2*budget
		cfg.SOverride = clamp(budget/2, 1, 1<<20)
		ours, err := RunTrials(CoreRunner(w, cfg), trials, truth)
		if err != nil {
			return nil, err
		}
		// The baselines get the same number of words our runs actually used,
		// so the comparison is at (measured) equal space.
		targetSpace := int64(ours.MeanSpace)
		if targetSpace < 64 {
			targetSpace = 64
		}

		nsCopies := clamp(int(targetSpace/10), 1, 1<<22)
		ns, err := RunTrials(func(trial int) (core.Result, error) {
			return baseline.NeighborSampling(w.Stream(trial), baseline.NeighborSamplingConfig{Estimators: nsCopies, Seed: uint64(trial + 9)})
		}, trials, truth)
		if err != nil {
			return nil, err
		}

		p := float64(targetSpace) / (2 * float64(w.M))
		if p > 1 {
			p = 1
		}
		if p <= 0 {
			p = 0.001
		}
		dl, err := RunTrials(func(trial int) (core.Result, error) {
			return baseline.Doulion(w.Stream(trial), baseline.DoulionConfig{P: p, Seed: uint64(trial + 9)})
		}, trials, truth)
		if err != nil {
			return nil, err
		}

		row := func(name string, s TrialStats) {
			table.AddRow(w.Name, fmt.Sprintf("%d", w.MaxDegree), fmt.Sprintf("%d", w.Kappa), FormatCount(w.T),
				FormatCount(targetSpace), name, FormatCount(int64(s.MeanSpace)), FormatFloat(s.MedianRelErr))
		}
		row("degeneracy (this paper)", ours)
		row("neighbor sampling", ns)
		row("doulion", dl)
	}
	table.AddNote("With ∆ ≫ κ and equal space, the degeneracy estimator should be the most accurate.")
	return []*Table{table}, nil
}
