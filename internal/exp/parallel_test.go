package exp

import (
	"errors"
	"reflect"
	"testing"

	"degentri/internal/core"
	"degentri/internal/gen"
)

// TestRunTrialsParallelMatchesSequential checks the bit-identity contract of
// the worker pool: identical TrialStats (including floating-point sums, which
// are order-sensitive) for any worker count.
func TestRunTrialsParallelMatchesSequential(t *testing.T) {
	w := NewWorkload("pref-attach-k4", gen.HolmeKim(600, 4, 0.7, 101), 14)
	run := CoreRunner(w, DefaultCoreConfig(w, 0.1))
	truth := float64(w.T)
	trials := 9

	sequential, err := RunTrialsWorkers(run, trials, truth, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 16, 0} {
		parallel, err := RunTrialsWorkers(run, trials, truth, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(sequential, parallel) {
			t.Errorf("workers=%d: stats differ from sequential:\nseq: %+v\npar: %+v",
				workers, sequential, parallel)
		}
	}
	// The default entry point must agree as well.
	viaDefault, err := RunTrials(run, trials, truth)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sequential, viaDefault) {
		t.Errorf("RunTrials differs from sequential:\nseq: %+v\ngot: %+v", sequential, viaDefault)
	}
}

// TestRunTrialsErrorReporting checks that the lowest failing trial index is
// the one reported, matching the sequential contract.
func TestRunTrialsErrorReporting(t *testing.T) {
	boom := errors.New("boom")
	run := func(trial int) (core.Result, error) {
		if trial >= 3 {
			return core.Result{}, boom
		}
		return core.Result{Estimate: float64(trial)}, nil
	}
	for _, workers := range []int{1, 4} {
		_, err := RunTrialsWorkers(run, 8, 1, workers)
		if err == nil || !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v, want wrapped boom", workers, err)
		}
		want := "exp: trial 3: boom"
		if err.Error() != want {
			t.Errorf("workers=%d: err = %q, want %q", workers, err.Error(), want)
		}
	}
}
