// Package exp is the experiment harness: it defines the workloads, runs the
// estimators across trials, and renders the result tables that reproduce the
// paper's claims (see DESIGN.md §5 for the experiment index).
package exp

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result: a titled grid of cells plus optional
// notes. Tables render to GitHub-flavoured markdown (for EXPERIMENTS.md) and
// to CSV (for downstream plotting).
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// NewTable creates a table with the given identity and column headers.
func NewTable(id, title string, columns ...string) *Table {
	return &Table{ID: id, Title: title, Columns: columns}
}

// AddRow appends a row; the number of cells should match the column count
// (short rows are padded, long rows truncated, so a mistake stays visible but
// never panics mid-experiment).
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Columns))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddNote appends a free-form footnote rendered under the table.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Markdown renders the table as GitHub-flavoured markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = "---"
	}
	b.WriteString("| " + strings.Join(sep, " | ") + " |\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	if len(t.Notes) > 0 {
		b.WriteString("\n")
		for _, n := range t.Notes {
			fmt.Fprintf(&b, "- %s\n", n)
		}
	}
	return b.String()
}

// CSV renders the table as comma-separated values (commas inside cells are
// replaced by semicolons; experiment cells are numeric or short labels, so
// full quoting is unnecessary).
func (t *Table) CSV() string {
	var b strings.Builder
	clean := func(s string) string { return strings.ReplaceAll(s, ",", ";") }
	cols := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		cols[i] = clean(c)
	}
	b.WriteString(strings.Join(cols, ",") + "\n")
	for _, row := range t.Rows {
		cells := make([]string, len(row))
		for i, c := range row {
			cells[i] = clean(c)
		}
		b.WriteString(strings.Join(cells, ",") + "\n")
	}
	return b.String()
}

// FormatCount renders integers compactly (1234567 -> "1.23M").
func FormatCount(v int64) string {
	switch {
	case v >= 1_000_000_000:
		return fmt.Sprintf("%.2fG", float64(v)/1e9)
	case v >= 1_000_000:
		return fmt.Sprintf("%.2fM", float64(v)/1e6)
	case v >= 10_000:
		return fmt.Sprintf("%.1fk", float64(v)/1e3)
	default:
		return fmt.Sprintf("%d", v)
	}
}

// FormatFloat renders a float with three significant decimals.
func FormatFloat(v float64) string { return fmt.Sprintf("%.3f", v) }

// FormatPercent renders a fraction as a percentage with one decimal.
func FormatPercent(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }
