package exp

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"degentri/internal/benchfmt"
	"degentri/internal/core"
	"degentri/internal/degen"
	"degentri/internal/sched"
	"degentri/internal/stream"
)

// BenchEpsilons are the accuracy points of the corpus sweep's error-vs-ε
// curve (the E2-style accuracy/space tradeoff, one column per ε).
var BenchEpsilons = []float64{0.2, 0.1, 0.05}

// benchGateEps is the ε whose run carries the gate metrics (estimate, passes,
// scans, space, worker invariance); the middle of the sweep.
const benchGateEps = 0.1

// BenchWorkers are the shard-worker counts of the invariance check: the
// gate-ε estimate must be bit-identical at every count.
var BenchWorkers = []int{1, 2, 4, 8}

// BenchOptions configures BenchSweep.
type BenchOptions struct {
	// CorpusDir is the graphfetch cache directory.
	CorpusDir string
	// Entry and PR identify the trajectory entry being produced
	// (BENCH_<Entry>.json, recorded by PR <PR>).
	Entry int
	PR    int
	// Date is the entry date, YYYY-MM-DD.
	Date string
	// Trials is the number of repeated estimator trials per (graph, ε)
	// (<= 0: 5). Trials replay the canonical file stream with per-trial
	// seeds, so they fuse onto shared scans.
	Trials int
	// Unfused disables scan fusion: every trial scans the file itself, so
	// physical scans multiply by roughly the trial count. This is the
	// deliberate-regression injection the CI gate proves it can catch —
	// estimates stay bit-identical, only the scan economy regresses.
	Unfused bool
	// Log receives one-line progress messages (nil = discard).
	Log func(format string, args ...any)
}

func (o *BenchOptions) logf(format string, args ...any) {
	if o.Log != nil {
		o.Log(format, args...)
	}
}

// BenchSweep runs the benchmark-trajectory sweep over the cached corpus and
// returns the schema-v2 trajectory entry plus a human-readable summary table.
//
// Per corpus graph it records: structural facts (n, m, exact T, exact κ) and
// the streaming peel's κ̂; the error-vs-ε curve (median relative error over
// the trials at each BenchEpsilons point); and at the gate ε the estimate
// itself, logical passes, physical scans, and mean space words. Everything
// recorded as a deterministic metric runs with one shard worker and fixed
// seeds, so a candidate run on any machine reproduces the committed baseline
// bit for bit; wall-clock and edges/s are recorded as timing metrics
// (warn-only). The gate-ε estimate is additionally recomputed at every
// BenchWorkers count and any divergence fails the sweep outright.
func BenchSweep(opts BenchOptions) (*benchfmt.File, *Table, error) {
	specs, err := CorpusSpecs(opts.CorpusDir)
	if err != nil {
		return nil, nil, err
	}
	trials := opts.Trials
	if trials <= 0 {
		trials = 5
	}

	mode := "fused"
	if opts.Unfused {
		mode = "unfused"
	}
	file := &benchfmt.File{
		Entry:       opts.Entry,
		PR:          opts.PR,
		Date:        opts.Date,
		Environment: benchfmt.HostEnvironment(),
		Commands: []string{
			"graphfetch -offline -cache " + opts.CorpusDir,
			fmt.Sprintf("experiments -corpus %s -bench-out BENCH_%d.json", opts.CorpusDir, opts.Entry),
		},
	}
	table := NewTable("bench",
		fmt.Sprintf("Corpus sweep (%d trials per ε, %s scans, workers=1)", trials, mode),
		"graph", "source", "n", "m", "T", "κ", "κ̂",
		"err ε=.20", "err ε=.10", "err ε=.05", "passes", "scans", "space (w)", "edges/s", "bytes v2/v1")

	for _, spec := range specs {
		sweepStart := time.Now()
		w, err := spec.Load(ScaleDefault)
		if err != nil {
			return nil, nil, err
		}
		opts.logf("%-22s n=%d m=%d T=%d κ=%d", w.Name, w.N, w.M, w.T, w.Kappa)

		bw := benchfmt.Workload{
			Graph: w.Name, Source: w.Source, Category: w.Category,
			N: w.N, M: w.M, ExactT: w.T, Kappa: w.Kappa,
			Metrics: map[string]benchfmt.Metric{},
		}

		// Streaming κ̂: the peel's certified bound, deterministic (no seeds).
		kres, err := benchKappa(w)
		if err != nil {
			return nil, nil, err
		}
		bw.KappaApprox = kres.Kappa
		bw.Metrics["kappa_hat.passes"] = benchfmt.Metric{
			Value: float64(kres.Passes), Unit: "passes",
			Better: benchfmt.BetterLower, Class: benchfmt.ClassDeterministic,
		}

		// Error-vs-ε curve; the gate ε also records the gate metrics.
		var errCells []string
		for _, eps := range BenchEpsilons {
			stats, scans, err := benchTrials(w, eps, trials, opts.Unfused)
			if err != nil {
				return nil, nil, err
			}
			key := fmt.Sprintf("err.median.eps%.2f", eps)
			bw.Metrics[key] = benchfmt.Metric{
				Value: stats.MedianRelErr, Unit: "rel",
				Better: benchfmt.BetterLower, Class: benchfmt.ClassDeterministic,
				RelTol: 0.25, AbsTol: 0.02,
			}
			errCells = append(errCells, FormatPercent(stats.MedianRelErr))
			if eps == benchGateEps {
				// The estimate is the determinism canary: same stream, same
				// seeds — any drift is a semantic change and must re-baseline
				// deliberately.
				bw.Metrics["estimate.trial0.eps0.10"] = benchfmt.Metric{
					Value: stats.FirstEstimate, Unit: "triangles",
					Better: benchfmt.BetterExact, Class: benchfmt.ClassDeterministic,
				}
				bw.Metrics["passes.eps0.10"] = benchfmt.Metric{
					Value: float64(stats.Passes), Unit: "passes",
					Better: benchfmt.BetterLower, Class: benchfmt.ClassDeterministic,
				}
				bw.Metrics["scans.eps0.10"] = benchfmt.Metric{
					Value: float64(scans), Unit: "scans",
					Better: benchfmt.BetterLower, Class: benchfmt.ClassDeterministic,
				}
				bw.Metrics["space.mean_words.eps0.10"] = benchfmt.Metric{
					Value: stats.MeanSpace, Unit: "words",
					Better: benchfmt.BetterLower, Class: benchfmt.ClassDeterministic,
					RelTol: 0.10,
				}
				table.AddRow(w.Name, w.Source, FormatCount(int64(w.N)), FormatCount(int64(w.M)),
					FormatCount(w.T), fmt.Sprint(w.Kappa), fmt.Sprint(kres.Kappa),
					"", "", "", // err cells filled below
					fmt.Sprint(stats.Passes), fmt.Sprint(scans), FormatFloat(stats.MeanSpace), "", "")
			}
		}

		// Worker invariance: the gate-ε estimate at 1/2/4/8 shard workers.
		if err := benchInvariance(w); err != nil {
			return nil, nil, err
		}
		bw.Metrics["invariant.workers.eps0.10"] = benchfmt.Metric{
			Value: float64(len(BenchWorkers)), Unit: "worker counts",
			Better: benchfmt.BetterExact, Class: benchfmt.ClassDeterministic,
		}

		// Raw scan throughput over the cached .bex (timing: warn-only).
		throughput, err := benchEdgesPerSecond(w)
		if err != nil {
			return nil, nil, err
		}
		bw.Metrics["edges_per_s.bex"] = benchfmt.Metric{
			Value: throughput, Unit: "edges/s",
			Better: benchfmt.BetterHigher, Class: benchfmt.ClassTiming, RelTol: 0.60,
		}

		// Backend comparison: bytes on disk v1 vs v2 (deterministic encodings
		// of the same canonical stream) and per-format scan throughput
		// (timing: warn-only). v2 must be strictly smaller than v1 on every
		// corpus graph — that is an acceptance invariant, not a tolerance.
		bk, err := benchBackends(w)
		if err != nil {
			return nil, nil, err
		}
		if bk.Bytes2 >= bk.Bytes1 {
			return nil, nil, fmt.Errorf("exp: bench %s: .bex v2 is %d bytes, v1 is %d — v2 must be strictly smaller",
				w.Name, bk.Bytes2, bk.Bytes1)
		}
		bw.Metrics["bytes_on_disk.bex1"] = benchfmt.Metric{
			Value: float64(bk.Bytes1), Unit: "bytes",
			Better: benchfmt.BetterLower, Class: benchfmt.ClassDeterministic,
		}
		bw.Metrics["bytes_on_disk.bex2"] = benchfmt.Metric{
			Value: float64(bk.Bytes2), Unit: "bytes",
			Better: benchfmt.BetterLower, Class: benchfmt.ClassDeterministic,
			RelTol: 0.10, // block-size retunes move the footer overhead a little
		}
		bw.Metrics["edges_per_s.bex1"] = benchfmt.Metric{
			Value: bk.EdgesPerS1, Unit: "edges/s",
			Better: benchfmt.BetterHigher, Class: benchfmt.ClassTiming, RelTol: 0.60,
		}
		bw.Metrics["edges_per_s.bex2"] = benchfmt.Metric{
			Value: bk.EdgesPerS2, Unit: "edges/s",
			Better: benchfmt.BetterHigher, Class: benchfmt.ClassTiming, RelTol: 0.60,
		}
		bw.Metrics["edges_per_s.bex2_mmap"] = benchfmt.Metric{
			Value: bk.EdgesPerSMmap, Unit: "edges/s",
			Better: benchfmt.BetterHigher, Class: benchfmt.ClassTiming, RelTol: 0.60,
		}
		best2 := bk.EdgesPerS2
		if bk.EdgesPerSMmap > best2 {
			best2 = bk.EdgesPerSMmap
		}
		bw.Metrics["speedup.bex2_vs_bex1"] = benchfmt.Metric{
			Value: best2 / bk.EdgesPerS1, Unit: "x",
			Better: benchfmt.BetterHigher, Class: benchfmt.ClassTiming, RelTol: 0.60,
		}

		// Hot re-scan throughput (PR 10): same open stream, warm decoded-block
		// cache for v2, median of nine re-scans. The hot speedup is the decode
		// engine's headline number — the tentpole goal is ratio >= 1 (v2 at
		// least at v1 parity once re-scans skip the decode). Warn-only.
		bw.Metrics["edges_per_s.hot.bex1"] = benchfmt.Metric{
			Value: bk.HotEdgesPerS1, Unit: "edges/s",
			Better: benchfmt.BetterHigher, Class: benchfmt.ClassTiming, RelTol: 0.60,
		}
		bw.Metrics["edges_per_s.hot.bex2"] = benchfmt.Metric{
			Value: bk.HotEdgesPerS2, Unit: "edges/s",
			Better: benchfmt.BetterHigher, Class: benchfmt.ClassTiming, RelTol: 0.60,
		}
		bw.Metrics["edges_per_s.hot.bex2_mmap"] = benchfmt.Metric{
			Value: bk.HotEdgesPerSMmap, Unit: "edges/s",
			Better: benchfmt.BetterHigher, Class: benchfmt.ClassTiming, RelTol: 0.60,
		}
		hot2 := bk.HotEdgesPerS2
		if bk.HotEdgesPerSMmap > hot2 {
			hot2 = bk.HotEdgesPerSMmap
		}
		bw.Metrics["speedup.hot.bex2_vs_bex1"] = benchfmt.Metric{
			Value: hot2 / bk.HotEdgesPerS1, Unit: "x",
			Better: benchfmt.BetterHigher, Class: benchfmt.ClassTiming, RelTol: 0.60,
		}
		bw.Metrics["wall_ms.sweep"] = benchfmt.Metric{
			Value: float64(time.Since(sweepStart).Milliseconds()), Unit: "ms",
			Better: benchfmt.BetterLower, Class: benchfmt.ClassTiming, RelTol: 1.0,
		}

		// Patch the error cells and throughput into the row added above.
		row := table.Rows[len(table.Rows)-1]
		row[7], row[8], row[9] = errCells[0], errCells[1], errCells[2]
		row[13] = FormatCount(int64(throughput))
		row[14] = fmt.Sprintf("%.2f", float64(bk.Bytes2)/float64(bk.Bytes1))

		file.Workloads = append(file.Workloads, bw)
	}

	file.Notes = []string{
		fmt.Sprintf("Corpus sweep: %d graphs, %d trials per ε over ε∈{0.20,0.10,0.05}; %s scans; deterministic metrics at workers=1, estimates verified bit-identical at workers∈{1,2,4,8}.",
			len(file.Workloads), trials, mode),
	}
	table.AddNote("Deterministic metrics (err, estimate, passes, scans, space) reproduce bit-for-bit on any machine; edges/s and wall are timing metrics and only warn in benchdiff.")
	return file, table, nil
}

// benchKappa runs the streaming degeneracy peel over the workload's cache
// file with one worker (deterministic; the result is worker-invariant
// anyway).
func benchKappa(w Workload) (degen.Result, error) {
	src, err := stream.OpenAuto(w.Path)
	if err != nil {
		return degen.Result{}, fmt.Errorf("exp: bench %s: %w", w.Name, err)
	}
	defer src.Close()
	res, err := degen.Estimate(src, w.M, degen.Options{Workers: 1, KnownVertices: w.N})
	if err != nil {
		return degen.Result{}, fmt.Errorf("exp: bench %s: κ̂: %w", w.Name, err)
	}
	return res, nil
}

// BenchTrialStats extends TrialStats with the first trial's estimate (the
// determinism canary metric).
type BenchTrialStats struct {
	TrialStats
	FirstEstimate float64
}

// benchTrials runs the estimator trials for one (graph, ε) over the canonical
// file stream and returns the aggregated stats plus the physical scan count.
// Fused is the production path (all trials share scans through the
// scheduler); unfused is the injected regression (each trial scans alone).
// Per-trial estimates are bit-identical between the two — fusion is an
// execution strategy, never an approximation — so only the scan economy
// differs.
func benchTrials(w Workload, eps float64, trials int, unfused bool) (BenchTrialStats, int, error) {
	cfg := DefaultCoreConfig(w, eps)
	cfg.Workers = 1
	// The paper sizes its samples ∝ mκ/(ε²T); Config keeps the 1/ε² inside
	// the multipliers, so scale them so that ε really buys accuracy (with
	// space), normalized to DefaultCoreConfig's constants at the gate ε.
	scale := (benchGateEps * benchGateEps) / (eps * eps)
	cfg.CR, cfg.CL, cfg.CS = cfg.CR*scale, cfg.CL*scale, cfg.CS*scale

	var results []core.Result
	var scans int
	if unfused {
		results = make([]core.Result, trials)
		for i := 0; i < trials; i++ {
			src, err := stream.OpenAuto(w.Path)
			if err != nil {
				return BenchTrialStats{}, 0, fmt.Errorf("exp: bench %s: %w", w.Name, err)
			}
			runCfg := cfg
			runCfg.Seed = cfg.Seed + uint64(i)*7919
			res, rerr := core.EstimateTriangles(src, runCfg)
			src.Close()
			if rerr != nil {
				return BenchTrialStats{}, 0, fmt.Errorf("exp: bench %s trial %d: %w", w.Name, i, rerr)
			}
			results[i] = res
			scans += res.Scans
		}
	} else {
		src, err := stream.OpenAuto(w.Path)
		if err != nil {
			return BenchTrialStats{}, 0, fmt.Errorf("exp: bench %s: %w", w.Name, err)
		}
		ft, ferr := RunTrialsFused(src, w.M, trials, 1, func(c *sched.Client, trial int) (core.Result, error) {
			runCfg := cfg
			runCfg.Seed = cfg.Seed + uint64(trial)*7919
			est := core.NewEstimator(runCfg)
			est.TeeSpace(c.Scheduler().Meter())
			return est.RunOn(c)
		})
		src.Close()
		if ferr != nil {
			return BenchTrialStats{}, 0, fmt.Errorf("exp: bench %s: %w", w.Name, ferr)
		}
		results, scans = ft.Results, ft.Scans
	}

	stats, err := aggregateTrials(results, make([]error, len(results)), float64(w.T))
	if err != nil {
		return BenchTrialStats{}, 0, fmt.Errorf("exp: bench %s: %w", w.Name, err)
	}
	return BenchTrialStats{TrialStats: stats, FirstEstimate: results[0].Estimate}, scans, nil
}

// benchInvariance recomputes trial 0's gate-ε estimate at every BenchWorkers
// count and fails hard on any divergence: shard parallelism must never change
// the estimate.
func benchInvariance(w Workload) error {
	cfg := DefaultCoreConfig(w, benchGateEps)
	var want float64
	for i, workers := range BenchWorkers {
		src, err := stream.OpenAuto(w.Path)
		if err != nil {
			return fmt.Errorf("exp: bench %s: %w", w.Name, err)
		}
		runCfg := cfg
		runCfg.Workers = workers
		res, rerr := core.EstimateTriangles(src, runCfg)
		src.Close()
		if rerr != nil {
			return fmt.Errorf("exp: bench %s workers=%d: %w", w.Name, workers, rerr)
		}
		if i == 0 {
			want = res.Estimate
		} else if res.Estimate != want {
			return fmt.Errorf("exp: bench %s: estimate at workers=%d is %v, want %v (worker invariance broken)",
				w.Name, workers, res.Estimate, want)
		}
	}
	return nil
}

// BackendBench is the per-graph storage-backend comparison: encoded sizes of
// the same canonical stream in the v1 and v2 formats (deterministic) and raw
// scan throughput per format (timing).
type BackendBench struct {
	Bytes1, Bytes2                        int64
	EdgesPerS1, EdgesPerS2, EdgesPerSMmap float64
	// Hot re-scan throughput (PR 10): the same open stream re-scanned after
	// a warm-up pass, so v2 serves from the decoded-block cache and v1 from
	// the page cache — the estimator's 2nd..Nth logical pass economy.
	HotEdgesPerS1, HotEdgesPerS2, HotEdgesPerSMmap float64
}

// benchBackends re-encodes the workload's cached .bex v2 file as legacy v1 in
// a scratch directory, then times a cold-open full scan per backend — v1, v2
// buffered, and v2 mmap — and keeps the median of nine rounds. Every round
// opens the file fresh, so each one pays the backend's true first-scan cost
// (v2 re-verifies block CRCs, v1 re-reads its 2.5x bigger byte stream); the
// rounds run back to back per backend, the way a real scan runs one decode
// kernel continuously, and the median damps the scheduling noise a
// sub-millisecond sample picks up on a shared core. The cached file itself
// is the v2 side, so the sizes compare identical canonical edge sequences.
func benchBackends(w Workload) (BackendBench, error) {
	var bk BackendBench
	src, err := stream.OpenAuto(w.Path)
	if err != nil {
		return bk, fmt.Errorf("exp: bench %s: %w", w.Name, err)
	}
	tmp, err := os.MkdirTemp("", "benchbex")
	if err != nil {
		src.Close()
		return bk, fmt.Errorf("exp: bench %s: %w", w.Name, err)
	}
	defer os.RemoveAll(tmp)
	v1Path := filepath.Join(tmp, "graph.v1.bex")
	_, err = stream.WriteBexFile(v1Path, src)
	src.Close()
	if err != nil {
		return bk, fmt.Errorf("exp: bench %s: encode v1: %w", w.Name, err)
	}
	st1, err := os.Stat(v1Path)
	if err != nil {
		return bk, fmt.Errorf("exp: bench %s: %w", w.Name, err)
	}
	st2, err := os.Stat(w.Path)
	if err != nil {
		return bk, fmt.Errorf("exp: bench %s: %w", w.Name, err)
	}
	bk.Bytes1, bk.Bytes2 = st1.Size(), st2.Size()

	time1 := func(open func() (stream.FileBacked, error)) (float64, error) {
		const rounds = 9
		rates := make([]float64, 0, rounds)
		for r := 0; r < rounds; r++ {
			s, err := open()
			if err != nil {
				return 0, fmt.Errorf("exp: bench %s: %w", w.Name, err)
			}
			start := time.Now()
			m, err := stream.CountEdges(s)
			elapsed := time.Since(start).Seconds()
			s.Close()
			if err != nil {
				return 0, fmt.Errorf("exp: bench %s: %w", w.Name, err)
			}
			if elapsed <= 0 {
				elapsed = 1e-9
			}
			rates = append(rates, float64(m)/elapsed)
		}
		sort.Float64s(rates)
		return rates[rounds/2], nil
	}
	if bk.EdgesPerS1, err = time1(func() (stream.FileBacked, error) { return stream.OpenBex(v1Path) }); err != nil {
		return bk, err
	}
	if bk.EdgesPerS2, err = time1(func() (stream.FileBacked, error) { return stream.OpenBex2(w.Path) }); err != nil {
		return bk, err
	}
	if bk.EdgesPerSMmap, err = time1(func() (stream.FileBacked, error) { return stream.OpenBexMap(w.Path) }); err != nil {
		return bk, err
	}

	// Hot re-scan: one open stream, one warm-up pass, then the median of nine
	// timed re-scans. This is the pass the estimator actually repeats O(log n)
	// times: v2 streams run with the decoded-block cache so warm blocks skip
	// the varint decode entirely, v1 re-reads its flat bytes from the page
	// cache. The tentpole goal — v2 hot re-scan at least at v1 parity — is
	// recorded as a warn-only timing metric, like every other throughput.
	timeHot := func(open func() (stream.FileBacked, error)) (float64, error) {
		s, err := open()
		if err != nil {
			return 0, fmt.Errorf("exp: bench %s: %w", w.Name, err)
		}
		defer s.Close()
		if _, err := stream.CountEdges(s); err != nil { // warm-up pass
			return 0, fmt.Errorf("exp: bench %s: %w", w.Name, err)
		}
		const rounds = 9
		rates := make([]float64, 0, rounds)
		for r := 0; r < rounds; r++ {
			start := time.Now()
			m, err := stream.CountEdges(s)
			elapsed := time.Since(start).Seconds()
			if err != nil {
				return 0, fmt.Errorf("exp: bench %s: %w", w.Name, err)
			}
			if elapsed <= 0 {
				elapsed = 1e-9
			}
			rates = append(rates, float64(m)/elapsed)
		}
		sort.Float64s(rates)
		return rates[rounds/2], nil
	}
	if bk.HotEdgesPerS1, err = timeHot(func() (stream.FileBacked, error) { return stream.OpenBex(v1Path) }); err != nil {
		return bk, err
	}
	if bk.HotEdgesPerS2, err = timeHot(func() (stream.FileBacked, error) {
		return stream.OpenAutoOpts(w.Path, stream.OpenOptions{DecodeCache: true})
	}); err != nil {
		return bk, err
	}
	if bk.HotEdgesPerSMmap, err = timeHot(func() (stream.FileBacked, error) {
		return stream.OpenAutoOpts(w.Path, stream.OpenOptions{PreferMmap: true, DecodeCache: true})
	}); err != nil {
		return bk, err
	}
	return bk, nil
}

// benchEdgesPerSecond times one raw scan of the cached .bex.
func benchEdgesPerSecond(w Workload) (float64, error) {
	src, err := stream.OpenAuto(w.Path)
	if err != nil {
		return 0, fmt.Errorf("exp: bench %s: %w", w.Name, err)
	}
	defer src.Close()
	start := time.Now()
	m, err := stream.CountEdges(src)
	if err != nil {
		return 0, fmt.Errorf("exp: bench %s: %w", w.Name, err)
	}
	elapsed := time.Since(start).Seconds()
	if elapsed <= 0 {
		elapsed = 1e-9
	}
	return float64(m) / elapsed, nil
}
