package exp

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"degentri/internal/core"
	"degentri/internal/sampling"
	"degentri/internal/sched"
	"degentri/internal/stream"
)

// TrialStats aggregates the outcomes of repeated runs of one estimator on one
// workload.
type TrialStats struct {
	Trials             int
	Truth              float64
	MeanEstimate       float64
	MedianRelErr       float64
	MeanRelErr         float64
	P90RelErr          float64
	MeanSpace          float64
	MaxSpace           int64
	Passes             int
	MeanEstimateRelErr float64
}

// Runner produces one estimator result per trial. Trials are independent:
// RunTrials may invoke the runner from multiple goroutines concurrently (one
// call per trial index), so a Runner must not share mutable state between
// calls — build a fresh stream, RNG, and estimator per trial, as every
// runner in this package does.
type Runner func(trial int) (core.Result, error)

// RunTrials executes the runner the given number of times and aggregates
// relative errors and space usage against the known ground truth. Trials run
// on a bounded worker pool (one worker per CPU, capped at the trial count);
// the aggregation is performed sequentially in trial order afterwards, so the
// returned statistics are bit-identical to a sequential run regardless of
// worker count.
//
// The comparison experiments deliberately vary the *stream order* per trial
// (Workload.Stream(trial)), so their trials read different physical streams
// and cannot share scans. Trials that replay one shared stream with varying
// estimator seeds — repeated runs on a file, the trianglecount -trials flag —
// should use RunTrialsFused instead, which fuses all trials' passes onto the
// scan scheduler so R trials cost roughly the physical scans of one.
func RunTrials(run Runner, trials int, truth float64) (TrialStats, error) {
	return RunTrialsWorkers(run, trials, truth, 0)
}

// RunTrialsWorkers is RunTrials with an explicit worker count; workers <= 0
// selects the default (min(GOMAXPROCS, trials)), and workers == 1 degrades
// to a plain sequential loop.
func RunTrialsWorkers(run Runner, trials int, truth float64, workers int) (TrialStats, error) {
	if trials < 1 {
		return TrialStats{}, fmt.Errorf("exp: trials must be positive")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > trials {
		workers = trials
	}

	results := make([]core.Result, trials)
	errs := make([]error, trials)
	if workers == 1 {
		for i := 0; i < trials; i++ {
			results[i], errs[i] = run(i)
			if errs[i] != nil {
				break
			}
		}
	} else {
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					results[i], errs[i] = run(i)
				}
			}()
		}
		for i := 0; i < trials; i++ {
			next <- i
		}
		close(next)
		wg.Wait()
	}

	return aggregateTrials(results, errs, truth)
}

// aggregateTrials folds per-trial results into TrialStats sequentially in
// trial order: floating-point sums and maxima accumulate exactly as in a
// sequential run, regardless of how the trials were executed.
func aggregateTrials(results []core.Result, errs []error, truth float64) (TrialStats, error) {
	trials := len(results)
	stats := TrialStats{Trials: trials, Truth: truth}
	var relErrs []float64
	var estimates []float64
	for i := 0; i < trials; i++ {
		if errs[i] != nil {
			return stats, fmt.Errorf("exp: trial %d: %w", i, errs[i])
		}
		res := results[i]
		relErrs = append(relErrs, sampling.RelativeError(res.Estimate, truth))
		estimates = append(estimates, res.Estimate)
		stats.MeanSpace += float64(res.SpaceWords)
		if res.SpaceWords > stats.MaxSpace {
			stats.MaxSpace = res.SpaceWords
		}
		stats.Passes = res.Passes
	}
	stats.MeanEstimate = sampling.Mean(estimates)
	stats.MedianRelErr = sampling.Median(relErrs)
	stats.MeanRelErr = sampling.Mean(relErrs)
	stats.P90RelErr = sampling.Quantile(relErrs, 0.9)
	stats.MeanSpace /= float64(trials)
	stats.MeanEstimateRelErr = sampling.RelativeError(stats.MeanEstimate, truth)
	return stats, nil
}

// FusedRunner runs one trial against a shared stream, executing every pass
// through the given scheduler client. The client is registered before any
// trial starts (which is what makes all trials fuse from their first wave);
// a runner that delegates to its own scheduler clients — for example
// core.AutoEstimateOn via c.Scheduler() — must first Park or Done the trial
// client so it does not hold back its delegates' waves.
type FusedRunner func(c *sched.Client, trial int) (core.Result, error)

// FusedTrials is the outcome of a fused trial run: the per-trial results (in
// trial order, bit-identical to running each trial alone) plus the physical
// accounting of the fused execution.
type FusedTrials struct {
	// Results holds one core.Result per trial, in trial order.
	Results []core.Result
	// Scans is how many physical scans of the shared stream the whole fused
	// run performed — with R similar trials in lockstep, roughly the passes
	// of one trial rather than R× that.
	Scans int
	// PeakSpaceWords is the peak number of words retained *concurrently*
	// across all fused trials (the scheduler's group meter), the honest
	// space figure for the fused execution.
	PeakSpaceWords int64
	// Retries is the number of transient-fault retries the scheduler's
	// physical scans performed across the whole fused run (resource
	// accounting only; retried scans resume positionally and never change a
	// trial's result).
	Retries int
}

// Stats aggregates the fused results against a known ground truth, exactly
// like RunTrials does for unfused trials.
func (ft FusedTrials) Stats(truth float64) (TrialStats, error) {
	return aggregateTrials(ft.Results, make([]error, len(ft.Results)), truth)
}

// RunTrialsFused executes trials whose passes all fuse onto one scan
// scheduler over a single shared stream of exactly m edges: where RunTrials
// gives each trial its own scans (a worker pool of independent streams),
// here the trials are scheduler clients and every wave of the scheduler
// carries the pending pass of every live trial. R lockstep trials therefore
// cost about the physical scans of the slowest single trial. The per-trial
// results are bit-identical to unfused runs of the same (stream, config):
// all in-pass randomness is keyed, never positional.
//
// workers bounds the shard workers of each fused scan (<= 0: GOMAXPROCS).
// The first trial error (in trial order) is returned, matching RunTrials.
func RunTrialsFused(src stream.Stream, m, trials, workers int, run FusedRunner) (FusedTrials, error) {
	return RunTrialsFusedCtx(context.Background(), src, m, trials, workers, stream.RetryPolicy{}, run)
}

// RunTrialsFusedCtx is RunTrialsFused under a cancellation context and a
// transient-fault retry policy: ctx cancels every trial's next wave (each
// trial returns its own wrapped context error), and transient scan failures
// are healed under the policy with recoveries reported in
// FusedTrials.Retries.
func RunTrialsFusedCtx(ctx context.Context, src stream.Stream, m, trials, workers int, retry stream.RetryPolicy, run FusedRunner) (FusedTrials, error) {
	if trials < 1 {
		return FusedTrials{}, fmt.Errorf("exp: trials must be positive")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	sch := sched.NewCtx(ctx, src, m, workers, retry)
	clients := make([]*sched.Client, trials)
	for i := range clients {
		clients[i] = sch.NewClient()
	}
	results := make([]core.Result, trials)
	errs := make([]error, trials)
	var wg sync.WaitGroup
	for i := 0; i < trials; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer clients[i].Done()
			results[i], errs[i] = run(clients[i], i)
		}(i)
	}
	wg.Wait()
	ft := FusedTrials{Results: results, Scans: sch.Scans(), PeakSpaceWords: sch.Meter().Peak(), Retries: sch.Retries()}
	for i, err := range errs {
		if err != nil {
			return ft, fmt.Errorf("exp: trial %d: %w", i, err)
		}
	}
	return ft, nil
}

// CoreRunner builds a Runner for the paper's six-pass estimator on a
// workload, using the exact κ and T of the workload for parameter setting
// (the controlled setting used by most experiments) and varying seeds per
// trial.
//
// RunTrials already fans the trials themselves out over the cores, so unless
// the caller asked for intra-run parallelism explicitly the estimator runs
// its passes with one shard worker — otherwise every one of GOMAXPROCS
// concurrent trials would spawn GOMAXPROCS more shard workers and the
// machine would schedule cores² competing goroutines. (The estimate is
// identical either way; only scheduling differs.)
func CoreRunner(w Workload, cfg core.Config) Runner {
	return func(trial int) (core.Result, error) {
		runCfg := cfg
		if runCfg.Workers == 0 {
			runCfg.Workers = 1
		}
		runCfg.Seed = cfg.Seed + uint64(trial)*7919
		return core.EstimateTriangles(w.Stream(trial), runCfg)
	}
}

// DefaultCoreConfig returns the estimator configuration used by the
// comparison experiments for a workload: exact κ and T, modest constants.
func DefaultCoreConfig(w Workload, epsilon float64) core.Config {
	t := w.T
	if t < 1 {
		t = 1
	}
	kappa := w.Kappa
	if kappa < 1 {
		kappa = 1
	}
	cfg := core.DefaultConfig(epsilon, kappa, t)
	cfg.CR, cfg.CL, cfg.CS = 16, 16, 8
	cfg.Seed = 1
	return cfg
}
