package exp

import (
	"fmt"

	"degentri/internal/core"
	"degentri/internal/sampling"
)

// TrialStats aggregates the outcomes of repeated runs of one estimator on one
// workload.
type TrialStats struct {
	Trials        int
	Truth         float64
	MeanEstimate  float64
	MedianRelErr  float64
	MeanRelErr    float64
	P90RelErr     float64
	MeanSpace     float64
	MaxSpace      int64
	Passes        int
	MeanEstimateRelErr float64
}

// Runner produces one estimator result per trial.
type Runner func(trial int) (core.Result, error)

// RunTrials executes the runner the given number of times and aggregates
// relative errors and space usage against the known ground truth.
func RunTrials(run Runner, trials int, truth float64) (TrialStats, error) {
	if trials < 1 {
		return TrialStats{}, fmt.Errorf("exp: trials must be positive")
	}
	stats := TrialStats{Trials: trials, Truth: truth}
	var relErrs []float64
	var estimates []float64
	for i := 0; i < trials; i++ {
		res, err := run(i)
		if err != nil {
			return stats, fmt.Errorf("exp: trial %d: %w", i, err)
		}
		relErrs = append(relErrs, sampling.RelativeError(res.Estimate, truth))
		estimates = append(estimates, res.Estimate)
		stats.MeanSpace += float64(res.SpaceWords)
		if res.SpaceWords > stats.MaxSpace {
			stats.MaxSpace = res.SpaceWords
		}
		stats.Passes = res.Passes
	}
	stats.MeanEstimate = sampling.Mean(estimates)
	stats.MedianRelErr = sampling.Median(relErrs)
	stats.MeanRelErr = sampling.Mean(relErrs)
	stats.P90RelErr = sampling.Quantile(relErrs, 0.9)
	stats.MeanSpace /= float64(trials)
	stats.MeanEstimateRelErr = sampling.RelativeError(stats.MeanEstimate, truth)
	return stats, nil
}

// CoreRunner builds a Runner for the paper's six-pass estimator on a
// workload, using the exact κ and T of the workload for parameter setting
// (the controlled setting used by most experiments) and varying seeds per
// trial.
func CoreRunner(w Workload, cfg core.Config) Runner {
	return func(trial int) (core.Result, error) {
		runCfg := cfg
		runCfg.Seed = cfg.Seed + uint64(trial)*7919
		return core.EstimateTriangles(w.Stream(trial), runCfg)
	}
}

// DefaultCoreConfig returns the estimator configuration used by the
// comparison experiments for a workload: exact κ and T, modest constants.
func DefaultCoreConfig(w Workload, epsilon float64) core.Config {
	t := w.T
	if t < 1 {
		t = 1
	}
	kappa := w.Kappa
	if kappa < 1 {
		kappa = 1
	}
	cfg := core.DefaultConfig(epsilon, kappa, t)
	cfg.CR, cfg.CL, cfg.CS = 16, 16, 8
	cfg.Seed = 1
	return cfg
}
