package exp

import (
	"fmt"
	"math"

	"degentri/internal/clique"
	"degentri/internal/gen"
	"degentri/internal/sampling"
)

// E11CliqueExtension exercises the repository's implementation of the paper's
// future-work direction (Conjecture 7.1): a streaming k-clique estimator with
// space tracking mκ^{k-2}/T_k. For k = 4 it sweeps the budget on
// low-degeneracy clique-rich families and reports accuracy and space next to
// the conjectured bound. This is an extension beyond the paper's proven
// results; the experiment documents measured behaviour, not a theorem.
func E11CliqueExtension(scale Scale) ([]*Table, error) {
	trials := trialsFor(scale) + 3
	k := 4
	table := NewTable("E11", "Streaming 4-clique estimator (Conjecture 7.1 extension)",
		"workload", "m", "κ", "T₄", "mκ²/T₄", "budget ×bound", "space(words)", "median rel.err")

	apo := scale.pick(1200, 6000, 40000)
	hk := scale.pick(1500, 6000, 40000)
	workloads := []Workload{
		NewWorkload("apollonian", gen.Apollonian(apo), 61),
		NewWorkload("pref-attach-k6", gen.HolmeKim(hk, 6, 0.8, 601), 62),
		NewWorkload("complete-K40", gen.Complete(40), 63),
	}

	for _, w := range workloads {
		t4 := w.Graph.CliqueCount(k)
		if t4 == 0 {
			continue
		}
		bound := float64(w.M) * math.Pow(float64(w.Kappa), float64(k-2)) / float64(t4)
		for _, factor := range []float64{4, 16} {
			budget := int(math.Ceil(factor * bound))
			if budget < 4 {
				budget = 4
			}
			if budget > w.M {
				budget = w.M
			}
			var errs []float64
			var space float64
			for trial := 0; trial < trials; trial++ {
				cfg := clique.DefaultConfig(k, 0.1, w.Kappa, t4)
				cfg.ROverride = budget
				cfg.LOverride = 2 * budget
				cfg.Seed = uint64(71 + 977*trial)
				res, err := clique.Estimate(w.Stream(trial), cfg)
				if err != nil {
					return nil, fmt.Errorf("E11 %s: %w", w.Name, err)
				}
				errs = append(errs, sampling.RelativeError(res.Estimate, float64(t4)))
				space += float64(res.SpaceWords)
			}
			table.AddRow(w.Name, FormatCount(int64(w.M)), fmt.Sprintf("%d", w.Kappa), FormatCount(t4),
				FormatFloat(bound), fmt.Sprintf("%.0f", factor),
				FormatCount(int64(space/float64(trials))), FormatFloat(sampling.Median(errs)))
		}
	}
	table.AddNote("The estimator is unbiased; Conjecture 7.1 predicts O~(mκ^{k-2}/T_k) space suffices for (1±ε) accuracy — the 16× rows should show small error at space proportional to the bound.")
	return []*Table{table}, nil
}
