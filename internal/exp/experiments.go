package exp

import (
	"fmt"
	"math"

	"degentri/internal/baseline"
	"degentri/internal/core"
	"degentri/internal/gen"
)

// Experiment is one reproducible experiment: an identifier matching DESIGN.md
// §5, the paper artifact it validates, and a runner that produces result
// tables at the requested scale.
type Experiment struct {
	ID    string
	Title string
	Paper string
	Run   func(scale Scale) ([]*Table, error)
}

// Registry returns all experiments in execution order.
func Registry() []Experiment {
	return []Experiment{
		{"E1", "Space-for-accuracy comparison across algorithms", "Table 1 (recast as measurements)", E1SpaceComparison},
		{"E2", "Accuracy vs. space budget for the six-pass estimator", "Theorem 1.2 / 5.1", E2AccuracySpace},
		{"E3", "Wheel-graph scaling: degeneracy bound vs. worst-case bounds", "§1.1 wheel example", E3Wheel},
		{"E4", "Book-graph ablation: the assignment rule tames variance", "§1.2 motivation", E4BookAblation},
		{"E5", "Chiba–Nishizeki bounds d_E ≤ 2mκ and T ≤ 2mκ", "Lemma 3.1, Corollary 3.2", E5ChibaNishizeki},
		{"E6", "Assignment-rule properties (heavy/costly triangles, τ_max)", "Definition 5.2, Lemma 5.12, Theorem 5.13", E6AssignmentProperties},
		{"E7", "Lower-bound instances: detection space scales as mκ/T", "Theorem 6.3", E7LowerBound},
		{"E8", "Degree-oracle warm-up vs. full streaming algorithm", "Section 4 vs. Section 5", E8OracleVsStreaming},
		{"E9", "Space scaling with the degeneracy κ", "Theorem 1.2 bound shape", E9KappaScaling},
		{"E10", "Equal-space comparison on max-degree-skewed graphs", "Table 1 one-pass rows (m∆/T, sparsification)", E10OnePassComparison},
		{"E11", "Streaming k-clique counting extension", "Conjecture 7.1 (future work)", E11CliqueExtension},
		{"E12", "Streaming degeneracy approximation: certified bounds in O(n) space", "Definition 1.1 / the 'κ is known' assumption", E12DegeneracyApprox},
		{"E13", "Pass-fusion scan scheduler: one physical scan serves many logical passes", "the pass metric of Definition 1.1, engineered", E13ScanFusion},
	}
}

// Find returns the experiment with the given ID.
func Find(id string) (Experiment, bool) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// trialsFor picks the trial count per scale.
func trialsFor(scale Scale) int {
	switch scale {
	case ScaleSmoke:
		return 3
	case ScaleFull:
		return 21
	default:
		return 9
	}
}

// E1SpaceComparison runs every implemented algorithm on the standard
// workloads at its theory-prescribed budget and reports space and error side
// by side. The expected shape (the paper's Table 1 argument): on low-
// degeneracy, triangle-rich graphs the degeneracy-based estimator needs the
// least space among the sketching algorithms at comparable error, and all
// sketches are far below the exact Θ(m) baseline.
func E1SpaceComparison(scale Scale) ([]*Table, error) {
	trials := trialsFor(scale)
	table := NewTable("E1", "Measured space (words) and median relative error per algorithm",
		"workload", "n", "m", "T", "κ", "∆", "algorithm", "passes", "space(words)", "median rel.err")

	for _, w := range StandardWorkloads(scale) {
		truth := float64(w.T)
		type algo struct {
			name string
			run  Runner
		}
		algos := []algo{
			{"exact", func(trial int) (core.Result, error) {
				// One worker: RunTrials already fans trials across the cores.
				return baseline.ExactWorkers(w.Stream(trial), 1)
			}},
			{"degeneracy (this paper)", CoreRunner(w, DefaultCoreConfig(w, 0.1))},
			{"heavy-light (m^1.5/T)", func(trial int) (core.Result, error) {
				budget := int(math.Ceil(2 * math.Pow(float64(w.M), 1.5) / math.Max(float64(w.T), 1)))
				budget = clamp(budget, 1, w.M)
				return baseline.HeavyLight(w.Stream(trial), baseline.HeavyLightConfig{
					SampledEdges: budget, Seed: uint64(trial + 1),
				})
			}},
			{"neighbor sampling (m∆/T)", func(trial int) (core.Result, error) {
				budget := int(math.Ceil(4 * float64(w.M) * float64(w.MaxDegree) / math.Max(float64(w.T), 1)))
				budget = clamp(budget, 1, 20000)
				return baseline.NeighborSampling(w.Stream(trial), baseline.NeighborSamplingConfig{
					Estimators: budget, Seed: uint64(trial + 1),
				})
			}},
			{"doulion (sparsify)", func(trial int) (core.Result, error) {
				p := math.Cbrt(100 / math.Max(float64(w.T), 1))
				if p > 1 {
					p = 1
				}
				if p < 0.001 {
					p = 0.001
				}
				return baseline.Doulion(w.Stream(trial), baseline.DoulionConfig{P: p, Seed: uint64(trial + 1)})
			}},
		}
		for _, a := range algos {
			stats, err := RunTrials(a.run, trials, truth)
			if err != nil {
				return nil, fmt.Errorf("E1 %s/%s: %w", w.Name, a.name, err)
			}
			table.AddRow(w.Name,
				FormatCount(int64(w.N)), FormatCount(int64(w.M)), FormatCount(w.T),
				fmt.Sprintf("%d", w.Kappa), fmt.Sprintf("%d", w.MaxDegree),
				a.name, fmt.Sprintf("%d", stats.Passes),
				FormatCount(int64(stats.MeanSpace)), FormatFloat(stats.MedianRelErr))
		}
	}
	table.AddNote("Budgets follow each algorithm's theory bound with small constants (neighbor sampling capped at 20k copies); see DESIGN.md E1.")
	table.AddNote("Theoretical degeneracy bound mκ/T is the target shape for the 'degeneracy' rows.")
	return []*Table{table}, nil
}

// E2AccuracySpace sweeps the sample budget of the six-pass estimator in
// multiples of mκ/T on a preferential-attachment workload, demonstrating the
// accuracy/space trade-off of Theorem 1.2: error decreases roughly as the
// inverse square root of the budget.
func E2AccuracySpace(scale Scale) ([]*Table, error) {
	trials := trialsFor(scale) + 6
	n := scale.pick(2000, 12000, 80000)
	w := NewWorkload("pref-attach-k4", gen.HolmeKim(n, 4, 0.7, 71), 7)
	truth := float64(w.T)
	bound := w.TheoreticalBound()

	table := NewTable("E2", fmt.Sprintf("Accuracy vs. budget on %s (m=%d, T=%d, κ=%d, mκ/T=%.1f)",
		w.Name, w.M, w.T, w.Kappa, bound),
		"budget ×(mκ/T)", "r=ℓ", "space(words)", "median rel.err", "p90 rel.err")

	for _, factor := range []float64{2, 4, 8, 16, 32, 64} {
		budget := int(math.Ceil(factor * bound))
		if budget < 1 {
			budget = 1
		}
		cfg := DefaultCoreConfig(w, 0.1)
		cfg.ROverride = budget
		cfg.LOverride = budget
		cfg.SOverride = clamp(budget/4, 1, 1<<20)
		stats, err := RunTrials(CoreRunner(w, cfg), trials, truth)
		if err != nil {
			return nil, fmt.Errorf("E2 factor %.2f: %w", factor, err)
		}
		table.AddRow(fmt.Sprintf("%.2f", factor), FormatCount(int64(budget)),
			FormatCount(int64(stats.MeanSpace)), FormatFloat(stats.MedianRelErr), FormatFloat(stats.P90RelErr))
	}
	table.AddNote("Error should shrink roughly like 1/√budget, flattening once the budget passes the mκ/T knee.")
	return []*Table{table}, nil
}

// E3Wheel reproduces the §1.1 wheel-graph example: on wheels, m = Θ(n),
// T = Θ(n) and κ = 3, so the degeneracy bound mκ/T is O(1) while the
// worst-case bounds m^{3/2}/T = Θ(√n) and m∆/T = Θ(n) grow with n. The table
// reports the measured space of each estimator at a fixed error target as n
// grows.
func E3Wheel(scale Scale) ([]*Table, error) {
	trials := trialsFor(scale)
	table := NewTable("E3", "Wheel graphs: measured space (words) as n grows",
		"n", "m", "T", "degeneracy est. space", "degeneracy median err",
		"heavy-light space", "heavy-light err",
		"mκ/T", "m^1.5/T", "m∆/T")

	for _, w := range WheelWorkloads(scale) {
		truth := float64(w.T)

		ours, err := RunTrials(CoreRunner(w, DefaultCoreConfig(w, 0.1)), trials, truth)
		if err != nil {
			return nil, err
		}
		hlBudget := clamp(int(math.Ceil(4*math.Pow(float64(w.M), 1.5)/float64(w.T))), 1, w.M)
		hl, err := RunTrials(func(trial int) (core.Result, error) {
			return baseline.HeavyLight(w.Stream(trial), baseline.HeavyLightConfig{SampledEdges: hlBudget, Seed: uint64(trial + 1)})
		}, trials, truth)
		if err != nil {
			return nil, err
		}

		table.AddRow(FormatCount(int64(w.N)), FormatCount(int64(w.M)), FormatCount(w.T),
			FormatCount(int64(ours.MeanSpace)), FormatFloat(ours.MedianRelErr),
			FormatCount(int64(hl.MeanSpace)), FormatFloat(hl.MedianRelErr),
			FormatFloat(w.TheoreticalBound()),
			FormatCount(int64(math.Pow(float64(w.M), 1.5)/float64(w.T))),
			FormatCount(int64(float64(w.M)*float64(w.MaxDegree)/float64(w.T))))
	}
	table.AddNote("The degeneracy estimator's space should stay (near) flat while the m^1.5/T baseline (and the m∆/T theory column) grow with n.")
	table.AddNote("The one-pass neighbor-sampling baseline needs Θ(m∆/T) = Θ(n) copies on wheels and is omitted from the runs; its theory column shows why.")
	return []*Table{table}, nil
}

// E4BookAblation compares the paper's assignment rule against the
// no-assignment ablation on the book graph at identical budgets: without the
// rule, the single spine edge carries every triangle and the estimate is
// wildly unstable (the §1.2 variance argument); with the rule the error is
// small.
func E4BookAblation(scale Scale) ([]*Table, error) {
	trials := trialsFor(scale) + 12
	pages := scale.pick(1500, 10000, 100000)
	w := NewWorkload("book", gen.Book(pages), 19)
	truth := float64(w.T)
	bound := w.TheoreticalBound()
	budget := clamp(int(math.Ceil(8*bound)), 8, w.M)

	table := NewTable("E4", fmt.Sprintf("Book graph with %d pages: identical budgets (r=ℓ=%d)", pages, budget),
		"rule", "median rel.err", "mean rel.err", "p90 rel.err", "space(words)")

	for _, rule := range []core.AssignmentRule{core.RuleLowestCount, core.RuleLowestDegree, core.RuleNone} {
		cfg := DefaultCoreConfig(w, 0.1)
		cfg.Rule = rule
		cfg.ROverride, cfg.LOverride = budget, 2*budget
		cfg.SOverride = clamp(budget/2, 1, 1<<20)
		stats, err := RunTrials(CoreRunner(w, cfg), trials, truth)
		if err != nil {
			return nil, err
		}
		table.AddRow(rule.String(), FormatFloat(stats.MedianRelErr), FormatFloat(stats.MeanRelErr),
			FormatFloat(stats.P90RelErr), FormatCount(int64(stats.MeanSpace)))
	}
	table.AddNote("Expected shape: both assignment rules keep the error small; the no-assignment ablation is biased/unstable at the same budget.")
	return []*Table{table}, nil
}

// E5ChibaNishizeki verifies the structural bounds the whole analysis rests
// on: d_E = Σ_e min(d_u,d_v) ≤ 2mκ (Lemma 3.1) and T ≤ 2mκ (Corollary 3.2),
// reporting the tightness ratio per workload.
func E5ChibaNishizeki(scale Scale) ([]*Table, error) {
	table := NewTable("E5", "Chiba–Nishizeki bounds across graph families",
		"workload", "m", "κ", "d_E", "2mκ", "d_E/2mκ", "T", "T/2mκ")
	ws := append(StandardWorkloads(scale), SkewedWorkloads(scale)...)
	for _, w := range ws {
		de := w.Graph.EdgeDegreeSum()
		bound := 2 * int64(w.M) * int64(w.Kappa)
		if de > bound {
			return nil, fmt.Errorf("E5: Lemma 3.1 violated on %s: d_E=%d > 2mκ=%d", w.Name, de, bound)
		}
		if w.T > bound {
			return nil, fmt.Errorf("E5: Corollary 3.2 violated on %s: T=%d > 2mκ=%d", w.Name, w.T, bound)
		}
		table.AddRow(w.Name, FormatCount(int64(w.M)), fmt.Sprintf("%d", w.Kappa),
			FormatCount(de), FormatCount(bound), FormatFloat(float64(de)/float64(bound)),
			FormatCount(w.T), FormatFloat(float64(w.T)/float64(bound)))
	}
	table.AddNote("Both ratios must stay ≤ 1; the experiment fails hard if either bound is violated.")
	return []*Table{table}, nil
}

// clamp bounds v to [lo, hi].
func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
