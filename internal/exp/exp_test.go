package exp

import (
	"strings"
	"testing"

	"degentri/internal/core"
	"degentri/internal/gen"
)

func TestTableRendering(t *testing.T) {
	tab := NewTable("T1", "A test table", "a", "b")
	tab.AddRow("1", "2")
	tab.AddRow("3")           // short row gets padded
	tab.AddRow("4", "5", "6") // long row gets truncated
	tab.AddNote("note %d", 7)
	md := tab.Markdown()
	if !strings.Contains(md, "### T1 — A test table") || !strings.Contains(md, "| 1 | 2 |") {
		t.Fatalf("markdown rendering broken:\n%s", md)
	}
	if !strings.Contains(md, "note 7") {
		t.Error("note missing")
	}
	csv := tab.CSV()
	if !strings.HasPrefix(csv, "a,b\n") || !strings.Contains(csv, "1,2\n") {
		t.Fatalf("csv rendering broken:\n%s", csv)
	}
	if !strings.Contains(csv, "3,\n") {
		t.Error("padded row missing from csv")
	}
}

func TestFormatHelpers(t *testing.T) {
	if FormatCount(123) != "123" {
		t.Error(FormatCount(123))
	}
	if FormatCount(45_000) != "45.0k" {
		t.Error(FormatCount(45_000))
	}
	if FormatCount(2_500_000) != "2.50M" {
		t.Error(FormatCount(2_500_000))
	}
	if FormatCount(3_000_000_000) != "3.00G" {
		t.Error(FormatCount(3_000_000_000))
	}
	if FormatFloat(0.12345) != "0.123" {
		t.Error(FormatFloat(0.12345))
	}
	if FormatPercent(0.25) != "25.0%" {
		t.Error(FormatPercent(0.25))
	}
}

func TestScaleHelpers(t *testing.T) {
	if ScaleSmoke.String() != "smoke" || ScaleDefault.String() != "default" || ScaleFull.String() != "full" {
		t.Error("scale strings")
	}
	if Scale(9).String() == "" {
		t.Error("unknown scale should render")
	}
	if ScaleSmoke.pick(1, 2, 3) != 1 || ScaleDefault.pick(1, 2, 3) != 2 || ScaleFull.pick(1, 2, 3) != 3 {
		t.Error("pick broken")
	}
}

func TestWorkloadBasics(t *testing.T) {
	w := NewWorkload("wheel", gen.Wheel(50), 3)
	if w.M != 98 || w.T != 49 || w.Kappa != 3 {
		t.Fatalf("workload ground truth wrong: %+v", w)
	}
	s := w.Stream(0)
	if m, ok := s.Len(); !ok || m != 98 {
		t.Fatal("stream length")
	}
	if w.TheoreticalBound() <= 0 {
		t.Fatal("theoretical bound")
	}
	triFree := NewWorkload("grid", gen.Grid(4, 4), 1)
	if triFree.TheoreticalBound() <= 0 {
		t.Fatal("triangle-free bound should still be positive")
	}
}

func TestWorkloadSuitesNonEmpty(t *testing.T) {
	if len(StandardWorkloads(ScaleSmoke)) == 0 ||
		len(WheelWorkloads(ScaleSmoke)) == 0 ||
		len(KappaSweepWorkloads(ScaleSmoke)) == 0 ||
		len(SkewedWorkloads(ScaleSmoke)) == 0 {
		t.Fatal("workload suites must be non-empty")
	}
	for _, w := range StandardWorkloads(ScaleSmoke) {
		if w.T <= 0 {
			t.Errorf("standard workload %s has no triangles", w.Name)
		}
		if w.Kappa <= 0 || w.M <= 0 {
			t.Errorf("workload %s has degenerate parameters", w.Name)
		}
	}
}

func TestRunTrials(t *testing.T) {
	if _, err := RunTrials(func(int) (core.Result, error) { return core.Result{}, nil }, 0, 1); err == nil {
		t.Fatal("trials=0 should fail")
	}
	stats, err := RunTrials(func(trial int) (core.Result, error) {
		return core.Result{Estimate: 100, SpaceWords: int64(10 + trial), Passes: 6}, nil
	}, 5, 100)
	if err != nil {
		t.Fatal(err)
	}
	if stats.MedianRelErr != 0 || stats.MeanEstimate != 100 || stats.Passes != 6 {
		t.Fatalf("stats %+v", stats)
	}
	if stats.MaxSpace != 14 || stats.MeanSpace != 12 {
		t.Fatalf("space stats %+v", stats)
	}
}

func TestCoreRunnerAndDefaultConfig(t *testing.T) {
	w := NewWorkload("wheel", gen.Wheel(200), 3)
	cfg := DefaultCoreConfig(w, 0.2)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	run := CoreRunner(w, cfg)
	res, err := run(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.EdgesInStream != w.M {
		t.Fatalf("m = %d", res.EdgesInStream)
	}
	// Triangle-free workload still yields a valid config (TGuess clamped).
	grid := NewWorkload("grid", gen.Grid(5, 5), 1)
	if err := DefaultCoreConfig(grid, 0.2).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryAndFind(t *testing.T) {
	reg := Registry()
	if len(reg) != 13 {
		t.Fatalf("registry has %d experiments, want 13", len(reg))
	}
	seen := map[string]bool{}
	for _, e := range reg {
		if e.ID == "" || e.Title == "" || e.Paper == "" || e.Run == nil {
			t.Fatalf("experiment %+v incomplete", e.ID)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate experiment ID %s", e.ID)
		}
		seen[e.ID] = true
	}
	if _, ok := Find("E3"); !ok {
		t.Fatal("E3 not found")
	}
	if _, ok := Find("E99"); ok {
		t.Fatal("E99 should not exist")
	}
}

// TestAllExperimentsSmoke runs every registered experiment at smoke scale and
// checks that each produces at least one non-empty table. This is the
// integration test of the whole pipeline: generators → streams → estimators →
// tables.
func TestAllExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke experiments skipped in -short mode")
	}
	for _, e := range Registry() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables, err := e.Run(ScaleSmoke)
			if err != nil {
				t.Fatalf("%s failed: %v", e.ID, err)
			}
			if len(tables) == 0 {
				t.Fatalf("%s produced no tables", e.ID)
			}
			for _, tab := range tables {
				if len(tab.Rows) == 0 {
					t.Errorf("%s table %s has no rows", e.ID, tab.ID)
				}
				if tab.Markdown() == "" || tab.CSV() == "" {
					t.Errorf("%s table %s renders empty", e.ID, tab.ID)
				}
			}
		})
	}
}

func TestPackEdge(t *testing.T) {
	if packEdge(1, 2) == packEdge(2, 1) {
		t.Error("packEdge should be order sensitive (callers normalize)")
	}
	if packEdge(1, 2) == packEdge(1, 3) {
		t.Error("collision")
	}
}
