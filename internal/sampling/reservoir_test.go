package sampling

import (
	"math"
	"testing"
)

func TestReservoirKeepsAllWhenUnderCapacity(t *testing.T) {
	r := NewReservoir[int](10, NewRNG(1))
	for i := 0; i < 5; i++ {
		r.Offer(i)
	}
	if len(r.Items()) != 5 || r.Seen() != 5 {
		t.Fatalf("items=%v seen=%d", r.Items(), r.Seen())
	}
	for i, v := range r.Items() {
		if v != i {
			t.Fatalf("item %d = %d", i, v)
		}
	}
}

func TestReservoirCapacityRespected(t *testing.T) {
	r := NewReservoir[int](7, NewRNG(2))
	for i := 0; i < 1000; i++ {
		r.Offer(i)
	}
	if len(r.Items()) != 7 {
		t.Fatalf("len=%d, want 7", len(r.Items()))
	}
	if r.Capacity() != 7 {
		t.Fatalf("capacity=%d", r.Capacity())
	}
	if r.Seen() != 1000 {
		t.Fatalf("seen=%d", r.Seen())
	}
}

func TestReservoirPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewReservoir[int](0, NewRNG(1))
}

func TestReservoirUniformity(t *testing.T) {
	// Sample 1 item from a stream of 20, repeat many times; each element
	// should be chosen ~1/20 of the time.
	const stream = 20
	const trials = 40000
	counts := make([]int, stream)
	rng := NewRNG(3)
	for trial := 0; trial < trials; trial++ {
		r := NewReservoir[int](1, rng)
		for i := 0; i < stream; i++ {
			r.Offer(i)
		}
		counts[r.Items()[0]]++
	}
	for i, c := range counts {
		frac := float64(c) / trials
		if math.Abs(frac-1.0/stream) > 0.01 {
			t.Fatalf("element %d selected with frequency %.4f, want ~%.4f", i, frac, 1.0/stream)
		}
	}
}

func TestReservoirInclusionProbability(t *testing.T) {
	// With k=5 over 50 items every item should appear with probability 0.1.
	const stream = 50
	const k = 5
	const trials = 20000
	counts := make([]int, stream)
	rng := NewRNG(4)
	for trial := 0; trial < trials; trial++ {
		r := NewReservoir[int](k, rng)
		for i := 0; i < stream; i++ {
			r.Offer(i)
		}
		for _, v := range r.Items() {
			counts[v]++
		}
	}
	want := float64(k) / stream
	for i, c := range counts {
		frac := float64(c) / trials
		if math.Abs(frac-want) > 0.015 {
			t.Fatalf("element %d inclusion frequency %.4f, want ~%.2f", i, frac, want)
		}
	}
}

func TestReservoirReset(t *testing.T) {
	r := NewReservoir[int](3, NewRNG(5))
	for i := 0; i < 10; i++ {
		r.Offer(i)
	}
	r.Reset()
	if len(r.Items()) != 0 || r.Seen() != 0 {
		t.Fatal("reset did not clear reservoir")
	}
}

func TestSingleReservoirEmpty(t *testing.T) {
	s := NewSingleReservoir[string](NewRNG(1))
	if _, ok := s.Value(); ok {
		t.Fatal("empty reservoir reported a value")
	}
	if s.Seen() != 0 {
		t.Fatal("seen should be 0")
	}
}

func TestSingleReservoirUniform(t *testing.T) {
	const stream = 10
	const trials = 40000
	counts := make([]int, stream)
	rng := NewRNG(6)
	for trial := 0; trial < trials; trial++ {
		s := NewSingleReservoir[int](rng)
		for i := 0; i < stream; i++ {
			s.Offer(i)
		}
		v, ok := s.Value()
		if !ok {
			t.Fatal("no value")
		}
		counts[v]++
	}
	for i, c := range counts {
		frac := float64(c) / trials
		if math.Abs(frac-0.1) > 0.01 {
			t.Fatalf("element %d frequency %.4f", i, frac)
		}
	}
}

func TestSingleReservoirReset(t *testing.T) {
	s := NewSingleReservoir[int](NewRNG(7))
	s.Offer(3)
	s.Reset()
	if _, ok := s.Value(); ok || s.Seen() != 0 {
		t.Fatal("reset failed")
	}
}

func TestWeightedSingleReservoirProportional(t *testing.T) {
	// Items 0,1,2 with weights 1,2,7 should be selected with probabilities
	// 0.1, 0.2, 0.7.
	weights := []float64{1, 2, 7}
	const trials = 60000
	counts := make([]int, len(weights))
	rng := NewRNG(8)
	for trial := 0; trial < trials; trial++ {
		w := NewWeightedSingleReservoir[int](rng)
		for i, wt := range weights {
			w.Offer(i, wt)
		}
		v, ok := w.Value()
		if !ok {
			t.Fatal("no value")
		}
		counts[v]++
	}
	var total float64
	for _, wt := range weights {
		total += wt
	}
	for i, c := range counts {
		frac := float64(c) / trials
		want := weights[i] / total
		if math.Abs(frac-want) > 0.01 {
			t.Fatalf("item %d frequency %.4f, want ~%.4f", i, frac, want)
		}
	}
}

func TestWeightedSingleReservoirSkipsZeroWeight(t *testing.T) {
	w := NewWeightedSingleReservoir[int](NewRNG(9))
	w.Offer(1, 0)
	if _, ok := w.Value(); ok {
		t.Fatal("zero-weight item was selected")
	}
	w.Offer(2, 5)
	if v, ok := w.Value(); !ok || v != 2 {
		t.Fatal("positive-weight item not selected")
	}
	if w.TotalWeight() != 5 {
		t.Fatalf("total weight %v", w.TotalWeight())
	}
}

func TestWeightedSingleReservoirPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewWeightedSingleReservoir[int](NewRNG(1)).Offer(1, -1)
}

func TestWeightedSingleReservoirReset(t *testing.T) {
	w := NewWeightedSingleReservoir[int](NewRNG(10))
	w.Offer(1, 1)
	w.Reset()
	if _, ok := w.Value(); ok || w.TotalWeight() != 0 {
		t.Fatal("reset failed")
	}
}
