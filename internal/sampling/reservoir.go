package sampling

// Reservoir maintains a uniform random sample (with replacement across
// independent reservoirs, without replacement within one) of k items from a
// stream of unknown length, using Vitter's Algorithm R. Each call to Offer
// costs O(1) expected time and the reservoir holds at most k items.
type Reservoir[T any] struct {
	k     int
	seen  int64
	items []T
	rng   *RNG
}

// NewReservoir creates a reservoir that keeps a uniform sample of up to k
// items. It panics if k <= 0.
func NewReservoir[T any](k int, rng *RNG) *Reservoir[T] {
	if k <= 0 {
		panic("sampling: reservoir size must be positive")
	}
	return &Reservoir[T]{k: k, items: make([]T, 0, k), rng: rng}
}

// Offer presents the next stream item to the reservoir.
func (r *Reservoir[T]) Offer(item T) {
	r.seen++
	if len(r.items) < r.k {
		r.items = append(r.items, item)
		return
	}
	j := r.rng.Int63n(r.seen)
	if j < int64(r.k) {
		r.items[j] = item
	}
}

// Items returns the current sample. The slice aliases internal storage.
func (r *Reservoir[T]) Items() []T { return r.items }

// Seen returns how many items have been offered.
func (r *Reservoir[T]) Seen() int64 { return r.seen }

// Capacity returns k.
func (r *Reservoir[T]) Capacity() int { return r.k }

// Reset clears the reservoir for a fresh pass.
func (r *Reservoir[T]) Reset() {
	r.items = r.items[:0]
	r.seen = 0
}

// SingleReservoir keeps one uniform random item from a stream. It is the
// size-1 special case used pervasively by the estimators (uniform neighbor
// selection in passes 3 and 5 of Algorithm 2), kept separate from Reservoir
// to avoid slice overhead when millions of instances are live at once.
type SingleReservoir[T any] struct {
	seen  int64
	item  T
	valid bool
	rng   *RNG
}

// NewSingleReservoir returns an empty single-item reservoir.
func NewSingleReservoir[T any](rng *RNG) *SingleReservoir[T] {
	return &SingleReservoir[T]{rng: rng}
}

// Offer presents the next item.
func (s *SingleReservoir[T]) Offer(item T) {
	s.seen++
	if s.rng.Int63n(s.seen) == 0 {
		s.item = item
		s.valid = true
	}
}

// Value returns the sampled item and whether anything has been offered.
func (s *SingleReservoir[T]) Value() (T, bool) { return s.item, s.valid }

// Seen returns the number of items offered.
func (s *SingleReservoir[T]) Seen() int64 { return s.seen }

// Reset clears the reservoir.
func (s *SingleReservoir[T]) Reset() {
	var zero T
	s.item = zero
	s.valid = false
	s.seen = 0
}

// WeightedSingleReservoir keeps one item sampled with probability
// proportional to its weight from a stream, using Chao's procedure: the
// incoming item replaces the current one with probability w/Σw. It is the
// primitive behind degree-proportional edge sampling in the degree-oracle
// model (Algorithm 1).
type WeightedSingleReservoir[T any] struct {
	total float64
	item  T
	valid bool
	rng   *RNG
}

// NewWeightedSingleReservoir returns an empty weighted reservoir.
func NewWeightedSingleReservoir[T any](rng *RNG) *WeightedSingleReservoir[T] {
	return &WeightedSingleReservoir[T]{rng: rng}
}

// Offer presents an item with the given non-negative weight. Zero-weight
// items can never be selected; negative weights panic.
func (w *WeightedSingleReservoir[T]) Offer(item T, weight float64) {
	if weight < 0 {
		panic("sampling: negative weight")
	}
	if weight == 0 {
		return
	}
	w.total += weight
	if w.rng.Float64()*w.total < weight {
		w.item = item
		w.valid = true
	}
}

// Value returns the sampled item and whether any positive-weight item has
// been offered.
func (w *WeightedSingleReservoir[T]) Value() (T, bool) { return w.item, w.valid }

// TotalWeight returns the sum of offered weights.
func (w *WeightedSingleReservoir[T]) TotalWeight() float64 { return w.total }

// Reset clears the reservoir.
func (w *WeightedSingleReservoir[T]) Reset() {
	var zero T
	w.item = zero
	w.valid = false
	w.total = 0
}
