package sampling

import "testing"

func TestMixSeedDistinct(t *testing.T) {
	seen := make(map[uint64]bool)
	for pass := uint64(0); pass < 4; pass++ {
		for inst := uint64(0); inst < 32; inst++ {
			for shard := uint64(0); shard < 8; shard++ {
				s := MixSeed(7, pass, inst, shard)
				if seen[s] {
					t.Fatalf("MixSeed collision at (%d,%d,%d)", pass, inst, shard)
				}
				seen[s] = true
			}
		}
	}
	if MixSeed(7, 1, 2) != MixSeed(7, 1, 2) {
		t.Fatal("MixSeed not deterministic")
	}
	if MixSeed(7, 1, 2) == MixSeed(8, 1, 2) {
		t.Fatal("MixSeed ignores the base seed")
	}
}

// TestRes1Uniform checks that the skip-ahead reservoir selects each stream
// position with roughly equal frequency.
func TestRes1Uniform(t *testing.T) {
	const n, trials = 20, 40000
	counts := make([]int, n)
	for trial := 0; trial < trials; trial++ {
		var r Res1
		r.Init(MixSeed(3, uint64(trial)))
		for v := 0; v < n; v++ {
			r.Offer(v)
		}
		if r.N != n {
			t.Fatalf("N = %d, want %d", r.N, n)
		}
		counts[r.W]++
	}
	want := float64(trials) / float64(n)
	for v, c := range counts {
		if float64(c) < 0.85*want || float64(c) > 1.15*want {
			t.Errorf("position %d selected %d times, want ~%.0f", v, c, want)
		}
	}
}

// TestRes1MergeUniform checks that merging per-shard reservoirs in shard
// order yields a uniform sample over the concatenated stream, including with
// empty and uneven shards.
func TestRes1MergeUniform(t *testing.T) {
	const trials = 40000
	bounds := []int{0, 3, 3, 10, 11, 20} // shard ranges over positions [0,20)
	n := bounds[len(bounds)-1]
	counts := make([]int, n)
	for trial := 0; trial < trials; trial++ {
		var m Res1Merger
		m.Init(MixSeed(9, uint64(trial)))
		for s := 0; s+1 < len(bounds); s++ {
			var r Res1
			r.Init(MixSeed(5, uint64(trial), uint64(s)))
			for v := bounds[s]; v < bounds[s+1]; v++ {
				r.Offer(v)
			}
			m.Absorb(&r)
		}
		if !m.Has() || m.N != int64(n) {
			t.Fatalf("merger N = %d, want %d", m.N, n)
		}
		counts[m.W]++
	}
	want := float64(trials) / float64(n)
	for v, c := range counts {
		if float64(c) < 0.85*want || float64(c) > 1.15*want {
			t.Errorf("position %d selected %d times, want ~%.0f", v, c, want)
		}
	}
}

// TestResKMergeUniform checks the bank variant: every sub-reservoir of the
// merged bank is a uniform sample of the concatenated stream.
func TestResKMergeUniform(t *testing.T) {
	const k, trials = 3, 20000
	bounds := []int{0, 1, 16, 16, 24}
	n := bounds[len(bounds)-1]
	counts := make([][]int, k)
	for j := range counts {
		counts[j] = make([]int, n)
	}
	for trial := 0; trial < trials; trial++ {
		var m ResKMerger
		m.Init(MixSeed(11, uint64(trial)), k)
		for s := 0; s+1 < len(bounds); s++ {
			var r ResK
			r.Init(MixSeed(13, uint64(trial), uint64(s)), k)
			for v := bounds[s]; v < bounds[s+1]; v++ {
				r.Offer(v)
			}
			m.Absorb(&r)
		}
		for j := 0; j < k; j++ {
			counts[j][m.W[j]]++
		}
	}
	want := float64(trials) / float64(n)
	for j := range counts {
		for v, c := range counts[j] {
			if float64(c) < 0.8*want || float64(c) > 1.2*want {
				t.Errorf("sub-reservoir %d position %d selected %d times, want ~%.0f", j, v, c, want)
			}
		}
	}
}

// TestResKReuse checks that Init recycles slices without leaking state
// between uses (the per-shard banks are pooled by the estimators).
func TestResKReuse(t *testing.T) {
	var r ResK
	r.Init(1, 5)
	for v := 0; v < 100; v++ {
		r.Offer(v)
	}
	r.Init(2, 3)
	if r.N != 0 || r.K() != 3 {
		t.Fatalf("reused bank not reset: N=%d k=%d", r.N, r.K())
	}
	for j, w := range r.W {
		if w != -1 {
			t.Fatalf("reused bank sub-reservoir %d holds stale sample %d", j, w)
		}
	}
	r.Offer(42)
	for j, w := range r.W {
		if w != 42 {
			t.Fatalf("first offer not accepted by sub-reservoir %d (got %d)", j, w)
		}
	}
}
