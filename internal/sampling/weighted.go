package sampling

import "fmt"

// AliasTable supports O(1) sampling from a fixed discrete distribution after
// O(n) preprocessing (Walker/Vose alias method). It is used to draw the ℓ
// degree-proportional samples from the stored edge set R in Algorithm 2.
type AliasTable struct {
	prob  []float64
	alias []int
	n     int
}

// NewAliasTable builds an alias table for the given non-negative weights.
// It returns an error if the weights are empty, contain a negative value, or
// sum to zero.
func NewAliasTable(weights []float64) (*AliasTable, error) {
	n := len(weights)
	if n == 0 {
		return nil, fmt.Errorf("sampling: alias table needs at least one weight")
	}
	var total float64
	for i, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("sampling: negative weight %v at index %d", w, i)
		}
		total += w
	}
	if total == 0 {
		return nil, fmt.Errorf("sampling: all weights are zero")
	}

	t := &AliasTable{
		prob:  make([]float64, n),
		alias: make([]int, n),
		n:     n,
	}
	scaled := make([]float64, n)
	small := make([]int, 0, n)
	large := make([]int, 0, n)
	for i, w := range weights {
		scaled[i] = w * float64(n) / total
		if scaled[i] < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		t.prob[s] = scaled[s]
		t.alias[s] = l
		scaled[l] = scaled[l] + scaled[s] - 1
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range large {
		t.prob[i] = 1
		t.alias[i] = i
	}
	for _, i := range small {
		t.prob[i] = 1
		t.alias[i] = i
	}
	return t, nil
}

// Sample draws an index with probability proportional to its weight.
func (t *AliasTable) Sample(rng *RNG) int {
	i := rng.Intn(t.n)
	if rng.Float64() < t.prob[i] {
		return i
	}
	return t.alias[i]
}

// Len returns the number of outcomes.
func (t *AliasTable) Len() int { return t.n }

// CumulativeSampler samples an index proportional to integer weights using
// binary search over prefix sums. It is slower per draw than AliasTable
// (O(log n)) but exact for integer weights and simpler to audit; the
// estimator tests use it to cross-check the alias table.
type CumulativeSampler struct {
	prefix []int64
	total  int64
}

// NewCumulativeSampler builds a sampler over the given non-negative integer
// weights. It returns an error if the weights are empty or sum to zero.
func NewCumulativeSampler(weights []int64) (*CumulativeSampler, error) {
	if len(weights) == 0 {
		return nil, fmt.Errorf("sampling: cumulative sampler needs at least one weight")
	}
	c := &CumulativeSampler{prefix: make([]int64, len(weights))}
	var run int64
	for i, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("sampling: negative weight %d at index %d", w, i)
		}
		run += w
		c.prefix[i] = run
	}
	if run == 0 {
		return nil, fmt.Errorf("sampling: all weights are zero")
	}
	c.total = run
	return c, nil
}

// Sample draws an index with probability weight[i]/total.
func (c *CumulativeSampler) Sample(rng *RNG) int {
	target := rng.Int63n(c.total) + 1 // uniform in [1, total]
	lo, hi := 0, len(c.prefix)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if c.prefix[mid] >= target {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Total returns the sum of weights.
func (c *CumulativeSampler) Total() int64 { return c.total }
