package sampling

import "math"

// This file provides the reservoir primitives of the sharded pass engine.
// A sharded pass splits one stream pass into contiguous shards that are
// processed concurrently, so the usual "one RNG consumed in stream order"
// discipline breaks: the randomness a shard consumes must not depend on how
// the other shards are scheduled. The engine therefore uses
//
//   - MixSeed to derive an independent RNG stream per (pass, instance, shard)
//     key, so the draws inside a shard are a pure function of the seed and the
//     shard's data;
//   - Res1/ResK, skip-ahead reservoirs carrying their own keyed RNG, as the
//     per-shard accumulators;
//   - Res1Merger/ResKMerger, which combine per-shard reservoirs in ascending
//     shard order with one draw per (sub-reservoir, shard) from a keyed merge
//     RNG: a reservoir of weight n absorbed into an accumulator of weight N
//     replaces the kept sample with probability n/(N+n), which keeps the
//     merged sample uniform over the union.
//
// Because every draw is keyed by stable indices and merges happen in shard
// order, the merged samples are identical for any worker count — the
// determinism contract of the estimators.

// mix64 is the SplitMix64 finalizer, used to scatter seed material.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// MixSeed derives the seed of an auxiliary RNG stream from a base seed and a
// sequence of stream keys (pass id, instance index, shard index, ...). The
// same (seed, keys) always yields the same stream; distinct key tuples yield
// independent-looking streams.
func MixSeed(seed uint64, keys ...uint64) uint64 {
	h := mix64(seed + 0x9e3779b97f4a7c15)
	for _, k := range keys {
		h = mix64(h ^ mix64(k+0x9e3779b97f4a7c15))
	}
	return h
}

// Res1 is a size-1 uniform reservoir with skip-ahead acceptance and its own
// RNG stream: instead of one draw per offer, it draws the index of the next
// accepted item directly (given n items seen, the next acceptance T satisfies
// P(T > t) = n/t, i.e. T = ⌊n/u⌋+1 for uniform u), costing O(log n) draws over
// a stream of n offers. The first offer is accepted without consuming any
// randomness and the first skip is drawn lazily at the second offer, so the
// ubiquitous "shard saw exactly one neighbor" case costs zero draws. The zero
// value is unusable; call Init first.
type Res1 struct {
	N     int64 // items offered so far
	W     int   // current sample, valid when N > 0
	next  int64 // 1-based index of the next accepted offer; 0 = not yet drawn
	rng   RNG
	ready bool
}

// Init readies the reservoir with its keyed RNG stream.
func (r *Res1) Init(seed uint64) {
	*r = Res1{rng: RNG{state: seed}, ready: true}
}

// Ready reports whether Init has been called since the last zeroing.
func (r *Res1) Ready() bool { return r.ready }

// Offer presents the next item of the shard's sub-stream.
func (r *Res1) Offer(v int) {
	r.N++
	if r.N == 1 {
		r.W = v // first item: accepted with certainty, no draw
		return
	}
	if r.next == 0 {
		r.next = skipAhead(1, &r.rng)
	}
	if r.N < r.next {
		return
	}
	r.W = v
	r.next = skipAhead(r.N, &r.rng)
}

// skipAhead draws the index of the next accepted offer after an acceptance at
// index n: T = ⌊n/u⌋+1, so that P(T > t) = n/t.
func skipAhead(n int64, rng *RNG) int64 {
	t := float64(n)/rng.Float64Open() + 1
	if t >= math.MaxInt64/2 {
		return math.MaxInt64
	}
	return int64(t)
}

// Res1Merger accumulates per-shard Res1 reservoirs, absorbed in ascending
// shard order, into one uniform sample over all offers.
type Res1Merger struct {
	N   int64 // total items offered across absorbed shards
	W   int   // merged sample, valid when N > 0
	rng RNG
}

// Init readies the merger with its keyed RNG stream and an invalid sample.
func (m *Res1Merger) Init(seed uint64) {
	*m = Res1Merger{W: -1, rng: RNG{state: seed}}
}

// Absorb merges a shard reservoir into the accumulator: the shard's sample
// replaces the kept one with probability r.N/(m.N+r.N). An empty reservoir is
// a no-op, and the first non-empty one is adopted outright; neither consumes
// randomness (both rules depend only on the data, never on worker count).
func (m *Res1Merger) Absorb(r *Res1) {
	if r.N == 0 {
		return
	}
	if m.N == 0 {
		m.N = r.N
		m.W = r.W
		return
	}
	m.N += r.N
	if m.rng.Int63n(m.N) < r.N {
		m.W = r.W
	}
}

// Has reports whether any item has been absorbed.
func (m *Res1Merger) Has() bool { return m.N > 0 }

// ResK is a bank of k independent size-1 uniform reservoirs over the same
// sub-stream ("k uniform samples with replacement"), sharing one RNG stream.
// The next-acceptance indices of the k sub-reservoirs are kept in a binary
// min-heap, so an offer that accepts nowhere costs one comparison instead of
// k, and the total work over n offers is O(n + k·log n·log k) rather than
// O(n·k) — the difference between pass 5 of the estimator scaling with s and
// not.
//
// A bank stays in a compact "constant" representation while it has seen at
// most one item — just the item, no k-sized fill, no heap, no draws — because
// in a sharded pass the overwhelmingly common case is a shard that contains
// exactly one neighbor of a given light endpoint, and paying Θ(k) per such
// shard would make one worker slower than the unsharded code ever was. The
// k-sized state materializes on the second offer. The zero value is unusable;
// call Init first.
type ResK struct {
	N     int64
	first int     // the single seen item while N <= 1
	W     []int   // W[j]: sample of sub-reservoir j; materialized when N >= 2
	heap  []int64 // min-heap of next-acceptance indices; built with W
	sub   []int32 // sub[i]: which sub-reservoir heap[i] belongs to
	k     int
	rng   RNG
}

// Init readies the bank for k sub-reservoirs, reusing existing slices when
// their capacity allows.
func (r *ResK) Init(seed uint64, k int) {
	if cap(r.W) < k {
		r.W = make([]int, 0, k)
		r.heap = make([]int64, 0, k)
		r.sub = make([]int32, 0, k)
	}
	r.W = r.W[:0]
	r.heap = r.heap[:0]
	r.sub = r.sub[:0]
	r.N = 0
	r.k = k
	r.rng = RNG{state: seed}
}

// Ready reports whether Init has been called since the last Drop.
func (r *ResK) Ready() bool { return r.k != 0 }

// Drop returns the bank to the un-Init state while keeping slice capacity,
// so pooled banks can be reused without reallocating.
func (r *ResK) Drop() {
	r.N = 0
	r.k = 0
	r.W = r.W[:0]
	r.heap = r.heap[:0]
	r.sub = r.sub[:0]
}

// K returns the number of sub-reservoirs.
func (r *ResK) K() int { return r.k }

// resKPlainLimit is the sub-stream length up to which Offer uses one plain
// acceptance draw per sub-reservoir (Algorithm R). At small counts the
// acceptance rate is so high that skip-ahead plus heap maintenance costs more
// than it saves; past the limit the bank switches to the heap, whose accepts
// thin out as 1/N. The switch depends only on N, never on worker count.
const resKPlainLimit = 32

// Offer presents the next item to every sub-reservoir.
func (r *ResK) Offer(v int) {
	r.N++
	if r.N == 1 {
		r.first = v // accepted everywhere; representation stays constant
		return
	}
	if len(r.W) == 0 {
		// Second offer: materialize the bank; every sub-reservoir holds the
		// first item.
		r.W = r.W[:r.k]
		for j := range r.W {
			r.W[j] = r.first
		}
	}
	if len(r.heap) == 0 {
		if r.N <= resKPlainLimit {
			for j := range r.W {
				if r.rng.Int63n(r.N) == 0 {
					r.W[j] = v
				}
			}
			return
		}
		// The sub-stream turned out long: draw each sub-reservoir's next
		// acceptance past position N-1, in sub-reservoir order, then heapify
		// (the heapify consumes no randomness).
		r.heap = r.heap[:r.k]
		r.sub = r.sub[:r.k]
		for j := 0; j < r.k; j++ {
			r.heap[j] = skipAhead(r.N-1, &r.rng)
			r.sub[j] = int32(j)
		}
		for i := r.k/2 - 1; i >= 0; i-- {
			r.siftDown(i)
		}
	}
	for r.heap[0] <= r.N {
		r.W[r.sub[0]] = v
		r.heap[0] = skipAhead(r.N, &r.rng)
		r.siftDown(0)
	}
}

// siftDown restores the heap property from position i.
func (r *ResK) siftDown(i int) {
	n := len(r.heap)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		min := l
		if rr := l + 1; rr < n && r.heap[rr] < r.heap[l] {
			min = rr
		}
		if r.heap[i] <= r.heap[min] {
			return
		}
		r.heap[i], r.heap[min] = r.heap[min], r.heap[i]
		r.sub[i], r.sub[min] = r.sub[min], r.sub[i]
		i = min
	}
}

// ResKMerger accumulates per-shard ResK banks, absorbed in ascending shard
// order, into k uniform samples over all offers.
type ResKMerger struct {
	N   int64
	W   []int // merged samples; -1 until the first absorb
	rng RNG
}

// Init readies the merger for k sub-reservoirs.
func (m *ResKMerger) Init(seed uint64, k int) {
	m.N = 0
	m.rng = RNG{state: seed}
	if cap(m.W) < k {
		m.W = make([]int, k)
	}
	m.W = m.W[:k]
	for j := range m.W {
		m.W[j] = -1
	}
}

// Absorb merges a shard bank into the accumulator. Each sub-reservoir keeps
// the shard's sample with probability r.N/(total), decided independently —
// but instead of one draw per sub-reservoir, the replaced positions are
// enumerated by geometric skipping (iid Bernoulli successes are memoryless),
// so the expected cost is k·r.N/total draws, and absorbing the tail shards of
// a high-degree endpoint costs almost nothing. An empty bank is a no-op; the
// first non-empty one is adopted by swapping slices, consuming no randomness.
// All rules depend only on the data, never on the worker count.
func (m *ResKMerger) Absorb(r *ResK) {
	if r.N == 0 {
		return
	}
	if m.N == 0 {
		m.N = r.N
		if len(r.W) == 0 {
			for j := range m.W {
				m.W[j] = r.first
			}
			return
		}
		m.W, r.W = r.W, m.W[:0]
		return
	}
	m.N += r.N
	p := float64(r.N) / float64(m.N) // < 1: the accumulator was non-empty
	constant := len(r.W) == 0        // bank still in its one-item representation
	pick := func(j int) int {
		if constant {
			return r.first
		}
		return r.W[j]
	}
	// Geometric skipping only pays off when replacements are sparse (its
	// draw costs two logarithms); for high p or small banks a plain draw per
	// sub-reservoir is cheaper. Both branches depend only on (k, p), never
	// on worker count, so determinism is preserved.
	if p > 0.25 || len(m.W) < 16 {
		for j := range m.W {
			if m.rng.Int63n(m.N) < r.N {
				m.W[j] = pick(j)
			}
		}
		return
	}
	j := -1
	for {
		j += int(m.rng.Geometric(p))
		if j >= len(m.W) {
			return
		}
		m.W[j] = pick(j)
	}
}

// Has reports whether any item has been absorbed.
func (m *ResKMerger) Has() bool { return m.N > 0 }
