package sampling

import (
	"math"
	"testing"
)

func TestRNGDeterministic(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds collide %d/100 times", same)
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	r := NewRNG(7)
	s := r.Split()
	// The split stream should not track the parent.
	equal := 0
	for i := 0; i < 50; i++ {
		if r.Uint64() == s.Uint64() {
			equal++
		}
	}
	if equal > 1 {
		t.Fatalf("split stream mirrors parent %d/50 times", equal)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64MeanApproximatelyHalf(t *testing.T) {
	r := NewRNG(2)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean of uniforms %.4f, want ~0.5", mean)
	}
}

func TestIntnUniform(t *testing.T) {
	r := NewRNG(3)
	const buckets = 10
	const n = 100000
	counts := make([]int, buckets)
	for i := 0; i < n; i++ {
		counts[r.Intn(buckets)]++
	}
	for b, c := range counts {
		frac := float64(c) / n
		if math.Abs(frac-0.1) > 0.01 {
			t.Fatalf("bucket %d frequency %.4f, want ~0.1", b, frac)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestInt63nPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRNG(1).Int63n(-5)
}

func TestBernoulli(t *testing.T) {
	r := NewRNG(4)
	if r.Bernoulli(0) {
		t.Error("Bernoulli(0) returned true")
	}
	if !r.Bernoulli(1) {
		t.Error("Bernoulli(1) returned false")
	}
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) frequency %.4f", frac)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(5)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestShuffleIntsPreservesMultiset(t *testing.T) {
	r := NewRNG(6)
	s := []int{5, 5, 7, 1, 2, 3}
	sum := 0
	for _, v := range s {
		sum += v
	}
	r.ShuffleInts(s)
	sum2 := 0
	for _, v := range s {
		sum2 += v
	}
	if sum != sum2 || len(s) != 6 {
		t.Fatal("shuffle changed contents")
	}
}

func TestShuffleFuncSwaps(t *testing.T) {
	r := NewRNG(8)
	s := []string{"a", "b", "c", "d", "e"}
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	if len(s) != 5 {
		t.Fatal("length changed")
	}
}

func TestExpMean(t *testing.T) {
	r := NewRNG(9)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Exp()
	}
	mean := sum / n
	if math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean %.4f, want ~1", mean)
	}
}

func TestGeometricMean(t *testing.T) {
	r := NewRNG(10)
	p := 0.25
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		g := r.Geometric(p)
		if g < 1 {
			t.Fatalf("geometric sample %d < 1", g)
		}
		sum += float64(g)
	}
	mean := sum / n
	if math.Abs(mean-1/p) > 0.1 {
		t.Fatalf("geometric mean %.4f, want ~%.1f", mean, 1/p)
	}
	if NewRNG(1).Geometric(1) != 1 {
		t.Error("Geometric(1) should be 1")
	}
}

func TestGeometricPanicsOnBadP(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRNG(1).Geometric(0)
}
