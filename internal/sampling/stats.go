package sampling

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of the values (0 for an empty slice).
func Mean(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	var sum float64
	for _, v := range values {
		sum += v
	}
	return sum / float64(len(values))
}

// Variance returns the population variance of the values (0 for fewer than
// two values).
func Variance(values []float64) float64 {
	if len(values) < 2 {
		return 0
	}
	mu := Mean(values)
	var sum float64
	for _, v := range values {
		d := v - mu
		sum += d * d
	}
	return sum / float64(len(values))
}

// Median returns the median of the values (0 for an empty slice). The input
// is not modified.
func Median(values []float64) float64 {
	return Quantile(values, 0.5)
}

// Quantile returns the q-quantile (q in [0,1]) of the values using the
// nearest-rank method on a sorted copy. It returns 0 for an empty slice.
func Quantile(values []float64, q float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sorted := make([]float64, len(values))
	copy(sorted, values)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// MedianOfMeans partitions the values into the given number of groups,
// averages each group, and returns the median of the group means. This is
// the standard amplification ("median of the mean" in the paper, Section 4)
// turning a constant-variance estimator into a high-probability one.
// If groups <= 1 or there are fewer values than groups, it degrades to the
// plain mean.
func MedianOfMeans(values []float64, groups int) float64 {
	if len(values) == 0 {
		return 0
	}
	if groups <= 1 || len(values) < groups {
		return Mean(values)
	}
	per := len(values) / groups
	means := make([]float64, 0, groups)
	for g := 0; g < groups; g++ {
		start := g * per
		end := start + per
		if g == groups-1 {
			end = len(values)
		}
		means = append(means, Mean(values[start:end]))
	}
	return Median(means)
}

// RelativeError returns |estimate-truth|/truth. A zero truth with a nonzero
// estimate reports +Inf; zero/zero reports 0.
func RelativeError(estimate, truth float64) float64 {
	if truth == 0 {
		if estimate == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(estimate-truth) / math.Abs(truth)
}

// Summary holds descriptive statistics of a sample of estimates; experiment
// tables are built from these.
type Summary struct {
	Count  int
	Mean   float64
	Median float64
	Min    float64
	Max    float64
	StdDev float64
	P90    float64
}

// Summarize computes a Summary of the values.
func Summarize(values []float64) Summary {
	s := Summary{Count: len(values)}
	if len(values) == 0 {
		return s
	}
	s.Mean = Mean(values)
	s.Median = Median(values)
	s.StdDev = math.Sqrt(Variance(values))
	s.P90 = Quantile(values, 0.9)
	s.Min = values[0]
	s.Max = values[0]
	for _, v := range values {
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	return s
}

// String renders the summary compactly for logs.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g median=%.4g sd=%.4g min=%.4g max=%.4g p90=%.4g",
		s.Count, s.Mean, s.Median, s.StdDev, s.Min, s.Max, s.P90)
}
