package sampling

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMeanMedianVariance(t *testing.T) {
	if Mean(nil) != 0 || Median(nil) != 0 || Variance(nil) != 0 {
		t.Error("empty-slice statistics should be zero")
	}
	vals := []float64{1, 2, 3, 4, 5}
	if Mean(vals) != 3 {
		t.Errorf("Mean = %v", Mean(vals))
	}
	if Median(vals) != 3 {
		t.Errorf("Median = %v", Median(vals))
	}
	if !almostEqual(Variance(vals), 2, 1e-12) {
		t.Errorf("Variance = %v, want 2", Variance(vals))
	}
	if Variance([]float64{7}) != 0 {
		t.Error("variance of single value should be 0")
	}
}

func TestMedianEven(t *testing.T) {
	// Nearest-rank median of {1,2,3,4} is 2.
	if got := Median([]float64{4, 1, 3, 2}); got != 2 {
		t.Errorf("Median = %v, want 2", got)
	}
}

func TestQuantile(t *testing.T) {
	vals := []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	cases := []struct {
		q    float64
		want float64
	}{
		{0, 10}, {0.1, 10}, {0.5, 50}, {0.9, 90}, {1, 100}, {-0.5, 10}, {1.5, 100},
	}
	for _, c := range cases {
		if got := Quantile(vals, c.q); got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("Quantile of empty should be 0")
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	vals := []float64{3, 1, 2}
	Quantile(vals, 0.5)
	if vals[0] != 3 || vals[1] != 1 || vals[2] != 2 {
		t.Error("Quantile mutated its input")
	}
}

func TestMedianOfMeans(t *testing.T) {
	if MedianOfMeans(nil, 3) != 0 {
		t.Error("empty input should give 0")
	}
	vals := []float64{1, 1, 1, 100, 1, 1}
	// Plain mean is skewed by the outlier; median of 3 group means is robust.
	mom := MedianOfMeans(vals, 3)
	if mom > 10 {
		t.Errorf("MedianOfMeans = %v, expected robustness to the outlier", mom)
	}
	// groups <= 1 degrades to the mean.
	if MedianOfMeans(vals, 1) != Mean(vals) {
		t.Error("groups=1 should equal the mean")
	}
	// More groups than values degrades to the mean.
	if MedianOfMeans([]float64{2, 4}, 5) != 3 {
		t.Error("fewer values than groups should fall back to the mean")
	}
}

func TestMedianOfMeansUnbiasedOnConstant(t *testing.T) {
	vals := make([]float64, 90)
	for i := range vals {
		vals[i] = 42
	}
	for _, groups := range []int{1, 3, 9, 10} {
		if got := MedianOfMeans(vals, groups); got != 42 {
			t.Errorf("groups=%d: %v, want 42", groups, got)
		}
	}
}

func TestRelativeError(t *testing.T) {
	if RelativeError(110, 100) != 0.1 {
		t.Errorf("RelativeError(110,100) = %v", RelativeError(110, 100))
	}
	if RelativeError(90, 100) != 0.1 {
		t.Errorf("RelativeError(90,100) = %v", RelativeError(90, 100))
	}
	if RelativeError(0, 0) != 0 {
		t.Error("0/0 relative error should be 0")
	}
	if !math.IsInf(RelativeError(5, 0), 1) {
		t.Error("nonzero estimate of zero truth should be +Inf")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize(nil)
	if s.Count != 0 {
		t.Fatal("empty summary count")
	}
	s = Summarize([]float64{4, 2, 8, 6})
	if s.Count != 4 || s.Min != 2 || s.Max != 8 || s.Mean != 5 {
		t.Fatalf("summary %+v", s)
	}
	if s.String() == "" {
		t.Error("String should be non-empty")
	}
}

// Property: min <= median <= max and min <= mean <= max for any input.
func TestSummaryOrderingProperty(t *testing.T) {
	f := func(raw []float64) bool {
		vals := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e12 {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			return true
		}
		s := Summarize(vals)
		return s.Min <= s.Median && s.Median <= s.Max && s.Min <= s.Mean && s.Mean <= s.Max+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
