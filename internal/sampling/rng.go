// Package sampling provides the randomness and sampling primitives shared by
// every estimator in the repository: a splittable deterministic RNG, uniform
// and weighted reservoir sampling over one-pass streams, alias tables for
// in-memory weighted sampling, and the median-of-means aggregation used to
// boost constant-probability estimators to high probability.
package sampling

import "math"

// RNG is a small, fast, deterministic pseudo-random generator based on
// SplitMix64. It is not safe for concurrent use; estimators that need
// independent streams of randomness should call Split.
//
// Determinism matters here: experiments and tests seed every estimator
// explicitly so that results are reproducible run to run.
type RNG struct {
	state uint64
}

// NewRNG returns an RNG seeded with the given value. Distinct seeds give
// independent-looking streams.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Split returns a new RNG whose stream is independent of the receiver's
// future output. It is the supported way to hand sub-components their own
// randomness without sharing state.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0x9e3779b97f4a7c15)
}

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float64Open returns a uniform float64 in (0, 1), never exactly zero, which
// is convenient for logarithms in exponential sampling.
func (r *RNG) Float64Open() float64 {
	for {
		f := r.Float64()
		if f > 0 {
			return f
		}
	}
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sampling: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sampling: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Bernoulli returns true with probability p (clamped to [0,1]).
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Exp returns an exponentially distributed value with rate 1.
func (r *RNG) Exp() float64 {
	return -math.Log(r.Float64Open())
}

// Perm returns a uniformly random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.ShuffleInts(p)
	return p
}

// ShuffleInts shuffles the slice in place (Fisher–Yates).
func (r *RNG) ShuffleInts(s []int) {
	for i := len(s) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		s[i], s[j] = s[j], s[i]
	}
}

// Shuffle shuffles n elements using the provided swap function.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Geometric returns a geometrically distributed integer k >= 1 with success
// probability p, i.e. the index of the first success in independent
// Bernoulli(p) trials. It panics if p <= 0 or p > 1.
func (r *RNG) Geometric(p float64) int64 {
	if p <= 0 || p > 1 {
		panic("sampling: Geometric requires 0 < p <= 1")
	}
	if p == 1 {
		return 1
	}
	u := r.Float64Open()
	return int64(math.Ceil(math.Log(u) / math.Log(1-p)))
}
