package sampling

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAliasTableErrors(t *testing.T) {
	if _, err := NewAliasTable(nil); err == nil {
		t.Error("expected error for empty weights")
	}
	if _, err := NewAliasTable([]float64{1, -2}); err == nil {
		t.Error("expected error for negative weight")
	}
	if _, err := NewAliasTable([]float64{0, 0}); err == nil {
		t.Error("expected error for all-zero weights")
	}
}

func TestAliasTableDistribution(t *testing.T) {
	weights := []float64{1, 0, 3, 6}
	tab, err := NewAliasTable(weights)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 4 {
		t.Fatalf("Len = %d", tab.Len())
	}
	rng := NewRNG(11)
	const trials = 100000
	counts := make([]int, len(weights))
	for i := 0; i < trials; i++ {
		counts[tab.Sample(rng)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight outcome sampled %d times", counts[1])
	}
	total := 10.0
	for i, w := range weights {
		frac := float64(counts[i]) / trials
		want := w / total
		if math.Abs(frac-want) > 0.01 {
			t.Fatalf("outcome %d frequency %.4f, want ~%.4f", i, frac, want)
		}
	}
}

func TestAliasTableSingleOutcome(t *testing.T) {
	tab, err := NewAliasTable([]float64{5})
	if err != nil {
		t.Fatal(err)
	}
	rng := NewRNG(12)
	for i := 0; i < 100; i++ {
		if tab.Sample(rng) != 0 {
			t.Fatal("single outcome not always sampled")
		}
	}
}

func TestCumulativeSamplerErrors(t *testing.T) {
	if _, err := NewCumulativeSampler(nil); err == nil {
		t.Error("expected error for empty weights")
	}
	if _, err := NewCumulativeSampler([]int64{0, 0}); err == nil {
		t.Error("expected error for zero total")
	}
	if _, err := NewCumulativeSampler([]int64{3, -1}); err == nil {
		t.Error("expected error for negative weight")
	}
}

func TestCumulativeSamplerDistribution(t *testing.T) {
	weights := []int64{2, 0, 5, 3}
	cs, err := NewCumulativeSampler(weights)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Total() != 10 {
		t.Fatalf("Total = %d", cs.Total())
	}
	rng := NewRNG(13)
	const trials = 100000
	counts := make([]int, len(weights))
	for i := 0; i < trials; i++ {
		counts[cs.Sample(rng)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight outcome sampled %d times", counts[1])
	}
	for i, w := range weights {
		frac := float64(counts[i]) / trials
		want := float64(w) / 10
		if math.Abs(frac-want) > 0.01 {
			t.Fatalf("outcome %d frequency %.4f, want %.4f", i, frac, want)
		}
	}
}

// Property: alias table and cumulative sampler agree (in distribution) on the
// same weights; compare empirical frequencies loosely.
func TestAliasVsCumulativeAgreement(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 || len(raw) > 12 {
			return true
		}
		weightsF := make([]float64, len(raw))
		weightsI := make([]int64, len(raw))
		var total int64
		for i, r := range raw {
			w := int64(r%16) + 0
			weightsF[i] = float64(w)
			weightsI[i] = w
			total += w
		}
		if total == 0 {
			return true
		}
		at, err1 := NewAliasTable(weightsF)
		cs, err2 := NewCumulativeSampler(weightsI)
		if err1 != nil || err2 != nil {
			return false
		}
		rng1 := NewRNG(99)
		rng2 := NewRNG(77)
		const trials = 20000
		ca := make([]float64, len(raw))
		cc := make([]float64, len(raw))
		for i := 0; i < trials; i++ {
			ca[at.Sample(rng1)]++
			cc[cs.Sample(rng2)]++
		}
		for i := range ca {
			if math.Abs(ca[i]-cc[i])/trials > 0.03 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAliasTableSample(b *testing.B) {
	weights := make([]float64, 10000)
	rng := NewRNG(1)
	for i := range weights {
		weights[i] = rng.Float64() * 100
	}
	tab, err := NewAliasTable(weights)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.Sample(rng)
	}
}

func BenchmarkCumulativeSample(b *testing.B) {
	weights := make([]int64, 10000)
	rng := NewRNG(1)
	for i := range weights {
		weights[i] = rng.Int63n(100) + 1
	}
	cs, err := NewCumulativeSampler(weights)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cs.Sample(rng)
	}
}
