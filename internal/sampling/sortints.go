package sampling

import (
	"slices"

	"degentri/internal/radix"
)

// SortPositions sorts a slice of non-negative ints (stream positions drawn by
// the estimators' pass-1 samplers) ascending via the shared LSD radix sort —
// the positions are uniform in [0, m), so a comparison sort pays Θ(r log r)
// where counting passes pay Θ(r). The output is exactly sorted order either
// way, so the radix/comparison crossover never affects results.
func SortPositions(a []int) {
	for _, v := range a {
		if v < 0 {
			// Negative positions never occur; don't misorder them if they do
			// (uint64 keys would sort them after every valid position).
			slices.Sort(a)
			return
		}
	}
	radix.Sort(a, func(v int) uint64 { return uint64(v) })
}
