package sampling

import "slices"

// SortPositions sorts a slice of non-negative ints (stream positions drawn by
// the estimators' pass-1 samplers) ascending. For large slices it uses an LSD
// radix sort — the positions are uniform in [0, m), so a comparison sort pays
// Θ(r log r) where counting passes pay Θ(r) — and falls back to slices.Sort
// below the crossover. The output is exactly sorted order either way, so the
// choice never affects results.
func SortPositions(a []int) {
	const radixMin = 1024
	if len(a) < radixMin {
		slices.Sort(a)
		return
	}
	maxVal := 0
	for _, v := range a {
		if v < 0 {
			// Negative positions never occur; don't misorder them if they do.
			slices.Sort(a)
			return
		}
		if v > maxVal {
			maxVal = v
		}
	}
	buf := make([]int, len(a))
	src, dst := a, buf
	for shift := uint(0); maxVal>>shift > 0; shift += 8 {
		var counts [256]int
		for _, v := range src {
			counts[(v>>shift)&0xff]++
		}
		if counts[src[0]>>shift&0xff] == len(src) {
			continue // all keys share this byte; skip the pass
		}
		sum := 0
		for i := range counts {
			counts[i], sum = sum, sum+counts[i]
		}
		for _, v := range src {
			b := (v >> shift) & 0xff
			dst[counts[b]] = v
			counts[b]++
		}
		src, dst = dst, src
	}
	if &src[0] != &a[0] {
		copy(a, src)
	}
}
