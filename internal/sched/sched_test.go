package sched_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"degentri/internal/graph"
	"degentri/internal/passes"
	"degentri/internal/sched"
	"degentri/internal/stream"
)

// A scheduler client must satisfy the executor contract of the shared pass
// framework — that is the whole point of the package.
var _ passes.Executor = (*sched.Client)(nil)

func edgesN(n int) []graph.Edge {
	edges := make([]graph.Edge, n)
	for i := range edges {
		edges[i] = graph.Edge{U: i % 97, V: 97 + i%89}
	}
	return edges
}

// countingPass returns a pass that tallies the edges it sees (into a
// per-shard array merged in shard order, like a real pass body would).
func countingPass(total *int) (func(int, []graph.Edge) error, func(int) error) {
	var perShard [stream.NumShards]int
	process := func(shard int, batch []graph.Edge) error {
		perShard[shard] += len(batch)
		return nil
	}
	merge := func(shard int) error {
		*total += perShard[shard]
		perShard[shard] = 0
		return nil
	}
	return process, merge
}

// TestLockstepClientsFuse pins the scan economy: k clients each running p
// passes in lockstep cost exactly p physical scans, not k·p.
func TestLockstepClientsFuse(t *testing.T) {
	edges := edgesN(40000)
	m := len(edges)
	const clients, passesEach = 5, 7

	s := sched.New(stream.FromEdges(edges), m, 4)
	cs := make([]*sched.Client, clients)
	for i := range cs {
		cs[i] = s.NewClient()
	}
	totals := make([]int, clients*passesEach)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer cs[i].Done()
			for p := 0; p < passesEach; p++ {
				process, merge := countingPass(&totals[i*passesEach+p])
				if err := cs[i].RunPass(process, merge); err != nil {
					t.Errorf("client %d pass %d: %v", i, p, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()

	for i, tot := range totals {
		if tot != m {
			t.Errorf("pass %d saw %d edges, want %d", i, tot, m)
		}
	}
	if got := s.Scans(); got != passesEach {
		t.Errorf("%d clients × %d passes cost %d scans, want %d (fused)", clients, passesEach, got, passesEach)
	}
	for i := range cs {
		if cs[i].Passes() != passesEach {
			t.Errorf("client %d reports %d logical passes, want %d", i, cs[i].Passes(), passesEach)
		}
	}
}

// TestUnevenClientsDrain checks clients with different pass counts: early
// finishers must not strand the rest, and every pass still sees the whole
// stream.
func TestUnevenClientsDrain(t *testing.T) {
	edges := edgesN(20000)
	m := len(edges)
	counts := []int{1, 3, 9}

	s := sched.New(stream.FromEdges(edges), m, 2)
	cs := make([]*sched.Client, len(counts))
	for i := range cs {
		cs[i] = s.NewClient()
	}
	var wg sync.WaitGroup
	for i, n := range counts {
		wg.Add(1)
		go func(i, n int) {
			defer wg.Done()
			defer cs[i].Done()
			for p := 0; p < n; p++ {
				total := 0
				process, merge := countingPass(&total)
				if err := cs[i].RunPass(process, merge); err != nil {
					t.Errorf("client %d pass %d: %v", i, p, err)
					return
				}
				if total != m {
					t.Errorf("client %d pass %d saw %d edges, want %d", i, p, total, m)
				}
			}
		}(i, n)
	}
	wg.Wait()
	// Scans must cover the longest client but never exceed the total passes.
	maxPasses, sumPasses := 0, 0
	for _, n := range counts {
		sumPasses += n
		if n > maxPasses {
			maxPasses = n
		}
	}
	if got := s.Scans(); got < maxPasses || got > sumPasses {
		t.Errorf("scans = %d, want within [%d, %d]", got, maxPasses, sumPasses)
	}
	// In lockstep registration the schedule is exactly max(counts): clients
	// drop out as they finish and the rest keep fusing.
	if got := s.Scans(); got != maxPasses {
		t.Errorf("scans = %d, want %d (drained clients must not add scans)", got, maxPasses)
	}
}

// TestFusedEqualsDirect runs a real randomized pass (neighbor sampling) both
// ways: fused clients on one scheduler vs. private Direct executors. The
// merged samples must be bit-identical — fusion may not change realized
// randomness.
func TestFusedEqualsDirect(t *testing.T) {
	edges := edgesN(30000)
	m := len(edges)
	verts := []int{0, 5, 50, 96}
	const seed = 314159

	direct := func(passKey, mergeKey uint64) []int {
		groups := graph.NewVertexGroups(append([]int(nil), verts...))
		merged, err := passes.SampleNeighbors(
			passes.NewDirect(stream.FromEdges(edges), m, 4), groups, len(verts), seed, passKey, mergeKey)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]int, len(verts))
		for i := range merged {
			out[i] = merged[i].W
		}
		return out
	}
	want1, want2 := direct(11, 12), direct(21, 22)

	s := sched.New(stream.FromEdges(edges), m, 4)
	c1, c2 := s.NewClient(), s.NewClient()
	got := make([][]int, 2)
	var wg sync.WaitGroup
	run := func(slot int, c *sched.Client, passKey, mergeKey uint64) {
		defer wg.Done()
		defer c.Done()
		groups := graph.NewVertexGroups(append([]int(nil), verts...))
		merged, err := passes.SampleNeighbors(c, groups, len(verts), seed, passKey, mergeKey)
		if err != nil {
			t.Errorf("fused client %d: %v", slot, err)
			return
		}
		out := make([]int, len(verts))
		for i := range merged {
			out[i] = merged[i].W
		}
		got[slot] = out
	}
	wg.Add(2)
	go run(0, c1, 11, 12)
	go run(1, c2, 21, 22)
	wg.Wait()

	if s.Scans() != 1 {
		t.Errorf("two fused sampling passes cost %d scans, want 1", s.Scans())
	}
	for i := range verts {
		if got[0][i] != want1[i] || got[1][i] != want2[i] {
			t.Errorf("vertex slot %d: fused samples (%d, %d) != direct (%d, %d)",
				i, got[0][i], got[1][i], want1[i], want2[i])
		}
	}
}

// TestRequestErrorIsolation checks that a request whose own merge fails gets
// its error while an innocent fused partner completes normally.
func TestRequestErrorIsolation(t *testing.T) {
	edges := edgesN(9000)
	m := len(edges)
	s := sched.New(stream.FromEdges(edges), m, 1)
	cGood, cBad := s.NewClient(), s.NewClient()

	wantErr := errors.New("merge exploded")
	var wg sync.WaitGroup
	var goodTotal int
	var goodErr, badErr error
	wg.Add(2)
	go func() {
		defer wg.Done()
		defer cGood.Done()
		process, merge := countingPass(&goodTotal)
		goodErr = cGood.RunPass(process, merge)
	}()
	go func() {
		defer wg.Done()
		defer cBad.Done()
		badErr = cBad.RunPass(
			func(int, []graph.Edge) error { return nil },
			func(shard int) error {
				if shard == 0 {
					return wantErr
				}
				return nil
			})
	}()
	wg.Wait()

	if goodErr != nil || goodTotal != m {
		t.Errorf("innocent client: err=%v total=%d (want nil, %d)", goodErr, goodTotal, m)
	}
	if !errors.Is(badErr, wantErr) {
		t.Errorf("failing client got %v, want %v", badErr, wantErr)
	}
}

// TestStreamErrorFailsEveryone checks that an engine-level failure (broken
// stream) reaches every fused request.
func TestStreamErrorFailsEveryone(t *testing.T) {
	s := sched.New(stream.OpenFile("/definitely/not/here"), 100, 1)
	c1, c2 := s.NewClient(), s.NewClient()
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for i, c := range []*sched.Client{c1, c2} {
		wg.Add(1)
		go func(i int, c *sched.Client) {
			defer wg.Done()
			defer c.Done()
			errs[i] = c.RunPass(
				func(int, []graph.Edge) error { return nil },
				func(int) error { return nil })
		}(i, c)
	}
	wg.Wait()
	for i, err := range errs {
		if err == nil {
			t.Errorf("client %d: expected a stream error", i)
		}
	}
}

// TestParkReleasesBarrier checks that a parked client does not hold back its
// peers' waves and can resume passes afterwards.
func TestParkReleasesBarrier(t *testing.T) {
	edges := edgesN(9000)
	m := len(edges)
	s := sched.New(stream.FromEdges(edges), m, 1)
	worker := s.NewClient()
	idler := s.NewClient()

	done := make(chan error, 1)
	go func() {
		defer worker.Done()
		total := 0
		process, merge := countingPass(&total)
		err := worker.RunPass(process, merge)
		if err == nil && total != m {
			err = fmt.Errorf("saw %d edges, want %d", total, m)
		}
		done <- err
	}()
	// Without the park, the worker's pass would wait forever for the idler.
	idler.Park()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// A parked client can come back and run passes of its own.
	total := 0
	process, merge := countingPass(&total)
	if err := idler.RunPass(process, merge); err != nil {
		t.Fatal(err)
	}
	if total != m {
		t.Fatalf("resumed client saw %d edges, want %d", total, m)
	}
	idler.Done()
	if s.Scans() != 2 {
		t.Fatalf("scans = %d, want 2", s.Scans())
	}
}

// TestGroupMeterPeak checks the concurrent space accounting: two meters teed
// into the scheduler's group meter overlapping in time peak at their sum.
func TestGroupMeterPeak(t *testing.T) {
	s := sched.New(stream.FromEdges(edgesN(100)), 100, 1)
	m1, m2 := stream.NewSpaceMeter(), stream.NewSpaceMeter()
	m1.Tee(s.Meter())
	m2.Tee(s.Meter())
	m1.Charge(700)
	m2.Charge(500)
	m1.Release(700)
	m2.Release(500)
	if peak := s.Meter().Peak(); peak != 1200 {
		t.Fatalf("group peak = %d, want 1200 (concurrent charges add)", peak)
	}
	if cur := s.Meter().Current(); cur != 0 {
		t.Fatalf("group current = %d, want 0", cur)
	}
}
