package sched_test

import (
	"context"
	"errors"
	"sync"
	"testing"

	"degentri/internal/faultio"
	"degentri/internal/graph"
	"degentri/internal/passes"
	"degentri/internal/sched"
	"degentri/internal/stream"
)

// checksumPass returns a pass whose merged result depends on the exact
// per-shard content AND the merge order: any duplicated, lost, or reordered
// shard changes the hash. The reference value comes from running the same
// pass unfused over the clean stream.
func checksumPass(out *uint64) (func(int, []graph.Edge) error, func(int) error) {
	var perShard [stream.NumShards]uint64
	process := func(shard int, batch []graph.Edge) error {
		for _, e := range batch {
			perShard[shard] += uint64(e.U)*3 + uint64(e.V)
		}
		return nil
	}
	merge := func(shard int) error {
		*out = *out*31 + perShard[shard]
		perShard[shard] = 0
		return nil
	}
	return process, merge
}

func cleanChecksum(t *testing.T, edges []graph.Edge, passCount int) []uint64 {
	t.Helper()
	x := passes.NewDirect(stream.FromEdges(edges), len(edges), 4)
	want := make([]uint64, passCount)
	for p := 0; p < passCount; p++ {
		process, merge := checksumPass(&want[p])
		if err := x.RunPass(process, merge); err != nil {
			t.Fatalf("reference pass %d: %v", p, err)
		}
	}
	return want
}

// TestFusedClientsHealTransientFaults pins the tentpole acceptance property
// at the scheduler layer: a seed-keyed schedule of transient faults (mid-read
// EIO and failing Resets), healed by bounded retry, leaves every fused
// client's result bit-identical to an undisturbed unfused run — the faults
// show up only in Retries().
func TestFusedClientsHealTransientFaults(t *testing.T) {
	edges := make([]graph.Edge, 60000)
	for i := range edges {
		edges[i] = graph.Edge{U: i % 211, V: 211 + i%197}
	}
	m := len(edges)
	const clients, passesEach = 3, 4
	want := cleanChecksum(t, edges, passesEach)

	// MaxFaults=2 < the policy's 3 attempts, so no shard can exhaust its
	// retry budget even if both faults land on it back to back.
	plan := faultio.Plan{Seed: 42, Every: 2, MaxFaults: 2,
		Kinds: []faultio.Kind{faultio.KindEIO, faultio.KindFailReset}}
	faulty := faultio.New(stream.FromEdges(edges), plan)
	s := sched.NewCtx(context.Background(), faulty, m, 4, stream.DefaultRetryPolicy())

	cs := make([]*sched.Client, clients)
	for i := range cs {
		cs[i] = s.NewClient()
	}
	got := make([]uint64, clients*passesEach)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer cs[i].Done()
			for p := 0; p < passesEach; p++ {
				process, merge := checksumPass(&got[i*passesEach+p])
				if err := cs[i].RunPass(process, merge); err != nil {
					t.Errorf("client %d pass %d: %v", i, p, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()

	for i := 0; i < clients; i++ {
		for p := 0; p < passesEach; p++ {
			if got[i*passesEach+p] != want[p] {
				t.Errorf("client %d pass %d checksum %#x, want %#x (fault healing changed a result)",
					i, p, got[i*passesEach+p], want[p])
			}
		}
	}
	if faulty.Faults() == 0 {
		t.Fatal("the plan injected nothing; the test exercised no fault path")
	}
	if s.Retries() == 0 {
		t.Fatal("faults were injected but Retries() is zero")
	}
}

// TestFusedClientCtxCancelIsolated pins per-client cancellation: one client
// cancelling mid-wave is failed with its context's cause while every other
// client of the same wave completes, bit-identical to an unfused run.
func TestFusedClientCtxCancelIsolated(t *testing.T) {
	edges := make([]graph.Edge, 50000)
	for i := range edges {
		edges[i] = graph.Edge{U: i % 149, V: 149 + i%139}
	}
	m := len(edges)
	want := cleanChecksum(t, edges, 1)

	s := sched.New(stream.FromEdges(edges), m, 4)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	victim := s.NewClientCtx(ctx)
	bystander := s.NewClient()

	var wg sync.WaitGroup
	var victimErr, victimRetryErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer victim.Done()
		// The victim cancels its own context from inside the wave: the
		// scheduler must drop its request at the next shard boundary.
		process := func(shard int, batch []graph.Edge) error {
			cancel()
			return nil
		}
		merge := func(shard int) error { return nil }
		victimErr = victim.RunPass(process, merge)
		// Still cancelled: a further pass fast-fails without entering the
		// barrier.
		victimRetryErr = victim.RunPass(func(int, []graph.Edge) error { return nil }, func(int) error { return nil })
	}()

	var got uint64
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer bystander.Done()
		process, merge := checksumPass(&got)
		if err := bystander.RunPass(process, merge); err != nil {
			t.Errorf("bystander pass: %v", err)
		}
	}()
	wg.Wait()

	if victimErr == nil {
		t.Fatal("cancelled client's pass returned nil")
	}
	if !errors.Is(victimErr, context.Canceled) {
		t.Fatalf("cancelled client's error = %v, want wrapped context.Canceled", victimErr)
	}
	if got != want[0] {
		t.Fatalf("bystander checksum %#x, want %#x (peer cancellation changed its result)", got, want[0])
	}
	if !errors.Is(victimRetryErr, context.Canceled) {
		t.Fatalf("post-cancel pass error = %v, want wrapped context.Canceled", victimRetryErr)
	}

	// The scheduler keeps serving new clients after a client cancelled.
	var again uint64
	process, merge := checksumPass(&again)
	fresh := s.NewClient()
	defer fresh.Done()
	if err := fresh.RunPass(process, merge); err != nil {
		t.Fatalf("scheduler unusable after a client cancelled: %v", err)
	}
	if again != want[0] {
		t.Fatalf("post-cancel checksum %#x, want %#x", again, want[0])
	}
}

// TestTruncationFailsWaveCleanly pins the non-transient failure path: a
// silent mid-scan truncation is detected by the engine's edge accounting,
// every live client of the wave gets an error wrapping stream.ErrTruncated
// (nobody hangs), and the scheduler serves later waves normally once the
// fault schedule is spent.
func TestTruncationFailsWaveCleanly(t *testing.T) {
	edges := make([]graph.Edge, 30000)
	for i := range edges {
		edges[i] = graph.Edge{U: i % 101, V: 101 + i%97}
	}
	m := len(edges)
	want := cleanChecksum(t, edges, 1)

	plan := faultio.Plan{Seed: 13, Every: 1, MaxFaults: 1, Kinds: []faultio.Kind{faultio.KindTruncate}}
	faulty := faultio.New(stream.FromEdges(edges), plan)
	s := sched.NewCtx(context.Background(), faulty, m, 4, stream.DefaultRetryPolicy())

	const clients = 2
	cs := make([]*sched.Client, clients)
	for i := range cs {
		cs[i] = s.NewClient()
	}
	firstErrs := make([]error, clients)
	sums := make([]uint64, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer cs[i].Done()
			process, merge := checksumPass(&sums[i])
			firstErrs[i] = cs[i].RunPass(process, merge)
			if firstErrs[i] == nil {
				return
			}
			// Second pass: the single-shot truncation is spent, the wave
			// completes, and the result matches the clean reference.
			sums[i] = 0
			process, merge = checksumPass(&sums[i])
			if err := cs[i].RunPass(process, merge); err != nil {
				t.Errorf("client %d recovery pass: %v", i, err)
			}
		}(i)
	}
	wg.Wait()

	for i, err := range firstErrs {
		if err == nil {
			t.Fatalf("client %d did not see the truncation error", i)
		}
		if !errors.Is(err, stream.ErrTruncated) {
			t.Fatalf("client %d error = %v, want wrapped stream.ErrTruncated", i, err)
		}
		if sums[i] != want[0] {
			t.Errorf("client %d recovery checksum %#x, want %#x", i, sums[i], want[0])
		}
	}
}
