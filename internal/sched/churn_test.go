package sched_test

import (
	"context"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"degentri/internal/sched"
	"degentri/internal/stream"
)

// TestClientChurnDuringLiveWaves drives the scheduler the way a long-lived
// daemon does: clients register, run passes, park, abandon (per-client
// context cancellation), and finish at uncorrelated times, so registration
// and cancellation land *while waves are in flight* rather than at the tidy
// group boundaries the estimator entry points produce. The properties pinned:
//
//   - no client is ever stranded: every surviving pass completes and sees
//     exactly m edges, bit-exact, no matter what its fused peers did;
//   - an abandoned client fails cleanly (its own passes error, nobody
//     else's do) and its Done never wedges the barrier;
//   - the scheduler quiesces: Live() drains to zero and no wave goroutine
//     outlives the churn (goroutine census);
//   - the scheduler stays usable afterwards — a fresh client runs to
//     completion on the same instance.
//
// The test is deliberately time-jittered (seeded, but sleeps interleave with
// the wave machinery differently on every run) and relies on the race
// detector in CI to catch unsynchronized state; correctness assertions never
// depend on the interleaving.
func TestClientChurnDuringLiveWaves(t *testing.T) {
	edges := edgesN(30000)
	m := len(edges)
	s := sched.New(stream.FromEdges(edges), m, 4)

	baseline := runtime.NumGoroutine()

	const nClients = 48
	var wg sync.WaitGroup
	var mu sync.Mutex
	completed := 0 // passes that returned nil and delivered exactly m edges

	for i := 0; i < nClients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + i)))
			// Stagger registration so it lands mid-wave for most clients.
			time.Sleep(time.Duration(rng.Intn(2000)) * time.Microsecond)

			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			c := s.NewClientCtx(ctx)
			defer c.Done()

			fate := i % 4
			if fate == 1 {
				// Abandoner: the cancel fires from another goroutine at an
				// arbitrary point — before, during, or after a wave.
				delay := time.Duration(rng.Intn(3000)) * time.Microsecond
				go func() {
					time.Sleep(delay)
					cancel()
				}()
			}
			nPasses := 1 + rng.Intn(6)
			for p := 0; p < nPasses; p++ {
				if fate == 3 && p == nPasses/2 {
					// Parker: step out of the barrier mid-sequence (what a
					// request does while it hands control to a sub-search),
					// letting peers' waves proceed without it.
					c.Park()
					time.Sleep(time.Duration(rng.Intn(1500)) * time.Microsecond)
				}
				total := 0
				process, merge := countingPass(&total)
				err := c.RunPass(process, merge)
				if fate == 1 {
					if err != nil {
						return // abandoned, as intended
					}
				} else if err != nil {
					t.Errorf("client %d (fate %d) pass %d: %v", i, fate, p, err)
					return
				}
				if total != m {
					t.Errorf("client %d pass %d saw %d edges, want %d", i, p, total, m)
					return
				}
				mu.Lock()
				completed++
				mu.Unlock()
				if fate == 2 && p >= nPasses/2 {
					return // early finisher: Done mid-group via the defer
				}
			}
		}(i)
	}

	quiesced := make(chan struct{})
	go func() { wg.Wait(); close(quiesced) }()
	select {
	case <-quiesced:
	case <-time.After(60 * time.Second):
		t.Fatal("churn did not quiesce: a client is stranded in RunPass")
	}

	if live := s.Live(); live != 0 {
		t.Fatalf("Live() = %d after every client finished, want 0", live)
	}
	if completed == 0 {
		t.Fatal("no pass completed; the test exercised nothing")
	}
	if s.Carried() < completed {
		t.Fatalf("Carried() = %d < %d completed passes", s.Carried(), completed)
	}
	if s.Scans() > s.Carried() {
		t.Fatalf("Scans() = %d > Carried() = %d: a wave carried no request", s.Scans(), s.Carried())
	}

	// The scheduler survived the churn: a fresh client still runs clean.
	c := s.NewClient()
	total := 0
	process, merge := countingPass(&total)
	if err := c.RunPass(process, merge); err != nil {
		t.Fatalf("post-churn pass: %v", err)
	}
	c.Done()
	if total != m {
		t.Fatalf("post-churn pass saw %d edges, want %d", total, m)
	}

	// No parked goroutine outlives the churn (wave goroutines exit once
	// delivered; give epilogues a moment).
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d now vs %d at baseline", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
