// Package sched is the pass-fusion scan scheduler: one physical scan of the
// stream serves every logical pass that is pending at the moment the scan
// starts. Bera–Seshadhri counts passes as a first-class cost, and on
// file-backed streams wall-clock is dominated by physical scans — yet
// logically-independent work (estimator instances of one geometric-search
// step, independent trials of an experiment, degeneracy-peel rounds running
// next to another client's passes) used to scan the stream once each.
//
// # Model
//
// A Scheduler owns one stream of exactly m edges. Work registers as Clients;
// each Client submits logical passes through the passes.Executor interface
// (RunPass blocks until the pass has been executed). Data dependencies are
// expressed by program order: a client submits pass k+1 only after pass k
// returned, so any two passes pending at once are — by construction —
// dependency-free and safe to fuse. The scheduler launches a physical scan
// ("wave") as soon as every live client is blocked in RunPass, executing all
// pending requests against the batches of a single stream.ShardedForEachBatch
// pass: per batch, each fused request's process runs in submission order;
// per shard, each request's merge runs in ascending shard order, exactly as
// if the request had scanned alone.
//
// # Why fusion cannot change results
//
// The repository's (seed, passKey, mergeKey) contract (internal/passes) keys
// every random draw inside a pass by stable indices — seed, pass key,
// instance, shard — never by scan identity or arrival time. A fused request
// therefore sees the same per-shard edge sequence and draws the same values
// as it would on a private scan: results are bit-identical, which the
// fused-vs-unfused equivalence suites pin across worker counts and backends.
//
// # Accounting
//
// Scans() counts physical scans (waves); each Client counts its own logical
// passes — the paper's metric — via Passes(). Meter() is the group space
// meter fused runs tee their private SpaceMeters into, so the reported space
// is the peak of *concurrently* retained words, not a sequential max.
package sched

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"degentri/internal/graph"
	"degentri/internal/stream"
)

// request is one submitted logical pass waiting for (or riding) a wave.
type request struct {
	ctx     context.Context // the submitting client's context
	process func(shard int, batch []graph.Edge) error
	merge   func(shard int) error

	// mu guards err: a request's process may fail from any shard worker.
	// Once failed, the request is skipped for the rest of the wave while the
	// other fused requests continue.
	mu   sync.Mutex
	err  error
	done chan error
}

func (r *request) fail(err error) {
	r.mu.Lock()
	if r.err == nil {
		r.err = err
	}
	r.mu.Unlock()
}

func (r *request) failed() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err != nil
}

// Scheduler fuses logical passes over one shared stream. Create one with New,
// register Clients, and let each client run its passes; the zero value is not
// usable. A Scheduler must own the stream exclusively: nothing else may Reset
// or read it while any client is live.
type Scheduler struct {
	src     stream.Stream
	m       int
	workers int
	ctx     context.Context    // cancels every wave; usually the request's root
	retry   stream.RetryPolicy // transient-I/O healing of the physical scans

	mu      sync.Mutex
	active  int        // registered clients that are neither parked nor done
	live    int        // registered clients that have not called Done
	pending []*request // submitted, not yet carried by a wave
	running bool       // a wave is executing
	scans   int
	carried int // cumulative requests served across all waves
	retries int
	meter   *stream.SharedMeter
}

// New returns a scheduler over a stream of exactly m edges. workers bounds
// the shard workers of each fused scan; <= 0 selects GOMAXPROCS, matching
// the repository-wide convention (passes.NewDirect, Config.Workers). The
// scheduler is uncancellable and does not retry; NewCtx is the
// fault-tolerant constructor.
func New(src stream.Stream, m, workers int) *Scheduler {
	return NewCtx(context.Background(), src, m, workers, stream.RetryPolicy{})
}

// NewCtx returns a scheduler whose waves abort when ctx is cancelled (failing
// every fused request of the running wave — the scheduler's context is the
// lifetime of the whole group; per-client cancellation goes through
// NewClientCtx instead) and heal transient I/O errors under the given retry
// policy.
func NewCtx(ctx context.Context, src stream.Stream, m, workers int, retry stream.RetryPolicy) *Scheduler {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	return &Scheduler{src: src, m: m, workers: workers, ctx: ctx, retry: retry, meter: stream.NewSharedMeter()}
}

// M returns the stream length the scheduler's scans run over.
func (s *Scheduler) M() int { return s.m }

// Workers returns the shard-worker bound of each fused scan.
func (s *Scheduler) Workers() int { return s.workers }

// Scans returns how many physical scans the scheduler has performed.
func (s *Scheduler) Scans() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.scans
}

// Carried returns the cumulative number of fused requests the scheduler's
// waves have served: Carried()/Scans() is the average fused width, the
// coalescing ratio a long-lived service reports — N clients over one hot
// stream should push it well above 1.
func (s *Scheduler) Carried() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.carried
}

// Live returns how many registered clients have not yet called Done. A
// scheduler whose owner has quiesced must report zero: a positive value
// after every request finished means a leaked client, which would hold back
// every future wave.
func (s *Scheduler) Live() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.live
}

// Retries returns how many transient-I/O recoveries the scheduler's physical
// scans have performed. Healed scans are bit-identical to undisturbed ones,
// so this is resource accounting only.
func (s *Scheduler) Retries() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.retries
}

// Meter returns the group space meter of this scheduler. Fused estimator
// runs tee their private meters into it (stream.SpaceMeter.Tee), so its peak
// is the words retained simultaneously across all fused runs.
func (s *Scheduler) Meter() *stream.SharedMeter { return s.meter }

// Client is one logical stream of passes. It implements passes.Executor
// (structurally — see the compile-time assertion in the tests), so estimator
// entry points that accept an executor run fused without knowing it.
//
// A Client is used by one goroutine at a time. Every registered client MUST
// eventually call Done (or Park between submissions): a client that is
// neither blocked in RunPass nor parked holds back every wave.
type Client struct {
	s      *Scheduler
	ctx    context.Context
	passes int
	parked bool
	done   bool
}

// NewClient registers a new client. The client is born live: waves wait for
// it until it submits a pass, parks, or finishes. Registering all clients of
// a group before any of them starts submitting is what guarantees their
// passes fuse from the first wave. The client inherits the scheduler's
// context; NewClientCtx attaches a narrower per-request one.
func (s *Scheduler) NewClient() *Client {
	return s.NewClientCtx(s.ctx)
}

// NewClientCtx registers a client with its own context — the per-request
// cancellation scope of a fused group. Cancelling it fails only this client's
// pending and future passes (the wave drops the request and carries on, the
// same isolation as a process error); the other fused clients complete
// bit-identically to their unfused runs.
func (s *Scheduler) NewClientCtx(ctx context.Context) *Client {
	if ctx == nil {
		ctx = s.ctx
	}
	s.mu.Lock()
	s.active++
	s.live++
	s.mu.Unlock()
	return &Client{s: s, ctx: ctx}
}

// M implements passes.Executor.
func (c *Client) M() int { return c.s.m }

// Workers implements passes.Executor.
func (c *Client) Workers() int { return c.s.workers }

// Passes implements passes.Executor: the logical passes this client ran.
func (c *Client) Passes() int { return c.passes }

// Context implements passes.Executor: the client's cancellation scope.
func (c *Client) Context() context.Context { return c.ctx }

// Retries implements passes.Executor. Physical scans are shared, so a
// recovery on a fused scan is visible to every client riding it; the value is
// the scheduler-wide count.
func (c *Client) Retries() int { return c.s.Retries() }

// Scheduler returns the scheduler this client belongs to.
func (c *Client) Scheduler() *Scheduler { return c.s }

// RunPass implements passes.Executor: it submits the pass and blocks until a
// wave has carried it. The pass observes the engine contract exactly as if
// it had the scan to itself. A client whose context is already cancelled
// fails fast without joining a wave (the other clients' barrier is
// unaffected — this client still counts live until Park/Done).
func (c *Client) RunPass(process func(shard int, batch []graph.Edge) error, merge func(shard int) error) error {
	if c.done {
		return fmt.Errorf("sched: RunPass on a finished client")
	}
	if err := c.ctx.Err(); err != nil {
		return fmt.Errorf("sched: pass not started: %w", context.Cause(c.ctx))
	}
	c.passes++
	req := &request{ctx: c.ctx, process: process, merge: merge, done: make(chan error, 1)}
	s := c.s
	s.mu.Lock()
	// The submitting client is blocked from here on: it no longer counts
	// against the wave barrier. (A parked client was already out of the
	// count; the wave that serves this request re-adds it before signaling.)
	if c.parked {
		c.parked = false
	} else {
		s.active--
	}
	s.pending = append(s.pending, req)
	s.maybeLaunchLocked()
	s.mu.Unlock()
	return <-req.done
}

// Park withdraws the client from the wave barrier until its next RunPass.
// Use it when a client hands control to other clients of the same scheduler
// (for example a trial that delegates to the fused geometric search) and
// would otherwise block their waves.
func (c *Client) Park() {
	if c.done || c.parked {
		return
	}
	c.parked = true
	s := c.s
	s.mu.Lock()
	s.active--
	s.maybeLaunchLocked()
	s.mu.Unlock()
}

// Done unregisters the client. Idempotent.
func (c *Client) Done() {
	if c.done {
		return
	}
	c.done = true
	s := c.s
	s.mu.Lock()
	if !c.parked {
		s.active--
	}
	c.parked = false
	s.live--
	s.maybeLaunchLocked()
	s.mu.Unlock()
}

// maybeLaunchLocked fires a wave when no live client is still computing:
// every pass that can be pending is pending, so the wave carries the maximal
// dependency-free set. Callers hold s.mu.
func (s *Scheduler) maybeLaunchLocked() {
	if s.running || len(s.pending) == 0 || s.active > 0 {
		return
	}
	batch := s.pending
	s.pending = nil
	s.running = true
	s.scans++
	s.carried += len(batch)
	go s.wave(batch)
}

// wave executes one fused physical scan and delivers results. Served clients
// rejoin the barrier count *before* any of them is signaled, so a fast client
// cannot slip a solo wave in while its fusion partners are still waking up —
// this is what keeps lockstep groups fused wave after wave. The next wave (for
// requests that accumulated from other clients while this one ran) launches
// from the next RunPass/Park/Done call once the barrier drains again.
func (s *Scheduler) wave(batch []*request) {
	scanErr := s.scan(batch)
	s.mu.Lock()
	// Every request belongs to a distinct client (a client has at most one
	// outstanding RunPass), and each of them is about to resume computing.
	s.active += len(batch)
	s.running = false
	s.mu.Unlock()
	for _, r := range batch {
		r.mu.Lock()
		err := r.err
		r.mu.Unlock()
		if err == nil {
			err = scanErr
		}
		r.done <- err
	}
}

// scan runs one physical pass fanning every batch to all fused requests (in
// submission order) and every shard merge likewise. A request whose own
// process/merge fails — or whose client context is cancelled mid-wave — is
// dropped from the rest of the scan while the other fused requests continue;
// an engine-level error (stream read, length mismatch, scheduler-context
// cancellation) fails the scan for every request. Transient read errors are
// healed inside the engine under the scheduler's retry policy, invisible to
// the riding requests.
func (s *Scheduler) scan(batch []*request) error {
	// live skips the per-batch context poll for requests on the scheduler's
	// own context: the engine already checks it every batch.
	live := func(r *request, shard int) bool {
		if r.failed() {
			return false
		}
		if r.ctx != s.ctx && r.ctx.Err() != nil {
			r.fail(fmt.Errorf("sched: pass abandoned at shard %d/%d: %w",
				shard, stream.ActiveShards(s.m), context.Cause(r.ctx)))
			return false
		}
		return true
	}
	process := func(shard int, edges []graph.Edge) error {
		for _, r := range batch {
			if !live(r, shard) {
				continue
			}
			if err := r.process(shard, edges); err != nil {
				r.fail(err)
			}
		}
		return nil
	}
	merge := func(shard int) error {
		for _, r := range batch {
			if !live(r, shard) {
				continue
			}
			if err := r.merge(shard); err != nil {
				r.fail(err)
			}
		}
		return nil
	}
	_, retries, err := stream.ShardedScan(s.ctx, s.src, s.m, s.workers, s.retry, process, merge)
	if retries > 0 {
		s.mu.Lock()
		s.retries += retries
		s.mu.Unlock()
	}
	return err
}
