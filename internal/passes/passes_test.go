package passes_test

import (
	"slices"
	"testing"

	"degentri/internal/gen"
	"degentri/internal/graph"
	"degentri/internal/passes"
	"degentri/internal/sampling"
	"degentri/internal/stream"
)

// testGraph is large enough that the shard grid has several active shards
// (ActiveShards = ⌈m/8192⌉), so the parallel path of every pass is exercised
// for real rather than degrading to the sequential fallback.
func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g := gen.HolmeKim(5000, 5, 0.6, 33)
	if a := stream.ActiveShards(g.NumEdges()); a < 3 {
		t.Fatalf("test graph too small: %d edges give %d shards", g.NumEdges(), a)
	}
	return g
}

var workerSweep = []int{1, 2, 4, 8}

func TestCountDegrees(t *testing.T) {
	g := testGraph(t)
	edges := g.Edges()
	m := len(edges)

	// Track a subset of vertices, including some out-of-graph keys.
	keys := []int{0, 1, 2, 3, 500, 1000, 2500, 4999, 7777}
	want := map[int]int{}
	for _, k := range keys {
		want[k] = 0
	}
	for _, e := range edges {
		for _, v := range []int{e.U, e.V} {
			if _, ok := want[v]; ok {
				want[v]++
			}
		}
	}
	for _, workers := range workerSweep {
		deg := graph.NewSortedCounter(slices.Clone(keys))
		if err := passes.CountDegrees(passes.NewDirect(stream.FromGraph(g), m, workers), deg); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for _, k := range keys {
			got, ok := deg.Get(k)
			if !ok || got != want[k] {
				t.Errorf("workers=%d: deg[%d] = %d (ok=%v), want %d", workers, k, got, ok, want[k])
			}
		}
	}
}

func TestMaxVertexID(t *testing.T) {
	g := testGraph(t)
	m := g.NumEdges()
	want := -1
	for _, e := range g.Edges() {
		if e.U > want {
			want = e.U
		}
		if e.V > want {
			want = e.V
		}
	}
	for _, workers := range workerSweep {
		got, err := passes.MaxVertexID(passes.NewDirect(stream.FromGraph(g), m, workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got != want {
			t.Errorf("workers=%d: max ID = %d, want %d", workers, got, want)
		}
	}
	// Streams with no usable IDs report -1.
	neg := []graph.Edge{{U: -1, V: -2}, {U: -7, V: -3}}
	got, err := passes.MaxVertexID(passes.NewDirect(stream.FromEdges(neg), len(neg), 1))
	if err != nil || got != -1 {
		t.Fatalf("negative-only stream: %d, %v", got, err)
	}
}

func TestCountDegreesMasked(t *testing.T) {
	g := testGraph(t)
	edges := g.Edges()
	m := len(edges)
	n := g.NumVertices()

	// Kill every third vertex; the pass must count only edges whose both
	// endpoints survive.
	alive := graph.NewBitset(n)
	alive.SetAll()
	for v := 0; v < n; v += 3 {
		alive.Unset(v)
	}
	want := make([]int32, n)
	var wantEdges int64
	for _, e := range edges {
		if alive.Test(e.U) && alive.Test(e.V) {
			want[e.U]++
			want[e.V]++
			wantEdges++
		}
	}
	for _, workers := range workerSweep {
		deg := make([]int32, n)
		induced, err := passes.CountDegreesMasked(passes.NewDirect(stream.FromGraph(g), m, workers), alive, deg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if induced != wantEdges {
			t.Errorf("workers=%d: induced edges = %d, want %d", workers, induced, wantEdges)
		}
		if !slices.Equal(deg, want) {
			t.Errorf("workers=%d: induced degrees diverge from the brute-force count", workers)
		}
	}

	// Self loops and out-of-range endpoints are skipped, not counted and not
	// a crash.
	dirty := []graph.Edge{{U: 0, V: 0}, {U: -1, V: 1}, {U: 1, V: 99}, {U: 1, V: 2}}
	small := graph.NewBitset(3)
	small.SetAll()
	deg := make([]int32, 3)
	induced, err := passes.CountDegreesMasked(passes.NewDirect(stream.FromEdges(dirty), len(dirty), 1), small, deg)
	if err != nil {
		t.Fatal(err)
	}
	if induced != 1 || deg[0] != 0 || deg[1] != 1 || deg[2] != 1 {
		t.Fatalf("dirty stream: induced=%d deg=%v", induced, deg)
	}
}

func TestSampleUniformEdges(t *testing.T) {
	g := testGraph(t)
	edges := g.Edges()
	m := len(edges)
	const r = 4000

	// Re-derive the positions the pass will draw so each sampled edge can be
	// checked against the stream position it claims to hold.
	posRNG := sampling.NewRNG(77)
	positions := make([]int, r)
	for i := range positions {
		positions[i] = posRNG.Intn(m)
	}
	sampling.SortPositions(positions)

	var base []graph.Edge
	for _, workers := range workerSweep {
		sample, err := passes.SampleUniformEdges(passes.NewDirect(stream.FromGraph(g), m, workers), sampling.NewRNG(77), r)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(sample) != r {
			t.Fatalf("workers=%d: %d samples, want %d", workers, len(sample), r)
		}
		for i, e := range sample {
			if want := edges[positions[i]].Normalize(); e != want {
				t.Fatalf("workers=%d: sample %d = %v, want edge at position %d = %v",
					workers, i, e, positions[i], want)
			}
		}
		if base == nil {
			base = sample
		} else if !slices.Equal(sample, base) {
			t.Errorf("workers=%d: sample diverges from workers=1", workers)
		}
	}
}

// adjacency returns the neighbor multiset of v in the edge list.
func adjacency(edges []graph.Edge, v int) []int {
	var out []int
	for _, e := range edges {
		if e.U == v {
			out = append(out, e.V)
		}
		if e.V == v {
			out = append(out, e.U)
		}
	}
	return out
}

func TestSampleNeighbors(t *testing.T) {
	g := testGraph(t)
	edges := g.Edges()
	m := len(edges)

	// A few instances per vertex, including a vertex with no edges.
	vertices := []int{0, 1, 7, 100, 2500, 4999, 9999}
	var instVertex []int
	for _, v := range vertices {
		instVertex = append(instVertex, v, v)
	}
	groups := graph.NewVertexGroups(slices.Clone(instVertex))
	n := len(instVertex)

	var base []sampling.Res1Merger
	for _, workers := range workerSweep {
		merged, err := passes.SampleNeighbors(
			passes.NewDirect(stream.FromGraph(g), m, workers), groups, n, 12345, 3, 4)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range instVertex {
			adj := adjacency(edges, v)
			if len(adj) == 0 {
				if merged[i].Has() {
					t.Errorf("workers=%d: instance %d (vertex %d) sampled from an empty neighborhood", workers, i, v)
				}
				continue
			}
			if !merged[i].Has() {
				t.Errorf("workers=%d: instance %d (vertex %d) sampled nothing from %d neighbors", workers, i, v, len(adj))
				continue
			}
			if !slices.Contains(adj, merged[i].W) {
				t.Errorf("workers=%d: instance %d sampled %d, not a neighbor of %d", workers, i, merged[i].W, v)
			}
			if merged[i].N != int64(len(adj)) {
				t.Errorf("workers=%d: instance %d saw %d offers, want %d", workers, i, merged[i].N, len(adj))
			}
		}
		if base == nil {
			base = merged
		} else {
			for i := range merged {
				if merged[i].N != base[i].N || merged[i].W != base[i].W {
					t.Errorf("workers=%d: instance %d sample diverges from workers=1", workers, i)
				}
			}
		}
	}
}

func TestSampleNeighborBanks(t *testing.T) {
	g := testGraph(t)
	edges := g.Edges()
	m := len(edges)
	const k = 3

	vertices := []int{0, 3, 42, 1234, 4998}
	groups := graph.NewVertexGroups(slices.Clone(vertices))
	n := len(vertices)

	var base [][]int
	for _, workers := range workerSweep {
		merged, err := passes.SampleNeighborBanks(
			passes.NewDirect(stream.FromGraph(g), m, workers), groups, n, k, 999, 30, 31)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		banks := make([][]int, n)
		for i, v := range vertices {
			adj := adjacency(edges, v)
			if !merged[i].Has() {
				t.Fatalf("workers=%d: vertex %d has %d neighbors but no samples", workers, v, len(adj))
			}
			if len(merged[i].W) != k {
				t.Fatalf("workers=%d: vertex %d bank holds %d samples, want %d", workers, v, len(merged[i].W), k)
			}
			for j, w := range merged[i].W {
				if !slices.Contains(adj, w) {
					t.Errorf("workers=%d: bank[%d][%d] = %d, not a neighbor of %d", workers, i, j, w, v)
				}
			}
			banks[i] = slices.Clone(merged[i].W)
		}
		if base == nil {
			base = banks
		} else {
			for i := range banks {
				if !slices.Equal(banks[i], base[i]) {
					t.Errorf("workers=%d: bank %d diverges from workers=1: %v vs %v",
						workers, i, banks[i], base[i])
				}
			}
		}
	}
}

func TestClosureBits(t *testing.T) {
	g := testGraph(t)
	edges := g.Edges()
	m := len(edges)

	// Half the keys are real edges, half are fabricated non-edges.
	var keys []graph.Edge
	for i := 0; i < 40; i++ {
		keys = append(keys, edges[(i*997)%m])
	}
	for i := 0; i < 40; i++ {
		keys = append(keys, graph.NewEdge(6000+i, 7000+i))
	}
	idx := graph.NewEdgeIndex(keys)

	present := map[graph.Edge]bool{}
	for _, e := range edges {
		present[e.Normalize()] = true
	}
	degKeys := []int{0, 10, 20}
	wantDeg := map[int]int{}
	for _, e := range edges {
		for _, v := range []int{e.U, e.V} {
			if slices.Contains(degKeys, v) {
				wantDeg[v]++
			}
		}
	}

	for _, workers := range workerSweep {
		extraDeg := graph.NewSortedCounter(slices.Clone(degKeys))
		bits, err := passes.ClosureBits(passes.NewDirect(stream.FromGraph(g), m, workers), idx, len(keys), extraDeg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, key := range keys {
			if bits.Test(i) != present[key.Normalize()] {
				t.Errorf("workers=%d: item %d (%v) hit=%v, want %v",
					workers, i, key, bits.Test(i), present[key.Normalize()])
			}
		}
		for _, v := range degKeys {
			if got, _ := extraDeg.Get(v); got != wantDeg[v] {
				t.Errorf("workers=%d: extraDeg[%d] = %d, want %d", workers, v, got, wantDeg[v])
			}
		}
	}
}

func TestClosureCounts(t *testing.T) {
	// A stream with deliberate duplicates: counts must tally multiplicity.
	var edges []graph.Edge
	for i := 0; i < 20000; i++ {
		edges = append(edges, graph.NewEdge(i%100, 100+i%7))
	}
	m := len(edges)

	keys := []graph.Edge{
		graph.NewEdge(0, 100),
		graph.NewEdge(1, 101),
		graph.NewEdge(55, 103),
		graph.NewEdge(9999, 9998), // absent
	}
	idx := graph.NewEdgeIndex(keys)
	want := make([]int, len(keys))
	for _, e := range edges {
		for i, key := range keys {
			if e.Normalize() == key.Normalize() {
				want[i]++
			}
		}
	}

	for _, workers := range workerSweep {
		counts, err := passes.ClosureCounts(passes.NewDirect(stream.FromEdges(slices.Clone(edges)), m, workers), idx, len(keys))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !slices.Equal(counts, want) {
			t.Errorf("workers=%d: counts = %v, want %v", workers, counts, want)
		}
	}
}

// TestNeighborSampleUniformity spot-checks that the merged single-neighbor
// sample is roughly uniform over the neighborhood when the instance count is
// large: many instances share one vertex of known degree and the empirical
// distribution over its neighbors must not be wildly skewed.
func TestNeighborSampleUniformity(t *testing.T) {
	// A star: vertex 0 with 64 leaves, embedded in filler edges so the stream
	// spans several shards (the leaves' edges scatter across shards).
	const leaves = 64
	var edges []graph.Edge
	for i := 0; i < leaves; i++ {
		edges = append(edges, graph.NewEdge(0, 1+i))
	}
	for i := 0; i < 30000; i++ {
		edges = append(edges, graph.NewEdge(1000+i%500, 2000+i%700))
	}
	// Interleave deterministically so the star edges are spread out.
	rng := sampling.NewRNG(5)
	for i := len(edges) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		edges[i], edges[j] = edges[j], edges[i]
	}
	m := len(edges)

	const n = 6000
	instVertex := make([]int, n)
	groups := graph.NewVertexGroups(slices.Clone(instVertex)) // all zeros: vertex 0
	merged, err := passes.SampleNeighbors(passes.NewDirect(stream.FromEdges(edges), m, 4), groups, n, 271828, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	hist := make([]int, leaves+1)
	for i := range merged {
		if !merged[i].Has() {
			t.Fatalf("instance %d sampled nothing", i)
		}
		hist[merged[i].W]++
	}
	// Expected n/leaves ≈ 94 per leaf; allow a generous ±60% band.
	lo, hi := n/leaves*2/5, n/leaves*8/5
	for leaf := 1; leaf <= leaves; leaf++ {
		if hist[leaf] < lo || hist[leaf] > hi {
			t.Errorf("leaf %d drawn %d times, outside [%d, %d]", leaf, hist[leaf], lo, hi)
		}
	}
}
