// Package passes is the shared multi-pass streaming-estimator framework: the
// concrete sharded stream passes that every estimator in this repository is
// built from. It sits on top of the sharded pass engine
// (stream.ShardedForEachBatch) and the keyed RNG streams (sampling.MixSeed)
// and owns the pass bodies that used to be duplicated between internal/core
// and internal/clique — degree counting, uniform edge sampling, keyed
// neighbor-reservoir sampling, and closure checking.
//
// # The (seed, passKey, mergeKey) contract
//
// A sharded pass splits one stream pass into a fixed grid of contiguous
// shards that may be processed by concurrent workers and merged in ascending
// shard order. Any randomness consumed inside such a pass must be a pure
// function of the data and of stable indices — never of worker scheduling —
// so every randomized pass in this package draws from RNG streams derived
// with sampling.MixSeed from three caller-supplied values:
//
//   - seed: the estimator's root seed (Config.Seed);
//   - passKey: a constant identifying the pass, unique within the estimator,
//     keying the per-(instance, shard) draws as
//     MixSeed(seed, passKey, instance, shard);
//   - mergeKey: a second constant (distinct from every passKey) keying the
//     per-instance shard-merge draws as MixSeed(seed, mergeKey, instance).
//
// Two passes of one estimator run may share a seed but must never share a
// passKey or mergeKey; subject to that, the realized draws — and with them
// the estimate — are bit-identical at any worker count, including the
// sequential workers <= 1 fallback. Deterministic passes (degree counting,
// closure checks) take no keys at all, and the uniform edge-sampling pass
// consumes the estimator's root RNG sequentially before the pass starts, so
// it needs the RNG rather than keys.
//
// # Executors: logical passes vs. physical scans
//
// Every pass body in this package is expressed against the Executor
// interface rather than against a concrete stream: the estimator declares
// *what* the pass needs (a process/merge pair under the engine contract) and
// the executor decides *how* the stream is read. Direct is the unfused
// executor — each logical pass is its own physical scan, exactly the
// pre-scheduler behavior — while internal/sched provides a fused executor
// whose clients share one physical scan across every logical pass that is
// pending at the same time. Because all randomness inside a pass is keyed by
// (seed, passKey, instance, shard) and never by scan identity, a pass body
// produces bit-identical results no matter which physical scan carried it.
//
// Adding a new estimator workload should mean writing pass bodies against
// this package — picking fresh pass/merge keys — not re-implementing the
// shard/merge/RNG-keying discipline.
package passes

import (
	"context"
	"runtime"
	"sort"
	"sync/atomic"

	"degentri/internal/graph"
	"degentri/internal/sampling"
	"degentri/internal/stream"
)

// Executor runs logical sharded passes over one fixed stream of M() edges.
// RunPass executes one logical pass under the sharded engine contract:
// process(shard, batch) for every batch (batches never straddle shard
// boundaries; different shards may be processed concurrently by up to
// Workers() goroutines), then merge(shard) exactly once per shard in
// ascending shard order from a single goroutine. Passes() reports how many
// logical passes this executor has run — the paper's pass metric — which an
// implementation may serve with fewer physical scans.
//
// Context returns the executor's lifetime context: RunPass aborts within one
// batch boundary once it is cancelled, returning the context's error wrapped
// with the scan position, and estimators check it between passes so a
// cancelled request never starts another scan. Retries reports how many
// transient-I/O recoveries the executor's scans have performed so far — a
// healed scan is bit-identical to an undisturbed one (see stream.RetryPolicy),
// so retries change resource accounting, never results.
type Executor interface {
	M() int
	Workers() int
	RunPass(process func(shard int, batch []graph.Edge) error, merge func(shard int) error) error
	Passes() int
	Context() context.Context
	Retries() int
}

// Direct is the unfused Executor: every logical pass is one physical
// stream.ShardedForEachBatch scan of the underlying stream. It is what
// standalone estimator entry points use; fused entry points substitute a
// scheduler client (internal/sched) with the same interface.
type Direct struct {
	s       stream.Stream
	m       int
	workers int
	passes  int
	ctx     context.Context
	retry   stream.RetryPolicy
	retries int
}

// NewDirect returns a Direct executor over a stream of exactly m edges.
// workers <= 0 selects GOMAXPROCS. The executor is uncancellable and does not
// retry; NewDirectCtx is the fault-tolerant constructor.
func NewDirect(s stream.Stream, m, workers int) *Direct {
	return NewDirectCtx(context.Background(), s, m, workers, stream.RetryPolicy{})
}

// NewDirectCtx returns a Direct executor whose scans abort when ctx is
// cancelled and heal transient I/O errors under the given retry policy.
func NewDirectCtx(ctx context.Context, s stream.Stream, m, workers int, retry stream.RetryPolicy) *Direct {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	return &Direct{s: s, m: m, workers: workers, ctx: ctx, retry: retry}
}

// M implements Executor.
func (d *Direct) M() int { return d.m }

// Workers implements Executor.
func (d *Direct) Workers() int { return d.workers }

// Passes implements Executor.
func (d *Direct) Passes() int { return d.passes }

// Context implements Executor.
func (d *Direct) Context() context.Context { return d.ctx }

// Retries implements Executor.
func (d *Direct) Retries() int { return d.retries }

// RunPass implements Executor: one logical pass, one physical scan.
func (d *Direct) RunPass(process func(shard int, batch []graph.Edge) error, merge func(shard int) error) error {
	d.passes++
	_, retries, err := stream.ShardedScan(d.ctx, d.s, d.m, d.workers, d.retry, process, merge)
	d.retries += retries
	return err
}

// runPooled executes one sharded pass whose per-shard scratch state is pooled:
// a shard's state is allocated (or recycled) on its first batch, every batch
// of the shard is handed to process, and merge is invoked exactly once per
// non-empty shard, in ascending shard order, before the state returns to the
// pool. The engine bounds live states at workers+2, so the pool stays small.
func runPooled[T any](
	x Executor,
	alloc func() T, reset func(T),
	process func(st T, shard int, batch []graph.Edge),
	merge func(st T, shard int),
) error {
	pool := stream.NewShardPool(alloc, reset)
	var shards [stream.NumShards]T
	var live [stream.NumShards]bool
	return x.RunPass(
		func(shard int, batch []graph.Edge) error {
			if !live[shard] {
				shards[shard] = pool.Get()
				live[shard] = true
			}
			process(shards[shard], shard, batch)
			return nil
		},
		func(shard int) error {
			if live[shard] {
				merge(shards[shard], shard)
				pool.Put(shards[shard])
				var zero T
				shards[shard] = zero
				live[shard] = false
			}
			return nil
		})
}

// CountDegrees runs one sharded pass that increments deg for both endpoints
// of every edge, using pooled Forks of the counter merged in shard order. The
// pass is deterministic (no randomness) and only touches vertices that are
// keys of deg.
func CountDegrees(x Executor, deg *graph.SortedCounter) error {
	return runPooled(x,
		deg.Fork, (*graph.SortedCounter).ResetCounts,
		func(c *graph.SortedCounter, _ int, batch []graph.Edge) {
			for _, e := range batch {
				c.Inc(e.U)
				c.Inc(e.V)
			}
		},
		func(c *graph.SortedCounter, _ int) { deg.Merge(c) })
}

// MaxVertexID runs one sharded pass returning the largest vertex ID in the
// stream, or -1 when the stream has no non-negative IDs. The pass is
// deterministic (max is order-independent) and retains O(1) state per shard.
func MaxVertexID(x Executor) (int, error) {
	var shardMax [stream.NumShards]int
	for i := range shardMax {
		shardMax[i] = -1
	}
	maxID := -1
	err := x.RunPass(
		func(shard int, batch []graph.Edge) error {
			top := shardMax[shard]
			for _, e := range batch {
				if e.U > top {
					top = e.U
				}
				if e.V > top {
					top = e.V
				}
			}
			shardMax[shard] = top
			return nil
		},
		func(shard int) error {
			if shardMax[shard] > maxID {
				maxID = shardMax[shard]
			}
			return nil
		})
	if err != nil {
		return -1, err
	}
	return maxID, nil
}

// CountDegreesMasked runs one sharded pass counting, into the dense array deg,
// the degrees of the subgraph induced by the alive vertices: an edge
// contributes to both endpoints exactly when both are alive bits of the mask.
// Self-loops and endpoints outside [0, len(deg)) are skipped. It returns the
// number of stream edges that contributed (the induced edge count, duplicates
// tallied faithfully).
//
// Unlike CountDegrees this pass writes a shared dense array with atomic adds
// instead of pooled forks: integer addition is commutative and associative, so
// the result is bit-identical at any worker count without per-shard O(n)
// scratch — the whole point of the pass is staying at O(n) words total.
func CountDegreesMasked(x Executor, alive *graph.Bitset, deg []int32) (int64, error) {
	n := uint(len(deg))
	var induced atomic.Int64
	err := x.RunPass(
		func(_ int, batch []graph.Edge) error {
			local := int64(0)
			for _, e := range batch {
				if e.U == e.V || uint(e.U) >= n || uint(e.V) >= n {
					continue
				}
				if !alive.Test(e.U) || !alive.Test(e.V) {
					continue
				}
				atomic.AddInt32(&deg[e.U], 1)
				atomic.AddInt32(&deg[e.V], 1)
				local++
			}
			induced.Add(local)
			return nil
		},
		func(int) error { return nil })
	if err != nil {
		return 0, err
	}
	return induced.Load(), nil
}

// positionShard is the per-shard cursor of the uniform edge-sampling pass:
// the next stream position of the shard and the next index into the sorted
// position array.
type positionShard struct {
	pos  int
	next int
	init bool
}

// SampleUniformEdges draws r edges uniformly at random with replacement from
// a stream of m edges in one sharded pass: it pre-draws r uniform positions
// in [0, m) from rng (consumed sequentially, before the pass starts), sorts
// them, and each shard collects the positions that fall in its range.
// Because sorted positions give every shard a disjoint index range of the
// sample array, the per-shard cursors need no merge state and the merge is
// trivially deterministic. Sampled edges are normalized.
func SampleUniformEdges(x Executor, rng *sampling.RNG, r int) ([]graph.Edge, error) {
	m := x.M()
	positions := make([]int, r)
	for i := range positions {
		positions[i] = rng.Intn(m)
	}
	sampling.SortPositions(positions)
	sample := make([]graph.Edge, r)

	var shards [stream.NumShards]positionShard
	err := x.RunPass(
		func(shard int, batch []graph.Edge) error {
			st := &shards[shard]
			if !st.init {
				st.pos, _ = stream.ShardRange(m, shard)
				st.next = sort.SearchInts(positions, st.pos)
				st.init = true
			}
			pos, next := st.pos, st.next
			for _, e := range batch {
				for next < r && positions[next] == pos {
					sample[next] = e.Normalize()
					next++
				}
				pos++
			}
			st.pos, st.next = pos, next
			return nil
		},
		func(int) error { return nil })
	if err != nil {
		return nil, err
	}
	return sample, nil
}

// neighborShard is the per-shard state of a single-sample neighbor pass: one
// lazy skip-ahead reservoir per instance, plus the touched list for sparse
// reset and merge.
type neighborShard struct {
	res     []sampling.Res1
	touched []int32
}

// SampleNeighbors runs one sharded pass drawing, for every instance grouped
// in groups, one uniform neighbor of its group vertex. The reservoir of
// instance i in shard k draws from the RNG stream (seed, passKey, i, k) and
// the per-instance shard merge from (seed, mergeKey, i), which makes the
// returned samples independent of the worker count. It returns one merger per
// instance (Has() == false when the vertex had no neighbors).
func SampleNeighbors(
	x Executor,
	groups *graph.VertexGroups, n int,
	seed, passKey, mergeKey uint64,
) ([]sampling.Res1Merger, error) {
	merged := make([]sampling.Res1Merger, n)
	for i := range merged {
		merged[i].Init(sampling.MixSeed(seed, mergeKey, uint64(i)))
	}
	err := runPooled(x,
		func() *neighborShard { return &neighborShard{res: make([]sampling.Res1, n)} },
		func(st *neighborShard) {
			for _, i := range st.touched {
				st.res[i] = sampling.Res1{}
			}
			st.touched = st.touched[:0]
		},
		func(st *neighborShard, shard int, batch []graph.Edge) {
			offer := func(idx int32, v int) {
				r := &st.res[idx]
				if !r.Ready() {
					r.Init(sampling.MixSeed(seed, passKey, uint64(idx), uint64(shard)))
					st.touched = append(st.touched, idx)
				}
				r.Offer(v)
			}
			for _, e := range batch {
				for _, idx := range groups.Lookup(e.U) {
					offer(idx, e.V)
				}
				for _, idx := range groups.Lookup(e.V) {
					offer(idx, e.U)
				}
			}
		},
		func(st *neighborShard, _ int) {
			for _, i := range st.touched {
				merged[i].Absorb(&st.res[i])
			}
		})
	return merged, err
}

// bankShard is the per-shard state of a bank-sampling neighbor pass: one lazy
// k-sample bank per instance.
type bankShard struct {
	res     []sampling.ResK
	touched []int32
}

// SampleNeighborBanks runs one sharded pass drawing, for every instance
// grouped in groups, k uniform neighbor samples with replacement from its
// group vertex's neighborhood. Randomness is keyed exactly like
// SampleNeighbors — (seed, passKey, instance, shard) for the in-shard draws
// and (seed, mergeKey, instance) for the shard merges — with an s-sample bank
// in place of the single reservoir.
func SampleNeighborBanks(
	x Executor,
	groups *graph.VertexGroups, n, k int,
	seed, passKey, mergeKey uint64,
) ([]sampling.ResKMerger, error) {
	merged := make([]sampling.ResKMerger, n)
	for i := range merged {
		merged[i].Init(sampling.MixSeed(seed, mergeKey, uint64(i)), k)
	}
	err := runPooled(x,
		func() *bankShard { return &bankShard{res: make([]sampling.ResK, n)} },
		func(st *bankShard) {
			for _, i := range st.touched {
				st.res[i].Drop()
			}
			st.touched = st.touched[:0]
		},
		func(st *bankShard, shard int, batch []graph.Edge) {
			offer := func(idx int32, v int) {
				b := &st.res[idx]
				if !b.Ready() {
					b.Init(sampling.MixSeed(seed, passKey, uint64(idx), uint64(shard)), k)
					st.touched = append(st.touched, idx)
				}
				b.Offer(v)
			}
			for _, e := range batch {
				for _, idx := range groups.Lookup(e.U) {
					offer(idx, e.V)
				}
				for _, idx := range groups.Lookup(e.V) {
					offer(idx, e.U)
				}
			}
		},
		func(st *bankShard, _ int) {
			for _, i := range st.touched {
				merged[i].Absorb(&st.res[i])
			}
		})
	return merged, err
}

// closureShard is the per-shard state of a closure-check pass: a hit bitset
// over the closure items plus (optionally) a degree-counter fork.
type closureShard struct {
	bits *graph.Bitset
	deg  *graph.SortedCounter
}

// ClosureBits runs one sharded pass marking, for every closure item whose
// edge key appears in the stream, a bit in the returned bitset. When extraDeg
// is non-nil the same pass also counts, into extraDeg, the degrees of its key
// vertices (the estimators use this to measure apex degrees without an extra
// pass). Hit bits are set in per-shard bitsets OR-merged in shard order — no
// shared writes, no randomness.
func ClosureBits(
	x Executor,
	closure *graph.EdgeIndex, items int,
	extraDeg *graph.SortedCounter,
) (*graph.Bitset, error) {
	merged := graph.NewBitset(items)
	err := runPooled(x,
		func() *closureShard {
			st := &closureShard{bits: graph.NewBitset(items)}
			if extraDeg != nil {
				st.deg = extraDeg.Fork()
			}
			return st
		},
		func(st *closureShard) {
			st.bits.Clear()
			if st.deg != nil {
				st.deg.ResetCounts()
			}
		},
		func(st *closureShard, _ int, batch []graph.Edge) {
			for _, e := range batch {
				if hits := closure.Lookup(e.Normalize()); hits != nil {
					for _, it := range hits {
						st.bits.Set(int(it))
					}
				}
				if st.deg != nil {
					st.deg.Inc(e.U)
					st.deg.Inc(e.V)
				}
			}
		},
		func(st *closureShard, _ int) {
			merged.Or(st.bits)
			if st.deg != nil {
				extraDeg.Merge(st.deg)
			}
		})
	if err != nil {
		return nil, err
	}
	return merged, nil
}

// ClosureCounts runs one sharded pass counting, for every closure item, how
// many stream edges match its key (per-shard int32 tallies summed in shard
// order). For simple streams each count is 0 or 1, but duplicates in the
// stream are tallied faithfully.
func ClosureCounts(
	x Executor,
	closure *graph.EdgeIndex, items int,
) ([]int, error) {
	merged := make([]int, items)
	err := runPooled(x,
		func() []int32 { return make([]int32, items) },
		func(c []int32) { clear(c) },
		func(c []int32, _ int, batch []graph.Edge) {
			for _, e := range batch {
				for _, it := range closure.Lookup(e.Normalize()) {
					c[it]++
				}
			}
		},
		func(c []int32, _ int) {
			for it, n := range c {
				if n != 0 {
					merged[it] += int(n)
				}
			}
		})
	if err != nil {
		return nil, err
	}
	return merged, nil
}
