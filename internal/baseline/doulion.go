package baseline

import (
	"fmt"

	"degentri/internal/core"
	"degentri/internal/graph"
	"degentri/internal/sampling"
	"degentri/internal/stream"
)

// DoulionConfig configures the one-pass sparsification estimator.
type DoulionConfig struct {
	// P is the edge retention probability in (0, 1].
	P float64
	// Seed drives the coin flips.
	Seed uint64
}

// Doulion implements the "triangle counting with a coin" estimator of
// Tsourakakis, Kang, Miller, Faloutsos (KDD 2009): keep every edge
// independently with probability p, count the triangles T' of the sparsified
// graph exactly, and report T' / p³. It is a single pass and stores ~pm
// edges; its relative variance blows up once p³·t_e terms get small, which is
// exactly the regime the comparison experiments probe.
func Doulion(src stream.Stream, cfg DoulionConfig) (core.Result, error) {
	if cfg.P <= 0 || cfg.P > 1 {
		return core.Result{}, fmt.Errorf("baseline: doulion retention probability %v outside (0,1]", cfg.P)
	}
	rng := sampling.NewRNG(cfg.Seed)
	meter := stream.NewSpaceMeter()
	counter := stream.NewPassCounter(src)

	// Independent Bernoulli(p) coins are realized as geometric gaps between
	// kept edges (identical distribution), so the pass costs one RNG draw per
	// kept edge instead of one per stream edge.
	b := graph.NewBuilder(0)
	kept := 0
	var skip int64
	if cfg.P < 1 {
		skip = rng.Geometric(cfg.P) - 1
	}
	m, err := stream.ForEachBatch(counter, func(batch []graph.Edge) error {
		if cfg.P >= 1 {
			for _, e := range batch {
				b.AddEdge(e.U, e.V)
			}
			kept += len(batch)
			meter.Charge(int64(len(batch)) * stream.WordsPerEdge)
			return nil
		}
		for skip < int64(len(batch)) {
			e := batch[skip]
			b.AddEdge(e.U, e.V)
			kept++
			meter.Charge(stream.WordsPerEdge)
			skip += rng.Geometric(cfg.P)
		}
		skip -= int64(len(batch))
		return nil
	})
	if err != nil {
		return core.Result{}, err
	}
	g := b.Build()
	sparseT := g.TriangleCount()
	scale := 1.0 / (cfg.P * cfg.P * cfg.P)
	return core.Result{
		Estimate:       float64(sparseT) * scale,
		Passes:         counter.Passes(),
		SpaceWords:     meter.Peak(),
		EdgesInStream:  m,
		SampledEdges:   kept,
		TrianglesFound: int(sparseT),
	}, nil
}
