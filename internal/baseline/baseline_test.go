package baseline

import (
	"testing"

	"degentri/internal/gen"
	"degentri/internal/graph"
	"degentri/internal/sampling"
	"degentri/internal/stream"
)

func TestExact(t *testing.T) {
	cases := []*graph.Graph{
		gen.Wheel(100),
		gen.Book(50),
		gen.Complete(12),
		gen.Grid(10, 10),
	}
	for _, g := range cases {
		res, err := Exact(stream.FromGraphShuffled(g, 3))
		if err != nil {
			t.Fatal(err)
		}
		if res.Estimate != float64(g.TriangleCount()) {
			t.Errorf("exact estimate %v, want %d", res.Estimate, g.TriangleCount())
		}
		if res.Passes != 1 {
			t.Errorf("exact passes = %d, want 1", res.Passes)
		}
		if res.SpaceWords < int64(2*g.NumEdges()) {
			t.Errorf("exact space %d should be at least 2m=%d", res.SpaceWords, 2*g.NumEdges())
		}
	}
}

func TestDoulionValidation(t *testing.T) {
	g := gen.Wheel(20)
	for _, p := range []float64{0, -0.5, 1.5} {
		if _, err := Doulion(stream.FromGraph(g), DoulionConfig{P: p}); err == nil {
			t.Errorf("p=%v should be rejected", p)
		}
	}
}

func TestDoulionFullRetentionIsExact(t *testing.T) {
	g := gen.BarabasiAlbert(500, 3, 1)
	res, err := Doulion(stream.FromGraphShuffled(g, 2), DoulionConfig{P: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimate != float64(g.TriangleCount()) {
		t.Fatalf("p=1 estimate %v, want %d", res.Estimate, g.TriangleCount())
	}
	if res.Passes != 1 {
		t.Fatalf("doulion passes = %d, want 1", res.Passes)
	}
}

func TestDoulionAccuracy(t *testing.T) {
	g := gen.Complete(80) // dense: sparsification works well here
	truth := float64(g.TriangleCount())
	var sum float64
	trials := 10
	for i := 0; i < trials; i++ {
		res, err := Doulion(stream.FromGraphShuffled(g, uint64(i+1)), DoulionConfig{P: 0.4, Seed: uint64(i + 1)})
		if err != nil {
			t.Fatal(err)
		}
		sum += res.Estimate
	}
	rel := sampling.RelativeError(sum/float64(trials), truth)
	if rel > 0.2 {
		t.Fatalf("doulion relative error %.3f", rel)
	}
}

func TestDoulionSpaceShrinksWithP(t *testing.T) {
	g := gen.BarabasiAlbert(2000, 4, 9)
	resLow, err := Doulion(stream.FromGraphShuffled(g, 1), DoulionConfig{P: 0.1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	resHigh, err := Doulion(stream.FromGraphShuffled(g, 1), DoulionConfig{P: 0.9, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if resLow.SpaceWords >= resHigh.SpaceWords {
		t.Fatalf("space did not shrink with p: %d vs %d", resLow.SpaceWords, resHigh.SpaceWords)
	}
}

func TestNeighborSamplingValidation(t *testing.T) {
	g := gen.Wheel(20)
	if _, err := NeighborSampling(stream.FromGraph(g), NeighborSamplingConfig{Estimators: 0}); err == nil {
		t.Error("0 estimators should be rejected")
	}
}

func TestNeighborSamplingOnePass(t *testing.T) {
	g := gen.Wheel(200)
	res, err := NeighborSampling(stream.FromGraphShuffled(g, 1), NeighborSamplingConfig{Estimators: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Passes != 1 {
		t.Fatalf("passes = %d, want 1", res.Passes)
	}
}

func TestNeighborSamplingTriangleFree(t *testing.T) {
	g := gen.Grid(20, 20)
	res, err := NeighborSampling(stream.FromGraphShuffled(g, 1), NeighborSamplingConfig{Estimators: 200, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimate != 0 {
		t.Fatalf("triangle-free estimate %v", res.Estimate)
	}
}

func TestNeighborSamplingAccuracy(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"wheel":  gen.Wheel(800),
		"K40":    gen.Complete(40),
		"ba":     gen.BarabasiAlbert(800, 4, 3),
		"apollo": gen.Apollonian(500),
	}
	for name, g := range graphs {
		truth := float64(g.TriangleCount())
		var sum float64
		trials := 8
		for i := 0; i < trials; i++ {
			res, err := NeighborSampling(stream.FromGraphShuffled(g, uint64(i+1)),
				NeighborSamplingConfig{Estimators: 3000, Seed: uint64(71 * (i + 1))})
			if err != nil {
				t.Fatal(err)
			}
			sum += res.Estimate
		}
		rel := sampling.RelativeError(sum/float64(trials), truth)
		if rel > 0.25 {
			t.Errorf("%s: neighbor sampling relative error %.3f", name, rel)
		}
	}
}

func TestWedgeClosingEdge(t *testing.T) {
	a := graph.NewEdge(1, 2)
	b := graph.NewEdge(2, 5)
	if got := wedgeClosingEdge(a, b); got != graph.NewEdge(1, 5) {
		t.Errorf("closing edge = %v, want (1,5)", got)
	}
	c := graph.NewEdge(7, 9)
	if got := wedgeClosingEdge(a, c); got.U != -1 {
		t.Errorf("non-wedge should return sentinel, got %v", got)
	}
	if !sharesEndpoint(a, b) || sharesEndpoint(a, c) || sharesEndpoint(a, a) {
		t.Error("sharesEndpoint misbehaves")
	}
}

func TestHeavyLightValidation(t *testing.T) {
	g := gen.Wheel(20)
	if _, err := HeavyLight(stream.FromGraph(g), HeavyLightConfig{SampledEdges: 0}); err == nil {
		t.Error("0 samples should be rejected")
	}
}

func TestHeavyLightEmptyAndTriangleFree(t *testing.T) {
	res, err := HeavyLight(stream.FromEdges(nil), HeavyLightConfig{SampledEdges: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimate != 0 {
		t.Fatalf("empty stream estimate %v", res.Estimate)
	}
	g := gen.Grid(15, 15)
	res, err = HeavyLight(stream.FromGraphShuffled(g, 1), HeavyLightConfig{SampledEdges: 200, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimate != 0 {
		t.Fatalf("triangle-free estimate %v", res.Estimate)
	}
}

func TestHeavyLightFourPasses(t *testing.T) {
	g := gen.Wheel(300)
	res, err := HeavyLight(stream.FromGraphShuffled(g, 1), HeavyLightConfig{SampledEdges: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Passes != 4 {
		t.Fatalf("passes = %d, want 4", res.Passes)
	}
}

func TestHeavyLightAccuracy(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"wheel": gen.Wheel(1200),
		"book":  gen.Book(1200),
		"ba":    gen.BarabasiAlbert(1200, 4, 5),
		"K50":   gen.Complete(50),
	}
	for name, g := range graphs {
		truth := float64(g.TriangleCount())
		var sum float64
		trials := 8
		for i := 0; i < trials; i++ {
			res, err := HeavyLight(stream.FromGraphShuffled(g, uint64(i+1)),
				HeavyLightConfig{SampledEdges: 1500, Seed: uint64(13 * (i + 1))})
			if err != nil {
				t.Fatal(err)
			}
			sum += res.Estimate
		}
		rel := sampling.RelativeError(sum/float64(trials), truth)
		if rel > 0.25 {
			t.Errorf("%s: heavy/light relative error %.3f", name, rel)
		}
	}
}

func TestHeavyLightDenseGraphUsesExactHeavyPart(t *testing.T) {
	// In K30 every vertex is heavy (degree 29 ≥ √(2m) ≈ 29.5 is false...
	// use a lower threshold override to force the heavy path).
	g := gen.Complete(30)
	res, err := HeavyLight(stream.FromGraphShuffled(g, 1),
		HeavyLightConfig{SampledEdges: 10, DegreeThreshold: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimate != float64(g.TriangleCount()) {
		t.Fatalf("all-heavy graph should be exact: %v vs %d", res.Estimate, g.TriangleCount())
	}
}

func TestMinDegreeEdge(t *testing.T) {
	deg := map[graph.Edge]int{
		graph.NewEdge(1, 2): 5,
		graph.NewEdge(1, 3): 2,
		graph.NewEdge(2, 3): 2,
	}
	f := func(e graph.Edge) int { return deg[e.Normalize()] }
	tri := graph.NewTriangle(1, 2, 3)
	if got := minDegreeEdge(tri, f); got != graph.NewEdge(1, 3) {
		t.Errorf("minDegreeEdge = %v, want (1,3) (lexicographic tie-break)", got)
	}
}

func TestBaselineSpaceOrdering(t *testing.T) {
	// On a moderately sized graph: exact storage should dominate the
	// sketching baselines run at modest budgets.
	g := gen.BarabasiAlbert(3000, 4, 21)
	s := func() stream.Stream { return stream.FromGraphShuffled(g, 4) }
	exact, err := Exact(s())
	if err != nil {
		t.Fatal(err)
	}
	dl, err := Doulion(s(), DoulionConfig{P: 0.1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	ns, err := NeighborSampling(s(), NeighborSamplingConfig{Estimators: 500, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if dl.SpaceWords >= exact.SpaceWords {
		t.Errorf("doulion space %d should be below exact %d", dl.SpaceWords, exact.SpaceWords)
	}
	if ns.SpaceWords >= exact.SpaceWords {
		t.Errorf("neighbor sampling space %d should be below exact %d", ns.SpaceWords, exact.SpaceWords)
	}
}

// TestHeavyLightSparseVertexIDs exercises the out-of-range degree table: a
// triangle-rich graphlet whose vertex IDs all exceed the dense-slice budget
// (2^23), with enough occurrences to force at least one pending-buffer merge
// path. The exact count must still come out right.
func TestHeavyLightSparseVertexIDs(t *testing.T) {
	base := 1 << 24
	var edges []graph.Edge
	// 40 triangles sharing the hub base+0 plus a chain, all at huge IDs.
	for i := 1; i <= 40; i++ {
		a, b := base+2*i, base+2*i+1
		edges = append(edges, graph.Edge{U: base, V: a}, graph.Edge{U: base, V: b}, graph.Edge{U: a, V: b})
	}
	// A triangle-free star with enough endpoints to overflow the pending
	// buffer mid-stream, so the sorted-merge path (non-empty existing table)
	// runs, not just the final flush.
	hub := base + 1<<20
	for i := 1; i <= 40000; i++ {
		edges = append(edges, graph.Edge{U: hub, V: hub + i})
	}
	src := stream.FromEdges(edges)
	res, err := HeavyLight(src, HeavyLightConfig{SampledEdges: len(edges), Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.TrianglesFound == 0 {
		t.Fatal("no triangles discovered on the sparse-ID workload")
	}
	if res.Estimate < 20 || res.Estimate > 80 {
		t.Fatalf("estimate %.1f far from the 40 true triangles", res.Estimate)
	}
}
