// Package baseline implements the prior-work streaming triangle counters the
// paper compares against (Table 1), so that the experiment harness can
// measure who wins — and by how much — on the same streams as the paper's
// algorithm:
//
//   - Exact: store the whole graph, count exactly (the trivial Θ(m)-space
//     upper bound every streaming algorithm is trying to beat).
//   - Doulion: one-pass edge sparsification (Tsourakakis et al.), space Θ(pm).
//   - NeighborSampling: the one-pass estimator of Pavan et al. with space
//     Θ(m∆/T) for (1±ε) accuracy.
//   - HeavyLight: a multi-pass heavy/light estimator in the style of
//     McGregor–Vorotnikova–Vu with the √m degree cut-off, space Θ(m^{3/2}/T)
//     plus n words for the degree table.
//
// All estimators speak stream.Stream, charge their retained state to a
// stream.SpaceMeter, and return core.Result so that the experiment tables can
// treat every algorithm uniformly.
package baseline

import (
	"degentri/internal/core"
	"degentri/internal/graph"
	"degentri/internal/stream"
)

// Exact materializes the stream and counts triangles exactly with the
// Chiba–Nishizeki-style counter from the graph package (parallel over vertex
// ranges: graph.TriangleCountWorkers with GOMAXPROCS workers, so ground-truth
// computation no longer dominates multi-algorithm experiments on multi-core
// machines). It is the ground truth and the Θ(m)-space reference point of
// every space comparison. Callers that already run trials on a worker pool
// should use ExactWorkers(src, 1) to avoid nesting parallelism.
func Exact(src stream.Stream) (core.Result, error) {
	return ExactWorkers(src, 0)
}

// ExactWorkers is Exact with an explicit triangle-count worker bound;
// workers <= 0 selects GOMAXPROCS. The count is identical at any setting.
func ExactWorkers(src stream.Stream, workers int) (core.Result, error) {
	meter := stream.NewSpaceMeter()
	counter := stream.NewPassCounter(src)
	b := graph.NewBuilder(0)
	m, err := stream.ForEachBatch(counter, func(batch []graph.Edge) error {
		for _, e := range batch {
			b.AddEdge(e.U, e.V)
		}
		return nil
	})
	if err != nil {
		return core.Result{}, err
	}
	meter.Charge(int64(b.NumEdges()) * stream.WordsPerEdge)
	g := b.Build()
	// The CSR graph keeps 2m adjacency entries plus n+1 offsets.
	meter.Charge(int64(2*g.NumEdges()) + int64(g.NumVertices()+1))
	t := g.TriangleCountWorkers(workers)
	return core.Result{
		Estimate:       float64(t),
		Passes:         counter.Passes(),
		SpaceWords:     meter.Peak(),
		EdgesInStream:  m,
		TrianglesFound: int(t),
	}, nil
}
