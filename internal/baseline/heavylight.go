package baseline

import (
	"fmt"
	"math"
	"sort"

	"degentri/internal/core"
	"degentri/internal/graph"
	"degentri/internal/sampling"
	"degentri/internal/stream"
)

// HeavyLightConfig configures the multi-pass heavy/light estimator.
type HeavyLightConfig struct {
	// SampledEdges is r, the number of uniform edge samples used for the
	// light part; Θ(m^{3/2}/(ε²T)) samples give a (1±ε) estimate.
	SampledEdges int
	// DegreeThreshold overrides the heavy-degree threshold θ; when zero the
	// canonical θ = √(2m) is used.
	DegreeThreshold float64
	// Seed drives the sampling.
	Seed uint64
}

// HeavyLight is a multi-pass estimator in the style of McGregor, Vorotnikova
// and Vu (PODS 2016) achieving space O(n + m^{3/2}/T) words:
//
//   - every triangle is attributed to its minimum-edge-degree edge (ties
//     broken lexicographically);
//   - triangles attributed to a *heavy* edge (d_e ≥ θ = √(2m)) have all three
//     endpoints of degree ≥ θ, so they live in the induced subgraph on heavy
//     vertices, which is stored and counted exactly;
//   - triangles attributed to a *light* edge are estimated by sampling r
//     uniform edges, drawing a uniform neighbor of the light endpoint of each
//     sampled light edge, and accepting the discovered triangle only when the
//     sampled edge is its attributed edge. Each accepted discovery
//     contributes d_e·m/r.
//
// The full degree table (n words) makes the attribution test exact; this
// additive n term is standard for this family of algorithms and is charged to
// the meter so comparisons stay honest.
//
// Passes: 1 (degrees + m) · 2 (heavy subgraph + edge sample) · 3 (neighbor
// sampling) · 4 (closure checks) = 4 passes.
func HeavyLight(src stream.Stream, cfg HeavyLightConfig) (core.Result, error) {
	if cfg.SampledEdges < 1 {
		return core.Result{}, fmt.Errorf("baseline: heavy/light needs at least one sampled edge, got %d", cfg.SampledEdges)
	}
	rng := sampling.NewRNG(cfg.Seed)
	meter := stream.NewSpaceMeter()
	counter := stream.NewPassCounter(src)
	res := core.Result{SampledEdges: cfg.SampledEdges}

	// ----- Pass 1: all vertex degrees and m. -----
	// Vertex IDs are dense ints in this repository, so the degree table is a
	// flat slice grown on demand — a slice index per endpoint instead of a
	// hash probe. IDs beyond the dense budget (possible in hand-written edge
	// files) go through a sparseDegreeTable — an append buffer periodically
	// sort-merged into sorted (key, count) arrays — so one huge ID cannot
	// balloon the slice, no hash map sits in the hot loop, and memory stays
	// O(distinct + chunk) rather than O(occurrences). The meter is charged
	// for the touched (nonzero) vertices, as a pure map version would be.
	const denseDegreeLimit = 1 << 23
	var degrees []int32
	var sparse sparseDegreeTable
	distinct := 0
	bump := func(v int) {
		if v >= denseDegreeLimit || v < 0 {
			sparse.add(v)
			return
		}
		if v >= len(degrees) {
			grown := make([]int32, max(v+1, 2*len(degrees)))
			copy(grown, degrees)
			degrees = grown
		}
		if degrees[v] == 0 {
			distinct++
		}
		degrees[v]++
	}
	m, err := stream.ForEachBatch(counter, func(batch []graph.Edge) error {
		for _, e := range batch {
			bump(e.U)
			bump(e.V)
		}
		return nil
	})
	if err != nil {
		return res, err
	}
	res.EdgesInStream = m
	if m == 0 {
		res.Passes = counter.Passes()
		return res, nil
	}
	sparse.flush()
	distinct += len(sparse.keys)
	meter.Charge(int64(distinct) * stream.WordsPerCounter)

	theta := cfg.DegreeThreshold
	if theta <= 0 {
		theta = math.Sqrt(2 * float64(m))
	}
	degreeOf := func(v int) int {
		if v >= denseDegreeLimit || v < 0 {
			return sparse.get(v)
		}
		if v >= len(degrees) {
			return 0
		}
		return int(degrees[v])
	}
	edgeDeg := func(e graph.Edge) int {
		du, dv := degreeOf(e.U), degreeOf(e.V)
		if du < dv {
			return du
		}
		return dv
	}

	// ----- Pass 2: heavy-induced subgraph and the uniform edge sample. -----
	r := cfg.SampledEdges
	if r > m {
		r = m
	}
	positions := make([]int, r)
	for i := range positions {
		positions[i] = rng.Intn(m)
	}
	sort.Ints(positions)
	sample := make([]graph.Edge, 0, r)

	heavyBuilder := graph.NewBuilder(0)
	heavyEdges := 0
	pos := 0
	next := 0
	if _, err := stream.ForEachBatch(counter, func(batch []graph.Edge) error {
		for _, e := range batch {
			e = e.Normalize()
			if float64(degreeOf(e.U)) >= theta && float64(degreeOf(e.V)) >= theta {
				heavyBuilder.AddEdge(e.U, e.V)
				heavyEdges++
			}
			for next < r && positions[next] == pos {
				sample = append(sample, e)
				next++
			}
			pos++
		}
		return nil
	}); err != nil {
		return res, err
	}
	meter.Charge(int64(heavyEdges)*stream.WordsPerEdge + int64(len(sample))*stream.WordsPerEdge)

	// Exact count of triangles attributed to heavy edges: count triangles of
	// the heavy subgraph whose minimum edge degree (in the full graph)
	// reaches θ — by construction of the induced subgraph they all do, since
	// all three endpoints are heavy, hence every edge degree is ≥ θ.
	heavyGraph := heavyBuilder.Build()
	heavyTriangles := heavyGraph.TriangleCount()

	// ----- Pass 3: uniform neighbor of the light endpoint per sampled light edge. -----
	var lights []lightSample
	var lightVerts []int
	for _, e := range sample {
		de := edgeDeg(e)
		if float64(de) >= theta {
			continue // heavy edge: its attributed triangles are counted exactly
		}
		ls := lightSample{edge: e, deg: de}
		if degreeOf(e.U) <= degreeOf(e.V) {
			ls.light, ls.other = e.U, e.V
		} else {
			ls.light, ls.other = e.V, e.U
		}
		lights = append(lights, ls)
		lightVerts = append(lightVerts, ls.light)
	}
	meter.Charge(int64(len(lights)) * 8 * stream.WordsPerScalar)

	if len(lights) > 0 {
		lightGroups := graph.NewVertexGroups(lightVerts)
		if _, err := stream.ForEachBatch(counter, func(batch []graph.Edge) error {
			for _, e := range batch {
				for _, idx := range lightGroups.Lookup(e.U) {
					lights[idx].offer(e.V, rng)
				}
				for _, idx := range lightGroups.Lookup(e.V) {
					lights[idx].offer(e.U, rng)
				}
			}
			return nil
		}); err != nil {
			return res, err
		}

		// ----- Pass 4: closure checks. -----
		var closureKeys []graph.Edge
		var closureItem []int32
		for i := range lights {
			ls := &lights[i]
			if !ls.hasW || ls.w == ls.other {
				ls.hasW = false
				continue
			}
			closureKeys = append(closureKeys, graph.NewEdge(ls.other, ls.w))
			closureItem = append(closureItem, int32(i))
		}
		closure := graph.NewEdgeIndex(closureKeys)
		meter.Charge(int64(closure.Keys()) * (stream.WordsPerEdge + stream.WordsPerScalar))
		if _, err := stream.ForEachBatch(counter, func(batch []graph.Edge) error {
			for _, e := range batch {
				for _, it := range closure.Lookup(e.Normalize()) {
					lights[closureItem[it]].closed = true
				}
			}
			return nil
		}); err != nil {
			return res, err
		}
	}

	// Light contribution: accept a discovered triangle only when the sampled
	// edge is the triangle's attributed (minimum-degree, lexicographically
	// smallest) edge.
	var lightEstimate float64
	found := int(heavyTriangles)
	for i := range lights {
		ls := &lights[i]
		if !ls.closed {
			continue
		}
		found++
		tri := graph.NewTriangle(ls.edge.U, ls.edge.V, ls.w)
		attributed := minDegreeEdge(tri, edgeDeg)
		if attributed == ls.edge {
			lightEstimate += float64(ls.deg) * float64(m) / float64(r)
			res.TrianglesAssigned++
		}
	}

	res.Estimate = lightEstimate + float64(heavyTriangles)
	res.Passes = counter.Passes()
	res.SpaceWords = meter.Peak()
	res.TrianglesFound = found
	res.Instances = len(lights)
	return res, nil
}

// sparseDegreeTable counts occurrences of vertex IDs beyond the dense-slice
// budget without a hash map in the hot loop: adds land in an append buffer
// that is sort-merged into the sorted (keys, counts) arrays whenever it
// fills, so memory is O(distinct + chunk) even when a stream holds millions
// of out-of-range endpoints. Lookups binary-search the sorted keys after a
// final flush.
type sparseDegreeTable struct {
	keys    []int
	counts  []int32
	pending []int
}

// sparsePendingChunk bounds the unsorted buffer between merges.
const sparsePendingChunk = 1 << 16

func (t *sparseDegreeTable) add(v int) {
	t.pending = append(t.pending, v)
	if len(t.pending) >= sparsePendingChunk {
		t.flush()
	}
}

// flush folds the pending occurrences into the sorted arrays (two-pointer
// merge of the run-length-encoded pending batch with the existing table).
func (t *sparseDegreeTable) flush() {
	if len(t.pending) == 0 {
		return
	}
	sort.Ints(t.pending)
	mergedKeys := make([]int, 0, len(t.keys)+len(t.pending))
	mergedCounts := make([]int32, 0, len(t.counts)+len(t.pending))
	i, j := 0, 0
	for i < len(t.keys) || j < len(t.pending) {
		switch {
		case j == len(t.pending) || (i < len(t.keys) && t.keys[i] < t.pending[j]):
			mergedKeys = append(mergedKeys, t.keys[i])
			mergedCounts = append(mergedCounts, t.counts[i])
			i++
		default:
			key := t.pending[j]
			var n int32
			for j < len(t.pending) && t.pending[j] == key {
				n++
				j++
			}
			if i < len(t.keys) && t.keys[i] == key {
				n += t.counts[i]
				i++
			}
			mergedKeys = append(mergedKeys, key)
			mergedCounts = append(mergedCounts, n)
		}
	}
	t.keys, t.counts = mergedKeys, mergedCounts
	t.pending = t.pending[:0]
}

// get returns the count of v. It must only be called after a flush (the
// estimator flushes once at the end of pass 1).
func (t *sparseDegreeTable) get(v int) int {
	if i := graph.FindSorted(t.keys, v); i >= 0 {
		return int(t.counts[i])
	}
	return 0
}

// lightSample is the per-sampled-light-edge state of the HeavyLight
// estimator: a size-1 neighbor reservoir plus the closure outcome.
type lightSample struct {
	edge   graph.Edge
	light  int
	other  int
	deg    int
	seen   int64
	w      int
	hasW   bool
	closed bool
}

func (ls *lightSample) offer(v int, rng *sampling.RNG) {
	ls.seen++
	if rng.Int63n(ls.seen) == 0 {
		ls.w = v
		ls.hasW = true
	}
}

// minDegreeEdge returns the triangle's edge with the minimum edge degree,
// breaking ties lexicographically.
func minDegreeEdge(t graph.Triangle, edgeDeg func(graph.Edge) int) graph.Edge {
	edges := t.Edges()
	best := edges[0]
	bestDeg := edgeDeg(best)
	for _, e := range edges[1:] {
		d := edgeDeg(e)
		if d < bestDeg || (d == bestDeg && (e.U < best.U || (e.U == best.U && e.V < best.V))) {
			best, bestDeg = e, d
		}
	}
	return best
}

func (ls *lightSample) String() string {
	return fmt.Sprintf("lightSample(%v)", ls.edge)
}
