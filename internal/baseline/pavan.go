package baseline

import (
	"fmt"

	"degentri/internal/core"
	"degentri/internal/graph"
	"degentri/internal/sampling"
	"degentri/internal/stream"
)

// NeighborSamplingConfig configures the one-pass neighbor-sampling estimator.
type NeighborSamplingConfig struct {
	// Estimators is the number of parallel estimator copies (the space is
	// proportional to it; Θ(m∆/(ε²T)) copies give a (1±ε) estimate).
	Estimators int
	// Groups > 1 aggregates the copies by median-of-means instead of the
	// plain mean.
	Groups int
	// Seed drives all sampling.
	Seed uint64
}

// neighborEstimator is the O(1)-space state of one copy of the Pavan et al.
// estimator.
type neighborEstimator struct {
	r1      graph.Edge
	hasR1   bool
	seen1   int64 // edges seen so far (for the level-1 reservoir)
	c       int64 // edges adjacent to r1 seen after r1 was sampled
	r2      graph.Edge
	hasR2   bool
	closing graph.Edge // the edge that would close the wedge (r1, r2)
	closed  bool
}

// NeighborSampling implements the single-pass neighbor-sampling estimator of
// Pavan, Tangwongsan, Tirthapura, Wu (VLDB 2013). Each copy reservoir-samples
// an edge r1, then reservoir-samples an edge r2 among the later edges that
// share an endpoint with r1 (tracking their number c), and finally watches
// for the unique edge that closes the wedge {r1, r2}. The per-copy estimate
// is m·c when the wedge closed and 0 otherwise; every triangle is counted via
// its stream-order-first two edges, so the estimator is unbiased. Accuracy to
// (1±ε) requires Θ(m∆/(ε²T)) copies — the ∆ dependence is what the paper's
// degeneracy-based algorithm removes.
func NeighborSampling(src stream.Stream, cfg NeighborSamplingConfig) (core.Result, error) {
	if cfg.Estimators < 1 {
		return core.Result{}, fmt.Errorf("baseline: neighbor sampling needs at least one estimator, got %d", cfg.Estimators)
	}
	rng := sampling.NewRNG(cfg.Seed)
	meter := stream.NewSpaceMeter()
	counter := stream.NewPassCounter(src)

	copies := make([]*neighborEstimator, cfg.Estimators)
	for i := range copies {
		copies[i] = &neighborEstimator{}
	}
	// Each copy stores two edges, one candidate closing edge, and a few
	// scalars.
	meter.Charge(int64(cfg.Estimators) * (3*stream.WordsPerEdge + 4*stream.WordsPerScalar))

	m, err := stream.ForEach(counter, func(e graph.Edge) error {
		e = e.Normalize()
		for _, est := range copies {
			est.observe(e, rng)
		}
		return nil
	})
	if err != nil {
		return core.Result{}, err
	}

	values := make([]float64, len(copies))
	found := 0
	for i, est := range copies {
		if est.closed {
			values[i] = float64(m) * float64(est.c)
			found++
		}
	}
	estimate := sampling.MedianOfMeans(values, cfg.Groups)
	return core.Result{
		Estimate:       estimate,
		Passes:         counter.Passes(),
		SpaceWords:     meter.Peak(),
		EdgesInStream:  m,
		Instances:      cfg.Estimators,
		TrianglesFound: found,
	}, nil
}

// observe advances one estimator copy by one stream edge.
func (est *neighborEstimator) observe(e graph.Edge, rng *sampling.RNG) {
	// Level-1 reservoir over all edges.
	est.seen1++
	if rng.Int63n(est.seen1) == 0 {
		est.r1 = e
		est.hasR1 = true
		est.c = 0
		est.hasR2 = false
		est.closed = false
		return // r1 was just (re)sampled; e cannot also be a level-2 edge.
	}
	if !est.hasR1 {
		return
	}
	// Closure check for the current wedge must happen before potentially
	// replacing r2: the closing edge must arrive after r2.
	if est.hasR2 && !est.closed && e == est.closing {
		est.closed = true
	}
	// Level-2 reservoir over edges adjacent to r1 arriving after r1.
	if sharesEndpoint(e, est.r1) {
		est.c++
		if rng.Int63n(est.c) == 0 {
			est.r2 = e
			est.hasR2 = true
			est.closed = false
			est.closing = wedgeClosingEdge(est.r1, est.r2)
		}
	}
}

// sharesEndpoint reports whether two distinct edges share exactly one
// endpoint (i.e. they form a wedge).
func sharesEndpoint(a, b graph.Edge) bool {
	if a == b {
		return false
	}
	return a.U == b.U || a.U == b.V || a.V == b.U || a.V == b.V
}

// wedgeClosingEdge returns the edge joining the two non-shared endpoints of a
// wedge. If the edges do not form a wedge it returns an impossible edge that
// never matches a stream edge.
func wedgeClosingEdge(a, b graph.Edge) graph.Edge {
	var shared int
	switch {
	case a.U == b.U || a.U == b.V:
		shared = a.U
	case a.V == b.U || a.V == b.V:
		shared = a.V
	default:
		return graph.Edge{U: -1, V: -1}
	}
	return graph.NewEdge(a.Other(shared), b.Other(shared))
}
