package baseline

import (
	"fmt"
	"math"

	"degentri/internal/core"
	"degentri/internal/graph"
	"degentri/internal/sampling"
	"degentri/internal/stream"
)

// NeighborSamplingConfig configures the one-pass neighbor-sampling estimator.
type NeighborSamplingConfig struct {
	// Estimators is the number of parallel estimator copies (the space is
	// proportional to it; Θ(m∆/(ε²T)) copies give a (1±ε) estimate).
	Estimators int
	// Groups > 1 aggregates the copies by median-of-means instead of the
	// plain mean.
	Groups int
	// Seed drives all sampling.
	Seed uint64
}

// neighborCopies is the state of all estimator copies in struct-of-arrays
// layout: the per-edge loop touches every copy, so the state is packed into
// parallel arrays (uint32 endpoint halves, one packed word for the closing
// edge) to minimize memory traffic.
//
// Both reservoirs use skip-ahead stepping: instead of drawing one random
// number per candidate (accept the t-th candidate with probability 1/t), a
// copy precomputes the index of its next acceptance. For a size-1 reservoir
// the next accepted index T after an acceptance at t satisfies
// P(T > j) = t/j, so T = ⌈t/U⌉ for U uniform in (0,1) — one draw per
// acceptance, ~ln(m) draws per pass instead of m, with exactly the same
// output distribution.
type neighborCopies struct {
	r1      []uint64 // packed level-1 sampled edge r1 (U in the high half)
	closing []uint64 // packed closing edge, or a marker (see below)
	level2  []level2State
}

// level2State keeps a copy's adjacency counter next to its scheduled
// acceptance so the adjacency-hit path touches one cache line.
type level2State struct {
	c    int64 // edges adjacent to r1 seen after r1 was sampled
	next int64 // value of c at the next level-2 acceptance
}

// acceptanceHeap schedules level-1 reservoir acceptances: a min-heap of
// (position << 32 | copy) words. Ties pop in copy order, matching a
// sequential per-copy scan.
type acceptanceHeap struct {
	a []uint64
}

// Heap entries pack the position into the high 40 bits and the copy index
// into the low 24. A copy whose next acceptance lands beyond acceptHorizon
// is retired from level-1 scheduling instead of being re-queued: re-queuing
// it at a clamped position would make it due again on the same edge forever
// once the stream actually reached that position. The horizon (2^40 edges,
// ~17 TB of text) is beyond any stream this repository can replay.
const (
	acceptHorizon = int64(1) << 40
	copyIndexBits = 24
	maxCopies     = 1<<copyIndexBits - 1
)

func newAcceptanceHeap(k int) *acceptanceHeap {
	h := &acceptanceHeap{a: make([]uint64, k)}
	for i := 0; i < k; i++ {
		h.a[i] = 1<<copyIndexBits | uint64(i) // position 1 for every copy; already heap-ordered
	}
	return h
}

// duePos returns the smallest scheduled position (0 when empty).
func (h *acceptanceHeap) duePos() int64 {
	if len(h.a) == 0 {
		return 0
	}
	return int64(h.a[0] >> copyIndexBits)
}

// popCopy removes the minimum entry and returns its copy index.
func (h *acceptanceHeap) popCopy() int {
	root := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	// Sift down.
	i := 0
	for {
		l := 2*i + 1
		if l >= last {
			break
		}
		if r := l + 1; r < last && h.a[r] < h.a[l] {
			l = r
		}
		if h.a[i] <= h.a[l] {
			break
		}
		h.a[i], h.a[l] = h.a[l], h.a[i]
		i = l
	}
	return int(root & maxCopies)
}

// push schedules copy i at the given position; positions past the horizon
// are dropped (the copy keeps its current r1 for the rest of the run).
func (h *acceptanceHeap) push(pos int64, i int) {
	if pos >= acceptHorizon {
		return
	}
	h.a = append(h.a, uint64(pos)<<copyIndexBits|uint64(i))
	// Sift up.
	c := len(h.a) - 1
	for c > 0 {
		p := (c - 1) / 2
		if h.a[p] <= h.a[c] {
			break
		}
		h.a[p], h.a[c] = h.a[c], h.a[p]
		c = p
	}
}

// closing markers: bit 63 never appears in a packed edge (endpoints fit in
// 32 bits), so these values cannot collide with a real key.
const (
	noWedge     = uint64(1) << 63 // no level-2 edge sampled yet
	wedgeClosed = noWedge + 1     // the current wedge's closing edge arrived
)

// reservoirSkip returns the index of the next acceptance of a size-1
// reservoir whose last acceptance was at index t >= 1.
func reservoirSkip(t int64, rng *sampling.RNG) int64 {
	next := int64(math.Ceil(float64(t) / rng.Float64Open()))
	if next <= t { // guard against rounding at U ≈ 1
		next = t + 1
	}
	return next
}

// NeighborSampling implements the single-pass neighbor-sampling estimator of
// Pavan, Tangwongsan, Tirthapura, Wu (VLDB 2013). Each copy reservoir-samples
// an edge r1, then reservoir-samples an edge r2 among the later edges that
// share an endpoint with r1 (tracking their number c), and finally watches
// for the unique edge that closes the wedge {r1, r2}. The per-copy estimate
// is m·c when the wedge closed and 0 otherwise; every triangle is counted via
// its stream-order-first two edges, so the estimator is unbiased. Accuracy to
// (1±ε) requires Θ(m∆/(ε²T)) copies — the ∆ dependence is what the paper's
// degeneracy-based algorithm removes.
//
// Vertex IDs must fit in 32 bits (they are dense array indices everywhere in
// this repository); larger IDs are rejected with an error.
func NeighborSampling(src stream.Stream, cfg NeighborSamplingConfig) (core.Result, error) {
	if cfg.Estimators < 1 {
		return core.Result{}, fmt.Errorf("baseline: neighbor sampling needs at least one estimator, got %d", cfg.Estimators)
	}
	if cfg.Estimators > maxCopies {
		return core.Result{}, fmt.Errorf("baseline: neighbor sampling supports at most %d estimators, got %d", maxCopies, cfg.Estimators)
	}
	rng := sampling.NewRNG(cfg.Seed)
	meter := stream.NewSpaceMeter()
	counter := stream.NewPassCounter(src)

	k := cfg.Estimators
	copies := neighborCopies{
		r1:      make([]uint64, k),
		closing: make([]uint64, k),
		level2:  make([]level2State, k),
	}
	for i := 0; i < k; i++ {
		copies.closing[i] = noWedge
	}
	// Each copy stores two edges, one candidate closing edge, and a few
	// scalars.
	meter.Charge(int64(k) * (3*stream.WordsPerEdge + 4*stream.WordsPerScalar))

	// Level-1 acceptances are scheduled on a min-heap of (position, copy)
	// pairs packed into one word, so the per-copy inner loop never has to
	// test its own next acceptance: a copy whose r1 was just replaced by the
	// current edge is skipped naturally (closing was reset to a marker and
	// the adjacency test excludes e == r1). Acceptances past acceptHorizon
	// are dropped from the heap entirely — see the constant's comment.
	heap := newAcceptanceHeap(k)

	var pos int64
	m, err := stream.ForEachBatch(counter, func(batch []graph.Edge) error {
		for _, e := range batch {
			e = e.Normalize()
			if uint64(e.U) > 0xffffffff || uint64(e.V) > 0xffffffff {
				return fmt.Errorf("baseline: neighbor sampling: vertex id in %v exceeds 32 bits", e)
			}
			eu, ev := uint32(e.U), uint32(e.V)
			pe := uint64(eu)<<32 | uint64(ev)
			pos++
			// Level-1 reservoir over all edges: pop every copy whose
			// precomputed acceptance ("accept with probability 1/pos") is
			// due at this position.
			for heap.duePos() == pos {
				i := heap.popCopy()
				copies.r1[i] = pe
				copies.level2[i] = level2State{c: 0, next: 1}
				copies.closing[i] = noWedge
				heap.push(reservoirSkip(pos, rng), i)
			}
			// Per-copy hot loop: the common path is one packed load of r1
			// and four compares. The closure check lives on the adjacency
			// path only — a wedge's closing edge always shares the wedge's
			// non-apex endpoint with r1, so a non-adjacent edge can never
			// close it. Markers cannot equal a packed edge, so one compare
			// covers "has an open wedge and e closes it", and it must come
			// before a potential r2 replacement (the closing edge has to
			// arrive after r2).
			r1 := copies.r1
			for i := range r1 {
				p := r1[i]
				a, b := uint32(p>>32), uint32(p)
				if eu != a && eu != b && ev != a && ev != b {
					continue
				}
				if p == pe {
					// e == r1 cannot recur in the unrepeated-edge model,
					// but stay faithful to the scalar state machine.
					continue
				}
				if copies.closing[i] == pe {
					copies.closing[i] = wedgeClosed
				}
				// Level-2 reservoir over edges adjacent to r1 arriving
				// after r1.
				l2 := &copies.level2[i]
				l2.c++
				if l2.c == l2.next {
					l2.next = reservoirSkip(l2.c, rng)
					copies.closing[i] = packWedgeClosing(a, b, eu, ev)
				}
			}
		}
		return nil
	})
	if err != nil {
		return core.Result{}, err
	}

	values := make([]float64, k)
	found := 0
	for i := 0; i < k; i++ {
		if copies.closing[i] == wedgeClosed {
			values[i] = float64(m) * float64(copies.level2[i].c)
			found++
		}
	}
	estimate := sampling.MedianOfMeans(values, cfg.Groups)
	return core.Result{
		Estimate:       estimate,
		Passes:         counter.Passes(),
		SpaceWords:     meter.Peak(),
		EdgesInStream:  m,
		Instances:      cfg.Estimators,
		TrianglesFound: found,
	}, nil
}

// packWedgeClosing returns the packed edge joining the non-shared endpoints
// of the wedge formed by r1 = {a, b} and the adjacent edge {eu, ev}. When the
// two edges are parallel (impossible for distinct simple edges) the result is
// a degenerate self-loop key that never matches a stream edge, matching the
// defensive behaviour of the scalar implementation.
func packWedgeClosing(a, b, eu, ev uint32) uint64 {
	var o1, o2 uint32
	if a == eu {
		o1, o2 = b, ev
	} else if a == ev {
		o1, o2 = b, eu
	} else if b == eu {
		o1, o2 = a, ev
	} else {
		o1, o2 = a, eu
	}
	if o1 > o2 {
		o1, o2 = o2, o1
	}
	return uint64(o1)<<32 | uint64(o2)
}

// sharesEndpoint reports whether two distinct edges share exactly one
// endpoint (i.e. they form a wedge).
func sharesEndpoint(a, b graph.Edge) bool {
	if a == b {
		return false
	}
	return a.U == b.U || a.U == b.V || a.V == b.U || a.V == b.V
}

// wedgeClosingEdge returns the edge joining the two non-shared endpoints of a
// wedge. If the edges do not form a wedge it returns an impossible edge that
// never matches a stream edge.
func wedgeClosingEdge(a, b graph.Edge) graph.Edge {
	var shared int
	switch {
	case a.U == b.U || a.U == b.V:
		shared = a.U
	case a.V == b.U || a.V == b.V:
		shared = a.V
	default:
		return graph.Edge{U: -1, V: -1}
	}
	return graph.NewEdge(a.Other(shared), b.Other(shared))
}
