package graph

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// TriangleCount returns the exact number of triangles T in the graph using
// the degeneracy-oriented node iterator: every edge is oriented along a
// degeneracy ordering, and for every vertex the intersections of out-
// neighborhoods are counted. The total work is O(mκ), matching
// Chiba–Nishizeki up to constants, spread over GOMAXPROCS workers (the
// per-vertex counts are independent and their int64 sum is exact, so the
// result is identical at any worker count).
func (g *Graph) TriangleCount() int64 {
	return g.TriangleCountWorkers(0)
}

// triangleCountChunk is the vertex-range granularity of the parallel
// counter: small enough to balance skewed out-degree distributions, large
// enough that the claim counter is not contended.
const triangleCountChunk = 1024

// TriangleCountWorkers is TriangleCount with an explicit worker count;
// workers <= 0 selects GOMAXPROCS. Workers claim contiguous vertex ranges and
// sum per-range counts, so ground-truth computation scales with cores instead
// of dominating experiment wall-clock.
func (g *Graph) TriangleCountWorkers(workers int) int64 {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	out, _ := g.DegeneracyOrientation()

	countRange := func(lo, hi int) int64 {
		var count int64
		for v := lo; v < hi; v++ {
			ov := out[v]
			for _, w := range ov {
				count += int64(sortedIntersectionSize(ov, out[w]))
			}
		}
		return count
	}

	if workers == 1 || g.n < 2*triangleCountChunk {
		for v := range out {
			sort.Ints(out[v])
		}
		return countRange(0, g.n)
	}

	// Phase 1: sort out-neighbor lists so pairwise intersection is a sorted
	// merge; each vertex's list is touched by exactly one worker.
	// Phase 2: count over claimed vertex ranges. Both phases hand out chunks
	// through an atomic cursor.
	chunks := (g.n + triangleCountChunk - 1) / triangleCountChunk
	runPhase := func(phase func(lo, hi int)) {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					c := int(next.Add(1)) - 1
					if c >= chunks {
						return
					}
					lo := c * triangleCountChunk
					hi := min(lo+triangleCountChunk, g.n)
					phase(lo, hi)
				}
			}()
		}
		wg.Wait()
	}

	runPhase(func(lo, hi int) {
		for v := lo; v < hi; v++ {
			sort.Ints(out[v])
		}
	})
	var total atomic.Int64
	runPhase(func(lo, hi int) {
		total.Add(countRange(lo, hi))
	})
	return total.Load()
}

// TriangleCountBrute counts triangles by enumerating all vertex triples that
// are pairwise adjacent. It is O(n^3) and exists purely as an independent
// cross-check for small graphs in tests.
func (g *Graph) TriangleCountBrute() int64 {
	var count int64
	for a := 0; a < g.n; a++ {
		for b := a + 1; b < g.n; b++ {
			if !g.HasEdge(a, b) {
				continue
			}
			for c := b + 1; c < g.n; c++ {
				if g.HasEdge(a, c) && g.HasEdge(b, c) {
					count++
				}
			}
		}
	}
	return count
}

// EdgeTriangleCounts returns t_e, the number of triangles containing each
// edge, indexed in the graph's canonical edge order (see Edges). The sum of
// all t_e equals 3T. The computation intersects sorted neighborhoods per
// edge, i.e. the Chiba–Nishizeki edge iterator, in O(Σ_e d_e) = O(mκ) time.
func (g *Graph) EdgeTriangleCounts() []int64 {
	counts := make([]int64, len(g.edges))
	for i, e := range g.edges {
		counts[i] = int64(sortedIntersectionSize(g.Neighbors(e.U), g.Neighbors(e.V)))
	}
	return counts
}

// EdgeTriangleCountMap returns t_e keyed by normalized edge. It is a
// convenience wrapper around EdgeTriangleCounts for callers that look edges
// up by value rather than by index.
func (g *Graph) EdgeTriangleCountMap() map[Edge]int64 {
	m := make(map[Edge]int64, len(g.edges))
	counts := g.EdgeTriangleCounts()
	for i, e := range g.edges {
		m[e] = counts[i]
	}
	return m
}

// TrianglesOfEdge returns the number of triangles containing the given edge,
// i.e. |N(u) ∩ N(v)|. It returns 0 if e is not an edge of the graph.
func (g *Graph) TrianglesOfEdge(e Edge) int64 {
	if !g.HasEdge(e.U, e.V) {
		return 0
	}
	return int64(sortedIntersectionSize(g.Neighbors(e.U), g.Neighbors(e.V)))
}

// MaxEdgeTriangleCount returns J = max_e t_e, the maximum number of triangles
// incident on a single edge (the parameter of Pagh–Tsourakakis in Table 1).
func (g *Graph) MaxEdgeTriangleCount() int64 {
	var max int64
	for _, e := range g.edges {
		if t := g.TrianglesOfEdge(e); t > max {
			max = t
		}
	}
	return max
}

// ListTriangles enumerates every triangle exactly once (vertices sorted
// within each triangle) using the degeneracy orientation. For graphs with
// many triangles this allocates Θ(T) memory; use TriangleCount when only the
// number is needed.
func (g *Graph) ListTriangles() []Triangle {
	out, cd := g.DegeneracyOrientation()
	for v := range out {
		sort.Ints(out[v])
	}
	var tris []Triangle
	for v := 0; v < g.n; v++ {
		ov := out[v]
		for _, w := range ov {
			ow := out[w]
			i, j := 0, 0
			for i < len(ov) && j < len(ow) {
				switch {
				case ov[i] < ow[j]:
					i++
				case ov[i] > ow[j]:
					j++
				default:
					tris = append(tris, NewTriangle(v, w, ov[i]))
					i++
					j++
				}
			}
		}
	}
	_ = cd
	return tris
}

// IsTriangle reports whether the three vertices are pairwise adjacent.
func (g *Graph) IsTriangle(a, b, c int) bool {
	if a == b || b == c || a == c {
		return false
	}
	return g.HasEdge(a, b) && g.HasEdge(b, c) && g.HasEdge(a, c)
}

// ClosesTriangle reports whether vertex w forms a triangle with edge e, i.e.
// w is adjacent to both endpoints of e and distinct from them.
func (g *Graph) ClosesTriangle(e Edge, w int) bool {
	if w == e.U || w == e.V || w < 0 || w >= g.n {
		return false
	}
	return g.HasEdge(e.U, w) && g.HasEdge(e.V, w)
}

// GlobalClusteringCoefficient returns 3T / W where W is the number of wedges;
// it is 0 for wedge-free graphs. Included because triangle counting papers
// (and downstream users) typically report it alongside T.
func (g *Graph) GlobalClusteringCoefficient() float64 {
	w := g.Wedges()
	if w == 0 {
		return 0
	}
	return 3 * float64(g.TriangleCount()) / float64(w)
}

// sortedIntersectionSize returns |a ∩ b| for two sorted int slices.
func sortedIntersectionSize(a, b []int) int {
	i, j, c := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			c++
			i++
			j++
		}
	}
	return c
}
