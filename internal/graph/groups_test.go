package graph

import (
	"slices"
	"testing"
)

func TestFindSorted(t *testing.T) {
	a := []int{2, 5, 9, 11, 40}
	for i, v := range a {
		if got := FindSorted(a, v); got != i {
			t.Errorf("FindSorted(%d) = %d, want %d", v, got, i)
		}
	}
	for _, v := range []int{-3, 0, 3, 10, 41} {
		if got := FindSorted(a, v); got != -1 {
			t.Errorf("FindSorted(%d) = %d, want -1", v, got)
		}
	}
	if FindSorted(nil, 1) != -1 {
		t.Error("FindSorted on empty slice should return -1")
	}
}

// sortedCounterKeys returns dense and sparse key sets: the sparse one forces
// the binary-search fallback (no rank table).
func sortedCounterKeys() map[string][]int {
	sparse := []int{0, 7, rankTableLimit + 5, rankTableLimit * 3}
	dense := []int{5, 1, 9, 5, 3, 1}
	return map[string][]int{"dense": dense, "sparse": sparse}
}

func TestSortedCounter(t *testing.T) {
	for name, keys := range sortedCounterKeys() {
		orig := slices.Clone(keys)
		c := NewSortedCounter(slices.Clone(keys))
		distinct := slices.Clone(orig)
		slices.Sort(distinct)
		distinct = slices.Compact(distinct)
		if c.Len() != len(distinct) {
			t.Fatalf("%s: Len = %d, want %d", name, c.Len(), len(distinct))
		}
		for _, v := range distinct {
			c.Inc(v)
			c.Inc(v)
		}
		c.Inc(distinct[len(distinct)-1] + 1) // untracked: no-op
		c.Inc(-1)                            // untracked: no-op
		for _, v := range distinct {
			if n, ok := c.Get(v); !ok || n != 2 {
				t.Errorf("%s: Get(%d) = %d,%v, want 2,true", name, v, n, ok)
			}
		}
		if _, ok := c.Get(distinct[0] - 1); ok {
			t.Errorf("%s: Get of untracked key reported ok", name)
		}
	}
}

func TestVertexGroupsOrderAndLookup(t *testing.T) {
	// Items grouped per vertex must keep insertion order.
	vertexOf := []int{4, 2, 4, 9, 2, 4}
	g := NewVertexGroups(vertexOf)
	if g.Groups() != 3 {
		t.Fatalf("Groups = %d, want 3", g.Groups())
	}
	want := map[int][]int32{
		2: {1, 4},
		4: {0, 2, 5},
		9: {3},
	}
	for v, items := range want {
		if got := g.Lookup(v); !slices.Equal(got, items) {
			t.Errorf("Lookup(%d) = %v, want %v", v, got, items)
		}
	}
	for _, v := range []int{-1, 0, 3, 10} {
		if g.Lookup(v) != nil {
			t.Errorf("Lookup(%d) should be nil", v)
		}
	}
}

func TestVertexGroupsSparseFallback(t *testing.T) {
	big := rankTableLimit + 17
	g := NewVertexGroups([]int{big, 3, big})
	if !slices.Equal(g.Lookup(big), []int32{0, 2}) || !slices.Equal(g.Lookup(3), []int32{1}) {
		t.Error("sparse VertexGroups lookups wrong")
	}
	if g.Lookup(big-1) != nil {
		t.Error("sparse VertexGroups miss should be nil")
	}
}

func TestEdgeIndex(t *testing.T) {
	edges := []Edge{
		NewEdge(3, 1), // item 0, key (1,3)
		NewEdge(0, 2), // item 1
		NewEdge(1, 3), // item 2, same key as item 0
		{U: 9, V: 4},  // item 3, unnormalized input
	}
	ix := NewEdgeIndex(edges)
	if ix.Keys() != 3 {
		t.Fatalf("Keys = %d, want 3", ix.Keys())
	}
	if got := ix.Lookup(NewEdge(1, 3)); !slices.Equal(got, []int32{0, 2}) {
		t.Errorf("Lookup(1,3) = %v, want [0 2]", got)
	}
	if got := ix.Lookup(NewEdge(4, 9)); !slices.Equal(got, []int32{3}) {
		t.Errorf("Lookup(4,9) = %v, want [3]", got)
	}
	for _, e := range []Edge{NewEdge(0, 1), NewEdge(2, 3), {U: -1, V: 5}} {
		if ix.Lookup(e) != nil {
			t.Errorf("Lookup(%v) should be nil", e)
		}
	}
	if NewEdgeIndex(nil).Lookup(NewEdge(0, 1)) != nil {
		t.Error("empty index lookup should be nil")
	}
}

func TestEdgeIndexUnpackableFallback(t *testing.T) {
	huge := int(1) << 40
	edges := []Edge{NewEdge(huge, 1), NewEdge(0, 2)}
	ix := NewEdgeIndex(edges)
	if got := ix.Lookup(NewEdge(1, huge)); !slices.Equal(got, []int32{0}) {
		t.Errorf("Lookup(huge edge) = %v, want [0]", got)
	}
	if got := ix.Lookup(NewEdge(0, 2)); !slices.Equal(got, []int32{1}) {
		t.Errorf("Lookup(0,2) = %v, want [1]", got)
	}
	if ix.Lookup(NewEdge(1, 2)) != nil {
		t.Error("miss should be nil")
	}
}
