package graph

import (
	"slices"

	"degentri/internal/radix"
)

// This file provides the small dense lookup structures the streaming
// estimators use in their per-edge hot loops in place of hash maps: a sorted
// key array with an optional direct-index rank table (SortedCounter),
// vertex-keyed item groups (VertexGroups) and edge-keyed item groups
// (EdgeIndex), the latter two in the same offsets+items CSR layout as Graph
// itself. Vertex IDs are dense integers throughout this repository, so the
// rank table — rank[v] = position of v among the sorted keys, plus one —
// usually applies and a lookup is a single bounds-checked array read; when
// the ID space is too sparse for a table the structures fall back to binary
// search over the sorted keys.

// rankTableLimit bounds the direct-index rank table: the table covers
// [0, maxKey] and is built whenever that range stays within a flat 8M-entry
// (32 MB) budget — an int32 per possible vertex is cheap next to the O(n+m)
// graph itself, and the O(1) lookup beats binary search by an order of
// magnitude in the per-edge loops. Beyond the budget (sparse or huge ID
// spaces), lookups binary-search the sorted keys.
const rankTableLimit = 1 << 23

// buildRank returns the rank table for the sorted distinct keys, or nil when
// the key range is too sparse.
func buildRank(sorted []int) []int32 {
	if len(sorted) == 0 || sorted[0] < 0 {
		return nil
	}
	maxKey := sorted[len(sorted)-1]
	if maxKey+1 > rankTableLimit {
		return nil
	}
	rank := make([]int32, maxKey+1)
	for i, v := range sorted {
		rank[v] = int32(i) + 1
	}
	return rank
}

// FindSorted returns the index of v in the sorted slice a, or -1 when v is
// absent.
func FindSorted(a []int, v int) int {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(a) && a[lo] == v {
		return lo
	}
	return -1
}

// findRanked locates v using the rank table when present, falling back to
// binary search.
func findRanked(sorted []int, rank []int32, v int) int {
	if rank != nil {
		if v < 0 || v >= len(rank) {
			return -1
		}
		return int(rank[v]) - 1
	}
	return FindSorted(sorted, v)
}

// SortedCounter is a set of integer keys fixed at construction with one
// counter per key — the dense replacement for a map[int]int whose key set is
// known up front (e.g. "degrees of the endpoints of the sampled edges").
type SortedCounter struct {
	keys   []int
	counts []int
	rank   []int32
}

// NewSortedCounter builds a counter over the distinct values of keys, which
// is consumed (sorted in place).
func NewSortedCounter(keys []int) *SortedCounter {
	slices.Sort(keys)
	keys = slices.Compact(keys)
	return &SortedCounter{keys: keys, counts: make([]int, len(keys)), rank: buildRank(keys)}
}

// Fork returns a counter over the same key set with all counts zero. The key
// array and rank table are shared (they are read-only after construction), so
// a Fork is cheap: it is the per-shard accumulator of a sharded pass, merged
// back with Merge.
func (c *SortedCounter) Fork() *SortedCounter {
	return &SortedCounter{keys: c.keys, counts: make([]int, len(c.keys)), rank: c.rank}
}

// Merge adds the counts of other — a Fork of the same counter (or any counter
// with an identical key set) — into c. It panics if the key sets differ in
// size, which is a programming error in the caller.
func (c *SortedCounter) Merge(other *SortedCounter) {
	if len(other.counts) != len(c.counts) {
		panic("graph: SortedCounter.Merge with mismatched key sets")
	}
	for i, n := range other.counts {
		c.counts[i] += n
	}
}

// ResetCounts zeroes every count, letting a pooled Fork be reused.
func (c *SortedCounter) ResetCounts() {
	clear(c.counts)
}

// Len returns the number of distinct keys.
func (c *SortedCounter) Len() int { return len(c.keys) }

// Inc increments the counter of v if v is a tracked key.
func (c *SortedCounter) Inc(v int) {
	// Inlined fast path: one bounds-checked read of the rank table.
	if c.rank != nil {
		if uint(v) < uint(len(c.rank)) {
			if r := c.rank[v]; r > 0 {
				c.counts[r-1]++
			}
		}
		return
	}
	if i := FindSorted(c.keys, v); i >= 0 {
		c.counts[i]++
	}
}

// Get returns the count of v and whether v is a tracked key.
func (c *SortedCounter) Get(v int) (int, bool) {
	i := findRanked(c.keys, c.rank, v)
	if i < 0 {
		return 0, false
	}
	return c.counts[i], true
}

// VertexGroups maps vertices to groups of item indices, CSR style: the
// distinct vertices are sorted in verts, and the items of verts[i] are
// items[offsets[i]:offsets[i+1]], preserving the order in which the pairs
// were given. It replaces a map[int][]T built once and probed per stream
// edge.
type VertexGroups struct {
	verts   []int
	offsets []int32
	items   []int32
	rank    []int32
}

// NewVertexGroups groups items 0..len(vertexOf)-1 by their vertex: vertexOf[i]
// is the vertex of item i. Items of the same vertex keep their relative
// order, matching the append order of the map-based construction it
// replaces.
func NewVertexGroups(vertexOf []int) *VertexGroups {
	distinct := make([]int, len(vertexOf))
	copy(distinct, vertexOf)
	slices.Sort(distinct)
	distinct = slices.Compact(distinct)

	g := &VertexGroups{
		verts:   distinct,
		offsets: make([]int32, len(distinct)+1),
		items:   make([]int32, len(vertexOf)),
		rank:    buildRank(distinct),
	}
	for _, v := range vertexOf {
		g.offsets[findRanked(distinct, g.rank, v)+1]++
	}
	for i := 0; i < len(distinct); i++ {
		g.offsets[i+1] += g.offsets[i]
	}
	cursor := make([]int32, len(distinct))
	copy(cursor, g.offsets[:len(distinct)])
	for i, v := range vertexOf {
		slot := findRanked(distinct, g.rank, v)
		g.items[cursor[slot]] = int32(i)
		cursor[slot]++
	}
	return g
}

// Groups returns the number of distinct vertices.
func (g *VertexGroups) Groups() int { return len(g.verts) }

// Lookup returns the item indices grouped under v (nil when v is not a key).
// The returned slice aliases internal storage and must not be modified.
func (g *VertexGroups) Lookup(v int) []int32 {
	var i int
	if g.rank != nil {
		if uint(v) >= uint(len(g.rank)) {
			return nil
		}
		i = int(g.rank[v]) - 1
	} else {
		i = FindSorted(g.verts, v)
	}
	if i < 0 {
		return nil
	}
	return g.items[g.offsets[i]:g.offsets[i+1]]
}

// EdgeIndex maps normalized edges to groups of item indices, in the same
// CSR layout as VertexGroups. Edge keys are packed into uint64 (U in the
// high half) when both endpoints fit in 32 bits — always the case for the
// dense vertex IDs used here — so a lookup is a binary search over machine
// words. It replaces a map[Edge][]T probed once per stream edge (closure
// checks).
type EdgeIndex struct {
	packed  []uint64 // sorted packed keys; nil when some endpoint overflows
	keys    []Edge   // sorted keys, only populated when packed == nil
	offsets []int32
	items   []int32
	// Open-addressing hash over the packed keys (power-of-two table, linear
	// probing): table[slot] is the key's index in packed, plus one; 0 marks
	// an empty slot. Built only in the packed case.
	table []int32
	shift uint
}

// hashPacked mixes a packed edge key into a table slot (Fibonacci hashing).
func hashPacked(key uint64, shift uint) uint64 {
	return (key * 0x9e3779b97f4a7c15) >> shift
}

// edgePacks reports whether both endpoints fit in 32 bits, i.e. the edge can
// be packed into one comparable word.
func edgePacks(e Edge) bool {
	return uint64(e.U) <= 0xffffffff && uint64(e.V) <= 0xffffffff
}

// edgeItem pairs an edge key with the item it belongs to.
type edgeItem struct {
	key  Edge
	item int32
}

// NewEdgeIndex groups items by their (normalized) edge key: edgeOf[i] is the
// key of item i. Items with equal keys keep their relative order (the sort
// tiebreaks on the item index, which reproduces insertion order).
func NewEdgeIndex(edgeOf []Edge) *EdgeIndex {
	packable := true
	for _, e := range edgeOf {
		if !edgePacks(e.Normalize()) {
			packable = false
			break
		}
	}
	if packable {
		return newPackedEdgeIndex(edgeOf)
	}

	pairs := make([]edgeItem, len(edgeOf))
	for i, e := range edgeOf {
		pairs[i] = edgeItem{key: e.Normalize(), item: int32(i)}
	}
	slices.SortStableFunc(pairs, func(a, b edgeItem) int {
		return compareEdges(a.key, b.key)
	})
	ix := &EdgeIndex{items: make([]int32, len(pairs))}
	for i, p := range pairs {
		if i == 0 || p.key != pairs[i-1].key {
			ix.keys = append(ix.keys, p.key)
			ix.offsets = append(ix.offsets, int32(i))
		}
		ix.items[i] = p.item
	}
	ix.offsets = append(ix.offsets, int32(len(pairs)))
	return ix
}

// newPackedEdgeIndex is the common-case constructor: machine-word keys sorted
// by the shared LSD radix core (radix.SortPairs — the closure-check indexes
// of a big run hold millions of keys; items arrive in insertion order, so the
// stable sort preserves it within equal keys), and the probe table for O(1)
// lookups.
func newPackedEdgeIndex(edgeOf []Edge) *EdgeIndex {
	pairs := make([]radix.Pair, len(edgeOf))
	for i, e := range edgeOf {
		n := e.Normalize()
		pairs[i] = radix.Pair{Key: uint64(n.U)<<32 | uint64(n.V), Item: int32(i)}
	}
	radix.SortPairs(pairs)

	ix := &EdgeIndex{items: make([]int32, len(pairs))}
	for i, p := range pairs {
		if i == 0 || p.Key != pairs[i-1].Key {
			ix.packed = append(ix.packed, p.Key)
			ix.offsets = append(ix.offsets, int32(i))
		}
		ix.items[i] = p.Item
	}
	ix.offsets = append(ix.offsets, int32(len(pairs)))

	// Size the hash table at ≥2× the key count for short probe runs.
	bits := uint(2)
	for 1<<bits < 2*len(ix.packed) {
		bits++
	}
	ix.shift = 64 - bits
	ix.table = make([]int32, 1<<bits)
	mask := uint64(1<<bits - 1)
	for i, key := range ix.packed {
		slot := hashPacked(key, ix.shift)
		for ix.table[slot] != 0 {
			slot = (slot + 1) & mask
		}
		ix.table[slot] = int32(i) + 1
	}
	return ix
}

// Keys returns the number of distinct edge keys.
func (ix *EdgeIndex) Keys() int { return len(ix.offsets) - 1 }

// Lookup returns the item indices grouped under the normalized edge e (nil
// when e is not a key). The returned slice aliases internal storage and must
// not be modified.
func (ix *EdgeIndex) Lookup(e Edge) []int32 {
	if ix.packed != nil {
		if uint64(e.U) > 0xffffffff || uint64(e.V) > 0xffffffff {
			return nil
		}
		key := uint64(e.U)<<32 | uint64(e.V)
		mask := uint64(len(ix.table) - 1)
		slot := hashPacked(key, ix.shift)
		for {
			r := ix.table[slot]
			if r == 0 {
				return nil
			}
			if ix.packed[r-1] == key {
				return ix.items[ix.offsets[r-1]:ix.offsets[r]]
			}
			slot = (slot + 1) & mask
		}
	}
	lo, hi := 0, len(ix.keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if compareEdges(ix.keys[mid], e) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(ix.keys) && ix.keys[lo] == e {
		return ix.items[ix.offsets[lo]:ix.offsets[lo+1]]
	}
	return nil
}
