package graph_test

import (
	"testing"

	"degentri/internal/gen"
	"degentri/internal/graph"
)

// benchGraph is a preferential-attachment graph large enough that the build
// cost is dominated by sorting and CSR fill, not allocation noise.
func benchGraphEdges(b *testing.B) (int, []graph.Edge) {
	b.Helper()
	g := gen.HolmeKim(20000, 8, 0.7, 7)
	edges := make([]graph.Edge, g.NumEdges())
	copy(edges, g.Edges())
	return g.NumVertices(), edges
}

// BenchmarkGraphBuild measures Builder.Build from a pre-sorted edge list
// (the common case: re-building from another graph's canonical edge order).
func BenchmarkGraphBuild(b *testing.B) {
	n, edges := benchGraphEdges(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := graph.FromEdges(n, edges)
		if g.NumEdges() != len(edges) {
			b.Fatal("edge count mismatch")
		}
	}
	b.ReportMetric(float64(len(edges))*float64(b.N)/b.Elapsed().Seconds(), "edges/s")
}

// BenchmarkGraphBuildUnsorted measures Builder.Build from a reversed edge
// list, forcing the sort+dedup path.
func BenchmarkGraphBuildUnsorted(b *testing.B) {
	n, edges := benchGraphEdges(b)
	for i, j := 0, len(edges)-1; i < j; i, j = i+1, j-1 {
		edges[i], edges[j] = edges[j], edges[i]
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := graph.FromEdges(n, edges)
		if g.NumEdges() != len(edges) {
			b.Fatal("edge count mismatch")
		}
	}
	b.ReportMetric(float64(len(edges))*float64(b.N)/b.Elapsed().Seconds(), "edges/s")
}

// BenchmarkTriangleCount measures the exact Chiba–Nishizeki-style counter on
// the CSR graph (the ground-truth cost every experiment pays).
func BenchmarkTriangleCount(b *testing.B) {
	g := gen.HolmeKim(20000, 8, 0.7, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if g.TriangleCount() == 0 {
			b.Fatal("no triangles")
		}
	}
}
