package graph

import (
	"errors"
	"fmt"
	"slices"
	"sort"
)

// Graph is a simple undirected graph in compressed sparse row (CSR) form.
// Neighbor lists are sorted increasingly, which makes adjacency queries a
// binary search and triangle counting a sorted-merge intersection.
//
// The zero value is an empty graph; use NewBuilder (or FromEdges) to
// construct populated graphs.
type Graph struct {
	n       int
	offsets []int // len n+1
	neigh   []int // len 2m
	edges   []Edge
}

// Builder accumulates edges and produces a Graph. Duplicate edges and self
// loops are dropped (the model in the paper is a simple graph given as a list
// of unrepeated edges; builders tolerate dirty input for convenience).
//
// Edges are appended to a slice and sorted+deduplicated lazily (on Build or
// NumEdges), which makes AddEdge a few nanoseconds instead of a hash-map
// insert. The working memory is proportional to the number of AddEdge calls
// until the next dedup, not the number of distinct edges.
type Builder struct {
	n      int
	edges  []Edge
	sorted bool // edges is sorted and duplicate-free
}

// NewBuilder returns a Builder for a graph with at least n vertices. The
// vertex count grows automatically if edges mention larger vertex IDs.
func NewBuilder(n int) *Builder {
	if n < 0 {
		n = 0
	}
	return &Builder{n: n, sorted: true}
}

// AddEdge adds the undirected edge {u, v}. Self loops and duplicates are
// ignored. Negative vertex IDs are a programming error and panic.
func (b *Builder) AddEdge(u, v int) {
	if u < 0 || v < 0 {
		panic(fmt.Sprintf("graph: negative vertex id in edge (%d,%d)", u, v))
	}
	if u == v {
		return
	}
	e := NewEdge(u, v)
	if e.V >= b.n {
		b.n = e.V + 1
	}
	// Appending in already-sorted order (the common case when re-building
	// from another graph's edge list) keeps the slice dedup-free for free.
	if b.sorted && len(b.edges) > 0 {
		last := b.edges[len(b.edges)-1]
		if e == last {
			return
		}
		if lessEdges(e, last) {
			b.sorted = false
		}
	}
	b.edges = append(b.edges, e)
}

// AddEdges adds all edges in the slice.
func (b *Builder) AddEdges(edges []Edge) {
	for _, e := range edges {
		b.AddEdge(e.U, e.V)
	}
}

// dedup sorts the accumulated edges lexicographically and removes duplicates
// in place.
func (b *Builder) dedup() {
	if b.sorted {
		return
	}
	slices.SortFunc(b.edges, compareEdges)
	b.edges = slices.Compact(b.edges)
	b.sorted = true
}

// NumEdges reports the number of distinct edges added so far.
func (b *Builder) NumEdges() int {
	b.dedup()
	return len(b.edges)
}

// Build finalizes the builder into an immutable Graph. The builder remains
// usable afterwards.
func (b *Builder) Build() *Graph {
	b.dedup()
	edges := make([]Edge, len(b.edges))
	copy(edges, b.edges)
	return fromSortedDistinctEdges(b.n, edges)
}

// lessEdges reports whether a sorts strictly before b lexicographically.
func lessEdges(a, b Edge) bool {
	if a.U != b.U {
		return a.U < b.U
	}
	return a.V < b.V
}

// compareEdges is the lexicographic edge order as a three-way comparison.
func compareEdges(a, b Edge) int {
	if a.U != b.U {
		return a.U - b.U
	}
	return a.V - b.V
}

// FromEdges builds a graph directly from an edge list. Duplicates and self
// loops are dropped. n is a lower bound on the vertex count.
func FromEdges(n int, edges []Edge) *Graph {
	b := NewBuilder(n)
	b.AddEdges(edges)
	return b.Build()
}

func fromSortedDistinctEdges(n int, edges []Edge) *Graph {
	g := &Graph{
		n:       n,
		offsets: make([]int, n+1),
		neigh:   make([]int, 2*len(edges)),
		edges:   edges,
	}
	deg := make([]int, n)
	for _, e := range edges {
		deg[e.U]++
		deg[e.V]++
	}
	for v := 0; v < n; v++ {
		g.offsets[v+1] = g.offsets[v] + deg[v]
	}
	cursor := make([]int, n)
	copy(cursor, g.offsets[:n])
	// Filling in (U,V)-sorted normalized edge order leaves every neighbor
	// list sorted without a per-vertex sort: vertex v first receives its
	// smaller neighbors u < v (one per edge {u,v}, in increasing u because
	// the list is sorted by U), then its larger neighbors w > v (in
	// increasing w because edges with U = v are sorted by V).
	for _, e := range edges {
		g.neigh[cursor[e.U]] = e.V
		cursor[e.U]++
		g.neigh[cursor[e.V]] = e.U
		cursor[e.V]++
	}
	return g
}

// NumVertices returns n, the number of vertices.
func (g *Graph) NumVertices() int { return g.n }

// NumEdges returns m, the number of edges.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Degree returns the degree of vertex v.
func (g *Graph) Degree(v int) int {
	g.checkVertex(v)
	return g.offsets[v+1] - g.offsets[v]
}

// MaxDegree returns the maximum vertex degree (0 for an empty graph).
func (g *Graph) MaxDegree() int {
	max := 0
	for v := 0; v < g.n; v++ {
		if d := g.Degree(v); d > max {
			max = d
		}
	}
	return max
}

// Degrees returns a freshly allocated slice of all vertex degrees.
func (g *Graph) Degrees() []int {
	deg := make([]int, g.n)
	for v := 0; v < g.n; v++ {
		deg[v] = g.Degree(v)
	}
	return deg
}

// Neighbors returns the sorted neighbor list of v. The returned slice aliases
// the graph's internal storage and must not be modified.
func (g *Graph) Neighbors(v int) []int {
	g.checkVertex(v)
	return g.neigh[g.offsets[v]:g.offsets[v+1]]
}

// HasEdge reports whether {u, v} is an edge of the graph.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || v < 0 || u >= g.n || v >= g.n || u == v {
		return false
	}
	// Search the shorter adjacency list.
	if g.Degree(u) > g.Degree(v) {
		u, v = v, u
	}
	nb := g.Neighbors(u)
	i := sort.SearchInts(nb, v)
	return i < len(nb) && nb[i] == v
}

// Edges returns the graph's edge list in normalized, lexicographic order.
// The returned slice aliases internal storage and must not be modified.
func (g *Graph) Edges() []Edge { return g.edges }

// Edge returns the i-th edge in the graph's canonical edge order.
func (g *Graph) Edge(i int) Edge { return g.edges[i] }

// EdgeDegree returns d_e = min(d_u, d_v) for the edge e = {u, v}, as defined
// in Section 3 of the paper. It panics if e is not an edge of the graph.
func (g *Graph) EdgeDegree(e Edge) int {
	if !g.HasEdge(e.U, e.V) {
		panic(fmt.Sprintf("graph: %v is not an edge", e))
	}
	du, dv := g.Degree(e.U), g.Degree(e.V)
	if du < dv {
		return du
	}
	return dv
}

// LightEndpoint returns the endpoint of e with the smaller degree (ties go to
// the smaller vertex ID), matching the paper's definition of N(e).
func (g *Graph) LightEndpoint(e Edge) int {
	du, dv := g.Degree(e.U), g.Degree(e.V)
	if du < dv || (du == dv && e.U < e.V) {
		return e.U
	}
	return e.V
}

// EdgeDegreeSum returns d_E = Σ_e d_e, the quantity bounded by 2mκ in
// Chiba–Nishizeki's Lemma 3.1.
func (g *Graph) EdgeDegreeSum() int64 {
	var sum int64
	for _, e := range g.edges {
		du, dv := g.Degree(e.U), g.Degree(e.V)
		if du < dv {
			sum += int64(du)
		} else {
			sum += int64(dv)
		}
	}
	return sum
}

// Wedges returns the number of paths of length two (wedges) in the graph,
// Σ_v d_v·(d_v−1)/2.
func (g *Graph) Wedges() int64 {
	var w int64
	for v := 0; v < g.n; v++ {
		d := int64(g.Degree(v))
		w += d * (d - 1) / 2
	}
	return w
}

// InducedSubgraph returns the subgraph induced by the given vertex set, along
// with the mapping from new vertex IDs to original ones. Vertices may be
// listed in any order; duplicates are ignored.
func (g *Graph) InducedSubgraph(vertices []int) (*Graph, []int) {
	keep := make(map[int]int, len(vertices))
	orig := make([]int, 0, len(vertices))
	for _, v := range vertices {
		g.checkVertex(v)
		if _, ok := keep[v]; ok {
			continue
		}
		keep[v] = len(orig)
		orig = append(orig, v)
	}
	b := NewBuilder(len(orig))
	for v, nv := range keep {
		for _, w := range g.Neighbors(v) {
			if nw, ok := keep[w]; ok && nv < nw {
				b.AddEdge(nv, nw)
			}
		}
	}
	return b.Build(), orig
}

// EdgeSubgraph returns the subgraph consisting of exactly the given edges
// (which must be edges of g), on the same vertex set as g.
func (g *Graph) EdgeSubgraph(edges []Edge) (*Graph, error) {
	b := NewBuilder(g.n)
	for _, e := range edges {
		if !g.HasEdge(e.U, e.V) {
			return nil, fmt.Errorf("graph: edge %v not present in graph", e)
		}
		b.AddEdge(e.U, e.V)
	}
	return b.Build(), nil
}

// Validate performs internal consistency checks and returns an error
// describing the first violation found. It is primarily used by tests and by
// generators' own self-checks.
func (g *Graph) Validate() error {
	if g.n < 0 {
		return errors.New("graph: negative vertex count")
	}
	if len(g.offsets) != g.n+1 {
		return fmt.Errorf("graph: offsets length %d, want %d", len(g.offsets), g.n+1)
	}
	if g.offsets[g.n] != len(g.neigh) {
		return fmt.Errorf("graph: final offset %d, want %d", g.offsets[g.n], len(g.neigh))
	}
	if len(g.neigh) != 2*len(g.edges) {
		return fmt.Errorf("graph: neighbor array length %d, want %d", len(g.neigh), 2*len(g.edges))
	}
	for v := 0; v < g.n; v++ {
		nb := g.Neighbors(v)
		for i, w := range nb {
			if w < 0 || w >= g.n {
				return fmt.Errorf("graph: vertex %d has out-of-range neighbor %d", v, w)
			}
			if w == v {
				return fmt.Errorf("graph: vertex %d has a self loop", v)
			}
			if i > 0 && nb[i-1] >= w {
				return fmt.Errorf("graph: neighbors of %d not strictly sorted at position %d", v, i)
			}
			if !g.HasEdge(w, v) {
				return fmt.Errorf("graph: asymmetric adjacency between %d and %d", v, w)
			}
		}
	}
	for i, e := range g.edges {
		if e.U >= e.V {
			return fmt.Errorf("graph: edge %d = %v not normalized", i, e)
		}
		if !g.HasEdge(e.U, e.V) {
			return fmt.Errorf("graph: edge list entry %v missing from adjacency", e)
		}
	}
	return nil
}

func (g *Graph) checkVertex(v int) {
	if v < 0 || v >= g.n {
		panic(fmt.Sprintf("graph: vertex %d out of range [0,%d)", v, g.n))
	}
}

// String returns a short human-readable summary.
func (g *Graph) String() string {
	return fmt.Sprintf("Graph(n=%d, m=%d)", g.n, g.NumEdges())
}
