package graph

import "slices"

// TriangleIndex assigns dense ids [0, Len) to a set of triangles, ordered by
// sorted vertex triple. When every vertex fits in 21 bits (over two million
// vertices — always the case for the dense IDs of this repository) the keys
// are packed into one uint64 and a lookup is a binary search over machine
// words; otherwise it falls back to searching the sorted Triangle structs.
// It replaces the map[Triangle]T memo tables of the assignment procedure with
// a structure whose iteration order is deterministic.
type TriangleIndex struct {
	tris   []Triangle // distinct triangles, sorted by (A, B, C)
	packed []uint64   // packed keys of tris, nil when some vertex overflows
}

// triPackLimit bounds the per-vertex ID for the packed representation: three
// 21-bit fields fit one uint64.
const triPackLimit = 1 << 21

// packTriangle packs a (sorted) triangle into a single comparable word. The
// field order (A high) makes packed order equal lexicographic triple order.
func packTriangle(t Triangle) uint64 {
	return uint64(t.A)<<42 | uint64(t.B)<<21 | uint64(t.C)
}

// NewTriangleIndex builds the index over the distinct values of tris, which
// is consumed (sorted in place).
func NewTriangleIndex(tris []Triangle) *TriangleIndex {
	packable := true
	for _, t := range tris {
		if t.C >= triPackLimit || t.A < 0 {
			packable = false
			break
		}
	}
	slices.SortFunc(tris, func(a, b Triangle) int {
		switch {
		case a.A != b.A:
			return a.A - b.A
		case a.B != b.B:
			return a.B - b.B
		default:
			return a.C - b.C
		}
	})
	tris = slices.Compact(tris)
	ix := &TriangleIndex{tris: tris}
	if packable {
		ix.packed = make([]uint64, len(tris))
		for i, t := range tris {
			ix.packed[i] = packTriangle(t)
		}
	}
	return ix
}

// Len returns the number of distinct triangles.
func (ix *TriangleIndex) Len() int { return len(ix.tris) }

// TriangleAt returns the triangle with id i.
func (ix *TriangleIndex) TriangleAt(i int) Triangle { return ix.tris[i] }

// Lookup returns the id of t, or -1 when t is not in the index.
func (ix *TriangleIndex) Lookup(t Triangle) int {
	if ix.packed != nil {
		if t.C >= triPackLimit || t.A < 0 {
			return -1
		}
		key := packTriangle(t)
		lo, hi := 0, len(ix.packed)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if ix.packed[mid] < key {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo < len(ix.packed) && ix.packed[lo] == key {
			return lo
		}
		return -1
	}
	lo, hi := 0, len(ix.tris)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		c := ix.tris[mid]
		if c.A < t.A || (c.A == t.A && (c.B < t.B || (c.B == t.B && c.C < t.C))) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(ix.tris) && ix.tris[lo] == t {
		return lo
	}
	return -1
}
