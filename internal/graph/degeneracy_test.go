package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func completeGraph(n int) *Graph {
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			b.AddEdge(u, v)
		}
	}
	return b.Build()
}

func cycleGraph(n int) *Graph {
	b := NewBuilder(n)
	for v := 0; v < n; v++ {
		b.AddEdge(v, (v+1)%n)
	}
	return b.Build()
}

func starGraph(n int) *Graph {
	b := NewBuilder(n)
	for v := 1; v < n; v++ {
		b.AddEdge(0, v)
	}
	return b.Build()
}

func wheelGraph(n int) *Graph {
	// Hub 0 connected to a cycle on 1..n-1.
	b := NewBuilder(n)
	for v := 1; v < n; v++ {
		b.AddEdge(0, v)
		next := v + 1
		if next == n {
			next = 1
		}
		b.AddEdge(v, next)
	}
	return b.Build()
}

func TestDegeneracyKnownGraphs(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		want int
	}{
		{"empty", NewBuilder(4).Build(), 0},
		{"single edge", FromEdges(2, []Edge{{0, 1}}), 1},
		{"path", FromEdges(4, []Edge{{0, 1}, {1, 2}, {2, 3}}), 1},
		{"cycle10", cycleGraph(10), 2},
		{"star50", starGraph(50), 1},
		{"K5", completeGraph(5), 4},
		{"K8", completeGraph(8), 7},
		{"wheel10", wheelGraph(10), 3},
		{"wheel100", wheelGraph(100), 3},
		{"triangle+tail", buildTriangleWithTail(), 2},
	}
	for _, c := range cases {
		if got := c.g.Degeneracy(); got != c.want {
			t.Errorf("%s: Degeneracy = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestCoreNumbersCompleteGraph(t *testing.T) {
	g := completeGraph(6)
	cd := g.CoreDecomposition()
	for v := 0; v < 6; v++ {
		if cd.Core[v] != 5 {
			t.Errorf("Core[%d] = %d, want 5", v, cd.Core[v])
		}
	}
	if cd.Degeneracy != 5 {
		t.Errorf("Degeneracy = %d, want 5", cd.Degeneracy)
	}
}

func TestCoreNumbersMixed(t *testing.T) {
	// K4 (0..3) with a pendant path 3-4-5.
	b := NewBuilder(6)
	for u := 0; u < 4; u++ {
		for v := u + 1; v < 4; v++ {
			b.AddEdge(u, v)
		}
	}
	b.AddEdge(3, 4)
	b.AddEdge(4, 5)
	g := b.Build()
	cd := g.CoreDecomposition()
	wantCore := []int{3, 3, 3, 3, 1, 1}
	for v, want := range wantCore {
		if cd.Core[v] != want {
			t.Errorf("Core[%d] = %d, want %d", v, cd.Core[v], want)
		}
	}
	if cd.Degeneracy != 3 {
		t.Errorf("Degeneracy = %d, want 3", cd.Degeneracy)
	}
}

func TestDegeneracyOrderInvariant(t *testing.T) {
	// In a degeneracy ordering, every vertex has at most κ neighbors later
	// in the ordering.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 5 + rng.Intn(40)
		g := randomGraph(n, 0.2+0.5*rng.Float64(), rng)
		cd := g.CoreDecomposition()
		for v := 0; v < g.NumVertices(); v++ {
			later := 0
			for _, w := range g.Neighbors(v) {
				if cd.Position[w] > cd.Position[v] {
					later++
				}
			}
			if later > cd.Degeneracy {
				t.Fatalf("vertex %d has %d later neighbors, degeneracy %d", v, later, cd.Degeneracy)
			}
		}
	}
}

func TestCoreDecompositionOrderAndPositionConsistent(t *testing.T) {
	g := wheelGraph(30)
	cd := g.CoreDecomposition()
	if len(cd.Order) != g.NumVertices() {
		t.Fatalf("Order has %d entries, want %d", len(cd.Order), g.NumVertices())
	}
	seen := make([]bool, g.NumVertices())
	for i, v := range cd.Order {
		if seen[v] {
			t.Fatalf("vertex %d appears twice in Order", v)
		}
		seen[v] = true
		if cd.Position[v] != i {
			t.Fatalf("Position[%d] = %d, want %d", v, cd.Position[v], i)
		}
	}
}

func TestPeelSequenceMatchesDegeneracy(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 15; trial++ {
		n := 4 + rng.Intn(30)
		g := randomGraph(n, 0.3, rng)
		_, observed := g.PeelSequence()
		max := 0
		for _, d := range observed {
			if d > max {
				max = d
			}
		}
		if got := g.Degeneracy(); got != max {
			t.Fatalf("degeneracy %d but max observed peel degree %d", got, max)
		}
	}
}

func TestDegeneracyOrientationOutDegreeBound(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 15; trial++ {
		n := 4 + rng.Intn(40)
		g := randomGraph(n, 0.25, rng)
		out, cd := g.DegeneracyOrientation()
		total := 0
		for v := range out {
			if len(out[v]) > cd.Degeneracy {
				t.Fatalf("out-degree %d exceeds degeneracy %d", len(out[v]), cd.Degeneracy)
			}
			total += len(out[v])
		}
		if total != g.NumEdges() {
			t.Fatalf("orientation has %d arcs, want %d", total, g.NumEdges())
		}
	}
}

func TestDegeneracyMonotoneUnderSubgraphs(t *testing.T) {
	// κ(G') ≤ κ(G) for induced subgraphs: used by the heavy-triangle bound
	// (Lemma 5.12). Check on random graphs.
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 10; trial++ {
		n := 8 + rng.Intn(20)
		g := randomGraph(n, 0.4, rng)
		keep := make([]int, 0, n)
		for v := 0; v < n; v++ {
			if rng.Float64() < 0.6 {
				keep = append(keep, v)
			}
		}
		if len(keep) == 0 {
			continue
		}
		sub, _ := g.InducedSubgraph(keep)
		if sub.Degeneracy() > g.Degeneracy() {
			t.Fatalf("induced subgraph degeneracy %d > graph degeneracy %d", sub.Degeneracy(), g.Degeneracy())
		}
	}
}

func TestArboricityBounds(t *testing.T) {
	g := completeGraph(9)
	lo, hi := g.ArboricityLowerBound(), g.ArboricityUpperBound()
	if lo > hi {
		t.Fatalf("lower bound %d exceeds upper bound %d", lo, hi)
	}
	// K9: arboricity = ceil(36/8) = 5, degeneracy = 8.
	if lo != 5 {
		t.Errorf("ArboricityLowerBound(K9) = %d, want 5", lo)
	}
	if hi != 8 {
		t.Errorf("ArboricityUpperBound(K9) = %d, want 8", hi)
	}
	if NewBuilder(1).Build().ArboricityLowerBound() != 0 {
		t.Error("trivial graph should have arboricity lower bound 0")
	}
}

func TestChibaNishizekiLemma(t *testing.T) {
	// Lemma 3.1: d_E <= 2mκ, and Corollary 3.2: T <= 2mκ/3... the paper
	// states T <= 2mκ; check both forms on assorted graphs.
	graphs := map[string]*Graph{
		"K10":      completeGraph(10),
		"wheel200": wheelGraph(200),
		"cycle50":  cycleGraph(50),
		"star100":  starGraph(100),
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 5; i++ {
		graphs["rand"+string(rune('A'+i))] = randomGraph(30+rng.Intn(30), 0.3, rng)
	}
	for name, g := range graphs {
		m := int64(g.NumEdges())
		k := int64(g.Degeneracy())
		if de := g.EdgeDegreeSum(); de > 2*m*k {
			t.Errorf("%s: d_E = %d exceeds 2mκ = %d", name, de, 2*m*k)
		}
		if tc := g.TriangleCount(); tc > 2*m*k {
			t.Errorf("%s: T = %d exceeds 2mκ = %d", name, tc, 2*m*k)
		}
	}
}

// Property test: degeneracy is at least m/n (average degree / 2) and at most
// the maximum degree.
func TestDegeneracyBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(25)
		g := randomGraph(n, r.Float64(), r)
		k := g.Degeneracy()
		if k > g.MaxDegree() {
			return false
		}
		if g.NumEdges() > 0 && k < 1 {
			return false
		}
		// κ ≥ ⌈m/(n-1)⌉ is the arboricity lower bound.
		return k >= g.ArboricityLowerBound()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
