package graph

import (
	"testing"
	"testing/quick"
)

func TestNewEdgeNormalizes(t *testing.T) {
	e := NewEdge(7, 3)
	if e.U != 3 || e.V != 7 {
		t.Fatalf("NewEdge(7,3) = %v, want (3,7)", e)
	}
	e = NewEdge(3, 7)
	if e.U != 3 || e.V != 7 {
		t.Fatalf("NewEdge(3,7) = %v, want (3,7)", e)
	}
}

func TestEdgeNormalizeIdempotent(t *testing.T) {
	f := func(u, v uint8) bool {
		e := Edge{U: int(u), V: int(v)}
		n1 := e.Normalize()
		n2 := n1.Normalize()
		return n1 == n2 && n1.U <= n1.V
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEdgeOther(t *testing.T) {
	e := NewEdge(2, 9)
	if got := e.Other(2); got != 9 {
		t.Errorf("Other(2) = %d, want 9", got)
	}
	if got := e.Other(9); got != 2 {
		t.Errorf("Other(9) = %d, want 2", got)
	}
}

func TestEdgeOtherPanicsOnNonEndpoint(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-endpoint")
		}
	}()
	NewEdge(1, 2).Other(3)
}

func TestEdgeHasAndLoop(t *testing.T) {
	e := NewEdge(4, 4)
	if !e.IsLoop() {
		t.Error("expected self loop")
	}
	e = NewEdge(1, 5)
	if e.IsLoop() {
		t.Error("unexpected self loop")
	}
	if !e.Has(1) || !e.Has(5) || e.Has(2) {
		t.Errorf("Has misbehaves for %v", e)
	}
}

func TestEdgeString(t *testing.T) {
	if got := NewEdge(5, 2).String(); got != "(2,5)" {
		t.Errorf("String = %q, want (2,5)", got)
	}
}

func TestNewTriangleSorts(t *testing.T) {
	cases := [][3]int{{1, 2, 3}, {3, 2, 1}, {2, 3, 1}, {3, 1, 2}}
	for _, c := range cases {
		tr := NewTriangle(c[0], c[1], c[2])
		if tr.A != 1 || tr.B != 2 || tr.C != 3 {
			t.Errorf("NewTriangle(%v) = %v, want {1,2,3}", c, tr)
		}
	}
}

func TestNewTrianglePanicsOnDegenerate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for repeated vertex")
		}
	}()
	NewTriangle(1, 1, 2)
}

func TestTriangleEdgesAndApex(t *testing.T) {
	tr := NewTriangle(5, 1, 9)
	edges := tr.Edges()
	want := [3]Edge{NewEdge(1, 5), NewEdge(1, 9), NewEdge(5, 9)}
	if edges != want {
		t.Fatalf("Edges() = %v, want %v", edges, want)
	}
	for _, e := range edges {
		apex := tr.Apex(e)
		if e.Has(apex) {
			t.Errorf("apex %d belongs to edge %v", apex, e)
		}
		if !tr.HasVertex(apex) {
			t.Errorf("apex %d not in triangle %v", apex, tr)
		}
		if !tr.HasEdge(e) {
			t.Errorf("HasEdge(%v) = false", e)
		}
	}
	if tr.HasEdge(NewEdge(2, 3)) {
		t.Error("HasEdge reported an unrelated edge")
	}
}

func TestTriangleApexPanicsOnNonEdge(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTriangle(1, 2, 3).Apex(NewEdge(4, 5))
}

func TestTriangleHasVertex(t *testing.T) {
	tr := NewTriangle(0, 7, 4)
	for _, v := range []int{0, 4, 7} {
		if !tr.HasVertex(v) {
			t.Errorf("HasVertex(%d) = false", v)
		}
	}
	if tr.HasVertex(5) {
		t.Error("HasVertex(5) = true")
	}
}
