package graph

import (
	"fmt"
	"sort"
)

// CliqueCount returns the exact number of k-cliques in the graph for k >= 1.
// It enumerates cliques inside out-neighborhoods of a degeneracy orientation
// (the Chiba–Nishizeki strategy), so the running time is O(m·κ^{k-2}) — fast
// for the low-degeneracy graphs this repository targets. It is the ground
// truth for the k-clique extension experiments (Conjecture 7.1).
func (g *Graph) CliqueCount(k int) int64 {
	switch {
	case k < 1:
		panic(fmt.Sprintf("graph: clique size %d < 1", k))
	case k == 1:
		return int64(g.n)
	case k == 2:
		return int64(g.NumEdges())
	case k == 3:
		return g.TriangleCount()
	}
	out, _ := g.DegeneracyOrientation()
	for v := range out {
		sort.Ints(out[v])
	}
	var total int64
	// For every vertex v (the clique's first vertex in degeneracy order),
	// count (k-1)-cliques within the subgraph induced by out[v].
	for v := 0; v < g.n; v++ {
		total += g.countCliquesWithin(out, out[v], k-1)
	}
	return total
}

// countCliquesWithin counts j-cliques whose vertices all lie in candidates,
// where candidates is sorted and every pair of clique vertices must be
// adjacent via the orientation-respecting closure (u earlier than w implies w
// in out[u] — but adjacency inside candidates is checked against the full
// graph, which is equivalent because candidates are all out-neighbors of a
// common earlier vertex).
func (g *Graph) countCliquesWithin(out [][]int, candidates []int, j int) int64 {
	if j == 0 {
		return 1
	}
	if len(candidates) < j {
		return 0
	}
	if j == 1 {
		return int64(len(candidates))
	}
	var total int64
	for i, v := range candidates {
		// Restrict to candidates after v that are adjacent to v. Using the
		// out-orientation keeps each clique counted exactly once: within a
		// clique the degeneracy order is fixed, so the recursion always peels
		// vertices in that order.
		rest := candidates[i+1:]
		var next []int
		for _, w := range rest {
			if g.HasEdge(v, w) {
				next = append(next, w)
			}
		}
		total += g.countCliquesWithin(out, next, j-1)
	}
	return total
}

// CliqueCountBrute counts k-cliques by enumerating all vertex subsets of
// size k (k <= 5 recommended); it exists purely as an independent test
// oracle for small graphs.
func (g *Graph) CliqueCountBrute(k int) int64 {
	if k < 1 {
		panic("graph: clique size < 1")
	}
	verts := make([]int, g.n)
	for i := range verts {
		verts[i] = i
	}
	var count int64
	var rec func(start int, chosen []int)
	rec = func(start int, chosen []int) {
		if len(chosen) == k {
			count++
			return
		}
		for i := start; i < g.n; i++ {
			ok := true
			for _, c := range chosen {
				if !g.HasEdge(c, i) {
					ok = false
					break
				}
			}
			if ok {
				rec(i+1, append(chosen, i))
			}
		}
	}
	rec(0, nil)
	return count
}

// EdgeCliqueCounts returns, for each edge in canonical order, the number of
// k-cliques containing that edge. The sum over all edges equals C(k,2)·(#k-cliques).
func (g *Graph) EdgeCliqueCounts(k int) []int64 {
	if k < 3 {
		panic("graph: EdgeCliqueCounts needs k >= 3")
	}
	counts := make([]int64, len(g.edges))
	for i, e := range g.edges {
		common := sortedIntersection(g.Neighbors(e.U), g.Neighbors(e.V))
		if k == 3 {
			counts[i] = int64(len(common))
			continue
		}
		// Count (k-2)-cliques inside the common neighborhood.
		sub, _ := g.InducedSubgraph(common)
		counts[i] = sub.CliqueCount(k - 2)
	}
	return counts
}

// sortedIntersection returns the intersection of two sorted int slices.
func sortedIntersection(a, b []int) []int {
	var out []int
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}
