package graph

import (
	"math/rand"
	"testing"
)

func TestCliqueCountSpecialCases(t *testing.T) {
	g := completeGraph(6)
	if g.CliqueCount(1) != 6 {
		t.Errorf("1-cliques = %d", g.CliqueCount(1))
	}
	if g.CliqueCount(2) != 15 {
		t.Errorf("2-cliques = %d", g.CliqueCount(2))
	}
	if g.CliqueCount(3) != 20 {
		t.Errorf("3-cliques = %d", g.CliqueCount(3))
	}
}

func TestCliqueCountPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	completeGraph(4).CliqueCount(0)
}

func TestCliqueCountCompleteGraph(t *testing.T) {
	// K_n has C(n, k) k-cliques.
	binom := func(n, k int) int64 {
		res := int64(1)
		for i := 0; i < k; i++ {
			res = res * int64(n-i) / int64(i+1)
		}
		return res
	}
	for _, n := range []int{4, 6, 9} {
		g := completeGraph(n)
		for k := 3; k <= 6 && k <= n; k++ {
			if got := g.CliqueCount(k); got != binom(n, k) {
				t.Errorf("K%d: %d-cliques = %d, want %d", n, k, got, binom(n, k))
			}
		}
	}
}

func TestCliqueCountKnownGraphs(t *testing.T) {
	// Wheel graphs have no K4 (planar graphs can, but wheels' triangles share
	// only the hub edge pattern); actually W_4 = K4 has exactly one.
	if got := wheelGraph(4).CliqueCount(4); got != 1 {
		t.Errorf("W4 4-cliques = %d, want 1", got)
	}
	if got := wheelGraph(20).CliqueCount(4); got != 0 {
		t.Errorf("W20 4-cliques = %d, want 0", got)
	}
	// A book graph has no K4 either.
	b := NewBuilder(6)
	b.AddEdge(0, 1)
	for v := 2; v < 6; v++ {
		b.AddEdge(0, v)
		b.AddEdge(1, v)
	}
	if got := b.Build().CliqueCount(4); got != 0 {
		t.Errorf("book 4-cliques = %d, want 0", got)
	}
	// Two K4s sharing a single vertex: 2 four-cliques, 8 triangles.
	b2 := NewBuilder(7)
	quad := func(vs [4]int) {
		for i := 0; i < 4; i++ {
			for j := i + 1; j < 4; j++ {
				b2.AddEdge(vs[i], vs[j])
			}
		}
	}
	quad([4]int{0, 1, 2, 3})
	quad([4]int{3, 4, 5, 6})
	g2 := b2.Build()
	if got := g2.CliqueCount(4); got != 2 {
		t.Errorf("double-K4 4-cliques = %d, want 2", got)
	}
	if got := g2.CliqueCount(5); got != 0 {
		t.Errorf("double-K4 5-cliques = %d, want 0", got)
	}
}

func TestCliqueCountMatchesBruteOnRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 15; trial++ {
		n := 5 + rng.Intn(12)
		g := randomGraph(n, 0.5, rng)
		for k := 3; k <= 5; k++ {
			fast := g.CliqueCount(k)
			brute := g.CliqueCountBrute(k)
			if fast != brute {
				t.Fatalf("trial %d k=%d: fast=%d brute=%d", trial, k, fast, brute)
			}
		}
	}
}

func TestCliqueCountBrutePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	completeGraph(3).CliqueCountBrute(0)
}

func TestEdgeCliqueCounts(t *testing.T) {
	g := completeGraph(5)
	// In K5 every edge lies in C(3,1)=3 triangles and C(3,2)=3 four-cliques.
	tri := g.EdgeCliqueCounts(3)
	four := g.EdgeCliqueCounts(4)
	for i := range g.Edges() {
		if tri[i] != 3 {
			t.Errorf("edge %d triangle count %d", i, tri[i])
		}
		if four[i] != 3 {
			t.Errorf("edge %d 4-clique count %d", i, four[i])
		}
	}
	// Sum over edges = C(k,2) * number of k-cliques.
	var sum4 int64
	for _, c := range four {
		sum4 += c
	}
	if sum4 != 6*g.CliqueCount(4) {
		t.Errorf("Σ edge 4-clique counts = %d, want %d", sum4, 6*g.CliqueCount(4))
	}
}

func TestEdgeCliqueCountsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	completeGraph(4).EdgeCliqueCounts(2)
}

func TestSortedIntersection(t *testing.T) {
	got := sortedIntersection([]int{1, 3, 5, 7}, []int{2, 3, 4, 7, 9})
	if len(got) != 2 || got[0] != 3 || got[1] != 7 {
		t.Errorf("intersection = %v", got)
	}
	if sortedIntersection(nil, []int{1}) != nil {
		t.Error("empty intersection should be nil")
	}
}

func BenchmarkCliqueCount4(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := randomGraph(400, 0.05, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.CliqueCount(4)
	}
}
