package graph

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// buildTriangleWithTail returns the 4-vertex graph 0-1-2 triangle plus edge 2-3.
func buildTriangleWithTail() *Graph {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 2)
	b.AddEdge(2, 3)
	return b.Build()
}

// randomGraph returns an Erdős–Rényi-ish random graph for property tests.
func randomGraph(n int, p float64, rng *rand.Rand) *Graph {
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				b.AddEdge(u, v)
			}
		}
	}
	return b.Build()
}

func TestBuilderDropsLoopsAndDuplicates(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0)
	b.AddEdge(2, 2)
	b.AddEdge(0, 1)
	if got := b.NumEdges(); got != 1 {
		t.Fatalf("NumEdges = %d, want 1", got)
	}
	g := b.Build()
	if g.NumEdges() != 1 || g.NumVertices() != 3 {
		t.Fatalf("got %v, want n=3 m=1", g)
	}
}

func TestBuilderGrowsVertexCount(t *testing.T) {
	b := NewBuilder(0)
	b.AddEdge(5, 9)
	g := b.Build()
	if g.NumVertices() != 10 {
		t.Fatalf("NumVertices = %d, want 10", g.NumVertices())
	}
	if !g.HasEdge(5, 9) || !g.HasEdge(9, 5) {
		t.Fatal("edge (5,9) missing")
	}
}

func TestBuilderPanicsOnNegativeVertex(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBuilder(1).AddEdge(-1, 2)
}

func TestFromEdges(t *testing.T) {
	g := FromEdges(0, []Edge{{0, 1}, {1, 2}, {2, 0}})
	if g.NumVertices() != 3 || g.NumEdges() != 3 {
		t.Fatalf("got %v", g)
	}
	if g.TriangleCount() != 1 {
		t.Fatalf("TriangleCount = %d, want 1", g.TriangleCount())
	}
}

func TestDegreesAndNeighbors(t *testing.T) {
	g := buildTriangleWithTail()
	wantDeg := []int{2, 2, 3, 1}
	for v, want := range wantDeg {
		if got := g.Degree(v); got != want {
			t.Errorf("Degree(%d) = %d, want %d", v, got, want)
		}
	}
	if got := g.MaxDegree(); got != 3 {
		t.Errorf("MaxDegree = %d, want 3", got)
	}
	degs := g.Degrees()
	for v, want := range wantDeg {
		if degs[v] != want {
			t.Errorf("Degrees()[%d] = %d, want %d", v, degs[v], want)
		}
	}
	nb := g.Neighbors(2)
	want := []int{0, 1, 3}
	if len(nb) != len(want) {
		t.Fatalf("Neighbors(2) = %v, want %v", nb, want)
	}
	for i := range want {
		if nb[i] != want[i] {
			t.Fatalf("Neighbors(2) = %v, want %v", nb, want)
		}
	}
}

func TestHasEdge(t *testing.T) {
	g := buildTriangleWithTail()
	cases := []struct {
		u, v int
		want bool
	}{
		{0, 1, true}, {1, 0, true}, {0, 2, true}, {2, 3, true},
		{0, 3, false}, {1, 3, false}, {0, 0, false}, {-1, 2, false}, {2, 99, false},
	}
	for _, c := range cases {
		if got := g.HasEdge(c.u, c.v); got != c.want {
			t.Errorf("HasEdge(%d,%d) = %v, want %v", c.u, c.v, got, c.want)
		}
	}
}

func TestEdgesCanonicalOrder(t *testing.T) {
	g := buildTriangleWithTail()
	edges := g.Edges()
	if len(edges) != 4 {
		t.Fatalf("len(Edges) = %d, want 4", len(edges))
	}
	if !sort.SliceIsSorted(edges, func(i, j int) bool {
		if edges[i].U != edges[j].U {
			return edges[i].U < edges[j].U
		}
		return edges[i].V < edges[j].V
	}) {
		t.Errorf("edges not in canonical order: %v", edges)
	}
	for i, e := range edges {
		if g.Edge(i) != e {
			t.Errorf("Edge(%d) = %v, want %v", i, g.Edge(i), e)
		}
		if e.U >= e.V {
			t.Errorf("edge %v not normalized", e)
		}
	}
}

func TestEdgeDegreeAndLightEndpoint(t *testing.T) {
	g := buildTriangleWithTail()
	if got := g.EdgeDegree(NewEdge(2, 3)); got != 1 {
		t.Errorf("EdgeDegree(2,3) = %d, want 1", got)
	}
	if got := g.EdgeDegree(NewEdge(0, 2)); got != 2 {
		t.Errorf("EdgeDegree(0,2) = %d, want 2", got)
	}
	if got := g.LightEndpoint(NewEdge(2, 3)); got != 3 {
		t.Errorf("LightEndpoint(2,3) = %d, want 3", got)
	}
	if got := g.LightEndpoint(NewEdge(0, 2)); got != 0 {
		t.Errorf("LightEndpoint(0,2) = %d, want 0", got)
	}
	// Tie in degrees: the smaller ID wins.
	if got := g.LightEndpoint(NewEdge(0, 1)); got != 0 {
		t.Errorf("LightEndpoint(0,1) = %d, want 0", got)
	}
}

func TestEdgeDegreePanicsOnNonEdge(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	buildTriangleWithTail().EdgeDegree(NewEdge(0, 3))
}

func TestEdgeDegreeSum(t *testing.T) {
	g := buildTriangleWithTail()
	// Edges (0,1):min(2,2)=2, (0,2):2, (1,2):2, (2,3):1 -> 7.
	if got := g.EdgeDegreeSum(); got != 7 {
		t.Errorf("EdgeDegreeSum = %d, want 7", got)
	}
}

func TestWedges(t *testing.T) {
	g := buildTriangleWithTail()
	// deg: 2,2,3,1 -> wedges = 1+1+3+0 = 5.
	if got := g.Wedges(); got != 5 {
		t.Errorf("Wedges = %d, want 5", got)
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := buildTriangleWithTail()
	sub, orig := g.InducedSubgraph([]int{0, 1, 2, 2})
	if sub.NumVertices() != 3 || sub.NumEdges() != 3 {
		t.Fatalf("induced subgraph %v, want triangle", sub)
	}
	if len(orig) != 3 {
		t.Fatalf("orig mapping %v", orig)
	}
	if sub.TriangleCount() != 1 {
		t.Errorf("induced triangle count = %d, want 1", sub.TriangleCount())
	}
	sub2, _ := g.InducedSubgraph([]int{0, 3})
	if sub2.NumEdges() != 0 {
		t.Errorf("induced on {0,3} should have no edges, got %d", sub2.NumEdges())
	}
}

func TestEdgeSubgraph(t *testing.T) {
	g := buildTriangleWithTail()
	sub, err := g.EdgeSubgraph([]Edge{NewEdge(0, 1), NewEdge(1, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumEdges() != 2 || sub.NumVertices() != g.NumVertices() {
		t.Fatalf("EdgeSubgraph = %v", sub)
	}
	if _, err := g.EdgeSubgraph([]Edge{NewEdge(0, 3)}); err == nil {
		t.Fatal("expected error for non-edge")
	}
}

func TestValidate(t *testing.T) {
	g := buildTriangleWithTail()
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	empty := NewBuilder(0).Build()
	if err := empty.Validate(); err != nil {
		t.Fatalf("Validate(empty): %v", err)
	}
}

func TestNeighborsPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	buildTriangleWithTail().Neighbors(99)
}

func TestEmptyGraph(t *testing.T) {
	g := NewBuilder(5).Build()
	if g.NumVertices() != 5 || g.NumEdges() != 0 {
		t.Fatalf("got %v", g)
	}
	if g.TriangleCount() != 0 || g.MaxDegree() != 0 || g.EdgeDegreeSum() != 0 {
		t.Error("empty graph should have zero counts")
	}
	if g.GlobalClusteringCoefficient() != 0 {
		t.Error("clustering coefficient of empty graph should be 0")
	}
}

func TestGraphStringer(t *testing.T) {
	got := buildTriangleWithTail().String()
	if got != "Graph(n=4, m=4)" {
		t.Errorf("String = %q", got)
	}
}

// Property: for random graphs, every edge in Edges() satisfies HasEdge, and
// degree sums equal 2m.
func TestGraphConsistencyProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(20)
		g := randomGraph(n, 0.3, r)
		if err := g.Validate(); err != nil {
			t.Logf("validate: %v", err)
			return false
		}
		degSum := 0
		for v := 0; v < g.NumVertices(); v++ {
			degSum += g.Degree(v)
		}
		return degSum == 2*g.NumEdges()
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
