package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTriangleCountKnownGraphs(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		want int64
	}{
		{"empty", NewBuilder(5).Build(), 0},
		{"single triangle", FromEdges(3, []Edge{{0, 1}, {1, 2}, {0, 2}}), 1},
		{"triangle+tail", buildTriangleWithTail(), 1},
		{"K4", completeGraph(4), 4},
		{"K5", completeGraph(5), 10},
		{"K10", completeGraph(10), 120},
		{"cycle10", cycleGraph(10), 0},
		{"star20", starGraph(20), 0},
		{"wheel10", wheelGraph(10), 9},
		{"wheel101", wheelGraph(101), 100},
	}
	for _, c := range cases {
		if got := c.g.TriangleCount(); got != c.want {
			t.Errorf("%s: TriangleCount = %d, want %d", c.name, got, c.want)
		}
		if got := c.g.TriangleCountBrute(); got != c.want {
			t.Errorf("%s: TriangleCountBrute = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestTriangleCountMatchesBruteOnRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(25)
		g := randomGraph(n, 0.15+0.6*rng.Float64(), rng)
		fast := g.TriangleCount()
		brute := g.TriangleCountBrute()
		if fast != brute {
			t.Fatalf("trial %d: fast=%d brute=%d for %v", trial, fast, brute, g)
		}
	}
}

func TestEdgeTriangleCountsSumTo3T(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		n := 4 + rng.Intn(30)
		g := randomGraph(n, 0.3, rng)
		counts := g.EdgeTriangleCounts()
		var sum int64
		for _, c := range counts {
			sum += c
		}
		if sum != 3*g.TriangleCount() {
			t.Fatalf("Σ t_e = %d, want 3T = %d", sum, 3*g.TriangleCount())
		}
	}
}

func TestEdgeTriangleCountMap(t *testing.T) {
	g := completeGraph(5)
	m := g.EdgeTriangleCountMap()
	if len(m) != g.NumEdges() {
		t.Fatalf("map has %d entries, want %d", len(m), g.NumEdges())
	}
	for e, c := range m {
		if c != 3 {
			t.Errorf("t_%v = %d, want 3 in K5", e, c)
		}
	}
}

func TestTrianglesOfEdge(t *testing.T) {
	g := wheelGraph(10)
	// A spoke edge (0, v) for v on the rim is in exactly 2 triangles.
	if got := g.TrianglesOfEdge(NewEdge(0, 3)); got != 2 {
		t.Errorf("spoke edge triangles = %d, want 2", got)
	}
	// A rim edge is in exactly 1 triangle.
	if got := g.TrianglesOfEdge(NewEdge(3, 4)); got != 1 {
		t.Errorf("rim edge triangles = %d, want 1", got)
	}
	if got := g.TrianglesOfEdge(NewEdge(3, 7)); got != 0 {
		t.Errorf("non-edge triangles = %d, want 0", got)
	}
}

func TestMaxEdgeTriangleCount(t *testing.T) {
	if got := completeGraph(6).MaxEdgeTriangleCount(); got != 4 {
		t.Errorf("K6 max edge triangles = %d, want 4", got)
	}
	// Book graph: n-2 triangles all sharing edge (0,1).
	b := NewBuilder(6)
	b.AddEdge(0, 1)
	for v := 2; v < 6; v++ {
		b.AddEdge(0, v)
		b.AddEdge(1, v)
	}
	g := b.Build()
	if got := g.MaxEdgeTriangleCount(); got != 4 {
		t.Errorf("book graph max edge triangles = %d, want 4", got)
	}
}

func TestListTriangles(t *testing.T) {
	g := completeGraph(5)
	tris := g.ListTriangles()
	if int64(len(tris)) != g.TriangleCount() {
		t.Fatalf("ListTriangles returned %d, want %d", len(tris), g.TriangleCount())
	}
	seen := make(map[Triangle]bool)
	for _, tr := range tris {
		if tr.A >= tr.B || tr.B >= tr.C {
			t.Errorf("triangle %v not sorted", tr)
		}
		if seen[tr] {
			t.Errorf("triangle %v listed twice", tr)
		}
		seen[tr] = true
		if !g.IsTriangle(tr.A, tr.B, tr.C) {
			t.Errorf("listed non-triangle %v", tr)
		}
	}
}

func TestListTrianglesMatchesCountOnRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 15; trial++ {
		g := randomGraph(4+rng.Intn(25), 0.4, rng)
		if int64(len(g.ListTriangles())) != g.TriangleCount() {
			t.Fatalf("list/count mismatch on trial %d", trial)
		}
	}
}

func TestIsTriangleAndClosesTriangle(t *testing.T) {
	g := buildTriangleWithTail()
	if !g.IsTriangle(0, 1, 2) || !g.IsTriangle(2, 0, 1) {
		t.Error("IsTriangle(0,1,2) should hold")
	}
	if g.IsTriangle(0, 2, 3) || g.IsTriangle(0, 0, 1) {
		t.Error("IsTriangle false positives")
	}
	if !g.ClosesTriangle(NewEdge(0, 1), 2) {
		t.Error("vertex 2 closes edge (0,1)")
	}
	if g.ClosesTriangle(NewEdge(0, 1), 3) || g.ClosesTriangle(NewEdge(0, 1), 0) || g.ClosesTriangle(NewEdge(0, 1), -1) {
		t.Error("ClosesTriangle false positives")
	}
}

func TestGlobalClusteringCoefficient(t *testing.T) {
	g := completeGraph(4)
	// K4: T=4, W=12, coefficient = 1.
	if got := g.GlobalClusteringCoefficient(); got != 1 {
		t.Errorf("clustering(K4) = %v, want 1", got)
	}
	if got := starGraph(10).GlobalClusteringCoefficient(); got != 0 {
		t.Errorf("clustering(star) = %v, want 0", got)
	}
}

func TestSortedIntersectionSize(t *testing.T) {
	cases := []struct {
		a, b []int
		want int
	}{
		{nil, nil, 0},
		{[]int{1, 2, 3}, nil, 0},
		{[]int{1, 2, 3}, []int{3, 4, 5}, 1},
		{[]int{1, 2, 3}, []int{1, 2, 3}, 3},
		{[]int{1, 3, 5, 7}, []int{2, 3, 6, 7, 8}, 2},
	}
	for _, c := range cases {
		if got := sortedIntersectionSize(c.a, c.b); got != c.want {
			t.Errorf("intersection(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// Property: triangle count of the complete graph K_n is C(n,3).
func TestTriangleCountCompleteGraphProperty(t *testing.T) {
	f := func(raw uint8) bool {
		n := int(raw%12) + 3
		want := int64(n) * int64(n-1) * int64(n-2) / 6
		return completeGraph(n).TriangleCount() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// Property: per-edge triangle counts are consistent with TrianglesOfEdge.
func TestEdgeTriangleCountsConsistentProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 10; trial++ {
		g := randomGraph(5+rng.Intn(20), 0.35, rng)
		counts := g.EdgeTriangleCounts()
		for i, e := range g.Edges() {
			if counts[i] != g.TrianglesOfEdge(e) {
				t.Fatalf("edge %v: %d vs %d", e, counts[i], g.TrianglesOfEdge(e))
			}
		}
	}
}

func BenchmarkTriangleCountWheel(b *testing.B) {
	g := wheelGraph(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if g.TriangleCount() != 9999 {
			b.Fatal("wrong count")
		}
	}
}

func BenchmarkCoreDecomposition(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := randomGraph(2000, 0.01, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.CoreDecomposition()
	}
}
