package graph

import "math/bits"

// Bitset is a fixed-size bit array. The estimators use one bit per
// closure-check item in the sharded passes: each shard sets hits in its own
// Bitset and the shards are OR-merged in shard order, which replaces the
// unsynchronized "write true into a shared bool" of the sequential code.
type Bitset struct {
	n     int
	words []uint64
}

// NewBitset returns a zeroed bitset of n bits.
func NewBitset(n int) *Bitset {
	return &Bitset{n: n, words: make([]uint64, (n+63)/64)}
}

// Len returns the number of bits.
func (b *Bitset) Len() int { return b.n }

// Set sets bit i.
func (b *Bitset) Set(i int) {
	b.words[uint(i)/64] |= 1 << (uint(i) % 64)
}

// Test reports whether bit i is set.
func (b *Bitset) Test(i int) bool {
	return b.words[uint(i)/64]&(1<<(uint(i)%64)) != 0
}

// Unset clears bit i.
func (b *Bitset) Unset(i int) {
	b.words[uint(i)/64] &^= 1 << (uint(i) % 64)
}

// SetAll sets every bit in [0, Len()). Bits beyond Len() in the last word
// stay zero so Count stays exact.
func (b *Bitset) SetAll() {
	for i := range b.words {
		b.words[i] = ^uint64(0)
	}
	if tail := b.n % 64; tail != 0 && len(b.words) > 0 {
		b.words[len(b.words)-1] = (1 << tail) - 1
	}
}

// ForEach invokes fn for every set bit in ascending order. fn may Unset the
// bit it is visiting (each word is iterated from a snapshot).
func (b *Bitset) ForEach(fn func(i int)) {
	for wi, w := range b.words {
		base := wi * 64
		for w != 0 {
			fn(base + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// Or merges other into b. The two bitsets must have the same length.
func (b *Bitset) Or(other *Bitset) {
	if other.n != b.n {
		panic("graph: Bitset.Or with mismatched lengths")
	}
	for i, w := range other.words {
		b.words[i] |= w
	}
}

// Count returns the number of set bits.
func (b *Bitset) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Clear zeroes every bit, letting a pooled bitset be reused.
func (b *Bitset) Clear() {
	clear(b.words)
}
