package graph

// CoreDecomposition is the result of the classic bucket-queue peeling
// procedure (Matula–Beck). It exposes the degeneracy κ(G), per-vertex core
// numbers, and a degeneracy ordering of the vertices.
type CoreDecomposition struct {
	// Degeneracy is κ(G) = max over subgraphs of the minimum degree, equal to
	// the maximum core number and to the maximum "observed degree at removal"
	// during minimum-degree peeling.
	Degeneracy int
	// Core[v] is the core number of vertex v: the largest k such that v
	// belongs to a subgraph with minimum degree >= k.
	Core []int
	// Order is a degeneracy ordering: vertices in the order they were peeled
	// (non-decreasing observed degree). Every vertex has at most Degeneracy
	// neighbors appearing later in Order.
	Order []int
	// Position[v] is the index of v in Order.
	Position []int
}

// Degeneracy returns κ(G) without retaining the full decomposition.
func (g *Graph) Degeneracy() int {
	return g.CoreDecomposition().Degeneracy
}

// CoreDecomposition computes core numbers, the degeneracy, and a degeneracy
// ordering in O(n + m) time using bucket queues.
func (g *Graph) CoreDecomposition() *CoreDecomposition {
	n := g.n
	cd := &CoreDecomposition{
		Core:     make([]int, n),
		Order:    make([]int, 0, n),
		Position: make([]int, n),
	}
	if n == 0 {
		return cd
	}

	deg := g.Degrees()
	maxDeg := 0
	for _, d := range deg {
		if d > maxDeg {
			maxDeg = d
		}
	}

	// Batagelj–Zaveršnik bucket-queue peeling.
	// bin[d] = starting index in vert of the bucket of vertices whose current
	// degree is d; vert holds vertices sorted by current degree; pos[v] is the
	// index of v in vert.
	bin := make([]int, maxDeg+2)
	for _, d := range deg {
		bin[d]++
	}
	startIdx := 0
	for d := 0; d <= maxDeg; d++ {
		size := bin[d]
		bin[d] = startIdx
		startIdx += size
	}
	vert := make([]int, n)
	pos := make([]int, n)
	for v := 0; v < n; v++ {
		pos[v] = bin[deg[v]]
		vert[pos[v]] = v
		bin[deg[v]]++
	}
	// Restore bin to bucket start positions.
	for d := maxDeg; d > 0; d-- {
		bin[d] = bin[d-1]
	}
	bin[0] = 0

	degeneracy := 0
	for i := 0; i < n; i++ {
		v := vert[i]
		if deg[v] > degeneracy {
			degeneracy = deg[v]
		}
		cd.Core[v] = deg[v]
		cd.Position[v] = len(cd.Order)
		cd.Order = append(cd.Order, v)

		for _, u := range g.Neighbors(v) {
			if deg[u] <= deg[v] {
				continue
			}
			du, pu := deg[u], pos[u]
			pw := bin[du]
			w := vert[pw]
			if u != w {
				vert[pw], vert[pu] = u, w
				pos[u], pos[w] = pw, pu
			}
			bin[du]++
			deg[u] = du - 1
		}
	}
	cd.Degeneracy = degeneracy
	return cd
}

// PeelSequence returns, for each vertex in peeling order, the degree it had
// at the moment of removal ("observed degree"). The maximum of this sequence
// equals the degeneracy; the sequence itself is useful for tests of
// Definition 1.1's iterative characterization.
func (g *Graph) PeelSequence() (order []int, observed []int) {
	cd := g.CoreDecomposition()
	order = cd.Order
	observed = make([]int, len(order))
	// Recompute the observed degrees by replaying the peeling with a simple
	// counter; this is an independent O(n+m) computation used mainly to
	// cross-check the bucket-queue implementation in tests.
	removedBefore := make([]bool, g.n)
	for i, v := range order {
		d := 0
		for _, w := range g.Neighbors(v) {
			if !removedBefore[w] {
				d++
			}
		}
		observed[i] = d
		removedBefore[v] = true
	}
	return order, observed
}

// DegeneracyOrientation returns, for each vertex, its out-neighbors when
// every edge is oriented from the earlier to the later vertex in a degeneracy
// ordering. Every vertex has out-degree at most κ(G). The orientation is the
// basis of O(mκ)-time exact triangle counting.
func (g *Graph) DegeneracyOrientation() (out [][]int, cd *CoreDecomposition) {
	cd = g.CoreDecomposition()
	out = make([][]int, g.n)
	for v := 0; v < g.n; v++ {
		for _, w := range g.Neighbors(v) {
			if cd.Position[v] < cd.Position[w] {
				out[v] = append(out[v], w)
			}
		}
	}
	return out, cd
}

// ArboricityUpperBound returns κ(G), which upper-bounds the arboricity α(G)
// only up to the relation α ≤ κ ≤ 2α−1; the returned value is the degeneracy
// itself, the parameter all bounds in this repository are stated in.
//
// ArboricityLowerBound returns the standard density lower bound
// ⌈max_{S⊆V, |S|≥2} m(S)/(|S|−1)⌉ restricted to the whole graph, i.e.
// ⌈m/(n−1)⌉, which is a cheap certified lower bound on the arboricity.
func (g *Graph) ArboricityUpperBound() int { return g.Degeneracy() }

// ArboricityLowerBound returns ⌈m/(n−1)⌉ (0 for graphs with fewer than two
// vertices), a lower bound on the arboricity and hence on the degeneracy.
func (g *Graph) ArboricityLowerBound() int {
	if g.n < 2 || g.NumEdges() == 0 {
		return 0
	}
	m := g.NumEdges()
	return (m + g.n - 2) / (g.n - 1)
}
