// Package graph provides the in-memory graph substrate used throughout the
// reproduction: CSR adjacency, degree and degeneracy (core) decomposition,
// and exact triangle counting in the style of Chiba–Nishizeki.
//
// Graphs are simple and undirected. Vertices are dense integers in [0, n).
// The package is the ground-truth engine for the streaming estimators: every
// experiment compares a streaming estimate against graph.Graph's exact counts.
package graph

import "fmt"

// Edge is an undirected edge between two vertices. Edges are stored in
// normalized form (U <= V) by most of this package; callers should use
// NewEdge or Normalize when constructing edges by hand.
type Edge struct {
	U, V int
}

// NewEdge returns a normalized edge with the smaller endpoint first.
func NewEdge(u, v int) Edge {
	if u > v {
		u, v = v, u
	}
	return Edge{U: u, V: v}
}

// Normalize returns the edge with endpoints ordered so that U <= V.
func (e Edge) Normalize() Edge {
	if e.U > e.V {
		return Edge{U: e.V, V: e.U}
	}
	return e
}

// Other returns the endpoint of e that is not v. It panics if v is not an
// endpoint of e; that is a programming error in the caller.
func (e Edge) Other(v int) int {
	switch v {
	case e.U:
		return e.V
	case e.V:
		return e.U
	default:
		panic(fmt.Sprintf("graph: vertex %d is not an endpoint of edge %v", v, e))
	}
}

// Has reports whether v is an endpoint of e.
func (e Edge) Has(v int) bool {
	return e.U == v || e.V == v
}

// IsLoop reports whether the edge is a self loop.
func (e Edge) IsLoop() bool {
	return e.U == e.V
}

// String implements fmt.Stringer.
func (e Edge) String() string {
	return fmt.Sprintf("(%d,%d)", e.U, e.V)
}

// Triangle is an unordered vertex triple. It is stored in sorted order
// (A < B < C) when produced by NewTriangle.
type Triangle struct {
	A, B, C int
}

// NewTriangle returns the triangle on the three given vertices with its
// fields sorted increasingly. It panics if two vertices coincide.
func NewTriangle(a, b, c int) Triangle {
	if a > b {
		a, b = b, a
	}
	if b > c {
		b, c = c, b
	}
	if a > b {
		a, b = b, a
	}
	if a == b || b == c {
		panic(fmt.Sprintf("graph: degenerate triangle (%d,%d,%d)", a, b, c))
	}
	return Triangle{A: a, B: b, C: c}
}

// Edges returns the three edges of the triangle in normalized form.
func (t Triangle) Edges() [3]Edge {
	return [3]Edge{
		NewEdge(t.A, t.B),
		NewEdge(t.A, t.C),
		NewEdge(t.B, t.C),
	}
}

// HasVertex reports whether v is one of the triangle's vertices.
func (t Triangle) HasVertex(v int) bool {
	return t.A == v || t.B == v || t.C == v
}

// HasEdge reports whether e (in any orientation) is one of the triangle's edges.
func (t Triangle) HasEdge(e Edge) bool {
	e = e.Normalize()
	for _, te := range t.Edges() {
		if te == e {
			return true
		}
	}
	return false
}

// Apex returns the vertex of the triangle not covered by edge e. It panics if
// e is not an edge of the triangle.
func (t Triangle) Apex(e Edge) int {
	e = e.Normalize()
	switch {
	case NewEdge(t.A, t.B) == e:
		return t.C
	case NewEdge(t.A, t.C) == e:
		return t.B
	case NewEdge(t.B, t.C) == e:
		return t.A
	default:
		panic(fmt.Sprintf("graph: edge %v is not part of triangle %v", e, t))
	}
}

// String implements fmt.Stringer.
func (t Triangle) String() string {
	return fmt.Sprintf("{%d,%d,%d}", t.A, t.B, t.C)
}
