package graph

import (
	"testing"
)

func TestSortedCounterForkMerge(t *testing.T) {
	base := NewSortedCounter([]int{5, 1, 9, 1, 5})
	a, b := base.Fork(), base.Fork()
	a.Inc(1)
	a.Inc(5)
	b.Inc(5)
	b.Inc(9)
	b.Inc(9)
	base.Inc(1)
	base.Merge(a)
	base.Merge(b)
	for _, tc := range []struct{ key, want int }{{1, 2}, {5, 2}, {9, 2}, {7, 0}} {
		got, _ := base.Get(tc.key)
		if got != tc.want {
			t.Errorf("count(%d) = %d, want %d", tc.key, got, tc.want)
		}
	}
	a.ResetCounts()
	if n, _ := a.Get(1); n != 0 {
		t.Errorf("ResetCounts left count(1) = %d", n)
	}
	if n, _ := base.Get(1); n != 2 {
		t.Errorf("ResetCounts of a fork mutated the base: count(1) = %d", n)
	}
}

func TestBitset(t *testing.T) {
	a := NewBitset(130)
	b := NewBitset(130)
	a.Set(0)
	a.Set(64)
	b.Set(64)
	b.Set(129)
	a.Or(b)
	for _, i := range []int{0, 64, 129} {
		if !a.Test(i) {
			t.Errorf("bit %d not set after Or", i)
		}
	}
	if a.Test(1) || a.Test(128) {
		t.Error("unexpected bit set")
	}
	if a.Count() != 3 {
		t.Errorf("Count = %d, want 3", a.Count())
	}
	a.Clear()
	if a.Count() != 0 || a.Test(64) {
		t.Error("Clear left bits set")
	}
}

func TestBitsetSetAllUnsetForEach(t *testing.T) {
	// 130 exercises a partial last word; the tail bits past Len must stay
	// clear so Count stays exact.
	b := NewBitset(130)
	b.SetAll()
	if b.Count() != 130 {
		t.Fatalf("Count after SetAll = %d, want 130", b.Count())
	}
	b.Unset(0)
	b.Unset(64)
	b.Unset(129)
	if b.Count() != 127 || b.Test(64) || b.Test(129) {
		t.Fatalf("Unset broken: count=%d", b.Count())
	}
	var visited []int
	b.ForEach(func(i int) {
		if len(visited) < 3 {
			visited = append(visited, i)
		}
		// Unsetting the visited bit mid-iteration must be safe (the peel
		// loop in internal/degen relies on this).
		b.Unset(i)
	})
	if len(visited) < 3 || visited[0] != 1 || visited[1] != 2 || visited[2] != 3 {
		t.Fatalf("ForEach order broken: %v", visited)
	}
	if b.Count() != 0 {
		t.Fatalf("ForEach+Unset left %d bits", b.Count())
	}
	// Exact multiple of 64: SetAll must not touch nonexistent tail bits.
	c := NewBitset(128)
	c.SetAll()
	if c.Count() != 128 {
		t.Fatalf("Count = %d, want 128", c.Count())
	}
	// Empty bitset: all new methods are no-ops.
	e := NewBitset(0)
	e.SetAll()
	e.ForEach(func(int) { t.Fatal("empty bitset visited a bit") })
	if e.Count() != 0 {
		t.Fatal("empty bitset counts bits")
	}
}

func TestTriangleIndex(t *testing.T) {
	tris := []Triangle{
		NewTriangle(5, 2, 9),
		NewTriangle(1, 2, 3),
		NewTriangle(2, 5, 9), // duplicate of the first
		NewTriangle(0, 7, 8),
	}
	ix := NewTriangleIndex(tris)
	if ix.Len() != 3 {
		t.Fatalf("Len = %d, want 3", ix.Len())
	}
	// Sorted triple order: (0,7,8) < (1,2,3) < (2,5,9).
	want := []Triangle{NewTriangle(0, 7, 8), NewTriangle(1, 2, 3), NewTriangle(2, 5, 9)}
	for i, w := range want {
		if ix.TriangleAt(i) != w {
			t.Errorf("TriangleAt(%d) = %v, want %v", i, ix.TriangleAt(i), w)
		}
		if ix.Lookup(w) != i {
			t.Errorf("Lookup(%v) = %d, want %d", w, ix.Lookup(w), i)
		}
	}
	if ix.Lookup(NewTriangle(1, 2, 4)) != -1 {
		t.Error("Lookup of absent triangle should be -1")
	}
}

// TestTriangleCountWorkers pins the parallel counter to the sequential one
// across worker counts on a graph large enough to take the chunked path.
func TestTriangleCountWorkers(t *testing.T) {
	b := NewBuilder(0)
	// A long triangular strip: ~3000 vertices, one triangle per step.
	for v := 0; v+2 < 3000; v++ {
		b.AddEdge(v, v+1)
		b.AddEdge(v, v+2)
	}
	g := b.Build()
	want := g.TriangleCountWorkers(1)
	for _, workers := range []int{2, 4, 8} {
		if got := g.TriangleCountWorkers(workers); got != want {
			t.Errorf("TriangleCountWorkers(%d) = %d, want %d", workers, got, want)
		}
	}
	if got := g.TriangleCountBrute(); got != want {
		t.Errorf("brute-force count %d disagrees with %d", got, want)
	}
}

// TestTriangleIndexLargeIDs exercises the unpacked fallback (vertices beyond
// the 21-bit packing limit).
func TestTriangleIndexLargeIDs(t *testing.T) {
	big := triPackLimit + 100
	tris := []Triangle{
		NewTriangle(1, 2, big),
		NewTriangle(0, 1, 2),
		NewTriangle(1, 2, big), // duplicate
	}
	ix := NewTriangleIndex(tris)
	if ix.Len() != 2 {
		t.Fatalf("Len = %d, want 2", ix.Len())
	}
	if ix.packed != nil {
		t.Fatal("index should not pack vertices beyond the 21-bit limit")
	}
	if got := ix.Lookup(NewTriangle(1, 2, big)); got != 1 {
		t.Errorf("Lookup(large) = %d, want 1", got)
	}
	if ix.Lookup(NewTriangle(3, 4, big)) != -1 {
		t.Error("Lookup of absent large triangle should be -1")
	}
}
