package radix

import (
	"math/rand"
	"testing"
)

// The hottest call site (EdgeIndex construction) sorts millions of Pairs on
// big runs, directly through SortPairs; the generic benchmark measures the
// permutation wrapper's overhead for element types that are not Pairs. The
// SortPairs numbers must stay at parity with the specialized pre-unification
// sorts (graph.sortPackedItems as of PR 2) — that is the reason the concrete
// core is exported instead of funneling every caller through Sort.

func benchInput(n int) []Pair {
	rng := rand.New(rand.NewSource(1))
	a := make([]Pair, n)
	for i := range a {
		a[i] = Pair{Key: uint64(rng.Uint32())<<32 | uint64(rng.Uint32()), Item: int32(i)}
	}
	return a
}

func BenchmarkSortPairs2M(b *testing.B) {
	input := benchInput(1 << 21)
	work := make([]Pair, len(input))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, input)
		SortPairs(work)
	}
}

func BenchmarkSortGeneric2M(b *testing.B) {
	input := benchInput(1 << 21)
	work := make([]Pair, len(input))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, input)
		Sort(work, func(p Pair) uint64 { return p.Key })
	}
}
