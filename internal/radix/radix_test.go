package radix

import (
	"math/rand"
	"slices"
	"testing"
)

type pair struct {
	key     uint64
	payload int
}

func reference(a []pair) []pair {
	out := slices.Clone(a)
	slices.SortStableFunc(out, func(x, y pair) int {
		switch {
		case x.key < y.key:
			return -1
		case x.key > y.key:
			return 1
		}
		return 0
	})
	return out
}

func checkAgainstReference(t *testing.T, name string, a []pair) {
	t.Helper()
	want := reference(a)
	Sort(a, func(p pair) uint64 { return p.key })
	if !slices.Equal(a, want) {
		t.Errorf("%s: radix order diverges from the stable reference sort", name)
	}
}

func TestSortMatchesStableReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cases := map[string]func(i int) uint64{
		// Small key range: many duplicates, stability is load-bearing.
		"duplicates": func(int) uint64 { return uint64(rng.Intn(17)) },
		// Uniform 32-bit keys: the common packed-edge shape.
		"uniform32": func(int) uint64 { return uint64(rng.Uint32()) },
		// Full 64-bit keys: exercises the high bytes.
		"uniform64": func(int) uint64 { return rng.Uint64() },
		// A constant middle byte: exercises the skip-byte fast path.
		"skipbyte": func(int) uint64 { return uint64(rng.Intn(256))<<16 | 0xab00 | uint64(rng.Intn(256)) },
		// Already sorted and reverse sorted inputs.
		"sorted":  func(i int) uint64 { return uint64(i) },
		"reverse": func(i int) uint64 { return uint64(1<<20 - i) },
	}
	for name, gen := range cases {
		for _, n := range []int{0, 1, 7, fallbackLimit - 1, fallbackLimit, 5000} {
			a := make([]pair, n)
			for i := range a {
				a[i] = pair{key: gen(i), payload: i}
			}
			checkAgainstReference(t, name, a)
		}
	}
}

func TestSortPairsMatchesStableReference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{0, 1, 7, fallbackLimit - 1, fallbackLimit, 5000} {
		a := make([]Pair, n)
		want := make([]pair, n)
		for i := range a {
			k := uint64(rng.Uint32()) // narrow range: some duplicate keys
			a[i] = Pair{Key: k, Item: int32(i)}
			want[i] = pair{key: k, payload: i}
		}
		want = reference(want)
		SortPairs(a)
		for i := range a {
			if a[i].Key != want[i].key || int(a[i].Item) != want[i].payload {
				t.Fatalf("n=%d: SortPairs[%d] = %+v, want {%d %d}", n, i, a[i], want[i].key, want[i].payload)
			}
		}
	}
}

func TestSortAllEqualKeys(t *testing.T) {
	a := make([]pair, 3000)
	for i := range a {
		a[i] = pair{key: 99, payload: i}
	}
	Sort(a, func(p pair) uint64 { return p.key })
	for i, p := range a {
		if p.payload != i {
			t.Fatalf("equal-key sort reordered element %d (payload %d)", i, p.payload)
		}
	}
}

func TestSortInts(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := make([]int, 4096)
	for i := range a {
		a[i] = rng.Intn(1 << 30)
	}
	want := slices.Clone(a)
	slices.Sort(want)
	Sort(a, func(v int) uint64 { return uint64(v) })
	if !slices.Equal(a, want) {
		t.Fatal("int sort diverges from slices.Sort")
	}
}
