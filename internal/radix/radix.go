// Package radix provides the one LSD radix sort shared by the packages that
// used to carry private copies (sampling.SortPositions over stream positions,
// graph's packed edge-key/item pairs). The core sorts Pair records — a uint64
// key with a 32-bit payload, the shape of every hot call site — and the
// generic Sort adapts any element type onto that core through an index
// permutation.
package radix

import (
	"math"
	"slices"
)

// fallbackLimit is the input size below which a comparison sort wins: the
// counting passes only pay off once their Θ(n)-per-byte work amortizes over
// enough elements.
const fallbackLimit = 1024

// Pair is the record the LSD core sorts: a uint64 key and a 32-bit payload
// (an item id or an index into a caller-side array). Sorting concrete Pairs
// keeps the per-byte loops free of indirect key-func calls and of
// generic-width element moves — calling a key callback inside every byte
// pass, or radix-sorting key-carrying copies of generic elements, measured
// 1.5–3× slower on the 2M-record EdgeIndex build (see bench_test.go).
type Pair struct {
	Key  uint64
	Item int32
}

// SortPairs orders a ascending by Key, stably (equal keys keep their relative
// order). Large inputs take an LSD radix sort over the key bytes, skipping
// bytes on which every key agrees; small inputs take a stable comparison
// sort. Both paths produce the identical ordering, so the crossover never
// affects results.
func SortPairs(a []Pair) {
	if len(a) < fallbackLimit {
		slices.SortStableFunc(a, comparePairKeys)
		return
	}
	var maxKey uint64
	for i := range a {
		if a[i].Key > maxKey {
			maxKey = a[i].Key
		}
	}
	buf := make([]Pair, len(a))
	src, dst := a, buf
	for shift := uint(0); shift < 64 && maxKey>>shift > 0; shift += 8 {
		var counts [256]int
		for i := range src {
			counts[(src[i].Key>>shift)&0xff]++
		}
		if counts[(src[0].Key>>shift)&0xff] == len(src) {
			continue // all keys share this byte; skip the pass
		}
		sum := 0
		for i := range counts {
			counts[i], sum = sum, sum+counts[i]
		}
		for i := range src {
			b := (src[i].Key >> shift) & 0xff
			dst[counts[b]] = src[i]
			counts[b]++
		}
		src, dst = dst, src
	}
	if &src[0] != &a[0] {
		copy(a, src)
	}
}

func comparePairKeys(x, y Pair) int {
	switch {
	case x.Key < y.Key:
		return -1
	case x.Key > y.Key:
		return 1
	}
	return 0
}

// Sort orders a ascending by key, stably (elements with equal keys keep their
// relative order), by running the Pair core over (key, index) records and
// applying the resulting permutation. Elements are only touched in the O(n)
// key-extraction and permutation passes; the per-byte work is all on concrete
// Pairs. The ordering is identical to a stable comparison sort by key.
func Sort[T any](a []T, key func(T) uint64) {
	if len(a) < fallbackLimit || len(a) > math.MaxInt32 {
		// Tiny inputs, and the (never seen in practice) inputs too long for
		// an int32 index, take the comparison path.
		slices.SortStableFunc(a, func(x, y T) int {
			return comparePairKeys(Pair{Key: key(x)}, Pair{Key: key(y)})
		})
		return
	}
	pairs := make([]Pair, len(a))
	for i, v := range a {
		pairs[i] = Pair{Key: key(v), Item: int32(i)}
	}
	SortPairs(pairs)
	// Apply the permutation: pairs[i].Item is the source index of the
	// element that belongs at position i.
	out := make([]T, len(a))
	for i := range pairs {
		out[i] = a[pairs[i].Item]
	}
	copy(a, out)
}
