package core_test

// Determinism goldens for the six-pass estimator: for a fixed workload,
// stream order, and seed, the estimate and its resource accounting are pinned
// to exact values. The dense-state rewrite of the estimator hot path is
// required to reproduce the map-based implementation bit for bit on the rules
// whose randomness is consumed in passes 1–4 (RuleNone, RuleLowestDegree; the
// wheel values below predate the rewrite). RuleLowestCount additionally pins
// the now-deterministic pass-5 sampling order — the map-based implementation
// consumed randomness in hash-map iteration order and was not reproducible
// run to run.

import (
	"testing"

	"degentri/internal/core"
	"degentri/internal/gen"
	"degentri/internal/graph"
	"degentri/internal/stream"
)

type goldenCase struct {
	workload   string
	rule       core.AssignmentRule
	seed       uint64
	estimate   float64
	found      int
	assigned   int
	distinct   int
	spaceWords int64
	passes     int
}

// goldenGraphs builds the two pinned workloads: the §1.1 wheel and a
// Holme–Kim preferential-attachment graph, each with the stream seed used by
// the standard experiment suite.
func goldenGraphs() map[string]struct {
	g          *graph.Graph
	streamSeed uint64
} {
	return map[string]struct {
		g          *graph.Graph
		streamSeed uint64
	}{
		"wheel":          {gen.Wheel(800), 11},
		"pref-attach-k4": {gen.HolmeKim(1000, 4, 0.7, 101), 14},
	}
}

var goldenCases = []goldenCase{
	{"wheel", core.RuleLowestCount, 1, 848.9375, 41, 17, 29, 6803, 6},
	{"wheel", core.RuleLowestCount, 42, 799, 55, 16, 43, 9425, 6},
	{"wheel", core.RuleNone, 1, 682.47916666666663, 41, 41, 0, 1251, 4},
	{"wheel", core.RuleNone, 42, 915.52083333333337, 55, 55, 0, 1269, 4},
	{"wheel", core.RuleLowestDegree, 1, 699.125, 41, 14, 29, 1367, 4},
	{"wheel", core.RuleLowestDegree, 42, 898.875, 55, 18, 43, 1441, 4},
	{"pref-attach-k4", core.RuleLowestCount, 1, 2167.9432544577771, 62, 15, 51, 17937, 6},
	{"pref-attach-k4", core.RuleLowestCount, 42, 2464.3129578176304, 52, 17, 45, 15938, 6},
	{"pref-attach-k4", core.RuleNone, 1, 2986.9440394751596, 62, 62, 0, 2885, 4},
	{"pref-attach-k4", core.RuleNone, 42, 2512.6328197356233, 52, 52, 0, 2634, 4},
	{"pref-attach-k4", core.RuleLowestDegree, 1, 2890.5910059437028, 62, 20, 51, 3089, 4},
	{"pref-attach-k4", core.RuleLowestDegree, 42, 2609.2725435716088, 52, 18, 45, 2814, 4},
}

func TestEstimateTrianglesGolden(t *testing.T) {
	graphs := goldenGraphs()
	for _, gc := range goldenCases {
		w := graphs[gc.workload]
		cfg := core.DefaultConfig(0.1, w.g.Degeneracy(), w.g.TriangleCount())
		cfg.CR, cfg.CL, cfg.CS = 16, 16, 8
		cfg.Rule = gc.rule
		cfg.Seed = gc.seed

		// Run twice: the second run asserts determinism independent of the
		// pinned values.
		var results [2]core.Result
		for rep := range results {
			res, err := core.EstimateTriangles(stream.FromGraphShuffled(w.g, w.streamSeed), cfg)
			if err != nil {
				t.Fatalf("%s/%v/seed=%d: %v", gc.workload, gc.rule, gc.seed, err)
			}
			results[rep] = res
		}
		if results[0] != results[1] {
			t.Errorf("%s/%v/seed=%d: two identical runs disagree:\n  %+v\n  %+v",
				gc.workload, gc.rule, gc.seed, results[0], results[1])
		}

		res := results[0]
		if res.Estimate != gc.estimate {
			t.Errorf("%s/%v/seed=%d: estimate = %.17g, golden %.17g",
				gc.workload, gc.rule, gc.seed, res.Estimate, gc.estimate)
		}
		if res.TrianglesFound != gc.found || res.TrianglesAssigned != gc.assigned ||
			res.DistinctTriangles != gc.distinct {
			t.Errorf("%s/%v/seed=%d: found/assigned/distinct = %d/%d/%d, golden %d/%d/%d",
				gc.workload, gc.rule, gc.seed,
				res.TrianglesFound, res.TrianglesAssigned, res.DistinctTriangles,
				gc.found, gc.assigned, gc.distinct)
		}
		if res.SpaceWords != gc.spaceWords {
			t.Errorf("%s/%v/seed=%d: space = %d words, golden %d",
				gc.workload, gc.rule, gc.seed, res.SpaceWords, gc.spaceWords)
		}
		if res.Passes != gc.passes {
			t.Errorf("%s/%v/seed=%d: passes = %d, golden %d",
				gc.workload, gc.rule, gc.seed, res.Passes, gc.passes)
		}
	}
}

// TestGeneratorsDeterministic guards the generators the goldens depend on:
// the same seed must yield the identical graph (this failed for
// Barabási–Albert before the target-set iteration fix).
func TestGeneratorsDeterministic(t *testing.T) {
	a := gen.BarabasiAlbert(500, 3, 7)
	b := gen.BarabasiAlbert(500, 3, 7)
	if a.NumEdges() != b.NumEdges() {
		t.Fatalf("BarabasiAlbert edge counts differ: %d vs %d", a.NumEdges(), b.NumEdges())
	}
	ea, eb := a.Edges(), b.Edges()
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("BarabasiAlbert edge %d differs: %v vs %v", i, ea[i], eb[i])
		}
	}
}
