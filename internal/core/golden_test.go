package core_test

// Determinism goldens for the six-pass estimator: for a fixed workload,
// stream order, and seed, the estimate and its resource accounting are pinned
// to exact values — at every worker count (each case runs with Workers=1 and
// Workers=4 and the results must be identical).
//
// The values below were re-pinned when the estimator moved to the sharded
// pass engine: passes 3 and 5 now consume per-(instance, shard) RNG streams
// keyed by Config.Seed (sampling.MixSeed) instead of one sequential RNG, so
// that shards can run on concurrent workers without the realized randomness
// depending on scheduling. The sampling distributions are unchanged (uniform
// neighbor reservoirs; see the merge-uniformity tests in internal/sampling),
// but the realized draws — and with them these goldens — differ from the
// PR 1 values. The break is deliberate and recorded in CHANGES.md.

import (
	"testing"

	"degentri/internal/core"
	"degentri/internal/gen"
	"degentri/internal/graph"
	"degentri/internal/stream"
)

type goldenCase struct {
	workload   string
	rule       core.AssignmentRule
	seed       uint64
	estimate   float64
	found      int
	assigned   int
	distinct   int
	spaceWords int64
	passes     int
}

// goldenGraphs builds the two pinned workloads: the §1.1 wheel and a
// Holme–Kim preferential-attachment graph, each with the stream seed used by
// the standard experiment suite.
func goldenGraphs() map[string]struct {
	g          *graph.Graph
	streamSeed uint64
} {
	return map[string]struct {
		g          *graph.Graph
		streamSeed uint64
	}{
		"wheel":          {gen.Wheel(800), 11},
		"pref-attach-k4": {gen.HolmeKim(1000, 4, 0.7, 101), 14},
	}
}

var goldenCases = []goldenCase{
	{"wheel", core.RuleLowestCount, 1, 1148.5625, 51, 23, 34, 7720, 6},
	{"wheel", core.RuleLowestCount, 42, 749.0625, 55, 15, 42, 9265, 6},
	{"wheel", core.RuleNone, 1, 848.9375, 51, 51, 0, 1252, 4},
	{"wheel", core.RuleNone, 42, 915.52083333333337, 55, 55, 0, 1293, 4},
	{"wheel", core.RuleLowestDegree, 1, 549.3125, 51, 11, 34, 1388, 4},
	{"wheel", core.RuleLowestDegree, 42, 898.875, 55, 18, 42, 1461, 4},
	{"pref-attach-k4", core.RuleLowestCount, 1, 2601.5319053493326, 51, 18, 45, 15762, 6},
	{"pref-attach-k4", core.RuleLowestCount, 42, 2899.1917150795653, 51, 20, 47, 16080, 6},
	{"pref-attach-k4", core.RuleNone, 1, 2457.0023550521473, 51, 51, 0, 2926, 4},
	{"pref-attach-k4", core.RuleNone, 42, 2464.3129578176308, 51, 51, 0, 2644, 4},
	{"pref-attach-k4", core.RuleLowestDegree, 1, 1589.8250532690365, 51, 11, 45, 3106, 4},
	{"pref-attach-k4", core.RuleLowestDegree, 42, 1449.5958575397826, 51, 10, 47, 2832, 4},
}

func TestEstimateTrianglesGolden(t *testing.T) {
	graphs := goldenGraphs()
	for _, gc := range goldenCases {
		w := graphs[gc.workload]
		cfg := core.DefaultConfig(0.1, w.g.Degeneracy(), w.g.TriangleCount())
		cfg.CR, cfg.CL, cfg.CS = 16, 16, 8
		cfg.Rule = gc.rule
		cfg.Seed = gc.seed

		// Run with one and four shard workers: the parallel engine must
		// reproduce the sequential pass bit for bit.
		var results [2]core.Result
		for rep, workers := range []int{1, 4} {
			runCfg := cfg
			runCfg.Workers = workers
			res, err := core.EstimateTriangles(stream.FromGraphShuffled(w.g, w.streamSeed), runCfg)
			if err != nil {
				t.Fatalf("%s/%v/seed=%d: %v", gc.workload, gc.rule, gc.seed, err)
			}
			results[rep] = res
		}
		if results[0] != results[1] {
			t.Errorf("%s/%v/seed=%d: 1-worker and 4-worker runs disagree:\n  %+v\n  %+v",
				gc.workload, gc.rule, gc.seed, results[0], results[1])
		}

		res := results[0]
		if res.Estimate != gc.estimate {
			t.Errorf("%s/%v/seed=%d: estimate = %.17g, golden %.17g",
				gc.workload, gc.rule, gc.seed, res.Estimate, gc.estimate)
		}
		if res.TrianglesFound != gc.found || res.TrianglesAssigned != gc.assigned ||
			res.DistinctTriangles != gc.distinct {
			t.Errorf("%s/%v/seed=%d: found/assigned/distinct = %d/%d/%d, golden %d/%d/%d",
				gc.workload, gc.rule, gc.seed,
				res.TrianglesFound, res.TrianglesAssigned, res.DistinctTriangles,
				gc.found, gc.assigned, gc.distinct)
		}
		if res.SpaceWords != gc.spaceWords {
			t.Errorf("%s/%v/seed=%d: space = %d words, golden %d",
				gc.workload, gc.rule, gc.seed, res.SpaceWords, gc.spaceWords)
		}
		if res.Passes != gc.passes {
			t.Errorf("%s/%v/seed=%d: passes = %d, golden %d",
				gc.workload, gc.rule, gc.seed, res.Passes, gc.passes)
		}
	}
}

// TestGeneratorsDeterministic guards the generators the goldens depend on:
// the same seed must yield the identical graph (this failed for
// Barabási–Albert before the target-set iteration fix).
func TestGeneratorsDeterministic(t *testing.T) {
	a := gen.BarabasiAlbert(500, 3, 7)
	b := gen.BarabasiAlbert(500, 3, 7)
	if a.NumEdges() != b.NumEdges() {
		t.Fatalf("BarabasiAlbert edge counts differ: %d vs %d", a.NumEdges(), b.NumEdges())
	}
	ea, eb := a.Edges(), b.Edges()
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("BarabasiAlbert edge %d differs: %v vs %v", i, ea[i], eb[i])
		}
	}
}
