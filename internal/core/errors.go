package core

import (
	"context"
	"errors"
	"fmt"
)

// Sentinel errors of the estimator layer. Engine-level failures (truncation,
// corruption, transient I/O) keep their stream-layer sentinels; these two
// classify how a run *ended* when the caller's context fired, so CLIs and the
// future daemon can map outcomes without inspecting context internals:
//
//   - ErrDeadline: the run's deadline expired (context.DeadlineExceeded
//     somewhere below). The budget ran out — the input is fine.
//   - ErrAborted: the run was cancelled (context.Canceled) — a SIGINT, a
//     withdrawn request, a parent operation giving up.
//
// Both wrap the original context error chain, so errors.Is against
// context.DeadlineExceeded/context.Canceled keeps working too.
var (
	ErrDeadline = errors.New("core: deadline exceeded")
	ErrAborted  = errors.New("core: run aborted")
)

// wrapAbort brands an error that stems from context cancellation with the
// matching core sentinel, leaving every other error untouched.
func wrapAbort(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, ErrDeadline) || errors.Is(err, ErrAborted):
		return err
	case errors.Is(err, context.DeadlineExceeded):
		return fmt.Errorf("%w: %w", ErrDeadline, err)
	case errors.Is(err, context.Canceled):
		return fmt.Errorf("%w: %w", ErrAborted, err)
	default:
		return err
	}
}

// ctxDone reports whether err is a context-cancellation outcome (either
// flavor) — the condition under which the geometric search degrades to its
// best completed probe instead of failing.
func ctxDone(err error) bool {
	return err != nil &&
		(errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled))
}
