package core

import (
	"fmt"

	"degentri/internal/graph"
	"degentri/internal/sampling"
	"degentri/internal/stream"
)

// DegreeOracle answers vertex degree queries, the abstract primitive of the
// Section 4 warm-up model. Implementations must answer consistently with the
// streamed graph.
type DegreeOracle interface {
	Degree(v int) int
}

// GraphOracle is a DegreeOracle backed by a fully materialized graph. It also
// counts how many queries were issued, because the warm-up analysis reports
// the query count (2m for Algorithm 1).
type GraphOracle struct {
	g       *graph.Graph
	queries int64
}

// NewGraphOracle wraps a graph as a degree oracle.
func NewGraphOracle(g *graph.Graph) *GraphOracle { return &GraphOracle{g: g} }

// Degree implements DegreeOracle.
func (o *GraphOracle) Degree(v int) int {
	o.queries++
	if v < 0 || v >= o.g.NumVertices() {
		return 0
	}
	return o.g.Degree(v)
}

// Queries returns the number of degree queries answered so far.
func (o *GraphOracle) Queries() int64 { return o.queries }

// ResetQueries zeroes the query counter.
func (o *GraphOracle) ResetQueries() { o.queries = 0 }

// idealInstance is the state of one parallel copy of Algorithm 1.
type idealInstance struct {
	reservoir *sampling.WeightedSingleReservoir[graph.Edge]
	edge      graph.Edge
	edgeDeg   int
	light     int
	other     int
	neighbor  sampling.SingleReservoir[int]
	w         int
	hasW      bool
	closed    bool
	y         bool
}

// IdealEstimator runs Algorithm 1: k parallel estimator copies, each sampling
// an edge with probability proportional to d_e using the degree oracle, then
// a uniform neighbor of the light endpoint, then a closure check, then the
// assignment filter. It makes three stream passes and 2m + O(k) oracle
// queries. The returned estimate is the (median-of-means over Config.Groups)
// average of d_E·Y_i.
func IdealEstimator(src stream.Stream, oracle DegreeOracle, cfg Config, k int) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if k < 1 {
		return Result{}, fmt.Errorf("core: ideal estimator needs k >= 1, got %d", k)
	}
	rng := sampling.NewRNG(cfg.Seed)
	meter := stream.NewSpaceMeter()
	counter := stream.NewPassCounter(src)

	res := Result{Instances: k}
	baseQueries := oracleQueryCount(oracle)

	// Pass 1: degree-proportional edge sampling into k weighted reservoirs.
	instances := make([]*idealInstance, k)
	for i := range instances {
		instances[i] = &idealInstance{
			reservoir: sampling.NewWeightedSingleReservoir[graph.Edge](rng.Split()),
			neighbor:  *sampling.NewSingleReservoir[int](rng.Split()),
		}
	}
	meter.Charge(int64(k) * (stream.WordsPerEdge + 4*stream.WordsPerScalar))

	var dE int64
	m, err := stream.ForEachBatch(counter, func(batch []graph.Edge) error {
		for _, e := range batch {
			du, dv := oracle.Degree(e.U), oracle.Degree(e.V)
			de := du
			if dv < du {
				de = dv
			}
			dE += int64(de)
			for _, inst := range instances {
				inst.reservoir.Offer(e, float64(de))
			}
		}
		return nil
	})
	if err != nil {
		return res, err
	}
	res.EdgesInStream = m

	// Fix each instance's sampled edge and light endpoint. Instances are
	// grouped by light endpoint for the per-edge lookups of pass 2.
	var active []int32
	var lightVerts []int
	for i, inst := range instances {
		e, ok := inst.reservoir.Value()
		if !ok {
			continue // empty stream or all-zero degrees
		}
		inst.edge = e
		du, dv := oracle.Degree(e.U), oracle.Degree(e.V)
		if du <= dv {
			inst.light, inst.other, inst.edgeDeg = e.U, e.V, du
		} else {
			inst.light, inst.other, inst.edgeDeg = e.V, e.U, dv
		}
		active = append(active, int32(i))
		lightVerts = append(lightVerts, inst.light)
	}
	lightGroups := graph.NewVertexGroups(lightVerts)

	// Pass 2: uniform neighbor of the light endpoint, per instance.
	if _, err := stream.ForEachBatch(counter, func(batch []graph.Edge) error {
		for _, e := range batch {
			for _, idx := range lightGroups.Lookup(e.U) {
				instances[active[idx]].neighbor.Offer(e.V)
			}
			for _, idx := range lightGroups.Lookup(e.V) {
				instances[active[idx]].neighbor.Offer(e.U)
			}
		}
		return nil
	}); err != nil {
		return res, err
	}

	// Pass 3: closure checks.
	var closureKeys []graph.Edge
	var closureInst []int32
	for i, inst := range instances {
		w, ok := inst.neighbor.Value()
		if !ok || w == inst.other {
			continue
		}
		inst.w, inst.hasW = w, true
		closureKeys = append(closureKeys, graph.NewEdge(inst.other, w))
		closureInst = append(closureInst, int32(i))
	}
	closure := graph.NewEdgeIndex(closureKeys)
	meter.Charge(int64(closure.Keys()) * (stream.WordsPerEdge + stream.WordsPerScalar))
	if _, err := stream.ForEachBatch(counter, func(batch []graph.Edge) error {
		for _, e := range batch {
			for _, it := range closure.Lookup(e.Normalize()) {
				instances[closureInst[it]].closed = true
			}
		}
		return nil
	}); err != nil {
		return res, err
	}

	// Assignment filter (no extra passes in the oracle model).
	values := make([]float64, 0, k)
	for _, inst := range instances {
		y := 0.0
		if inst.closed && inst.hasW {
			res.TrianglesFound++
			tri := graph.NewTriangle(inst.edge.U, inst.edge.V, inst.w)
			switch cfg.Rule {
			case RuleNone:
				inst.y = true
			case RuleLowestDegree, RuleLowestCount:
				inst.y = lowestDegreeEdge(tri, oracle) == inst.edge.Normalize()
			}
			if inst.y {
				res.TrianglesAssigned++
				y = 1
			}
		}
		values = append(values, float64(dE)*y)
	}
	estimate := sampling.MedianOfMeans(values, cfg.Groups)
	if cfg.Rule == RuleNone {
		estimate /= 3
	}

	res.Estimate = estimate
	res.Passes = counter.Passes()
	res.SpaceWords = meter.Peak()
	res.OracleQueries = oracleQueryCount(oracle) - baseQueries
	return res, nil
}

// lowestDegreeEdge returns the edge of the triangle whose smaller endpoint
// degree is minimal, breaking ties by lexicographic edge order so that the
// assignment is consistent across invocations.
func lowestDegreeEdge(t graph.Triangle, oracle DegreeOracle) graph.Edge {
	best := graph.Edge{U: -1, V: -1}
	bestDeg := int(^uint(0) >> 1)
	for _, e := range t.Edges() {
		du, dv := oracle.Degree(e.U), oracle.Degree(e.V)
		de := du
		if dv < du {
			de = dv
		}
		if de < bestDeg || (de == bestDeg && lessEdge(e, best)) {
			best, bestDeg = e, de
		}
	}
	return best
}

func lessEdge(a, b graph.Edge) bool {
	if b.U < 0 {
		return true
	}
	if a.U != b.U {
		return a.U < b.U
	}
	return a.V < b.V
}

func oracleQueryCount(o DegreeOracle) int64 {
	if go_, ok := o.(*GraphOracle); ok {
		return go_.Queries()
	}
	return 0
}
