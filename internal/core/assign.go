package core

import (
	"math"
	"slices"

	"degentri/internal/graph"
	"degentri/internal/stream"
)

// triState is the per-triangle state of the assignment procedure
// (Algorithm 3). Each of the three edge slots carries its own neighborhood
// sample of size s.
type triState struct {
	tri    graph.Triangle
	edges  [3]graph.Edge
	light  [3]int
	other  [3]int
	deg    [3]int   // d_f = min endpoint degree of the slot's edge
	skip   [3]bool  // true when d_f exceeds the heavy-degree threshold (line 9)
	seen   [3]int64 // neighbors of the light endpoint seen so far (pass 5)
	sample [3][]int // s reservoir samples from N(f)
	closed [3]int   // how many of the s samples closed a triangle (pass 6)
	ye     [3]float64
}

// offer feeds one neighbor of the slot's light endpoint into the slot's s
// independent size-1 reservoirs (sampling with replacement from N(f)).
func (st *triState) offer(slot, v int, est *Estimator) {
	st.seen[slot]++
	n := st.seen[slot]
	for j := range st.sample[slot] {
		if est.rng.Int63n(n) == 0 {
			st.sample[slot][j] = v
		}
	}
}

// assign runs the triangle-to-edge assignment phase and returns, for every
// distinct triangle discovered by the instances, the edge it is assigned to.
// Triangles left unassigned (Algorithm 3 returning ⊥) have no map entry.
//
// RuleNone needs no assignment and returns an empty map without extra
// passes. RuleLowestDegree assigns to the minimum-degree edge using degrees
// already measured in passes 2 and 4, also without extra passes.
// RuleLowestCount is the paper's rule and performs passes 5 and 6.
//
// All iteration is over slices in triangle-discovery order (the memo table
// keeps only the dedup index), so the randomness consumed in pass 5 — and
// with it the estimate — is deterministic for a fixed seed.
func (est *Estimator) assign(
	counter stream.Stream,
	res *Result,
	instances []instance,
	degreeOf func(int) (int, bool),
	m int,
) (map[graph.Triangle]graph.Edge, error) {
	cfg := est.cfg
	assignments := make(map[graph.Triangle]graph.Edge)
	if cfg.Rule == RuleNone {
		return assignments, nil
	}

	// Deduplicate the discovered triangles: the memo table of Section 5.1,
	// which also guarantees that repeated IsAssigned calls are consistent.
	// states holds the distinct triangles in discovery order.
	stateIdx := make(map[graph.Triangle]int)
	var states []triState
	for i := range instances {
		inst := &instances[i]
		if !inst.closed {
			continue
		}
		if _, ok := stateIdx[inst.tri]; ok {
			continue
		}
		st := triState{tri: inst.tri, edges: inst.tri.Edges()}
		for slot, f := range st.edges {
			du, okU := degreeOf(f.U)
			dv, okV := degreeOf(f.V)
			if !okU || !okV {
				// Should not happen: every triangle vertex is either an R
				// endpoint (pass 2) or an apex (pass 4). Treat as skip so the
				// run degrades gracefully instead of crashing.
				st.skip[slot] = true
				st.ye[slot] = math.Inf(1)
				continue
			}
			de := du
			if dv < de {
				de = dv
			}
			st.deg[slot] = de
			if du <= dv {
				st.light[slot], st.other[slot] = f.U, f.V
			} else {
				st.light[slot], st.other[slot] = f.V, f.U
			}
		}
		stateIdx[inst.tri] = len(states)
		states = append(states, st)
	}
	res.DistinctTriangles = len(states)
	if len(states) == 0 {
		return assignments, nil
	}

	if cfg.Rule == RuleLowestDegree {
		for si := range states {
			st := &states[si]
			best := -1
			for slot := range st.edges {
				if st.skip[slot] {
					continue
				}
				if best < 0 || st.deg[slot] < st.deg[best] ||
					(st.deg[slot] == st.deg[best] && lessEdge(st.edges[slot], st.edges[best])) {
					best = slot
				}
			}
			if best >= 0 {
				assignments[st.tri] = st.edges[best]
			}
		}
		est.meter.Charge(int64(len(assignments)) * 2 * stream.WordsPerEdge)
		return assignments, nil
	}

	// RuleLowestCount: the full Algorithm 3.
	s := cfg.sampleSizeS(m)
	res.AssignmentSamples = s
	heavyThreshold := cfg.heavyEdgeDegreeThreshold(m)
	cutoff := cfg.assignmentCutoff()

	// Active (state, slot) pairs grouped by the slot's light endpoint. Slot
	// IDs are state-index*3+slot; groups preserve discovery order.
	var slotLights []int
	var slotIDs []int32
	for si := range states {
		st := &states[si]
		for slot := range st.edges {
			if st.skip[slot] {
				continue
			}
			if float64(st.deg[slot]) > heavyThreshold {
				// Line 9 of Algorithm 3: the edge is too expensive to probe.
				st.skip[slot] = true
				st.ye[slot] = math.Inf(1)
				continue
			}
			st.sample[slot] = make([]int, s)
			for j := range st.sample[slot] {
				st.sample[slot][j] = -1
			}
			slotLights = append(slotLights, st.light[slot])
			slotIDs = append(slotIDs, int32(si*3+slot))
		}
		est.meter.Charge(int64(3*(s+8)) * stream.WordsPerScalar)
	}
	if est.overBudget() {
		res.Aborted = true
		return assignments, nil
	}

	if len(slotIDs) > 0 {
		lightGroups := graph.NewVertexGroups(slotLights)

		// ----- Pass 5: s uniform neighborhood samples per active slot. -----
		if _, err := stream.ForEachBatch(counter, func(batch []graph.Edge) error {
			for _, e := range batch {
				for _, idx := range lightGroups.Lookup(e.U) {
					id := slotIDs[idx]
					states[id/3].offer(int(id%3), e.V, est)
				}
				for _, idx := range lightGroups.Lookup(e.V) {
					id := slotIDs[idx]
					states[id/3].offer(int(id%3), e.U, est)
				}
			}
			return nil
		}); err != nil {
			return assignments, err
		}

		// ----- Pass 6: closure checks for all drawn samples. -----
		// For each active slot, count the distinct sampled neighbors (a sort
		// over its s samples instead of a scratch map) and index the closing
		// edges they imply.
		type hit struct {
			id    int32 // state-index*3+slot
			count int32
		}
		var hitKeys []graph.Edge
		var hits []hit
		scratch := make([]int, 0, s)
		for si := range states {
			st := &states[si]
			for slot := range st.edges {
				if st.skip[slot] || st.sample[slot] == nil {
					continue
				}
				scratch = scratch[:0]
				for _, w := range st.sample[slot] {
					if w >= 0 && w != st.other[slot] {
						scratch = append(scratch, w)
					}
				}
				slices.Sort(scratch)
				for k := 0; k < len(scratch); {
					j := k + 1
					for j < len(scratch) && scratch[j] == scratch[k] {
						j++
					}
					hitKeys = append(hitKeys, graph.NewEdge(st.other[slot], scratch[k]))
					hits = append(hits, hit{id: int32(si*3 + slot), count: int32(j - k)})
					k = j
				}
			}
		}
		closure := graph.NewEdgeIndex(hitKeys)
		est.meter.Charge(int64(closure.Keys()) * (stream.WordsPerEdge + 2*stream.WordsPerScalar))
		if est.overBudget() {
			res.Aborted = true
			return assignments, nil
		}
		if _, err := stream.ForEachBatch(counter, func(batch []graph.Edge) error {
			for _, e := range batch {
				for _, it := range closure.Lookup(e.Normalize()) {
					h := hits[it]
					states[h.id/3].closed[h.id%3] += int(h.count)
				}
			}
			return nil
		}); err != nil {
			return assignments, err
		}
	}

	// Line 16–21: estimate Ye per slot and pick the minimizer.
	for si := range states {
		st := &states[si]
		for slot := range st.edges {
			if st.skip[slot] {
				st.ye[slot] = math.Inf(1)
				continue
			}
			st.ye[slot] = float64(st.deg[slot]) * float64(st.closed[slot]) / float64(s)
		}
		best := 0
		for slot := 1; slot < 3; slot++ {
			if st.ye[slot] < st.ye[best] ||
				(st.ye[slot] == st.ye[best] && lessEdge(st.edges[slot], st.edges[best])) {
				best = slot
			}
		}
		if math.IsInf(st.ye[best], 1) || st.ye[best] > cutoff {
			continue // unassigned (⊥)
		}
		assignments[st.tri] = st.edges[best]
	}
	est.meter.Charge(int64(len(assignments)) * 2 * stream.WordsPerEdge)
	return assignments, nil
}
