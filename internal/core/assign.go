package core

import (
	"math"
	"slices"

	"degentri/internal/graph"
	"degentri/internal/passes"
	"degentri/internal/stream"
)

// assignmentTable is the outcome of the assignment procedure: for every
// distinct discovered triangle (id'd by the TriangleIndex) the edge it was
// assigned to, or unassigned (⊥). It replaces the map[graph.Triangle]Edge of
// the map-based implementation with a sorted packed-key table whose iteration
// and lookup order are deterministic.
type assignmentTable struct {
	idx   *graph.TriangleIndex
	edges []graph.Edge
	set   *graph.Bitset
}

// lookup returns the edge assigned to the triangle and whether it is
// assigned.
func (t *assignmentTable) lookup(tri graph.Triangle) (graph.Edge, bool) {
	if t == nil || t.idx == nil {
		return graph.Edge{}, false
	}
	i := t.idx.Lookup(tri)
	if i < 0 || !t.set.Test(i) {
		return graph.Edge{}, false
	}
	return t.edges[i], true
}

// assigned returns how many triangles are assigned.
func (t *assignmentTable) assigned() int {
	if t == nil || t.set == nil {
		return 0
	}
	return t.set.Count()
}

// triState is the per-triangle state of the assignment procedure
// (Algorithm 3). Each of the three edge slots carries its own neighborhood
// sample of size s.
type triState struct {
	tri    graph.Triangle
	edges  [3]graph.Edge
	light  [3]int
	other  [3]int
	deg    [3]int   // d_f = min endpoint degree of the slot's edge
	skip   [3]bool  // true when d_f exceeds the heavy-degree threshold (line 9)
	sample [3][]int // s samples from N(f); -1 entries never materialized
	closed [3]int   // how many of the s samples closed a triangle (pass 6)
	ye     [3]float64
}

// assign runs the triangle-to-edge assignment phase and returns, for every
// distinct triangle discovered by the instances, the edge it is assigned to.
// Triangles left unassigned (Algorithm 3 returning ⊥) have no table entry.
//
// RuleNone needs no assignment and returns an empty table without extra
// passes. RuleLowestDegree assigns to the minimum-degree edge using degrees
// already measured in passes 2 and 4, also without extra passes.
// RuleLowestCount is the paper's rule and performs passes 5 and 6.
//
// The distinct triangles are numbered by graph.TriangleIndex (sorted triple
// order) and all per-slot randomness is keyed by (Config.Seed, slot id,
// shard), so both passes run on the sharded engine and the assignment — and
// with it the estimate — is deterministic at any worker count.
func (est *Estimator) assign(
	x passes.Executor,
	res *Result,
	instances []instance,
	degreeOf func(int) (int, bool),
) (*assignmentTable, error) {
	m := x.M()
	cfg := est.cfg
	if cfg.Rule == RuleNone {
		return &assignmentTable{}, nil
	}

	// Deduplicate the discovered triangles: the memo table of Section 5.1,
	// which also guarantees that repeated IsAssigned calls are consistent.
	// The TriangleIndex numbers the distinct triangles in sorted triple
	// order; state si describes triangle id si.
	tris := make([]graph.Triangle, 0, res.TrianglesFound)
	for i := range instances {
		if instances[i].closed {
			tris = append(tris, instances[i].tri)
		}
	}
	triIdx := graph.NewTriangleIndex(tris)
	res.DistinctTriangles = triIdx.Len()
	table := &assignmentTable{
		idx:   triIdx,
		edges: make([]graph.Edge, triIdx.Len()),
		set:   graph.NewBitset(triIdx.Len()),
	}
	if triIdx.Len() == 0 {
		return table, nil
	}

	states := make([]triState, triIdx.Len())
	for si := range states {
		st := &states[si]
		st.tri = triIdx.TriangleAt(si)
		st.edges = st.tri.Edges()
		for slot, f := range st.edges {
			du, okU := degreeOf(f.U)
			dv, okV := degreeOf(f.V)
			if !okU || !okV {
				// Should not happen: every triangle vertex is either an R
				// endpoint (pass 2) or an apex (pass 4). Treat as skip so the
				// run degrades gracefully instead of crashing.
				st.skip[slot] = true
				st.ye[slot] = math.Inf(1)
				continue
			}
			de := du
			if dv < de {
				de = dv
			}
			st.deg[slot] = de
			if du <= dv {
				st.light[slot], st.other[slot] = f.U, f.V
			} else {
				st.light[slot], st.other[slot] = f.V, f.U
			}
		}
	}

	if cfg.Rule == RuleLowestDegree {
		for si := range states {
			st := &states[si]
			best := -1
			for slot := range st.edges {
				if st.skip[slot] {
					continue
				}
				if best < 0 || st.deg[slot] < st.deg[best] ||
					(st.deg[slot] == st.deg[best] && lessEdge(st.edges[slot], st.edges[best])) {
					best = slot
				}
			}
			if best >= 0 {
				table.edges[si] = st.edges[best]
				table.set.Set(si)
			}
		}
		est.meter.Charge(int64(table.assigned()) * 2 * stream.WordsPerEdge)
		return table, nil
	}

	// RuleLowestCount: the full Algorithm 3.
	s := cfg.sampleSizeS(m)
	res.AssignmentSamples = s
	heavyThreshold := cfg.heavyEdgeDegreeThreshold(m)
	cutoff := cfg.assignmentCutoff()

	// Active (state, slot) pairs grouped by the slot's light endpoint. Slot
	// IDs are state-index*3+slot; the dense index into slotIDs keys the
	// slot's RNG streams.
	var slotLights []int
	var slotIDs []int32
	for si := range states {
		st := &states[si]
		for slot := range st.edges {
			if st.skip[slot] {
				continue
			}
			if float64(st.deg[slot]) > heavyThreshold {
				// Line 9 of Algorithm 3: the edge is too expensive to probe.
				st.skip[slot] = true
				st.ye[slot] = math.Inf(1)
				continue
			}
			slotLights = append(slotLights, st.light[slot])
			slotIDs = append(slotIDs, int32(si*3+slot))
		}
		est.meter.Charge(int64(3*(s+8)) * stream.WordsPerScalar)
	}
	if est.overBudget() {
		res.Aborted = true
		return table, nil
	}

	if len(slotIDs) > 0 {
		lightGroups := graph.NewVertexGroups(slotLights)

		// ----- Pass 5: s uniform neighborhood samples per active slot. -----
		banks, err := passes.SampleNeighborBanks(
			x, lightGroups, len(slotIDs), s,
			cfg.Seed, rngKeyPass5, rngKeyPass5Merge)
		if err != nil {
			return table, err
		}
		for j, id := range slotIDs {
			if banks[j].Has() {
				states[id/3].sample[id%3] = banks[j].W
			}
		}

		// ----- Pass 6: closure checks for all drawn samples. -----
		// For each active slot, count the distinct sampled neighbors (a sort
		// over its s samples instead of a scratch map) and index the closing
		// edges they imply.
		type hit struct {
			id    int32 // state-index*3+slot
			count int32
		}
		var hitKeys []graph.Edge
		var hits []hit
		scratch := make([]int, 0, s)
		for _, id := range slotIDs {
			st := &states[id/3]
			slot := int(id % 3)
			if st.skip[slot] || st.sample[slot] == nil {
				continue
			}
			scratch = scratch[:0]
			for _, w := range st.sample[slot] {
				if w >= 0 && w != st.other[slot] {
					scratch = append(scratch, w)
				}
			}
			slices.Sort(scratch)
			for k := 0; k < len(scratch); {
				j := k + 1
				for j < len(scratch) && scratch[j] == scratch[k] {
					j++
				}
				hitKeys = append(hitKeys, graph.NewEdge(st.other[slot], scratch[k]))
				hits = append(hits, hit{id: id, count: int32(j - k)})
				k = j
			}
		}
		closure := graph.NewEdgeIndex(hitKeys)
		est.meter.Charge(int64(closure.Keys()) * (stream.WordsPerEdge + 2*stream.WordsPerScalar))
		if est.overBudget() {
			res.Aborted = true
			return table, nil
		}
		matches, err := passes.ClosureCounts(x, closure, len(hits))
		if err != nil {
			return table, err
		}
		for it, h := range hits {
			states[h.id/3].closed[h.id%3] += int(h.count) * matches[it]
		}
	}

	// Line 16–21: estimate Ye per slot and pick the minimizer.
	for si := range states {
		st := &states[si]
		for slot := range st.edges {
			if st.skip[slot] {
				st.ye[slot] = math.Inf(1)
				continue
			}
			st.ye[slot] = float64(st.deg[slot]) * float64(st.closed[slot]) / float64(s)
		}
		best := 0
		for slot := 1; slot < 3; slot++ {
			if st.ye[slot] < st.ye[best] ||
				(st.ye[slot] == st.ye[best] && lessEdge(st.edges[slot], st.edges[best])) {
				best = slot
			}
		}
		if math.IsInf(st.ye[best], 1) || st.ye[best] > cutoff {
			continue // unassigned (⊥)
		}
		table.edges[si] = st.edges[best]
		table.set.Set(si)
	}
	est.meter.Charge(int64(table.assigned()) * 2 * stream.WordsPerEdge)
	return table, nil
}
