package core

import "fmt"

// Result is the outcome of one estimator run together with its resource
// accounting, which is what the experiment tables report.
type Result struct {
	// Estimate is the estimated triangle count T̂.
	Estimate float64
	// Passes is the number of *logical* stream passes the run performed —
	// the paper's pass metric, what the sequential algorithm needs.
	Passes int
	// Scans is the number of *physical* scans of the underlying stream that
	// served those passes. Unfused runs have Scans == Passes; runs whose
	// passes were fused onto a scan scheduler (AutoEstimate's geometric
	// search, exp fused trials) perform fewer scans than passes, and
	// speculative probe batches may scan work the sequential algorithm
	// would have skipped — Scans reports the physical truth either way.
	Scans int
	// SpaceWords is the peak number of retained machine words, as charged to
	// the estimator's SpaceMeter (sampled edges, counters, reservoirs, memo
	// entries).
	SpaceWords int64
	// OracleQueries counts degree-oracle queries (only nonzero for the
	// degree-oracle estimators of Section 4).
	OracleQueries int64
	// EdgesInStream is m, discovered or confirmed during the run.
	EdgesInStream int
	// SampledEdges is r, the size of the uniform edge sample R (Algorithm 2).
	SampledEdges int
	// Instances is ℓ, the number of degree-proportional estimator instances.
	Instances int
	// AssignmentSamples is s, the per-edge neighborhood sample size used by
	// the assignment procedure.
	AssignmentSamples int
	// TrianglesFound is the number of estimator instances whose edge–vertex
	// pair closed into a triangle (before the assignment filter).
	TrianglesFound int
	// TrianglesAssigned is the number of instances whose triangle was
	// assigned to the instance's own edge (these contribute Y_i = 1).
	TrianglesAssigned int
	// DistinctTriangles is the number of distinct triangles on which the
	// assignment procedure was invoked.
	DistinctTriangles int
	// DR is d_R = Σ_{e∈R} d_e observed in pass 2.
	DR int64
	// KappaBound is the degeneracy bound κ the run sized its samples with:
	// Config.Kappa when supplied, otherwise the streaming peeling
	// approximation computed from the stream.
	KappaBound int
	// KappaApprox reports that KappaBound came from the streaming peeling
	// approximation (Config.Kappa was 0) rather than from the caller.
	KappaApprox bool
	// Aborted reports that the run hit Config.MaxSpaceWords and stopped
	// early; Estimate is then meaningless.
	Aborted bool
	// Retries counts the transient-I/O recoveries the run's physical scans
	// performed under Config.Retry. A healed scan is bit-identical to an
	// undisturbed one, so retries never change Estimate — this is resource
	// accounting, reported next to Passes/Scans. For fused runs the count is
	// scheduler-wide: a recovery on a shared scan is visible to every rider.
	Retries int
	// Partial reports that the run's deadline expired (or it was cancelled)
	// mid-search and Estimate is the best completed probe so far rather than
	// the converged answer — the geometric search's deadline analogue of the
	// MaxSpaceWords abort. The estimate is still a genuine estimator output
	// with its certificate (SampledEdges, Instances, DR), just from a larger
	// guess than the search would have settled on.
	Partial bool
}

// String summarizes the result compactly.
func (r Result) String() string {
	return fmt.Sprintf("T̂=%.1f (passes=%d, scans=%d, space=%d words, r=%d, ℓ=%d, s=%d, found=%d, assigned=%d)",
		r.Estimate, r.Passes, r.Scans, r.SpaceWords, r.SampledEdges, r.Instances, r.AssignmentSamples,
		r.TrianglesFound, r.TrianglesAssigned)
}
