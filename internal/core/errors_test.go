package core

import (
	"errors"
	"testing"

	"degentri/internal/gen"
	"degentri/internal/graph"
	"degentri/internal/stream"
)

// failingStream delivers a few edges and then fails, to exercise the error
// propagation paths of every pass.
type failingStream struct {
	edges     []graph.Edge
	failAfter int
	resets    int
	failReset bool
	pos       int
	batch     [1]graph.Edge
}

var errBoom = errors.New("boom")

func (f *failingStream) Reset() error {
	f.resets++
	if f.failReset {
		return errBoom
	}
	f.pos = 0
	return nil
}

func (f *failingStream) Next() (graph.Edge, error) {
	if f.pos >= f.failAfter {
		return graph.Edge{}, errBoom
	}
	if f.pos >= len(f.edges) {
		return graph.Edge{}, stream.ErrEndOfPass
	}
	e := f.edges[f.pos]
	f.pos++
	return e, nil
}

func (f *failingStream) NextBatch(buf []graph.Edge) ([]graph.Edge, error) {
	// Deliver one edge per batch so the failure position is exact.
	e, err := f.Next()
	if err != nil {
		return nil, err
	}
	if len(buf) > 0 {
		buf[0] = e
		return buf[:1], nil
	}
	f.batch[0] = e
	return f.batch[:], nil
}

func (f *failingStream) Len() (int, bool) { return len(f.edges), true }

func TestEstimatorPropagatesStreamErrors(t *testing.T) {
	g := gen.Wheel(50)
	edges := make([]graph.Edge, len(g.Edges()))
	copy(edges, g.Edges())
	cfg := DefaultConfig(0.2, 3, 49)

	// Fail mid-pass: every pass index should surface the error rather than
	// silently returning a bogus estimate.
	for _, failAfter := range []int{3, 40} {
		fs := &failingStream{edges: edges, failAfter: failAfter}
		if _, err := EstimateTriangles(fs, cfg); err == nil {
			t.Errorf("failAfter=%d: expected an error", failAfter)
		}
	}
	// Fail on Reset.
	fs := &failingStream{edges: edges, failAfter: len(edges), failReset: true}
	if _, err := EstimateTriangles(fs, cfg); err == nil {
		t.Error("expected a reset error")
	}
}

func TestIdealEstimatorPropagatesStreamErrors(t *testing.T) {
	g := gen.Wheel(50)
	edges := make([]graph.Edge, len(g.Edges()))
	copy(edges, g.Edges())
	cfg := DefaultConfig(0.2, 3, 49)
	fs := &failingStream{edges: edges, failAfter: 10}
	if _, err := IdealEstimator(fs, NewGraphOracle(g), cfg, 5); err == nil {
		t.Error("expected an error from a failing stream")
	}
}

func TestAutoEstimatePropagatesStreamErrors(t *testing.T) {
	g := gen.Wheel(50)
	edges := make([]graph.Edge, len(g.Edges()))
	copy(edges, g.Edges())
	cfg := DefaultConfig(0.2, 3, 1)
	fs := &failingStream{edges: edges, failAfter: 10}
	if _, err := AutoEstimate(fs, cfg); err == nil {
		t.Error("expected an error from a failing stream")
	}
}

func TestEstimatorTruncatedStreamDetected(t *testing.T) {
	// A stream that claims more edges than it delivers is a malformed input;
	// the sampler must notice instead of hanging or mis-sampling.
	g := gen.Wheel(30)
	edges := make([]graph.Edge, len(g.Edges()))
	copy(edges, g.Edges())
	short := &truncatedStream{edges: edges[:10], claimed: len(edges)}
	cfg := DefaultConfig(0.2, 3, 29)
	if _, err := EstimateTriangles(short, cfg); err == nil {
		t.Error("expected an error for a truncated stream")
	}
}

type truncatedStream struct {
	edges   []graph.Edge
	claimed int
	pos     int
}

func (s *truncatedStream) Reset() error { s.pos = 0; return nil }
func (s *truncatedStream) Next() (graph.Edge, error) {
	if s.pos >= len(s.edges) {
		return graph.Edge{}, stream.ErrEndOfPass
	}
	e := s.edges[s.pos]
	s.pos++
	return e, nil
}
func (s *truncatedStream) NextBatch(buf []graph.Edge) ([]graph.Edge, error) {
	if s.pos >= len(s.edges) {
		return nil, stream.ErrEndOfPass
	}
	end := len(s.edges)
	if len(buf) > 0 && s.pos+len(buf) < end {
		end = s.pos + len(buf)
	}
	batch := s.edges[s.pos:end]
	s.pos = end
	return batch, nil
}
func (s *truncatedStream) Len() (int, bool) { return s.claimed, true }

func TestLessEdge(t *testing.T) {
	a := graph.NewEdge(1, 2)
	b := graph.NewEdge(1, 3)
	c := graph.NewEdge(2, 3)
	if !lessEdge(a, b) || lessEdge(b, a) {
		t.Error("lexicographic comparison broken on second coordinate")
	}
	if !lessEdge(b, c) || lessEdge(c, b) {
		t.Error("lexicographic comparison broken on first coordinate")
	}
	if !lessEdge(a, graph.Edge{U: -1, V: -1}) {
		t.Error("anything is less than the sentinel")
	}
}
