package core

import (
	"errors"
	"testing"

	"degentri/internal/gen"
	"degentri/internal/sampling"
	"degentri/internal/stream"
)

func TestAutoEstimateEmptyStream(t *testing.T) {
	// Consistent with the facade's ErrNoEdges: an empty stream is an error,
	// not a silent zero estimate.
	cfg := DefaultConfig(0.2, 1, 1)
	res, err := AutoEstimate(stream.FromEdges(nil), cfg)
	if !errors.Is(err, ErrNoEdges) {
		t.Fatalf("expected ErrNoEdges, got %v", err)
	}
	if res.Estimate != 0 {
		t.Fatalf("estimate %v", res.Estimate)
	}
}

func TestAutoEstimateInvalidConfig(t *testing.T) {
	cfg := DefaultConfig(0.2, 1, 1)
	cfg.CR = 0
	if _, err := AutoEstimate(stream.FromEdges(nil), cfg); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestAutoEstimateWheel(t *testing.T) {
	g := gen.Wheel(1000)
	truth := float64(g.TriangleCount())
	cfg := DefaultConfig(0.2, 3, 1) // TGuess is ignored by AutoEstimate
	cfg.CR, cfg.CL, cfg.CS = 8, 8, 8
	var sum float64
	trials := 6
	for i := 0; i < trials; i++ {
		cfg.Seed = uint64(100 * (i + 1))
		res, err := AutoEstimate(stream.FromGraphShuffled(g, uint64(i+1)), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Passes < 6 {
			t.Fatalf("auto-estimate used only %d passes", res.Passes)
		}
		sum += res.Estimate
	}
	rel := sampling.RelativeError(sum/float64(trials), truth)
	if rel > 0.35 {
		t.Fatalf("auto-estimate relative error %.3f", rel)
	}
}

func TestAutoEstimateTriangleFreeConverges(t *testing.T) {
	// On a triangle-free graph the search must terminate (guess reaches 1)
	// and report an estimate of 0.
	g := gen.Grid(15, 15)
	cfg := DefaultConfig(0.25, 2, 1)
	res, err := AutoEstimate(stream.FromGraphShuffled(g, 2), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimate != 0 {
		t.Fatalf("estimate %v on triangle-free graph", res.Estimate)
	}
}

func TestAutoEstimateKappaPeelRespectsSpaceCutoff(t *testing.T) {
	// With Kappa unknown, the O(n)-word peel state itself is subject to the
	// Markov cutoff, exactly as when Estimator.Run resolves κ.
	g := gen.Wheel(2000) // peel state ≈ n words ≫ the budget below
	cfg := DefaultConfig(0.25, 0, 1)
	cfg.MaxSpaceWords = 100
	res, err := AutoEstimate(stream.FromGraphShuffled(g, 2), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Aborted {
		t.Fatal("expected the κ peel to trip the space cutoff")
	}
	if !res.KappaApprox || res.KappaBound < 1 {
		t.Fatalf("aborted result should still report the κ it derived: %+v", res)
	}
	if res.SpaceWords <= cfg.MaxSpaceWords {
		t.Fatalf("accounted space %d should exceed the budget %d", res.SpaceWords, cfg.MaxSpaceWords)
	}
}

func TestAutoEstimateRespectsSpaceCutoff(t *testing.T) {
	g := gen.Grid(20, 20) // triangle-free, so the search wants to descend far
	cfg := DefaultConfig(0.25, 2, 1)
	cfg.MaxSpaceWords = 500
	res, err := AutoEstimate(stream.FromGraphShuffled(g, 2), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Aborted {
		t.Fatal("expected the search to stop at the space cutoff")
	}
}

func TestAutoEstimateBarabasiAlbert(t *testing.T) {
	g := gen.BarabasiAlbert(2000, 4, 23)
	truth := float64(g.TriangleCount())
	cfg := DefaultConfig(0.15, 4, 1)
	cfg.CR, cfg.CL, cfg.CS = 8, 8, 8
	var sum float64
	trials := 5
	for i := 0; i < trials; i++ {
		cfg.Seed = uint64(55 * (i + 1))
		res, err := AutoEstimate(stream.FromGraphShuffled(g, uint64(i+3)), cfg)
		if err != nil {
			t.Fatal(err)
		}
		sum += res.Estimate
	}
	rel := sampling.RelativeError(sum/float64(trials), truth)
	if rel > 0.4 {
		t.Fatalf("auto-estimate BA relative error %.3f", rel)
	}
}
