package core

import (
	"testing"

	"degentri/internal/gen"
	"degentri/internal/graph"
	"degentri/internal/sampling"
	"degentri/internal/stream"
)

func TestGraphOracle(t *testing.T) {
	g := gen.Wheel(10)
	o := NewGraphOracle(g)
	if o.Degree(0) != 9 {
		t.Errorf("hub degree = %d", o.Degree(0))
	}
	if o.Degree(5) != 3 {
		t.Errorf("rim degree = %d", o.Degree(5))
	}
	if o.Degree(-1) != 0 || o.Degree(999) != 0 {
		t.Error("out-of-range degrees should be 0")
	}
	if o.Queries() != 4 {
		t.Errorf("query count = %d, want 4", o.Queries())
	}
	o.ResetQueries()
	if o.Queries() != 0 {
		t.Error("reset failed")
	}
}

func TestLowestDegreeEdgeDeterministic(t *testing.T) {
	g := gen.Book(5)
	o := NewGraphOracle(g)
	tri := graph.NewTriangle(0, 1, 2)
	e1 := lowestDegreeEdge(tri, o)
	e2 := lowestDegreeEdge(tri, o)
	if e1 != e2 {
		t.Fatal("assignment is not consistent")
	}
	// Edge (0,1) is the spine with endpoint degrees 6; both other edges have
	// min degree 2, so the lexicographically smaller, (0,2), must win.
	if e1 != graph.NewEdge(0, 2) {
		t.Fatalf("lowestDegreeEdge = %v, want (0,2)", e1)
	}
}

func TestIdealEstimatorValidation(t *testing.T) {
	g := gen.Wheel(10)
	cfg := DefaultConfig(0.2, 3, 9)
	if _, err := IdealEstimator(stream.FromGraph(g), NewGraphOracle(g), cfg, 0); err == nil {
		t.Error("k=0 should be rejected")
	}
	bad := cfg
	bad.Epsilon = 2
	if _, err := IdealEstimator(stream.FromGraph(g), NewGraphOracle(g), bad, 5); err == nil {
		t.Error("invalid config should be rejected")
	}
}

func TestIdealEstimatorThreePasses(t *testing.T) {
	g := gen.Wheel(100)
	cfg := DefaultConfig(0.2, 3, g.TriangleCount())
	res, err := IdealEstimator(stream.FromGraphShuffled(g, 1), NewGraphOracle(g), cfg, 50)
	if err != nil {
		t.Fatal(err)
	}
	if res.Passes != 3 {
		t.Fatalf("passes = %d, want 3", res.Passes)
	}
	if res.OracleQueries < int64(2*g.NumEdges()) {
		t.Fatalf("oracle queries = %d, want >= 2m = %d", res.OracleQueries, 2*g.NumEdges())
	}
	if res.EdgesInStream != g.NumEdges() {
		t.Fatalf("m = %d", res.EdgesInStream)
	}
}

func TestIdealEstimatorAccuracy(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"wheel":    gen.Wheel(1500),
		"book":     gen.Book(1500),
		"ba":       gen.BarabasiAlbert(1500, 3, 7),
		"friendly": gen.Friendship(700),
	}
	for name, g := range graphs {
		truth := float64(g.TriangleCount())
		var sum float64
		trials := 12
		for i := 0; i < trials; i++ {
			cfg := DefaultConfig(0.2, g.Degeneracy(), g.TriangleCount())
			cfg.Seed = uint64(100 + i)
			res, err := IdealEstimator(stream.FromGraphShuffled(g, uint64(i+1)), NewGraphOracle(g), cfg, 1000)
			if err != nil {
				t.Fatal(err)
			}
			sum += res.Estimate
		}
		rel := sampling.RelativeError(sum/float64(trials), truth)
		if rel > 0.2 {
			t.Errorf("%s: ideal estimator relative error %.3f > 0.2", name, rel)
		}
	}
}

func TestIdealEstimatorTriangleFree(t *testing.T) {
	g := gen.Grid(30, 30)
	cfg := DefaultConfig(0.2, 2, 1)
	res, err := IdealEstimator(stream.FromGraphShuffled(g, 3), NewGraphOracle(g), cfg, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimate != 0 || res.TrianglesFound != 0 {
		t.Fatalf("triangle-free estimate %v (found %d)", res.Estimate, res.TrianglesFound)
	}
}

func TestIdealEstimatorRuleNone(t *testing.T) {
	g := gen.Wheel(1000)
	truth := float64(g.TriangleCount())
	cfg := DefaultConfig(0.2, 3, g.TriangleCount())
	cfg.Rule = RuleNone
	var sum float64
	trials := 8
	for i := 0; i < trials; i++ {
		cfg.Seed = uint64(i + 1)
		res, err := IdealEstimator(stream.FromGraphShuffled(g, uint64(i+5)), NewGraphOracle(g), cfg, 500)
		if err != nil {
			t.Fatal(err)
		}
		sum += res.Estimate
	}
	rel := sampling.RelativeError(sum/float64(trials), truth)
	if rel > 0.2 {
		t.Errorf("rule-none ideal estimator relative error %.3f", rel)
	}
}

func TestIdealEstimatorEmptyStream(t *testing.T) {
	cfg := DefaultConfig(0.2, 1, 1)
	res, err := IdealEstimator(stream.FromEdges(nil), NewGraphOracle(graph.NewBuilder(0).Build()), cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimate != 0 {
		t.Fatalf("estimate %v on empty stream", res.Estimate)
	}
}

func TestIdealEstimatorBookRobustness(t *testing.T) {
	// On the book graph the ideal estimator with the lowest-degree rule
	// assigns every triangle to a side edge (the spine has huge degree), so
	// the estimate should concentrate. This is the §1.2 motivation.
	g := gen.Book(2000)
	truth := float64(g.TriangleCount())
	var errs []float64
	for i := 0; i < 10; i++ {
		cfg := DefaultConfig(0.2, 2, g.TriangleCount())
		cfg.Seed = uint64(i * 31)
		res, err := IdealEstimator(stream.FromGraphShuffled(g, uint64(i+1)), NewGraphOracle(g), cfg, 400)
		if err != nil {
			t.Fatal(err)
		}
		errs = append(errs, sampling.RelativeError(res.Estimate, truth))
	}
	if med := sampling.Median(errs); med > 0.25 {
		t.Fatalf("median relative error %.3f on the book graph", med)
	}
}
