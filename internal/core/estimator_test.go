package core

import (
	"errors"
	"math"
	"testing"

	"degentri/internal/gen"
	"degentri/internal/graph"
	"degentri/internal/sampling"
	"degentri/internal/stream"
)

// estimateRelErr runs the six-pass estimator `trials` times with different
// seeds and returns the relative error of the mean estimate, which is the
// quantity the accuracy tests bound. Averaging over trials keeps the test
// budget small while still detecting bias or broken scaling.
func estimateRelErr(t *testing.T, g *graph.Graph, cfg Config, trials int) float64 {
	t.Helper()
	truth := float64(g.TriangleCount())
	var sum float64
	for i := 0; i < trials; i++ {
		cfg.Seed = uint64(1000 + 7919*i)
		src := stream.FromGraphShuffled(g, uint64(i+1))
		res, err := EstimateTriangles(src, cfg)
		if err != nil {
			t.Fatalf("trial %d: %v", i, err)
		}
		sum += res.Estimate
	}
	return sampling.RelativeError(sum/float64(trials), truth)
}

func TestEstimatorEmptyStream(t *testing.T) {
	// Consistent with AutoEstimate and the facade: an empty stream is
	// ErrNoEdges, never a silent zero estimate.
	cfg := DefaultConfig(0.2, 1, 1)
	res, err := EstimateTriangles(stream.FromEdges(nil), cfg)
	if !errors.Is(err, ErrNoEdges) {
		t.Fatalf("expected ErrNoEdges, got %v", err)
	}
	if res.Estimate != 0 || res.EdgesInStream != 0 {
		t.Fatalf("empty stream result %+v", res)
	}
}

func TestEstimatorInvalidConfig(t *testing.T) {
	cfg := DefaultConfig(0.2, 1, 1)
	cfg.Epsilon = 0
	if _, err := EstimateTriangles(stream.FromEdges(nil), cfg); err == nil {
		t.Fatal("expected config error")
	}
}

func TestEstimatorTriangleFreeGraph(t *testing.T) {
	g := gen.Grid(20, 20)
	cfg := DefaultConfig(0.2, 2, 10)
	cfg.Seed = 5
	res, err := EstimateTriangles(stream.FromGraphShuffled(g, 3), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimate != 0 {
		t.Fatalf("triangle-free graph estimated %v triangles", res.Estimate)
	}
	if res.TrianglesFound != 0 {
		t.Fatalf("found %d triangles in a triangle-free graph", res.TrianglesFound)
	}
}

func TestEstimatorSixPasses(t *testing.T) {
	// With the paper's assignment rule and triangles present, the run should
	// take exactly 6 passes over a known-length stream.
	g := gen.Wheel(200)
	cfg := DefaultConfig(0.25, 3, int64(g.TriangleCount()))
	cfg.CR, cfg.CL, cfg.CS = 8, 8, 8
	res, err := EstimateTriangles(stream.FromGraphShuffled(g, 1), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TrianglesFound == 0 {
		t.Fatal("expected to find at least one triangle")
	}
	if res.Passes != 6 {
		t.Fatalf("passes = %d, want 6", res.Passes)
	}
	if res.SpaceWords <= 0 {
		t.Fatal("space accounting missing")
	}
}

func TestEstimatorFourPassesWithoutAssignment(t *testing.T) {
	g := gen.Wheel(200)
	cfg := DefaultConfig(0.25, 3, int64(g.TriangleCount()))
	cfg.Rule = RuleNone
	res, err := EstimateTriangles(stream.FromGraphShuffled(g, 1), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Sample pass + degree pass + neighbor pass + closure pass; RuleNone
	// needs no assignment passes and the known-length stream avoids the
	// counting pass.
	if res.Passes != 4 {
		t.Fatalf("passes = %d, want 4", res.Passes)
	}
}

func TestEstimatorAccuracyWheel(t *testing.T) {
	g := gen.Wheel(2000)
	cfg := DefaultConfig(0.2, 3, g.TriangleCount())
	cfg.CR, cfg.CL, cfg.CS = 10, 10, 10
	rel := estimateRelErr(t, g, cfg, 16)
	if rel > 0.2 {
		t.Fatalf("wheel relative error %.3f > 0.2", rel)
	}
}

func TestEstimatorAccuracyBarabasiAlbert(t *testing.T) {
	g := gen.BarabasiAlbert(3000, 4, 17)
	cfg := DefaultConfig(0.1, 4, g.TriangleCount())
	cfg.CR, cfg.CL, cfg.CS = 12, 12, 8
	rel := estimateRelErr(t, g, cfg, 14)
	if rel > 0.35 {
		t.Fatalf("BA relative error %.3f > 0.35", rel)
	}
}

func TestEstimatorAccuracyHolmeKim(t *testing.T) {
	// The clustered preferential-attachment family is the paper's target
	// regime (κ = k, T = Θ(n)); the estimator should be comfortably accurate.
	g := gen.HolmeKim(4000, 4, 0.7, 17)
	cfg := DefaultConfig(0.1, 4, g.TriangleCount())
	cfg.CR, cfg.CL, cfg.CS = 10, 10, 8
	rel := estimateRelErr(t, g, cfg, 12)
	if rel > 0.2 {
		t.Fatalf("Holme–Kim relative error %.3f > 0.2", rel)
	}
}

func TestEstimatorAccuracyBookGraph(t *testing.T) {
	// The book graph is the paper's variance nightmare for incidence
	// counting; with the assignment rule the estimator should still work.
	g := gen.Book(2000)
	cfg := DefaultConfig(0.2, 2, g.TriangleCount())
	cfg.CR, cfg.CL, cfg.CS = 8, 8, 8
	rel := estimateRelErr(t, g, cfg, 12)
	if rel > 0.3 {
		t.Fatalf("book relative error %.3f > 0.3", rel)
	}
}

func TestEstimatorAccuracyCompleteGraph(t *testing.T) {
	g := gen.Complete(60)
	cfg := DefaultConfig(0.2, 59, g.TriangleCount())
	cfg.CR, cfg.CL, cfg.CS = 4, 4, 4
	rel := estimateRelErr(t, g, cfg, 10)
	if rel > 0.25 {
		t.Fatalf("K60 relative error %.3f > 0.25", rel)
	}
}

func TestEstimatorRuleNoneUnbiasedOnWheel(t *testing.T) {
	g := gen.Wheel(1000)
	cfg := DefaultConfig(0.2, 3, g.TriangleCount())
	cfg.Rule = RuleNone
	cfg.CR, cfg.CL = 8, 8
	rel := estimateRelErr(t, g, cfg, 12)
	if rel > 0.25 {
		t.Fatalf("rule-none relative error %.3f > 0.25", rel)
	}
}

func TestEstimatorRuleLowestDegree(t *testing.T) {
	g := gen.Wheel(1000)
	cfg := DefaultConfig(0.2, 3, g.TriangleCount())
	cfg.Rule = RuleLowestDegree
	cfg.CR, cfg.CL = 8, 8
	rel := estimateRelErr(t, g, cfg, 12)
	if rel > 0.25 {
		t.Fatalf("lowest-degree relative error %.3f > 0.25", rel)
	}
}

func TestEstimatorSpaceScalesWithBudget(t *testing.T) {
	g := gen.BarabasiAlbert(2000, 3, 5)
	small := DefaultConfig(0.2, 3, g.TriangleCount())
	small.ROverride, small.LOverride, small.SOverride = 10, 10, 5
	large := small
	large.ROverride, large.LOverride, large.SOverride = 1000, 1000, 50

	resSmall, err := EstimateTriangles(stream.FromGraphShuffled(g, 2), small)
	if err != nil {
		t.Fatal(err)
	}
	resLarge, err := EstimateTriangles(stream.FromGraphShuffled(g, 2), large)
	if err != nil {
		t.Fatal(err)
	}
	if resLarge.SpaceWords <= resSmall.SpaceWords {
		t.Fatalf("space did not grow with budget: %d vs %d", resSmall.SpaceWords, resLarge.SpaceWords)
	}
	if resSmall.SampledEdges != 10 || resLarge.SampledEdges != 1000 {
		t.Fatalf("overrides ignored: %d, %d", resSmall.SampledEdges, resLarge.SampledEdges)
	}
}

func TestEstimatorMaxSpaceAborts(t *testing.T) {
	g := gen.BarabasiAlbert(2000, 3, 5)
	cfg := DefaultConfig(0.2, 3, 10) // absurdly small T guess -> huge samples
	cfg.MaxSpaceWords = 100
	res, err := EstimateTriangles(stream.FromGraphShuffled(g, 2), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Aborted {
		t.Fatal("expected the run to abort on the space cutoff")
	}
}

func TestEstimatorDeterministicForFixedSeed(t *testing.T) {
	g := gen.Wheel(500)
	cfg := DefaultConfig(0.2, 3, g.TriangleCount())
	cfg.Seed = 99
	src := stream.FromGraphShuffled(g, 7)
	a, err := EstimateTriangles(src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EstimateTriangles(stream.FromGraphShuffled(g, 7), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Estimate != b.Estimate || a.SpaceWords != b.SpaceWords {
		t.Fatalf("same seed gave different results: %v vs %v", a, b)
	}
}

func TestEstimatorGroupsMedianOfMeans(t *testing.T) {
	g := gen.Wheel(1000)
	cfg := DefaultConfig(0.2, 3, g.TriangleCount())
	cfg.Groups = 5
	// Median-of-means needs each group mean to concentrate, so the number of
	// instances per group must be large; use a generous ℓ multiplier.
	cfg.CR, cfg.CL, cfg.CS = 8, 60, 8
	rel := estimateRelErr(t, g, cfg, 10)
	if rel > 0.3 {
		t.Fatalf("median-of-means relative error %.3f", rel)
	}
}

func TestEstimatorAssignedNeverExceedsFound(t *testing.T) {
	g := gen.BarabasiAlbert(1000, 4, 3)
	cfg := DefaultConfig(0.2, 4, g.TriangleCount())
	res, err := EstimateTriangles(stream.FromGraphShuffled(g, 9), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TrianglesAssigned > res.TrianglesFound {
		t.Fatalf("assigned %d > found %d", res.TrianglesAssigned, res.TrianglesFound)
	}
	if res.DistinctTriangles > res.TrianglesFound {
		t.Fatalf("distinct %d > found %d", res.DistinctTriangles, res.TrianglesFound)
	}
}

func TestEstimatorHandlesUnknownLength(t *testing.T) {
	// A stream that hides its length forces an extra counting pass.
	g := gen.Wheel(300)
	src := &hiddenLengthStream{inner: stream.FromGraphShuffled(g, 4)}
	cfg := DefaultConfig(0.25, 3, g.TriangleCount())
	res, err := EstimateTriangles(src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.EdgesInStream != g.NumEdges() {
		t.Fatalf("m = %d, want %d", res.EdgesInStream, g.NumEdges())
	}
	if res.Passes < 6 {
		t.Fatalf("expected at least 6 passes with a counting pass, got %d", res.Passes)
	}
}

// hiddenLengthStream wraps a stream but pretends not to know its length.
type hiddenLengthStream struct {
	inner stream.Stream
}

func (h *hiddenLengthStream) Reset() error              { return h.inner.Reset() }
func (h *hiddenLengthStream) Next() (graph.Edge, error) { return h.inner.Next() }
func (h *hiddenLengthStream) NextBatch(buf []graph.Edge) ([]graph.Edge, error) {
	return h.inner.NextBatch(buf)
}
func (h *hiddenLengthStream) Len() (int, bool) { return 0, false }

func TestEstimatorBookAblationVariance(t *testing.T) {
	// §1.2: on the book graph, counting incident triangles (RuleNone) from a
	// small uniform edge sample has huge variance because one edge carries
	// every triangle. The paper's assignment rule fixes this. We compare the
	// spread of estimates at identical budgets.
	g := gen.Book(3000)
	truth := float64(g.TriangleCount())
	budgetR, budgetL, budgetS := 100, 200, 40

	spread := func(rule AssignmentRule) float64 {
		var errs []float64
		for i := 0; i < 30; i++ {
			cfg := DefaultConfig(0.2, 2, g.TriangleCount())
			cfg.Rule = rule
			cfg.ROverride, cfg.LOverride, cfg.SOverride = budgetR, budgetL, budgetS
			cfg.Seed = uint64(31 + i*101)
			res, err := EstimateTriangles(stream.FromGraphShuffled(g, uint64(i+1)), cfg)
			if err != nil {
				t.Fatal(err)
			}
			errs = append(errs, sampling.RelativeError(res.Estimate, truth))
		}
		return sampling.Median(errs)
	}

	withRule := spread(RuleLowestCount)
	without := spread(RuleNone)
	if !(withRule < without) {
		t.Fatalf("assignment rule did not reduce error on the book graph: with=%.3f without=%.3f", withRule, without)
	}
	if math.IsNaN(withRule) {
		t.Fatal("NaN error")
	}
}
