package core_test

// Worker-count invariance: the sharded pass engine must make EstimateTriangles
// a pure function of (stream order, Config) — the Workers knob may only change
// wall-clock, never a single bit of the Result. This is the determinism
// contract that lets experiments run with however many cores are available.

import (
	"path/filepath"
	"testing"

	"degentri/internal/core"
	"degentri/internal/gen"
	"degentri/internal/stream"
)

func TestWorkerCountInvariance(t *testing.T) {
	g := gen.HolmeKim(5000, 5, 0.6, 33)
	cfg := core.DefaultConfig(0.1, g.Degeneracy(), g.TriangleCount())
	cfg.CR, cfg.CL, cfg.CS = 16, 16, 8
	for _, rule := range []core.AssignmentRule{core.RuleLowestCount, core.RuleNone, core.RuleLowestDegree} {
		for _, seed := range []uint64{1, 7, 1234567} {
			runCfg := cfg
			runCfg.Rule = rule
			runCfg.Seed = seed
			var base core.Result
			for i, workers := range []int{1, 2, 4, 8} {
				runCfg.Workers = workers
				res, err := core.EstimateTriangles(stream.FromGraphShuffled(g, seed+100), runCfg)
				if err != nil {
					t.Fatalf("%v/seed=%d/workers=%d: %v", rule, seed, workers, err)
				}
				if i == 0 {
					base = res
				} else if res != base {
					t.Errorf("%v/seed=%d: workers=%d diverges from workers=1:\n  %+v\n  %+v",
						rule, seed, workers, res, base)
				}
			}
		}
	}
}

// TestWorkerCountInvarianceFileStreams runs the same invariance check over
// the disk-backed sources: the text stream (whose shard index is built by the
// counting pass, after which passes go parallel) and the .bex binary stream
// (range-addressable from the start). All sources must agree with the
// in-memory stream as well.
func TestWorkerCountInvarianceFileStreams(t *testing.T) {
	g := gen.HolmeKim(3000, 4, 0.5, 17)
	dir := t.TempDir()
	txt := filepath.Join(dir, "g.txt")
	bex := filepath.Join(dir, "g.bex")
	if err := stream.WriteGraphFile(txt, g, "invariance"); err != nil {
		t.Fatal(err)
	}
	if _, err := stream.WriteBexFile(bex, stream.FromGraph(g)); err != nil {
		t.Fatal(err)
	}

	cfg := core.DefaultConfig(0.1, g.Degeneracy(), g.TriangleCount())
	cfg.CR, cfg.CL, cfg.CS = 16, 16, 8
	cfg.Seed = 5

	ref, err := core.EstimateTriangles(stream.FromGraph(g), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		for _, path := range []string{txt, bex} {
			src, err := stream.OpenAuto(path)
			if err != nil {
				t.Fatal(err)
			}
			runCfg := cfg
			runCfg.Workers = workers
			res, err := core.EstimateTriangles(src, runCfg)
			src.Close()
			if err != nil {
				t.Fatalf("%s/workers=%d: %v", filepath.Base(path), workers, err)
			}
			// File-backed sources that start with an unknown length spend one
			// extra counting pass (and scan); everything else must match the
			// in-memory reference exactly.
			res.Passes = ref.Passes
			res.Scans = ref.Scans
			if res != ref {
				t.Errorf("%s/workers=%d diverges from the in-memory run:\n  %+v\n  %+v",
					filepath.Base(path), workers, res, ref)
			}
		}
	}
}
