package core_test

// Fusion-equivalence pins for the pass-fusion scan scheduler: running the
// estimator's passes through scheduler clients (fused) must reproduce the
// unfused runs bit for bit — same Estimate, same realized randomness, same
// logical pass accounting — at every worker count (1/2/4/8) and over every
// stream backend (in-memory, text file, binary .bex). The unfused runs are
// themselves pinned against the PR 4 goldens by golden_test.go and
// equivalence_test.go, so transitively the fused results match those goldens
// too. Only the physical accounting may differ: Scans (fewer, shared) and —
// for concurrent fusion — SpaceWords (concurrently-live states add up).

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"degentri/internal/core"
	"degentri/internal/sched"
	"degentri/internal/stream"
)

func TestFusedSoloClientMatchesDirectRun(t *testing.T) {
	graphs := goldenGraphs()
	dir := t.TempDir()

	type backend struct {
		name string
		open func() (stream.Stream, func(), error)
	}
	backends := map[string][]backend{}
	for name, w := range graphs {
		txt := filepath.Join(dir, name+".txt")
		bex := filepath.Join(dir, name+stream.BexExt)
		f, err := os.Create(txt)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := stream.WriteEdgeList(f, stream.FromGraphShuffled(w.g, w.streamSeed)); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		if _, err := stream.WriteBexFile(bex, stream.FromGraphShuffled(w.g, w.streamSeed)); err != nil {
			t.Fatal(err)
		}
		g, seed := w.g, w.streamSeed
		openFile := func(path string) func() (stream.Stream, func(), error) {
			return func() (stream.Stream, func(), error) {
				src, err := stream.OpenAuto(path)
				if err != nil {
					return nil, nil, err
				}
				return src, func() { src.Close() }, nil
			}
		}
		backends[name] = []backend{
			{"memory", func() (stream.Stream, func(), error) {
				return stream.FromGraphShuffled(g, seed), func() {}, nil
			}},
			{"text", openFile(txt)},
			{"bex", openFile(bex)},
		}
	}

	for _, gc := range goldenCases {
		w := graphs[gc.workload]
		cfg := core.DefaultConfig(0.1, w.g.Degeneracy(), w.g.TriangleCount())
		cfg.CR, cfg.CL, cfg.CS = 16, 16, 8
		cfg.Rule = gc.rule
		cfg.Seed = gc.seed

		for _, workers := range []int{1, 2, 4, 8} {
			for _, b := range backends[gc.workload] {
				runCfg := cfg
				runCfg.Workers = workers
				label := gc.workload + "/" + b.name

				// Unfused reference: the plain Run (pinned against the PR 4
				// goldens by the equivalence suite).
				src, closeSrc, err := b.open()
				if err != nil {
					t.Fatal(err)
				}
				want, err := core.EstimateTriangles(src, runCfg)
				closeSrc()
				if err != nil {
					t.Fatalf("%s/%v/seed=%d/workers=%d: unfused: %v", label, gc.rule, gc.seed, workers, err)
				}

				// Fused: the same run as the single client of a scheduler.
				src, closeSrc, err = b.open()
				if err != nil {
					t.Fatal(err)
				}
				m, known := src.Len()
				prelude := 0
				if !known {
					m, err = stream.CountEdges(src)
					if err != nil {
						t.Fatal(err)
					}
					prelude = 1
				}
				sch := sched.New(src, m, workers)
				c := sch.NewClient()
				got, err := core.NewEstimator(runCfg).RunOn(c)
				c.Done()
				closeSrc()
				if err != nil {
					t.Fatalf("%s/%v/seed=%d/workers=%d: fused: %v", label, gc.rule, gc.seed, workers, err)
				}
				// A solo client fuses nothing, so every logical pass was one
				// scan and the full Result must match after aligning the
				// accounting the scheduler's owner carries (prelude, Scans).
				if sch.Scans() != got.Passes {
					t.Errorf("%s/%v/seed=%d/workers=%d: solo client: %d scans for %d passes",
						label, gc.rule, gc.seed, workers, sch.Scans(), got.Passes)
				}
				got.Passes += prelude
				got.Scans = want.Scans
				if got != want {
					t.Errorf("%s/%v/seed=%d/workers=%d: fused result diverges:\n  fused   %+v\n  unfused %+v",
						label, gc.rule, gc.seed, workers, got, want)
				}
			}
		}
	}
}

// TestFusedConcurrentClientsMatchSoloRuns fuses two estimator runs with
// different seeds onto one scheduler: each must reproduce its solo result
// bit for bit, and the pair must cost the scans of one run, not two.
func TestFusedConcurrentClientsMatchSoloRuns(t *testing.T) {
	graphs := goldenGraphs()
	w := graphs["pref-attach-k4"]
	cfg := core.DefaultConfig(0.1, w.g.Degeneracy(), w.g.TriangleCount())
	cfg.CR, cfg.CL, cfg.CS = 16, 16, 8
	seeds := []uint64{1, 42}

	solo := make([]core.Result, len(seeds))
	for i, seed := range seeds {
		runCfg := cfg
		runCfg.Seed = seed
		res, err := core.EstimateTriangles(stream.FromGraphShuffled(w.g, w.streamSeed), runCfg)
		if err != nil {
			t.Fatal(err)
		}
		solo[i] = res
	}

	for _, workers := range []int{1, 4} {
		src := stream.FromGraphShuffled(w.g, w.streamSeed)
		m, _ := src.Len()
		sch := sched.New(src, m, workers)
		clients := make([]*sched.Client, len(seeds))
		for i := range seeds {
			clients[i] = sch.NewClient()
		}
		fused := make([]core.Result, len(seeds))
		errs := make([]error, len(seeds))
		var wg sync.WaitGroup
		for i, seed := range seeds {
			wg.Add(1)
			go func(i int, seed uint64) {
				defer wg.Done()
				defer clients[i].Done()
				runCfg := cfg
				runCfg.Seed = seed
				runCfg.Workers = workers
				est := core.NewEstimator(runCfg)
				est.TeeSpace(sch.Meter())
				fused[i], errs[i] = est.RunOn(clients[i])
			}(i, seed)
		}
		wg.Wait()
		for i := range seeds {
			if errs[i] != nil {
				t.Fatalf("workers=%d seed=%d: %v", workers, seeds[i], errs[i])
			}
			got := fused[i]
			got.Scans = solo[i].Scans // physical accounting belongs to the scheduler
			if got != solo[i] {
				t.Errorf("workers=%d seed=%d: fused run diverges from solo:\n  fused %+v\n  solo  %+v",
					workers, seeds[i], got, solo[i])
			}
		}
		maxPasses := 0
		for _, r := range fused {
			if r.Passes > maxPasses {
				maxPasses = r.Passes
			}
		}
		if sch.Scans() != maxPasses {
			t.Errorf("workers=%d: two fused runs cost %d scans, want %d (the slower run's passes)",
				workers, sch.Scans(), maxPasses)
		}
		// Concurrently-live states add up: the group peak must cover both
		// runs' steady states, i.e. strictly exceed either solo peak.
		if peak := sch.Meter().Peak(); peak <= solo[0].SpaceWords || peak <= solo[1].SpaceWords {
			t.Errorf("workers=%d: group peak %d does not exceed solo peaks %d/%d",
				workers, peak, solo[0].SpaceWords, solo[1].SpaceWords)
		}
	}
}

// TestAutoEstimateSpecWidthInvariance pins that the speculative fused search
// accepts exactly the sequential search's result: at every speculation width
// the Estimate, logical Passes, and κ are identical over every backend; only
// Scans (down) and SpaceWords (concurrent peak, up) move.
func TestAutoEstimateSpecWidthInvariance(t *testing.T) {
	graphs := goldenGraphs()
	w := graphs["wheel"]
	dir := t.TempDir()
	txt := filepath.Join(dir, "wheel.txt")
	bex := filepath.Join(dir, "wheel"+stream.BexExt)
	f, err := os.Create(txt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := stream.WriteEdgeList(f, stream.FromGraphShuffled(w.g, w.streamSeed)); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := stream.WriteBexFile(bex, stream.FromGraphShuffled(w.g, w.streamSeed)); err != nil {
		t.Fatal(err)
	}

	open := map[string]func() (stream.Stream, func(), error){
		"memory": func() (stream.Stream, func(), error) {
			return stream.FromGraphShuffled(w.g, w.streamSeed), func() {}, nil
		},
		"text": func() (stream.Stream, func(), error) {
			src, err := stream.OpenAuto(txt)
			if err != nil {
				return nil, nil, err
			}
			return src, func() { src.Close() }, nil
		},
		"bex": func() (stream.Stream, func(), error) {
			src, err := stream.OpenAuto(bex)
			if err != nil {
				return nil, nil, err
			}
			return src, func() { src.Close() }, nil
		},
	}

	cfg := core.DefaultConfig(0.15, 0, 1) // κ unknown: the peel is in scope too
	cfg.CR, cfg.CL, cfg.CS = 8, 8, 8
	cfg.Seed = 7

	for name, openSrc := range open {
		for _, workers := range []int{1, 4} {
			var base core.Result
			var baseScans int
			for i, width := range []int{1, 2, 4} {
				src, closeSrc, err := openSrc()
				if err != nil {
					t.Fatal(err)
				}
				runCfg := cfg
				runCfg.Workers = workers
				runCfg.SpecWidth = width
				res, err := core.AutoEstimate(src, runCfg)
				closeSrc()
				if err != nil {
					t.Fatalf("%s/workers=%d/width=%d: %v", name, workers, width, err)
				}
				if i == 0 {
					base, baseScans = res, res.Scans
					// Width 1 is the strictly sequential search: every
					// logical pass was its own scan.
					if res.Scans != res.Passes {
						t.Errorf("%s/workers=%d: width 1 has scans=%d != passes=%d",
							name, workers, res.Scans, res.Passes)
					}
					continue
				}
				cmp := res
				cmp.Scans = base.Scans
				cmp.SpaceWords = base.SpaceWords
				if cmp != base {
					t.Errorf("%s/workers=%d/width=%d diverges from sequential:\n  got  %+v\n  want %+v",
						name, workers, width, res, base)
				}
				if res.Scans >= baseScans {
					t.Errorf("%s/workers=%d/width=%d: %d scans, want fewer than sequential's %d",
						name, workers, width, res.Scans, baseScans)
				}
				if res.SpaceWords < base.SpaceWords {
					t.Errorf("%s/workers=%d/width=%d: concurrent peak %d below sequential peak %d",
						name, workers, width, res.SpaceWords, base.SpaceWords)
				}
			}
		}
	}
}
