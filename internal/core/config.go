// Package core implements the paper's streaming triangle estimators:
//
//   - Algorithm 1 ("IdealEstimator"): the warm-up three-pass estimator in the
//     degree-oracle model of Section 4, with degree-proportional edge
//     sampling.
//   - Algorithm 2 ("EstimateTriangle"): the main six-pass estimator of
//     Section 5, which simulates degree-proportional sampling by first taking
//     a uniform edge sample R and re-weighting inside R.
//   - Algorithm 3 ("IsAssigned"/"Assignment"): the triangle-to-edge assignment
//     rule of Section 5.1 that keeps the per-edge assigned count bounded by
//     O(κ/ε), which is what turns the m·∆-type variance of naive edge
//     sampling into the m·κ bound of Theorem 1.2.
//
// All estimators run against the stream.Stream interface, account their
// retained state in words through a stream.SpaceMeter, and derive their
// sample sizes from Config.
package core

import (
	"fmt"
	"math"

	"degentri/internal/stream"
)

// AssignmentRule selects how discovered triangles are attributed to edges.
type AssignmentRule int

const (
	// RuleLowestCount is the paper's rule (Algorithm 3): estimate t_e for each
	// non-heavy, non-costly edge of the triangle with s neighborhood samples
	// and assign the triangle to the edge with the smallest estimate; leave it
	// unassigned when even the smallest estimate exceeds κ/(2ε).
	RuleLowestCount AssignmentRule = iota
	// RuleNone disables assignment: every discovered triangle counts through
	// every edge and the final estimate is divided by three. This is the
	// ablation corresponding to plain degree-weighted edge sampling, whose
	// variance degrades to m·J/T on graphs such as the book graph (§1.2).
	RuleNone
	// RuleLowestDegree assigns each triangle to its minimum-degree edge (ties
	// broken lexicographically). It needs no extra sampling passes but its
	// per-edge assigned count is not bounded by κ in general; it is the rule
	// suggested for the degree-oracle warm-up in Section 4.
	RuleLowestDegree
)

// String implements fmt.Stringer.
func (r AssignmentRule) String() string {
	switch r {
	case RuleLowestCount:
		return "lowest-triangle-count"
	case RuleNone:
		return "none"
	case RuleLowestDegree:
		return "lowest-degree"
	default:
		return fmt.Sprintf("AssignmentRule(%d)", int(r))
	}
}

// Config carries the parameters of the estimators. The zero value is not
// usable; start from DefaultConfig and adjust.
//
// The paper sets r = Θ((log n/ε²)·m·τmax/T), ℓ = Θ((log n/ε²)·m·d_R/(rT)) and
// s = Θ((log n/ε²)·mκ/T). The Θ-constants proven in the paper are far larger
// than what is needed in practice, so the config exposes them as explicit
// multipliers (CR, CL, CS) with practical defaults; the experiment harness
// additionally sweeps them to produce the accuracy/space trade-off curves.
type Config struct {
	// Epsilon is the target relative error ε ∈ (0, 1).
	Epsilon float64
	// Kappa is an upper bound on the degeneracy κ(G). Experiments pass the
	// exact value. Zero means the bound is unknown: the estimator derives one
	// with the streaming peeling approximation of internal/degen — O(n) words
	// and O(log n) extra passes, κ ≤ bound ≤ (2+ε)κ — before sizing its
	// samples. Result.KappaBound reports the value used and KappaApprox
	// whether it was estimated.
	Kappa int
	// TGuess is the current guess (lower bound) for the triangle count used
	// to size the samples. AutoEstimate drives it by geometric search.
	TGuess int64
	// CR, CL, CS scale the sizes of the uniform edge sample R, the number of
	// degree-proportional instances ℓ, and the per-edge assignment sample s.
	CR, CL, CS float64
	// Rule selects the triangle-to-edge assignment behaviour.
	Rule AssignmentRule
	// Groups, when > 1, splits the ℓ instances into this many groups and
	// returns the median of the group means ("median of the mean").
	Groups int
	// Seed seeds all randomness of one estimator run.
	Seed uint64
	// MaxSpaceWords, when positive, aborts a run whose accounted space
	// exceeds the limit (the Markov-inequality cutoff discussed in Section 3).
	MaxSpaceWords int64
	// ROverride, LOverride, SOverride, when positive, bypass the formulas and
	// fix r, ℓ, s directly. The experiment harness uses these for controlled
	// space sweeps.
	ROverride, LOverride, SOverride int
	// Workers bounds the concurrent shard workers of the sharded pass engine
	// inside a single run; 0 selects GOMAXPROCS, 1 forces sequential passes.
	// Estimates are bit-identical for a fixed seed at any worker count (the
	// shard grid and all RNG streams are independent of Workers).
	Workers int
	// SpecWidth bounds how many geometric-search probes AutoEstimate runs
	// speculatively in one fused batch on the scan scheduler: pass k of every
	// probe in a batch shares one physical scan, so a batch of w probes costs
	// roughly the scans of the slowest probe instead of w×. 0 selects the
	// default (2); 1 restores the strictly sequential search. The accepted
	// estimate is identical at any width — probe seeds are keyed by attempt
	// index and acceptance examines probes in sequential order — only Scans
	// (and the concurrent space peak) change.
	SpecWidth int
	// Retry is the transient-I/O retry policy of the run's physical scans.
	// The zero value disables retry (errors propagate on first failure);
	// stream.DefaultRetryPolicy() is the robust default the CLIs use. Retry
	// never changes results — failed reads resume at the exact position they
	// broke, and all in-pass randomness is keyed by (seed, passKey, instance,
	// shard), never by attempt — it only changes whether a flaky read kills
	// the run. Result.Retries reports the recoveries performed.
	Retry stream.RetryPolicy
}

// DefaultConfig returns a practical configuration for the given degeneracy
// bound and triangle-count guess.
func DefaultConfig(epsilon float64, kappa int, tGuess int64) Config {
	return Config{
		Epsilon: epsilon,
		Kappa:   kappa,
		TGuess:  tGuess,
		CR:      4,
		CL:      4,
		CS:      4,
		Rule:    RuleLowestCount,
		Groups:  1,
		Seed:    1,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Epsilon <= 0 || c.Epsilon >= 1 {
		return fmt.Errorf("core: epsilon must be in (0,1), got %v", c.Epsilon)
	}
	if c.Kappa < 0 {
		return fmt.Errorf("core: kappa must be >= 0 (0 = estimate from the stream), got %d", c.Kappa)
	}
	if c.TGuess < 1 {
		return fmt.Errorf("core: TGuess must be >= 1, got %d", c.TGuess)
	}
	if c.CR <= 0 || c.CL <= 0 || c.CS <= 0 {
		return fmt.Errorf("core: sample multipliers must be positive (CR=%v CL=%v CS=%v)", c.CR, c.CL, c.CS)
	}
	if c.Groups < 0 {
		return fmt.Errorf("core: groups must be non-negative, got %d", c.Groups)
	}
	if c.Workers < 0 {
		return fmt.Errorf("core: workers must be non-negative, got %d", c.Workers)
	}
	if c.SpecWidth < 0 || c.SpecWidth > 16 {
		return fmt.Errorf("core: SpecWidth must be in [0, 16], got %d", c.SpecWidth)
	}
	switch c.Rule {
	case RuleLowestCount, RuleNone, RuleLowestDegree:
	default:
		return fmt.Errorf("core: unknown assignment rule %d", int(c.Rule))
	}
	return nil
}

// sampleSizeR returns r, the size of the uniform edge sample, for a stream
// with m edges: r = CR · mκ / TGuess, clamped to [1, m].
func (c Config) sampleSizeR(m int) int {
	if c.ROverride > 0 {
		return clampInt(c.ROverride, 1, maxInt(m, 1))
	}
	r := c.CR * float64(m) * float64(c.Kappa) / float64(c.TGuess)
	return clampInt(int(math.Ceil(r)), 1, maxInt(m, 1))
}

// sampleSizeL returns ℓ, the number of degree-proportional instances, given
// the realized d_R of the sample: ℓ = CL · m·d_R / (r·TGuess), clamped to at
// least 1.
func (c Config) sampleSizeL(m, r int, dR int64) int {
	if c.LOverride > 0 {
		return c.LOverride
	}
	if dR <= 0 {
		return 1
	}
	l := c.CL * float64(m) * float64(dR) / (float64(r) * float64(c.TGuess))
	return clampInt(int(math.Ceil(l)), 1, 1<<26)
}

// sampleSizeS returns s, the number of neighborhood samples per edge used by
// the assignment procedure: s = CS · mκ / TGuess, clamped to at least 1.
func (c Config) sampleSizeS(m int) int {
	if c.SOverride > 0 {
		return c.SOverride
	}
	s := c.CS * float64(m) * float64(c.Kappa) / float64(c.TGuess)
	return clampInt(int(math.Ceil(s)), 1, 1<<26)
}

// heavyEdgeDegreeThreshold is the degree above which Algorithm 3 refuses to
// estimate t_e (line 9): d_e > mκ²/(ε²·T).
func (c Config) heavyEdgeDegreeThreshold(m int) float64 {
	return float64(m) * float64(c.Kappa) * float64(c.Kappa) /
		(c.Epsilon * c.Epsilon * float64(c.TGuess))
}

// assignmentCutoff is the threshold κ/(2ε) of Algorithm 3 line 18: if even
// the smallest estimated t_e exceeds it the triangle stays unassigned.
func (c Config) assignmentCutoff() float64 {
	return float64(c.Kappa) / (2 * c.Epsilon)
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
