package core

import "testing"

func TestDefaultConfigValid(t *testing.T) {
	cfg := DefaultConfig(0.1, 3, 100)
	if err := cfg.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestConfigValidateErrors(t *testing.T) {
	base := DefaultConfig(0.1, 3, 100)
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"epsilon zero", func(c *Config) { c.Epsilon = 0 }},
		{"epsilon one", func(c *Config) { c.Epsilon = 1 }},
		{"epsilon negative", func(c *Config) { c.Epsilon = -0.5 }},
		{"kappa negative", func(c *Config) { c.Kappa = -1 }},
		{"tguess zero", func(c *Config) { c.TGuess = 0 }},
		{"cr zero", func(c *Config) { c.CR = 0 }},
		{"cl negative", func(c *Config) { c.CL = -1 }},
		{"cs zero", func(c *Config) { c.CS = 0 }},
		{"groups negative", func(c *Config) { c.Groups = -2 }},
		{"bad rule", func(c *Config) { c.Rule = AssignmentRule(99) }},
	}
	for _, c := range cases {
		cfg := base
		c.mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
}

func TestAssignmentRuleString(t *testing.T) {
	if RuleLowestCount.String() != "lowest-triangle-count" ||
		RuleNone.String() != "none" ||
		RuleLowestDegree.String() != "lowest-degree" {
		t.Error("unexpected rule strings")
	}
	if AssignmentRule(42).String() == "" {
		t.Error("unknown rule should still render")
	}
}

func TestSampleSizeFormulas(t *testing.T) {
	cfg := DefaultConfig(0.1, 4, 1000)
	cfg.CR, cfg.CL, cfg.CS = 1, 1, 1
	m := 10000
	// r = m·κ/T = 10000·4/1000 = 40.
	if got := cfg.sampleSizeR(m); got != 40 {
		t.Errorf("sampleSizeR = %d, want 40", got)
	}
	// ℓ = m·dR/(r·T) with dR=200, r=40: 10000·200/(40·1000) = 50.
	if got := cfg.sampleSizeL(m, 40, 200); got != 50 {
		t.Errorf("sampleSizeL = %d, want 50", got)
	}
	// s = m·κ/T = 40.
	if got := cfg.sampleSizeS(m); got != 40 {
		t.Errorf("sampleSizeS = %d, want 40", got)
	}
}

func TestSampleSizeClamping(t *testing.T) {
	cfg := DefaultConfig(0.1, 1000, 1)
	m := 50
	// Formula would be enormous; r is clamped to m.
	if got := cfg.sampleSizeR(m); got != m {
		t.Errorf("sampleSizeR clamp = %d, want %d", got, m)
	}
	cfg2 := DefaultConfig(0.1, 1, 1<<40)
	if got := cfg2.sampleSizeR(m); got != 1 {
		t.Errorf("tiny r should clamp to 1, got %d", got)
	}
	if got := cfg2.sampleSizeL(m, 1, 0); got != 1 {
		t.Errorf("dR=0 should give ℓ=1, got %d", got)
	}
	if got := cfg2.sampleSizeS(m); got != 1 {
		t.Errorf("tiny s should clamp to 1, got %d", got)
	}
}

func TestSampleSizeOverrides(t *testing.T) {
	cfg := DefaultConfig(0.1, 4, 1000)
	cfg.ROverride, cfg.LOverride, cfg.SOverride = 7, 9, 11
	if cfg.sampleSizeR(100) != 7 || cfg.sampleSizeL(100, 7, 50) != 9 || cfg.sampleSizeS(100) != 11 {
		t.Error("overrides not honored")
	}
	// ROverride larger than m clamps to m.
	cfg.ROverride = 1000
	if cfg.sampleSizeR(100) != 100 {
		t.Error("ROverride should clamp to m")
	}
}

func TestThresholds(t *testing.T) {
	cfg := DefaultConfig(0.25, 4, 100)
	m := 1000
	// heavy threshold = m·κ²/(ε²·T) = 1000·16/(0.0625·100) = 2560.
	if got := cfg.heavyEdgeDegreeThreshold(m); got != 2560 {
		t.Errorf("heavyEdgeDegreeThreshold = %v, want 2560", got)
	}
	// cutoff = κ/(2ε) = 4/0.5 = 8.
	if got := cfg.assignmentCutoff(); got != 8 {
		t.Errorf("assignmentCutoff = %v, want 8", got)
	}
}

func TestClampHelpers(t *testing.T) {
	if clampInt(5, 1, 10) != 5 || clampInt(-3, 1, 10) != 1 || clampInt(50, 1, 10) != 10 {
		t.Error("clampInt broken")
	}
	if maxInt(3, 9) != 9 || maxInt(9, 3) != 9 {
		t.Error("maxInt broken")
	}
}

func TestResultString(t *testing.T) {
	r := Result{Estimate: 42, Passes: 6}
	if r.String() == "" {
		t.Error("Result.String should not be empty")
	}
}
