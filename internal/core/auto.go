package core

import (
	"fmt"

	"degentri/internal/stream"
)

// AutoEstimate removes the "T is known" assumption behind Config.TGuess by
// the standard geometric search: start from the Chiba–Nishizeki upper bound
// T ≤ 2mκ (Corollary 3.2), run the estimator, and halve the guess until the
// estimate is consistent with it (estimate ≥ guess). Each halving doubles the
// sample sizes, so the total space is within a constant factor of the space
// the final accepted run uses, and the number of passes is 6·O(log(mκ)).
//
// The returned Result is the accepted run's result with Passes replaced by
// the cumulative pass count of the whole search.
func AutoEstimate(src stream.Stream, cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	counter := stream.NewPassCounter(src)
	m, known := counter.Len()
	if !known {
		var err error
		m, err = stream.CountEdges(counter)
		if err != nil {
			return Result{}, err
		}
	}
	if m == 0 {
		return Result{EdgesInStream: 0, Passes: counter.Passes()}, nil
	}

	guess := int64(2) * int64(m) * int64(cfg.Kappa)
	if guess < 1 {
		guess = 1
	}
	var last Result
	attempt := 0
	for {
		runCfg := cfg
		runCfg.TGuess = guess
		runCfg.Seed = cfg.Seed + uint64(attempt)*0x9e37
		res, err := EstimateTriangles(counter, runCfg)
		if err != nil {
			return res, fmt.Errorf("core: auto-estimate at guess %d: %w", guess, err)
		}
		attempt++
		last = res
		if res.Aborted {
			last.Passes = counter.Passes()
			return last, nil
		}
		if res.Estimate >= float64(guess) || guess == 1 {
			break
		}
		guess /= 2
		if guess < 1 {
			guess = 1
		}
	}

	// Confirmation run: the probing loop accepts a run conditioned on its
	// estimate exceeding the guess, which biases the accepted value upward
	// when the guess sits just above T. Re-running once with the guess set
	// from the accepted estimate (and a fresh seed) removes that selection
	// bias while staying within a constant factor of the accepted run's
	// space.
	if last.Estimate > 0 {
		confirmGuess := int64(last.Estimate / 2)
		if confirmGuess < 1 {
			confirmGuess = 1
		}
		runCfg := cfg
		runCfg.TGuess = confirmGuess
		runCfg.Seed = cfg.Seed + uint64(attempt)*0x9e37 + 0x51ed
		res, err := EstimateTriangles(counter, runCfg)
		if err != nil {
			return res, fmt.Errorf("core: auto-estimate confirmation at guess %d: %w", confirmGuess, err)
		}
		if !res.Aborted {
			last = res
		}
	}
	last.Passes = counter.Passes()
	return last, nil
}
