package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"degentri/internal/degen"
	"degentri/internal/sched"
	"degentri/internal/stream"
)

// ErrNoEdges is returned by AutoEstimate and Estimator.Run when the stream
// holds no edges: with m = 0 there is no T ≤ 2mκ search range and no
// estimate to report. The facade maps it onto its own ErrNoEdges so the
// in-memory and file entry points fail identically on empty inputs.
var ErrNoEdges = errors.New("core: stream contains no edges")

// AutoEstimate removes the "T is known" assumption behind Config.TGuess by
// the standard geometric search: start from the Chiba–Nishizeki upper bound
// T ≤ 2mκ (Corollary 3.2), run the estimator, and halve the guess until the
// estimate is consistent with it (estimate ≥ guess). Each halving doubles the
// sample sizes, so the total space is within a constant factor of the space
// the final accepted run uses, and the number of passes is 6·O(log(mκ)).
//
// The search runs on the pass-fusion scan scheduler: probes are executed in
// speculative batches of Config.SpecWidth (default 2), and because probe
// seeds are keyed by attempt index, pass k of every probe in a batch shares
// one physical scan — the accepted estimate is bit-identical to the
// sequential search, the probes just cost fewer scans. Acceptance examines
// probe results in sequential attempt order, so speculative probes past the
// first accepted (or aborted) attempt contribute neither to Result.Passes
// (the logical, paper metric) nor to the accepted values; their scans were
// shared anyway and are reported in Result.Scans.
//
// When cfg.Kappa is 0 the degeneracy bound is first approximated from the
// stream by the peeling estimator of internal/degen (once, shared by every
// probe run of the search), and the result carries KappaApprox = true.
//
// The returned Result is the accepted run's result with Passes replaced by
// the cumulative logical pass count of the whole search, Scans by the
// physical scans actually performed, and SpaceWords by the peak of
// concurrently retained words across everything that was fused (which is at
// least the accepted run's own peak).
func AutoEstimate(src stream.Stream, cfg Config) (Result, error) {
	return AutoEstimateCtx(context.Background(), src, cfg)
}

// AutoEstimateCtx is AutoEstimate under a cancellation context. A deadline or
// cancellation that fires mid-search degrades gracefully: if at least one
// probe run completed, the search returns its result flagged Partial with a
// nil error (the deadline analogue of the MaxSpaceWords abort path); if
// nothing completed, the context error is returned wrapped as
// ErrDeadline/ErrAborted with the scan position it interrupted. Transient
// I/O errors are healed under Config.Retry and counted in Result.Retries.
func AutoEstimateCtx(ctx context.Context, src stream.Stream, cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	counter := stream.NewPassCounter(src)
	m, known := counter.Len()
	prelude := 0
	preludeRetries := 0
	if !known {
		var err error
		m, preludeRetries, err = stream.CountEdgesCtx(ctx, counter, cfg.Retry)
		if err != nil {
			return Result{Retries: preludeRetries}, wrapAbort(err)
		}
		prelude = 1
	}
	if m == 0 {
		return Result{EdgesInStream: 0, Passes: prelude, Scans: prelude}, ErrNoEdges
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	sch := sched.NewCtx(ctx, counter, m, workers, cfg.Retry)
	res, err := AutoEstimateOn(sch, cfg)
	res.Passes += prelude
	res.Scans = prelude + sch.Scans()
	res.Retries = preludeRetries + sch.Retries()
	return res, wrapAbort(err)
}

// AutoEstimateOn is the geometric search running every pass through clients
// of the given scheduler, so that several searches (for example independent
// trials) fuse their probes' passes onto shared physical scans. The caller
// owns physical-scan accounting: Result.Scans is left zero.
func AutoEstimateOn(sch *sched.Scheduler, cfg Config) (Result, error) {
	return autoEstimateOn(nil, sch, cfg, nil)
}

// AutoEstimateOnCtx is AutoEstimateOn with every client the search registers
// (degeneracy peel, speculative probes, confirmation run) scoped to ctx
// rather than to the scheduler's own context. This is the entry point of a
// long-lived service: many requests share one scheduler over a hot stream,
// and one request's deadline or disconnect must abandon only *its* passes —
// mid-wave, at a batch boundary, per the per-client isolation contract —
// while fused peers complete bit-identically. The degradation semantics are
// those of AutoEstimateCtx: a ctx that fires after at least one usable probe
// returns the best accepted estimate flagged Partial with a nil error.
func AutoEstimateOnCtx(ctx context.Context, sch *sched.Scheduler, cfg Config) (Result, error) {
	return autoEstimateOn(ctx, sch, cfg, nil)
}

// AutoEstimateFrom is AutoEstimateOn invoked from an existing scheduler
// client (for example one trial of a fused trial group): the search parks
// the handoff client only *after* registering its own first client, so at
// no instant is the caller absent from the wave barrier — peers cannot slip
// a wave past it and break the trials-fuse-in-lockstep scan bound. The
// handoff client is left parked; the caller remains responsible for its
// Done.
func AutoEstimateFrom(c *sched.Client, cfg Config) (Result, error) {
	return autoEstimateOn(nil, c.Scheduler(), cfg, c)
}

// autoEstimateOn runs the search. clientCtx scopes every client it registers;
// nil means the scheduler's context (sched.NewClientCtx treats nil the same
// way, so the two spellings are one code path).
func autoEstimateOn(clientCtx context.Context, sch *sched.Scheduler, cfg Config, handoff *sched.Client) (Result, error) {
	// release parks the handoff client; it must be called only once at least
	// one search-owned client is registered (a just-registered client is
	// born non-waiting, so it blocks waves until it submits). Early-error
	// returns may skip it: the caller's Done covers those paths.
	release := func() {
		if handoff != nil {
			handoff.Park()
			handoff = nil
		}
	}
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	m := sch.M()
	if m == 0 {
		return Result{EdgesInStream: 0}, ErrNoEdges
	}
	logical := 0 // cumulative passes of the sequential (paper) search

	// Resolve an unknown κ once, up front: every probe run of the search
	// reuses the same bound, so the peeling passes are paid a single time.
	// The peel runs as a scheduler client: its rounds fuse with whatever
	// other clients of this scheduler have pending.
	kappaApprox := false
	var kappaSpace int64
	if cfg.Kappa == 0 {
		c := sch.NewClientCtx(clientCtx)
		release()
		// Hold the peel's words on the scheduler's group meter while the
		// peel is live (concurrent peels of fused searches add up there);
		// the search's own SpaceWords folds kappaSpace in via finish.
		peelMeter := stream.NewSpaceMeter()
		peelMeter.Tee(sch.Meter())
		dres, err := degen.EstimateOn(c, degen.Options{Meter: peelMeter})
		c.Done()
		logical += dres.Passes
		if err != nil {
			return Result{EdgesInStream: m, Passes: logical}, wrapAbort(err)
		}
		cfg.Kappa = dres.Kappa
		if cfg.Kappa < 1 {
			cfg.Kappa = 1
		}
		kappaApprox = true
		kappaSpace = dres.SpaceWords
		// The peel's O(n) words are subject to the same Markov cutoff the
		// probe runs enforce (Estimator.Run charges the identical phase when
		// it resolves κ itself).
		if cfg.MaxSpaceWords > 0 && kappaSpace > cfg.MaxSpaceWords {
			return Result{
				EdgesInStream: m,
				SpaceWords:    kappaSpace,
				KappaBound:    cfg.Kappa,
				KappaApprox:   true,
				Passes:        logical,
				Aborted:       true,
			}, nil
		}
	}
	// searchMeter tracks the concurrent peak of *this* search's probes; the
	// scheduler's group meter additionally aggregates across everything fused
	// onto the scheduler (for example other trials).
	searchMeter := stream.NewSharedMeter()
	finish := func(res Result) Result {
		res.KappaBound = cfg.Kappa
		res.KappaApprox = kappaApprox
		if peak := searchMeter.Peak(); peak > res.SpaceWords {
			res.SpaceWords = peak
		}
		if kappaSpace > res.SpaceWords {
			res.SpaceWords = kappaSpace
		}
		res.Passes = logical
		return res
	}

	// runProbe executes one estimator run as a scheduler client; its meter is
	// teed into the search and scheduler group meters so the concurrent peak
	// is accounted at both granularities. The client must be registered
	// before the probe goroutine starts (see runBatch) so a whole batch fuses
	// from its first wave.
	runProbe := func(c *sched.Client, runCfg Config) (Result, error) {
		defer c.Done()
		est := NewEstimator(runCfg)
		est.TeeSpace(searchMeter)
		est.TeeSpace(sch.Meter())
		return est.RunOn(c)
	}
	// runBatch runs the probes of one speculative batch concurrently, fused.
	runBatch := func(cfgs []Config) ([]Result, []error) {
		clients := make([]*sched.Client, len(cfgs))
		for i := range cfgs {
			clients[i] = sch.NewClientCtx(clientCtx)
		}
		release()
		results := make([]Result, len(cfgs))
		errs := make([]error, len(cfgs))
		var wg sync.WaitGroup
		for i := range cfgs {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				results[i], errs[i] = runProbe(clients[i], cfgs[i])
			}(i)
		}
		wg.Wait()
		return results, errs
	}

	width := cfg.SpecWidth
	if width == 0 {
		width = 2
	}
	guess0 := int64(2) * int64(m) * int64(cfg.Kappa)
	if guess0 < 1 {
		guess0 = 1
	}
	// guessAt reproduces the sequential halving: attempt i probes guess0
	// halved i times, floored at 1.
	guessAt := func(attempt int) int64 {
		g := guess0
		for i := 0; i < attempt && g > 1; i++ {
			g /= 2
		}
		if g < 1 {
			g = 1
		}
		return g
	}

	// last is the most recent completed probe (drives acceptance and the
	// confirmation run); lastGood is the most recent one whose estimate is
	// actually usable (> 0) — the only kind worth degrading to when a
	// deadline interrupts the search. A probe can legitimately complete with
	// estimate 0 (none of its sampled wedges closed at a far-too-high guess),
	// and "partial result: 0 triangles" would be worse than an error.
	var last, lastGood Result
	haveGood := false
	accepted := -1
	for base := 0; accepted < 0; base += width {
		cfgs := make([]Config, 0, width)
		for i := base; i < base+width; i++ {
			runCfg := cfg
			runCfg.TGuess = guessAt(i)
			runCfg.Seed = cfg.Seed + uint64(i)*0x9e37
			cfgs = append(cfgs, runCfg)
			if runCfg.TGuess == 1 {
				break // guess 1 is always terminal; deeper probes are waste
			}
		}
		results, errs := runBatch(cfgs)
		// Examine the batch in sequential attempt order: the first terminal
		// event (error, abort, or acceptance) decides, exactly as if the
		// probes had run one at a time; later probes in the batch were
		// speculation and are discarded from the logical accounting.
		for j := range cfgs {
			attempt := base + j
			guess := cfgs[j].TGuess
			res, err := results[j], errs[j]
			if err != nil {
				logical += res.Passes
				if ctxDone(err) && haveGood {
					// Deadline (or cancellation) mid-search: degrade to the
					// best completed probe instead of returning nothing —
					// the deadline analogue of the MaxSpaceWords abort. Its
					// certificate (samples, instances, d_R) is the probe's
					// own; only the search didn't converge.
					out := finish(lastGood)
					out.Partial = true
					return out, nil
				}
				return finish(res), wrapAbort(fmt.Errorf("core: auto-estimate at guess %d: %w", guess, err))
			}
			logical += res.Passes
			last = res
			if res.Estimate > 0 {
				lastGood = res
				haveGood = true
			}
			if res.Aborted {
				return finish(last), nil
			}
			if res.Estimate >= float64(guess) || guess == 1 {
				accepted = attempt
				break
			}
		}
	}

	// Confirmation run: the probing loop accepts a run conditioned on its
	// estimate exceeding the guess, which biases the accepted value upward
	// when the guess sits just above T. Re-running once with the guess set
	// from the accepted estimate (and a fresh seed) removes that selection
	// bias while staying within a constant factor of the accepted run's
	// space.
	if last.Estimate > 0 {
		confirmGuess := int64(last.Estimate / 2)
		if confirmGuess < 1 {
			confirmGuess = 1
		}
		runCfg := cfg
		runCfg.TGuess = confirmGuess
		runCfg.Seed = cfg.Seed + uint64(accepted+1)*0x9e37 + 0x51ed
		res, err := runProbe(sch.NewClientCtx(clientCtx), runCfg)
		logical += res.Passes
		if err != nil {
			if ctxDone(err) {
				// The accepted probe stands on its own; losing only the
				// bias-removing confirmation is a Partial outcome, not a
				// failure. (last.Estimate > 0 here, so it is lastGood too.)
				out := finish(last)
				out.Partial = true
				return out, nil
			}
			return finish(res), wrapAbort(fmt.Errorf("core: auto-estimate confirmation at guess %d: %w", confirmGuess, err))
		}
		if !res.Aborted {
			last = res
		}
	}
	return finish(last), nil
}
