package core

import (
	"errors"
	"fmt"

	"degentri/internal/degen"
	"degentri/internal/stream"
)

// ErrNoEdges is returned by AutoEstimate and Estimator.Run when the stream
// holds no edges: with m = 0 there is no T ≤ 2mκ search range and no
// estimate to report. The facade maps it onto its own ErrNoEdges so the
// in-memory and file entry points fail identically on empty inputs.
var ErrNoEdges = errors.New("core: stream contains no edges")

// AutoEstimate removes the "T is known" assumption behind Config.TGuess by
// the standard geometric search: start from the Chiba–Nishizeki upper bound
// T ≤ 2mκ (Corollary 3.2), run the estimator, and halve the guess until the
// estimate is consistent with it (estimate ≥ guess). Each halving doubles the
// sample sizes, so the total space is within a constant factor of the space
// the final accepted run uses, and the number of passes is 6·O(log(mκ)).
//
// When cfg.Kappa is 0 the degeneracy bound is first approximated from the
// stream by the peeling estimator of internal/degen (once, shared by every
// probe run of the search), and the result carries KappaApprox = true.
//
// The returned Result is the accepted run's result with Passes replaced by
// the cumulative pass count of the whole search and SpaceWords raised to the
// peeling pass's O(n) words when that phase dominated.
func AutoEstimate(src stream.Stream, cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	counter := stream.NewPassCounter(src)
	m, known := counter.Len()
	if !known {
		var err error
		m, err = stream.CountEdges(counter)
		if err != nil {
			return Result{}, err
		}
	}
	if m == 0 {
		return Result{EdgesInStream: 0, Passes: counter.Passes()}, ErrNoEdges
	}

	// Resolve an unknown κ once, up front: every probe run of the search
	// reuses the same bound, so the peeling passes are paid a single time.
	kappaApprox := false
	var kappaSpace int64
	if cfg.Kappa == 0 {
		dres, err := degen.Estimate(counter, m, degen.Options{Workers: cfg.Workers})
		if err != nil {
			return Result{EdgesInStream: m, Passes: counter.Passes()}, err
		}
		cfg.Kappa = dres.Kappa
		if cfg.Kappa < 1 {
			cfg.Kappa = 1
		}
		kappaApprox = true
		kappaSpace = dres.SpaceWords
		// The peel's O(n) words are subject to the same Markov cutoff the
		// probe runs enforce (Estimator.Run charges the identical phase when
		// it resolves κ itself).
		if cfg.MaxSpaceWords > 0 && kappaSpace > cfg.MaxSpaceWords {
			return Result{
				EdgesInStream: m,
				SpaceWords:    kappaSpace,
				KappaBound:    cfg.Kappa,
				KappaApprox:   true,
				Passes:        counter.Passes(),
				Aborted:       true,
			}, nil
		}
	}
	finish := func(res Result) Result {
		res.KappaBound = cfg.Kappa
		res.KappaApprox = kappaApprox
		if kappaSpace > res.SpaceWords {
			res.SpaceWords = kappaSpace
		}
		res.Passes = counter.Passes()
		return res
	}

	guess := int64(2) * int64(m) * int64(cfg.Kappa)
	if guess < 1 {
		guess = 1
	}
	var last Result
	attempt := 0
	for {
		runCfg := cfg
		runCfg.TGuess = guess
		runCfg.Seed = cfg.Seed + uint64(attempt)*0x9e37
		res, err := EstimateTriangles(counter, runCfg)
		if err != nil {
			return finish(res), fmt.Errorf("core: auto-estimate at guess %d: %w", guess, err)
		}
		attempt++
		last = res
		if res.Aborted {
			return finish(last), nil
		}
		if res.Estimate >= float64(guess) || guess == 1 {
			break
		}
		guess /= 2
		if guess < 1 {
			guess = 1
		}
	}

	// Confirmation run: the probing loop accepts a run conditioned on its
	// estimate exceeding the guess, which biases the accepted value upward
	// when the guess sits just above T. Re-running once with the guess set
	// from the accepted estimate (and a fresh seed) removes that selection
	// bias while staying within a constant factor of the accepted run's
	// space.
	if last.Estimate > 0 {
		confirmGuess := int64(last.Estimate / 2)
		if confirmGuess < 1 {
			confirmGuess = 1
		}
		runCfg := cfg
		runCfg.TGuess = confirmGuess
		runCfg.Seed = cfg.Seed + uint64(attempt)*0x9e37 + 0x51ed
		res, err := EstimateTriangles(counter, runCfg)
		if err != nil {
			return finish(res), fmt.Errorf("core: auto-estimate confirmation at guess %d: %w", confirmGuess, err)
		}
		if !res.Aborted {
			last = res
		}
	}
	return finish(last), nil
}
