package core

import (
	"runtime"
	"sort"

	"degentri/internal/graph"
	"degentri/internal/sampling"
	"degentri/internal/stream"
)

// RNG stream keys of the sharded passes (see sampling.MixSeed): every draw an
// estimator makes inside a sharded pass comes from a stream keyed by
// (Config.Seed, pass key, instance/slot index[, shard index]), so the
// realized randomness — and with it the estimate — does not depend on worker
// scheduling. The estimator's root RNG is only consumed sequentially between
// passes (sample positions, instance selection).
const (
	rngKeyPass3      = 3 // per-(instance, shard) neighbor reservoirs
	rngKeyPass3Merge = 4 // per-instance shard-merge draws
	rngKeyPass5      = 5 // per-(slot, shard) assignment sample banks
	rngKeyPass5Merge = 6 // per-slot shard-merge draws
)

// instance is the state of one of the ℓ degree-proportional estimator
// instances of Algorithm 2.
type instance struct {
	edge    graph.Edge
	edgeDeg int
	light   int
	other   int
	// Pass 3 outcome: the sampled neighbor of the light endpoint.
	w    int
	hasW bool
	// Pass 4 outcome.
	closed bool
	tri    graph.Triangle
	// Final outcome after the assignment filter.
	y bool
}

// Estimator runs the main six-pass algorithm (Algorithm 2 + Algorithm 3) on
// an edge stream. Create one with NewEstimator and call Run; an Estimator is
// single-use.
//
// The per-edge hot loops of passes 2–6 use the dense sorted structures of the
// graph package (SortedCounter, VertexGroups, EdgeIndex, TriangleIndex) and
// run on the sharded pass engine: each pass is split over the fixed
// stream.NumShards grid, processed by up to Config.Workers concurrent
// workers, and merged in shard order, so the estimate for a fixed seed is
// deterministic at any worker count.
type Estimator struct {
	cfg   Config
	rng   *sampling.RNG
	meter *stream.SpaceMeter
}

// NewEstimator returns an estimator for the given configuration. The
// configuration is validated on Run.
func NewEstimator(cfg Config) *Estimator {
	return &Estimator{cfg: cfg, rng: sampling.NewRNG(cfg.Seed), meter: stream.NewSpaceMeter()}
}

// EstimateTriangles is a convenience wrapper: NewEstimator(cfg).Run(src).
func EstimateTriangles(src stream.Stream, cfg Config) (Result, error) {
	return NewEstimator(cfg).Run(src)
}

// workers resolves Config.Workers.
func (est *Estimator) workers() int {
	if est.cfg.Workers > 0 {
		return est.cfg.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Run executes the estimator against the stream and returns the estimate and
// resource accounting. The stream must replay the same edge order on every
// pass (all stream.Stream implementations in this repository do).
func (est *Estimator) Run(src stream.Stream) (Result, error) {
	cfg := est.cfg
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	counter := stream.NewPassCounter(src)
	res := Result{}

	// Discover m. If the source knows its length this is free; otherwise it
	// costs one counting pass (the paper assumes m is known when setting
	// parameters). The counting pass also lets file-backed streams build
	// their shard index, so the passes below can run with concurrent workers.
	m, known := counter.Len()
	if !known {
		var err error
		m, err = stream.CountEdges(counter)
		if err != nil {
			return res, err
		}
	}
	res.EdgesInStream = m
	if m == 0 {
		res.Passes = counter.Passes()
		return res, nil
	}
	workers := est.workers()

	// ----- Pass 1: uniform edge sample R (multiset, with replacement). -----
	r := cfg.sampleSizeR(m)
	res.SampledEdges = r
	R, err := est.sampleUniformEdges(counter, m, r, workers)
	if err != nil {
		return res, err
	}
	est.meter.Charge(int64(len(R)) * stream.WordsPerEdge)
	if est.overBudget() {
		res.Aborted = true
		res.Passes = counter.Passes()
		res.SpaceWords = est.meter.Peak()
		return res, nil
	}

	// ----- Pass 2: degrees of the endpoints of R. -----
	endpoints := make([]int, 0, 2*len(R))
	for _, e := range R {
		endpoints = append(endpoints, e.U, e.V)
	}
	vertexDeg := graph.NewSortedCounter(endpoints)
	est.meter.Charge(int64(vertexDeg.Len()) * stream.WordsPerCounter)
	if err := est.countDegreesSharded(counter, m, workers, vertexDeg); err != nil {
		return res, err
	}

	edgeDegs := make([]int64, len(R))
	var dR int64
	for i, e := range R {
		du, _ := vertexDeg.Get(e.U)
		dv, _ := vertexDeg.Get(e.V)
		de := du
		if dv < de {
			de = dv
		}
		edgeDegs[i] = int64(de)
		dR += int64(de)
	}
	res.DR = dR
	if dR == 0 {
		// No sampled edge has a neighbor beyond itself; the estimate is 0.
		res.Passes = counter.Passes()
		res.SpaceWords = est.meter.Peak()
		return res, nil
	}

	// ----- Draw ℓ instances from R proportional to d_e. -----
	l := cfg.sampleSizeL(m, r, dR)
	res.Instances = l
	cum, err := sampling.NewCumulativeSampler(edgeDegs)
	if err != nil {
		return res, err
	}
	instances := make([]instance, l)
	lights := make([]int, l)
	for i := 0; i < l; i++ {
		idx := cum.Sample(est.rng)
		e := R[idx]
		inst := &instances[i]
		inst.edge = e
		inst.edgeDeg = int(edgeDegs[idx])
		du, _ := vertexDeg.Get(e.U)
		dv, _ := vertexDeg.Get(e.V)
		if du <= dv {
			inst.light, inst.other = e.U, e.V
		} else {
			inst.light, inst.other = e.V, e.U
		}
		lights[i] = inst.light
	}
	lightGroups := graph.NewVertexGroups(lights)
	est.meter.Charge(int64(l) * 6 * stream.WordsPerScalar)
	if est.overBudget() {
		res.Aborted = true
		res.Passes = counter.Passes()
		res.SpaceWords = est.meter.Peak()
		return res, nil
	}

	// ----- Pass 3: uniform neighbor of the light endpoint, per instance. -----
	neighbors, err := sampleNeighborsSharded(
		counter, m, workers, lightGroups, l, cfg.Seed, rngKeyPass3, rngKeyPass3Merge)
	if err != nil {
		return res, err
	}
	for i := range instances {
		if neighbors[i].Has() {
			instances[i].w = neighbors[i].W
			instances[i].hasW = true
		}
	}

	// ----- Pass 4: closure checks and apex degrees. -----
	// Pre-size to the live instance count: every live instance contributes
	// exactly one closure key and one apex.
	live := 0
	for i := range instances {
		inst := &instances[i]
		if !inst.hasW || inst.w == inst.other {
			inst.hasW = false
			continue
		}
		live++
	}
	closureKeys := make([]graph.Edge, 0, live)
	closureInst := make([]int32, 0, live)
	apexes := make([]int, 0, live)
	for i := range instances {
		inst := &instances[i]
		if !inst.hasW {
			continue
		}
		closureKeys = append(closureKeys, graph.NewEdge(inst.other, inst.w))
		closureInst = append(closureInst, int32(i))
		apexes = append(apexes, inst.w)
	}
	closure := graph.NewEdgeIndex(closureKeys)
	apexDeg := graph.NewSortedCounter(apexes)
	est.meter.Charge(int64(closure.Keys())*(stream.WordsPerEdge+stream.WordsPerScalar) +
		int64(apexDeg.Len())*stream.WordsPerCounter)

	closedBits, err := closureSharded(counter, m, workers, closure, len(closureInst), apexDeg)
	if err != nil {
		return res, err
	}
	for it, instIdx := range closureInst {
		if closedBits.Test(it) {
			instances[instIdx].closed = true
		}
	}

	// Collect the discovered triangles.
	for i := range instances {
		inst := &instances[i]
		if inst.closed {
			inst.tri = graph.NewTriangle(inst.edge.U, inst.edge.V, inst.w)
			res.TrianglesFound++
		}
	}

	// Degree lookup covering both R endpoints and apex vertices.
	degreeOf := func(v int) (int, bool) {
		if d, ok := vertexDeg.Get(v); ok {
			return d, true
		}
		if d, ok := apexDeg.Get(v); ok {
			return d, true
		}
		return 0, false
	}

	// ----- Assignment (Algorithm 3): passes 5 and 6 for the paper's rule. -----
	assignments, aerr := est.assign(counter, &res, instances, degreeOf, m, workers)
	if aerr != nil {
		return res, aerr
	}
	if res.Aborted {
		res.Passes = counter.Passes()
		res.SpaceWords = est.meter.Peak()
		return res, nil
	}

	// ----- Final estimate. -----
	values := make([]float64, len(instances))
	for i := range instances {
		inst := &instances[i]
		y := 0.0
		if inst.closed {
			switch cfg.Rule {
			case RuleNone:
				inst.y = true
			default:
				assignedTo, ok := assignments.lookup(inst.tri)
				inst.y = ok && assignedTo == inst.edge.Normalize()
			}
			if inst.y {
				res.TrianglesAssigned++
				y = 1
			}
		}
		values[i] = y
	}
	meanY := sampling.MedianOfMeans(values, cfg.Groups)
	estimate := float64(m) / float64(r) * float64(dR) * meanY
	if cfg.Rule == RuleNone {
		estimate /= 3
	}
	res.Estimate = estimate
	res.Passes = counter.Passes()
	res.SpaceWords = est.meter.Peak()
	return res, nil
}

// countDegreesSharded runs one sharded pass that increments deg for both
// endpoints of every edge, using a pooled Fork per shard merged in order.
func (est *Estimator) countDegreesSharded(
	counter stream.Stream, m, workers int, deg *graph.SortedCounter,
) error {
	pool := stream.NewShardPool(deg.Fork, (*graph.SortedCounter).ResetCounts)
	var shards [stream.NumShards]*graph.SortedCounter
	_, err := stream.ShardedForEachBatch(counter, m, workers,
		func(shard int, batch []graph.Edge) error {
			c := shards[shard]
			if c == nil {
				c = pool.Get()
				shards[shard] = c
			}
			for _, e := range batch {
				c.Inc(e.U)
				c.Inc(e.V)
			}
			return nil
		},
		func(shard int) error {
			if c := shards[shard]; c != nil {
				deg.Merge(c)
				shards[shard] = nil
				pool.Put(c)
			}
			return nil
		})
	return err
}

// neighborShard is the per-shard state of a neighbor-sampling pass: one lazy
// skip-ahead reservoir per instance, plus the touched list for sparse merge.
type neighborShard struct {
	res     []sampling.Res1
	touched []int32
}

// sampleNeighborsSharded runs one sharded pass drawing, for every instance
// grouped in lightGroups, a uniform neighbor of its light endpoint. The
// reservoir of instance i in shard k draws from the RNG stream
// (seed, passKey, i, k) and the per-instance shard merge from
// (seed, mergeKey, i), which makes the returned samples independent of the
// worker count. It returns one merger per instance (Has()==false when the
// light endpoint had no neighbors).
func sampleNeighborsSharded(
	counter stream.Stream, m, workers int,
	lightGroups *graph.VertexGroups, n int,
	seed uint64, passKey, mergeKey uint64,
) ([]sampling.Res1Merger, error) {
	merged := make([]sampling.Res1Merger, n)
	for i := range merged {
		merged[i].Init(sampling.MixSeed(seed, mergeKey, uint64(i)))
	}
	pool := stream.NewShardPool(
		func() *neighborShard { return &neighborShard{res: make([]sampling.Res1, n)} },
		func(st *neighborShard) {
			for _, i := range st.touched {
				st.res[i] = sampling.Res1{}
			}
			st.touched = st.touched[:0]
		})
	var shards [stream.NumShards]*neighborShard
	_, err := stream.ShardedForEachBatch(counter, m, workers,
		func(shard int, batch []graph.Edge) error {
			st := shards[shard]
			if st == nil {
				st = pool.Get()
				shards[shard] = st
			}
			offer := func(idx int32, v int) {
				r := &st.res[idx]
				if !r.Ready() {
					r.Init(sampling.MixSeed(seed, passKey, uint64(idx), uint64(shard)))
					st.touched = append(st.touched, idx)
				}
				r.Offer(v)
			}
			for _, e := range batch {
				for _, idx := range lightGroups.Lookup(e.U) {
					offer(idx, e.V)
				}
				for _, idx := range lightGroups.Lookup(e.V) {
					offer(idx, e.U)
				}
			}
			return nil
		},
		func(shard int) error {
			if st := shards[shard]; st != nil {
				for _, i := range st.touched {
					merged[i].Absorb(&st.res[i])
				}
				shards[shard] = nil
				pool.Put(st)
			}
			return nil
		})
	return merged, err
}

// closureShard is the per-shard state of a closure-check pass: a hit bitset
// over the closure items plus (optionally) a degree-counter fork.
type closureShard struct {
	bits *graph.Bitset
	deg  *graph.SortedCounter
}

// closureSharded runs one sharded pass marking, for every closure item whose
// key appears in the stream, a bit in the returned bitset, while also
// counting apex degrees when apexDeg is non-nil. Hit bits are set in
// per-shard bitsets OR-merged in shard order — no shared writes.
func closureSharded(
	counter stream.Stream, m, workers int,
	closure *graph.EdgeIndex, items int,
	apexDeg *graph.SortedCounter,
) (*graph.Bitset, error) {
	merged := graph.NewBitset(items)
	pool := stream.NewShardPool(
		func() *closureShard {
			st := &closureShard{bits: graph.NewBitset(items)}
			if apexDeg != nil {
				st.deg = apexDeg.Fork()
			}
			return st
		},
		func(st *closureShard) {
			st.bits.Clear()
			if st.deg != nil {
				st.deg.ResetCounts()
			}
		})
	var shards [stream.NumShards]*closureShard
	_, err := stream.ShardedForEachBatch(counter, m, workers,
		func(shard int, batch []graph.Edge) error {
			st := shards[shard]
			if st == nil {
				st = pool.Get()
				shards[shard] = st
			}
			for _, e := range batch {
				if items := closure.Lookup(e.Normalize()); items != nil {
					for _, it := range items {
						st.bits.Set(int(it))
					}
				}
				if st.deg != nil {
					st.deg.Inc(e.U)
					st.deg.Inc(e.V)
				}
			}
			return nil
		},
		func(shard int) error {
			if st := shards[shard]; st != nil {
				merged.Or(st.bits)
				if st.deg != nil {
					apexDeg.Merge(st.deg)
				}
				shards[shard] = nil
				pool.Put(st)
			}
			return nil
		})
	return merged, err
}

// positionShard is the per-shard cursor of the uniform edge-sampling pass.
type positionShard struct {
	pos  int // next stream position of this shard
	next int // next index into the sorted position array
	init bool
}

// sampleUniformEdges draws r edges uniformly at random with replacement from
// the stream in one sharded pass: it pre-draws r uniform positions in [0, m)
// from the root RNG, sorts them, and each shard collects the positions that
// fall in its range (disjoint index ranges of the sample array, so no merge
// state is needed).
func (est *Estimator) sampleUniformEdges(src stream.Stream, m, r, workers int) ([]graph.Edge, error) {
	positions := make([]int, r)
	for i := range positions {
		positions[i] = est.rng.Intn(m)
	}
	sampling.SortPositions(positions)
	sample := make([]graph.Edge, r)

	var shards [stream.NumShards]positionShard
	_, err := stream.ShardedForEachBatch(src, m, workers,
		func(shard int, batch []graph.Edge) error {
			st := &shards[shard]
			if !st.init {
				st.pos, _ = stream.ShardRange(m, shard)
				st.next = sort.SearchInts(positions, st.pos)
				st.init = true
			}
			pos, next := st.pos, st.next
			for _, e := range batch {
				for next < r && positions[next] == pos {
					sample[next] = e.Normalize()
					next++
				}
				pos++
			}
			st.pos, st.next = pos, next
			return nil
		},
		func(int) error { return nil })
	if err != nil {
		return nil, err
	}
	return sample, nil
}

func (est *Estimator) overBudget() bool {
	return est.cfg.MaxSpaceWords > 0 && est.meter.Current() > est.cfg.MaxSpaceWords
}
